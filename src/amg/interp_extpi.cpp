#include "amg/interp_extpi.hpp"

#include <cmath>

#include "amg/interp_classical.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

inline double sign_of(double v) { return v >= 0 ? 1.0 : -1.0; }

/// ā_kl: the sign-filtered coefficient of Eq. (1).
inline double abar(double a_kk, double a_kl) {
  return sign_of(a_kk) == sign_of(a_kl) ? 0.0 : a_kl;
}

/// Per-thread scratch for one row's construction.
struct RowScratch {
  // chat_pos[j] >= row_start  <=>  global column j is in Ĉ_i; the value is
  // its slot in (cols, acc). The "marker array" idiom of §3.1.1 applied to
  // interpolation (§3.1.2 notes the same pattern appears here).
  std::vector<Int> chat_pos;
  std::vector<Int> cols;     // global column ids of Ĉ_i (current row)
  std::vector<double> acc;   // accumulating numerator of w_ij
  std::vector<Int> strong;   // in-row offsets into A of strong neighbors

  explicit RowScratch(Int n) : chat_pos(n, -1) {}
};

}  // namespace

CSRMatrix extpi_interp(const CSRMatrix& A, const CSRMatrix& S,
                       const CFMarker& cf, const ExtPIOptions& opt,
                       WorkCounters* wc) {
  TRACE_SPAN("interp.extpi", "kernel", "rows", std::int64_t(A.nrows));
  require(A.nrows == A.ncols, "extpi_interp: A must be square");
  const Int n = A.nrows;
  Int nc = 0;
  std::vector<Int> cmap = coarse_index_map(cf, &nc);

  const int nt = num_threads();
  std::vector<Int> bounds = partition_by_weight(A.rowptr, nt);
  std::vector<std::vector<Int>> chunk_col(nt);
  std::vector<std::vector<double>> chunk_val(nt);
  std::vector<std::vector<Int>> chunk_rownnz(nt);
  std::vector<WorkCounters> counters(nt);

#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    WorkCounters& cnt = counters[t];
    const Int row_lo = bounds[t], row_hi = bounds[t + 1];
    auto& out_cols = chunk_col[t];
    auto& out_vals = chunk_val[t];
    auto& rownnz = chunk_rownnz[t];
    rownnz.assign(row_hi - row_lo, 0);
    RowScratch scratch(n);
    Int mark_base = 0;  // monotone row_start for the chat_pos marker

    for (Int i = row_lo; i < row_hi; ++i) {
      if (cf[i] > 0) {
        out_cols.push_back(cmap[i]);
        out_vals.push_back(1.0);
        rownnz[i - row_lo] = 1;
        ++mark_base;
        continue;
      }
      const Int row_start = mark_base;
      scratch.cols.clear();
      scratch.acc.clear();
      scratch.strong.clear();

      // ---- Collect S_i (strong neighbors) by merge-walking A_i and S_i;
      //      seed Ĉ_i with C_i^s and the C_j^s of every strong F neighbor.
      Int ks = S.rowptr[i];
      const Int ks_end = S.rowptr[i + 1];
      auto chat_insert = [&](Int col) {
        ++cnt.branches;
        if (scratch.chat_pos[col] < row_start) {
          scratch.chat_pos[col] = row_start + Int(scratch.cols.size());
          scratch.cols.push_back(col);
          scratch.acc.push_back(0.0);
        }
      };
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
        const Int j = A.colidx[k];
        if (j == i) continue;
        while (ks < ks_end && S.colidx[ks] < j) ++ks;
        if (!(ks < ks_end && S.colidx[ks] == j)) continue;  // weak
        scratch.strong.push_back(k);
        if (cf[j] > 0) {
          chat_insert(j);
        } else {
          // strong F neighbor: contribute its strong C neighbors (dist-2)
          for (Int ks2 = S.rowptr[j]; ks2 < S.rowptr[j + 1]; ++ks2) {
            const Int j2 = S.colidx[ks2];
            if (j2 != i && cf[j2] > 0) chat_insert(j2);
          }
          cnt.bytes_read += (S.rowptr[j + 1] - S.rowptr[j]) * sizeof(Int);
        }
      }
      const Int chat_n = Int(scratch.cols.size());
      if (chat_n == 0) {
        // No interpolatory set; row stays empty (smoothing handles it).
        mark_base += 1;
        continue;
      }

      // ---- Numerator seeds: a_ij for j ∈ Ĉ_i ∩ N_i; weak neighbors
      //      outside Ĉ_i fold into the diagonal ã_ii.
      double atilde = 0.0;
      std::size_t sp = 0;  // walks scratch.strong (sorted by offset)
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
        const Int j = A.colidx[k];
        const double v = A.values[k];
        if (j == i) {
          atilde += v;
          continue;
        }
        while (sp < scratch.strong.size() && scratch.strong[sp] < k) ++sp;
        const bool strong = sp < scratch.strong.size() && scratch.strong[sp] == k;
        ++cnt.branches;
        if (scratch.chat_pos[j] >= row_start) {
          scratch.acc[scratch.chat_pos[j] - row_start] += v;
        } else if (!(strong && cf[j] <= 0)) {
          // j ∉ Ĉ_i and not a strong F neighbor (those are distributed via
          // b_ik below): weak connection, folded into the diagonal.
          atilde += v;
        }
      }

      // ---- Distance-two terms: for each strong F neighbor k, distribute
      //      a_ik over Ĉ_i ∪ {i} weighted by ā_kl / b_ik.
      for (std::size_t sk = 0; sk < scratch.strong.size(); ++sk) {
        const Int kofs = scratch.strong[sk];
        const Int k = A.colidx[kofs];
        if (cf[k] > 0) continue;  // only F_i^s here
        const double a_ik = A.values[kofs];
        // Find a_kk and b_ik in one sweep of row k.
        double a_kk = 0.0;
        for (Int kk = A.rowptr[k]; kk < A.rowptr[k + 1]; ++kk)
          if (A.colidx[kk] == k) {
            a_kk = A.values[kk];
            break;
          }
        double b_ik = 0.0;
        for (Int kk = A.rowptr[k]; kk < A.rowptr[k + 1]; ++kk) {
          const Int l = A.colidx[kk];
          ++cnt.branches;
          if (l == i || scratch.chat_pos[l] >= row_start)
            b_ik += abar(a_kk, A.values[kk]);
        }
        cnt.bytes_read += 2 * (A.rowptr[k + 1] - A.rowptr[k]) *
                          (sizeof(Int) + sizeof(double));
        if (b_ik == 0.0) {
          // No common interpolatory support: lump a_ik into the diagonal
          // (HYPRE's fallback), keeping row sums exact.
          atilde += a_ik;
          continue;
        }
        const double scale = a_ik / b_ik;
        cnt.flops += 1;
        for (Int kk = A.rowptr[k]; kk < A.rowptr[k + 1]; ++kk) {
          const Int l = A.colidx[kk];
          const double ab = abar(a_kk, A.values[kk]);
          if (ab == 0.0) continue;
          ++cnt.branches;
          if (l == i) {
            atilde += scale * ab;
            cnt.flops += 2;
          } else if (scratch.chat_pos[l] >= row_start) {
            scratch.acc[scratch.chat_pos[l] - row_start] += scale * ab;
            cnt.flops += 2;
          }
        }
      }

      // ---- Finalize w_ij = -acc_j / ã_ii, then (optionally fused)
      //      truncation before the row is emitted.
      thread_local std::vector<Int> row_cols;
      thread_local std::vector<double> row_vals;
      row_cols.clear();
      row_vals.clear();
      if (atilde != 0.0) {
        const double inv = -1.0 / atilde;
        for (Int c = 0; c < chat_n; ++c) {
          const double w = inv * scratch.acc[c];
          if (w == 0.0) continue;
          row_cols.push_back(cmap[scratch.cols[c]]);
          row_vals.push_back(w);
          cnt.flops += 1;
        }
      }
      Int len = Int(row_cols.size());
      if (opt.fused_truncation)
        len = truncate_row(row_cols.data(), row_vals.data(), len,
                           opt.truncation);
      out_cols.insert(out_cols.end(), row_cols.begin(), row_cols.begin() + len);
      out_vals.insert(out_vals.end(), row_vals.begin(), row_vals.begin() + len);
      rownnz[i - row_lo] = len;
      // Advance past every marker value this row handed out so stale
      // entries always test below the next row_start.
      mark_base += chat_n;
    }
    cnt.bytes_written +=
        out_cols.size() * (sizeof(Int) + sizeof(double));
  }

  // Stitch per-thread chunks.
  CSRMatrix P(n, nc);
  for (int t = 0; t < nt; ++t)
    for (std::size_t r = 0; r < chunk_rownnz[t].size(); ++r)
      P.rowptr[bounds[t] + Int(r) + 1] = chunk_rownnz[t][r];
  exclusive_scan(P.rowptr);
  P.colidx.resize(P.rowptr[n]);
  P.values.resize(P.rowptr[n]);
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    const Int dst = P.rowptr[bounds[t]];
    std::copy(chunk_col[t].begin(), chunk_col[t].end(), P.colidx.begin() + dst);
    std::copy(chunk_val[t].begin(), chunk_val[t].end(), P.values.begin() + dst);
  }
  if (wc)
    for (const WorkCounters& c : counters) *wc += c;
  if (!opt.fused_truncation) {
    // Baseline: whole-matrix truncation as a separate pass.
    return truncate_interpolation(P, opt.truncation, wc);
  }
  return P;
}

namespace {

/// Row-partitioned representation for the §3.1.2 variant: A without its
/// diagonal, columns grouped per row into {coarse same-sign-as-diag,
/// coarse opposite-sign, fine} by one counting sweep.
struct PartitionedA {
  CSRMatrix M;             ///< off-diagonal entries, grouped
  std::vector<Int> ptr1;   ///< end of coarse-same-sign segment
  std::vector<Int> ptr2;   ///< end of coarse-opposite-sign segment
  std::vector<double> diag;
};

PartitionedA partition_rows_cf(const CSRMatrix& A, Int nc) {
  PartitionedA p;
  const Int n = A.nrows;
  p.diag.assign(n, 0.0);
  p.M = CSRMatrix(n, n);
  parallel_for(0, n, [&](Int i) {
    Int cnt = 0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      if (A.colidx[k] == i)
        p.diag[i] = A.values[k];
      else
        ++cnt;
    }
    p.M.rowptr[i + 1] = cnt;
  });
  exclusive_scan(p.M.rowptr);
  p.M.colidx.resize(p.M.rowptr[n]);
  p.M.values.resize(p.M.rowptr[n]);
  parallel_for(0, n, [&](Int i) {
    Int pos = p.M.rowptr[i];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      if (A.colidx[k] != i) {
        p.M.colidx[pos] = A.colidx[k];
        p.M.values[pos] = A.values[k];
        ++pos;
      }
  });
  auto sgn = [](double v) { return v >= 0 ? 1.0 : -1.0; };
  RowPartition rp = three_way_partition_rows(
      p.M, [&](Int i, Int col, double val) -> int {
        if (col >= nc) return 2;                       // fine
        return sgn(val) == sgn(p.diag[i]) ? 0 : 1;     // abar == 0 / != 0
      });
  p.ptr1 = std::move(rp.ptr1);
  p.ptr2 = std::move(rp.ptr2);
  return p;
}

}  // namespace

CSRMatrix extpi_interp_partitioned(const CSRMatrix& A, const CSRMatrix& S,
                                   const CFMarker& cf,
                                   const ExtPIOptions& opt,
                                   WorkCounters* wc) {
  TRACE_SPAN("interp.extpi_part", "kernel", "rows", std::int64_t(A.nrows));
  require(A.nrows == A.ncols, "extpi_partitioned: A must be square");
  const Int n = A.nrows;
  Int nc = 0;
  while (nc < n && cf[nc] > 0) ++nc;
  for (Int i = nc; i < n; ++i)
    require(cf[i] <= 0, "extpi_partitioned: cf must be coarse-first");

  PartitionedA pa = partition_rows_cf(A, nc);
  const CSRMatrix& M = pa.M;

  const int nt = num_threads();
  std::vector<Int> bounds(nt + 1);
  for (int t = 0; t <= nt; ++t) bounds[t] = Int(Long(n) * t / nt);
  std::vector<std::vector<Int>> chunk_col(nt);
  std::vector<std::vector<double>> chunk_val(nt);
  std::vector<std::vector<Int>> chunk_rownnz(nt);
  std::vector<WorkCounters> counters(nt);

#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    WorkCounters& cnt = counters[t];
    const Int row_lo = bounds[t], row_hi = bounds[t + 1];
    auto& out_cols = chunk_col[t];
    auto& out_vals = chunk_val[t];
    auto& rownnz = chunk_rownnz[t];
    rownnz.assign(row_hi - row_lo, 0);

    // Markers: strong-neighbor stamp over all columns; Ĉ slot over coarse
    // columns only (Ĉ contains only C points in the coarse-first range).
    std::vector<Int> smark(n, -1);
    std::vector<Int> chat_pos(nc, -1);
    std::vector<Int> chat_cols;
    std::vector<double> acc;
    Int stamp = 0;
    Int chat_base = 0;

    for (Int i = row_lo; i < row_hi; ++i) {
      if (cf[i] > 0) {
        out_cols.push_back(i);  // coarse-first: compact index == row index
        out_vals.push_back(1.0);
        rownnz[i - row_lo] = 1;
        continue;
      }
      // Stamp strong neighbors of i.
      ++stamp;
      for (Int k = S.rowptr[i]; k < S.rowptr[i + 1]; ++k)
        smark[S.colidx[k]] = stamp;

      const Int row_start = chat_base;
      chat_cols.clear();
      acc.clear();
      auto chat_insert = [&](Int c) {
        if (chat_pos[c] < row_start) {
          chat_pos[c] = row_start + Int(chat_cols.size());
          chat_cols.push_back(c);
          acc.push_back(0.0);
        }
        ++cnt.branches;
      };
      // Ĉ: strong coarse neighbors (both sign segments) + strong C sets of
      // strong fine neighbors. No classification branches: the segment
      // boundaries say what each entry is.
      for (Int k = M.rowptr[i]; k < pa.ptr2[i]; ++k)
        if (smark[M.colidx[k]] == stamp) chat_insert(M.colidx[k]);
      for (Int k = pa.ptr2[i]; k < M.rowptr[i + 1]; ++k) {
        const Int j = M.colidx[k];
        if (smark[j] != stamp) continue;
        for (Int ks = S.rowptr[j]; ks < S.rowptr[j + 1]; ++ks) {
          const Int j2 = S.colidx[ks];
          if (j2 < nc) chat_insert(j2);  // coarse test = one compare
        }
        cnt.bytes_read += (S.rowptr[j + 1] - S.rowptr[j]) * sizeof(Int);
      }
      const Int chat_n = Int(chat_cols.size());
      if (chat_n == 0) {
        ++chat_base;
        continue;
      }

      // Numerator seeds; weak columns outside Ĉ lump into the diagonal.
      double atilde = pa.diag[i];
      for (Int k = M.rowptr[i]; k < pa.ptr2[i]; ++k) {
        const Int c = M.colidx[k];
        if (chat_pos[c] >= row_start)
          acc[chat_pos[c] - row_start] += M.values[k];
        else
          atilde += M.values[k];
      }
      for (Int k = pa.ptr2[i]; k < M.rowptr[i + 1]; ++k)
        if (smark[M.colidx[k]] != stamp) atilde += M.values[k];

      // Distance-two terms through strong fine neighbors: the b_ik and
      // scatter loops touch ONLY the opposite-sign coarse segment (the
      // same-sign segment has abar == 0 by construction) plus the fine
      // segment entry l == i.
      for (Int k = pa.ptr2[i]; k < M.rowptr[i + 1]; ++k) {
        const Int j = M.colidx[k];
        if (smark[j] != stamp) continue;
        const double a_ik = M.values[k];
        const double a_kk = pa.diag[j];
        // ā_ki: the single fine-segment entry pointing back at i, sign
        // filtered against a_kk (the only sign test left in the loop).
        double abar_ki = 0.0;
        for (Int kk = pa.ptr2[j]; kk < M.rowptr[j + 1]; ++kk)
          if (M.colidx[kk] == i) {
            const double v = M.values[kk];
            if ((v >= 0) != (a_kk >= 0)) abar_ki = v;
            break;
          }
        double b_ik = abar_ki;
        for (Int kk = pa.ptr1[j]; kk < pa.ptr2[j]; ++kk) {
          const Int l = M.colidx[kk];
          if (chat_pos[l] >= row_start) b_ik += M.values[kk];
          ++cnt.branches;
        }
        cnt.bytes_read += (pa.ptr2[j] - pa.ptr1[j]) *
                          (sizeof(Int) + sizeof(double));
        if (b_ik == 0.0) {
          atilde += a_ik;
          continue;
        }
        const double scale = a_ik / b_ik;
        cnt.flops += 1;
        atilde += scale * abar_ki;
        for (Int kk = pa.ptr1[j]; kk < pa.ptr2[j]; ++kk) {
          const Int l = M.colidx[kk];
          const Int slot = chat_pos[l];
          if (slot >= row_start) {
            acc[slot - row_start] += scale * M.values[kk];
            cnt.flops += 2;
          }
        }
      }

      // Finalize + fused truncation.
      thread_local std::vector<Int> row_cols;
      thread_local std::vector<double> row_vals;
      row_cols.clear();
      row_vals.clear();
      if (atilde != 0.0) {
        const double inv = -1.0 / atilde;
        for (Int c = 0; c < chat_n; ++c) {
          const double w = inv * acc[c];
          if (w == 0.0) continue;
          row_cols.push_back(chat_cols[c]);
          row_vals.push_back(w);
          cnt.flops += 1;
        }
      }
      Int len = Int(row_cols.size());
      if (opt.fused_truncation)
        len = truncate_row(row_cols.data(), row_vals.data(), len,
                           opt.truncation);
      out_cols.insert(out_cols.end(), row_cols.begin(), row_cols.begin() + len);
      out_vals.insert(out_vals.end(), row_vals.begin(), row_vals.begin() + len);
      rownnz[i - row_lo] = len;
      chat_base += chat_n;
    }
  }

  CSRMatrix P(n, nc);
  for (int t = 0; t < nt; ++t)
    for (std::size_t r = 0; r < chunk_rownnz[t].size(); ++r)
      P.rowptr[bounds[t] + Int(r) + 1] = chunk_rownnz[t][r];
  exclusive_scan(P.rowptr);
  P.colidx.resize(P.rowptr[n]);
  P.values.resize(P.rowptr[n]);
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    const Int dst = P.rowptr[bounds[t]];
    std::copy(chunk_col[t].begin(), chunk_col[t].end(), P.colidx.begin() + dst);
    std::copy(chunk_val[t].begin(), chunk_val[t].end(), P.values.begin() + dst);
  }
  if (wc)
    for (const WorkCounters& c : counters) *wc += c;
  if (!opt.fused_truncation) return truncate_interpolation(P, opt.truncation, wc);
  return P;
}

}  // namespace hpamg
