// Reservoir-simulation problem generator for the strong-scaling experiment
// (SC'15 Fig 8). The paper uses an elliptic pressure equation with
// geostatistically generated permeability fields (sequential Gaussian
// simulation); those data are proprietary, so we synthesize the closest
// equivalent: a 3-D 7-point finite-volume Poisson operator whose cell
// permeability is log-normal, K = exp(sigma * G), with G a spatially
// correlated Gaussian field built by moving-average smoothing of white
// noise. The resulting operator has ~7 nnz/row and coefficient jumps of
// several orders of magnitude — the ill-conditioning the paper highlights.
#pragma once

#include "matrix/csr.hpp"

namespace hpamg {

struct ReservoirOptions {
  double sigma = 2.0;        ///< log-permeability std-dev (e^{±2σ} jumps)
  Int correlation_len = 4;   ///< smoothing window half-width in cells
  std::uint64_t seed = 42;
};

/// Generates the permeability field only (for inspection/tests).
std::vector<double> permeability_field(Int nx, Int ny, Int nz,
                                       const ReservoirOptions& opt);

/// Generates the pressure-equation operator with harmonic-mean
/// transmissibilities from the permeability field.
CSRMatrix reservoir_matrix(Int nx, Int ny, Int nz,
                           const ReservoirOptions& opt = {});

}  // namespace hpamg
