// lint-fixture-path: src/krylov/bad_beat.cpp
// Violation fixture: a driver loop that publishes live heartbeats but
// opens no TRACE_SPAN, so a watchdog report on this loop could not be
// joined against the trace timeline.
// expect: beat-trace-span
#include "matrix/csr.hpp"
#include "support/live.hpp"

namespace hpamg {

void unspanned_driver_loop(const Vector& r, double rnorm0) {
  for (int it = 1; it <= 100; ++it) {
    double rnorm = 0.0;
    for (double v : r) rnorm += v * v;
    live::beat_iteration(it, rnorm / rnorm0);
    if (rnorm < 1e-16) break;
  }
}

}  // namespace hpamg
