// Deadline: a monotonic-clock time budget threaded through solver
// iteration loops.
//
// The service layer (src/service) admits requests with latency contracts;
// a solve that cannot finish inside its contract must unwind cleanly
// mid-iteration — partial results reported, no work discarded silently —
// instead of running to max_iterations while the caller has already timed
// out. AMGSolver::solve / solve_multi and every Krylov driver check the
// deadline once per outer iteration (the same cadence as the live
// heartbeat publishes, so the check piggybacks on an existing beat site)
// and stop with Status::kDeadlineExceeded when it has passed.
//
// A default-constructed Deadline never expires, so callers that do not
// care pay one branch per iteration and nothing else. Built on
// steady_clock: wall-clock adjustments cannot expire (or resurrect) a
// budget.
#pragma once

#include <chrono>
#include <limits>

namespace hpamg {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unbounded: never expires.
  Deadline() = default;

  /// Explicit spelling of the unbounded deadline.
  static Deadline never() { return Deadline(); }

  /// Expires `seconds` from now (<= 0 means already expired).
  static Deadline after(double seconds) {
    return Deadline(Clock::now() + to_duration(seconds));
  }

  /// Expires at an absolute steady_clock instant.
  static Deadline at(Clock::time_point tp) { return Deadline(tp); }

  bool bounded() const { return bounded_; }

  /// True once the budget has passed; always false for unbounded.
  bool expired() const { return bounded_ && Clock::now() >= tp_; }

  /// Seconds until expiry: negative once past, +infinity when unbounded.
  double remaining_s() const {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(tp_ - Clock::now()).count();
  }

  /// Expiry instant; meaningful only when bounded().
  Clock::time_point time_point() const { return tp_; }

  /// The earlier of two deadlines (unbounded is the identity).
  static Deadline sooner(const Deadline& a, const Deadline& b) {
    if (!a.bounded_) return b;
    if (!b.bounded_) return a;
    return Deadline(a.tp_ < b.tp_ ? a.tp_ : b.tp_);
  }

 private:
  explicit Deadline(Clock::time_point tp) : bounded_(true), tp_(tp) {}

  static Clock::duration to_duration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  bool bounded_ = false;
  Clock::time_point tp_{};
};

}  // namespace hpamg
