// google-benchmark microbenchmarks for the per-kernel claims of §3/§5.2:
//  - SpMV restriction: transpose-per-call (baseline) vs kept R (3.7x);
//  - hybrid GS: branchy baseline vs partitioned optimized (1.2x);
//  - strength creation: serial vs prefix-sum parallel assembly (6.1x);
//  - matrix transpose: serial vs parallel counting sort;
//  - residual + norm: separate vs fused (§3.3);
//  - interpolation/restriction: full P vs identity-block form.
#include <benchmark/benchmark.h>

#include "amg/smoother.hpp"
#include "amg/spmv.hpp"
#include "amg/strength.hpp"
#include "gen/stencil.hpp"
#include "matrix/permute.hpp"
#include "matrix/transpose.hpp"
#include "matrix/vector_ops.hpp"

namespace {

using namespace hpamg;

CSRMatrix bench_matrix() {
  static CSRMatrix A = [] {
    CSRMatrix m = lap3d_7pt(24, 24, 24);
    m.sort_rows();
    return m;
  }();
  return A;
}

/// Interpolation-shaped operator: n x (n/4), ~4 entries per fine row.
CSRMatrix bench_interp() {
  static CSRMatrix P = [] {
    const Int n = 24 * 24 * 24, nc = n / 4;
    std::vector<Triplet> t;
    for (Int i = 0; i < nc; ++i) t.push_back({i, i, 1.0});
    for (Int i = nc; i < n; ++i) {
      const Int c = (i * 7919) % nc;
      t.push_back({i, c, 0.4});
      t.push_back({i, (c + 1) % nc, 0.3});
      t.push_back({i, (c + 17) % nc, 0.3});
    }
    return CSRMatrix::from_triplets(n, nc, std::move(t));
  }();
  return P;
}

void BM_RestrictionTransposeEachCall(benchmark::State& state) {
  CSRMatrix P = bench_interp();
  Vector r(P.nrows, 1.0), rc(P.ncols);
  for (auto _ : state) {
    // Baseline HYPRE: derive R = P^T for every restriction (§3.2).
    CSRMatrix R = transpose_serial(P);
    spmv(R, r, rc);
    benchmark::DoNotOptimize(rc.data());
  }
}
BENCHMARK(BM_RestrictionTransposeEachCall);

void BM_RestrictionKeptTranspose(benchmark::State& state) {
  CSRMatrix P = bench_interp();
  CSRMatrix R = transpose_parallel(P);  // kept from setup
  Vector r(P.nrows, 1.0), rc(P.ncols);
  for (auto _ : state) {
    spmv(R, r, rc);
    benchmark::DoNotOptimize(rc.data());
  }
}
BENCHMARK(BM_RestrictionKeptTranspose);

void BM_RestrictionIdentityBlock(benchmark::State& state) {
  CSRMatrix P = bench_interp();
  const Int nc = P.ncols;
  CSRMatrix Pf(P.nrows - nc, nc);
  {
    std::vector<Triplet> t;
    for (Int i = nc; i < P.nrows; ++i)
      for (Int k = P.rowptr[i]; k < P.rowptr[i + 1]; ++k)
        t.push_back({i - nc, P.colidx[k], P.values[k]});
    Pf = CSRMatrix::from_triplets(P.nrows - nc, nc, std::move(t));
  }
  CSRMatrix PfT = transpose_parallel(Pf);
  Vector r(P.nrows, 1.0), rc(nc);
  for (auto _ : state) {
    restrict_identity_block(PfT, r, rc, nc);
    benchmark::DoNotOptimize(rc.data());
  }
}
BENCHMARK(BM_RestrictionIdentityBlock);

void BM_HybridGsBaseline(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  HybridGSBaseline gs(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  for (auto _ : state) {
    gs.sweep(A, b, x, t, true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_HybridGsBaseline);

void BM_HybridGsOptimized(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  HybridGSOptimized gs(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  for (auto _ : state) {
    gs.sweep(b, x, t, 0, A.nrows, true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_HybridGsOptimized);

void BM_StrengthSerial(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix S = strength_matrix_serial(A, {});
    benchmark::DoNotOptimize(S.nnz());
  }
}
BENCHMARK(BM_StrengthSerial);

void BM_StrengthParallel(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix S = strength_matrix(A, {});
    benchmark::DoNotOptimize(S.nnz());
  }
}
BENCHMARK(BM_StrengthParallel);

void BM_TransposeSerial(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix T = transpose_serial(A);
    benchmark::DoNotOptimize(T.nnz());
  }
}
BENCHMARK(BM_TransposeSerial);

void BM_TransposeParallel(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix T = transpose_parallel(A);
    benchmark::DoNotOptimize(T.nnz());
  }
}
BENCHMARK(BM_TransposeParallel);

void BM_ResidualThenNorm(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  Vector x(A.nrows, 0.5), b(A.nrows, 1.0), r(A.nrows);
  for (auto _ : state) {
    spmv_residual(A, x, b, r);
    double n = dot(r, r);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ResidualThenNorm);

void BM_ResidualNormFused(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  Vector x(A.nrows, 0.5), b(A.nrows, 1.0), r(A.nrows);
  for (auto _ : state) {
    double n = spmv_residual_norm2sq_fused(A, x, b, r);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ResidualNormFused);

}  // namespace

BENCHMARK_MAIN();
