// Tests for multi-color GS and the numeric setup refresh (time-dependent
// reuse), plus the smoother comparison properties behind the §5.2 study.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/solver.hpp"
#include "amg/spmv.hpp"
#include "gen/stencil.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

// ------------------------------------------------------------ multicolor --

TEST(MultiColorGs, ColoringIsProper) {
  CSRMatrix A = lap2d_5pt(20, 20);
  MultiColorGS mc(A);
  // 5-point stencil is bipartite: exactly 2 colors (red-black).
  EXPECT_EQ(mc.num_colors(), 2);
  CSRMatrix B = lap3d_27pt(6, 6, 6);
  MultiColorGS mcb(B);
  EXPECT_GE(mcb.num_colors(), 8);  // 27-pt needs >= 8 colors
  EXPECT_LE(mcb.num_colors(), 32);
}

TEST(MultiColorGs, SweepReducesResidual) {
  CSRMatrix A = lap2d_5pt(24, 24);
  MultiColorGS mc(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), r(A.nrows);
  spmv_residual(A, x, b, r);
  const double r0 = norm2(r);
  for (int s = 0; s < 100; ++s) mc.sweep(A, b, x);
  spmv_residual(A, x, b, r);
  EXPECT_LT(norm2(r), 0.5 * r0);
}

TEST(MultiColorGs, RedBlackMatchesManualRedBlackGs) {
  // On a bipartite graph, multi-color GS with 2 colors is red-black GS.
  CSRMatrix A = lap2d_5pt(10, 10);
  MultiColorGS mc(A);
  ASSERT_EQ(mc.num_colors(), 2);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), ref(A.nrows, 0.0);
  mc.sweep(A, b, x);
  // Manual red-black: greedy first-fit colors row 0 red, so red = parity
  // of (i + j) on the grid.
  auto update = [&](Int i) {
    double acc = b[i];
    double diag = 1.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j == i)
        diag = A.values[k];
      else
        acc -= A.values[k] * ref[j];
    }
    ref[i] = acc / diag;
  };
  for (Int i = 0; i < A.nrows; ++i)
    if ((i / 10 + i % 10) % 2 == 0) update(i);
  for (Int i = 0; i < A.nrows; ++i)
    if ((i / 10 + i % 10) % 2 == 1) update(i);
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(x[i], ref[i], 1e-12);
}

TEST(MultiColorGs, WorksAsAmgSmoother) {
  CSRMatrix A = lap3d_7pt(10, 10, 10);
  AMGOptions o;
  o.smoother = SmootherKind::kMultiColorGS;
  AMGSolver amg(A, o);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, 1e-7, 100);
  EXPECT_TRUE(r.converged);
}

TEST(MultiColorGs, ConvergesFasterThanFinePartitionedHybrid) {
  // The AmgX regime (§5.2): against a near-Jacobi hybrid GS (one partition
  // per few rows), colored GS keeps true GS coupling and needs no more
  // V-cycles.
  CSRMatrix A = lap2d_5pt(40, 40);
  Vector b(A.nrows, 1.0);
  AMGOptions mc_opts, hyb_opts;
  mc_opts.smoother = SmootherKind::kMultiColorGS;
  hyb_opts.gs_partitions = 800;  // 2 rows per partition: Jacobi-like
  AMGSolver mc(A, mc_opts), hyb(A, hyb_opts);
  Vector x1(A.nrows, 0.0), x2(A.nrows, 0.0);
  SolveResult r_mc = mc.solve(b, x1, 1e-7, 300);
  SolveResult r_hyb = hyb.solve(b, x2, 1e-7, 300);
  ASSERT_TRUE(r_mc.converged);
  ASSERT_TRUE(r_hyb.converged);
  EXPECT_LE(r_mc.iterations, r_hyb.iterations);
}

// ---------------------------------------------------------------- refresh --

TEST(RefreshValues, MatchesFreshSetupSolve) {
  CSRMatrix A = lap2d_5pt(30, 30);
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  ASSERT_TRUE(amg.solve(b, x, 1e-7, 100).converged);

  // New values, same pattern: scaled + coefficient drift.
  CSRMatrix A2 = A;
  for (std::size_t k = 0; k < A2.values.size(); ++k)
    A2.values[k] *= 2.0;
  amg.refresh_values(A2);
  std::fill(x.begin(), x.end(), 0.0);
  SolveResult r = amg.solve(b, x, 1e-7, 100);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(test::relative_residual(A2, x, b), 1e-6);

  // Iteration count comparable to a from-scratch setup on A2 (lagged
  // transfers are exact here because P is scale-invariant for A -> 2A).
  AMGSolver fresh(A2, {});
  Vector xf(A2.nrows, 0.0);
  SolveResult rf = fresh.solve(b, xf, 1e-7, 100);
  EXPECT_NEAR(r.iterations, rf.iterations, 2);
}

TEST(RefreshValues, HandlesRealCoefficientDrift) {
  // Time-dependent diffusion: coefficients drift smoothly; frozen
  // interpolation degrades gracefully (a few extra iterations), which is
  // the reuse trade-off the paper describes.
  auto coeff_at = [](double t) {
    return [t](Int x, Int y, Int) {
      return 1.0 + 0.3 * t * std::sin(0.2 * x) * std::cos(0.2 * y);
    };
  };
  CSRMatrix A0 = lap2d_5pt(30, 30, 1.0, coeff_at(0.0));
  AMGSolver amg(A0, {});
  Vector b(A0.nrows, 1.0);
  Int first_iters = 0;
  for (int step = 0; step <= 3; ++step) {
    CSRMatrix At = lap2d_5pt(30, 30, 1.0, coeff_at(double(step)));
    if (step > 0) amg.refresh_values(At);
    Vector x(At.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-7, 200);
    ASSERT_TRUE(r.converged) << "step " << step;
    if (step == 0)
      first_iters = r.iterations;
    else
      EXPECT_LE(r.iterations, first_iters + 6) << "step " << step;
  }
}

TEST(RefreshValues, BaselineVariantToo) {
  CSRMatrix A = lap2d_5pt(20, 20);
  AMGOptions o;
  o.variant = Variant::kBaseline;
  AMGSolver amg(A, o);
  CSRMatrix A2 = A;
  for (auto& v : A2.values) v *= 3.0;
  amg.refresh_values(A2);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  EXPECT_TRUE(amg.solve(b, x, 1e-7, 100).converged);
}

TEST(RefreshValues, RejectsPatternChange) {
  CSRMatrix A = lap2d_5pt(15, 15);
  AMGSolver amg(A, {});
  CSRMatrix B = lap2d_9pt(15, 15);  // different stencil: new pattern
  EXPECT_THROW(amg.refresh_values(B), std::invalid_argument);
  CSRMatrix C = lap2d_5pt(16, 16);  // different size
  EXPECT_THROW(amg.refresh_values(C), std::invalid_argument);
}

TEST(RefreshValues, RefreshesCoarseLU) {
  CSRMatrix A = lap2d_5pt(12, 12);
  AMGSolver amg(A, {});
  CSRMatrix A2 = A;
  for (auto& v : A2.values) v *= 5.0;
  amg.refresh_values(A2);
  // Solve must reflect the new scaling exactly: x(A2) = x(A) / 5.
  Vector b(A.nrows, 1.0), x2(A.nrows, 0.0);
  ASSERT_TRUE(amg.solve(b, x2, 1e-10, 100).converged);
  AMGSolver ref(A, {});
  Vector x1(A.nrows, 0.0);
  ASSERT_TRUE(ref.solve(b, x1, 1e-10, 100).converged);
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(x2[i] * 5.0, x1[i], 1e-6);
}

}  // namespace
}  // namespace hpamg
