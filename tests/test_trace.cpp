// Tracer coverage: ring wraparound, concurrent rank writers, flow pairing,
// the Chrome trace-event golden schema (mirroring test_report.cpp), and
// agreement between trace flow events and the simmpi CommStats counters.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dist/simmpi.hpp"
#include "support/report.hpp"
#include "support/trace.hpp"

namespace hpamg {
namespace {

/// Fresh tracer state for each test (tests in one binary run serially).
void restart_tracing(std::size_t events_per_thread = 0) {
  trace::disable();
  trace::reset();
  trace::enable(events_per_thread);
}

JsonValue export_parsed() { return json_parse(trace::export_chrome_json()); }

std::vector<std::string> member_names(const JsonValue& v) {
  std::vector<std::string> out;
  for (const auto& [k, _] : v.members) out.push_back(k);
  return out;
}

TEST(Trace, DisabledRecordsNothing) {
  trace::disable();
  trace::reset();
  ASSERT_FALSE(trace::enabled());
  {
    TRACE_SPAN("should.not.appear");
    trace::instant("nor.this");
    trace::counter("c", "v", 1);
  }
  const trace::TraceStats s = trace::stats();
  EXPECT_EQ(s.recorded, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(Trace, RingWraparoundKeepsNewest) {
  restart_tracing(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) trace::counter("wrap", "i", i);
  trace::disable();

  const trace::TraceStats s = trace::stats();
  EXPECT_EQ(s.recorded, 8u);
  EXPECT_EQ(s.dropped, 12u);

  // The survivors must be exactly the 8 newest samples, still in order.
  JsonValue v = export_parsed();
  std::vector<int> seen;
  for (const JsonValue& e : v.find("traceEvents")->items)
    if (e.find("ph")->text == "C")
      seen.push_back(int(e.find("args")->find("i")->number));
  EXPECT_EQ(seen, (std::vector<int>{12, 13, 14, 15, 16, 17, 18, 19}));
  EXPECT_DOUBLE_EQ(v.find("otherData")->find("dropped_events")->number, 12.0);
}

TEST(Trace, SpanNesting) {
  restart_tracing();
  {
    TRACE_SPAN("outer");
    TRACE_SPAN("inner", std::int64_t(3));
  }
  trace::disable();
  JsonValue v = export_parsed();
  std::map<std::string, const JsonValue*> spans;
  for (const JsonValue& e : v.find("traceEvents")->items)
    if (e.find("ph")->text == "X") spans[e.find("name")->text] = &e;
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by begin ts with parents first; the outer span covers the inner.
  EXPECT_LE(spans["outer"]->find("ts")->number,
            spans["inner"]->find("ts")->number);
  EXPECT_GE(spans["outer"]->find("dur")->number,
            spans["inner"]->find("dur")->number);
  EXPECT_DOUBLE_EQ(spans["inner"]->find("args")->find("level")->number, 3.0);
}

TEST(Trace, ConcurrentRankWritersMergeMonotonic) {
  restart_tracing();
  constexpr int kRanks = 4;
  simmpi::run(kRanks, [](simmpi::Comm& c) {
    for (int round = 0; round < 50; ++round) {
      TRACE_SPAN("work");
      const int peer = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      double v = round;
      c.send(peer, 100, &v, sizeof v);
      (void)c.recv(prev, 100);
      c.barrier();
    }
  });
  trace::disable();

  JsonValue v = export_parsed();
  std::map<std::pair<int, int>, double> last_ts;
  std::set<int> pids;
  for (const JsonValue& e : v.find("traceEvents")->items) {
    if (e.find("ph")->text == "M") continue;
    const int pid = int(e.find("pid")->number);
    const int tid = int(e.find("tid")->number);
    pids.insert(pid);
    double& prev = last_ts[{pid, tid}];
    EXPECT_GE(e.find("ts")->number, prev)
        << "track (" << pid << "," << tid << ") not time-sorted";
    prev = std::max(prev, e.find("ts")->number);
  }
  EXPECT_EQ(pids.size(), std::size_t(kRanks));  // one process row per rank
}

TEST(Trace, FlowIdsPairUp) {
  restart_tracing();
  std::vector<simmpi::CommStats> stats =
      simmpi::run(2, [](simmpi::Comm& c) {
        for (int i = 0; i < 10; ++i) {
          double v = i;
          c.send(1 - c.rank(), 200, &v, sizeof v);
          (void)c.recv(1 - c.rank(), 200);
        }
      });
  trace::disable();

  JsonValue v = export_parsed();
  std::map<long long, std::pair<int, int>> flows;  // id -> (sends, recvs)
  for (const JsonValue& e : v.find("traceEvents")->items) {
    const std::string& ph = e.find("ph")->text;
    if (ph == "s")
      ++flows[(long long)e.find("id")->number].first;
    else if (ph == "f")
      ++flows[(long long)e.find("id")->number].second;
  }
  std::uint64_t expected = 0;
  for (const simmpi::CommStats& s : stats) expected += s.messages_sent;
  EXPECT_EQ(flows.size(), expected);
  for (const auto& [id, counts] : flows) {
    EXPECT_EQ(counts.first, 1) << "flow " << id;
    EXPECT_EQ(counts.second, 1) << "flow " << id;
  }
}

TEST(Trace, FlowTotalsAgreeWithCommStats) {
  restart_tracing();
  std::vector<simmpi::CommStats> stats =
      simmpi::run(3, [](simmpi::Comm& c) {
        // Uneven traffic so per-peer accounting is distinguishable.
        std::vector<char> payload(64 * (c.rank() + 1));
        for (int r = 0; r < c.size(); ++r) {
          if (r == c.rank()) continue;
          c.send(r, 300, payload.data(), payload.size());
        }
        for (int r = 0; r < c.size(); ++r) {
          if (r == c.rank()) continue;
          (void)c.recv(r, 300);
        }
        (void)c.allreduce_sum(1.0);
      });
  trace::disable();

  std::uint64_t report_msgs = 0, report_bytes = 0;
  for (const simmpi::CommStats& s : stats) {
    report_msgs += s.messages_sent;
    report_bytes += s.bytes_sent;
    // per_peer splits must sum back to the rank totals.
    std::uint64_t peer_msgs = 0, peer_bytes = 0;
    for (const simmpi::PeerTraffic& p : s.per_peer) {
      peer_msgs += p.messages;
      peer_bytes += p.bytes;
    }
    EXPECT_EQ(peer_msgs, s.messages_sent);
    EXPECT_EQ(peer_bytes, s.bytes_sent);
  }

  std::uint64_t trace_msgs = 0, trace_bytes = 0;
  JsonValue v = export_parsed();
  for (const JsonValue& e : v.find("traceEvents")->items)
    if (e.find("ph")->text == "s") {
      ++trace_msgs;
      trace_bytes += std::uint64_t(e.find("args")->find("bytes")->number);
    }
  EXPECT_EQ(trace_msgs, report_msgs);
  EXPECT_EQ(trace_bytes, report_bytes);
}

TEST(Trace, DeltaSince) {
  simmpi::CommStats before, after;
  before.messages_sent = 2;
  before.bytes_sent = 100;
  before.per_peer = {{1, 50}, {1, 50}};
  after.messages_sent = 5;
  after.bytes_sent = 400;
  after.allreduces = 3;
  after.per_peer = {{2, 150}, {3, 250}};
  const simmpi::CommStats d = after.delta_since(before);
  EXPECT_EQ(d.messages_sent, 3u);
  EXPECT_EQ(d.bytes_sent, 300u);
  EXPECT_EQ(d.allreduces, 3u);
  ASSERT_EQ(d.per_peer.size(), 2u);
  EXPECT_EQ(d.per_peer[0].messages, 1u);
  EXPECT_EQ(d.per_peer[1].bytes, 200u);
}

// ---------------------------------------------------------- golden schema --

TEST(TraceSchema, GoldenFieldNames) {
  // The trace JSON is consumed by Perfetto/chrome://tracing and by
  // bench/trace_summary.cpp; renaming any field breaks both. This test
  // makes that a deliberate act (mirroring test_report.cpp).
  restart_tracing();
  trace::set_thread_track(1, "rank 0", "rank 0");
  trace::set_metadata("bench", "unit");
  {
    TRACE_SPAN("span.name", "kernel", "rows", std::int64_t(7));
  }
  trace::instant("mark");
  trace::counter("work", "flops", 42);
  const std::uint64_t id = trace::next_flow_id();
  trace::flow_out("msg", id, 1, 64);
  trace::flow_in("msg", id, 0, 64);
  trace::disable();

  JsonValue v = export_parsed();
  EXPECT_EQ(member_names(v), (std::vector<std::string>{
                                 "traceEvents", "displayTimeUnit",
                                 "otherData"}));
  EXPECT_EQ(v.find("displayTimeUnit")->text, "ms");
  EXPECT_TRUE(v.find("otherData")->has("bench"));
  EXPECT_TRUE(v.find("otherData")->has("dropped_events"));

  std::map<std::string, const JsonValue*> by_ph;
  for (const JsonValue& e : v.find("traceEvents")->items)
    by_ph[e.find("ph")->text] = &e;
  ASSERT_TRUE(by_ph.count("M"));
  ASSERT_TRUE(by_ph.count("X"));
  ASSERT_TRUE(by_ph.count("i"));
  ASSERT_TRUE(by_ph.count("C"));
  ASSERT_TRUE(by_ph.count("s"));
  ASSERT_TRUE(by_ph.count("f"));

  EXPECT_EQ(member_names(*by_ph["X"]),
            (std::vector<std::string>{"name", "cat", "ph", "ts", "dur",
                                      "pid", "tid", "args"}));
  EXPECT_EQ(member_names(*by_ph["i"]),
            (std::vector<std::string>{"name", "cat", "ph", "ts", "pid",
                                      "tid", "s"}));
  EXPECT_EQ(member_names(*by_ph["C"]),
            (std::vector<std::string>{"name", "cat", "ph", "ts", "pid",
                                      "tid", "args"}));
  EXPECT_EQ(member_names(*by_ph["s"]),
            (std::vector<std::string>{"name", "cat", "ph", "ts", "pid",
                                      "tid", "id", "args"}));
  EXPECT_EQ(member_names(*by_ph["f"]),
            (std::vector<std::string>{"name", "cat", "ph", "ts", "pid",
                                      "tid", "id", "bp", "args"}));
  const JsonValue* process_meta = nullptr;
  const JsonValue* thread_meta = nullptr;
  for (const JsonValue& e : v.find("traceEvents")->items) {
    if (e.find("ph")->text != "M") continue;
    if (e.find("name")->text == "process_name") process_meta = &e;
    if (e.find("name")->text == "thread_name") thread_meta = &e;
  }
  ASSERT_NE(process_meta, nullptr);
  ASSERT_NE(thread_meta, nullptr);
  EXPECT_EQ(member_names(*process_meta),
            (std::vector<std::string>{"name", "ph", "pid", "args"}));
  EXPECT_EQ(member_names(*thread_meta),
            (std::vector<std::string>{"name", "ph", "pid", "tid", "args"}));

  // Track naming: rank 0 renders as Chrome process 1 named "rank 0".
  bool found_process_name = false;
  for (const JsonValue& e : v.find("traceEvents")->items) {
    if (e.find("ph")->text != "M") continue;
    if (e.find("name")->text != "process_name") continue;
    if (int(e.find("pid")->number) == 1) {
      EXPECT_EQ(e.find("args")->find("name")->text, "rank 0");
      found_process_name = true;
    }
  }
  EXPECT_TRUE(found_process_name);

  EXPECT_DOUBLE_EQ(by_ph["X"]->find("args")->find("rows")->number, 7.0);
  EXPECT_EQ(by_ph["f"]->find("bp")->text, "e");
}

}  // namespace
}  // namespace hpamg
