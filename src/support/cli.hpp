// Minimal command-line option parser shared by benches and examples.
// Supports `--key value`, `--key=value`, and boolean `--flag`.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/common.hpp"

namespace hpamg {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> opts_;
  std::vector<std::string> positional_;
};

}  // namespace hpamg
