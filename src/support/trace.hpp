// Always-compiled, off-by-default event tracer (SC'15 §5 methodology: the
// per-phase / per-rank timelines that drive the paper's breakdown figures).
//
// Each thread records into its own fixed-capacity ring buffer (newest
// events win on overflow), so recording is lock-free after the first event
// a thread emits: one relaxed atomic load when tracing is disabled, a
// bump-pointer store when enabled. Nothing on the solve path allocates
// while tracing is off.
//
// Event kinds map onto the Chrome trace-event format (load the exported
// file in Perfetto / chrome://tracing):
//   - spans     ("X" complete events)  — TRACE_SPAN("spgemm.rap", level);
//   - instants  ("i")                  — point-in-time markers;
//   - counters  ("C")                  — sampled WorkCounters series;
//   - flows     ("s"/"f")             — tie a simmpi send to its matching
//     receive so cross-rank message dependencies render as arrows.
// Spans recorded while a rank waits inside simmpi carry the "blocked"
// category, which keeps wait time separable from compute in
// bench/trace_summary.cpp.
//
// Tracks: simmpi rank r records as Chrome process r+1 ("rank r"); threads
// outside a rank (single-node benches) record under process 0 ("host").
//
// Lifecycle: enable() / disable() / reset() and export must not race with
// threads that are actively recording — benches toggle tracing outside
// simmpi::run and export after it returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace hpamg::trace {

/// Maximum per-event argument pairs (kept small so Event stays POD-sized).
constexpr int kMaxArgs = 2;

/// One recorded event. `name` / `cat` / arg names must point to storage
/// that outlives the trace (string literals in practice) — events store
/// the pointers, never copies.
struct Event {
  enum class Kind : std::uint8_t {
    kSpan,     ///< Chrome "X": ts + dur
    kInstant,  ///< Chrome "i"
    kCounter,  ///< Chrome "C": args are the sampled series
    kFlowOut,  ///< Chrome "s": flow start (message sent)
    kFlowIn,   ///< Chrome "f": flow end (message received)
  };
  Kind kind = Kind::kInstant;
  std::uint8_t nargs = 0;
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;   ///< relative to the enable() epoch
  std::uint64_t dur_ns = 0;  ///< spans only
  std::uint64_t flow_id = 0; ///< flow events only (nonzero)
  const char* arg_name[kMaxArgs] = {nullptr, nullptr};
  std::int64_t arg_val[kMaxArgs] = {0, 0};
};

namespace detail {
extern std::atomic<bool> g_enabled;
/// Records into the calling thread's ring buffer (creates it on first use).
void emit(const Event& e);
}  // namespace detail

/// True while tracing is on. One relaxed load — the only cost every
/// instrumentation site pays when tracing is disabled.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns tracing on. `events_per_thread` sets the ring capacity applied to
/// buffers created afterwards (0 keeps the current/default capacity,
/// 32768). Idempotent; the timestamp epoch is set on the first enable
/// after a reset().
void enable(std::size_t events_per_thread = 0);
void disable();
/// Drops all recorded events, tracks, and metadata and restores the
/// default ring capacity (tracing stays in its current on/off state; the
/// epoch re-arms on the next enable()).
void reset();

/// Nanoseconds since the enable() epoch (monotonic clock).
std::uint64_t now_ns();

/// Process-unique id for tying a flow's "s" and "f" ends together.
std::uint64_t next_flow_id();

/// Binds the calling thread to a (pid, name) track — simmpi::run calls
/// this with pid = rank + 1 so every rank renders as its own process row.
/// No-op while tracing is disabled.
void set_thread_track(int pid, const std::string& process_name,
                      const std::string& thread_name);

/// Key/value recorded into the exported file's "otherData" block so traces
/// are self-describing (build config, bench name, machine-model params).
void set_metadata(const std::string& key, const std::string& value);

// ---- direct emitters (no-ops while disabled) ----
void instant(const char* name, const char* cat = "marker");
/// Counter sample: up to two named series per event (e.g. flops + bytes).
void counter(const char* name, const char* series0, std::int64_t value0,
             const char* series1 = nullptr, std::int64_t value1 = 0);
void flow_out(const char* name, std::uint64_t id, int peer,
              std::int64_t bytes);
void flow_in(const char* name, std::uint64_t id, int peer,
             std::int64_t bytes);

/// RAII scoped duration event. Construction snapshots the clock; the
/// destructor records one complete ("X") event. When tracing is disabled
/// the constructor is a single relaxed load and no event is recorded.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "kernel") {
    if (enabled()) begin(name, cat);
  }
  /// TRACE_SPAN("spgemm.rap", level) convenience: attaches a "level" arg.
  Span(const char* name, std::int64_t level) : Span(name) {
    arg("level", level);
  }
  Span(const char* name, const char* cat, const char* a0, std::int64_t v0)
      : Span(name, cat) {
    arg(a0, v0);
  }
  Span(const char* name, const char* cat, const char* a0, std::int64_t v0,
       const char* a1, std::int64_t v1)
      : Span(name, cat) {
    arg(a0, v0);
    arg(a1, v1);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span now instead of at scope exit (for sequential phases
  /// that share one scope). Safe to call when inactive; the destructor
  /// then does nothing.
  void finish() {
    if (active_) end();
  }

  /// Attaches an argument after construction (e.g. bytes known only once
  /// a receive completes). Ignored beyond kMaxArgs or while inactive.
  void arg(const char* name, std::int64_t value) {
    if (active_ && e_.nargs < kMaxArgs) {
      e_.arg_name[e_.nargs] = name;
      e_.arg_val[e_.nargs] = value;
      ++e_.nargs;
    }
  }

 private:
  void begin(const char* name, const char* cat);
  void end();
  bool active_ = false;
  Event e_;
};

/// Aggregate recording statistics (for tests and the export footer).
struct TraceStats {
  std::size_t tracks = 0;
  std::uint64_t recorded = 0;  ///< events currently held in ring buffers
  std::uint64_t dropped = 0;   ///< overwritten by ring wraparound
};
TraceStats stats();

/// Merges every thread's ring buffer into one Chrome trace-event JSON
/// document: per-track events sorted by timestamp, process/thread name
/// metadata events, and set_metadata() pairs under "otherData".
std::string export_chrome_json();
/// Writes export_chrome_json() to `path`; false (errno intact) on I/O
/// failure.
bool write_chrome_json(const std::string& path);

}  // namespace hpamg::trace

// Scoped span with an automatically unique local name.
#define HPAMG_TRACE_CONCAT2(a, b) a##b
#define HPAMG_TRACE_CONCAT(a, b) HPAMG_TRACE_CONCAT2(a, b)
#define TRACE_SPAN(...) \
  ::hpamg::trace::Span HPAMG_TRACE_CONCAT(hpamg_trace_span_, \
                                          __LINE__)(__VA_ARGS__)
