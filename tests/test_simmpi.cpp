// Tests for the simmpi runtime: point-to-point ordering, collectives,
// statistics, and the tag-block allocator.
#include <gtest/gtest.h>

#include "dist/simmpi.hpp"

namespace hpamg {
namespace {

using simmpi::Comm;
using simmpi::CommStats;

TEST(Simmpi, SingleRankRuns) {
  auto stats = simmpi::run(1, [](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    EXPECT_EQ(c.allreduce_sum(Long(5)), 5);
  });
  EXPECT_EQ(stats.size(), 1u);
}

TEST(Simmpi, PointToPointPreservesOrder) {
  simmpi::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int m = 0; m < 10; ++m) {
        std::vector<Int> payload = {Int(m), Int(m * m)};
        c.send_vec(1, 42, payload);
      }
    } else {
      for (int m = 0; m < 10; ++m) {
        std::vector<Int> in = c.recv_vec<Int>(0, 42);
        ASSERT_EQ(in.size(), 2u);
        EXPECT_EQ(in[0], m);  // FIFO per (source, tag)
        EXPECT_EQ(in[1], m * m);
      }
    }
  });
}

TEST(Simmpi, TagsIsolateStreams) {
  simmpi::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<Int> a = {1}, b = {2};
      c.send_vec(1, 100, a);
      c.send_vec(1, 200, b);
    } else {
      // Receive in the opposite order of sending: tags keep them apart.
      EXPECT_EQ(c.recv_vec<Int>(0, 200)[0], 2);
      EXPECT_EQ(c.recv_vec<Int>(0, 100)[0], 1);
    }
  });
}

TEST(Simmpi, AllToAllPattern) {
  const int P = 5;
  simmpi::run(P, [P](Comm& c) {
    for (int r = 0; r < P; ++r) {
      if (r == c.rank()) continue;
      std::vector<Long> v = {Long(c.rank() * 100 + r)};
      c.send_vec(r, 7, v);
    }
    for (int r = 0; r < P; ++r) {
      if (r == c.rank()) continue;
      EXPECT_EQ(c.recv_vec<Long>(r, 7)[0], Long(r * 100 + c.rank()));
    }
  });
}

TEST(Simmpi, Collectives) {
  const int P = 4;
  simmpi::run(P, [P](Comm& c) {
    EXPECT_EQ(c.allreduce_sum(Long(c.rank() + 1)), Long(P * (P + 1) / 2));
    EXPECT_DOUBLE_EQ(c.allreduce_sum(double(c.rank())), 6.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(double(c.rank()) * 2), 6.0);
    EXPECT_EQ(c.allreduce_max(Long(10 - c.rank())), 10);
    std::vector<Long> g = c.allgather(Long(c.rank() * c.rank()));
    ASSERT_EQ(int(g.size()), P);
    for (int r = 0; r < P; ++r) EXPECT_EQ(g[r], Long(r * r));
    // Back-to-back collectives must not interfere.
    for (int it = 0; it < 5; ++it)
      EXPECT_EQ(c.allreduce_sum(Long(1)), Long(P));
  });
}

TEST(Simmpi, StatsCountMessagesAndBytes) {
  auto stats = simmpi::run(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v(100, 1.0);
      c.send_vec(1, 5, v);                     // non-persistent
      c.send_vec(1, 6, v, /*persistent=*/true);  // persistent
      std::vector<double> empty;
      c.send_vec(1, 7, empty);  // zero-byte: not counted as traffic
    } else {
      c.recv(0, 5);
      c.recv(0, 6);
      c.recv(0, 7);
    }
  });
  EXPECT_EQ(stats[0].messages_sent, 2u);
  EXPECT_EQ(stats[0].bytes_sent, 1600u);
  EXPECT_EQ(stats[0].request_setups, 1u);
  EXPECT_EQ(stats[0].persistent_starts, 1u);
  EXPECT_EQ(stats[1].messages_sent, 0u);
}

TEST(Simmpi, RankExceptionPropagates) {
  EXPECT_THROW(simmpi::run(1, [](Comm&) {
    throw std::runtime_error("rank failure");
  }),
               std::runtime_error);
}

TEST(Simmpi, TagBlocksAreDisjointAndDeterministic) {
  simmpi::run(3, [](Comm& c) {
    const int a = c.next_tag_block();
    const int b = c.next_tag_block();
    EXPECT_NE(a, b);
    EXPECT_GE(b - a, 16);
  });
}

TEST(Simmpi, TagBlocksStayInDynamicRange) {
  simmpi::run(1, [](Comm& c) {
    EXPECT_EQ(c.next_tag_block(), Comm::kDynamicTagBase);
    EXPECT_EQ(c.next_tag_block(), Comm::kDynamicTagBase + Comm::kTagBlockSize);
    EXPECT_EQ(c.next_tag_block(),
              Comm::kDynamicTagBase + 2 * Comm::kTagBlockSize);
  });
}

TEST(Simmpi, TagBlockExhaustionThrows) {
  // Draining the dynamic tag space must fail loudly, not wrap and alias
  // tags of live exchange patterns.
  EXPECT_THROW(simmpi::run(1, [](Comm& c) {
    for (int i = 0; i <= Comm::kMaxTagBlocks; ++i) c.next_tag_block();
  }),
               std::invalid_argument);
}

TEST(Simmpi, ManyRanksStress) {
  // Ring pass with 16 rank-threads (larger than host cores: exercises the
  // blocking mailboxes under timesharing).
  const int P = 16;
  simmpi::run(P, [P](Comm& c) {
    const int next = (c.rank() + 1) % P;
    const int prev = (c.rank() + P - 1) % P;
    Long token = c.rank();
    for (int hop = 0; hop < P; ++hop) {
      std::vector<Long> v = {token};
      c.send_vec(next, 9, v);
      token = c.recv_vec<Long>(prev, 9)[0];
    }
    EXPECT_EQ(token, Long(c.rank()));  // went all the way around
  });
}

}  // namespace
}  // namespace hpamg
