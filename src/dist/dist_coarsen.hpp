// Distributed strength-of-connection and PMIS coarsening.
//
// Strength is row-local, so the distributed strength matrix needs no
// communication and shares A's colmap. PMIS iterates with halo exchanges of
// the measures (once) and the C/F markers (each round), exactly the
// communication structure of BoomerAMG's PMIS. The aggressive variant adds
// a gather of remote strength rows to build the distance-two graph among
// first-pass C points, plus a triplet exchange for its reverse edges.
#pragma once

#include "amg/pmis.hpp"
#include "amg/strength.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/halo.hpp"

namespace hpamg {

/// Distributed strength matrix; same row partition and colmap as A
/// (entries are a subset of A's pattern).
DistMatrix dist_strength(const DistMatrix& A, const StrengthOptions& opt,
                         bool parallel_assembly = true,
                         WorkCounters* wc = nullptr);

/// Distributed PMIS. S is the distributed strength matrix, ST its
/// distributed transpose (dist_transpose(S)). Returns the local CF marker.
CFMarker dist_pmis(simmpi::Comm& comm, const DistMatrix& S,
                   const DistMatrix& ST, const PmisOptions& opt = {},
                   WorkCounters* wc = nullptr);

/// Distributed aggressive (distance-two) PMIS; optionally returns the
/// first-pass marker for 2-stage interpolation.
CFMarker dist_pmis_aggressive(simmpi::Comm& comm, const DistMatrix& S,
                              const DistMatrix& ST,
                              const PmisOptions& opt = {},
                              CFMarker* first_pass_out = nullptr,
                              WorkCounters* wc = nullptr);

/// Global coarse numbering: every rank numbers its C points consecutively;
/// rank p's C points occupy [starts[p], starts[p+1]).
struct CoarseNumbering {
  std::vector<Long> starts;       ///< size nranks + 1
  std::vector<Long> local_to_global;  ///< per local point; -1 for F points
  Long global_coarse = 0;
};

CoarseNumbering coarse_numbering(simmpi::Comm& comm, const CFMarker& cf);

}  // namespace hpamg
