#include <cmath>

#include "amg/spmv.hpp"
#include "krylov/gmres_common.hpp"
#include "krylov/krylov.hpp"
#include "support/live.hpp"
#include "support/trace.hpp"

namespace hpamg {

// Right-preconditioned restarted GMRES(m): solves A M^{-1} u = b, x = M^{-1}u.
KrylovResult gmres(const CSRMatrix& A, const Vector& b, Vector& x,
                   const KrylovOptions& opt, const Preconditioner& precond) {
  TRACE_SPAN("krylov.gmres", "phase");
  live::ActivityScope live_scope;
  const Int n = A.nrows;
  require(Int(b.size()) == n && Int(x.size()) == n, "gmres: size mismatch");
  KrylovResult res;
  const Int m = opt.restart;

  double normb = norm2(b);
  if (normb == 0.0) normb = 1.0;

  std::vector<Vector> V(m + 1, Vector(n, 0.0));
  Vector r(n), z(n), w(n);
  Int total_it = 0;

  while (total_it < opt.max_iterations) {
    spmv_residual(A, x, b, r);
    const double beta = norm2(r);
    double relres = beta / normb;
    if (total_it == 0) res.history.push_back(relres);
    if (relres < opt.rtol) {
      res.converged = true;
      res.status = Status::kOk;
      res.final_relres = relres;
      return res;
    }
    if (!std::isfinite(relres)) {
      res.status = Status::kNonFinite;
      res.nonfinite_iteration = total_it;
      res.final_relres = relres;
      return res;
    }
    copy(r, V[0]);
    scale(1.0 / beta, V[0]);
    detail::HessenbergLS ls(m);
    ls.set_rhs(beta);

    bool deadline_hit = false;
    Int j = 0;
    for (; j < m && total_it < opt.max_iterations; ++j, ++total_it) {
      if (opt.deadline.expired()) {
        // Fall through to the update below: the j completed Arnoldi steps
        // still yield a valid least-squares iterate (partial result).
        deadline_hit = true;
        break;
      }
      if (precond)
        precond(V[j], z);
      else
        copy(V[j], z);
      spmv(A, z, w);
      // Modified Gram-Schmidt.
      for (Int i = 0; i <= j; ++i) {
        const double hij = dot(w, V[i]);
        ls.h(i, j) = hij;
        axpy(-hij, V[i], w);
      }
      const double hn = norm2(w);
      ls.h(j + 1, j) = hn;
      if (hn != 0.0) {
        copy(w, V[j + 1]);
        scale(1.0 / hn, V[j + 1]);
      }
      relres = ls.apply_rotations(j) / normb;
      res.history.push_back(relres);
      res.iterations = total_it + 1;
      live::beat_iteration(total_it + 1, relres);
      if (!std::isfinite(relres) || !std::isfinite(hn)) {
        // The Krylov basis is poisoned; applying the update x += ... y
        // would only spread the NaN into x.
        res.status = Status::kNonFinite;
        res.nonfinite_iteration = total_it + 1;
        res.final_relres = relres;
        return res;
      }
      if (relres < opt.rtol || hn == 0.0) {
        ++j;
        ++total_it;
        break;
      }
    }
    // x += M^{-1} (V y)
    std::vector<double> y = ls.solve(j);
    set_zero(w);
    for (Int i = 0; i < j; ++i) axpy(y[i], V[i], w);
    if (precond) {
      precond(w, z);
      axpy(1.0, z, x);
    } else {
      axpy(1.0, w, x);
    }
    if (relres < opt.rtol) {
      res.converged = true;
      res.status = Status::kOk;
      res.final_relres = relres;
      return res;
    }
    res.final_relres = relres;
    if (deadline_hit) {
      res.status = Status::kDeadlineExceeded;
      return res;
    }
  }
  // Final true residual.
  spmv_residual(A, x, b, r);
  res.final_relres = norm2(r) / normb;
  res.converged = res.final_relres < opt.rtol;
  res.status = res.converged ? Status::kOk
               : !std::isfinite(res.final_relres) ? Status::kNonFinite
                                                  : Status::kMaxIterations;
  return res;
}

}  // namespace hpamg
