#include "amg/smoother.hpp"

#include <algorithm>

#include "matrix/permute.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

void jacobi_sweep(const CSRMatrix& A, const Vector& b, Vector& x,
                  Vector& temp, double weight, Int row_lo, Int row_hi,
                  WorkCounters* wc) {
  if (row_hi < 0) row_hi = A.nrows;
  TRACE_SPAN("smoother.jacobi", "kernel", "rows",
             std::int64_t(row_hi - row_lo));
  copy(x, temp);
  parallel_for(row_lo, row_hi, [&](Int i) {
    double acc = b[i];
    double diag = 1.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j == i)
        diag = A.values[k];
      else
        acc -= A.values[k] * temp[j];
    }
    x[i] = temp[i] + weight * (acc / diag - temp[i]);
  });
  if (wc) {
    wc->flops += 2 * std::uint64_t(A.rowptr[row_hi] - A.rowptr[row_lo]);
    wc->bytes_read += std::uint64_t(A.rowptr[row_hi] - A.rowptr[row_lo]) *
                      (sizeof(Int) + 2 * sizeof(double));
    wc->bytes_written += std::uint64_t(row_hi - row_lo) * sizeof(double);
  }
}

void jacobi_sweep_multi(const CSRMatrix& A, const MultiVector& B,
                        MultiVector& X, MultiVector& Temp, double weight,
                        Int row_lo, Int row_hi, WorkCounters* wc) {
  TRACE_SPAN("smoother.jacobi_multi", "kernel", "rows",
             std::int64_t(A.nrows));
  if (row_hi < 0) row_hi = A.nrows;
  require(X.m == B.m && X.m == Temp.m, "jacobi_sweep_multi: shape mismatch");
  copy(X, Temp);
  const Int m = X.m;
  const double* HPAMG_RESTRICT bp = B.data.data();
  const double* HPAMG_RESTRICT tp = Temp.data.data();
  double* HPAMG_RESTRICT xp = X.data.data();
  for (Int j0 = 0; j0 < m; j0 += kMaxRhsBlock) {
    const Int bw = std::min(kMaxRhsBlock, m - j0);
    parallel_for(row_lo, row_hi, [&](Int i) {
      double acc[kMaxRhsBlock];
      const double* HPAMG_RESTRICT br = bp + std::size_t(i) * m + j0;
      for (Int j = 0; j < bw; ++j) acc[j] = br[j];
      double diag = 1.0;
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
        const Int col = A.colidx[k];
        if (col == i) {
          diag = A.values[k];
        } else {
          const double v = A.values[k];
          const double* HPAMG_RESTRICT tr = tp + std::size_t(col) * m + j0;
          for (Int j = 0; j < bw; ++j) acc[j] -= v * tr[j];
        }
      }
      const double* HPAMG_RESTRICT ti = tp + std::size_t(i) * m + j0;
      double* HPAMG_RESTRICT xr = xp + std::size_t(i) * m + j0;
      for (Int j = 0; j < bw; ++j)
        xr[j] = ti[j] + weight * (acc[j] / diag - ti[j]);
    });
  }
  if (wc) {
    const std::uint64_t nnz_range =
        std::uint64_t(A.rowptr[row_hi] - A.rowptr[row_lo]);
    wc->flops += 2 * nnz_range * std::uint64_t(m);
    wc->bytes_read += nnz_range * (sizeof(Int) + sizeof(double)) +
                      nnz_range * std::uint64_t(m) * sizeof(double);
    wc->bytes_written +=
        std::uint64_t(row_hi - row_lo) * std::uint64_t(m) * sizeof(double);
  }
}

// ---------------------------------------------------------------------------

HybridGSBaseline::HybridGSBaseline(const CSRMatrix& A, int parts)
    : bounds_(partition_by_weight(A.rowptr,
                                  parts > 0 ? parts : num_threads())) {}

void HybridGSBaseline::sweep(const CSRMatrix& A, const Vector& b, Vector& x,
                             Vector& temp, bool forward,
                             const signed char* cf, signed char want,
                             WorkCounters* wc) const {
  TRACE_SPAN("smoother.gs_baseline", "kernel", "rows",
             std::int64_t(A.nrows));
  copy(x, temp);
  // Partitions are independent within a sweep (in-partition columns read
  // x in Gauss-Seidel order, external columns read the pre-sweep copy), so
  // the partition count is a numerical knob, not a thread count: iterate
  // partitions on the ambient team instead of forcing a team of nt threads
  // (which oversubscribes badly for large gs_partitions).
  const int nt = int(bounds_.size()) - 1;
  std::vector<WorkCounters> counters(wc ? nt : 0);
#pragma omp parallel for schedule(static)
  for (int t = 0; t < nt; ++t) {
    const Int is = bounds_[t], ie = bounds_[t + 1];
    WorkCounters local;
    for (Int s = 0; s < ie - is; ++s) {
      const Int i = forward ? is + s : ie - 1 - s;
      // Baseline per-row C/F branch when doing C-F relaxation.
      ++local.branches;
      if (cf && cf[i] != want) continue;
      double acc = b[i];
      double diag = 1.0;
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
        const Int j = A.colidx[k];
        // Fig 2(a): one branch per column for the diagonal test and one for
        // thread ownership.
        local.branches += 2;
        if (j == i) {
          diag = A.values[k];
        } else if (j >= is && j < ie) {
          acc -= A.values[k] * x[j];
        } else {
          acc -= A.values[k] * temp[j];
        }
        local.flops += 2;
      }
      x[i] = acc / diag;
      local.bytes_read += std::uint64_t(A.rowptr[i + 1] - A.rowptr[i]) *
                          (sizeof(Int) + 2 * sizeof(double));
      local.bytes_written += sizeof(double);
    }
    if (wc) counters[t] = local;
  }
  if (wc)
    for (const WorkCounters& c : counters) *wc += c;
}

// ---------------------------------------------------------------------------

HybridGSOptimized::HybridGSOptimized(const CSRMatrix& A, int parts) {
  require(A.nrows == A.ncols, "HybridGSOptimized: matrix must be square");
  const Int n = A.nrows;
  bounds_ = partition_by_weight(A.rowptr,
                                parts > 0 ? parts : num_threads());
  inv_diag_.assign(n, 1.0);

  // Copy A without its diagonal.
  A_ = CSRMatrix(n, n);
  parallel_for(0, n, [&](Int i) {
    Int cnt = 0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      if (A.colidx[k] == i)
        inv_diag_[i] = A.values[k] != 0.0 ? 1.0 / A.values[k] : 1.0;
      else
        ++cnt;
    }
    A_.rowptr[i + 1] = cnt;
  });
  exclusive_scan(A_.rowptr);
  A_.colidx.resize(A_.rowptr[n]);
  A_.values.resize(A_.rowptr[n]);
  parallel_for(0, n, [&](Int i) {
    Int pos = A_.rowptr[i];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      if (A.colidx[k] != i) {
        A_.colidx[pos] = A.colidx[k];
        A_.values[pos] = A.values[k];
        ++pos;
      }
  });

  // Owner thread per row range: rows in [bounds_[t], bounds_[t+1]) belong
  // to thread t; a column is "local" iff it falls in the owner's range.
  std::vector<Int> owner(n);
  for (int t = 0; t + 1 < int(bounds_.size()); ++t)
    for (Int i = bounds_[t]; i < bounds_[t + 1]; ++i) owner[i] = t;
  RowPartition part = three_way_partition_rows(
      A_, [&](Int i, Int col, double) -> int {
        if (owner[col] != owner[i]) return 2;  // external
        return col < i ? 0 : 1;               // local lower / local upper
      });
  ptr1_ = std::move(part.ptr1);
  ptr2_ = std::move(part.ptr2);
}

void HybridGSOptimized::sweep(const Vector& b, Vector& x, Vector& temp,
                              Int row_lo, Int row_hi, bool forward,
                              bool zero_init, WorkCounters* wc) const {
  TRACE_SPAN("smoother.gs_optimized", "kernel", "rows",
             std::int64_t(A_.nrows));
  if (row_hi < 0) row_hi = A_.nrows;
  if (!zero_init) copy(x, temp);
  // As in the baseline sweep: partitions are independent within a sweep,
  // so they are distributed over the ambient team rather than forcing a
  // num_threads(nt) team per call.
  const int nt = int(bounds_.size()) - 1;
  std::vector<WorkCounters> counters(wc ? nt : 0);
#pragma omp parallel for schedule(static)
  for (int t = 0; t < nt; ++t) {
    const Int is = std::max(bounds_[t], row_lo);
    const Int ie = std::min(bounds_[t + 1], row_hi);
    WorkCounters local;
    const Int* HPAMG_RESTRICT colidx = A_.colidx.data();
    const double* HPAMG_RESTRICT values = A_.values.data();
    for (Int s = 0; s < ie - is; ++s) {
      const Int i = forward ? is + s : ie - 1 - s;
      double acc = b[i];
      // Local-lower: already updated this sweep — read x directly.
      for (Int k = A_.rowptr[i]; k < ptr1_[i]; ++k)
        acc -= values[k] * x[colidx[k]];
      if (!zero_init) {
        // Local-upper: previous-sweep values, still in x (Gauss-Seidel).
        for (Int k = ptr1_[i]; k < ptr2_[i]; ++k)
          acc -= values[k] * x[colidx[k]];
        // External: other threads' rows — read the pre-sweep copy.
        for (Int k = ptr2_[i]; k < A_.rowptr[i + 1]; ++k)
          acc -= values[k] * temp[colidx[k]];
        local.flops += 2 * std::uint64_t(A_.rowptr[i + 1] - A_.rowptr[i]);
      } else {
        // Upper triangle and external entries multiply known zeros (§3.2):
        // skip them entirely. Only the forward sweep preserves this
        // invariant; callers assert forward when zero_init.
        local.flops += 2 * std::uint64_t(ptr1_[i] - A_.rowptr[i]);
      }
      x[i] = acc * inv_diag_[i];
      local.bytes_read += std::uint64_t(A_.rowptr[i + 1] - A_.rowptr[i]) *
                          (sizeof(Int) + 2 * sizeof(double));
      local.bytes_written += sizeof(double);
    }
    if (wc) counters[t] = local;
  }
  if (wc)
    for (const WorkCounters& c : counters) *wc += c;
}

void HybridGSOptimized::sweep_multi(const MultiVector& B, MultiVector& X,
                                    MultiVector& Temp, Int row_lo, Int row_hi,
                                    bool forward, bool zero_init,
                                    WorkCounters* wc) const {
  TRACE_SPAN("smoother.gs_optimized_multi", "kernel", "rows",
             std::int64_t(A_.nrows));
  if (row_hi < 0) row_hi = A_.nrows;
  require(X.m == B.m && X.m == Temp.m,
          "HybridGSOptimized::sweep_multi: shape mismatch");
  if (!zero_init) copy(X, Temp);
  const Int m = X.m;
  const int nt = int(bounds_.size()) - 1;
  std::vector<WorkCounters> counters(wc ? nt : 0);
  const double* HPAMG_RESTRICT bp = B.data.data();
  const double* HPAMG_RESTRICT tp = Temp.data.data();
  double* HPAMG_RESTRICT xp = X.data.data();
#pragma omp parallel for schedule(static)
  for (int t = 0; t < nt; ++t) {
    const Int is = std::max(bounds_[t], row_lo);
    const Int ie = std::min(bounds_[t + 1], row_hi);
    WorkCounters local;
    const Int* HPAMG_RESTRICT colidx = A_.colidx.data();
    const double* HPAMG_RESTRICT values = A_.values.data();
    // Columns are mutually independent (row i of column j only ever reads
    // column j), so sweeping the partition once per column block keeps the
    // per-column update order identical to the scalar sweep.
    for (Int j0 = 0; j0 < m; j0 += kMaxRhsBlock) {
      const Int bw = std::min(kMaxRhsBlock, m - j0);
      for (Int s = 0; s < ie - is; ++s) {
        const Int i = forward ? is + s : ie - 1 - s;
        double acc[kMaxRhsBlock];
        const double* HPAMG_RESTRICT br = bp + std::size_t(i) * m + j0;
        for (Int j = 0; j < bw; ++j) acc[j] = br[j];
        // Local-lower: already updated this sweep — read x directly.
        for (Int k = A_.rowptr[i]; k < ptr1_[i]; ++k) {
          const double v = values[k];
          const double* HPAMG_RESTRICT xr =
              xp + std::size_t(colidx[k]) * m + j0;
          for (Int j = 0; j < bw; ++j) acc[j] -= v * xr[j];
        }
        if (!zero_init) {
          // Local-upper: previous-sweep values, still in x.
          for (Int k = ptr1_[i]; k < ptr2_[i]; ++k) {
            const double v = values[k];
            const double* HPAMG_RESTRICT xr =
                xp + std::size_t(colidx[k]) * m + j0;
            for (Int j = 0; j < bw; ++j) acc[j] -= v * xr[j];
          }
          // External: other partitions' rows — read the pre-sweep copy.
          for (Int k = ptr2_[i]; k < A_.rowptr[i + 1]; ++k) {
            const double v = values[k];
            const double* HPAMG_RESTRICT tr =
                tp + std::size_t(colidx[k]) * m + j0;
            for (Int j = 0; j < bw; ++j) acc[j] -= v * tr[j];
          }
          local.flops += 2 * std::uint64_t(A_.rowptr[i + 1] - A_.rowptr[i]) *
                         std::uint64_t(bw);
        } else {
          local.flops += 2 * std::uint64_t(ptr1_[i] - A_.rowptr[i]) *
                         std::uint64_t(bw);
        }
        const double inv = inv_diag_[i];
        double* HPAMG_RESTRICT xr = xp + std::size_t(i) * m + j0;
        for (Int j = 0; j < bw; ++j) xr[j] = acc[j] * inv;
        local.bytes_read += std::uint64_t(A_.rowptr[i + 1] - A_.rowptr[i]) *
                            (sizeof(Int) + sizeof(double) +
                             std::uint64_t(bw) * sizeof(double));
        local.bytes_written += std::uint64_t(bw) * sizeof(double);
      }
    }
    if (wc) counters[t] = local;
  }
  if (wc)
    for (const WorkCounters& c : counters) *wc += c;
}

// ---------------------------------------------------------------------------

LexGS::LexGS(const CSRMatrix& A) {
  const Int n = A.nrows;
  inv_diag_.assign(n, 1.0);
  std::vector<Int> level(n, 0);
  Int max_level = 0;
  for (Int i = 0; i < n; ++i) {
    Int lv = 0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j < i) lv = std::max(lv, level[j] + 1);
      if (j == i && A.values[k] != 0.0) inv_diag_[i] = 1.0 / A.values[k];
    }
    level[i] = lv;
    max_level = std::max(max_level, lv);
  }
  level_ptr_.assign(max_level + 2, 0);
  for (Int i = 0; i < n; ++i) ++level_ptr_[level[i] + 1];
  for (Int l = 0; l <= max_level; ++l) level_ptr_[l + 1] += level_ptr_[l];
  level_rows_.resize(n);
  std::vector<Int> fill(level_ptr_.begin(), level_ptr_.end() - 1);
  for (Int i = 0; i < n; ++i) level_rows_[fill[level[i]]++] = i;
}

void LexGS::sweep_fused_residual(const CSRMatrix& A, Vector& x, Vector& r,
                                 WorkCounters* wc) const {
  TRACE_SPAN("smoother.lexgs_fused", "kernel", "rows",
             std::int64_t(A.nrows));
  // Residual-form Gauss-Seidel: with r = b - A x maintained exactly, the
  // GS update of row i is simply delta = r_i / a_ii. The scatter of
  // column i (== row i by symmetry) then restores the invariant. Rows
  // within one wavefront level touch disjoint dependencies, but their
  // scatters may collide on shared neighbors, so the scatter runs
  // sequentially within a level on conflicting columns; with one thread
  // per level partition the simple sequential-per-level form is exact.
  const Int nlv = num_levels();
  for (Int l = 0; l < nlv; ++l) {
    for (Int p = level_ptr_[l]; p < level_ptr_[l + 1]; ++p) {
      const Int i = level_rows_[p];
      const double delta = r[i] * inv_diag_[i];
      if (delta == 0.0) continue;
      x[i] += delta;
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
        r[A.colidx[k]] -= A.values[k] * delta;
    }
  }
  if (wc) {
    wc->flops += 3 * std::uint64_t(A.nnz());
    wc->bytes_read +=
        std::uint64_t(A.nnz()) * (sizeof(Int) + 2 * sizeof(double));
    wc->bytes_written += std::uint64_t(A.nnz()) * sizeof(double);
  }
}

void LexGS::sweep(const CSRMatrix& A, const Vector& b, Vector& x,
                  bool forward, WorkCounters* wc) const {
  TRACE_SPAN("smoother.lexgs", "kernel", "rows", std::int64_t(A.nrows));
  const Int nlv = num_levels();
  for (Int lw = 0; lw < nlv; ++lw) {
    const Int l = forward ? lw : nlv - 1 - lw;
    const Int lo = level_ptr_[l], hi = level_ptr_[l + 1];
    parallel_for(lo, hi, [&](Int p) {
      const Int i = level_rows_[p];
      double acc = b[i];
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
        const Int j = A.colidx[k];
        if (j != i) acc -= A.values[k] * x[j];
      }
      x[i] = acc * inv_diag_[i];
    });
  }
  if (wc) {
    wc->flops += 2 * std::uint64_t(A.nnz());
    wc->bytes_read += std::uint64_t(A.nnz()) * (sizeof(Int) + 2 * sizeof(double));
    wc->bytes_written += std::uint64_t(A.nrows) * sizeof(double);
  }
}

// ---------------------------------------------------------------------------

MultiColorGS::MultiColorGS(const CSRMatrix& A) {
  const Int n = A.nrows;
  inv_diag_.assign(n, 1.0);
  // Greedy first-fit coloring in row order; symmetric patterns get a
  // proper coloring (no two neighbors share a color).
  std::vector<Int> color(n, -1);
  Int ncolors = 0;
  std::vector<char> used;
  for (Int i = 0; i < n; ++i) {
    used.assign(ncolors + 1, 0);
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j == i) {
        if (A.values[k] != 0.0) inv_diag_[i] = 1.0 / A.values[k];
        continue;
      }
      if (color[j] >= 0) used[color[j]] = 1;
    }
    Int c = 0;
    while (c < ncolors && used[c]) ++c;
    color[i] = c;
    ncolors = std::max(ncolors, c + 1);
  }
  color_ptr_.assign(ncolors + 1, 0);
  for (Int i = 0; i < n; ++i) ++color_ptr_[color[i] + 1];
  for (Int c = 0; c < ncolors; ++c) color_ptr_[c + 1] += color_ptr_[c];
  color_rows_.resize(n);
  std::vector<Int> fill(color_ptr_.begin(), color_ptr_.end() - 1);
  for (Int i = 0; i < n; ++i) color_rows_[fill[color[i]]++] = i;
}

void MultiColorGS::sweep(const CSRMatrix& A, const Vector& b, Vector& x,
                         bool forward, WorkCounters* wc) const {
  TRACE_SPAN("smoother.multicolor_gs", "kernel", "rows",
             std::int64_t(A.nrows));
  const Int nc = num_colors();
  for (Int cc = 0; cc < nc; ++cc) {
    const Int c = forward ? cc : nc - 1 - cc;
    const Int lo = color_ptr_[c], hi = color_ptr_[c + 1];
    // Rows of one color have no mutual coupling: safe to update in
    // parallel while reading every other color's current values.
    parallel_for(lo, hi, [&](Int p) {
      const Int i = color_rows_[p];
      double acc = b[i];
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
        const Int j = A.colidx[k];
        if (j != i) acc -= A.values[k] * x[j];
      }
      x[i] = acc * inv_diag_[i];
    });
  }
  if (wc) {
    wc->flops += 2 * std::uint64_t(A.nnz());
    // Each color pass re-streams the index structure: the memory-traffic
    // cost behind AmgX's slower MULTICOLOR_GS iterations.
    wc->bytes_read += std::uint64_t(A.nnz()) *
                      (sizeof(Int) + 2 * sizeof(double));
    wc->bytes_written += std::uint64_t(A.nrows) * sizeof(double);
  }
}

}  // namespace hpamg
