// lint-fixture-path: src/amg/bad_omp.cpp
// Violation fixture: a parallel region invisible to the tracer.
// expect: omp-trace-span
#include "matrix/csr.hpp"

namespace hpamg {

void untraced_kernel(Vector& y) {
#pragma omp parallel for
  for (Int i = 0; i < Int(y.size()); ++i) y[i] *= 2.0;
}

}  // namespace hpamg
