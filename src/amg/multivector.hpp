// Row-major multivector X[n][m]: m right-hand sides stored interleaved so
// the batched kernels (amg/spmv, amg/smoother, amg/cycle, dist/halo) read
// each matrix row once and apply it to all m columns — the XAMG-style
// multi-RHS generalization (ROADMAP item 1). Row-major layout is the one
// that amortizes matrix traffic: the m values of one vector row share the
// cache lines the row's nonzeros touch.
//
// Column j of a MultiVector corresponds to one scalar Vector; the batched
// kernels are written so each column's arithmetic order is identical to the
// scalar kernel's, making batched and scalar results bitwise-equal
// (tests/test_multirhs.cpp pins this).
#pragma once

#include <vector>

#include "matrix/vector_ops.hpp"
#include "support/common.hpp"
#include "support/counters.hpp"

namespace hpamg {

struct MultiVector {
  Int n = 0;  ///< rows (vector length)
  Int m = 0;  ///< columns (number of right-hand sides)
  std::vector<double> data;  ///< row-major: data[i * m + j]

  MultiVector() = default;
  MultiVector(Int rows, Int cols) { resize(rows, cols); }

  /// Reshapes to rows x cols and zero-fills.
  void resize(Int rows, Int cols) {
    n = rows;
    m = cols;
    data.assign(std::size_t(rows) * std::size_t(cols), 0.0);
  }

  double& at(Int i, Int j) { return data[std::size_t(i) * m + j]; }
  double at(Int i, Int j) const { return data[std::size_t(i) * m + j]; }
  double* row(Int i) { return data.data() + std::size_t(i) * m; }
  const double* row(Int i) const { return data.data() + std::size_t(i) * m; }
};

/// Largest column count the batched kernels process per pass over the
/// matrix; wider multivectors are handled in blocks of this many columns
/// (keeps the per-row accumulators in registers/stack).
inline constexpr Int kMaxRhsBlock = 32;

/// X = 0
void set_zero(MultiVector& X);

/// dst = src (shapes must match)
void copy(const MultiVector& src, MultiVector& dst);

/// out = column j of X (out resized to X.n)
void gather_column(const MultiVector& X, Int j, Vector& out);

/// column j of X = in (in.size() must be >= X.n)
void scatter_column(const Vector& in, Int j, MultiVector& X);

/// Per-column axpy: Y_j += alpha[j] * X_j for every column j.
void axpy_columns(const std::vector<double>& alpha, const MultiVector& X,
                  MultiVector& Y, WorkCounters* wc = nullptr);

/// Per-column xpby: Y_j = X_j + beta[j] * Y_j.
void xpby_columns(const MultiVector& X, const std::vector<double>& beta,
                  MultiVector& Y, WorkCounters* wc = nullptr);

/// Per-column scale: X_j *= s[j].
void scale_columns(const std::vector<double>& s, MultiVector& X,
                   WorkCounters* wc = nullptr);

/// Per-column inner products: out[j] = <X_j, Y_j>.
std::vector<double> dot_columns(const MultiVector& X, const MultiVector& Y,
                                WorkCounters* wc = nullptr);

/// Per-column squared norms: out[j] = <X_j, X_j>.
std::vector<double> norm2sq_columns(const MultiVector& X,
                                    WorkCounters* wc = nullptr);

}  // namespace hpamg
