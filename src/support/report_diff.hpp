// Bench-report regression diffing: compares two BENCH_*.json documents
// (support/report.hpp schema) metric-by-metric so the perf trajectory in
// version control can be gated. The bench/benchdiff CLI wraps this; tests
// drive it on synthetic report pairs (tests/test_metrics.cpp).
//
// Metrics are classified by key:
//   kTiming — wall-clock-derived, lower is better, compared with a loose
//             relative tolerance plus an absolute floor (smoke-size runs
//             finish in milliseconds; sub-floor times never gate);
//   kWork   — machine-independent counts (flops, bytes, iterations,
//             nnz, complexities, comm traffic), lower is better, tight
//             relative tolerance and no floor (they are deterministic for
//             a pinned thread count);
//   kInfo   — everything else (ratios, speedups, environment-dependent
//             values like RSS): reported in the table, never gates.
//
// Envelope-level `perf.*` gauges (roofline efficiency published by
// perfmodel/attrib) are diffed as kInfo with run name "": host- and
// coverage-dependent, so advisory only — never kMissing, never a gate.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpamg {

enum class MetricClass { kTiming, kWork, kInfo };

/// Classification from the (dotted) metric key alone.
MetricClass classify_metric(std::string_view key);

struct DiffOptions {
  /// Timing regression threshold: new > old * (1 + time_rel_tol) fails.
  double time_rel_tol = 0.50;
  /// Work regression threshold: new > old * (1 + work_rel_tol) fails.
  double work_rel_tol = 0.25;
  /// Timing deltas where both sides are below this never gate (smoke runs
  /// are noise-dominated at the millisecond scale).
  double time_floor_seconds = 0.05;
};

struct MetricDelta {
  std::string run;  ///< run name; "" for envelope-level entries
  std::string key;  ///< dotted path within the run
  double old_value = 0.0;
  double new_value = 0.0;
  MetricClass cls = MetricClass::kInfo;
  enum class Verdict {
    kOk,        ///< within tolerance (or kInfo)
    kImproved,  ///< better beyond tolerance (informational)
    kRegressed, ///< worse beyond tolerance — gates
    kMissing,   ///< present in old, absent in new — gates
    kAdded,     ///< new metric/run (informational)
  };
  Verdict verdict = Verdict::kOk;
};

struct DiffResult {
  /// Parse/validation/config-mismatch failure; deltas are empty when set.
  std::string error;
  std::vector<MetricDelta> deltas;
  int regressions = 0;
  int improvements = 0;
  int missing = 0;
  int added = 0;
  /// True when the new report is acceptable against the old one.
  bool ok() const { return error.empty() && regressions == 0 && missing == 0; }
};

/// Diffs two report documents (old = baseline, new = candidate). Reports
/// with different bench names, or params present in both documents with
/// different values, fail with `error` set — comparing different
/// configurations is meaningless, not a regression.
DiffResult diff_bench_reports(std::string_view old_json,
                              std::string_view new_json,
                              const DiffOptions& opts = {});

}  // namespace hpamg
