// Additional Krylov-solver properties: GMRES/FGMRES agreement under a
// fixed preconditioner, restart semantics, residual-history behaviour, and
// breakdown/edge handling.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/solver.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

TEST(KrylovExtra, GmresAndFgmresAgreeWithFixedPreconditioner) {
  // With a constant (linear) preconditioner, right-preconditioned GMRES and
  // FGMRES build the same Krylov space: iteration counts match closely.
  CSRMatrix A = lap2d_5pt(30, 30);
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0);
  auto pre = [&](const Vector& r, Vector& z) { amg.precondition(r, z); };
  KrylovOptions o;
  o.rtol = 1e-9;
  Vector x1(A.nrows, 0.0), x2(A.nrows, 0.0);
  KrylovResult g = gmres(A, b, x1, o, pre);
  KrylovResult f = fgmres(A, b, x2, o, pre);
  ASSERT_TRUE(g.converged);
  ASSERT_TRUE(f.converged);
  EXPECT_NEAR(g.iterations, f.iterations, 1);
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(x1[i], x2[i], 1e-6);
}

TEST(KrylovExtra, HistoriesDecreaseOverall) {
  CSRMatrix A = lap2d_5pt(20, 20);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-8;
  KrylovResult r = pcg(A, b, x, o);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.history.size(), 2u);
  EXPECT_LT(r.history.back(), r.history.front());
}

TEST(KrylovExtra, ZeroRhsConvergesImmediately) {
  CSRMatrix A = lap2d_5pt(10, 10);
  Vector b(A.nrows, 0.0), x(A.nrows, 0.0);
  for (int which = 0; which < 3; ++which) {
    std::fill(x.begin(), x.end(), 0.0);
    KrylovResult r = which == 0   ? pcg(A, b, x)
                     : which == 1 ? gmres(A, b, x)
                                  : fgmres(A, b, x);
    EXPECT_TRUE(r.converged) << which;
    EXPECT_EQ(r.iterations, 0) << which;
  }
}

TEST(KrylovExtra, SizeMismatchThrows) {
  CSRMatrix A = lap2d_5pt(8, 8);
  Vector b(10, 1.0), x(A.nrows, 0.0);
  EXPECT_THROW(pcg(A, b, x), std::invalid_argument);
  EXPECT_THROW(gmres(A, b, x), std::invalid_argument);
  EXPECT_THROW(fgmres(A, b, x), std::invalid_argument);
}

TEST(KrylovExtra, MaxIterationsRespected) {
  CSRMatrix A = lap2d_5pt(40, 40);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-14;  // unreachable in 3 iterations
  o.max_iterations = 3;
  KrylovResult r = pcg(A, b, x, o);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.iterations, 3);
}

TEST(KrylovExtra, FgmresToleratesVaryingPreconditioner) {
  // Flexible GMRES's reason to exist: a preconditioner that changes per
  // apply (alternating smoothers) must still converge; plain right-P GMRES
  // has no such guarantee.
  CSRMatrix A = lap2d_5pt(25, 25);
  AMGOptions o1, o2;
  o2.smoother = SmootherKind::kJacobi;
  AMGSolver amg1(A, o1), amg2(A, o2);
  int calls = 0;
  auto pre = [&](const Vector& r, Vector& z) {
    (++calls % 2 ? amg1 : amg2).precondition(r, z);
  };
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-9;
  KrylovResult r = fgmres(A, b, x, o, pre);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(test::relative_residual(A, x, b), 1e-8);
}

TEST(KrylovExtra, PcgMatchesLuSolution) {
  CSRMatrix A = test::random_spd(60, 4, 13);
  LUSolver lu(A);
  Vector b(60);
  for (Int i = 0; i < 60; ++i) b[i] = std::sin(0.3 * i);
  Vector x_lu(60), x_cg(60, 0.0);
  lu.solve(b.data(), x_lu.data());
  KrylovOptions o;
  o.rtol = 1e-12;
  o.max_iterations = 500;
  KrylovResult r = pcg(A, b, x_cg, o);
  ASSERT_TRUE(r.converged);
  for (Int i = 0; i < 60; ++i) ASSERT_NEAR(x_cg[i], x_lu[i], 1e-7);
}

}  // namespace
}  // namespace hpamg
