#include "gen/suite.hpp"

#include <cmath>

#include "gen/amg2013.hpp"
#include "gen/graph.hpp"
#include "gen/reservoir.hpp"
#include "gen/stencil.hpp"

namespace hpamg {

namespace {

Int side2d(Long target_rows, double scale) {
  return std::max<Int>(8, Int(std::lround(std::sqrt(double(target_rows) * scale))));
}

Int side3d(Long target_rows, double scale) {
  return std::max<Int>(6, Int(std::lround(std::cbrt(double(target_rows) * scale))));
}

}  // namespace

const std::vector<SuiteEntry>& table2_suite() {
  static const std::vector<SuiteEntry> suite = {
      {"2cubes_sphere", 101492, 9, 0.25},
      {"G2_circuit", 150102, 5, 0.25},
      {"G3_circuit", 1585478, 5, 0.25},
      {"StocF-1465", 1465137, 14, 0.6},
      {"apache2", 715176, 7, 0.25},
      {"atmosmodd", 1270432, 7, 0.25},
      {"atmosmodj", 1270432, 7, 0.25},
      {"atmosmodl", 1489752, 7, 0.25},
      {"ecology2", 999999, 5, 0.25},
      {"lap2d_2000", 4000000, 5, 0.25},
      {"lap3d_128", 2097152, 27, 0.6},
      {"parabolic_fem", 525825, 7, 0.25},
      {"thermal2", 1228045, 7, 0.25},
      {"tmt_sym", 726713, 5, 0.25},
  };
  return suite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const SuiteEntry& e : table2_suite())
    if (e.name == name) return e;
  throw std::invalid_argument("unknown suite matrix: " + name);
}

CSRMatrix generate_suite_matrix(const std::string& name, double scale) {
  const SuiteEntry& e = suite_entry(name);
  const Long rows = e.paper_rows;
  if (name == "2cubes_sphere") {
    const Int s = side3d(rows, scale);
    return two_cubes_like(s, s, s);
  }
  if (name == "G2_circuit" || name == "G3_circuit") {
    const Int s = side2d(rows, scale);
    return circuit_like(s, s, 0.15, name == "G2_circuit" ? 7 : 9);
  }
  if (name == "StocF-1465") {
    const Int s = side3d(rows, scale);
    // Porous-media flow: 13-pt stencil with log-normal coefficients.
    ReservoirOptions opt;
    opt.sigma = 1.5;
    opt.seed = 23;
    std::vector<double> K = permeability_field(s, s, s, opt);
    auto coeff = [K = std::move(K), s](Int x, Int y, Int z) {
      return K[grid_index(x, y, z, s, s)];
    };
    return lap3d_13pt(s, s, s, coeff);
  }
  if (name == "apache2") {
    const Int s = side3d(rows, scale);
    return lap3d_7pt(s, s, s);
  }
  if (name == "atmosmodd" || name == "atmosmodj") {
    // Atmospheric models: anisotropic vertical coupling.
    const Int s = side3d(rows, scale);
    return lap3d_7pt(s, s, s, 1.0, name == "atmosmodd" ? 8.0 : 16.0);
  }
  if (name == "atmosmodl") {
    const Int s = side3d(rows, scale);
    return lap3d_7pt(s, s, s, 1.0, 32.0);
  }
  if (name == "ecology2" || name == "tmt_sym") {
    const Int s = side2d(rows, scale);
    // 5-point with mild coefficient variation.
    auto coeff = [s](Int x, Int y, Int) {
      return 1.0 + 0.5 * std::sin(0.05 * x) * std::cos(0.05 * y);
    };
    return lap2d_5pt(s, s, 1.0, coeff);
  }
  if (name == "lap2d_2000") {
    const Int s = side2d(rows, scale);
    return lap2d_5pt(s, s);
  }
  if (name == "lap3d_128") {
    const Int s = side3d(rows, scale);
    return lap3d_27pt(s, s, s);
  }
  if (name == "parabolic_fem") {
    const Int s = side2d(rows, scale);
    return lap2d_7pt_skew(s, s);
  }
  if (name == "thermal2") {
    const Int s = side2d(rows, scale);
    return thermal_like(s, s);
  }
  throw std::invalid_argument("unknown suite matrix: " + name);
}

}  // namespace hpamg
