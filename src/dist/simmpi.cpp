#include "dist/simmpi.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>
#include <thread>

#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/live.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace hpamg::simmpi {

namespace {

using Clock = std::chrono::steady_clock;

/// A payload plus the trace flow id that ties the send to its receive
/// (0 when tracing was off at send time).
struct Msg {
  std::vector<char> bytes;
  std::uint64_t flow = 0;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  // (source, tag) -> FIFO of payloads. A map keeps unrelated exchanges from
  // blocking each other; within a (source, tag) stream order is preserved.
  std::map<std::pair<int, int>, std::deque<Msg>> queues;
};

/// Collective signature, cross-checked at the entry barrier. A mismatch
/// (one rank in allreduce_sum while another sits in barrier) is an MPI
/// usage error that real runtimes turn into a hang or corrupted reduction;
/// here every rank detects it and throws CollectiveMismatchError.
struct Sig {
  enum Op : std::uint8_t {
    kNone = 0,
    kBarrier,
    kAllreduceSum,
    kAllreduceMax,
    kAllgather,
    kAlltoall,
  };
  enum Dtype : std::uint8_t { kVoid = 0, kDouble, kLong };
  std::uint8_t op = kNone;
  std::uint8_t dtype = kVoid;
  std::int32_t count = 0;

  bool operator==(const Sig& o) const {
    return op == o.op && dtype == o.dtype && count == o.count;
  }

  std::string describe() const {
    static const char* ops[] = {"none",          "barrier",   "allreduce_sum",
                                "allreduce_max", "allgather", "alltoall"};
    static const char* types[] = {"", "<double>", "<long>"};
    std::string s = ops[op <= kAlltoall ? op : 0];
    s += types[dtype <= kLong ? dtype : 0];
    return s;
  }
};

/// What a rank is currently blocked on — written by the rank's own thread,
/// read racily (hence atomics) by whichever rank assembles a deadlock dump.
struct BlockedState {
  std::atomic<const char*> where{nullptr};  ///< null = running
  std::atomic<int> peer{-1};
  std::atomic<int> tag{-1};
};

}  // namespace

class World {
 public:
  World(int nranks, Clock::duration timeout)
      : nranks_(nranks), timeout_(timeout), mailboxes_(nranks),
        blocked_(nranks), sig_slots_(nranks), reduce_slots_(nranks, 0.0),
        gather_slots_(nranks, 0),
        alltoall_slots_(std::size_t(nranks) * std::size_t(nranks), 0) {}

  int nranks() const { return nranks_; }

  void deliver(int to, int from, int tag, const void* data,
               std::size_t bytes, std::uint64_t flow) {
    bool reorder = false;
    if (fault::enabled()) {
      if (fault::should_fire("simmpi.drop")) {
        trace::instant("fault.drop", "fault");
        return;  // modeled message loss: the receiver's bounded wait fires
      }
      std::uint64_t draw = 0;
      if (fault::should_fire("simmpi.delay", &draw)) {
        trace::instant("fault.delay", "fault");
        std::this_thread::sleep_for(
            std::chrono::microseconds(100 + draw % 2000));
      }
      reorder = fault::should_fire("simmpi.reorder");
      if (reorder) trace::instant("fault.reorder", "fault");
    }
    Mailbox& mb = mailboxes_[to];
    Msg msg;
    msg.bytes.resize(bytes);
    msg.flow = flow;
    if (bytes > 0) std::memcpy(msg.bytes.data(), data, bytes);  // UB on null src
    if (fault::enabled() && bytes > 0) {
      std::uint64_t draw = 0;
      if (fault::should_fire("simmpi.bitflip", &draw)) {
        trace::instant("fault.bitflip", "fault");
        const std::uint64_t bit = draw % (bytes * 8);
        msg.bytes[bit / 8] ^= char(1u << (bit % 8));
      }
    }
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      auto& q = mb.queues[{from, tag}];
      if (reorder)
        q.push_front(std::move(msg));  // jumps the (source, tag) FIFO
      else
        q.push_back(std::move(msg));
    }
    mb.cv.notify_all();
  }

  Msg take(int me, int from, int tag) {
    BlockedScope bs(blocked_[me], "recv", from, tag);
    Mailbox& mb = mailboxes_[me];
    std::unique_lock<std::mutex> lock(mb.mu);
    auto key = std::make_pair(from, tag);
    bounded_wait(lock, mb.cv, me, "recv", [&] {
      auto it = mb.queues.find(key);
      return it != mb.queues.end() && !it->second.empty();
    });
    auto& q = mb.queues[key];
    Msg msg = std::move(q.front());
    q.pop_front();
    return msg;
  }

  /// Collective entry: publish this rank's signature, synchronize, verify
  /// every rank entered the same collective. Callers write their payload
  /// slots before calling and must close with barrier_sync() so no rank
  /// can race ahead and overwrite its slots while a peer still reads them
  /// (every public collective is exactly two barrier rounds).
  void collective_enter(int rank, Sig sig) {
    sig_slots_[rank] = sig;
    barrier_sync(rank);
    for (int r = 0; r < nranks_; ++r) {
      if (sig_slots_[r] == sig) continue;
      std::ostringstream os;
      os << "simmpi: collective signature mismatch: rank " << rank << " in "
         << sig.describe();
      for (int q = 0; q < nranks_; ++q)
        if (!(sig_slots_[q] == sig))
          os << ", rank " << q << " in " << sig_slots_[q].describe();
      throw CollectiveMismatchError(os.str());
    }
  }

  /// Sense-reversing barrier with a bounded wait.
  void barrier_sync(int rank) {
    BlockedScope bs(blocked_[rank], "barrier", -1, -1);
    std::unique_lock<std::mutex> lock(bar_mu_);
    const bool sense = bar_sense_;
    if (++bar_count_ == nranks_) {
      bar_count_ = 0;
      bar_sense_ = !bar_sense_;
      bar_cv_.notify_all();
    } else {
      bounded_wait(lock, bar_cv_, rank, "barrier",
                   [&] { return bar_sense_ != sense; });
    }
  }

  void barrier_collective(int rank) {
    collective_enter(rank, {Sig::kBarrier, Sig::kVoid, 0});
    barrier_sync(rank);
  }

  /// Generic allreduce over double slots: each rank writes, signature
  /// check + barrier, rank-local fold, barrier (so slots can be reused).
  double allreduce(int rank, double x, bool take_max) {
    reduce_slots_[rank] = x;
    collective_enter(rank, {take_max ? Sig::kAllreduceMax : Sig::kAllreduceSum,
                            Sig::kDouble, 1});
    double acc = take_max ? reduce_slots_[0] : 0.0;
    for (int r = 0; r < nranks_; ++r)
      acc = take_max ? std::max(acc, reduce_slots_[r]) : acc + reduce_slots_[r];
    barrier_sync(rank);
    return acc;
  }

  Long allreduce_long(int rank, Long x, bool take_max) {
    gather_slots_[rank] = x;
    collective_enter(rank, {take_max ? Sig::kAllreduceMax : Sig::kAllreduceSum,
                            Sig::kLong, 1});
    Long acc = take_max ? gather_slots_[0] : 0;
    for (int r = 0; r < nranks_; ++r)
      acc = take_max ? std::max(acc, gather_slots_[r]) : acc + gather_slots_[r];
    barrier_sync(rank);
    return acc;
  }

  std::vector<Long> allgather_long(int rank, Long x) {
    gather_slots_[rank] = x;
    collective_enter(rank, {Sig::kAllgather, Sig::kLong, 1});
    std::vector<Long> out(gather_slots_);
    barrier_sync(rank);
    return out;
  }

  std::vector<double> allgather_double(int rank, double x) {
    reduce_slots_[rank] = x;
    collective_enter(rank, {Sig::kAllgather, Sig::kDouble, 1});
    std::vector<double> out(reduce_slots_);
    barrier_sync(rank);
    return out;
  }

  std::vector<Long> alltoall_long(int rank, const std::vector<Long>& send) {
    std::copy(send.begin(), send.end(),
              alltoall_slots_.begin() + std::size_t(rank) * nranks_);
    collective_enter(rank, {Sig::kAlltoall, Sig::kLong, nranks_});
    std::vector<Long> out(nranks_);
    for (int r = 0; r < nranks_; ++r)
      out[r] = alltoall_slots_[std::size_t(r) * nranks_ + rank];
    barrier_sync(rank);
    return out;
  }

  /// Watchdog entry point (live::register_stall_handler in run() wires it,
  /// called on the sampler thread): captures the per-rank state dump,
  /// persists it for CI artifacts, and deadlock-poisons the world so every
  /// blocked rank unwinds with a DeadlockError attributed to the rank
  /// whose heartbeat stopped — instead of a silent wait for the (much
  /// longer) transport timeout. First stall wins; later calls only poison.
  void fail_from_watchdog(const live::StallInfo& info) {
    std::ostringstream os;
    os << "simmpi: watchdog declared rank " << info.rank
       << " stalled (heartbeat silent " << info.stalled_s
       << " s, deadline " << info.deadline_s << " s";
    if (info.phase) os << ", phase " << info.phase;
    if (info.iteration >= 0) os << ", iteration " << info.iteration;
    os << (info.waiting ? "; every active rank was in a wait)" : ")");
    const std::string dump = state_dump();
    write_dump_file(dump);
    {
      std::lock_guard<std::mutex> lock(deadlock_mu_);
      if (deadlock_msg_.empty()) {
        deadlock_msg_ = os.str();
        deadlock_dump_ = dump;
      }
    }
    deadlock_flagged_.store(true, std::memory_order_release);
    poison();
  }

  /// Marks the world failed and wakes every blocked rank so it can unwind
  /// (PeerFailureError) instead of waiting on a rank that will never
  /// arrive. Idempotent; callable from any thread.
  void poison() {
    poisoned_.store(true, std::memory_order_release);
    for (Mailbox& mb : mailboxes_) {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(bar_mu_);
    bar_cv_.notify_all();
  }

  /// Per-rank blocked-state report: who waits where, mailbox depths. Must
  /// be called without holding any mailbox/barrier lock.
  std::string state_dump() {
    std::ostringstream os;
    os << "simmpi state dump (" << nranks_ << " ranks):\n";
    for (int r = 0; r < nranks_; ++r) {
      const char* where = blocked_[r].where.load(std::memory_order_acquire);
      os << "  rank " << r << ": "
         << (where ? where : "running (not in a simmpi wait)");
      const int peer = blocked_[r].peer.load(std::memory_order_relaxed);
      const int tag = blocked_[r].tag.load(std::memory_order_relaxed);
      if (where && peer >= 0) os << " from rank " << peer << " tag " << tag;
      std::size_t depth = 0, streams = 0;
      {
        std::lock_guard<std::mutex> lock(mailboxes_[r].mu);
        for (const auto& [key, q] : mailboxes_[r].queues) {
          if (q.empty()) continue;
          depth += q.size();
          ++streams;
        }
      }
      os << "; mailbox: " << depth << " queued message(s) in " << streams
         << " stream(s)\n";
    }
    return os.str();
  }

 private:
  /// RAII publication of a rank's wait site for the deadlock dump, and of
  /// the waiting flag + blocked-time accounting for the live heartbeat
  /// (live::enabled() snapshotted at entry so begin/end always pair; cost
  /// when disabled is that one relaxed load).
  struct BlockedScope {
    explicit BlockedScope(BlockedState& b, const char* where, int peer,
                          int tag)
        : b_(b), live_(live::enabled()) {
      b_.peer.store(peer, std::memory_order_relaxed);
      b_.tag.store(tag, std::memory_order_relaxed);
      b_.where.store(where, std::memory_order_release);
      if (live_) {
        start_ns_ = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
        live::set_waiting(true);
      }
    }
    ~BlockedScope() {
      b_.where.store(nullptr, std::memory_order_release);
      if (live_) {
        live::set_waiting(false);
        const std::uint64_t end_ns = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
        live::add_blocked_ns(end_ns - start_ns_);
      }
    }
    BlockedState& b_;
    bool live_;
    std::uint64_t start_ns_ = 0;
  };

  /// Condition wait bounded by the world timeout. Throws PeerFailureError
  /// when the world is poisoned, DeadlockError (after poisoning the world
  /// and capturing the state dump) when the deadline expires.
  template <typename Pred>
  void bounded_wait(std::unique_lock<std::mutex>& lock,
                    std::condition_variable& cv, int rank, const char* where,
                    Pred pred) {
    const auto deadline = Clock::now() + timeout_;
    for (;;) {
      if (pred()) return;
      if (poisoned_.load(std::memory_order_acquire)) {
        // Watchdog-initiated poison: unwind as the root-cause DeadlockError
        // (attributed to the stalled rank, carrying the state dump) rather
        // than a collateral PeerFailureError, so run()'s triage surfaces
        // the stall no matter which rank reports first.
        if (deadlock_flagged_.load(std::memory_order_acquire)) {
          std::lock_guard<std::mutex> dl(deadlock_mu_);
          throw DeadlockError(deadlock_msg_ + "; rank " +
                                  std::to_string(rank) + " released from " +
                                  where,
                              deadlock_dump_);
        }
        throw PeerFailureError(
            std::string("simmpi: rank ") + std::to_string(rank) +
            " released from " + where + " after a peer failure");
      }
      if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (pred()) return;
        if (!poisoned_.load(std::memory_order_acquire)) {
          lock.unlock();  // the dump takes mailbox locks
          timeout_failure(rank, where);
        }
      }
    }
  }

  [[noreturn]] void timeout_failure(int rank, const char* where) {
    const std::string dump = state_dump();
    write_dump_file(dump);
    poison();
    const double secs =
        std::chrono::duration<double>(timeout_).count();
    std::ostringstream os;
    os << "simmpi: rank " << rank << " timed out after " << secs << " s in "
       << where << " (deadlock)";
    throw DeadlockError(os.str(), dump);
  }

  /// Best-effort dump persistence for CI artifacts: one file per incident
  /// under $HPAMG_STATE_DUMP_DIR (no-op when unset).
  static void write_dump_file(const std::string& dump) {
    const char* dir = std::getenv("HPAMG_STATE_DUMP_DIR");
    if (!dir || !*dir) return;
    static std::atomic<int> seq{0};
    const std::string path = std::string(dir) + "/simmpi_deadlock_" +
                             std::to_string(seq.fetch_add(1)) + ".txt";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
    }
  }

  int nranks_;
  Clock::duration timeout_;
  std::vector<Mailbox> mailboxes_;
  std::vector<BlockedState> blocked_;
  std::atomic<bool> poisoned_{false};

  // Watchdog-attributed deadlock, set by fail_from_watchdog before the
  // poison flag so a released waiter always sees the message (the flag is
  // its acquire ticket).
  std::atomic<bool> deadlock_flagged_{false};
  std::mutex deadlock_mu_;
  std::string deadlock_msg_;
  std::string deadlock_dump_;

  std::mutex bar_mu_;
  std::condition_variable bar_cv_;
  int bar_count_ = 0;
  bool bar_sense_ = false;

  std::vector<Sig> sig_slots_;
  std::vector<double> reduce_slots_;
  std::vector<Long> gather_slots_;
  std::vector<Long> alltoall_slots_;  ///< rank r's row at [r*nranks, +nranks)
};

int Comm::size() const { return world_->nranks(); }

void Comm::send(int to, int tag, const void* data, std::size_t bytes,
                bool persistent) {
  require(to >= 0 && to < size(), "simmpi::send: bad destination");
  trace::Span sp("mpi.send", "comm", "peer", to,
                 "bytes", std::int64_t(bytes));
  // Zero-byte messages exist only as protocol acknowledgements in this
  // runtime; a real MPI code with a known communication pattern would not
  // send them, so they are excluded from the modeled traffic (and from the
  // trace's flow arrows).
  std::uint64_t flow = 0;
  if (trace::enabled() && bytes > 0) {
    flow = trace::next_flow_id();
    trace::flow_out("msg", flow, to, std::int64_t(bytes));
  }
  world_->deliver(to, rank_, tag, data, bytes, flow);
  if (bytes > 0) {
    ++stats_.messages_sent;
    stats_.bytes_sent += bytes;
    if (persistent)
      ++stats_.persistent_starts;
    else
      ++stats_.request_setups;
    if (std::size_t(to) < stats_.per_peer.size()) {
      PeerTraffic& pt = stats_.per_peer[std::size_t(to)];
      ++pt.messages;
      pt.bytes += bytes;
      ++pt.size_hist[msg_size_bucket(bytes)];
    }
    if (metrics::enabled()) {
      static metrics::Histogram& h = metrics::histogram("comm.msg_bytes");
      h.observe_always(bytes);
    }
  }
}

std::vector<char> Comm::recv(int from, int tag) {
  require(from >= 0 && from < size(), "simmpi::recv: bad source");
  trace::Span sp("mpi.recv", "blocked", "peer", from);
  Msg msg = world_->take(rank_, from, tag);
  sp.arg("bytes", std::int64_t(msg.bytes.size()));
  if (msg.flow != 0)
    trace::flow_in("msg", msg.flow, from, std::int64_t(msg.bytes.size()));
  return std::move(msg.bytes);
}

void Comm::barrier() {
  TRACE_SPAN("mpi.barrier", "blocked");
  world_->barrier_collective(rank_);
}

double Comm::allreduce_sum(double x) {
  TRACE_SPAN("mpi.allreduce", "blocked");
  ++stats_.allreduces;
  return world_->allreduce(rank_, x, false);
}

Long Comm::allreduce_sum(Long x) {
  TRACE_SPAN("mpi.allreduce", "blocked");
  ++stats_.allreduces;
  return world_->allreduce_long(rank_, x, false);
}

double Comm::allreduce_max(double x) {
  TRACE_SPAN("mpi.allreduce", "blocked");
  ++stats_.allreduces;
  return world_->allreduce(rank_, x, true);
}

Long Comm::allreduce_max(Long x) {
  TRACE_SPAN("mpi.allreduce", "blocked");
  ++stats_.allreduces;
  return world_->allreduce_long(rank_, x, true);
}

std::vector<Long> Comm::allgather(Long x) {
  TRACE_SPAN("mpi.allgather", "blocked");
  ++stats_.allreduces;
  return world_->allgather_long(rank_, x);
}

std::vector<double> Comm::allgather(double x) {
  TRACE_SPAN("mpi.allgather", "blocked");
  ++stats_.allreduces;
  return world_->allgather_double(rank_, x);
}

std::vector<Long> Comm::alltoall(const std::vector<Long>& send) {
  TRACE_SPAN("mpi.alltoall", "blocked");
  require(int(send.size()) == size(), "alltoall: need one entry per rank");
  ++stats_.allreduces;
  return world_->alltoall_long(rank_, send);
}

namespace {

Clock::duration resolve_timeout(const RunOptions& opts) {
  double secs = opts.timeout_seconds;
  if (secs <= 0.0) {
    if (const char* env = std::getenv("HPAMG_SIMMPI_TIMEOUT_S"))
      secs = std::atof(env);
    if (secs <= 0.0) secs = 120.0;
  }
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(secs));
}

}  // namespace

std::vector<CommStats> run(int nranks, const std::function<void(Comm&)>& fn,
                           const RunOptions& opts) {
  require(nranks > 0, "simmpi::run: need at least one rank");
  World world(nranks, resolve_timeout(opts));
  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    comms.emplace_back(new Comm(&world, r));
    // Sized up front so the per-message accounting on the send path never
    // allocates (the tracer's zero-alloc-when-disabled guarantee).
    comms.back()->stats().per_peer.resize(std::size_t(nranks));
  }

  // While live observability runs, a watchdog-declared stall must unwind
  // this world: the handler (invoked on the sampler thread) captures the
  // blocked-state dump and deadlock-poisons, so waits throw DeadlockError
  // attributed to the rank whose heartbeat stopped. Unregistered after the
  // join below — unregister blocks on any in-flight invocation, so the
  // handler can never touch a dead World.
  int live_token = -1;
  if (live::enabled())
    live_token = live::register_stall_handler(
        [&world](const live::StallInfo& info) {
          world.fail_from_watchdog(info);
        });

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(nranks);
  threads.reserve(nranks);
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      // Bind this thread's heartbeat slot to rank r and mark it active for
      // the watchdog for the duration of the rank function.
      live::set_rank(r);
      live::ActivityScope live_scope;
      try {
        if (trace::enabled()) {
          const std::string name = "rank " + std::to_string(r);
          trace::set_thread_track(r + 1, name, name);
        }
        fn(*comms[r]);
      } catch (...) {
        errors[r] = std::current_exception();
        // Poison the world so peers blocked on this rank unwind with
        // PeerFailureError instead of waiting out the full timeout; the
        // rethrow below then surfaces this (root-cause) exception.
        world.poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (live_token >= 0) live::unregister_stall_handler(live_token);

  // First real failure wins; PeerFailureError unwinds are collateral and
  // surface only when no rank recorded a root cause.
  std::exception_ptr first_real, first_peer;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const PeerFailureError&) {
      if (!first_peer) first_peer = e;
    } catch (...) {
      if (!first_real) first_real = e;
    }
  }
  if (first_real) std::rethrow_exception(first_real);
  if (first_peer) std::rethrow_exception(first_peer);

  std::vector<CommStats> stats;
  stats.reserve(nranks);
  for (auto& c : comms) stats.push_back(c->stats());
  return stats;
}

}  // namespace hpamg::simmpi
