#include <cmath>

#include "amg/spmv.hpp"
#include "krylov/krylov.hpp"
#include "support/live.hpp"
#include "support/trace.hpp"

namespace hpamg {

KrylovResult pcg(const CSRMatrix& A, const Vector& b, Vector& x,
                 const KrylovOptions& opt, const Preconditioner& precond) {
  TRACE_SPAN("krylov.pcg", "phase");
  live::ActivityScope live_scope;
  const Int n = A.nrows;
  require(Int(b.size()) == n && Int(x.size()) == n, "pcg: size mismatch");
  KrylovResult res;

  Vector r(n), z(n), p(n), Ap(n);
  spmv_residual(A, x, b, r);
  double normb = norm2(b);
  if (normb == 0.0) normb = 1.0;
  double relres = norm2(r) / normb;
  if (relres < opt.rtol) {
    res.converged = true;
    res.status = Status::kOk;
    res.final_relres = relres;
    return res;
  }
  if (!std::isfinite(relres)) {
    res.status = Status::kNonFinite;
    res.nonfinite_iteration = 0;
    res.final_relres = relres;
    return res;
  }

  if (precond)
    precond(r, z);
  else
    copy(r, z);
  copy(z, p);
  double rz = dot(r, z);

  for (Int it = 1; it <= opt.max_iterations; ++it) {
    if (opt.deadline.expired()) {
      res.status = Status::kDeadlineExceeded;
      break;
    }
    spmv(A, p, Ap);
    const double pAp = dot(p, Ap);
    if (!std::isfinite(pAp)) {
      res.status = Status::kNonFinite;
      res.nonfinite_iteration = it;
      break;
    }
    if (pAp == 0.0) {  // exact breakdown: p is A-null, no progress possible
      res.status = Status::kStagnated;
      break;
    }
    const double alpha = rz / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    relres = norm2(r) / normb;
    res.history.push_back(relres);
    res.iterations = it;
    live::beat_iteration(it, relres);
    if (relres < opt.rtol) {
      res.converged = true;
      res.status = Status::kOk;
      break;
    }
    if (!std::isfinite(relres)) {
      res.status = Status::kNonFinite;
      res.nonfinite_iteration = it;
      break;
    }
    if (precond)
      precond(r, z);
    else
      copy(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    xpby(z, beta, p);  // p = z + beta p
  }
  res.final_relres = relres;
  return res;
}

}  // namespace hpamg
