// hpamg_top: live progress viewer for a running solve.
//
// Tails the progress.jsonl stream the live observability layer appends
// (see src/support/live.hpp) and renders a per-rank table: iteration,
// residual, per-iteration convergence factor, heartbeat age, and the
// fraction of the last sampling interval the rank spent blocked in simmpi
// waits. Three modes:
//
//   hpamg_top <dir>            render the latest sample and exit
//   hpamg_top <dir> --follow   re-render as new samples are appended
//   hpamg_top <dir> --check    CI validation: parse every line, enforce
//                              schema + monotonic seq/ts, and sanity-check
//                              the Prometheus exposition file if present
//
// <dir> is the --live directory a bench was started with; a direct path
// to a progress.jsonl also works.
#include <sys/stat.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "support/cli.hpp"
#include "support/report.hpp"

namespace {

using hpamg::JsonValue;

std::string progress_path(const std::string& arg) {
  struct stat st{};
  if (stat(arg.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
    return arg + "/progress.jsonl";
  return arg;
}

double num(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* f = obj.find(key);
  return f != nullptr && f->is_number() ? f->number : fallback;
}

// ------------------------------------------------------------------------
// Rendering
// ------------------------------------------------------------------------

std::string fmt_res(double v) {
  char buf[32];
  if (v < 0.0 || std::isnan(v)) return "-";
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

/// Looks up a metric in the sample's "counters" or "gauges" objects;
/// `found` (optional) reports whether the key exists at all.
double metric_of(const JsonValue& sample, const char* group, const char* key,
                 bool* found = nullptr) {
  const JsonValue* obj = sample.find(group);
  const JsonValue* f = obj != nullptr ? obj->find(key) : nullptr;
  if (found != nullptr) *found = f != nullptr;
  return f != nullptr && f->is_number() ? f->number : 0.0;
}

/// SolverService line (only when the run registers service.* instruments):
/// queue/in-flight/pool gauges plus the admission and resilience counters
/// — the at-a-glance answer to "is the service shedding or breaking?".
void render_service(const JsonValue& sample) {
  bool has_service = false;
  const double depth =
      metric_of(sample, "gauges", "service.queue_depth", &has_service);
  if (!has_service) return;
  std::printf("service: queue %.0f  in-flight %.0f  cached %.0f  "
              "breakers-open %.0f\n",
              depth, metric_of(sample, "gauges", "service.in_flight"),
              metric_of(sample, "gauges", "service.cached_hierarchies"),
              metric_of(sample, "gauges", "service.breakers_open"));
  std::printf("         ok %.0f  rejected %.0f (full %.0f, shed %.0f)  "
              "deadline %.0f  circuit %.0f  retries %.0f  degraded %.0f\n",
              metric_of(sample, "counters", "service.completed_ok"),
              metric_of(sample, "counters", "service.rejected"),
              metric_of(sample, "counters", "service.queue_full"),
              metric_of(sample, "counters", "service.shed"),
              metric_of(sample, "counters", "service.deadline_exceeded"),
              metric_of(sample, "counters", "service.circuit_open"),
              metric_of(sample, "counters", "service.retries"),
              metric_of(sample, "counters", "service.degraded"));
}

void render(const JsonValue& sample, bool follow) {
  if (follow) std::printf("\x1b[H\x1b[J");  // cursor home + clear screen
  std::printf("hpamg_top  seq=%llu  t=%.1fs\n",
              (unsigned long long)num(sample, "seq"),
              num(sample, "ts_ms") / 1e3);
  std::printf("%-6s %-9s %-6s %-20s %-11s %-7s %-8s %-5s %-8s\n", "RANK",
              "ITER", "LEVEL", "PHASE", "RELRES", "CONV", "AGE_MS", "WAIT",
              "BLOCKED");
  const JsonValue* ranks = sample.find("ranks");
  if (ranks == nullptr || !ranks->is_array() || ranks->items.empty()) {
    std::printf("(no active ranks)\n");
    render_service(sample);
    return;
  }
  for (const JsonValue& r : ranks->items) {
    const long rank = long(num(r, "rank", -1));
    const JsonValue* phase = r.find("phase");
    const JsonValue* waiting = r.find("waiting");
    char rank_cell[16];
    if (rank < 0)
      std::snprintf(rank_cell, sizeof(rank_cell), "host");
    else
      std::snprintf(rank_cell, sizeof(rank_cell), "%ld", rank);
    std::printf("%-6s %-9lld %-6lld %-20s %-11s %-7.3f %-8.0f %-5s %6.1f%%\n",
                rank_cell, (long long)num(r, "iteration", -1),
                (long long)num(r, "level", -1),
                phase != nullptr && phase->is_string() ? phase->text.c_str()
                                                       : "-",
                fmt_res(num(r, "relres", -1.0)).c_str(),
                num(r, "conv_factor"), num(r, "age_ms"),
                waiting != nullptr && waiting->boolean ? "yes" : "no",
                100.0 * num(r, "blocked_frac"));
  }
  render_service(sample);
}

// ------------------------------------------------------------------------
// --check: schema + monotonicity validation (the CI smoke gate)
// ------------------------------------------------------------------------

/// One line's structural check; returns an error message or "".
std::string check_sample(const JsonValue& v) {
  if (!v.is_object()) return "line is not a JSON object";
  for (const char* k : {"seq", "ts_ms"})
    if (const JsonValue* f = v.find(k); f == nullptr || !f->is_number())
      return std::string("missing/non-number field '") + k + "'";
  const JsonValue* ranks = v.find("ranks");
  if (ranks == nullptr || !ranks->is_array()) return "missing 'ranks' array";
  for (const JsonValue& r : ranks->items) {
    if (!r.is_object()) return "rank entry is not an object";
    for (const char* k :
         {"rank", "epoch", "age_ms", "iteration", "level", "blocked_s",
          "blocked_frac"})
      if (const JsonValue* f = r.find(k); f == nullptr || !f->is_number())
        return std::string("rank entry missing number '") + k + "'";
    // Residual-derived doubles round-trip NaN as null (same contract as
    // the bench report schema).
    for (const char* k : {"relres", "conv_factor"})
      if (const JsonValue* f = r.find(k);
          f == nullptr || !(f->is_number() || f->is_null()))
        return std::string("rank entry missing double '") + k + "'";
    if (const JsonValue* f = r.find("phase"); f == nullptr || !f->is_string())
      return "rank entry missing string 'phase'";
    if (const JsonValue* f = r.find("waiting");
        f == nullptr || !f->is_bool())
      return "rank entry missing bool 'waiting'";
    const double bf = num(r, "blocked_frac");
    if (bf < 0.0 || bf > 1.0) return "blocked_frac outside [0, 1]";
  }
  for (const char* k : {"counters", "gauges"}) {
    const JsonValue* obj = v.find(k);
    if (obj == nullptr || !obj->is_object())
      return std::string("missing '") + k + "' object";
    for (const auto& [name, field] : obj->members)
      if (!field.is_number() && !field.is_null())
        return std::string("non-number metric '") + name + "'";
  }
  return "";
}

/// Prometheus text-format sanity check: every non-comment line must be
/// `name{labels} value` with a well-formed metric name, every `# TYPE`
/// names a known type, and the file must not be empty (a torn rename or
/// truncated scrape would fail here).
int check_exposition(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::printf("check: no exposition file %s (ok if sampler never ticked)\n",
                path.c_str());
    return 0;
  }
  char line[4096];
  int lineno = 0, samples = 0, errors = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    std::size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r'))
      line[--len] = '\0';
    if (len == 0) continue;
    if (line[0] == '#') {
      if (std::strncmp(line, "# TYPE ", 7) == 0 &&
          std::strstr(line, " counter") == nullptr &&
          std::strstr(line, " gauge") == nullptr &&
          std::strstr(line, " histogram") == nullptr) {
        std::printf("check: %s:%d: unknown TYPE: %s\n", path.c_str(), lineno,
                    line);
        ++errors;
      }
      continue;
    }
    // name[{labels}] value
    const char* p = line;
    if (!std::isalpha((unsigned char)*p) && *p != '_') {
      std::printf("check: %s:%d: bad metric name: %s\n", path.c_str(),
                  lineno, line);
      ++errors;
      continue;
    }
    while (std::isalnum((unsigned char)*p) || *p == '_' || *p == ':') ++p;
    if (*p == '{') {
      const char* close = std::strchr(p, '}');
      if (close == nullptr) {
        std::printf("check: %s:%d: unterminated labels: %s\n", path.c_str(),
                    lineno, line);
        ++errors;
        continue;
      }
      p = close + 1;
    }
    char* endp = nullptr;
    std::strtod(p, &endp);
    if (endp == p) {
      std::printf("check: %s:%d: missing value: %s\n", path.c_str(), lineno,
                  line);
      ++errors;
      continue;
    }
    ++samples;
  }
  std::fclose(f);
  if (samples == 0) {
    std::printf("check: %s has no samples\n", path.c_str());
    ++errors;
  }
  std::printf("check: %s: %d samples, %d errors\n", path.c_str(), samples,
              errors);
  return errors == 0 ? 0 : 1;
}

int check_stream(const std::string& path, const std::string& dir) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "hpamg_top: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  int lines = 0, errors = 0;
  unsigned long long last_seq = 0;
  double last_ts = -1.0;
  char buf[65536];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++lines;
    try {
      const JsonValue v = hpamg::json_parse(buf);
      const std::string err = check_sample(v);
      if (!err.empty()) {
        std::printf("check: %s:%d: %s\n", path.c_str(), lines, err.c_str());
        ++errors;
        continue;
      }
      const auto seq = (unsigned long long)num(v, "seq");
      const double ts = num(v, "ts_ms");
      if (lines > 1 && seq != last_seq + 1) {
        std::printf("check: %s:%d: seq %llu after %llu (not contiguous)\n",
                    path.c_str(), lines, seq, last_seq);
        ++errors;
      }
      if (ts < last_ts) {
        std::printf("check: %s:%d: ts_ms went backwards (%.3f < %.3f)\n",
                    path.c_str(), lines, ts, last_ts);
        ++errors;
      }
      last_seq = seq;
      last_ts = ts;
    } catch (const std::exception& e) {
      std::printf("check: %s:%d: %s\n", path.c_str(), lines, e.what());
      ++errors;
    }
  }
  std::fclose(f);
  std::printf("check: %s: %d samples, %d errors\n", path.c_str(), lines,
              errors);
  if (lines == 0) {
    std::printf("check: stream is empty\n");
    ++errors;
  }
  int rc = errors == 0 ? 0 : 1;
  if (!dir.empty()) {
    const int prom_rc = check_exposition(dir + "/metrics.prom");
    if (prom_rc != 0) rc = prom_rc;
  }
  return rc;
}

// ------------------------------------------------------------------------
// Snapshot / follow
// ------------------------------------------------------------------------

/// Last complete line of the stream (the newest sample). Reads forward —
/// progress streams are small (one line per 50 ms).
bool last_line(const std::string& path, std::string* out, long* consumed) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[65536];
  bool any = false;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    const std::size_t len = std::strlen(buf);
    if (len == 0 || buf[len - 1] != '\n') break;  // torn tail; keep previous
    out->assign(buf, len);
    any = true;
  }
  if (consumed != nullptr) *consumed = std::ftell(f);
  std::fclose(f);
  return any;
}

}  // namespace

int main(int argc, char** argv) {
  hpamg::Cli cli(argc, argv);
  if (cli.positional().empty() || cli.has("help")) {
    std::fprintf(stderr,
                 "usage: hpamg_top <live-dir | progress.jsonl> "
                 "[--follow [--interval s]] [--check]\n");
    return cli.has("help") ? 0 : 2;
  }
  const std::string arg = cli.positional()[0];
  const std::string path = progress_path(arg);
  struct stat st{};
  const bool is_dir = stat(arg.c_str(), &st) == 0 && S_ISDIR(st.st_mode);

  if (cli.has("check"))
    return check_stream(path, is_dir ? arg : std::string());

  const bool follow = cli.has("follow");
  const double interval = cli.get_double("interval", 0.2);
  long last_size = -1;
  do {
    std::string line;
    long size = 0;
    if (last_line(path, &line, &size)) {
      if (size != last_size) {
        last_size = size;
        try {
          render(hpamg::json_parse(line), follow);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "hpamg_top: %s\n", e.what());
          if (!follow) return 1;
        }
      }
    } else if (!follow) {
      std::fprintf(stderr, "hpamg_top: no samples in %s\n", path.c_str());
      return 1;
    }
    if (follow)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(interval));
  } while (follow);
  return 0;
}
