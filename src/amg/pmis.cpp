#include "amg/pmis.hpp"

#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

constexpr signed char kUndecided = 0;
constexpr signed char kCoarse = 1;
constexpr signed char kFine = -1;

std::vector<double> pmis_measures(const CSRMatrix& ST, const PmisOptions& opt) {
  const Int n = ST.nrows;
  std::vector<double> w(n);
  if (opt.rng == RngKind::kParallelCounter) {
    CounterRng rng(opt.seed);
    parallel_for(0, n, [&](Int i) {
      w[i] = double(ST.row_nnz(i)) + rng.uniform(i);
    });
  } else {
    SequentialRng rng(opt.seed);
    for (Int i = 0; i < n; ++i) w[i] = double(ST.row_nnz(i)) + rng.next();
  }
  return w;
}

}  // namespace

CFMarker pmis_coarsen(const CSRMatrix& S, const CSRMatrix& ST,
                      const PmisOptions& opt, WorkCounters* wc) {
  TRACE_SPAN("pmis", "kernel", "rows", std::int64_t(S.nrows));
  require(S.nrows == S.ncols && ST.nrows == S.nrows,
          "pmis_coarsen: bad shapes");
  const Int n = S.nrows;
  std::vector<double> w = pmis_measures(ST, opt);
  CFMarker cf(n, kUndecided);

  // Points that strongly influence nobody (w < 1) can never be useful C
  // points. Points with no strong connections at all in either direction
  // stay out of the C/F game entirely — PMIS makes them F.
  parallel_for(0, n, [&](Int i) {
    if (w[i] < 1.0) cf[i] = kFine;
  });

  std::vector<signed char> next(cf);
  bool changed = true;
  while (changed) {
    changed = false;
    // Phase 1: select the distributed independent set — an undecided point
    // becomes C if its measure beats all undecided strong neighbors (in
    // both directions of the strength graph).
    std::int64_t promoted = 0;
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : promoted)
    for (Int i = 0; i < n; ++i) {
      if (cf[i] != kUndecided) continue;
      // i wins iff its measure beats every undecided neighbor in the
      // symmetrized strength graph. Measures are distinct w.p. 1 thanks to
      // the random tie-breaker.
      bool best = true;
      for (Int k = S.rowptr[i]; k < S.rowptr[i + 1] && best; ++k) {
        const Int j = S.colidx[k];
        if (j != i && cf[j] == kUndecided && w[j] >= w[i]) best = false;
      }
      for (Int k = ST.rowptr[i]; k < ST.rowptr[i + 1] && best; ++k) {
        const Int j = ST.colidx[k];
        if (j != i && cf[j] == kUndecided && w[j] >= w[i]) best = false;
      }
      if (best) {
        next[i] = kCoarse;
        ++promoted;
      }
    }
    if (promoted > 0) changed = true;
    parallel_for(0, n, [&](Int i) { cf[i] = next[i]; });

    // Phase 2: every undecided point strongly influenced by a new C point
    // becomes F (it will interpolate from that C point).
    std::int64_t demoted = 0;
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : demoted)
    for (Int i = 0; i < n; ++i) {
      if (cf[i] != kUndecided) continue;
      for (Int k = S.rowptr[i]; k < S.rowptr[i + 1]; ++k) {
        if (cf[S.colidx[k]] == kCoarse) {
          next[i] = kFine;
          ++demoted;
          break;
        }
      }
    }
    if (demoted > 0) changed = true;
    parallel_for(0, n, [&](Int i) { cf[i] = next[i]; });
  }
  // Anything still undecided has no undecided strong neighbors and no C
  // influencer; make it C if it influences someone, F otherwise.
  parallel_for(0, n, [&](Int i) {
    if (cf[i] == kUndecided) cf[i] = ST.row_nnz(i) > 0 ? kCoarse : kFine;
  });
  if (wc) wc->bytes_read += 4 * (S.nnz() + ST.nnz()) * sizeof(Int);
  return cf;
}

CFMarker pmis_aggressive(const CSRMatrix& S, const CSRMatrix& ST,
                         const PmisOptions& opt, CFMarker* first_pass_out,
                         WorkCounters* wc) {
  TRACE_SPAN("pmis.aggressive", "kernel", "rows", std::int64_t(S.nrows));
  CFMarker cf1 = pmis_coarsen(S, ST, opt, wc);
  if (first_pass_out) *first_pass_out = cf1;
  const Int n = S.nrows;

  // Map first-pass C points to a compact index space.
  std::vector<Int> cmap(n, -1);
  Int nc1 = 0;
  for (Int i = 0; i < n; ++i)
    if (cf1[i] > 0) cmap[i] = nc1++;
  if (nc1 == 0) return cf1;

  // Distance-two strength graph among C1 points: c -> c' if S(c, c') or
  // S(c, f) and S(f, c') for some F point f. Built row-wise with a hash set.
  std::vector<std::vector<Int>> s2_rows(nc1);
  parallel_for_dynamic(0, n, [&](Int i) {
    if (cf1[i] <= 0) return;
    HashSet<Int> seen(16);
    for (Int k = S.rowptr[i]; k < S.rowptr[i + 1]; ++k) {
      const Int j = S.colidx[k];
      if (j == i) continue;
      if (cf1[j] > 0) {
        seen.insert(cmap[j]);
      } else {
        for (Int k2 = S.rowptr[j]; k2 < S.rowptr[j + 1]; ++k2) {
          const Int j2 = S.colidx[k2];
          if (j2 != i && cf1[j2] > 0) seen.insert(cmap[j2]);
        }
      }
    }
    seen.collect(s2_rows[cmap[i]]);
  });
  std::vector<Triplet> trip;
  for (Int c = 0; c < nc1; ++c)
    for (Int c2 : s2_rows[c]) trip.push_back({c, c2, 1.0});
  CSRMatrix S2 = CSRMatrix::from_triplets(nc1, nc1, std::move(trip));
  CSRMatrix S2T = S2;  // symmetrized by construction below
  {
    // S2 is not symmetric in general; build the transpose pattern.
    std::vector<Triplet> tt;
    for (Int i = 0; i < S2.nrows; ++i)
      for (Int k = S2.rowptr[i]; k < S2.rowptr[i + 1]; ++k)
        tt.push_back({S2.colidx[k], i, 1.0});
    S2T = CSRMatrix::from_triplets(nc1, nc1, std::move(tt));
  }
  PmisOptions opt2 = opt;
  opt2.seed = opt.seed ^ 0x9e3779b97f4a7c15ull;
  CFMarker cf2 = pmis_coarsen(S2, S2T, opt2, wc);

  // Final marker: C only if coarse in both passes.
  CFMarker out(n, kFine);
  parallel_for(0, n, [&](Int i) {
    if (cf1[i] > 0 && cf2[cmap[i]] > 0) out[i] = kCoarse;
  });
  return out;
}

Int count_coarse(const CFMarker& cf) {
  Int nc = 0;
  for (signed char c : cf)
    if (c > 0) ++nc;
  return nc;
}

}  // namespace hpamg
