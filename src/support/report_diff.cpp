#include "support/report_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/report.hpp"

namespace hpamg {

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

/// Leaf key = the last dotted segment.
std::string_view leaf(std::string_view key) {
  const std::size_t dot = key.rfind('.');
  return dot == std::string_view::npos ? key : key.substr(dot + 1);
}

struct FlatMetric {
  std::string key;
  double value = 0.0;
};

/// Numeric members of `obj` appended under `prefix.`.
void flatten_numbers(const JsonValue* obj, const std::string& prefix,
                     std::vector<FlatMetric>& out) {
  if (!obj || !obj->is_object()) return;
  for (const auto& [k, v] : obj->members)
    if (v.is_number()) out.push_back({prefix + k, v.number});
}

/// The gate-relevant numeric leaves of one run object.
std::vector<FlatMetric> flatten_run(const JsonValue& run) {
  std::vector<FlatMetric> out;
  flatten_numbers(run.find("metrics"), "metrics.", out);
  const JsonValue* rep = run.find("report");
  if (!rep) return out;
  if (const JsonValue* hier = rep->find("hierarchy"))
    for (const char* f :
         {"num_levels", "operator_complexity", "grid_complexity"})
      if (const JsonValue* v = hier->find(f))
        if (v->is_number()) out.push_back({std::string("hierarchy.") + f,
                                           v->number});
  if (const JsonValue* phases = rep->find("phases")) {
    flatten_numbers(phases->find("setup"), "phases.setup.", out);
    flatten_numbers(phases->find("solve"), "phases.solve.", out);
  }
  if (const JsonValue* counters = rep->find("counters")) {
    flatten_numbers(counters->find("setup"), "counters.setup.", out);
    flatten_numbers(counters->find("solve"), "counters.solve.", out);
  }
  if (const JsonValue* comm = rep->find("comm")) {
    for (const char* side : {"setup", "solve"}) {
      const JsonValue* s = comm->find(side);
      if (!s || !s->is_object()) continue;
      for (const char* f : {"messages_sent", "bytes_sent", "allreduces",
                            "request_setups", "persistent_starts"})
        if (const JsonValue* v = s->find(f))
          if (v->is_number())
            out.push_back(
                {std::string("comm.") + side + "." + f, v->number});
    }
  }
  flatten_numbers(rep->find("memory"), "memory.", out);
  if (const JsonValue* conv = rep->find("convergence"))
    for (const char* f : {"iterations", "final_relres", "convergence_factor"})
      if (const JsonValue* v = conv->find(f))
        if (v->is_number())
          out.push_back({std::string("convergence.") + f, v->number});
  flatten_numbers(rep->find("times"), "times.", out);
  return out;
}

const FlatMetric* find_metric(const std::vector<FlatMetric>& ms,
                              const std::string& key) {
  for (const FlatMetric& m : ms)
    if (m.key == key) return &m;
  return nullptr;
}

const JsonValue* find_run(const JsonValue& runs, const std::string& name) {
  for (const JsonValue& r : runs.items) {
    const JsonValue* n = r.find("name");
    if (n && n->is_string() && n->text == name) return &r;
  }
  return nullptr;
}

}  // namespace

MetricClass classify_metric(std::string_view key) {
  const std::string_view l = leaf(key);
  // Environment-dependent values never gate.
  if (contains(l, "rss") || contains(key, "mem.")) return MetricClass::kInfo;
  // Ratios/speedups are derived and noisy in both directions. Suffix
  // matches only: "iterations" contains "ratio" as a substring.
  if (contains(l, "speedup") || ends_with(l, "ratio") ||
      ends_with(l, "reduction") || ends_with(l, "factor") ||
      ends_with(l, "fraction") || contains(l, "relres"))
    return MetricClass::kInfo;
  if (ends_with(l, "_seconds") || ends_with(l, "_s") || l == "seconds" ||
      ends_with(l, "_us") || ends_with(l, "_ms") ||
      contains(key, "phases.setup.") || contains(key, "phases.solve."))
    return MetricClass::kTiming;
  if (l == "iterations" || l == "num_levels" || ends_with(l, "flops") ||
      l == "branches" || l == "hash_probes" || l == "allreduces" ||
      l == "messages_sent" || l == "request_setups" ||
      l == "persistent_starts" || contains(l, "bytes") ||
      contains(l, "nnz") || ends_with(l, "complexity") ||
      ends_with(l, "_iters"))
    return MetricClass::kWork;
  return MetricClass::kInfo;
}

DiffResult diff_bench_reports(std::string_view old_json,
                              std::string_view new_json,
                              const DiffOptions& opts) {
  DiffResult res;
  const std::string err_old = validate_bench_report_json(old_json);
  if (!err_old.empty()) {
    res.error = "old report invalid: " + err_old;
    return res;
  }
  const std::string err_new = validate_bench_report_json(new_json);
  if (!err_new.empty()) {
    res.error = "new report invalid: " + err_new;
    return res;
  }
  const JsonValue doc_old = json_parse(old_json);
  const JsonValue doc_new = json_parse(new_json);

  const std::string bench_old = doc_old.find("bench")->text;
  const std::string bench_new = doc_new.find("bench")->text;
  if (bench_old != bench_new) {
    res.error = "bench mismatch: \"" + bench_old + "\" vs \"" + bench_new +
                "\" — not comparable";
    return res;
  }

  // Params present in BOTH documents must agree: a differing scale or rank
  // count makes every downstream number incomparable. Params only one side
  // has (schema growth) are fine.
  const JsonValue* params_old = doc_old.find("params");
  const JsonValue* params_new = doc_new.find("params");
  for (const auto& [k, v_old] : params_old->members) {
    const JsonValue* v_new = params_new->find(k);
    if (!v_new) continue;
    const bool same =
        v_old.kind == v_new->kind &&
        (v_old.is_number()
             ? std::abs(v_old.number - v_new->number) <=
                   1e-12 * std::max(std::abs(v_old.number), 1.0)
             : v_old.text == v_new->text);
    if (!same) {
      auto show = [](const JsonValue& v) {
        return v.is_number() ? std::to_string(v.number) : v.text;
      };
      res.error = "param \"" + k + "\" differs (" + show(v_old) + " vs " +
                  show(*v_new) + ") — not comparable";
      return res;
    }
  }

  const JsonValue* runs_old = doc_old.find("runs");
  const JsonValue* runs_new = doc_new.find("runs");

  auto push = [&res](MetricDelta d) {
    switch (d.verdict) {
      case MetricDelta::Verdict::kRegressed: ++res.regressions; break;
      case MetricDelta::Verdict::kImproved: ++res.improvements; break;
      case MetricDelta::Verdict::kMissing: ++res.missing; break;
      case MetricDelta::Verdict::kAdded: ++res.added; break;
      case MetricDelta::Verdict::kOk: break;
    }
    res.deltas.push_back(std::move(d));
  };

  for (const JsonValue& run_old : runs_old->items) {
    const std::string name = run_old.find("name")->text;
    const JsonValue* run_new = find_run(*runs_new, name);
    if (!run_new) {
      MetricDelta d;
      d.run = name;
      d.key = "(run)";
      d.verdict = MetricDelta::Verdict::kMissing;
      push(std::move(d));
      continue;
    }
    const std::vector<FlatMetric> ms_old = flatten_run(run_old);
    const std::vector<FlatMetric> ms_new = flatten_run(*run_new);
    for (const FlatMetric& m : ms_old) {
      MetricDelta d;
      d.run = name;
      d.key = m.key;
      d.old_value = m.value;
      d.cls = classify_metric(m.key);
      const FlatMetric* n = find_metric(ms_new, m.key);
      if (!n) {
        d.verdict = MetricDelta::Verdict::kMissing;
        push(std::move(d));
        continue;
      }
      d.new_value = n->value;
      if (d.cls == MetricClass::kInfo) {
        d.verdict = MetricDelta::Verdict::kOk;
      } else {
        const double tol = d.cls == MetricClass::kTiming ? opts.time_rel_tol
                                                         : opts.work_rel_tol;
        const bool sub_floor =
            d.cls == MetricClass::kTiming &&
            std::max(d.old_value, d.new_value) < opts.time_floor_seconds;
        const double base = std::max(std::abs(d.old_value), 1e-300);
        if (sub_floor)
          d.verdict = MetricDelta::Verdict::kOk;
        else if (d.new_value > d.old_value + tol * base)
          d.verdict = MetricDelta::Verdict::kRegressed;
        else if (d.new_value < d.old_value - tol * base)
          d.verdict = MetricDelta::Verdict::kImproved;
        else
          d.verdict = MetricDelta::Verdict::kOk;
      }
      push(std::move(d));
    }
    for (const FlatMetric& n : ms_new) {
      if (find_metric(ms_old, n.key)) continue;
      MetricDelta d;
      d.run = name;
      d.key = n.key;
      d.new_value = n.value;
      d.cls = classify_metric(n.key);
      d.verdict = MetricDelta::Verdict::kAdded;
      push(std::move(d));
    }
  }
  for (const JsonValue& run_new : runs_new->items) {
    const std::string name = run_new.find("name")->text;
    if (find_run(*runs_old, name)) continue;
    MetricDelta d;
    d.run = name;
    d.key = "(run)";
    d.verdict = MetricDelta::Verdict::kAdded;
    push(std::move(d));
  }
  // Envelope-level perf.* gauges (roofline efficiency per kernel) are
  // advisory: efficiency shifts with the host and with instrumentation
  // coverage, so they surface as info rows and never gate. A gauge present
  // only in the old document is skipped outright — removing instrumentation
  // must not read as a regression.
  {
    auto perf_gauges = [](const JsonValue& doc) {
      std::vector<FlatMetric> out;
      const JsonValue* m = doc.find("metrics");
      const JsonValue* gauges = m ? m->find("gauges") : nullptr;
      if (!gauges || !gauges->is_object()) return out;
      for (const auto& [k, v] : gauges->members)
        if (v.is_number() && k.rfind("perf.", 0) == 0) out.push_back({k, v.number});
      return out;
    };
    const std::vector<FlatMetric> g_old = perf_gauges(doc_old);
    const std::vector<FlatMetric> g_new = perf_gauges(doc_new);
    for (const FlatMetric& n : g_new) {
      MetricDelta d;
      d.run = "";
      d.key = n.key;
      d.new_value = n.value;
      d.cls = MetricClass::kInfo;
      const FlatMetric* o = find_metric(g_old, n.key);
      if (o) {
        d.old_value = o->value;
        d.verdict = MetricDelta::Verdict::kOk;
      } else {
        d.verdict = MetricDelta::Verdict::kAdded;
      }
      push(std::move(d));
    }
  }
  // Gate-relevant entries first, biggest relative change first.
  std::stable_sort(res.deltas.begin(), res.deltas.end(),
                   [](const MetricDelta& a, const MetricDelta& b) {
                     auto rank = [](const MetricDelta& d) {
                       switch (d.verdict) {
                         case MetricDelta::Verdict::kRegressed: return 0;
                         case MetricDelta::Verdict::kMissing: return 1;
                         case MetricDelta::Verdict::kImproved: return 2;
                         case MetricDelta::Verdict::kAdded: return 3;
                         case MetricDelta::Verdict::kOk: return 4;
                       }
                       return 4;
                     };
                     return rank(a) < rank(b);
                   });
  return res;
}

}  // namespace hpamg
