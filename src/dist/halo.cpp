#include "dist/halo.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {
// Fixed protocol tags; must stay below simmpi::Comm::kDynamicTagBase (the
// per-instance exchange tags come from Comm::next_tag_block()).
constexpr int kTagNeed = 7101;
constexpr int kTagRowReq = 7120;
constexpr int kTagRowLen = 7130;
constexpr int kTagRowCol = 7140;
constexpr int kTagRowVal = 7150;

int owner_of(const std::vector<Long>& starts, Long g) {
  auto it = std::upper_bound(starts.begin(), starts.end(), g);
  return int(it - starts.begin()) - 1;
}
}  // namespace

HaloExchange::HaloExchange(simmpi::Comm& comm,
                           const std::vector<Long>& colmap,
                           const std::vector<Long>& starts, bool persistent)
    : comm_(comm), persistent_(persistent), ext_size_(Int(colmap.size())),
      tag_base_(comm.next_tag_block()) {
  TRACE_SPAN("halo.setup", "comm", "ext_size", std::int64_t(colmap.size()));
  const int nranks = comm.size();
  const int me = comm.rank();
  // colmap is sorted, so elements owned by one peer form one contiguous
  // segment — walk it once to build recv peers.
  std::vector<std::vector<Long>> need(nranks);
  {
    std::size_t j = 0;
    while (j < colmap.size()) {
      const int owner = owner_of(starts, colmap[j]);
      require(owner != me, "HaloExchange: colmap contains owned element");
      RecvPeer rp;
      rp.rank = owner;
      rp.offset = Int(j);
      while (j < colmap.size() && owner_of(starts, colmap[j]) == owner) {
        need[owner].push_back(colmap[j]);
        ++j;
      }
      rp.count = Int(j) - rp.offset;
      recv_peers_.push_back(rp);
    }
  }
  // Handshake: an alltoall of counts tells every rank who actually needs
  // something from it, then need-lists flow only between real peers. The
  // old protocol sent a (mostly empty) list to every rank, posting
  // O(nranks^2) zero-length messages that skewed per-peer CommStats and
  // the message-size histogram's zero bucket.
  std::vector<Long> need_counts(nranks, 0);
  for (int r = 0; r < nranks; ++r) need_counts[r] = Long(need[r].size());
  const std::vector<Long> peer_needs = comm.alltoall(need_counts);
  for (int r = 0; r < nranks; ++r)
    if (r != me && !need[r].empty()) comm.send_vec(r, kTagNeed, need[r]);
  for (int r = 0; r < nranks; ++r) {
    if (r == me || peer_needs[r] == 0) continue;
    std::vector<Long> theirs = comm.recv_vec<Long>(r, kTagNeed);
    require(Long(theirs.size()) == peer_needs[r],
            "HaloExchange: need-list size disagrees with count handshake");
    SendPeer sp;
    sp.rank = r;
    sp.local_idx.reserve(theirs.size());
    const Long base = starts[me];
    for (Long g : theirs) sp.local_idx.push_back(Int(g - base));
    send_peers_.push_back(sp);
  }
  // Cross-rank audit that the freshly built send/recv lists mirror.
  // Collective, so it must run on every rank or none: the guard depends
  // only on build flags and the process-wide HPAMG_CHECK_LEVEL, which all
  // rank-threads share.
  HPAMG_CHECK_INVARIANT(check::Depth::kFull, check_symmetry());
}

Status HaloExchange::check_symmetry() {
  const int nranks = comm_.size();
  const int me = comm_.rank();
  // One alltoall of ship counts (zeros carried by the collective, never as
  // point-to-point messages) — symmetric by construction, so an asymmetric
  // pattern yields a mismatch, never a missing-message hang. A rank with an
  // empty boundary participates in the collective but posts no messages,
  // keeping CommStats and the size histogram free of zero-byte artifacts.
  std::vector<Long> ships_to(nranks, 0);
  for (const SendPeer& sp : send_peers_)
    ships_to[sp.rank] += Long(sp.local_idx.size());
  const std::vector<Long> peer_sends = comm_.alltoall(ships_to);
  std::vector<Long> recv_counts(nranks, 0);
  for (const RecvPeer& rp : recv_peers_) recv_counts[rp.rank] += rp.count;
  return check::halo_counts_mirror(peer_sends, recv_counts, me,
                                   "HaloExchange");
}

template <typename T>
void HaloExchange::exchange_impl(const T* local, T* ext, int tag) {
  TRACE_SPAN("halo.exchange", "comm", "ext_size", std::int64_t(ext_size_));
  std::vector<T> buf;
  for (const SendPeer& sp : send_peers_) {
    buf.resize(sp.local_idx.size());
    for (std::size_t k = 0; k < sp.local_idx.size(); ++k)
      buf[k] = local[sp.local_idx[k]];
    comm_.send(sp.rank, tag, buf.data(), buf.size() * sizeof(T), persistent_);
  }
  for (const RecvPeer& rp : recv_peers_) {
    std::vector<T> in = comm_.recv_vec<T>(rp.rank, tag);
    require(Int(in.size()) == rp.count, "HaloExchange: size mismatch");
    std::copy(in.begin(), in.end(), ext + rp.offset);
  }
}

void HaloExchange::exchange(const Vector& x_local, Vector& x_ext) {
  x_ext.resize(ext_size_);
  exchange_impl(x_local.data(), x_ext.data(), tag_base_);
}

void HaloExchange::exchange(const std::vector<signed char>& local,
                            std::vector<signed char>& ext) {
  ext.resize(ext_size_);
  exchange_impl(local.data(), ext.data(), tag_base_ + 1);
}

void HaloExchange::exchange(const std::vector<Long>& local,
                            std::vector<Long>& ext) {
  ext.resize(ext_size_);
  exchange_impl(local.data(), ext.data(), tag_base_ + 2);
}

void HaloExchange::exchange(const MultiVector& x_local, MultiVector& x_ext) {
  TRACE_SPAN("halo.exchange_multi", "comm", "ext_size",
             std::int64_t(ext_size_));
  const Int m = x_local.m;
  x_ext.resize(ext_size_, m);
  const int tag = tag_base_ + 3;
  // Pack all m values of each boundary row contiguously: one message per
  // peer regardless of the RHS count, so per-RHS message count is 1/m of
  // the scalar exchange while the byte volume stays m-proportional.
  std::vector<double> buf;
  for (const SendPeer& sp : send_peers_) {
    buf.resize(sp.local_idx.size() * std::size_t(m));
    for (std::size_t k = 0; k < sp.local_idx.size(); ++k) {
      const double* HPAMG_RESTRICT row = x_local.row(sp.local_idx[k]);
      for (Int j = 0; j < m; ++j) buf[k * std::size_t(m) + j] = row[j];
    }
    comm_.send(sp.rank, tag, buf.data(), buf.size() * sizeof(double),
               persistent_);
  }
  for (const RecvPeer& rp : recv_peers_) {
    std::vector<double> in = comm_.recv_vec<double>(rp.rank, tag);
    require(Int(in.size()) == rp.count * m,
            "HaloExchange: multi-RHS size mismatch");
    std::copy(in.begin(), in.end(), x_ext.row(rp.offset));
  }
}

GatheredRows gather_rows(simmpi::Comm& comm, const DistMatrix& B,
                         const std::vector<Long>& needed_rows,
                         const RowFilter& filter, bool persistent) {
  TRACE_SPAN("halo.gather_rows", "comm", "rows",
             std::int64_t(needed_rows.size()));
  const int nranks = comm.size();
  const int me = comm.rank();
  GatheredRows out;
  out.rows = needed_rows;
  out.rowptr.assign(needed_rows.size() + 1, 0);

  // Group requested rows by owner (needed_rows need not be sorted).
  std::vector<std::vector<Long>> req(nranks);
  std::vector<std::vector<Int>> req_slot(nranks);  // position in needed_rows
  for (std::size_t j = 0; j < needed_rows.size(); ++j) {
    const int owner = owner_of(B.row_starts, needed_rows[j]);
    require(owner != me, "gather_rows: requested an owned row");
    req[owner].push_back(needed_rows[j]);
    req_slot[owner].push_back(Int(j));
  }
  // Count handshake first (one collective), then request lists flow only
  // between real peers — no zero-length request messages skewing per-peer
  // CommStats and the message-size histogram.
  std::vector<Long> req_counts(nranks, 0);
  for (int r = 0; r < nranks; ++r) req_counts[r] = Long(req[r].size());
  const std::vector<Long> peer_reqs = comm.alltoall(req_counts);
  for (int r = 0; r < nranks; ++r)
    if (r != me && !req[r].empty()) comm.send_vec(r, kTagRowReq, req[r]);

  // Serve peers: serialize requested rows (lengths, global cols, values),
  // applying the sender-side filter (§4.3) if given.
  for (int r = 0; r < nranks; ++r) {
    if (r == me || peer_reqs[r] == 0) continue;
    std::vector<Long> theirs = comm.recv_vec<Long>(r, kTagRowReq);
    std::vector<Int> lens;
    std::vector<Long> cols;
    std::vector<double> vals;
    lens.reserve(theirs.size());
    const Long base = B.first_row();
    for (Long grow : theirs) {
      const Int i = Int(grow - base);
      Int len = 0;
      auto emit = [&](Long gc, double v) {
        if (filter && !filter(i, gc, v)) return;
        cols.push_back(gc);
        vals.push_back(v);
        ++len;
      };
      for (Int k = B.diag.rowptr[i]; k < B.diag.rowptr[i + 1]; ++k)
        emit(B.first_col() + B.diag.colidx[k], B.diag.values[k]);
      for (Int k = B.offd.rowptr[i]; k < B.offd.rowptr[i + 1]; ++k)
        emit(B.colmap[B.offd.colidx[k]], B.offd.values[k]);
      lens.push_back(len);
    }
    if (!theirs.empty()) {
      comm.send_vec(r, kTagRowLen, lens, persistent);
      comm.send_vec(r, kTagRowCol, cols, persistent);
      comm.send_vec(r, kTagRowVal, vals, persistent);
    }
  }

  // Receive our rows.
  std::vector<std::vector<Int>> got_lens(nranks);
  std::vector<std::vector<Long>> got_cols(nranks);
  std::vector<std::vector<double>> got_vals(nranks);
  for (int r = 0; r < nranks; ++r) {
    if (r == me || req[r].empty()) continue;
    got_lens[r] = comm.recv_vec<Int>(r, kTagRowLen);
    got_cols[r] = comm.recv_vec<Long>(r, kTagRowCol);
    got_vals[r] = comm.recv_vec<double>(r, kTagRowVal);
    out.bytes_received += got_cols[r].size() * sizeof(Long) +
                          got_vals[r].size() * sizeof(double) +
                          got_lens[r].size() * sizeof(Int);
    for (std::size_t k = 0; k < got_lens[r].size(); ++k)
      out.rowptr[req_slot[r][k] + 1] = got_lens[r][k];
  }
  for (std::size_t j = 0; j < needed_rows.size(); ++j)
    out.rowptr[j + 1] += out.rowptr[j];
  out.gcol.resize(out.rowptr.back());
  out.values.resize(out.rowptr.back());
  for (int r = 0; r < nranks; ++r) {
    if (got_lens[r].empty()) continue;
    Int src = 0;
    for (std::size_t k = 0; k < got_lens[r].size(); ++k) {
      const Int dst = out.rowptr[req_slot[r][k]];
      std::copy_n(got_cols[r].begin() + src, got_lens[r][k],
                  out.gcol.begin() + dst);
      std::copy_n(got_vals[r].begin() + src, got_lens[r][k],
                  out.values.begin() + dst);
      src += got_lens[r][k];
    }
  }
  return out;
}

}  // namespace hpamg
