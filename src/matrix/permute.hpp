// Matrix/vector permutation utilities and the coarse/fine (CF) reordering
// at the heart of the paper's node-level optimizations (§3.1.2, §3.2):
// renumber points so coarse points precede fine points, permute operators
// accordingly, and partition the columns within each row (a one-sweep
// 3-way partial sort) so branch-heavy classification tests disappear from
// inner loops.
#pragma once

#include <functional>
#include <vector>

#include "matrix/csr.hpp"
#include "support/common.hpp"

namespace hpamg {

/// CF marker value per point: >0 coarse, <0 fine (HYPRE convention).
using CFMarker = std::vector<signed char>;

/// Permutation placing all coarse points (ascending) before all fine points.
struct CFPermutation {
  std::vector<Int> perm;  ///< perm[new_index] = old_index
  std::vector<Int> inv;   ///< inv[old_index] = new_index
  Int ncoarse = 0;        ///< coarse points occupy new indices [0, ncoarse)
};

CFPermutation cf_permutation(const CFMarker& cf);

/// B(i, j) = A(perm[i], perm[j]) — symmetric permutation of a square matrix.
CSRMatrix permute_symmetric(const CSRMatrix& A, const CFPermutation& p);

/// B(i, :) = A(perm[i], :) — row permutation only.
CSRMatrix permute_rows(const CSRMatrix& A, const std::vector<Int>& perm);

/// B(:, j) such that B(i, inv[jold]) = A(i, jold) — column renumbering.
CSRMatrix permute_cols(const CSRMatrix& A, const std::vector<Int>& inv,
                       Int new_ncols);

/// out[i] = v[perm[i]].
std::vector<double> permute_vector(const std::vector<double>& v,
                                   const std::vector<Int>& perm);

/// Per-row 3-way column partition boundaries produced by a single
/// counting sweep (O(row nnz), not a sort). After the call, the columns of
/// row i are grouped by class: [rowptr[i], ptr1[i]) class 0,
/// [ptr1[i], ptr2[i]) class 1, [ptr2[i], rowptr[i+1]) class 2.
struct RowPartition {
  std::vector<Int> ptr1;
  std::vector<Int> ptr2;
};

/// Reorders colidx/values of every row of A in place so that columns are
/// grouped by classify(i, col, val) in {0, 1, 2}; stable within a class.
RowPartition three_way_partition_rows(
    CSRMatrix& A, const std::function<int(Int, Int, double)>& classify);

}  // namespace hpamg
