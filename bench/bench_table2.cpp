// Table 2 reproduction: the 14-matrix single-node evaluation suite.
// Prints, per matrix, the paper's published size/density next to the
// generated stand-in's (at the requested --scale; scale=1 reproduces the
// paper's row counts).
//
// Usage: bench_table2 [--scale 0.01] [--json out.json]
#include <cstdio>

#include "bench_util.hpp"
#include "gen/suite.hpp"

using namespace hpamg;
using namespace hpamg::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.01);
  JsonSink sink(cli, "table2");
  init_logging(cli);
  TraceSink trace_sink(cli, "table2");
  sink.report.set_param("scale", scale);

  std::printf("=== Table 2: sparse matrices used in single-node experiments"
              " (scale=%.4g) ===\n", scale);
  print_row({"matrix", "paper_rows", "paper_nnz/r", "gen_rows", "gen_nnz/r",
             "str_thr"}, 14);
  for (const SuiteEntry& e : table2_suite()) {
    CSRMatrix A = generate_suite_matrix(e.name, scale);
    print_row({e.name, fmt_int(e.paper_rows), fmt_int(e.paper_nnz_per_row),
               fmt_int(A.nrows), fmt(double(A.nnz()) / A.nrows, "%.1f"),
               fmt(e.strength_threshold, "%.2f")},
              14);
    sink.report.add_run(e.name)
        .metric("paper_rows", double(e.paper_rows))
        .metric("paper_nnz_per_row", double(e.paper_nnz_per_row))
        .metric("gen_rows", double(A.nrows))
        .metric("gen_nnz", double(A.nnz()))
        .metric("gen_nnz_per_row", double(A.nnz()) / A.nrows)
        .metric("strength_threshold", e.strength_threshold);
  }
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  return trace_rc != 0 ? trace_rc : json_rc;
}
