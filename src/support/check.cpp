#include "support/check.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace hpamg::check {

namespace {
thread_local std::string t_last_error;

Depth parse_depth_env() {
  const char* env = std::getenv("HPAMG_CHECK_LEVEL");
  if (env == nullptr || *env == '\0') return Depth::kFull;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0 || v > 2) return Depth::kFull;
  return static_cast<Depth>(v);
}
}  // namespace

Depth depth() {
  // Parsed once; a process does not change its checking depth mid-run.
  static const Depth d = parse_depth_env();
  return d;
}

const std::string& last_error() { return t_last_error; }

namespace detail {
Status fail(Status s, std::string msg) {
  t_last_error = std::move(msg);
  return s;
}
}  // namespace detail

namespace {
/// Success path: clears the thread's diagnosis so last_error() never
/// reports a stale failure after a passing validator.
Status ok() {
  t_last_error.clear();
  return Status::kOk;
}
}  // namespace

Status csr_well_formed(const CSRMatrix& A, const char* what,
                       bool require_sorted_unique) {
  std::ostringstream os;
  os << "check: " << what << ": ";
  if (A.nrows < 0 || A.ncols < 0) {
    os << "negative shape " << A.nrows << " x " << A.ncols;
    return detail::fail(Status::kInvalidInput, os.str());
  }
  if (A.rowptr.size() != std::size_t(A.nrows) + 1) {
    os << "rowptr size " << A.rowptr.size() << ", expected " << A.nrows + 1;
    return detail::fail(Status::kInvalidInput, os.str());
  }
  if (A.rowptr[0] != 0) {
    os << "rowptr[0] = " << A.rowptr[0] << ", expected 0";
    return detail::fail(Status::kInvalidInput, os.str());
  }
  for (Int i = 0; i < A.nrows; ++i) {
    if (A.rowptr[i + 1] < A.rowptr[i]) {
      os << "rowptr not monotone at row " << i << " (" << A.rowptr[i]
         << " -> " << A.rowptr[i + 1] << ")";
      return detail::fail(Status::kInvalidInput, os.str());
    }
  }
  const std::size_t nnz = std::size_t(A.rowptr[A.nrows]);
  if (A.colidx.size() != nnz || A.values.size() != nnz) {
    os << "colidx/values sizes " << A.colidx.size() << "/" << A.values.size()
       << ", expected nnz = " << nnz;
    return detail::fail(Status::kInvalidInput, os.str());
  }
  for (Int i = 0; i < A.nrows; ++i) {
    Int prev = -1;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int c = A.colidx[k];
      if (c < 0 || c >= A.ncols) {
        os << "row " << i << ": column index " << c << " outside [0, "
           << A.ncols << ")";
        return detail::fail(Status::kInvalidInput, os.str());
      }
      if (require_sorted_unique && c <= prev) {
        os << "row " << i << ": columns not strictly ascending (" << prev
           << " then " << c << ")";
        return detail::fail(Status::kInvalidInput, os.str());
      }
      prev = c;
    }
  }
  return ok();
}

Status csr_finite(const CSRMatrix& A, const char* what) {
  for (Int i = 0; i < A.nrows; ++i) {
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      if (!std::isfinite(A.values[k])) {
        std::ostringstream os;
        os << "check: " << what << ": non-finite value at row " << i
           << ", column " << A.colidx[k];
        return detail::fail(Status::kInvalidInput, os.str());
      }
    }
  }
  return ok();
}

Status interp_shape(const CSRMatrix& P, Int fine_rows, Int coarse_rows,
                    const char* what) {
  if (P.nrows != fine_rows || P.ncols != coarse_rows) {
    std::ostringstream os;
    os << "check: " << what << ": interpolation is " << P.nrows << " x "
       << P.ncols << ", expected " << fine_rows << " x " << coarse_rows
       << " (fine x coarse)";
    return detail::fail(Status::kInvalidInput, os.str());
  }
  return ok();
}

Status partition(const std::vector<Long>& starts, int nranks, Long total,
                 const char* what) {
  std::ostringstream os;
  os << "check: " << what << ": ";
  if (starts.size() != std::size_t(nranks) + 1) {
    os << "partition has " << starts.size() << " boundaries, expected "
       << nranks + 1;
    return detail::fail(Status::kInvalidInput, os.str());
  }
  if (starts.front() != 0) {
    os << "partition starts at " << starts.front() << ", expected 0";
    return detail::fail(Status::kInvalidInput, os.str());
  }
  for (int p = 0; p < nranks; ++p) {
    if (starts[p + 1] < starts[p]) {
      os << "partition not monotone at rank " << p << " (" << starts[p]
         << " -> " << starts[p + 1] << ")";
      return detail::fail(Status::kInvalidInput, os.str());
    }
  }
  if (starts.back() != total) {
    os << "partition ends at " << starts.back() << ", expected " << total;
    return detail::fail(Status::kInvalidInput, os.str());
  }
  return ok();
}

Status colmap_ownership(const std::vector<Long>& colmap, Long own_first,
                        Long own_last, Long global_cols, const char* what) {
  Long prev = -1;
  for (std::size_t j = 0; j < colmap.size(); ++j) {
    const Long g = colmap[j];
    std::ostringstream os;
    os << "check: " << what << ": colmap[" << j << "] = " << g;
    if (g < 0 || g >= global_cols) {
      os << " outside [0, " << global_cols << ")";
      return detail::fail(Status::kInvalidInput, os.str());
    }
    if (g <= prev) {
      os << " not strictly ascending after " << prev;
      return detail::fail(Status::kInvalidInput, os.str());
    }
    if (g >= own_first && g < own_last) {
      os << " lies in this rank's own span [" << own_first << ", "
         << own_last << ") — diag/offd split is corrupt";
      return detail::fail(Status::kInvalidInput, os.str());
    }
    prev = g;
  }
  return ok();
}

Status halo_counts_mirror(const std::vector<Long>& peer_sends,
                          const std::vector<Long>& recv_counts, int my_rank,
                          const char* what) {
  if (peer_sends.size() != recv_counts.size()) {
    std::ostringstream os;
    os << "check: " << what << ": rank " << my_rank
       << ": peer-send table has " << peer_sends.size()
       << " entries, recv table " << recv_counts.size();
    return detail::fail(Status::kInvalidInput, os.str());
  }
  for (std::size_t p = 0; p < peer_sends.size(); ++p) {
    if (peer_sends[p] != recv_counts[p]) {
      std::ostringstream os;
      os << "check: " << what << ": rank " << my_rank
         << ": halo lists not mirrored with rank " << p << " — peer ships "
         << peer_sends[p] << " elements, this rank expects "
         << recv_counts[p];
      return detail::fail(Status::kInvalidInput, os.str());
    }
  }
  return ok();
}

Status vectors_match(std::size_t n, std::size_t b_size, std::size_t x_size,
                     const char* what) {
  if (b_size != n || x_size != n) {
    std::ostringstream os;
    os << "check: " << what << ": vector sizes b = " << b_size
       << ", x = " << x_size << ", expected " << n;
    return detail::fail(Status::kInvalidInput, os.str());
  }
  return ok();
}

Status distinct_buffers(const void* out, const void* in, const char* what) {
  if (out == in && out != nullptr) {
    std::ostringstream os;
    os << "check: " << what
       << ": output aliases an input the kernel reads at arbitrary indices";
    return detail::fail(Status::kInvalidInput, os.str());
  }
  return ok();
}

}  // namespace hpamg::check
