// General-purpose command-line solver: load a MatrixMarket file (e.g. one
// of the University of Florida matrices from the paper's Table 2) and
// solve it with the Table 3 / Table 4 configurations.
//
//   $ ./solve_mtx matrix.mtx [--rhs ones|random] [--rtol 1e-7]
//                 [--solver amg|pcg|fgmres] [--variant opt|base]
//                 [--scheme ei4|2s-ei|mp] [--max-levels 7] [--strong 0.25]
//
// With no file argument it solves a built-in demo problem so the binary is
// runnable out of the box.
#include <cstdio>

#include "amg/solver.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "matrix/io.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace hpamg;
  Cli cli(argc, argv);

  CSRMatrix A;
  if (cli.positional().empty()) {
    std::printf("no input file given; solving built-in lap2d 150x150 demo\n");
    A = lap2d_5pt(150, 150);
  } else {
    Timer t;
    A = read_matrix_market(cli.positional()[0]);
    std::printf("read %s: %d rows, %lld nnz (%.2fs)\n",
                cli.positional()[0].c_str(), A.nrows, (long long)A.nnz(),
                t.seconds());
    require(A.nrows == A.ncols, "input matrix must be square");
  }

  Vector b(A.nrows, 1.0);
  if (cli.get("rhs", "ones") == "random") {
    CounterRng rng(99);
    for (Int i = 0; i < A.nrows; ++i) b[i] = rng.uniform(i) - 0.5;
  }

  AMGOptions opts;
  opts.variant = cli.get("variant", "opt") == "base" ? Variant::kBaseline
                                                     : Variant::kOptimized;
  opts.max_levels = Int(cli.get_int("max-levels", 7));
  opts.strength.threshold = cli.get_double("strong", 0.25);
  const std::string scheme = cli.get("scheme", "ei4");
  if (scheme == "mp") {
    opts.interp = InterpKind::kMultipass;
    opts.num_aggressive_levels = 1;
  } else if (scheme == "2s-ei") {
    opts.interp = InterpKind::kExtPI2Stage;
    opts.num_aggressive_levels = 1;
  }

  Timer t;
  AMGSolver amg(A, opts);
  std::printf("setup %.3fs, %d levels, operator complexity %.2f\n",
              t.seconds(), amg.hierarchy().num_levels(),
              amg.operator_complexity());
  std::printf("%s", hierarchy_summary(amg.hierarchy()).c_str());

  const double rtol = cli.get_double("rtol", 1e-7);
  const std::string solver = cli.get("solver", "amg");
  Vector x(A.nrows, 0.0);
  t.reset();
  Int iters = 0;
  bool converged = false;
  double relres = 0.0;
  if (solver == "pcg") {
    KrylovOptions ko;
    ko.rtol = rtol;
    KrylovResult r = pcg(A, b, x, ko, [&](const Vector& rr, Vector& z) {
      amg.precondition(rr, z);
    });
    iters = r.iterations;
    converged = r.converged;
    relres = r.final_relres;
  } else if (solver == "fgmres") {
    KrylovOptions ko;
    ko.rtol = rtol;
    KrylovResult r = fgmres(A, b, x, ko, [&](const Vector& rr, Vector& z) {
      amg.precondition(rr, z);
    });
    iters = r.iterations;
    converged = r.converged;
    relres = r.final_relres;
  } else {
    SolveResult r = amg.solve(b, x, rtol, 500);
    iters = r.iterations;
    converged = r.converged;
    relres = r.final_relres;
  }
  std::printf("%s: solve %.3fs, %d iterations, relres %.3e, converged=%s\n",
              solver.c_str(), t.seconds(), iters, relres,
              converged ? "yes" : "no");
  return converged ? 0 : 1;
}
