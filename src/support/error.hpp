// Solver status taxonomy and structured failure types.
//
// Production AMG libraries treat "why did the solve stop" as first-class
// API surface (XAMG's status codes, AMGCL's convergence reports); a bare
// bool converged cannot distinguish "reached rtol" from "went NaN at
// iteration 12" from "a rank timed out inside a barrier". Every solver
// entry point (AMGSolver, DistHierarchy, the Krylov drivers) reports a
// Status, the simmpi runtime raises the structured errors below instead of
// hanging, and the JSON report layer carries the result as a `status`
// block so CI can gate on failure modes (support/report.hpp).
#pragma once

#include <cmath>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/common.hpp"

namespace hpamg {

/// Terminal outcome of a solve (or setup) — the error-code taxonomy
/// threaded through SolveResult / DistSolveResult / KrylovResult and the
/// report's `status` block. Names are schema-stable (status_name).
/// [[nodiscard]] on the enum makes every Status-returning call site a
/// -Wunused-result warning when the verdict is dropped — enforced as an
/// error in CI builds and audited by tools/hpamg_lint (nodiscard-status).
enum class [[nodiscard]] Status : int {
  kOk = 0,              ///< converged within tolerance, no incident
  kRecovered,           ///< converged after >= 1 recovery (scrub/restart)
  kMaxIterations,       ///< iteration budget exhausted, residual finite
  kStagnated,           ///< budget exhausted with no progress over a window
  kDiverged,            ///< residual grew past the divergence threshold
  kNonFinite,           ///< NaN/Inf residual, recovery exhausted
  kInvalidInput,        ///< input validation rejected the matrix/vectors
  kAllocFailure,        ///< allocation failed during setup or solve
  kDeadlock,            ///< bounded wait timed out inside simmpi
  kCollectiveMismatch,  ///< ranks entered different collectives
  kPeerFailure,         ///< released from a wait because a peer failed
  // Service-layer verdicts (src/service): the error contract of the
  // session layer. Requests that never reach a solver still resolve to a
  // specific Status, never silence.
  kRejected,            ///< admission control refused the request
  kDeadlineExceeded,    ///< deadline expired (in queue or mid-solve)
  kCircuitOpen,         ///< per-operator circuit breaker is open
  kUnknown,             ///< unclassified exception
};

/// Schema-stable snake_case name ("ok", "non_finite", ...).
inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRecovered: return "recovered";
    case Status::kMaxIterations: return "max_iterations";
    case Status::kStagnated: return "stagnated";
    case Status::kDiverged: return "diverged";
    case Status::kNonFinite: return "non_finite";
    case Status::kInvalidInput: return "invalid_input";
    case Status::kAllocFailure: return "alloc_failure";
    case Status::kDeadlock: return "deadlock";
    case Status::kCollectiveMismatch: return "collective_mismatch";
    case Status::kPeerFailure: return "peer_failure";
    case Status::kRejected: return "rejected";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kCircuitOpen: return "circuit_open";
    case Status::kUnknown: break;
  }
  return "unknown";
}

/// Inverse of status_name; kUnknown for unrecognized text.
inline Status status_from_name(std::string_view name) {
  for (int s = int(Status::kOk); s <= int(Status::kUnknown); ++s)
    if (name == status_name(Status(s))) return Status(s);
  return Status::kUnknown;
}

/// True for outcomes that count as a successful solve.
[[nodiscard]] inline bool status_ok(Status s) {
  return s == Status::kOk || s == Status::kRecovered;
}

/// Base class for structured solver/runtime failures: an exception that
/// carries its Status classification.
class SolverError : public std::runtime_error {
 public:
  SolverError(Status status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

/// A bounded wait inside simmpi expired: the run is considered deadlocked.
/// `state_dump()` is the per-rank blocked-state report captured at the
/// moment of the timeout (who waits where, mailbox depths) — also embedded
/// in what().
class DeadlockError : public SolverError {
 public:
  DeadlockError(const std::string& what, std::string dump)
      : SolverError(Status::kDeadlock, what + "\n" + dump),
        dump_(std::move(dump)) {}
  const std::string& state_dump() const { return dump_; }

 private:
  std::string dump_;
};

/// Ranks entered collectives with different signatures (op/count/dtype).
class CollectiveMismatchError : public SolverError {
 public:
  explicit CollectiveMismatchError(const std::string& what)
      : SolverError(Status::kCollectiveMismatch, what) {}
};

/// This rank was released from a blocking wait because another rank
/// failed (threw or deadlocked); the peer's error is the root cause.
class PeerFailureError : public SolverError {
 public:
  explicit PeerFailureError(const std::string& what)
      : SolverError(Status::kPeerFailure, what) {}
};

/// Maps an in-flight exception to the Status taxonomy (for catch blocks
/// that must report a terminal status rather than rethrow).
inline Status status_from_exception(const std::exception& e) {
  if (const auto* se = dynamic_cast<const SolverError*>(&e))
    return se->status();
  if (dynamic_cast<const std::bad_alloc*>(&e)) return Status::kAllocFailure;
  if (dynamic_cast<const std::invalid_argument*>(&e))
    return Status::kInvalidInput;
  return Status::kUnknown;
}

// ------------------------------------------------------------------------
// Convergence monitor
// ------------------------------------------------------------------------

/// Classifies a residual history as it streams in and tells the driver
/// when to trigger recovery. Used by AMGSolver::solve and the distributed
/// drivers; decisions depend only on the (globally reduced) relative
/// residual, so every rank reaches the same verdict.
class ConvergenceMonitor {
 public:
  /// `div_factor`: relres above div_factor * best counts as divergence.
  /// `stall_window` / `stall_eps`: no relative improvement better than
  /// stall_eps over stall_window consecutive iterations counts as
  /// stagnation (reported only at budget exhaustion — stagnating solves
  /// are left to run, diverging ones are stopped).
  explicit ConvergenceMonitor(double div_factor = 1e4, Int stall_window = 25,
                              double stall_eps = 1e-4)
      : div_factor_(div_factor), stall_window_(stall_window),
        stall_eps_(stall_eps) {}

  /// Feeds one iteration's relative residual; returns the classification:
  /// kOk (keep iterating), kNonFinite, or kDiverged (both: recover or
  /// stop). Stagnation never stops a solve mid-flight — query stagnated()
  /// when the budget runs out.
  [[nodiscard]] Status observe(Int iteration, double relres) {
    if (!std::isfinite(relres)) {
      if (nonfinite_iteration_ < 0) nonfinite_iteration_ = iteration;
      return Status::kNonFinite;
    }
    if (best_ >= 0.0 && relres > div_factor_ * (best_ > 0.0 ? best_ : 1.0))
      return Status::kDiverged;
    if (best_ < 0.0 || relres < best_ * (1.0 - stall_eps_)) {
      best_ = relres;
      best_iteration_ = iteration;
      since_improvement_ = 0;
    } else {
      ++since_improvement_;
    }
    return Status::kOk;
  }

  /// Resets the improvement window after a recovery (the restored iterate
  /// re-earns its progress; best stays).
  void note_recovery() { since_improvement_ = 0; }

  bool stagnated() const { return since_improvement_ >= stall_window_; }
  /// Best (smallest finite) residual seen; negative before any sample.
  double best() const { return best_; }
  Int best_iteration() const { return best_iteration_; }
  /// First iteration that produced a non-finite residual; -1 if none.
  Int nonfinite_iteration() const { return nonfinite_iteration_; }

 private:
  double div_factor_;
  Int stall_window_;
  double stall_eps_;
  double best_ = -1.0;
  Int best_iteration_ = 0;
  Int since_improvement_ = 0;
  Int nonfinite_iteration_ = -1;
};

}  // namespace hpamg
