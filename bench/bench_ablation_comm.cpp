// Ablation: multi-node communication optimizations.
//
//  (1) §4.3 filtered interpolation row exchange: measured gathered bytes
//      with and without the sender-side filter (paper: >3x reduction on its
//      inputs at 128 nodes).
//  (2) §4.4 persistent communication: modeled halo-exchange time with
//      per-message request setup vs persistent requests (paper: 1.7-1.8x).
//
// Usage: bench_ablation_comm [--n 10] [--max-ranks 8] [--json out.json]
#include <cstdio>

#include "bench_util.hpp"
#include "dist/dist_coarsen.hpp"
#include "dist/dist_interp.hpp"
#include "dist/dist_transpose.hpp"
#include "gen/stencil.hpp"

using namespace hpamg;
using namespace hpamg::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const Int n = Int(cli.get_int("n", 10));
  const int max_ranks = int(cli.get_int("max-ranks", 8));
  const NetworkModel net = endeavor_network();
  // No --repeat here: every reported number is a deterministic counter or
  // a modeled time derived from counters.
  const RunEnv env("ablation_comm");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  sink.report.set_param("n", long(n));
  sink.report.set_param("max_ranks", long(max_ranks));

  std::printf("=== Ablation (1): §4.3 filtered interpolation exchange"
              " (anisotropic lap3d, %d^3/rank) ===\n\n", n);
  print_row({"ranks", "full_KB", "filtered_KB", "reduction"}, 13);
  for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
    CSRMatrix A = lap3d_7pt(n, n, n * Int(ranks), 1.0, 8.0);
    std::vector<std::uint64_t> full(ranks), filt(ranks);
    simmpi::run(ranks, [&](simmpi::Comm& c) {
      DistMatrix dA = distribute_csr(c, A);
      StrengthOptions so;
      DistMatrix dS = dist_strength(dA, so);
      DistMatrix dST = dist_transpose(c, dS);
      CFMarker cf = dist_pmis(c, dS, dST);
      CoarseNumbering cn = coarse_numbering(c, cf);
      DistInterpInfo a, b;
      DistInterpOptions io;
      io.filtered_exchange = false;
      dist_extpi_interp(c, dA, dS, dST, cf, cn, io, nullptr, &a);
      io.filtered_exchange = true;
      dist_extpi_interp(c, dA, dS, dST, cf, cn, io, nullptr, &b);
      full[c.rank()] = a.gathered_bytes;
      filt[c.rank()] = b.gathered_bytes;
    });
    std::uint64_t tf = 0, tg = 0;
    for (int r = 0; r < ranks; ++r) {
      tf += full[r];
      tg += filt[r];
    }
    print_row({fmt_int(ranks), fmt(double(tf) / 1e3, "%.1f"),
               fmt(double(tg) / 1e3, "%.1f"),
               fmt(double(tf) / double(tg), "%.2f")},
              13);
    sink.report.add_run("filtered_exchange/r" + std::to_string(ranks))
        .label("study", "filtered_exchange")
        .metric("ranks", double(ranks))
        .metric("full_bytes", double(tf))
        .metric("filtered_bytes", double(tg))
        .metric("reduction", double(tf) / double(tg));
  }

  std::printf("\n=== Ablation (2): §4.4 persistent communication, modeled"
              " halo-exchange time ===\n\n");
  print_row({"ranks", "msgs/exch", "KB/exch", "nonpersist_us",
             "persist_us", "speedup"}, 14);
  for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
    CSRMatrix A = lap3d_7pt(n, n, n * Int(ranks));
    std::vector<simmpi::CommStats> np(ranks), pp(ranks);
    simmpi::run(ranks, [&](simmpi::Comm& c) {
      DistMatrix dA = distribute_csr(c, A);
      Vector x(dA.local_rows(), 1.0), ext;
      HaloExchange h_np(c, dA.colmap, dA.row_starts, false);
      HaloExchange h_p(c, dA.colmap, dA.row_starts, true);
      const auto s0 = c.stats();
      h_np.exchange(x, ext);
      const auto s1 = c.stats();
      h_p.exchange(x, ext);
      const auto s2 = c.stats();
      np[c.rank()].messages_sent = s1.messages_sent - s0.messages_sent;
      np[c.rank()].bytes_sent = s1.bytes_sent - s0.bytes_sent;
      np[c.rank()].request_setups = s1.request_setups - s0.request_setups;
      pp[c.rank()].messages_sent = s2.messages_sent - s1.messages_sent;
      pp[c.rank()].bytes_sent = s2.bytes_sent - s1.bytes_sent;
      pp[c.rank()].persistent_starts =
          s2.persistent_starts - s1.persistent_starts;
    });
    double t_np = 0, t_p = 0, msgs = 0, kb = 0;
    for (int r = 0; r < ranks; ++r) {
      t_np = std::max(t_np, net.seconds(np[r]));
      t_p = std::max(t_p, net.seconds(pp[r]));
      msgs += double(np[r].messages_sent) / ranks;
      kb += double(np[r].bytes_sent) / 1e3 / ranks;
    }
    print_row({fmt_int(ranks), fmt(msgs, "%.1f"), fmt(kb, "%.2f"),
               fmt(t_np * 1e6, "%.2f"), fmt(t_p * 1e6, "%.2f"),
               fmt(t_np / t_p, "%.2f")},
              14);
    sink.report.add_run("persistent_comm/r" + std::to_string(ranks))
        .label("study", "persistent_comm")
        .metric("ranks", double(ranks))
        .metric("messages_per_exchange", msgs)
        .metric("kb_per_exchange", kb)
        .metric("nonpersistent_seconds", t_np)
        .metric("persistent_seconds", t_p)
        .metric("speedup", t_np / t_p);
  }
  std::printf("\nExpected shape (paper): >3x exchange-volume reduction from"
              " filtering on its inputs; 1.7-1.8x halo-exchange speedup from"
              " persistent requests (small messages are setup-dominated)."
              "\n");
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  return trace_rc != 0 ? trace_rc : json_rc;
}
