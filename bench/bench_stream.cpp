// Machine/network calibration microbenchmark.
//
// The perfmodel defaults (perfmodel/machine.hpp, perfmodel/network.hpp) are
// the PAPER's constants — SC'15 Table 1 hardware — so projections reproduce
// the paper's numbers regardless of the host. This bench measures what the
// HOST actually delivers and emits the result in the calibration-JSON
// format `attrib::load_calibration_json` reads, so tools that diagnose
// local runs (`perf_report --machine <file>`) can judge kernels against
// this machine's ceilings instead of Endeavor's:
//
//   - STREAM triad (a[i] = b[i] + s*c[i], 24 bytes/element) over all OpenMP
//     threads — the bandwidth roofline;
//   - a dependent-FMA loop per thread — the (secondary) flop roofline;
//   - simmpi 2-rank ping-pong at eager (8 B), rendezvous-boundary (32 KiB)
//     and bulk (1 MiB) sizes — the transport the distributed benches
//     actually run on, so the derived NetworkModel describes mailbox
//     latency and memcpy bandwidth, not InfiniBand.
//
// Usage: bench_stream [--n <elements>] [--repeat N] [--msg-repeat N]
//                     [--out calibration.json]
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "dist/simmpi.hpp"
#include "perfmodel/attrib.hpp"

namespace {

using namespace hpamg;

/// Best-of-N wall seconds for one triad sweep of `n` elements.
double stream_triad_seconds(std::size_t n, int repeats) {
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 3.0);
  const double s = 0.42;
  double best = 1e300;
  for (int r = 0; r <= repeats; ++r) {  // repeat 0 is an untimed warm-up
    Timer t;
    parallel_for(Int(0), Int(n), [&](Int i) { a[i] = b[i] + s * c[i]; });
    const double sec = t.seconds();
    if (r > 0 && sec < best) best = sec;
  }
  // Defeat dead-code elimination.
  if (a[n / 2] == -1.0) std::printf("impossible\n");
  return best;
}

/// Measured double-precision flops/s from independent FMA chains on every
/// thread. Eight chains per thread keep the FMA pipelines full; the result
/// feeds a printf so the loop cannot be optimized away.
double peak_flops_measured(int repeats) {
  const std::size_t iters = 4u << 20;
  const int nt = num_threads();
  std::vector<double> sink(std::size_t(nt), 0.0);
  double best = 1e300;
  for (int r = 0; r <= repeats; ++r) {
    Timer t;
    parallel_for(Int(0), Int(nt), [&](Int tid) {
      double x0 = 1.0 + 1e-9 * double(tid), x1 = x0, x2 = x0, x3 = x0;
      double x4 = x0, x5 = x0, x6 = x0, x7 = x0;
      const double m = 1.0 + 1e-12, d = 1e-15;
      for (std::size_t i = 0; i < iters; ++i) {
        x0 = x0 * m + d;
        x1 = x1 * m + d;
        x2 = x2 * m + d;
        x3 = x3 * m + d;
        x4 = x4 * m + d;
        x5 = x5 * m + d;
        x6 = x6 * m + d;
        x7 = x7 * m + d;
      }
      sink[std::size_t(tid)] = x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7;
    });
    const double sec = t.seconds();
    if (r > 0 && sec < best) best = sec;
  }
  double acc = 0.0;
  for (double v : sink) acc += v;
  if (acc == -1.0) std::printf("impossible\n");
  // 8 chains x 2 flops (mul+add) per iteration per thread.
  return double(iters) * 16.0 * double(nt) / best;
}

/// Median one-way seconds for a `bytes`-sized ping-pong between two simmpi
/// ranks (half the round-trip, best of `repeats`).
double pingpong_seconds(std::size_t bytes, int repeats) {
  double one_way = 0.0;
  simmpi::run(2, [&](simmpi::Comm& comm) {
    std::vector<char> payload(bytes, 'x');
    const int tag = 1;
    double best = 1e300;
    for (int r = 0; r <= repeats; ++r) {
      Timer t;
      if (comm.rank() == 0) {
        comm.send(1, tag, payload.data(), payload.size());
        (void)comm.recv(1, tag);
      } else {
        std::vector<char> got = comm.recv(0, tag);
        comm.send(0, tag, got.data(), got.size());
      }
      const double sec = t.seconds();
      if (r > 0 && sec < best) best = sec;
    }
    if (comm.rank() == 0) one_way = 0.5 * best;
  });
  return one_way;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t n = std::size_t(cli.get_int("n", 1 << 22));
  const int repeats = int(std::max(1L, cli.get_int("repeat", 3)));
  const int msg_repeats = int(std::max(1L, cli.get_int("msg-repeat", 50)));
  const std::string out = cli.get("out", "");

  // ---- bandwidth and flop rooflines.
  const double triad_sec = stream_triad_seconds(n, repeats);
  const double stream_bw = 24.0 * double(n) / triad_sec;
  const double flops = peak_flops_measured(repeats);

  // ---- transport calibration. Eager latency gives the per-message
  // overhead; the bulk transfer gives peak bandwidth once overhead is
  // subtracted; the rendezvous-boundary size isolates the extra handshake
  // cost above the eager limit.
  const NetworkModel dflt;  // for the eager limit the model will use
  const std::size_t eager_bytes = 8;
  const std::size_t rendez_bytes = std::size_t(dflt.eager_limit_bytes) * 2;
  const std::size_t bulk_bytes = 1u << 20;
  const double t_eager = pingpong_seconds(eager_bytes, msg_repeats);
  const double t_rendez = pingpong_seconds(rendez_bytes, msg_repeats);
  const double t_bulk = pingpong_seconds(bulk_bytes, msg_repeats);
  const double overhead = t_eager;
  const double bw =
      double(bulk_bytes) / std::max(t_bulk - overhead, 1e-12);
  const double rendezvous_extra = std::max(
      0.0, t_rendez - overhead - double(rendez_bytes) / bw);

  std::printf("STREAM triad:  %8.2f GB/s (%zu elements, best of %d)\n",
              stream_bw * 1e-9, n, repeats);
  std::printf("peak flops:    %8.2f Gflop/s (%d threads)\n", flops * 1e-9,
              num_threads());
  std::printf("msg overhead:  %8.3f us (8 B one-way)\n", overhead * 1e6);
  std::printf("msg bandwidth: %8.2f GB/s (1 MiB one-way)\n", bw * 1e-9);
  std::printf("rendezvous:    %8.3f us extra (%zu B one-way)\n",
              rendezvous_extra * 1e6, rendez_bytes);

  // ---- calibration JSON in the load_calibration_json format. Only the
  // measured fields are written; loaders keep their defaults for the rest
  // (sparse_efficiency, branch costs, eager limit).
  JsonWriter w;
  w.begin_object();
  w.key("machine").begin_object();
  w.kv("name", "host-calibrated");
  w.kv("stream_bw_bytes_per_s", stream_bw);
  w.kv("peak_flops", flops);
  w.end_object();
  w.key("network").begin_object();
  w.kv("overhead_s", overhead);
  w.kv("peak_bw_bytes_per_s", bw);
  w.kv("rendezvous_extra_s", rendezvous_extra);
  w.end_object();
  w.end_object();

  // Round-trip through the loader so a malformed emission fails HERE, in
  // the bench, not later in perf_report.
  MachineModel mm = endeavor_rank();
  NetworkModel nm;
  std::string err;
  if (!attrib::load_calibration_json(w.str(), &mm, &nm, &err)) {
    std::fprintf(stderr, "calibration self-check failed: %s\n", err.c_str());
    return 1;
  }

  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write\n", out.c_str());
      return 1;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out.c_str());
  } else {
    std::printf("%s\n", w.str().c_str());
  }
  return 0;
}
