// Halo exchange (SC'15 §4.1, Fig 3b) and remote-row gather (Fig 3c).
//
// HaloExchange materializes the communication pattern implied by a
// distributed matrix's colmap: which ranks own the external vector elements
// this rank reads, and which local elements each peer needs from us. The
// pattern is the analogue of MPI persistent requests (§4.4): constructing
// it once and calling exchange() repeatedly is the optimized path
// (persistent = true, one Startall per exchange); the baseline re-pays the
// per-message request setup on every call (persistent = false), which the
// perfmodel charges accordingly.
//
// gather_rows implements the matrix-row halo exchange that distributed
// SpGEMM and extended+i interpolation need; the optional sender-side
// filter is the §4.3 optimization that strips nonzeros the receiver can
// never use (>3x communication-volume reduction in the paper).
#pragma once

#include <functional>

#include "amg/multivector.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/simmpi.hpp"
#include "support/error.hpp"

namespace hpamg {

class HaloExchange {
 public:
  /// Builds the pattern for external elements `colmap` (sorted global ids)
  /// over the element partition `starts`.
  HaloExchange(simmpi::Comm& comm, const std::vector<Long>& colmap,
               const std::vector<Long>& starts, bool persistent);

  /// Gathers external values: x_ext[j] <- x at global position colmap[j].
  /// x_local is this rank's partition slice.
  void exchange(const Vector& x_local, Vector& x_ext);

  /// Same for signed char payloads (CF markers in distributed PMIS).
  void exchange(const std::vector<signed char>& local,
                std::vector<signed char>& ext);

  /// Same for Long payloads (global coarse indices in dist interpolation).
  void exchange(const std::vector<Long>& local, std::vector<Long>& ext);

  /// Batched multi-RHS exchange: ships all m values of every boundary row
  /// in ONE message per peer, so the per-RHS message count drops to 1/m of
  /// the scalar exchange (x_ext is resized to ext_size() rows by x_local.m
  /// columns). Same pattern, same peers, m-fold payload.
  void exchange(const MultiVector& x_local, MultiVector& x_ext);

  Int ext_size() const { return ext_size_; }
  int num_peers() const { return int(send_peers_.size() + recv_peers_.size()); }

  /// Collective symmetry audit (support/check.hpp invariant layer): every
  /// rank tells every peer how many elements it will ship, and each rank
  /// verifies the claims mirror its own recv segments. All ranks must call
  /// this together (the constructor does, at full checking depth, in
  /// -DHPAMG_CHECK=ON builds). Returns kOk or kInvalidInput with the
  /// mismatching peer in check::last_error().
  Status check_symmetry();

 private:
  template <typename T>
  void exchange_impl(const T* local, T* ext, int tag);

  struct SendPeer {
    int rank;
    std::vector<Int> local_idx;  ///< which of my elements to ship
  };
  struct RecvPeer {
    int rank;
    Int offset;  ///< segment start within ext
    Int count;
  };
  simmpi::Comm& comm_;
  bool persistent_;
  Int ext_size_ = 0;
  int tag_base_ = 0;  ///< per-instance tag block; construction order is
                      ///< collective, so all ranks agree on the value
  std::vector<SendPeer> send_peers_;
  std::vector<RecvPeer> recv_peers_;
};

/// Sender-side nonzero filter: (sender-local row, global column, value) ->
/// keep? Null keeps everything.
using RowFilter = std::function<bool(Int, Long, double)>;

/// Remote matrix rows assembled on the requesting rank; columns remain
/// global until column-index renumbering (renumber.hpp).
struct GatheredRows {
  std::vector<Long> rows;      ///< the requested global row ids (in order)
  std::vector<Int> rowptr;     ///< size rows.size() + 1
  std::vector<Long> gcol;      ///< global column per nonzero
  std::vector<double> values;
  std::uint64_t bytes_received = 0;
};

/// Fetches the listed global rows of B from their owners. All ranks must
/// call this collectively. `filter` runs on the sender (§4.3).
GatheredRows gather_rows(simmpi::Comm& comm, const DistMatrix& B,
                         const std::vector<Long>& needed_rows,
                         const RowFilter& filter = nullptr,
                         bool persistent = false);

}  // namespace hpamg
