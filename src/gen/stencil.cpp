#include "gen/stencil.hpp"

#include <array>
#include <cmath>

#include "support/parallel.hpp"

namespace hpamg {

namespace {

struct Offset {
  Int dx, dy, dz;
  double weight;
};

/// Harmonic mean of cell coefficients across a face; the standard
/// finite-volume transmissibility for discontinuous coefficients.
double face_coeff(const CoeffField& coeff, Int x, Int y, Int z, Int dx,
                  Int dy, Int dz) {
  if (!coeff) return 1.0;
  const double a = coeff(x, y, z);
  const double b = coeff(x + dx, y + dy, z + dz);
  return 2.0 * a * b / (a + b);
}

/// Generic structured-stencil assembly: for each interior neighbor the
/// off-diagonal is -w * t(face); the diagonal accumulates +w * t(face) for
/// every neighbor including ones dropped at the boundary (Dirichlet).
CSRMatrix build_stencil(Int nx, Int ny, Int nz,
                        const std::vector<Offset>& offsets,
                        const CoeffField& coeff) {
  require(nx > 0 && ny > 0 && nz > 0, "build_stencil: bad grid dims");
  const Int n = nx * ny * nz;
  CSRMatrix A(n, n);

  // Count pass.
  parallel_for(0, n, [&](Int i) {
    const Int x = i % nx, y = (i / nx) % ny, z = i / (nx * ny);
    Int cnt = 1;  // diagonal
    for (const Offset& o : offsets) {
      const Int xx = x + o.dx, yy = y + o.dy, zz = z + o.dz;
      if (xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz)
        ++cnt;
    }
    A.rowptr[i + 1] = cnt;
  });
  exclusive_scan(A.rowptr);
  A.colidx.resize(A.rowptr[n]);
  A.values.resize(A.rowptr[n]);

  // Fill pass; columns emitted in ascending order by sorting offsets by
  // linear displacement once.
  std::vector<Offset> sorted = offsets;
  std::sort(sorted.begin(), sorted.end(), [&](const Offset& a, const Offset& b) {
    const Long da = (Long(a.dz) * ny + a.dy) * nx + a.dx;
    const Long db = (Long(b.dz) * ny + b.dy) * nx + b.dx;
    return da < db;
  });
  parallel_for(0, n, [&](Int i) {
    const Int x = i % nx, y = (i / nx) % ny, z = i / (nx * ny);
    Int pos = A.rowptr[i];
    double diag = 0.0;
    Int diag_pos = -1;
    bool diag_written = false;
    for (const Offset& o : sorted) {
      const Long disp = (Long(o.dz) * ny + o.dy) * nx + o.dx;
      if (disp > 0 && !diag_written) {
        diag_pos = pos++;
        A.colidx[diag_pos] = i;
        diag_written = true;
      }
      const Int xx = x + o.dx, yy = y + o.dy, zz = z + o.dz;
      const bool inside =
          xx >= 0 && xx < nx && yy >= 0 && yy < ny && zz >= 0 && zz < nz;
      // Dirichlet: the dropped boundary face still stiffens the diagonal;
      // its transmissibility uses the cell's own coefficient (the ghost
      // cell mirrors it), never evaluating the field out of bounds.
      const double t =
          o.weight * (inside ? face_coeff(coeff, x, y, z, o.dx, o.dy, o.dz)
                             : (coeff ? coeff(x, y, z) : 1.0));
      diag += t;
      if (inside) {
        A.colidx[pos] = grid_index(xx, yy, zz, nx, ny);
        A.values[pos] = -t;
        ++pos;
      }
    }
    if (!diag_written) {
      diag_pos = pos++;
      A.colidx[diag_pos] = i;
    }
    A.values[diag_pos] = diag;
  });
  return A;
}

std::vector<Offset> axis_offsets_2d(double eps_y) {
  return {{-1, 0, 0, 1.0}, {1, 0, 0, 1.0}, {0, -1, 0, eps_y}, {0, 1, 0, eps_y}};
}

std::vector<Offset> axis_offsets_3d(double eps_y, double eps_z) {
  return {{-1, 0, 0, 1.0}, {1, 0, 0, 1.0},  {0, -1, 0, eps_y},
          {0, 1, 0, eps_y}, {0, 0, -1, eps_z}, {0, 0, 1, eps_z}};
}

}  // namespace

CSRMatrix lap2d_5pt(Int nx, Int ny, double eps_y, const CoeffField& coeff) {
  return build_stencil(nx, ny, 1, axis_offsets_2d(eps_y), coeff);
}

CSRMatrix lap3d_7pt(Int nx, Int ny, Int nz, double eps_y, double eps_z,
                    const CoeffField& coeff) {
  return build_stencil(nx, ny, nz, axis_offsets_3d(eps_y, eps_z), coeff);
}

CSRMatrix lap3d_27pt(Int nx, Int ny, Int nz) {
  std::vector<Offset> offs;
  for (Int dz = -1; dz <= 1; ++dz)
    for (Int dy = -1; dy <= 1; ++dy)
      for (Int dx = -1; dx <= 1; ++dx)
        if (dx || dy || dz) offs.push_back({dx, dy, dz, 1.0});
  return build_stencil(nx, ny, nz, offs, nullptr);
}

CSRMatrix lap2d_9pt(Int nx, Int ny) {
  std::vector<Offset> offs;
  for (Int dy = -1; dy <= 1; ++dy)
    for (Int dx = -1; dx <= 1; ++dx)
      if (dx || dy) offs.push_back({dx, dy, 0, 1.0});
  return build_stencil(nx, ny, 1, offs, nullptr);
}

CSRMatrix lap2d_7pt_skew(Int nx, Int ny) {
  std::vector<Offset> offs = axis_offsets_2d(1.0);
  offs.push_back({1, 1, 0, 0.5});
  offs.push_back({-1, -1, 0, 0.5});
  return build_stencil(nx, ny, 1, offs, nullptr);
}

CSRMatrix lap3d_13pt(Int nx, Int ny, Int nz, const CoeffField& coeff) {
  std::vector<Offset> offs = axis_offsets_3d(1.0, 1.0);
  const std::array<std::array<Int, 3>, 6> diag = {{{1, 1, 0},
                                                   {-1, -1, 0},
                                                   {1, 0, 1},
                                                   {-1, 0, -1},
                                                   {0, 1, 1},
                                                   {0, -1, -1}}};
  for (const auto& d : diag) offs.push_back({d[0], d[1], d[2], 0.35});
  return build_stencil(nx, ny, nz, offs, coeff);
}

}  // namespace hpamg
