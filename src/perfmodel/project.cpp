#include "perfmodel/project.hpp"

namespace hpamg {

double projected_phase_seconds(double rank_cpu_seconds,
                               const simmpi::CommStats& rank_comm,
                               const NetworkModel& net) {
  return rank_cpu_seconds + net.seconds(rank_comm);
}

}  // namespace hpamg
