// Figure 7 reproduction: breakdown of total (setup + solve) time of
// HYPRE_opt at the largest rank count, per interpolation scheme.
//
// Bars match the paper's: Strength+Coarsen, Interp, RAP, Setup_etc on the
// setup side; GS/SpMV/BLAS1 compute and Solve_MPI (modeled network time of
// the solve phase: halo exchanges + all-reduces) on the solve side. The
// paper's observation to reproduce: 2-stage aggressive coarsening trades
// longer interpolation construction for shorter RAP and solve; Solve_MPI
// dominates the solve at scale.
//
// Usage: bench_fig7_breakdown [--ranks 8] [--n 10] [--input lap3d|amg2013]
//                             [--repeat N] [--json out.json]
#include <cstdio>

#include "bench_util.hpp"
#include "gen/amg2013.hpp"
#include "gen/stencil.hpp"

using namespace hpamg;
using namespace hpamg::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int ranks = int(cli.get_int("ranks", 8));
  const Int n = Int(cli.get_int("n", 10));
  const std::string input = cli.get("input", "lap3d");
  const double rtol = cli.get_double("rtol", 1e-7);

  const Int nz = n * Int(ranks);
  CSRMatrix A = input == "amg2013" ? amg2013_like(n, n, nz)
                                   : lap3d_27pt(n, n, nz);
  const NetworkModel net = endeavor_network();
  const Repeat repeat(cli);
  const RunEnv env("fig7_breakdown");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  LiveSink live_sink(cli);
  sink.report.set_param("ranks", long(ranks));
  sink.report.set_param("n", long(n));
  sink.report.set_param("input", input);
  sink.report.set_param("rtol", rtol);
  sink.report.set_param("repeat", repeat.count);

  std::printf("=== Fig 7: HYPRE_opt total-time breakdown on %d ranks"
              " (%s, %lld rows) ===\n", ranks, input.c_str(),
              (long long)A.nrows);
  std::printf("(seconds are modeled cluster times; Solve_MPI = modeled"
              " network time of the solve phase)\n\n");
  print_row({"scheme", "Str+Coars", "Interp", "RAP", "Setup_etc",
             "Solve_comp", "Solve_MPI", "total", "iters"}, 11);

  for (const std::string& scheme : {std::string("ei4"), std::string("2s-ei"),
                                    std::string("mp")}) {
    std::vector<double> bars(6, 0.0);
    Int iters = 0;
    SolveReport rep0;
    auto one_pass = [&]() {
    std::vector<std::vector<double>> per_rank(ranks,
                                              std::vector<double>(6, 0.0));
    std::vector<Int> it(ranks, 0);
    simmpi::run(ranks, [&](simmpi::Comm& c) {
      DistMatrix dA = distribute_csr(c, A);
      DistAMGOptions o = table4_options(Variant::kOptimized, scheme);
      DistHierarchy h = dist_amg_setup(c, dA, o);
      Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
      const simmpi::CommStats before = c.stats();
      DistSolveResult r = dist_fgmres(c, dA, h, b, x, rtol, 200);
      simmpi::CommStats delta = c.stats().delta_since(before);

      auto& out = per_rank[c.rank()];
      // Setup bars include each phase's modeled network share.
      out[0] = projected_phase_seconds(
          h.setup_times.get("Strength+Coarsen"),
          h.phase_comm["Strength+Coarsen"], net);
      out[1] = projected_phase_seconds(h.setup_times.get("Interp"),
                                       h.phase_comm["Interp"], net);
      out[2] = projected_phase_seconds(h.setup_times.get("RAP"),
                                       h.phase_comm["RAP"], net);
      out[3] = h.setup_times.get("Setup_etc");
      out[4] = solve_compute_seconds(r.solve_times);
      out[5] = net.seconds(delta) +
               double(delta.allreduces) * net.allreduce_seconds(ranks);
      it[c.rank()] = r.iterations;
      if (c.rank() == 0) {
        rep0 = h.report(&r);
        rep0.solve_comm = delta;
      }
    });
    std::vector<double> pass(6, 0.0);
    for (int r = 0; r < ranks; ++r)
      for (int k = 0; k < 6; ++k) pass[k] = std::max(pass[k], per_rank[r][k]);
    iters = it[0];
    return pass;
    };
    if (repeat.warmup()) one_pass();
    std::vector<std::vector<double>> bar_samples(6);
    for (int i = 0; i < repeat.count; ++i) {
      begin_timed_repeat();
      const std::vector<double> pass = one_pass();
      for (int k = 0; k < 6; ++k) bar_samples[k].push_back(pass[k]);
    }
    for (int k = 0; k < 6; ++k) bars[k] = sample_stats(bar_samples[k]).median;
    const double total = bars[0] + bars[1] + bars[2] + bars[3] + bars[4] +
                         bars[5];
    print_row({scheme, fmt(bars[0], "%.4f"), fmt(bars[1], "%.4f"),
               fmt(bars[2], "%.4f"), fmt(bars[3], "%.4f"),
               fmt(bars[4], "%.4f"), fmt(bars[5], "%.4f"),
               fmt(total, "%.4f"), fmt_int(iters)}, 11);
    rep0.modeled_setup_seconds = bars[0] + bars[1] + bars[2] + bars[3];
    rep0.modeled_solve_seconds = bars[4] + bars[5];
    sink.report.add_run(scheme)
        .label("scheme", scheme)
        .metric("strength_coarsen_s", bars[0])
        .metric("interp_s", bars[1])
        .metric("rap_s", bars[2])
        .metric("setup_etc_s", bars[3])
        .metric("solve_compute_s", bars[4])
        .metric("solve_mpi_s", bars[5])
        .metric("total_s", total)
        .report(rep0);
  }
  std::printf("\nExpected shape (paper): 2s-ei and mp (aggressive"
              " coarsening) spend more in Interp but less in RAP and the"
              " solve than ei4; Solve_MPI is a large share of solve time at"
              " scale.\n");
  const int live_rc = live_sink.finish();
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  if (live_rc != 0) return live_rc;
  return trace_rc != 0 ? trace_rc : json_rc;
}
