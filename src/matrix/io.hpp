// MatrixMarket coordinate-format I/O, so users can run the solver on the
// University of Florida collection matrices the paper evaluates (Table 2)
// when those files are available locally.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/csr.hpp"

namespace hpamg {

/// Reads a MatrixMarket coordinate file (real, general or symmetric —
/// symmetric files are expanded to full storage). Throws on parse errors.
CSRMatrix read_matrix_market(const std::string& path);
CSRMatrix read_matrix_market(std::istream& in);

/// Writes coordinate general format (1-based indices).
void write_matrix_market(const CSRMatrix& A, const std::string& path);
void write_matrix_market(const CSRMatrix& A, std::ostream& out);

}  // namespace hpamg
