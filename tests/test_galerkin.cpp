// Multigrid-theory invariants verified on the built hierarchy:
//  - the Galerkin condition A_{l+1} = P^T A_l P holds exactly for the
//    stored operators and transfers (validates the identity-block RAP and
//    the CF-permutation plumbing in situ);
//  - symmetry of A propagates through all levels;
//  - the V-cycle with zero initial guess is a linear operator in b;
//  - two-grid/multigrid contraction factors are well below 1 on model
//    problems (the paper's premise of O(1) iterations).
#include <gtest/gtest.h>

#include <cmath>

#include "amg/cycle.hpp"
#include "amg/solver.hpp"
#include "gen/stencil.hpp"
#include "matrix/transpose.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

/// Reconstructs the full P of an optimized level from [I; Pf].
CSRMatrix full_p(const Level& L) {
  std::vector<Triplet> t;
  for (Int i = 0; i < L.nc; ++i) t.push_back({i, i, 1.0});
  for (Int i = 0; i < L.Pf.nrows; ++i)
    for (Int k = L.Pf.rowptr[i]; k < L.Pf.rowptr[i + 1]; ++k)
      t.push_back({L.nc + i, L.Pf.colidx[k], L.Pf.values[k]});
  return CSRMatrix::from_triplets(L.n, L.nc, std::move(t));
}

class GalerkinSweep : public ::testing::TestWithParam<Variant> {};

TEST_P(GalerkinSweep, CoarseOperatorsSatisfyGalerkinCondition) {
  CSRMatrix A = lap2d_5pt(24, 24);
  AMGOptions o;
  o.variant = GetParam();
  Hierarchy h = build_hierarchy(A, o);
  ASSERT_GE(h.num_levels(), 2);
  for (Int l = 0; l + 1 < h.num_levels(); ++l) {
    const Level& L = h.levels[l];
    const Level& N = h.levels[l + 1];
    CSRMatrix P = o.variant == Variant::kOptimized ? full_p(L) : L.P;
    CSRMatrix R = transpose_parallel(P);
    CSRMatrix RA = spgemm_onepass(R, L.A);
    CSRMatrix RAP = spgemm_onepass(RA, P);
    // The stored next-level operator is RAP in the child's CF-permuted
    // ordering; undo that permutation before comparing.
    CSRMatrix stored = N.A;
    if (o.variant == Variant::kOptimized && !N.perm.perm.empty()) {
      // stored(i, j) = RAP(perm[i], perm[j]); invert via inv.
      std::vector<Triplet> t;
      for (Int i = 0; i < stored.nrows; ++i)
        for (Int k = stored.rowptr[i]; k < stored.rowptr[i + 1]; ++k)
          t.push_back({N.perm.perm[i], N.perm.perm[stored.colidx[k]],
                       stored.values[k]});
      stored = CSRMatrix::from_triplets(stored.nrows, stored.ncols,
                                        std::move(t));
    }
    RAP.sort_rows();
    stored.sort_rows();
    EXPECT_TRUE(csr_same_operator(RAP, stored, 1e-9)) << "level " << l;
  }
}

TEST_P(GalerkinSweep, SymmetryPropagatesThroughLevels) {
  CSRMatrix A = lap3d_7pt(9, 9, 9);
  AMGOptions o;
  o.variant = GetParam();
  Hierarchy h = build_hierarchy(A, o);
  for (Int l = 0; l < h.num_levels(); ++l) {
    const CSRMatrix& M = h.levels[l].A;
    for (Int i = 0; i < M.nrows; ++i)
      for (Int k = M.rowptr[i]; k < M.rowptr[i + 1]; ++k)
        ASSERT_NEAR(M.values[k], M.at(M.colidx[k], i), 1e-9)
            << "level " << l << " (" << i << "," << M.colidx[k] << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, GalerkinSweep,
                         ::testing::Values(Variant::kOptimized,
                                           Variant::kBaseline));

TEST(CycleLinearity, ZeroGuessCycleIsLinearInB) {
  CSRMatrix A = lap2d_5pt(20, 20);
  AMGOptions o;
  AMGSolver amg(A, o);
  const Int n = A.nrows;
  Vector b1(n), b2(n);
  for (Int i = 0; i < n; ++i) {
    b1[i] = std::sin(0.1 * i);
    b2[i] = std::cos(0.07 * i);
  }
  Vector y1(n, 0.0), y2(n, 0.0), y12(n, 0.0);
  amg.precondition(b1, y1);
  amg.precondition(b2, y2);
  Vector b12(n);
  const double alpha = 2.5, beta = -0.75;
  for (Int i = 0; i < n; ++i) b12[i] = alpha * b1[i] + beta * b2[i];
  amg.precondition(b12, y12);
  for (Int i = 0; i < n; ++i)
    ASSERT_NEAR(y12[i], alpha * y1[i] + beta * y2[i],
                1e-9 * (1.0 + std::abs(y12[i])));
}

TEST(ContractionFactor, WellBelowOneOnLaplacians) {
  for (int which : {0, 1}) {
    CSRMatrix A = which == 0 ? lap2d_5pt(40, 40) : lap3d_7pt(12, 12, 12);
    AMGSolver amg(A, {});
    Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-9, 100);
    ASSERT_TRUE(r.converged);
    // Geometric mean contraction per cycle from the residual history.
    ASSERT_GE(r.history.size(), 2u);
    const double rho = std::pow(r.history.back() / r.history.front(),
                                1.0 / double(r.history.size() - 1));
    EXPECT_LT(rho, 0.35) << "which=" << which << " rho=" << rho;
  }
}

TEST(ContractionFactor, HistoryIsMonotone) {
  CSRMatrix A = lap2d_5pt(30, 30);
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, 1e-9, 100);
  ASSERT_TRUE(r.converged);
  for (std::size_t k = 1; k < r.history.size(); ++k)
    EXPECT_LT(r.history[k], r.history[k - 1]);
}

TEST(InterpolationRank, TransfersHaveFullColumnReach) {
  // Every coarse point receives at least its own identity contribution,
  // and (on connected problems) most coarse columns appear in several fine
  // rows — a necessary condition for stable interpolation.
  CSRMatrix A = lap2d_5pt(24, 24);
  Hierarchy h = build_hierarchy(A, {});
  for (Int l = 0; l + 1 < h.num_levels(); ++l) {
    const Level& L = h.levels[l];
    CSRMatrix P = full_p(L);
    std::vector<Int> col_count(P.ncols, 0);
    for (Int c : P.colidx) ++col_count[c];
    for (Int c = 0; c < P.ncols; ++c)
      ASSERT_GE(col_count[c], 1) << "level " << l << " col " << c;
  }
}

TEST(CfSplitting, PermutationIsConsistentWithBlocks) {
  CSRMatrix A = lap2d_5pt(20, 20);
  Hierarchy h = build_hierarchy(A, {});
  for (Int l = 0; l + 1 < h.num_levels(); ++l) {
    const Level& L = h.levels[l];
    // perm is a bijection and the coarse block has the advertised size.
    std::vector<char> seen(L.n, 0);
    for (Int i : L.perm.perm) {
      ASSERT_GE(i, 0);
      ASSERT_LT(i, L.n);
      ASSERT_FALSE(seen[i]);
      seen[i] = 1;
    }
    EXPECT_EQ(L.perm.ncoarse, L.nc);
    EXPECT_EQ(L.Pf.nrows + L.nc, L.n);
  }
}

}  // namespace
}  // namespace hpamg
