// Figure 6 reproduction: weak scaling of the multi-node solver.
//
// Panels (a-c) use the 3-D Laplace 27-pt operator (HPCG), panels (d-f) the
// AMG2013-like semi-structured operator; each rank owns a fixed sub-domain
// and ranks are stacked along z. For every (scheme, variant, rank count)
// the bench runs the Table 4 configuration (FGMRES + AMG) on simmpi and
// reports:
//   setup_s / solve_s — modeled time on the paper's cluster: max over ranks
//     of (per-rank CPU time measured under simmpi + alpha-beta network
//     time for that rank's recorded traffic);
//   iters — measured FGMRES iteration count (panel c/f).
//
// Usage: bench_fig6_weak [--input lap3d|amg2013] [--n 10] [--max-ranks 8]
//                        [--schemes ei4,2s-ei,mp] [--rtol 1e-7]
//                        [--repeat N] [--json out.json]
#include <cstdio>
#include <sstream>

#include "bench_util.hpp"
#include "gen/amg2013.hpp"
#include "gen/stencil.hpp"

using namespace hpamg;
using namespace hpamg::bench;

namespace {

struct WeakResult {
  double setup_s = 0, solve_s = 0;
  Int iters = 0;
  double opcx = 0;
  SolveReport rep;  // rank 0's view of the run
};

WeakResult run_weak(const std::string& input, Int n, int ranks,
                    const std::string& scheme, Variant v, double rtol) {
  // Global operator: per-rank n^3 sub-domain, stacked along z.
  const Int nz = n * Int(ranks);
  CSRMatrix A = input == "amg2013" ? amg2013_like(n, n, nz)
                                   : lap3d_27pt(n, n, nz);
  WeakResult out;
  std::vector<double> setup_model(ranks), solve_model(ranks);
  std::vector<Int> iters(ranks);
  std::vector<double> opcx(ranks);
  SolveReport rep0;
  const NetworkModel net = endeavor_network();

  simmpi::run(ranks, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistAMGOptions o = table4_options(v, scheme);
    DistHierarchy h = dist_amg_setup(c, dA, o);
    setup_model[c.rank()] =
        projected_phase_seconds(h.setup_times.total(), h.setup_comm, net);

    Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
    const simmpi::CommStats before = c.stats();
    DistSolveResult r = dist_fgmres(c, dA, h, b, x, rtol, 200);
    simmpi::CommStats delta = c.stats().delta_since(before);
    solve_model[c.rank()] =
        projected_phase_seconds(solve_compute_seconds(r.solve_times), delta,
                                net) +
        double(delta.allreduces) * net.allreduce_seconds(ranks);
    iters[c.rank()] = r.iterations;
    opcx[c.rank()] = h.operator_complexity();
    if (c.rank() == 0) {
      rep0 = h.report(&r);
      rep0.solve_comm = delta;
    }
  });
  for (int r = 0; r < ranks; ++r) {
    out.setup_s = std::max(out.setup_s, setup_model[r]);
    out.solve_s = std::max(out.solve_s, solve_model[r]);
  }
  out.iters = iters[0];
  out.opcx = opcx[0];
  out.rep = std::move(rep0);
  // Modeled times are the cluster projection (max over ranks), not the
  // single-socket work-counter projection.
  out.rep.modeled_setup_seconds = out.setup_s;
  out.rep.modeled_solve_seconds = out.solve_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string input_arg = cli.get("input", "both");
  const Int n = Int(cli.get_int("n", 12));
  const int max_ranks = int(cli.get_int("max-ranks", 8));
  const double rtol = cli.get_double("rtol", 1e-7);
  std::vector<std::string> schemes;
  {
    std::istringstream ss(cli.get("schemes", "ei4,2s-ei,mp"));
    std::string s;
    while (std::getline(ss, s, ',')) schemes.push_back(s);
  }

  const Repeat repeat(cli);
  const RunEnv env("fig6_weak");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  LiveSink live_sink(cli);
  sink.report.set_param("input", input_arg);
  sink.report.set_param("n", long(n));
  sink.report.set_param("max_ranks", long(max_ranks));
  sink.report.set_param("rtol", rtol);
  sink.report.set_param("repeat", repeat.count);
  sink.report.set_param("schemes", cli.get("schemes", "ei4,2s-ei,mp"));

  std::vector<std::string> inputs;
  if (input_arg == "both") {
    inputs = {"lap3d", "amg2013"};
  } else {
    inputs = {input_arg};
  }
  for (const std::string& input : inputs) {
    std::printf("=== Fig 6%s: weak scaling, %s, %d^3 rows/rank, rtol=%.0e"
                " ===\n",
                input == "amg2013" ? "(d-f)" : "(a-c)", input.c_str(), n,
                rtol);
    std::printf("(setup_s/solve_s are modeled cluster times: per-rank CPU +"
                " alpha-beta network; see perfmodel/)\n\n");
    print_row({"input", "scheme", "variant", "ranks", "rows", "setup_s",
               "solve_s", "iters", "opcx"}, 11);
    for (const std::string& scheme : schemes) {
      for (Variant v : {Variant::kBaseline, Variant::kOptimized}) {
        for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
          if (input == "amg2013" && ranks < 2) continue;  // paper: >= 8 ranks
          // The modeled times embed measured per-rank CPU time, so repeats
          // reduce noise here too.
          if (repeat.warmup()) run_weak(input, n, ranks, scheme, v, rtol);
          std::vector<double> setup_samples, solve_samples;
          WeakResult r;
          for (int i = 0; i < repeat.count; ++i) {
            begin_timed_repeat();
            r = run_weak(input, n, ranks, scheme, v, rtol);
            setup_samples.push_back(r.setup_s);
            solve_samples.push_back(r.solve_s);
          }
          r.setup_s = sample_stats(setup_samples).median;
          r.solve_s = sample_stats(solve_samples).median;
          r.rep.modeled_setup_seconds = r.setup_s;
          r.rep.modeled_solve_seconds = r.solve_s;
          const char* vname = v == Variant::kOptimized ? "opt" : "base";
          print_row({input, scheme, vname,
                     fmt_int(ranks), fmt_int(Long(n) * n * n * ranks),
                     fmt(r.setup_s, "%.4f"), fmt(r.solve_s, "%.4f"),
                     fmt_int(r.iters), fmt(r.opcx, "%.2f")}, 11);
          BenchReport::Run& run_entry =
              sink.report
                  .add_run(input + "/" + scheme + "/" + vname + "/r" +
                           std::to_string(ranks))
                  .label("input", input)
                  .label("scheme", scheme)
                  .label("variant", vname)
                  .metric("ranks", double(ranks))
                  .metric("rows", double(Long(n) * n * n * ranks))
                  .metric("modeled_setup_seconds", r.setup_s)
                  .metric("modeled_solve_seconds", r.solve_s);
          if (setup_samples.size() > 1) {
            run_entry
                .metric("modeled_setup_mad_seconds",
                        sample_stats(setup_samples).mad)
                .metric("modeled_solve_mad_seconds",
                        sample_stats(solve_samples).mad);
          }
          run_entry.report(r.rep);
        }
      }
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): mp has the fastest setup; ei(4) and"
              " 2s-ei converge in fewer iterations (faster solve); the"
              " optimized variant improves both phases; iteration counts"
              " grow slowly (lap3d) or stay flat (amg2013).\n");
  const int live_rc = live_sink.finish();
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  if (live_rc != 0) return live_rc;
  return trace_rc != 0 ? trace_rc : json_rc;
}
