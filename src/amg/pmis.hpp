// PMIS coarsening (Parallel Modified Independent Set, De Sterck/Yang) and
// the aggressive (distance-two) variant used on top levels in the paper's
// multi-node runs (Table 4).
//
// Each point gets measure w(i) = |{j : i strongly influences j}| + rand(i).
// Points that influence no one become F immediately; then repeatedly the
// set of points whose measure beats every undecided strong neighbor's is
// promoted to C, and everything strongly connected to a new C point becomes
// F. The random tie-breaker uses the counter-based parallel RNG by default
// (the paper switches from HYPRE's sequential RNG to the MKL parallel RNG,
// observing a ~2% iteration-count drift); the sequential RNG is available
// to reproduce the baseline.
#pragma once

#include "matrix/csr.hpp"
#include "matrix/permute.hpp"
#include "support/counters.hpp"

namespace hpamg {

enum class RngKind { kParallelCounter, kSequential };

struct PmisOptions {
  std::uint64_t seed = 1234;
  RngKind rng = RngKind::kParallelCounter;
};

/// Computes the CF splitting. `S` is the strength matrix (S(i,j) = j
/// strongly influences i); `ST` its transpose. Returns marker: >0 coarse,
/// <0 fine.
CFMarker pmis_coarsen(const CSRMatrix& S, const CSRMatrix& ST,
                      const PmisOptions& opt = {}, WorkCounters* wc = nullptr);

/// Aggressive coarsening: PMIS followed by a second PMIS pass over the
/// first-pass C points using the distance-two strength graph (paths C-C and
/// C-F-C). Produces far fewer C points; pairs with multipass or 2-stage
/// extended+i interpolation (SC'15 Table 4).
/// If `first_pass_out` is non-null it receives the first-pass (standard
/// PMIS) marker — 2-stage extended+i interpolation needs both stages.
CFMarker pmis_aggressive(const CSRMatrix& S, const CSRMatrix& ST,
                         const PmisOptions& opt = {},
                         CFMarker* first_pass_out = nullptr,
                         WorkCounters* wc = nullptr);

/// Number of coarse points in a marker.
Int count_coarse(const CFMarker& cf);

}  // namespace hpamg
