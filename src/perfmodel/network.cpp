#include "perfmodel/network.hpp"

#include <cmath>

namespace hpamg {

double NetworkModel::seconds(const simmpi::CommStats& cs) const {
  if (cs.messages_sent == 0) return 0.0;
  const double mean = double(cs.bytes_sent) / double(cs.messages_sent);
  const double np = double(cs.persistent_starts);
  const double ns = double(cs.request_setups);
  return np * message_seconds(mean, true) + ns * message_seconds(mean, false);
}

double NetworkModel::allreduce_seconds(int nranks) const {
  if (nranks <= 1) return 0.0;
  return std::ceil(std::log2(double(nranks))) * overhead_s;
}

NetworkModel endeavor_network() { return NetworkModel{}; }

}  // namespace hpamg
