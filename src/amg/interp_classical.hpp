// Direct (distance-one classical) interpolation.
//
// The simplest classical-AMG interpolation: an F point interpolates from
// its strong C neighbors only, with the remaining connections collapsed
// into the scaling so constants are interpolated exactly. Used as the
// reference operator in tests and as pass one of multipass interpolation.
#pragma once

#include "matrix/csr.hpp"
#include "matrix/permute.hpp"
#include "support/counters.hpp"

namespace hpamg {

/// Builds the n_l x n_{l+1} interpolation matrix. C-point rows are identity.
/// A rows and S rows must be column-sorted.
CSRMatrix direct_interp(const CSRMatrix& A, const CSRMatrix& S,
                        const CFMarker& cf, WorkCounters* wc = nullptr);

/// Compact coarse index for each point (-1 for F points).
std::vector<Int> coarse_index_map(const CFMarker& cf, Int* ncoarse_out);

}  // namespace hpamg
