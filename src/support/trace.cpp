#include "support/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/live.hpp"
#include "support/report.hpp"

namespace hpamg::trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kDefaultCapacity = 1u << 15;

std::uint64_t steady_ns() {
  return std::uint64_t(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One thread's recording target. Owned by the registry (so it outlives
/// the thread — simmpi rank threads exit before export). Two access
/// contracts coexist:
///   - `total` is atomic: the owner publishes it with release stores, so
///     stats() may count events on a track that is still recording.
///   - `ring` (the event payloads) is written lock-free by the owner only
///     and read exclusively after that thread quiesces (the export path).
///     `capacity` is immutable once the track is published.
struct TrackBuffer {
  int pid = 0;
  int tid = 0;
  std::string process_name;
  std::string thread_name;
  std::size_t capacity = kDefaultCapacity;
  std::vector<Event> ring;
  std::atomic<std::uint64_t> total{0};  ///< events ever pushed

  void push(const Event& e) {
    const std::uint64_t n = total.load(std::memory_order_relaxed);
    if (n < capacity)
      ring.push_back(e);
    else
      ring[std::size_t(n % capacity)] = e;
    total.store(n + 1, std::memory_order_release);
  }

  /// Ring-free (safe against a live owner): the owner pushes
  /// sequentially, so ring.size() == min(total, capacity) always holds.
  std::uint64_t held() const {
    return std::min<std::uint64_t>(
        total.load(std::memory_order_acquire), capacity);
  }

  std::uint64_t dropped() const {
    const std::uint64_t n = total.load(std::memory_order_acquire);
    return n > capacity ? n - capacity : 0;
  }

  /// Oldest-to-newest traversal across the wrap point. Reads event
  /// payloads: owner-quiesced contexts only (export).
  template <typename F>
  void for_each(F&& f) const {
    const std::uint64_t n = total.load(std::memory_order_acquire);
    if (n <= ring.size()) {
      for (const Event& e : ring) f(e);
      return;
    }
    const std::size_t start = std::size_t(n % capacity);
    for (std::size_t i = 0; i < ring.size(); ++i)
      f(ring[(start + i) % ring.size()]);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<TrackBuffer>> tracks;
  std::vector<std::pair<std::string, std::string>> metadata;
  std::map<int, int> next_tid;  ///< per-pid thread counter
  std::size_t capacity = kDefaultCapacity;
  std::atomic<std::uint64_t> epoch_ns{0};
  std::atomic<std::uint64_t> next_flow{1};
  /// Bumped by reset() so threads holding a stale thread_local pointer
  /// re-register instead of writing into freed storage.
  std::atomic<std::uint64_t> generation{1};
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during exit
  return *r;
}

thread_local TrackBuffer* t_track = nullptr;
thread_local std::uint64_t t_generation = 0;

/// Registers a fresh buffer for the calling thread under `pid`.
TrackBuffer* acquire_track(int pid, const std::string* process_name,
                           const std::string* thread_name) {
  Registry& R = registry();
  std::lock_guard<std::mutex> lock(R.mu);
  auto tb = std::make_unique<TrackBuffer>();
  tb->pid = pid;
  tb->tid = R.next_tid[pid]++;
  tb->capacity = std::max<std::size_t>(1, R.capacity);
  tb->process_name =
      process_name
          ? *process_name
          : (pid == 0 ? "host" : "rank " + std::to_string(pid - 1));
  tb->thread_name =
      thread_name ? *thread_name : "thread " + std::to_string(tb->tid);
  t_track = tb.get();
  t_generation = R.generation.load(std::memory_order_relaxed);
  R.tracks.push_back(std::move(tb));
  return t_track;
}

TrackBuffer* local_track() {
  if (t_track != nullptr &&
      t_generation == registry().generation.load(std::memory_order_relaxed))
    return t_track;
  return acquire_track(0, nullptr, nullptr);
}

}  // namespace

namespace detail {
void emit(const Event& e) { local_track()->push(e); }
}  // namespace detail

void enable(std::size_t events_per_thread) {
  Registry& R = registry();
  {
    std::lock_guard<std::mutex> lock(R.mu);
    if (events_per_thread > 0) R.capacity = events_per_thread;
  }
  std::uint64_t expected = 0;
  R.epoch_ns.compare_exchange_strong(expected, steady_ns());
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  Registry& R = registry();
  std::lock_guard<std::mutex> lock(R.mu);
  R.tracks.clear();
  R.metadata.clear();
  R.next_tid.clear();
  R.capacity = kDefaultCapacity;
  R.epoch_ns.store(0);
  R.next_flow.store(1);
  R.generation.fetch_add(1);
}

std::uint64_t now_ns() {
  return steady_ns() - registry().epoch_ns.load(std::memory_order_relaxed);
}

std::uint64_t next_flow_id() {
  return registry().next_flow.fetch_add(1, std::memory_order_relaxed);
}

void set_thread_track(int pid, const std::string& process_name,
                      const std::string& thread_name) {
  if (!enabled()) return;
  acquire_track(pid, &process_name, &thread_name);
}

void set_metadata(const std::string& key, const std::string& value) {
  Registry& R = registry();
  std::lock_guard<std::mutex> lock(R.mu);
  for (auto& [k, v] : R.metadata)
    if (k == key) {
      v = value;
      return;
    }
  R.metadata.emplace_back(key, value);
}

void instant(const char* name, const char* cat) {
  if (!enabled()) return;
  Event e;
  e.kind = Event::Kind::kInstant;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  detail::emit(e);
  // Instants are rare, deliberate markers (faults, recoveries) — exactly
  // the breadcrumbs the flight recorder should retain.
  live::record(live::EventKind::kInstant, name, cat);
}

void counter(const char* name, const char* series0, std::int64_t value0,
             const char* series1, std::int64_t value1) {
  if (!enabled()) return;
  Event e;
  e.kind = Event::Kind::kCounter;
  e.name = name;
  e.cat = "counter";
  e.ts_ns = now_ns();
  e.arg_name[0] = series0;
  e.arg_val[0] = value0;
  e.nargs = 1;
  if (series1 != nullptr) {
    e.arg_name[1] = series1;
    e.arg_val[1] = value1;
    e.nargs = 2;
  }
  detail::emit(e);
}

namespace {
void emit_flow(Event::Kind kind, const char* name, std::uint64_t id,
               int peer, std::int64_t bytes) {
  if (!enabled()) return;
  Event e;
  e.kind = kind;
  e.name = name;
  e.cat = "flow";
  e.ts_ns = now_ns();
  e.flow_id = id;
  e.arg_name[0] = "peer";
  e.arg_val[0] = peer;
  e.arg_name[1] = "bytes";
  e.arg_val[1] = bytes;
  e.nargs = 2;
  detail::emit(e);
}
}  // namespace

void flow_out(const char* name, std::uint64_t id, int peer,
              std::int64_t bytes) {
  emit_flow(Event::Kind::kFlowOut, name, id, peer, bytes);
}

void flow_in(const char* name, std::uint64_t id, int peer,
             std::int64_t bytes) {
  emit_flow(Event::Kind::kFlowIn, name, id, peer, bytes);
}

void Span::begin(const char* name, const char* cat) {
  active_ = true;
  e_.kind = Event::Kind::kSpan;
  e_.name = name;
  e_.cat = cat;
  e_.ts_ns = now_ns();
}

void Span::end() {
  // Tracing may have been disabled mid-span; record anyway — the event is
  // complete and the buffer still exists.
  e_.dur_ns = now_ns() - e_.ts_ns;
  detail::emit(e_);
  active_ = false;
}

TraceStats stats() {
  Registry& R = registry();
  std::lock_guard<std::mutex> lock(R.mu);
  TraceStats s;
  s.tracks = R.tracks.size();
  // Counts only, via the atomic `total` — tracks may still be recording
  // (stats() is safe against live writers; export is not).
  for (const auto& t : R.tracks) {
    s.recorded += t->held();
    s.dropped += t->dropped();
  }
  return s;
}

// ------------------------------------------------------------------------
// Chrome trace-event export
// ------------------------------------------------------------------------

namespace {

double to_us(std::uint64_t ns) { return double(ns) * 1e-3; }

void write_event(JsonWriter& w, const TrackBuffer& t, const Event& e) {
  w.begin_object();
  w.kv("name", e.name != nullptr ? e.name : "?");
  w.kv("cat", e.cat != nullptr ? e.cat : "default");
  switch (e.kind) {
    case Event::Kind::kSpan:
      w.kv("ph", "X");
      break;
    case Event::Kind::kInstant:
      w.kv("ph", "i");
      break;
    case Event::Kind::kCounter:
      w.kv("ph", "C");
      break;
    case Event::Kind::kFlowOut:
      w.kv("ph", "s");
      break;
    case Event::Kind::kFlowIn:
      w.kv("ph", "f");
      break;
  }
  w.kv("ts", to_us(e.ts_ns));
  if (e.kind == Event::Kind::kSpan) w.kv("dur", to_us(e.dur_ns));
  w.kv("pid", t.pid);
  w.kv("tid", t.tid);
  if (e.kind == Event::Kind::kInstant) w.kv("s", "t");  // thread-scoped
  if (e.kind == Event::Kind::kFlowOut || e.kind == Event::Kind::kFlowIn) {
    w.kv("id", (unsigned long long)e.flow_id);
    if (e.kind == Event::Kind::kFlowIn) w.kv("bp", "e");  // bind to slice
  }
  if (e.nargs > 0) {
    w.key("args").begin_object();
    for (int a = 0; a < e.nargs; ++a)
      w.kv(e.arg_name[a] != nullptr ? e.arg_name[a] : "?",
           (long long)e.arg_val[a]);
    w.end_object();
  }
  w.end_object();
}

void write_name_metadata(JsonWriter& w, const char* what, int pid, int tid,
                         bool with_tid, const std::string& name) {
  w.begin_object();
  w.kv("name", what);
  w.kv("ph", "M");
  w.kv("pid", pid);
  if (with_tid) w.kv("tid", tid);
  w.key("args").begin_object().kv("name", name).end_object();
  w.end_object();
}

}  // namespace

std::string export_chrome_json() {
  Registry& R = registry();
  std::lock_guard<std::mutex> lock(R.mu);

  // Stable track order: by (pid, tid), creation order as tiebreak.
  std::vector<const TrackBuffer*> tracks;
  tracks.reserve(R.tracks.size());
  for (const auto& t : R.tracks) tracks.push_back(t.get());
  std::stable_sort(tracks.begin(), tracks.end(),
                   [](const TrackBuffer* a, const TrackBuffer* b) {
                     return a->pid != b->pid ? a->pid < b->pid
                                             : a->tid < b->tid;
                   });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  std::uint64_t dropped = 0;
  // Per-track drop counts exported alongside the aggregate: consumers
  // (trace_summary, trace_analyze) need to know WHICH thread wrapped its
  // ring, because an unmatched flow arrow on a dropped-events track is
  // wraparound, not a tracer bug.
  std::vector<std::pair<const TrackBuffer*, std::uint64_t>> dropped_tracks;
  int last_named_pid = -1;
  for (const TrackBuffer* t : tracks) {
    if (t->pid != last_named_pid) {
      write_name_metadata(w, "process_name", t->pid, 0, false,
                          t->process_name);
      last_named_pid = t->pid;
    }
    write_name_metadata(w, "thread_name", t->pid, t->tid, true,
                        t->thread_name);

    // Ring order is completion order for spans; sort by begin timestamp so
    // every track's events come out time-monotonic.
    std::vector<Event> events;
    events.reserve(t->ring.size());
    t->for_each([&](const Event& e) { events.push_back(e); });
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.ts_ns != b.ts_ns
                                  ? a.ts_ns < b.ts_ns
                                  : a.dur_ns > b.dur_ns;  // parents first
                     });
    for (const Event& e : events) write_event(w, *t, e);
    const std::uint64_t d = t->dropped();
    dropped += d;
    if (d > 0) dropped_tracks.emplace_back(t, d);
  }
  w.end_array();

  w.kv("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  for (const auto& [k, v] : R.metadata) w.kv(k, v);
  w.kv("dropped_events", (unsigned long long)dropped);
  if (!dropped_tracks.empty()) {
    w.key("dropped_by_track").begin_object();
    for (const auto& [t, d] : dropped_tracks) {
      char key[64];
      std::snprintf(key, sizeof(key), "pid%d.tid%d", t->pid, t->tid);
      w.kv(key, (unsigned long long)d);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

bool write_chrome_json(const std::string& path) {
  const std::string text = export_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace hpamg::trace
