// Distributed interpolation operators.
//
// Extended+i is a distance-two interpolation, so building it needs matrix
// rows owned by other ranks (SC'15 §4.1): the rows of A for strong fine
// neighbors, and the strong-C adjacency of those neighbors. The optimized
// path filters the exchanged A rows on the sender (§4.3): only the
// diagonal, opposite-sign coarse columns, and opposite-sign fine columns
// the sender knows it strongly influences can ever be used by a receiver —
// the paper measures a >3x communication-volume reduction from this.
//
// Multipass interpolation needs one additional gather of remote
// interpolation rows per pass (its long-range weights are compositions of
// neighbors' rows).
#pragma once

#include "amg/truncate.hpp"
#include "dist/dist_coarsen.hpp"
#include "dist/dist_matrix.hpp"

namespace hpamg {

struct DistInterpOptions {
  TruncationOptions truncation;
  bool fused_truncation = true;
  bool filtered_exchange = true;  ///< §4.3 sender-side filter
  bool persistent = false;
};

struct DistInterpInfo {
  std::uint64_t gathered_bytes = 0;  ///< row-exchange volume (Fig 8 claim)
};

/// Distributed extended+i interpolation. `ST` is the distributed transpose
/// of S (needed by the §4.3 filter; pass the one computed for PMIS).
/// Returns P row-partitioned like A, column-partitioned by `cn.starts`.
DistMatrix dist_extpi_interp(simmpi::Comm& comm, const DistMatrix& A,
                             const DistMatrix& S, const DistMatrix& ST,
                             const CFMarker& cf, const CoarseNumbering& cn,
                             const DistInterpOptions& opt = {},
                             WorkCounters* wc = nullptr,
                             DistInterpInfo* info = nullptr);

/// Distributed multipass interpolation (Table 4 `mp` scheme).
DistMatrix dist_multipass_interp(simmpi::Comm& comm, const DistMatrix& A,
                                 const DistMatrix& S, const CFMarker& cf,
                                 const CoarseNumbering& cn,
                                 const DistInterpOptions& opt = {},
                                 WorkCounters* wc = nullptr,
                                 DistInterpInfo* info = nullptr);

/// Assembles a DistMatrix from per-row (global column, value) lists.
DistMatrix assemble_dist_from_rows(
    simmpi::Comm& comm, const std::vector<Long>& row_starts,
    const std::vector<Long>& col_starts,
    const std::vector<std::vector<std::pair<Long, double>>>& rows);

}  // namespace hpamg
