#include "dist/dist_spgemm.hpp"

#include <algorithm>

#include "dist/dist_transpose.hpp"
#include "dist/halo.hpp"
#include "dist/renumber.hpp"
#include "spgemm/spgemm.hpp"
#include "support/parallel.hpp"
#include "support/sort.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Combined-operand representation: B's own rows first, gathered external
/// rows after, all over one local column space
///   [0, nBloc) own columns | [nBloc, nBloc+m) B.colmap | new entries after.
struct CombinedB {
  CSRMatrix M;                  ///< nBrows_local + ext rows
  std::vector<Long> ext_colmap; ///< B.colmap ++ new entries (global ids)
  Int nloc_cols = 0;
};

CombinedB assemble_combined_b(const DistMatrix& B, const GatheredRows& ext,
                              const DistSpgemmOptions& opt, WorkCounters* wc,
                              double* renumber_seconds) {
  CombinedB out;
  const Int nb = B.local_rows();
  const Int next_rows = Int(ext.rows.size());
  out.nloc_cols = B.local_cols();

  // Renumber the gathered global columns (§4.2) — the measured hot spot.
  Timer t;
  RenumberInput rin;
  rin.gcol = &ext.gcol;
  rin.own_first = B.first_col();
  rin.own_last = B.last_col();
  rin.existing = &B.colmap;
  rin.nloc = out.nloc_cols;
  RenumberResult ren = opt.parallel_renumber
                           ? renumber_columns_parallel(rin, wc)
                           : renumber_columns_baseline(rin, wc);
  if (renumber_seconds) *renumber_seconds += t.seconds();

  out.ext_colmap = B.colmap;
  out.ext_colmap.insert(out.ext_colmap.end(), ren.new_entries.begin(),
                        ren.new_entries.end());

  // Stack [B_local; B_ext] into one CSR over the combined column space.
  CSRMatrix& M = out.M;
  M = CSRMatrix(nb + next_rows,
                out.nloc_cols + Int(out.ext_colmap.size()));
  for (Int i = 0; i < nb; ++i)
    M.rowptr[i + 1] = B.diag.row_nnz(i) + B.offd.row_nnz(i);
  for (Int i = 0; i < next_rows; ++i)
    M.rowptr[nb + i + 1] = ext.rowptr[i + 1] - ext.rowptr[i];
  exclusive_scan(M.rowptr);
  M.colidx.resize(M.rowptr[M.nrows]);
  M.values.resize(M.rowptr[M.nrows]);
  parallel_for(0, nb, [&](Int i) {
    Int pos = M.rowptr[i];
    for (Int k = B.diag.rowptr[i]; k < B.diag.rowptr[i + 1]; ++k, ++pos) {
      M.colidx[pos] = B.diag.colidx[k];
      M.values[pos] = B.diag.values[k];
    }
    for (Int k = B.offd.rowptr[i]; k < B.offd.rowptr[i + 1]; ++k, ++pos) {
      M.colidx[pos] = out.nloc_cols + B.offd.colidx[k];
      M.values[pos] = B.offd.values[k];
    }
  });
  parallel_for(0, next_rows, [&](Int i) {
    Int pos = M.rowptr[nb + i];
    for (Int k = ext.rowptr[i]; k < ext.rowptr[i + 1]; ++k, ++pos) {
      M.colidx[pos] = ren.local[k];
      M.values[pos] = ext.values[k];
    }
  });
  return out;
}

/// A as one local CSR whose columns index the combined-B rows: diag columns
/// point at B's own rows, offd column j at combined row nb + j (gathered
/// rows are requested in A.colmap order).
CSRMatrix assemble_combined_a(const DistMatrix& A, Int nb) {
  CSRMatrix M(A.local_rows(), nb + Int(A.colmap.size()));
  for (Int i = 0; i < A.local_rows(); ++i)
    M.rowptr[i + 1] = A.diag.row_nnz(i) + A.offd.row_nnz(i);
  exclusive_scan(M.rowptr);
  M.colidx.resize(M.rowptr[M.nrows]);
  M.values.resize(M.rowptr[M.nrows]);
  parallel_for(0, A.local_rows(), [&](Int i) {
    Int pos = M.rowptr[i];
    for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k, ++pos) {
      M.colidx[pos] = A.diag.colidx[k];
      M.values[pos] = A.diag.values[k];
    }
    for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k, ++pos) {
      M.colidx[pos] = nb + A.offd.colidx[k];
      M.values[pos] = A.offd.values[k];
    }
  });
  return M;
}

}  // namespace

DistMatrix dist_spgemm(simmpi::Comm& comm, const DistMatrix& A,
                       const DistMatrix& B, const DistSpgemmOptions& opt,
                       WorkCounters* wc, DistSpgemmInfo* info) {
  TRACE_SPAN("spgemm.dist", "kernel", "rows", std::int64_t(A.local_rows()));
  require(A.global_cols == B.global_rows, "dist_spgemm: shape mismatch");
  // The row gather: A's off-diagonal columns name exactly the B rows we
  // need but do not own (they are global row ids because A's column
  // partition matches B's row partition).
  GatheredRows ext = gather_rows(comm, B, A.colmap, nullptr, opt.persistent);
  if (info) {
    info->gathered_rows += ext.rows.size();
    info->gathered_bytes += ext.bytes_received;
  }

  double renum_sec = 0.0;
  CombinedB cb = assemble_combined_b(B, ext, opt, wc, &renum_sec);
  if (info) info->renumber_seconds += renum_sec;

  CSRMatrix Aloc = assemble_combined_a(A, B.local_rows());

  Timer t_local;
  CSRMatrix Cloc = opt.onepass_local ? spgemm_onepass(Aloc, cb.M, {}, wc)
                                     : spgemm_twopass(Aloc, cb.M, wc);
  if (info) info->local_seconds += t_local.seconds();

  // Split the combined-result columns back into diag/offd + fresh colmap.
  DistMatrix C;
  C.global_rows = A.global_rows;
  C.global_cols = B.global_cols;
  C.row_starts = A.row_starts;
  C.col_starts = B.col_starts;
  C.my_rank = comm.rank();
  const Int nloc = C.local_rows();
  const Int nbcols = cb.nloc_cols;
  C.diag = CSRMatrix(nloc, B.local_cols());
  C.offd = CSRMatrix(nloc, 0);
  std::vector<Long> used;
  for (Int i = 0; i < nloc; ++i) {
    for (Int k = Cloc.rowptr[i]; k < Cloc.rowptr[i + 1]; ++k) {
      if (Cloc.colidx[k] < nbcols)
        ++C.diag.rowptr[i + 1];
      else {
        ++C.offd.rowptr[i + 1];
        used.push_back(cb.ext_colmap[Cloc.colidx[k] - nbcols]);
      }
    }
  }
  exclusive_scan(C.diag.rowptr);
  exclusive_scan(C.offd.rowptr);
  C.colmap = parallel_sort_unique(std::move(used));
  C.offd.ncols = Int(C.colmap.size());
  C.diag.colidx.resize(C.diag.rowptr[nloc]);
  C.diag.values.resize(C.diag.rowptr[nloc]);
  C.offd.colidx.resize(C.offd.rowptr[nloc]);
  C.offd.values.resize(C.offd.rowptr[nloc]);
  parallel_for(0, nloc, [&](Int i) {
    Int pd = C.diag.rowptr[i], po = C.offd.rowptr[i];
    for (Int k = Cloc.rowptr[i]; k < Cloc.rowptr[i + 1]; ++k) {
      if (Cloc.colidx[k] < nbcols) {
        C.diag.colidx[pd] = Cloc.colidx[k];
        C.diag.values[pd] = Cloc.values[k];
        ++pd;
      } else {
        const Long g = cb.ext_colmap[Cloc.colidx[k] - nbcols];
        const auto it = std::lower_bound(C.colmap.begin(), C.colmap.end(), g);
        C.offd.colidx[po] = Int(it - C.colmap.begin());
        C.offd.values[po] = Cloc.values[k];
        ++po;
      }
    }
  });
  C.diag.sort_rows();
  C.offd.sort_rows();
  return C;
}

DistMatrix dist_rap(simmpi::Comm& comm, const DistMatrix& A,
                    const DistMatrix& P, const DistSpgemmOptions& opt,
                    WorkCounters* wc, DistSpgemmInfo* info,
                    DistMatrix* R_out) {
  TRACE_SPAN("spgemm.rap", "kernel", "rows", std::int64_t(A.local_rows()));
  DistMatrix R = dist_transpose(comm, P, opt.parallel_renumber, wc);
  DistMatrix RA = dist_spgemm(comm, R, A, opt, wc, info);
  DistMatrix C = dist_spgemm(comm, RA, P, opt, wc, info);
  if (R_out) *R_out = std::move(R);
  return C;
}

}  // namespace hpamg
