// Chaos suite for the service layer (src/service): deadline expiry in
// every stage (before admission, in queue, mid-V-cycle), queue-full
// rejection, deadline-aware degradation, retry/backoff over injected
// faults, circuit-breaker trip / half-open probe / recovery, hierarchy
// cache hits and LRU eviction, and concurrent mixed traffic. Every
// scenario must resolve every future to a documented Status — never a
// hang, never a stranded promise — and the decision trail must be visible
// in the report's events and the unconditional stats mirror.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "amg/solver.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "service/service.hpp"
#include "support/deadline.hpp"
#include "support/fault.hpp"

namespace hpamg {
namespace {

using service::RequestOptions;
using service::RequestReport;
using service::ServiceOptions;
using service::SolverService;

/// Armed fault sites must never leak across tests (same discipline as
/// tests/test_resilience.cpp).
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

bool has_event_containing(const RequestReport& r, const std::string& needle) {
  for (const auto& e : r.events)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

ServiceOptions quick_opts(int workers = 1) {
  ServiceOptions o;
  o.workers = workers;
  o.backoff_initial_s = 0.001;
  o.backoff_max_s = 0.004;
  return o;
}

Vector ones(Int n) { return Vector(std::size_t(n), 1.0); }

// ------------------------------------------------- deadline propagation ----

TEST_F(ServiceTest, DeadlineAlreadyExpiredStopsSolveBeforeFirstCycle) {
  const CSRMatrix A = lap2d_5pt(16, 16);
  AMGSolver solver(A, AMGOptions{});
  Vector b = ones(A.nrows), x(std::size_t(A.nrows), 0.0);
  const SolveResult r = solver.solve(b, x, 1e-8, 100, Deadline::after(-1.0));
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.iterations, 0);
  ASSERT_FALSE(r.events.empty());
  EXPECT_NE(r.events.front().find("partial result"), std::string::npos);
}

TEST_F(ServiceTest, DeadlineExpiresMidSolveWithPartialResult) {
  // rtol = 0 is unreachable, so only the deadline can stop this solve —
  // the assertion is termination itself plus the partial-result contract.
  const CSRMatrix A = lap2d_5pt(48, 48);
  AMGSolver solver(A, AMGOptions{});
  Vector b = ones(A.nrows), x(std::size_t(A.nrows), 0.0);
  const SolveResult r =
      solver.solve(b, x, 0.0, 1000000, Deadline::after(0.05));
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(std::isfinite(r.final_relres));
  ASSERT_FALSE(r.events.empty());
}

TEST_F(ServiceTest, DeadlineExpiredStopsMultiRhsSolve) {
  const CSRMatrix A = lap2d_5pt(16, 16);
  AMGSolver solver(A, AMGOptions{});
  MultiVector B(A.nrows, 3), X(A.nrows, 3);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int j = 0; j < 3; ++j) B.at(i, j) = 1.0 + j;
  const MultiSolveResult r =
      solver.solve_multi(B, X, 1e-8, 100, Deadline::after(-1.0));
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.iterations, 0);
}

TEST_F(ServiceTest, KrylovDriversHonorExpiredDeadline) {
  const CSRMatrix A = lap2d_5pt(12, 12);
  const Vector b = ones(A.nrows);
  KrylovOptions opt;
  opt.deadline = Deadline::after(-1.0);
  {
    Vector x(std::size_t(A.nrows), 0.0);
    const KrylovResult r = pcg(A, b, x, opt, nullptr);
    EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  }
  {
    Vector x(std::size_t(A.nrows), 0.0);
    const KrylovResult r = gmres(A, b, x, opt, nullptr);
    EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  }
  {
    Vector x(std::size_t(A.nrows), 0.0);
    const KrylovResult r = fgmres(A, b, x, opt, nullptr);
    EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  }
  MultiVector B(A.nrows, 2), X(A.nrows, 2);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int j = 0; j < 2; ++j) B.at(i, j) = 1.0;
  {
    MultiVector X0 = X;
    const BlockKrylovResult r = block_pcg(A, B, X0, opt, nullptr);
    EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  }
  {
    MultiVector X0 = X;
    const BlockKrylovResult r = block_fgmres(A, B, X0, opt, nullptr);
    EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  }
}

// ---------------------------------------------------- admission control ----

TEST_F(ServiceTest, HappyPathSolvesAndReportsCacheMissThenHit) {
  SolverService svc(quick_opts());
  const CSRMatrix A = lap2d_5pt(16, 16);
  RequestOptions ro;
  ro.rtol = 1e-8;
  const RequestReport r1 = svc.submit(A, ones(A.nrows), ro).get();
  EXPECT_EQ(r1.status, Status::kOk);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_EQ(r1.attempts, 1);
  EXPECT_LT(r1.final_relres, 1e-8);
  EXPECT_EQ(Int(r1.x.size()), A.nrows);

  const RequestReport r2 = svc.submit(A, ones(A.nrows), ro).get();
  EXPECT_EQ(r2.status, Status::kOk);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.fingerprint, r1.fingerprint);

  const auto st = svc.stats();
  EXPECT_EQ(st.setup_builds, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.completed_ok, 2u);
}

TEST_F(ServiceTest, QueueFullRejectsAndStopResolvesEveryFuture) {
  ServiceOptions o = quick_opts();
  o.autostart = false;  // no consumer: the queue state is deterministic
  o.queue_capacity = 2;
  o.degrade_queue_fraction = 10.0;  // never degrade in this test
  SolverService svc(o);
  const CSRMatrix A = lap2d_5pt(8, 8);

  auto f1 = svc.submit(A, ones(A.nrows));
  auto f2 = svc.submit(A, ones(A.nrows));
  auto f3 = svc.submit(A, ones(A.nrows));  // queue holds 2 -> rejected
  const RequestReport r3 = f3.get();
  EXPECT_EQ(r3.status, Status::kRejected);
  EXPECT_TRUE(has_event_containing(r3, "queue full"));

  // Drain-stop with no workers must still fulfill the queued futures.
  svc.stop(true);
  EXPECT_EQ(f1.get().status, Status::kRejected);
  EXPECT_EQ(f2.get().status, Status::kRejected);
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 3u);
  EXPECT_EQ(st.queue_full, 1u);
  EXPECT_EQ(st.rejected, 3u);
}

TEST_F(ServiceTest, SubmitAfterStopIsRejected) {
  SolverService svc(quick_opts());
  svc.stop(true);
  const CSRMatrix A = lap2d_5pt(8, 8);
  const RequestReport r = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(r.status, Status::kRejected);
}

TEST_F(ServiceTest, ExpiredDeadlineRejectedAtAdmission) {
  SolverService svc(quick_opts());
  const CSRMatrix A = lap2d_5pt(8, 8);
  RequestOptions ro;
  ro.deadline = Deadline::after(-1.0);
  const RequestReport r = svc.submit(A, ones(A.nrows), ro).get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_EQ(r.attempts, 0);
  EXPECT_TRUE(has_event_containing(r, "before admission"));
}

TEST_F(ServiceTest, DeadlineExpiresWhileQueuedYieldsDeadlineExceeded) {
  ServiceOptions o = quick_opts();
  o.autostart = false;
  SolverService svc(o);
  const CSRMatrix A = lap2d_5pt(8, 8);
  RequestOptions ro;
  ro.deadline = Deadline::after(0.02);
  auto f = svc.submit(A, ones(A.nrows), ro);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  svc.start();  // the worker dequeues an already-expired request
  const RequestReport r = f.get();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_TRUE(has_event_containing(r, "expired in queue"));
  EXPECT_EQ(svc.stats().deadline_exceeded, 1u);
}

TEST_F(ServiceTest, InvalidInputResolvesImmediately) {
  SolverService svc(quick_opts());
  const CSRMatrix A = lap2d_5pt(8, 8);
  Vector wrong_size(std::size_t(A.nrows) - 1, 1.0);
  const RequestReport r = svc.submit(A, wrong_size).get();
  EXPECT_EQ(r.status, Status::kInvalidInput);
  EXPECT_TRUE(has_event_containing(r, "invalid input"));
}

TEST_F(ServiceTest, AdmissionDegradesUnderQueuePressure) {
  ServiceOptions o = quick_opts();
  o.autostart = false;
  o.queue_capacity = 4;
  o.degrade_queue_fraction = 0.5;  // degrade once 2 of 4 slots are held
  o.degraded_max_iterations = 50;
  o.degraded_rtol_floor = 1e-5;
  SolverService svc(o);
  const CSRMatrix A = lap2d_5pt(12, 12);
  RequestOptions ro;
  ro.rtol = 1e-9;
  auto f1 = svc.submit(A, ones(A.nrows), ro);
  auto f2 = svc.submit(A, ones(A.nrows), ro);
  auto f3 = svc.submit(A, ones(A.nrows), ro);  // queue depth 2 -> degraded
  svc.start();
  const RequestReport r1 = f1.get();
  const RequestReport r3 = f3.get();
  EXPECT_FALSE(r1.degraded);
  EXPECT_TRUE(r3.degraded);
  EXPECT_TRUE(has_event_containing(r3, "degraded on admission"));
  EXPECT_EQ(r3.status, Status::kOk);  // looser contract, still solved
  (void)f2.get();
  EXPECT_EQ(svc.stats().degraded, 1u);
}

// ------------------------------------------------------- fault injection ----

TEST_F(ServiceTest, AdmissionFaultSiteRejectsDeterministically) {
  SolverService svc(quick_opts());
  fault::Schedule once;
  once.count = 1;
  fault::arm("service.admit", once);
  const CSRMatrix A = lap2d_5pt(8, 8);
  const RequestReport r1 = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(r1.status, Status::kRejected);
  EXPECT_TRUE(has_event_containing(r1, "fault-injected"));
  const RequestReport r2 = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(r2.status, Status::kOk);
}

TEST_F(ServiceTest, TransientSetupAllocFailureIsRetried) {
  SolverService svc(quick_opts());
  fault::Schedule once;
  once.count = 1;
  fault::arm("service.setup.alloc", once);
  const CSRMatrix A = lap2d_5pt(12, 12);
  const RequestReport r = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(has_event_containing(r, "setup failed"));
  EXPECT_TRUE(has_event_containing(r, "retrying after"));
  EXPECT_EQ(svc.stats().retries, 1u);
}

TEST_F(ServiceTest, PersistentSolveFaultExhaustsRetryBudget) {
  ServiceOptions o = quick_opts();
  o.max_attempts = 2;
  SolverService svc(o);
  fault::arm("amg.solve.poison", {});  // every cycle of every attempt
  const CSRMatrix A = lap2d_5pt(12, 12);
  const RequestReport r = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(r.status, Status::kNonFinite);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_TRUE(has_event_containing(r, "retry budget exhausted"));
  const auto st = svc.stats();
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.failed, 1u);
}

// -------------------------------------------------------- circuit breaker ----

TEST_F(ServiceTest, BreakerTripsFailsFastAndRecoversThroughProbe) {
  ServiceOptions o = quick_opts();
  o.max_attempts = 1;
  o.breaker_threshold = 2;
  o.breaker_cooldown_s = 0.05;
  SolverService svc(o);
  const CSRMatrix A = lap2d_5pt(12, 12);

  fault::arm("amg.solve.poison", {});
  EXPECT_EQ(svc.submit(A, ones(A.nrows)).get().status, Status::kNonFinite);
  EXPECT_EQ(svc.submit(A, ones(A.nrows)).get().status, Status::kNonFinite);
  EXPECT_EQ(svc.stats().breaker_trips, 1u);
  EXPECT_EQ(svc.open_breakers(), 1u);

  // Open breaker fails fast without touching the solver.
  const RequestReport fast = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(fast.status, Status::kCircuitOpen);
  EXPECT_TRUE(has_event_containing(fast, "circuit open"));
  EXPECT_EQ(svc.stats().circuit_open, 1u);

  // After the cooldown the next request is the half-open probe; the fault
  // is cleared, so it succeeds and closes the breaker.
  fault::reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const RequestReport probe = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(probe.status, Status::kOk);
  EXPECT_TRUE(has_event_containing(probe, "probe"));
  EXPECT_EQ(svc.open_breakers(), 0u);
  EXPECT_EQ(svc.submit(A, ones(A.nrows)).get().status, Status::kOk);
}

TEST_F(ServiceTest, FailedProbeReopensBreaker) {
  ServiceOptions o = quick_opts();
  o.max_attempts = 1;
  o.breaker_threshold = 1;
  o.breaker_cooldown_s = 0.03;
  SolverService svc(o);
  const CSRMatrix A = lap2d_5pt(12, 12);

  fault::arm("amg.solve.poison", {});
  EXPECT_EQ(svc.submit(A, ones(A.nrows)).get().status, Status::kNonFinite);
  EXPECT_EQ(svc.stats().breaker_trips, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Probe runs with the fault still armed and fails: breaker re-opens.
  const RequestReport probe = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(probe.status, Status::kNonFinite);
  EXPECT_EQ(svc.stats().breaker_trips, 2u);
  const RequestReport fast = svc.submit(A, ones(A.nrows)).get();
  EXPECT_EQ(fast.status, Status::kCircuitOpen);
}

// ------------------------------------------------------- pool management ----

TEST_F(ServiceTest, LruEvictionKeepsPoolBounded) {
  ServiceOptions o = quick_opts();
  o.max_hierarchies = 1;
  SolverService svc(o);
  const CSRMatrix A1 = lap2d_5pt(8, 8);
  const CSRMatrix A2 = lap2d_5pt(9, 9);
  EXPECT_EQ(svc.submit(A1, ones(A1.nrows)).get().status, Status::kOk);
  EXPECT_EQ(svc.submit(A2, ones(A2.nrows)).get().status, Status::kOk);
  EXPECT_EQ(svc.cached_hierarchies(), 1u);
  const auto st = svc.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.setup_builds, 2u);
}

TEST_F(ServiceTest, MultiRhsRequestSolvesAllColumns) {
  SolverService svc(quick_opts());
  const CSRMatrix A = lap2d_5pt(16, 16);
  MultiVector B(A.nrows, 3);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int j = 0; j < 3; ++j) B.at(i, j) = double(j + 1);
  RequestOptions ro;
  ro.rtol = 1e-8;
  const RequestReport r = svc.submit_multi(A, B, ro).get();
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.X.n, A.nrows);
  EXPECT_EQ(r.X.m, 3);
  EXPECT_LT(r.final_relres, 1e-8);
}

// ---------------------------------------------------- concurrent traffic ----

TEST_F(ServiceTest, ConcurrentMixedTrafficResolvesEveryRequest) {
  ServiceOptions o = quick_opts(/*workers=*/4);
  o.queue_capacity = 64;
  SolverService svc(o);
  const CSRMatrix A1 = lap2d_5pt(16, 16);
  const CSRMatrix A2 = lap2d_5pt(20, 20);
  std::vector<std::future<RequestReport>> futs;
  for (int i = 0; i < 16; ++i) {
    const CSRMatrix& A = (i % 2 == 0) ? A1 : A2;
    futs.push_back(svc.submit(A, ones(A.nrows)));
  }
  int ok = 0;
  for (auto& f : futs) {
    const RequestReport r = f.get();  // must terminate: no hangs
    EXPECT_TRUE(status_ok(r.status) || r.status == Status::kRejected)
        << status_name(r.status);
    if (status_ok(r.status)) ++ok;
  }
  EXPECT_GT(ok, 0);
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 16u);
  EXPECT_LE(st.setup_builds, 2u + st.evictions);
}

}  // namespace
}  // namespace hpamg
