// Invariant-checker tests (support/check.hpp): every corrupted structure
// must produce the documented Status::kInvalidInput with a diagnosis in
// check::last_error() — never UB, never silence. The validators are always
// compiled, so this suite runs identically in release and -DHPAMG_CHECK=ON
// builds; the macro-gated call sites are additionally exercised end-to-end
// by the whole test suite under a check-enabled CI configuration.
#include <gtest/gtest.h>

#include <limits>

#include "amg/hierarchy.hpp"
#include "amg/solver.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/halo.hpp"
#include "gen/stencil.hpp"
#include "support/check.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

CSRMatrix small_lap() { return lap2d_5pt(6, 5); }

// ---- CSR well-formedness -------------------------------------------------

TEST(CheckCSR, AcceptsWellFormed) {
  const CSRMatrix A = small_lap();
  EXPECT_EQ(check::csr_well_formed(A, "A"), Status::kOk);
  EXPECT_EQ(check::last_error(), "");
}

TEST(CheckCSR, UnsortedColumnsRejected) {
  CSRMatrix A = small_lap();
  // Swap two entries of a multi-entry row: structure intact, order broken.
  Int row = -1;
  for (Int i = 0; i < A.nrows; ++i)
    if (A.row_nnz(i) >= 2) { row = i; break; }
  ASSERT_GE(row, 0);
  std::swap(A.colidx[A.rowptr[row]], A.colidx[A.rowptr[row] + 1]);
  EXPECT_EQ(check::csr_well_formed(A, "A"), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("not strictly ascending"),
            std::string::npos);
  // Without the sorted requirement the same matrix passes (duplicate
  // tolerance for builders that sort later).
  EXPECT_EQ(check::csr_well_formed(A, "A", /*require_sorted_unique=*/false),
            Status::kOk);
}

TEST(CheckCSR, OutOfBoundsColumnRejected) {
  CSRMatrix A = small_lap();
  A.colidx[0] = A.ncols + 3;
  EXPECT_EQ(check::csr_well_formed(A, "A"), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("outside"), std::string::npos);
  A.colidx[0] = -1;
  EXPECT_EQ(check::csr_well_formed(A, "A"), Status::kInvalidInput);
}

TEST(CheckCSR, BrokenRowptrRejected) {
  CSRMatrix A = small_lap();
  A.rowptr[1] = A.rowptr[2] + 1;  // non-monotone
  EXPECT_EQ(check::csr_well_formed(A, "A"), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("monotone"), std::string::npos);

  CSRMatrix B = small_lap();
  B.rowptr.pop_back();  // wrong size
  EXPECT_EQ(check::csr_well_formed(B, "B"), Status::kInvalidInput);

  CSRMatrix C = small_lap();
  C.values.pop_back();  // nnz disagreement
  EXPECT_EQ(check::csr_well_formed(C, "C"), Status::kInvalidInput);
}

TEST(CheckCSR, NonFiniteValueRejectedAtFullDepth) {
  CSRMatrix A = small_lap();
  EXPECT_EQ(check::csr_finite(A, "A"), Status::kOk);
  A.values[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(check::csr_finite(A, "A"), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("non-finite"), std::string::npos);
}

// ---- Interpolation / hierarchy consistency -------------------------------

TEST(CheckInterp, DimensionAgreement) {
  CSRMatrix P = CSRMatrix::identity(8);
  EXPECT_EQ(check::interp_shape(P, 8, 8, "P"), Status::kOk);
  EXPECT_EQ(check::interp_shape(P, 10, 8, "P"), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("expected 10 x 8"), std::string::npos);
}

TEST(CheckHierarchy, BuiltHierarchyPasses) {
  for (Variant v : {Variant::kBaseline, Variant::kOptimized}) {
    AMGOptions o;
    o.variant = v;
    Hierarchy h = build_hierarchy(lap2d_5pt(24, 24), o);
    ASSERT_GE(h.num_levels(), 2);
    EXPECT_EQ(check_hierarchy(h), Status::kOk) << check::last_error();
  }
}

TEST(CheckHierarchy, MismatchedInterpDimsRejected) {
  AMGOptions o;
  o.variant = Variant::kBaseline;
  Hierarchy h = build_hierarchy(lap2d_5pt(24, 24), o);
  ASSERT_GE(h.num_levels(), 2);
  // Corrupt P's column count: pretend the coarse space is one bigger.
  h.levels[0].P.ncols += 1;
  EXPECT_EQ(check_hierarchy(h), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("interpolation P"), std::string::npos);
}

TEST(CheckHierarchy, BrokenGalerkinChainRejected) {
  AMGOptions o;
  o.variant = Variant::kBaseline;
  Hierarchy h = build_hierarchy(lap2d_5pt(24, 24), o);
  ASSERT_GE(h.num_levels(), 2);
  // Grow the claimed coarse space consistently with P so only the size
  // chain (next level's row count) disagrees.
  h.levels[0].nc += 1;
  h.levels[0].P.ncols += 1;
  EXPECT_EQ(check_hierarchy(h), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("Galerkin chain"), std::string::npos);
  h.levels[0].nc -= 1;
  h.levels[0].P.ncols -= 1;
  EXPECT_EQ(check_hierarchy(h), Status::kOk) << check::last_error();
}

// ---- Partitions and distributed ownership --------------------------------

TEST(CheckPartition, ContiguousPartitionRules) {
  EXPECT_EQ(check::partition({0, 4, 9}, 2, 9, "p"), Status::kOk);
  // Wrong boundary count.
  EXPECT_EQ(check::partition({0, 9}, 2, 9, "p"), Status::kInvalidInput);
  // Does not start at zero.
  EXPECT_EQ(check::partition({1, 4, 9}, 2, 9, "p"), Status::kInvalidInput);
  // Non-monotone.
  EXPECT_EQ(check::partition({0, 6, 4}, 2, 4, "p"), Status::kInvalidInput);
  // Does not cover the global count.
  EXPECT_EQ(check::partition({0, 4, 8}, 2, 9, "p"), Status::kInvalidInput);
}

TEST(CheckOwnership, ColmapRules) {
  // Rank owns [4, 8) of 12 global columns.
  EXPECT_EQ(check::colmap_ownership({1, 3, 8, 11}, 4, 8, 12, "cm"),
            Status::kOk);
  // Owned column leaked into the halo.
  EXPECT_EQ(check::colmap_ownership({1, 5, 8}, 4, 8, 12, "cm"),
            Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("own span"), std::string::npos);
  // Unsorted / duplicate.
  EXPECT_EQ(check::colmap_ownership({3, 1}, 4, 8, 12, "cm"),
            Status::kInvalidInput);
  EXPECT_EQ(check::colmap_ownership({1, 1}, 4, 8, 12, "cm"),
            Status::kInvalidInput);
  // Out of the global range.
  EXPECT_EQ(check::colmap_ownership({12}, 4, 8, 12, "cm"),
            Status::kInvalidInput);
}

TEST(CheckOwnership, DistMatrixPartitionAudit) {
  CSRMatrix A = lap2d_5pt(12, 11);
  simmpi::run(3, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    EXPECT_EQ(dA.check_partition(c.size()), Status::kOk)
        << check::last_error();
    // Corrupt the colmap on one rank: claim an owned column as external.
    if (c.rank() == 1 && !dA.colmap.empty()) {
      dA.colmap[0] = dA.first_col();
      EXPECT_EQ(dA.check_partition(c.size()), Status::kInvalidInput);
    }
    // Corrupt the partition: rank boundary past the global row count.
    DistMatrix bad = distribute_csr(c, A);
    bad.row_starts.back() += 1;
    EXPECT_EQ(bad.check_partition(c.size()), Status::kInvalidInput);
  });
}

// ---- Halo symmetry -------------------------------------------------------

TEST(CheckHalo, MirroredCountsPass) {
  // 3 ranks as seen from rank 1: peers claim what rank 1 expects.
  EXPECT_EQ(check::halo_counts_mirror({4, 0, 7}, {4, 0, 7}, 1, "halo"),
            Status::kOk);
}

TEST(CheckHalo, AsymmetricListsRejected) {
  EXPECT_EQ(check::halo_counts_mirror({4, 0, 7}, {4, 0, 5}, 1, "halo"),
            Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("not mirrored"), std::string::npos);
  // A peer this rank is not expecting anything from.
  EXPECT_EQ(check::halo_counts_mirror({4, 0, 1}, {4, 0, 0}, 1, "halo"),
            Status::kInvalidInput);
  // Table shape disagreement.
  EXPECT_EQ(check::halo_counts_mirror({4, 0}, {4, 0, 0}, 1, "halo"),
            Status::kInvalidInput);
}

TEST(CheckHalo, BuiltExchangeIsSymmetric) {
  CSRMatrix A = lap2d_5pt(10, 9);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    HaloExchange halo(c, dA.colmap, dA.row_starts, true);
    EXPECT_EQ(halo.check_symmetry(), Status::kOk) << check::last_error();
  });
}

// ---- Vector shapes and enforcement ---------------------------------------

TEST(CheckVectors, ShapeMismatchRejected) {
  EXPECT_EQ(check::vectors_match(5, 5, 5, "solve"), Status::kOk);
  EXPECT_EQ(check::vectors_match(5, 4, 5, "solve"), Status::kInvalidInput);
  EXPECT_EQ(check::vectors_match(5, 5, 6, "solve"), Status::kInvalidInput);
}

TEST(CheckEnforce, EscalatesToSolverError) {
  CSRMatrix A = small_lap();
  A.colidx[0] = -7;
  try {
    check::enforce(check::csr_well_formed(A, "bad matrix"));
    FAIL() << "enforce() must throw on a failed validator";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.status(), Status::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("bad matrix"), std::string::npos);
  }
  // Passing validators do not throw and clear the diagnosis.
  check::enforce(check::csr_well_formed(small_lap(), "good matrix"));
  EXPECT_EQ(check::last_error(), "");
}

TEST(CheckConfig, DepthAndCompileGates) {
  // depth() is process-wide and environment-driven; whatever it is, the
  // accessors must agree with each other and with the build flag.
  const check::Depth d = check::depth();
  EXPECT_GE(int(d), 0);
  EXPECT_LE(int(d), 2);
  if (!check::kCompiled) {
    EXPECT_FALSE(check::active(check::Depth::kCheap));
    EXPECT_FALSE(check::active(check::Depth::kFull));
  } else {
    EXPECT_EQ(check::active(check::Depth::kCheap),
              int(d) >= int(check::Depth::kCheap));
    EXPECT_EQ(check::active(check::Depth::kFull),
              int(d) >= int(check::Depth::kFull));
  }
}

}  // namespace
}  // namespace hpamg
