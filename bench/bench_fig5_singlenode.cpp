// Figure 5 reproduction: single-node comparison of HYPRE_base, HYPRE_opt
// and (modeled) AmgX across the Table 2 suite, with the paper's per-kernel
// breakdown (Strength+Coarsen / Interp / RAP / Setup_etc / GS / SpMV /
// BLAS1 / Solve_etc), normalized to HYPRE_base's time to solution.
//
// Wall-clock is measured on this host; because the paper's hardware is not
// available, the header also reports the modeled times on the Table 1
// machines derived from each run's work counters (see perfmodel/). The
// AmgX columns are a *model* — the paper's measured behavioural ratios
// applied to HYPRE_opt (DESIGN.md §1).
//
// Usage: bench_fig5_singlenode [--scale 0.005] [--matrix name] [--rtol 1e-7]
//                              [--repeat N] [--json out.json]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "gen/suite.hpp"

using namespace hpamg;
using namespace hpamg::bench;

namespace {

struct RunResult {
  double setup_s = 0;  ///< median over --repeat samples
  double solve_s = 0;
  std::vector<double> setup_samples, solve_samples;
  Int iterations = 0;
  double opcx = 0;
  PhaseTimes setup_pt, solve_pt;
  WorkCounters setup_wc, solve_wc;
  SolveReport rep;
};

RunResult run(const CSRMatrix& A, Variant v, double alpha, double rtol,
              const MachineModel& model, const Repeat& repeat) {
  RunResult r;
  if (repeat.warmup()) {
    AMGSolver warm(A, table3_options(v, alpha));
    Vector bw(A.nrows, 1.0), xw(A.nrows, 0.0);
    // Warmup solve: only the caches matter, but a failed warmup means the
    // timed runs below measure a broken configuration — surface it.
    const SolveResult wr = warm.solve(bw, xw, rtol, 200);
    if (!status_ok(wr.status) && wr.status != Status::kMaxIterations) {
      std::fprintf(stderr, "warmup solve failed: %s\n",
                   status_name(wr.status));
      std::exit(1);
    }
  }
  for (int i = 0; i < repeat.count; ++i) {
    begin_timed_repeat();
    Timer t;
    AMGSolver amg(A, table3_options(v, alpha));
    r.setup_samples.push_back(t.seconds());
    Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
    t.reset();
    SolveResult sr = amg.solve(b, x, rtol, 200);
    r.solve_samples.push_back(t.seconds());
    if (i + 1 < repeat.count) continue;
    r.iterations = sr.iterations;
    r.opcx = amg.operator_complexity();
    r.setup_pt = amg.setup_times();
    r.solve_pt = sr.solve_times;
    r.setup_wc = amg.hierarchy().setup_work;
    r.solve_wc = sr.solve_work;
    r.rep = amg.report(&sr);
  }
  r.setup_s = sample_stats(r.setup_samples).median;
  r.solve_s = sample_stats(r.solve_samples).median;
  // Phase sums measure instrumented regions; report wall-clock instead.
  r.rep.setup_seconds = r.setup_s;
  r.rep.solve_seconds = r.solve_s;
  project_report_times(r.rep, model);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.01);
  const double rtol = cli.get_double("rtol", 1e-7);
  const std::string only = cli.get("matrix", "");

  const MachineModel hsw = haswell_socket();
  const MachineModel gpu = k40c();
  const AmgxModel amgx;
  const Repeat repeat(cli);
  const RunEnv env("fig5_singlenode");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  LiveSink live_sink(cli);
  sink.report.set_param("scale", scale);
  sink.report.set_param("rtol", rtol);
  sink.report.set_param("repeat", repeat.count);
  if (!only.empty()) sink.report.set_param("matrix", only);

  std::printf("=== Fig 5: single-node time to solution, normalized to"
              " HYPRE_base (scale=%.4g, rtol=%.1e) ===\n", scale, rtol);
  std::printf("Machines (Table 1): %s %.0f GB/s | %s %.0f GB/s\n\n",
              hsw.name.c_str(), hsw.stream_bw_bytes_per_s / 1e9,
              gpu.name.c_str(), gpu.stream_bw_bytes_per_s / 1e9);
  print_row({"matrix", "base_setup", "base_solve", "opt_setup", "opt_solve",
             "amgx_setup", "amgx_solve", "opt_spdup", "model_spdup",
             "amgx_vs_opt", "it_b/it_o", "opcx"}, 12);

  double geo_opt = 0, geo_amgx = 0, geo_model = 0;
  int count = 0;
  for (const SuiteEntry& e : table2_suite()) {
    if (!only.empty() && e.name != only) continue;
    CSRMatrix A = generate_suite_matrix(e.name, scale);
    RunResult base =
        run(A, Variant::kBaseline, e.strength_threshold, rtol, hsw, repeat);
    RunResult opt =
        run(A, Variant::kOptimized, e.strength_threshold, rtol, hsw, repeat);

    const double base_total = base.setup_s + base.solve_s;
    auto [amgx_setup, amgx_solve] = amgx.project(opt.setup_s, opt.solve_s);
    const double opt_speedup = base_total / (opt.setup_s + opt.solve_s);
    const double amgx_vs_opt =
        (amgx_setup + amgx_solve) / (opt.setup_s + opt.solve_s);
    // Model-projected speedup on the Table 1 Haswell socket: the work
    // counters (bytes, flops, SPA branches) are thread-count independent,
    // so this captures the gains the single host core cannot show
    // (parallel assembly, bandwidth-bound kernels at 14 cores).
    WorkCounters wb = base.setup_wc, wo = opt.setup_wc;
    wb += base.solve_wc;
    wo += opt.solve_wc;
    const double model_speedup = hsw.seconds(wb) / hsw.seconds(wo);
    geo_opt += std::log(opt_speedup);
    geo_amgx += std::log(amgx_vs_opt);
    geo_model += std::log(model_speedup);
    ++count;

    print_row({e.name, fmt(base.setup_s / base_total, "%.3f"),
               fmt(base.solve_s / base_total, "%.3f"),
               fmt(opt.setup_s / base_total, "%.3f"),
               fmt(opt.solve_s / base_total, "%.3f"),
               fmt(amgx_setup / base_total, "%.3f"),
               fmt(amgx_solve / base_total, "%.3f"),
               fmt(opt_speedup, "%.2f"), fmt(model_speedup, "%.2f"),
               fmt(amgx_vs_opt, "%.2f"),
               (fmt_int(base.iterations) + "/" + fmt_int(opt.iterations)),
               fmt(opt.opcx, "%.2f")}, 12);

    // Per-kernel breakdown rows (the stacked-bar composition of Fig 5).
    auto breakdown = [&](const char* who, const RunResult& r) {
      std::printf("  %-10s", who);
      for (const char* phase : {"Strength+Coarsen", "Interp", "RAP",
                                "Setup_etc", "GS", "SpMV", "BLAS1",
                                "Solve_etc"}) {
        const double v = r.setup_pt.get(phase) + r.solve_pt.get(phase);
        std::printf(" %s=%.3f", phase, v / base_total);
      }
      std::printf("\n");
    };
    breakdown("base:", base);
    breakdown("opt:", opt);

    BenchReport::Run& rb = sink.report.add_run(e.name + std::string("/base"))
        .label("matrix", e.name)
        .label("variant", "baseline");
    add_time_metrics(rb, "setup", base.setup_samples);
    add_time_metrics(rb, "solve", base.solve_samples);
    rb.report(base.rep);
    BenchReport::Run& ro = sink.report.add_run(e.name + std::string("/opt"))
        .label("matrix", e.name)
        .label("variant", "optimized")
        .metric("speedup_measured", opt_speedup)
        .metric("speedup_modeled", model_speedup)
        .metric("amgx_vs_opt", amgx_vs_opt);
    add_time_metrics(ro, "setup", opt.setup_samples);
    add_time_metrics(ro, "solve", opt.solve_samples);
    ro.report(opt.rep);
  }
  if (count > 0) {
    std::printf("\nGeomean HYPRE_opt speedup over HYPRE_base: measured"
                " %.2fx on this host, model-projected %.2fx on the Table 1"
                " socket (paper: 2.0x)\n",
                std::exp(geo_opt / count), std::exp(geo_model / count));
    std::printf("Geomean modeled AmgX/HYPRE_opt time ratio:  %.2fx"
                " (paper: HYPRE_opt 1.3x faster)\n",
                std::exp(geo_amgx / count));
    sink.report.add_run("summary")
        .metric("matrices", double(count))
        .metric("geomean_speedup_measured", std::exp(geo_opt / count))
        .metric("geomean_speedup_modeled", std::exp(geo_model / count))
        .metric("geomean_amgx_vs_opt", std::exp(geo_amgx / count));
  }
  const int live_rc = live_sink.finish();
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  if (live_rc != 0) return live_rc;
  return trace_rc != 0 ? trace_rc : json_rc;
}
