// Unit tests for the parallel-support primitives: prefix sums, weighted
// partitioning, parallel sorts, hashing, RNG, and the CLI parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "support/cli.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/sort.hpp"

namespace hpamg {
namespace {

// ---------------------------------------------------------------- scan ----

TEST(Scan, EmptyRowptr) {
  std::vector<Int> v = {0};
  EXPECT_EQ(exclusive_scan(v), 0);
  EXPECT_EQ(v[0], 0);
}

TEST(Scan, SingleRow) {
  std::vector<Int> v = {0, 5};
  EXPECT_EQ(exclusive_scan(v), 5);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 5);
}

TEST(Scan, RowptrSemantics) {
  // Counts at v[i+1], v[0] = 0 -> CSR rowptr.
  std::vector<Int> v = {0, 3, 0, 2, 7};
  exclusive_scan(v);
  EXPECT_EQ(v, (std::vector<Int>{0, 3, 3, 5, 12}));
}

class ScanSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScanSweep, MatchesSerialReference) {
  const int n = GetParam();
  std::mt19937 rng(n);
  std::vector<Int> v(n + 1, 0);
  for (int i = 1; i <= n; ++i) v[i] = Int(rng() % 7);
  std::vector<Int> ref(v);
  for (int i = 1; i <= n; ++i) ref[i] += ref[i - 1];
  const Long total = exclusive_scan(v);
  EXPECT_EQ(v, ref);
  EXPECT_EQ(total, ref[n]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSweep,
                         ::testing::Values(1, 2, 3, 17, 100, 4097, 100000));

// ----------------------------------------------------------- partition ----

TEST(PartitionByWeight, CoversAllRowsInOrder) {
  std::vector<Int> rowptr = {0, 10, 10, 11, 50, 51, 52, 100};
  for (int parts : {1, 2, 3, 7, 16}) {
    std::vector<Int> b = partition_by_weight(rowptr, parts);
    ASSERT_EQ(Int(b.size()), parts + 1);
    EXPECT_EQ(b.front(), 0);
    EXPECT_EQ(b.back(), 7);
    for (int p = 0; p < parts; ++p) EXPECT_LE(b[p], b[p + 1]);
  }
}

TEST(PartitionByWeight, BalancesWeight) {
  // 1000 rows of weight 1 split 4 ways: each part within 2x of even share.
  std::vector<Int> rowptr(1001);
  std::iota(rowptr.begin(), rowptr.end(), 0);
  std::vector<Int> b = partition_by_weight(rowptr, 4);
  for (int p = 0; p < 4; ++p) {
    const Int w = rowptr[b[p + 1]] - rowptr[b[p]];
    EXPECT_NEAR(w, 250, 5);
  }
}

TEST(ChunkRange, PartitionsExactly) {
  for (Int n : {0, 1, 7, 100}) {
    for (int parts : {1, 3, 8}) {
      Int covered = 0;
      for (int p = 0; p < parts; ++p) {
        auto [lo, hi] = chunk_range(n, parts, p);
        EXPECT_LE(lo, hi);
        covered += hi - lo;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelReduce, SumAndMax) {
  std::vector<double> v(1000);
  for (int i = 0; i < 1000; ++i) v[i] = i * 0.5;
  EXPECT_DOUBLE_EQ(parallel_reduce_sum(0, 1000, [&](Int i) { return v[i]; }),
                   0.5 * 999 * 1000 / 2);
  EXPECT_DOUBLE_EQ(parallel_reduce_max(0, 1000, [&](Int i) { return v[i]; }),
                   499.5);
}

// ----------------------------------------------------------------- sort ----

class SortUniqueSweep : public ::testing::TestWithParam<int> {};

TEST_P(SortUniqueSweep, MatchesStdReference) {
  const int n = GetParam();
  std::mt19937_64 rng(n);
  std::vector<Long> keys(n);
  for (auto& k : keys) k = Long(rng() % (n / 2 + 1));
  std::vector<Long> ref(keys);
  std::sort(ref.begin(), ref.end());
  ref.erase(std::unique(ref.begin(), ref.end()), ref.end());
  EXPECT_EQ(parallel_sort_unique(std::move(keys)), ref);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortUniqueSweep,
                         ::testing::Values(0, 1, 2, 100, 5000, 100000));

TEST(CountingSort, GroupsAndIsStable) {
  const Int n = 1000, nkeys = 17;
  std::mt19937 rng(42);
  std::vector<Int> keys(n);
  for (auto& k : keys) k = Int(rng() % nkeys);
  std::vector<Int> order, bucket_ptr;
  parallel_counting_sort(n, nkeys, keys.data(), order, bucket_ptr);
  ASSERT_EQ(Int(bucket_ptr.size()), nkeys + 1);
  EXPECT_EQ(bucket_ptr[0], 0);
  EXPECT_EQ(bucket_ptr[nkeys], n);
  // Each bucket holds exactly the items with that key, in original order.
  for (Int k = 0; k < nkeys; ++k) {
    for (Int p = bucket_ptr[k]; p < bucket_ptr[k + 1]; ++p) {
      EXPECT_EQ(keys[order[p]], k);
      if (p > bucket_ptr[k]) EXPECT_LT(order[p - 1], order[p]);  // stable
    }
  }
}

TEST(CountingSort, EmptyInput) {
  std::vector<Int> order, bucket_ptr;
  parallel_counting_sort(0, 5, nullptr, order, bucket_ptr);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(bucket_ptr, (std::vector<Int>{0, 0, 0, 0, 0, 0}));
}

// ----------------------------------------------------------------- hash ----

TEST(HashSet, InsertContainsGrow) {
  HashSet<Int> s(2);
  std::set<Int> ref;
  std::mt19937 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const Int k = Int(rng() % 2000);
    EXPECT_EQ(s.insert(k), ref.insert(k).second);
  }
  EXPECT_EQ(s.size(), ref.size());
  for (Int k = 0; k < 2000; ++k) EXPECT_EQ(s.contains(k), ref.count(k) > 0);
  std::vector<Int> out;
  s.collect(out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, std::vector<Int>(ref.begin(), ref.end()));
}

TEST(HashSet, LongKeys) {
  HashSet<Long> s;
  EXPECT_TRUE(s.insert(Long(1) << 40));
  EXPECT_FALSE(s.insert(Long(1) << 40));
  EXPECT_TRUE(s.contains(Long(1) << 40));
  EXPECT_FALSE(s.contains(42));
}

TEST(HashMap, PutGetGrow) {
  HashMap<Long> m(2);
  for (Long k = 0; k < 3000; ++k) m.put(k * 977, Int(k));
  for (Long k = 0; k < 3000; ++k) EXPECT_EQ(m.get(k * 977), Int(k));
  EXPECT_EQ(m.get(123456789), -1);
  EXPECT_EQ(m.size(), 3000u);
}

TEST(HashMap, InsertOrGetKeepsFirst) {
  HashMap<Int> m;
  EXPECT_EQ(m.insert_or_get(5, 10), 10);
  EXPECT_EQ(m.insert_or_get(5, 99), 10);
  m.put(5, 7);
  EXPECT_EQ(m.get(5), 7);
}

TEST(HashSet, DuplicatesDoNotGrowTable) {
  // Re-inserting the same keys (the §4.2 renumbering workload) must not
  // trigger rehashes: capacity stays put once the keys are in.
  HashSet<Int> s(2);
  for (Int k = 0; k < 8; ++k) s.insert(k);
  const std::size_t cap = s.capacity();
  for (int round = 0; round < 100; ++round)
    for (Int k = 0; k < 8; ++k) EXPECT_FALSE(s.insert(k));
  EXPECT_EQ(s.capacity(), cap);
  EXPECT_EQ(s.size(), 8u);
}

TEST(HashMap, DuplicatesDoNotGrowTable) {
  HashMap<Long> m(2);
  for (Long k = 0; k < 8; ++k) m.put(k, Int(k));
  const std::size_t cap = m.capacity();
  for (int round = 0; round < 100; ++round) {
    for (Long k = 0; k < 8; ++k) {
      EXPECT_EQ(m.insert_or_get(k, 999), Int(k));
      m.put(k, Int(k + 1));
      EXPECT_EQ(m.get(k), Int(k + 1));
      m.put(k, Int(k));
    }
  }
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 8u);
}

TEST(HashSet, SentinelKeyRejected) {
  HashSet<Int> s;
  EXPECT_THROW(s.insert(Int(-1)), std::invalid_argument);
  HashSet<Long> sl;
  EXPECT_THROW(sl.insert(Long(-1)), std::invalid_argument);
}

TEST(HashMap, SentinelKeyRejected) {
  HashMap<Int> m;
  EXPECT_THROW(m.put(Int(-1), 3), std::invalid_argument);
  EXPECT_THROW(m.insert_or_get(Int(-1), 3), std::invalid_argument);
}

TEST(HashSet, InsertAtGrowthBoundaryLandsInNewTable) {
  // Every insert that triggers a rehash must re-probe: the key has to be
  // findable afterwards, and the count exact, for any growth point.
  HashSet<Int> s(2);
  for (Int k = 0; k < 10000; ++k) {
    ASSERT_TRUE(s.insert(k * 31 + 7));
    ASSERT_TRUE(s.contains(k * 31 + 7));
    ASSERT_EQ(s.size(), std::size_t(k + 1));
  }
  for (Int k = 0; k < 10000; ++k) EXPECT_TRUE(s.contains(k * 31 + 7));
}

TEST(HashMap, PutAtGrowthBoundaryKeepsValue) {
  HashMap<Int> m(2);
  for (Int k = 0; k < 10000; ++k) {
    m.put(k, k * 2);
    ASSERT_EQ(m.get(k), k * 2);
  }
  for (Int k = 0; k < 10000; ++k) EXPECT_EQ(m.get(k), k * 2);
  EXPECT_EQ(m.size(), 10000u);
}

// ------------------------------------------------------------------ rng ----

TEST(CounterRng, DeterministicPerSeedAndCounter) {
  CounterRng a(1), b(1), c(2);
  EXPECT_EQ(a.bits(42), b.bits(42));
  EXPECT_NE(a.bits(42), c.bits(42));
  EXPECT_NE(a.bits(42), a.bits(43));
}

TEST(CounterRng, UniformInRangeAndRoughlyFlat) {
  CounterRng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(CounterRng, NormalMoments) {
  CounterRng rng(9);
  double mean = 0, var = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += rng.normal(i);
  mean /= n;
  for (int i = 0; i < n; ++i) {
    const double d = rng.normal(i) - mean;
    var += d * d;
  }
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(SequentialRng, Deterministic) {
  SequentialRng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

// ------------------------------------------------------------------ cli ----

TEST(Cli, ParsesFormsAndDefaults) {
  // NB: a bare token right after a flag binds to the flag ("--verbose x"
  // means verbose=x), so positionals go first.
  const char* argv[] = {"prog", "input.mtx", "--nodes", "64", "--scheme=mp",
                        "--ratio", "1.5", "--verbose"};
  Cli cli(8, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("nodes", 0), 64);
  EXPECT_EQ(cli.get("scheme", ""), "mp");
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 1.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.mtx");
}

// --------------------------------------------------------------- common ----

TEST(Require, ThrowsOnViolation) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

}  // namespace
}  // namespace hpamg
