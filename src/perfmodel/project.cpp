#include "perfmodel/project.hpp"

namespace hpamg {

double projected_phase_seconds(double rank_cpu_seconds,
                               const simmpi::CommStats& rank_comm,
                               const NetworkModel& net) {
  return rank_cpu_seconds + net.seconds(rank_comm);
}

void project_report_times(SolveReport& rep, const MachineModel& m) {
  rep.modeled_setup_seconds = m.seconds(rep.setup_work);
  rep.modeled_solve_seconds = m.seconds(rep.solve_work);
}

}  // namespace hpamg
