// Traffic replay against the SolverService (src/service): a seeded
// synthetic client population drives the session layer — open-loop
// (Poisson arrivals at --rate) or closed-loop (--clients synchronous
// clients) — over a small set of distinct operators, optionally with
// injected faults and a deadline storm, and the bench reports the
// latency distribution (p50/p99), throughput, and every admission /
// retry / degradation / breaker decision the service made.
//
// The chaos contract this bench demonstrates end-to-end: the replay
// FINISHES (every future resolves — zero hangs), every failed request
// carries a specific Status, and the reject/retry/downgrade counts are
// visible both in the JSON report and, with --live, in metrics.prom via
// the service.* instruments.
//
// Usage: bench_service [--requests 40] [--workers 2] [--queue 16]
//                      [--pool 4] [--matrices 2] [--n 20]
//                      [--arrival open|closed] [--rate 400] [--clients 4]
//                      [--deadline-ms 0] [--rtol 1e-6] [--seed 42]
//                      [--faults] [--deadline-storm] [--repeat N]
//                      [--json out.json] [--trace out.json] [--live dir]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "gen/stencil.hpp"
#include "service/service.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

using namespace hpamg;
using namespace hpamg::bench;

namespace {

struct ReplayConfig {
  int requests = 40;
  int workers = 2;
  std::size_t queue = 16;
  std::size_t pool = 4;
  int matrices = 2;
  Int n = 20;
  std::string arrival = "open";
  double rate = 400.0;       ///< open-loop arrivals per second
  int clients = 4;           ///< closed-loop concurrency
  double deadline_ms = 0.0;  ///< 0 = unbounded
  double rtol = 1e-6;
  std::uint64_t seed = 42;
  bool faults = false;
  bool storm = false;
};

struct ReplayOutcome {
  std::vector<double> latencies_s;  ///< per resolved request
  std::map<Status, int> by_status;
  service::ServiceStats stats;
  double wall_s = 0.0;
  int unresolved = 0;  ///< futures that failed to resolve (must be 0)
};

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * double(xs.size() - 1);
  const std::size_t lo = std::size_t(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - double(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Seeded chaos for --faults: a couple of setup allocation failures (the
/// retry path), a mid-run NaN-poison window (transient solve failures,
/// possibly a breaker trip), and two admission-site rejections. All
/// schedules are counter-deterministic, so a failing replay re-runs
/// identically for the same seed.
void arm_chaos(std::uint64_t seed) {
  fault::Schedule setup_fail;
  setup_fail.probability = 0.5;
  setup_fail.count = 2;
  setup_fail.seed = seed ^ 0xa11c;
  fault::arm("service.setup.alloc", setup_fail);

  fault::Schedule poison;
  poison.after_n = 50;
  poison.count = 40;
  poison.seed = seed ^ 0x9019;
  fault::arm("amg.solve.poison", poison);

  fault::Schedule admit_reject;
  admit_reject.after_n = 3;
  admit_reject.count = 2;
  admit_reject.seed = seed ^ 0xad31;
  fault::arm("service.admit", admit_reject);
}

service::RequestOptions request_opts(const ReplayConfig& cfg,
                                     const CounterRng& rng, int i) {
  service::RequestOptions ro;
  ro.rtol = cfg.rtol;
  ro.max_iterations = 200;
  if (cfg.deadline_ms > 0.0) {
    const double jitter = 0.5 + rng.uniform(std::uint64_t(1000 + i));
    ro.deadline = Deadline::after(cfg.deadline_ms * 1e-3 * jitter);
  }
  return ro;
}

ReplayOutcome run_replay(const ReplayConfig& cfg,
                         const std::vector<CSRMatrix>& mats) {
  fault::reset();
  if (cfg.faults) arm_chaos(cfg.seed);

  service::ServiceOptions so;
  so.workers = cfg.workers;
  so.queue_capacity = cfg.queue;
  so.max_hierarchies = cfg.pool;
  so.amg = table3_options(Variant::kOptimized);
  so.amg.max_levels = 5;
  so.backoff_initial_s = 0.001;
  so.backoff_max_s = 0.01;
  so.breaker_cooldown_s = 0.05;
  service::SolverService svc(so);

  const CounterRng rng(cfg.seed);
  std::vector<std::future<service::RequestReport>> futs;
  Timer wall;

  auto submit_one = [&](int i, const service::RequestOptions& ro) {
    const CSRMatrix& A = mats[std::size_t(i) % mats.size()];
    if (i % 5 == 4) {
      // Every fifth request is a 2-column batch through solve_multi.
      MultiVector B(A.nrows, 2);
      for (Int r = 0; r < A.nrows; ++r)
        for (Int j = 0; j < 2; ++j)
          B.at(r, j) = 1.0 + 0.25 * double(j) +
                       0.5 * std::sin(0.01 * double(r));
      return svc.submit_multi(A, std::move(B), ro);
    }
    Vector b(std::size_t(A.nrows));
    for (Int r = 0; r < A.nrows; ++r)
      b[std::size_t(r)] = 1.0 + 0.5 * std::sin(0.02 * double(r) * (i % 3 + 1));
    return svc.submit(A, std::move(b), ro);
  };

  auto storm_burst = [&]() {
    // Deadline storm: a back-to-back burst of requests whose budgets are
    // far below one solve — they must resolve (shed, expired in queue, or
    // expired mid-solve), never hang, never strand the queue.
    for (int s = 0; s < 8; ++s) {
      service::RequestOptions ro;
      ro.rtol = cfg.rtol;
      ro.deadline = Deadline::after(0.002);
      futs.push_back(submit_one(s, ro));
    }
  };

  if (cfg.arrival == "closed") {
    // Closed loop: `clients` synchronous clients, each waiting for its
    // previous request before issuing the next.
    std::mutex futs_mu;
    std::vector<std::thread> clients;
    const int per_client =
        (cfg.requests + cfg.clients - 1) / std::max(1, cfg.clients);
    for (int c = 0; c < cfg.clients; ++c) {
      clients.emplace_back([&, c] {
        for (int k = 0; k < per_client; ++k) {
          const int i = c * per_client + k;
          if (i >= cfg.requests) break;
          auto fut = submit_one(i, request_opts(cfg, rng, i));
          fut.wait();
          std::lock_guard<std::mutex> lk(futs_mu);
          futs.push_back(std::move(fut));
        }
      });
    }
    for (auto& t : clients) t.join();
    if (cfg.storm) storm_burst();
  } else {
    // Open loop: exponential inter-arrival times at --rate, oblivious to
    // completions (the regime where admission control earns its keep).
    for (int i = 0; i < cfg.requests; ++i) {
      if (cfg.storm && i == cfg.requests / 2) storm_burst();
      futs.push_back(submit_one(i, request_opts(cfg, rng, i)));
      const double u = std::max(1e-12, 1.0 - rng.uniform(std::uint64_t(i)));
      const double gap_s = -std::log(u) / std::max(1.0, cfg.rate);
      std::this_thread::sleep_for(std::chrono::duration<double>(gap_s));
    }
  }

  ReplayOutcome out;
  for (auto& f : futs) {
    if (!f.valid()) {
      ++out.unresolved;
      continue;
    }
    const service::RequestReport r = f.get();  // contract: always resolves
    out.latencies_s.push_back(r.total_seconds);
    ++out.by_status[r.status];
  }
  out.wall_s = wall.seconds();
  svc.stop(true);
  out.stats = svc.stats();
  fault::reset();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  ReplayConfig cfg;
  cfg.requests = int(cli.get_int("requests", 40));
  cfg.workers = int(cli.get_int("workers", 2));
  cfg.queue = std::size_t(cli.get_int("queue", 16));
  cfg.pool = std::size_t(cli.get_int("pool", 4));
  cfg.matrices = int(cli.get_int("matrices", 2));
  cfg.n = Int(cli.get_int("n", 20));
  cfg.arrival = cli.get("arrival", "open");
  cfg.rate = cli.get_double("rate", 400.0);
  cfg.clients = int(cli.get_int("clients", 4));
  cfg.deadline_ms = cli.get_double("deadline-ms", 0.0);
  cfg.rtol = cli.get_double("rtol", 1e-6);
  cfg.seed = std::uint64_t(cli.get_int("seed", 42));
  cfg.faults = cli.get("faults", "") != "";
  cfg.storm = cli.get("deadline-storm", "") != "";
  if (cfg.arrival != "open" && cfg.arrival != "closed") {
    std::fprintf(stderr, "--arrival must be open or closed\n");
    return 2;
  }
  const Repeat repeat(cli);
  const RunEnv env("service");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  LiveSink live_sink(cli);
  sink.report.set_param("requests", long(cfg.requests));
  sink.report.set_param("workers", long(cfg.workers));
  sink.report.set_param("queue", long(cfg.queue));
  sink.report.set_param("arrival", cfg.arrival);
  sink.report.set_param("n", long(cfg.n));
  sink.report.set_param("matrices", long(cfg.matrices));
  sink.report.set_param("deadline_ms", cfg.deadline_ms);
  sink.report.set_param("seed", long(cfg.seed));
  sink.report.set_param("faults", cfg.faults ? 1L : 0L);
  sink.report.set_param("deadline_storm", cfg.storm ? 1L : 0L);
  sink.report.set_param("repeat", repeat.count);

  std::vector<CSRMatrix> mats;
  for (int k = 0; k < std::max(1, cfg.matrices); ++k)
    mats.push_back(lap2d_5pt(cfg.n + 4 * Int(k), cfg.n + 4 * Int(k)));

  std::printf("=== Service traffic replay: %d requests, %d workers, "
              "queue %zu, %s-loop%s%s ===\n",
              cfg.requests, cfg.workers, cfg.queue, cfg.arrival.c_str(),
              cfg.faults ? ", chaos" : "",
              cfg.storm ? ", deadline storm" : "");

  ReplayOutcome out;
  if (repeat.warmup()) (void)run_replay(cfg, mats);
  std::vector<double> p50s, p99s, walls;
  for (int r = 0; r < repeat.count; ++r) {
    begin_timed_repeat();
    out = run_replay(cfg, mats);
    p50s.push_back(percentile(out.latencies_s, 0.50));
    p99s.push_back(percentile(out.latencies_s, 0.99));
    walls.push_back(out.wall_s);
  }

  if (out.unresolved > 0) {
    std::fprintf(stderr, "FAIL: %d futures never resolved\n", out.unresolved);
    return 1;
  }
  int unknown = 0;
  std::printf("\n%-22s %s\n", "status", "requests");
  for (const auto& [st, count] : out.by_status) {
    std::printf("%-22s %d\n", status_name(st), count);
    if (st == Status::kUnknown) unknown = count;
  }
  const auto& st = out.stats;
  std::printf("\nlatency p50 %.4g s, p99 %.4g s; %.1f solves/s over %.3g s\n",
              percentile(out.latencies_s, 0.50),
              percentile(out.latencies_s, 0.99),
              out.wall_s > 0.0 ? double(st.completed_ok) / out.wall_s : 0.0,
              out.wall_s);
  std::printf("admission: %llu submitted, %llu admitted, %llu rejected "
              "(%llu queue-full, %llu shed), %llu degraded\n",
              (unsigned long long)st.submitted,
              (unsigned long long)st.admitted,
              (unsigned long long)st.rejected,
              (unsigned long long)st.queue_full,
              (unsigned long long)st.shed,
              (unsigned long long)st.degraded);
  std::printf("resilience: %llu retries, %llu breaker trips, %llu fast-fail "
              "circuit-open, %llu deadline-exceeded\n",
              (unsigned long long)st.retries,
              (unsigned long long)st.breaker_trips,
              (unsigned long long)st.circuit_open,
              (unsigned long long)st.deadline_exceeded);
  std::printf("pool: %llu setups, %llu cache hits, %llu evictions\n",
              (unsigned long long)st.setup_builds,
              (unsigned long long)st.cache_hits,
              (unsigned long long)st.evictions);
  if (unknown > 0) {
    // Every failure must be classified; kUnknown in a replay means an
    // unmapped exception escaped somewhere.
    std::fprintf(stderr, "FAIL: %d requests resolved to kUnknown\n", unknown);
    return 1;
  }

  // Fixed metric set (benchdiff treats a missing metric as a verdict, so
  // every key is always emitted; counts are info-class, latencies sit
  // under the timing noise floor unless they genuinely regress past it).
  BenchReport::Run& run = sink.report.add_run("replay");
  run.label("arrival", cfg.arrival);
  add_time_metrics(run, "latency_p50", p50s);
  add_time_metrics(run, "latency_p99", p99s);
  add_time_metrics(run, "wall", walls);
  run.metric("requests", double(st.submitted));
  run.metric("completed_ok", double(st.completed_ok));
  run.metric("failed", double(st.failed));
  run.metric("rejected", double(st.rejected));
  run.metric("queue_full", double(st.queue_full));
  run.metric("shed", double(st.shed));
  run.metric("retries", double(st.retries));
  run.metric("degraded", double(st.degraded));
  run.metric("deadline_exceeded", double(st.deadline_exceeded));
  run.metric("circuit_open", double(st.circuit_open));
  run.metric("breaker_trips", double(st.breaker_trips));
  run.metric("cache_hits", double(st.cache_hits));
  run.metric("setup_builds", double(st.setup_builds));
  run.metric("evictions", double(st.evictions));
  run.metric("solves_per_second",
             out.wall_s > 0.0 ? double(st.completed_ok) / out.wall_s : 0.0);

  const int trace_rc = trace_sink.finish();
  const int live_rc = live_sink.finish();
  const int json_rc = sink.finish();
  return trace_rc != 0 ? trace_rc : live_rc != 0 ? live_rc : json_rc;
}
