// Open-addressing hash containers for integer keys.
//
// The paper's column-index renumbering (§4.2, Fig 4) builds thread-private
// hash tables of new off-rank column indices, then a reverse-mapping hash
// table partitioned over threads. These are small, cache-friendly linear
// probing tables with power-of-two capacity — no heap churn per insert.
#pragma once

#include <vector>

#include "support/common.hpp"

namespace hpamg {

/// Mixes bits of a 64-bit key (splitmix64 finalizer).
inline std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent streaming 64-bit hasher: chains hash_mix over a word
/// stream, so `update(a); update(b)` and `update(b); update(a)` digest
/// differently. This is the fingerprinting primitive behind
/// matrix_fingerprint (matrix/csr.hpp): callers are responsible for
/// feeding a CANONICAL word stream (e.g. per-row entries in sorted column
/// order), which is what makes two equal objects built in different
/// construction orders hash identically.
class FingerprintHasher {
 public:
  void update(std::uint64_t x) {
    h_ = hash_mix(h_ ^ hash_mix(x));
    ++count_;
  }

  /// Doubles are hashed by bit pattern after canonicalization: -0.0 is
  /// folded into +0.0 (they compare equal, so equal matrices must agree)
  /// and every NaN payload collapses to one canonical NaN.
  void update(double v) {
    std::uint64_t bits;
    if (v == 0.0) {
      bits = 0;  // +0.0 and -0.0
    } else if (v != v) {
      bits = 0x7ff8000000000000ull;  // canonical quiet NaN
    } else {
      static_assert(sizeof(double) == sizeof(std::uint64_t));
      __builtin_memcpy(&bits, &v, sizeof(bits));
    }
    update(bits);
  }

  /// Folds the stream length into the digest so a trailing zero word is
  /// not absorbed ({1} vs {1, 0} digest differently).
  std::uint64_t digest() const { return hash_mix(h_ ^ count_); }

 private:
  std::uint64_t h_ = 0x6a09e667f3bcc908ull;  // sqrt(2) fraction bits
  std::uint64_t count_ = 0;
};

/// Linear-probing hash set of non-negative integer keys.
template <typename K>
class HashSet {
 public:
  explicit HashSet(std::size_t expected = 16) { rehash_for(expected); }

  /// Inserts key; returns true if newly inserted. Probes before growing:
  /// duplicate-heavy streams (the §4.2 renumbering workload re-inserts
  /// every repeated off-rank column) must not trigger rehashes, and a
  /// rehash invalidates the probed slot, so the table is re-probed after
  /// growing.
  bool insert(K key) {
    require(key != kEmpty, "HashSet: key collides with the empty sentinel");
    std::size_t i = probe(key);
    if (slots_[i] == key) return false;
    if (2 * (size_ + 1) > slots_.size()) {
      rehash_for(slots_.size());
      i = probe(key);
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool contains(K key) const { return slots_[probe(key)] == key; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Copies all keys out (unordered).
  void collect(std::vector<K>& out) const {
    for (K k : slots_)
      if (k != kEmpty) out.push_back(k);
  }

 private:
  static constexpr K kEmpty = K(-1);

  std::size_t probe(K key) const {
    std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_mix(std::uint64_t(key)) & mask;
    while (slots_[i] != kEmpty && slots_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap *= 2;
    std::vector<K> old = std::move(slots_);
    slots_.assign(cap, kEmpty);
    for (K k : old)
      if (k != kEmpty) slots_[probe(k)] = k;  // size_ unchanged
  }

  std::vector<K> slots_;
  std::size_t size_ = 0;
};

/// Linear-probing hash map from non-negative integer keys to Int values.
template <typename K>
class HashMap {
 public:
  explicit HashMap(std::size_t expected = 16) { rehash_for(expected); }

  /// Inserts (key, value) if absent; returns the stored value either way.
  /// Probe-first / grow-on-true-insert / re-probe-after-rehash, as in
  /// HashSet::insert.
  Int insert_or_get(K key, Int value) {
    require(key != kEmpty, "HashMap: key collides with the empty sentinel");
    std::size_t i = probe(key);
    if (keys_[i] == key) return vals_[i];
    if (2 * (size_ + 1) > keys_.size()) {
      rehash_for(keys_.size());
      i = probe(key);
    }
    keys_[i] = key;
    vals_[i] = value;
    ++size_;
    return value;
  }

  void put(K key, Int value) {
    require(key != kEmpty, "HashMap: key collides with the empty sentinel");
    std::size_t i = probe(key);
    if (keys_[i] != key) {
      if (2 * (size_ + 1) > keys_.size()) {
        rehash_for(keys_.size());
        i = probe(key);
      }
      keys_[i] = key;
      ++size_;
    }
    vals_[i] = value;
  }

  /// Returns the value for key, or fallback if absent.
  Int get(K key, Int fallback = -1) const {
    std::size_t i = probe(key);
    return keys_[i] == key ? vals_[i] : fallback;
  }

  bool contains(K key) const { return keys_[probe(key)] == key; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return keys_.size(); }

 private:
  static constexpr K kEmpty = K(-1);

  std::size_t probe(K key) const {
    std::size_t mask = keys_.size() - 1;
    std::size_t i = hash_mix(std::uint64_t(key)) & mask;
    while (keys_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void rehash_for(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < 2 * expected) cap *= 2;
    std::vector<K> old_k = std::move(keys_);
    std::vector<Int> old_v = std::move(vals_);
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, 0);
    for (std::size_t i = 0; i < old_k.size(); ++i) {
      if (old_k[i] == kEmpty) continue;
      const std::size_t j = probe(old_k[i]);  // size_ unchanged
      keys_[j] = old_k[i];
      vals_[j] = old_v[i];
    }
  }

  std::vector<K> keys_;
  std::vector<Int> vals_;
  std::size_t size_ = 0;
};

}  // namespace hpamg
