#include <cmath>

#include "amg/spmv.hpp"
#include "krylov/krylov.hpp"
#include "support/live.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Masked p-update: p_j = z_j + beta_j p_j for live columns, p_j untouched
/// for frozen ones (a frozen column's direction must not change, or its
/// iterate would drift if it were ever thawed).
void update_directions(const MultiVector& Z, const std::vector<double>& beta,
                       const std::vector<char>& live, MultiVector& P) {
  const Int m = P.m;
  const double* HPAMG_RESTRICT zp = Z.data.data();
  const double* HPAMG_RESTRICT bp = beta.data();
  const char* HPAMG_RESTRICT lp = live.data();
  double* HPAMG_RESTRICT pp = P.data.data();
  parallel_for(0, P.n, [&](Int i) {
    const std::size_t off = std::size_t(i) * m;
    for (Int j = 0; j < m; ++j)
      if (lp[j]) pp[off + j] = zp[off + j] + bp[j] * pp[off + j];
  });
}

}  // namespace

BlockKrylovResult block_pcg(const CSRMatrix& A, const MultiVector& B,
                            MultiVector& X, const KrylovOptions& opt,
                            const MultiPreconditioner& precond) {
  TRACE_SPAN("krylov.block_pcg", "phase", "rhs", std::int64_t(B.m));
  live::ActivityScope live_scope;
  const Int n = A.nrows;
  const Int m = B.m;
  require(B.n == n && X.n == n && X.m == m, "block_pcg: shape mismatch");
  require(m > 0, "block_pcg: no right-hand sides");
  BlockKrylovResult res;
  res.final_relres.assign(std::size_t(m), 0.0);
  res.col_iterations.assign(std::size_t(m), -1);

  MultiVector R(n, m), Z(n, m), P(n, m), AP(n, m);
  spmv_residual_multi(A, X, B, R);
  std::vector<double> normb = norm2sq_columns(B);
  for (double& nb : normb) nb = nb > 0.0 ? std::sqrt(nb) : 1.0;

  // live = still iterating; a column leaves the live set by converging or
  // by exact breakdown (kStagnated if it never converged).
  std::vector<char> live(std::size_t(m), 1);
  std::vector<char> stagnated(std::size_t(m), 0);
  std::vector<double> rz(std::size_t(m), 0.0), alpha(std::size_t(m), 0.0),
      beta(std::size_t(m), 0.0);

  std::vector<double> rnorm = norm2sq_columns(R);
  Int num_live = m;
  for (Int j = 0; j < m; ++j) {
    const double rr = std::sqrt(rnorm[std::size_t(j)]) / normb[std::size_t(j)];
    res.final_relres[std::size_t(j)] = rr;
    if (!std::isfinite(rr)) {
      res.status = Status::kNonFinite;
      res.nonfinite_iteration = 0;
      return res;
    }
    if (rr < opt.rtol) {
      live[std::size_t(j)] = 0;
      res.col_iterations[std::size_t(j)] = 0;
      --num_live;
    }
  }
  if (num_live == 0) {
    res.converged = true;
    res.status = Status::kOk;
    return res;
  }

  if (precond)
    precond(R, Z);
  else
    copy(R, Z);
  copy(Z, P);
  rz = dot_columns(R, Z);

  bool deadline_hit = false;
  for (Int it = 1; it <= opt.max_iterations && num_live > 0; ++it) {
    if (opt.deadline.expired()) {
      deadline_hit = true;
      break;
    }
    spmv_multi(A, P, AP);
    const std::vector<double> pAp = dot_columns(P, AP);
    for (Int j = 0; j < m; ++j) {
      if (!live[std::size_t(j)]) {
        alpha[std::size_t(j)] = 0.0;  // frozen: x_j, r_j must not move
        continue;
      }
      const double d = pAp[std::size_t(j)];
      if (!std::isfinite(d)) {
        res.status = Status::kNonFinite;
        res.nonfinite_iteration = it;
        return res;
      }
      if (d == 0.0) {  // exact breakdown: p_j is A-null
        live[std::size_t(j)] = 0;
        stagnated[std::size_t(j)] = 1;
        --num_live;
        alpha[std::size_t(j)] = 0.0;
        continue;
      }
      alpha[std::size_t(j)] = rz[std::size_t(j)] / d;
    }
    axpy_columns(alpha, P, X);
    for (double& a : alpha) a = -a;
    axpy_columns(alpha, AP, R);

    rnorm = norm2sq_columns(R);
    res.iterations = it;
    for (Int j = 0; j < m; ++j) {
      if (!live[std::size_t(j)]) continue;
      const double rr =
          std::sqrt(rnorm[std::size_t(j)]) / normb[std::size_t(j)];
      res.final_relres[std::size_t(j)] = rr;
      if (!std::isfinite(rr)) {
        res.status = Status::kNonFinite;
        res.nonfinite_iteration = it;
        return res;
      }
      if (rr < opt.rtol) {
        live[std::size_t(j)] = 0;
        res.col_iterations[std::size_t(j)] = it;
        --num_live;
      }
    }
    if (live::enabled()) {
      // Heartbeat carries the worst column's residual — the one that
      // decides when this block solve finishes.
      double worst = 0.0;
      for (double rr : res.final_relres)
        if (rr > worst) worst = rr;
      live::beat_iteration(it, worst);
    }
    if (num_live == 0) break;

    if (precond)
      precond(R, Z);
    else
      copy(R, Z);
    const std::vector<double> rz_new = dot_columns(R, Z);
    for (Int j = 0; j < m; ++j) {
      beta[std::size_t(j)] = live[std::size_t(j)]
                                 ? rz_new[std::size_t(j)] / rz[std::size_t(j)]
                                 : 0.0;
      rz[std::size_t(j)] = rz_new[std::size_t(j)];
    }
    update_directions(Z, beta, live, P);
  }

  bool all_converged = true;
  bool any_live = false;
  for (Int j = 0; j < m; ++j) {
    if (res.col_iterations[std::size_t(j)] < 0) all_converged = false;
    if (live[std::size_t(j)]) any_live = true;
  }
  res.converged = all_converged;
  if (all_converged)
    res.status = Status::kOk;
  else if (deadline_hit)
    res.status = Status::kDeadlineExceeded;  // partial: frozen iterates kept
  else if (!any_live)
    res.status = Status::kStagnated;  // every straggler broke down
  else
    res.status = Status::kMaxIterations;
  return res;
}

}  // namespace hpamg
