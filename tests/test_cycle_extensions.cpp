// Tests for the solver extensions: W-cycles, explicit hybrid-GS partition
// counts, the fused lexicographic GS + SpMV kernel, and failure-injection /
// degenerate-input behaviour of the hierarchy builder.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/solver.hpp"
#include "amg/spmv.hpp"
#include "gen/stencil.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

// ----------------------------------------------------------------- wcycle --

TEST(WCycle, ConvergesAndNeedsNoMoreIterationsThanV) {
  CSRMatrix A = lap2d_5pt(40, 40, 8.0);  // anisotropic: V-cycle struggles more
  AMGOptions v_opts, w_opts;
  w_opts.cycle_gamma = 2;
  AMGSolver v_solver(A, v_opts), w_solver(A, w_opts);
  Vector b(A.nrows, 1.0), xv(A.nrows, 0.0), xw(A.nrows, 0.0);
  SolveResult rv = v_solver.solve(b, xv, 1e-8, 200);
  SolveResult rw = w_solver.solve(b, xw, 1e-8, 200);
  ASSERT_TRUE(rv.converged);
  ASSERT_TRUE(rw.converged);
  EXPECT_LE(rw.iterations, rv.iterations);
}

TEST(WCycle, BaselineVariantToo) {
  CSRMatrix A = lap2d_5pt(25, 25);
  AMGOptions o;
  o.variant = Variant::kBaseline;
  o.cycle_gamma = 2;
  AMGSolver amg(A, o);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  EXPECT_TRUE(amg.solve(b, x, 1e-7, 100).converged);
}

TEST(WCycle, GammaThreeStillConverges) {
  CSRMatrix A = lap3d_7pt(10, 10, 10);
  AMGOptions o;
  o.cycle_gamma = 3;
  AMGSolver amg(A, o);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  EXPECT_TRUE(amg.solve(b, x, 1e-7, 100).converged);
}

// ------------------------------------------------------------ partitions ---

TEST(GsPartitions, MorePartitionsWeakenConvergenceMonotonically) {
  // Hybrid GS degrades toward Jacobi as partitions shrink toward single
  // rows — the effect behind the paper's AmgX iteration-count comparison.
  CSRMatrix A = lap2d_5pt(40, 40);
  Vector b(A.nrows, 1.0);
  Int iters_1 = 0, iters_14 = 0, iters_200 = 0;
  for (auto [parts, out] : {std::pair<int, Int*>{1, &iters_1},
                            {14, &iters_14},
                            {200, &iters_200}}) {
    AMGOptions o;
    o.gs_partitions = parts;
    AMGSolver amg(A, o);
    Vector x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-7, 300);
    ASSERT_TRUE(r.converged) << parts;
    *out = r.iterations;
  }
  EXPECT_LE(iters_1, iters_14);
  EXPECT_LE(iters_14, iters_200);
}

TEST(GsPartitions, SweepEquivalenceAcrossPartitionings) {
  // Any partition count gives a valid hybrid sweep; with 1 partition it is
  // exactly sequential GS.
  CSRMatrix A = test::random_spd(100, 4, 3);
  A.sort_rows();
  HybridGSOptimized gs1(A, 1);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows), ref(A.nrows, 0.0);
  gs1.sweep(b, x, t, 0, A.nrows, true);
  for (Int i = 0; i < A.nrows; ++i) {
    double acc = b[i];
    double diag = 1.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j == i)
        diag = A.values[k];
      else
        acc -= A.values[k] * ref[j];
    }
    ref[i] = acc / diag;
  }
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(x[i], ref[i], 1e-12);
}

// -------------------------------------------------------------- fused gs ---

TEST(FusedLexGs, MatchesSweepPlusResidual) {
  CSRMatrix A = test::random_spd(150, 4, 7);  // symmetric: fusion valid
  A.sort_rows();
  LexGS lex(A);
  Vector b(A.nrows, 1.0);
  Vector x1(A.nrows, 0.0), x2(A.nrows, 0.0), r1(A.nrows), r2(A.nrows);
  spmv_residual(A, x2, b, r2);
  for (int s = 0; s < 4; ++s) {
    lex.sweep(A, b, x1);
    spmv_residual(A, x1, b, r1);
    lex.sweep_fused_residual(A, x2, r2);
    for (Int i = 0; i < A.nrows; ++i) {
      ASSERT_NEAR(x1[i], x2[i], 1e-11);
      ASSERT_NEAR(r1[i], r2[i], 1e-10);
    }
  }
}

TEST(FusedLexGs, MaintainsExactResidualInvariant) {
  CSRMatrix A = lap2d_5pt(20, 20);
  LexGS lex(A);
  Vector b(A.nrows, 2.0), x(A.nrows, 0.0), r(A.nrows);
  spmv_residual(A, x, b, r);
  for (int s = 0; s < 10; ++s) lex.sweep_fused_residual(A, x, r);
  Vector r_true(A.nrows);
  spmv_residual(A, x, b, r_true);
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(r[i], r_true[i], 1e-9);
}

// ------------------------------------------------------ failure injection --

TEST(Degenerate, OneByOneMatrix) {
  CSRMatrix A = CSRMatrix::from_triplets(1, 1, {{0, 0, 2.0}});
  AMGSolver amg(A, {});
  Vector b = {4.0}, x = {0.0};
  SolveResult r = amg.solve(b, x, 1e-12, 10);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
}

TEST(Degenerate, DiagonalMatrixSolvesDirectly) {
  const Int n = 500;  // above coarse_size: exercises "cannot coarsen" exit
  std::vector<Triplet> t;
  for (Int i = 0; i < n; ++i) t.push_back({i, i, double(i % 7 + 1)});
  CSRMatrix A = CSRMatrix::from_triplets(n, n, std::move(t));
  AMGSolver amg(A, {});
  Vector b(n, 1.0), x(n, 0.0);
  SolveResult r = amg.solve(b, x, 1e-10, 100);
  EXPECT_TRUE(r.converged);
  for (Int i = 0; i < n; ++i) ASSERT_NEAR(x[i] * double(i % 7 + 1), 1.0, 1e-8);
}

TEST(Degenerate, DisconnectedBlocksSolve) {
  // Two independent grids in one matrix.
  CSRMatrix B = lap2d_5pt(12, 12);
  std::vector<Triplet> t;
  for (Int i = 0; i < B.nrows; ++i)
    for (Int k = B.rowptr[i]; k < B.rowptr[i + 1]; ++k) {
      t.push_back({i, B.colidx[k], B.values[k]});
      t.push_back({i + B.nrows, B.colidx[k] + B.nrows, B.values[k]});
    }
  CSRMatrix A = CSRMatrix::from_triplets(2 * B.nrows, 2 * B.nrows,
                                         std::move(t));
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  EXPECT_TRUE(amg.solve(b, x, 1e-7, 100).converged);
}

TEST(Degenerate, NonSquareRejected) {
  CSRMatrix A(4, 5);
  EXPECT_THROW(build_hierarchy(A, {}), std::invalid_argument);
}

TEST(Degenerate, WrongVectorSizesRejected) {
  CSRMatrix A = lap2d_5pt(8, 8);
  AMGSolver amg(A, {});
  Vector b(10, 1.0), x(A.nrows, 0.0);
  EXPECT_THROW(amg.solve(b, x), std::invalid_argument);
}

TEST(Degenerate, MassMatrixLikeAllWeakRows) {
  // Strongly diagonally dominant rows with large row sums: max_row_sum
  // strips all strong connections; everything becomes F and the hierarchy
  // collapses to smoothing + the "cannot coarsen" exit. Must still solve.
  const Int n = 300;
  std::vector<Triplet> t;
  for (Int i = 0; i < n; ++i) {
    t.push_back({i, i, 10.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -0.1});
      t.push_back({i + 1, i, -0.1});
    }
  }
  CSRMatrix A = CSRMatrix::from_triplets(n, n, std::move(t));
  AMGSolver amg(A, {});
  EXPECT_EQ(amg.hierarchy().num_levels(), 1);  // nothing coarsenable
  Vector b(n, 1.0), x(n, 0.0);
  EXPECT_TRUE(amg.solve(b, x, 1e-10, 200).converged);
}

TEST(Degenerate, HugeCoarseLevelFallsBackToSmoothing) {
  // max_levels = 2 leaves a coarse level too large for dense LU; the
  // coarse solve must fall back to smoothing sweeps and still converge
  // (more V-cycles).
  CSRMatrix A = lap2d_5pt(60, 60);
  AMGOptions o;
  o.max_levels = 2;
  AMGSolver amg(A, o);
  EXPECT_EQ(amg.hierarchy().coarse_lu.size(), 0);  // no LU built
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, 1e-7, 300);
  EXPECT_TRUE(r.converged);
}

TEST(Degenerate, NegativeDefiniteOperator) {
  // -Laplacian: negative diagonal flips the strength sign convention;
  // the solver must still work.
  CSRMatrix A = lap2d_5pt(20, 20);
  for (auto& v : A.values) v = -v;
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, 1e-7, 100);
  EXPECT_TRUE(r.converged);
}

TEST(Degenerate, RepeatedSolvesReuseHierarchy) {
  CSRMatrix A = lap2d_5pt(20, 20);
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0);
  Int first = 0;
  for (int s = 0; s < 3; ++s) {
    Vector x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-7, 100);
    ASSERT_TRUE(r.converged);
    if (s == 0)
      first = r.iterations;
    else
      EXPECT_EQ(r.iterations, first);  // deterministic reuse
  }
}

}  // namespace
}  // namespace hpamg
