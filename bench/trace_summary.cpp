// Trace analysis CLI: ingests a Chrome trace-event JSON produced by
// `--trace` (see support/trace.hpp) and prints
//   - per-kernel self/total time aggregated over all tracks,
//   - per-rank compute vs blocked wall-clock (the Fig 7-style breakdown),
//   - a power-of-two histogram of message sizes from the flow events.
//
// `--check` additionally validates the file: parseable, golden top-level
// fields present, per-track timestamps monotonic, span durations
// non-negative, and flow-arrow consistency. Unmatched flow arrows (a send
// whose recv event was lost, or vice versa) are counted and reported; they
// fail the check only when the trace reports zero dropped events — on a
// wrapped ring (otherData.dropped_by_track) a missing half-arrow is
// expected data loss, not a tracer bug. Duplicate flow ids always fail.
// Exit status is nonzero on any failed check, so CI can gate on it.
//
// Usage: trace_summary [--check] <trace.json>
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/report.hpp"

namespace {

using hpamg::JsonValue;

struct SpanRec {
  std::string name;
  std::string cat;
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

struct KernelAgg {
  double total_us = 0.0;  ///< sum of span durations (children included)
  double self_us = 0.0;   ///< durations minus time in nested spans
  long count = 0;
};

struct RankAgg {
  double compute_us = 0.0;  ///< self time of non-"blocked" spans
  double blocked_us = 0.0;  ///< self time of "blocked" spans
  double span_total_us = 0.0;  ///< self time of all spans (compute+blocked)
};

int failures = 0;

void check(bool ok, const char* fmt, const std::string& detail) {
  if (ok) return;
  std::fprintf(stderr, fmt, detail.c_str());
  std::fputc('\n', stderr);
  ++failures;
}

/// Power-of-two bucket label for a message size ("256B-511B", ...).
std::string bucket_label(long bytes) {
  long lo = 1;
  while (lo * 2 <= bytes) lo *= 2;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%ld-%ld", lo, lo * 2 - 1);
  return buf;
}

std::string fmt_ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us * 1e-3);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_mode = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0)
      check_mode = true;
    else
      path = argv[i];
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: trace_summary [--check] <trace.json>\n");
    return 2;
  }

  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return 2;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
    text.append(buf, got);
  std::fclose(f);

  JsonValue doc;
  try {
    doc = hpamg::json_parse(text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: parse error: %s\n", path, e.what());
    return 1;
  }

  // Golden top-level schema.
  const JsonValue* events = doc.find("traceEvents");
  check(events != nullptr && events->is_array(),
        "%s: traceEvents array missing", path);
  check(doc.find("displayTimeUnit") != nullptr,
        "%s: displayTimeUnit missing", path);
  check(doc.find("otherData") != nullptr && doc.find("otherData")->is_object(),
        "%s: otherData missing", path);
  if (events == nullptr || !events->is_array()) return 1;

  std::map<int, std::string> process_names;
  std::vector<SpanRec> spans;
  std::map<std::pair<int, int>, double> last_ts;  ///< per-track monotonicity
  // flow id -> [sends, recvs]
  std::map<long long, std::pair<int, int>> flows;
  std::map<std::string, long> size_hist;
  long messages = 0;
  long long message_bytes = 0;

  for (const JsonValue& e : events->items) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const std::string& kind = ph->text;
    const int pid = e.find("pid") ? int(e.find("pid")->number) : 0;
    const int tid = e.find("tid") ? int(e.find("tid")->number) : 0;

    if (kind == "M") {
      if (e.find("name")->text == "process_name")
        process_names[pid] = e.find("args")->find("name")->text;
      continue;
    }
    const JsonValue* ts = e.find("ts");
    check(ts != nullptr && ts->is_number(), "%s: event without ts", path);
    if (ts == nullptr) continue;
    auto& prev = last_ts[{pid, tid}];
    check(ts->number + 1e-9 >= prev,
          "%s: non-monotonic timestamps within a track", path);
    prev = std::max(prev, ts->number);

    if (kind == "X") {
      SpanRec s;
      s.name = e.find("name")->text;
      s.cat = e.find("cat") ? e.find("cat")->text : "";
      s.pid = pid;
      s.tid = tid;
      s.ts_us = ts->number;
      const JsonValue* dur = e.find("dur");
      check(dur != nullptr && dur->is_number(), "%s: span without dur", path);
      s.dur_us = dur ? dur->number : 0.0;
      check(s.dur_us >= 0.0, "%s: negative span duration", path);
      spans.push_back(std::move(s));
    } else if (kind == "s" || kind == "f") {
      const JsonValue* id = e.find("id");
      check(id != nullptr, "%s: flow event without id", path);
      if (id == nullptr) continue;
      auto& pair = flows[(long long)id->number];
      if (kind == "s") {
        ++pair.first;
        if (const JsonValue* args = e.find("args"))
          if (const JsonValue* bytes = args->find("bytes")) {
            ++messages;
            message_bytes += (long long)bytes->number;
            ++size_hist[bucket_label(long(bytes->number))];
          }
      } else {
        ++pair.second;
      }
    }
  }

  // Per-thread drop counts: the tracer exports them when a ring wrapped
  // (newest-wins), so downstream checks can tell expected data loss from a
  // genuinely unpaired flow.
  long long dropped_total = 0;
  std::map<std::string, long long> dropped_by_track;
  if (const JsonValue* other = doc.find("otherData")) {
    if (const JsonValue* d = other->find("dropped_events"))
      dropped_total = (long long)d->number;
    if (const JsonValue* byt = other->find("dropped_by_track")) {
      long long sum = 0;
      for (const auto& [track, n] : byt->members) {
        dropped_by_track[track] = (long long)n.number;
        sum += (long long)n.number;
      }
      check(sum == dropped_total,
            "%s: dropped_by_track does not sum to dropped_events", path);
    }
  }

  long long matched_flows = 0, unmatched_sends = 0, unmatched_recvs = 0;
  for (const auto& [id, pair] : flows) {
    // Duplicate ids are a tracer bug regardless of drops.
    check(pair.first <= 1 && pair.second <= 1,
          "%s: duplicate flow id (multiple sends or recvs)", path);
    if (pair.first == 1 && pair.second == 1)
      ++matched_flows;
    else if (pair.second == 0)
      ++unmatched_sends;
    else if (pair.first == 0)
      ++unmatched_recvs;
  }
  // A half-arrow with nothing dropped means the tracer lost an event.
  check(dropped_total > 0 || (unmatched_sends == 0 && unmatched_recvs == 0),
        "%s: unmatched flow arrows in a trace reporting zero drops", path);

  // Self time: within each track, walk spans in start order keeping an
  // enclosing-span stack; a nested span's duration is subtracted from its
  // parent's self time (so "blocked" time inside mpi.recv is not also
  // counted as compute in the enclosing kernel span).
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRec& a, const SpanRec& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // parents first
                   });
  std::map<std::string, KernelAgg> kernels;
  std::map<int, RankAgg> ranks;
  std::vector<const SpanRec*> stack;
  for (const SpanRec& s : spans) {
    while (!stack.empty() &&
           (stack.back()->pid != s.pid || stack.back()->tid != s.tid ||
            stack.back()->ts_us + stack.back()->dur_us <= s.ts_us))
      stack.pop_back();
    KernelAgg& k = kernels[s.name];
    k.total_us += s.dur_us;
    k.self_us += s.dur_us;
    ++k.count;
    RankAgg& r = ranks[s.pid];
    r.span_total_us += s.dur_us;
    (s.cat == "blocked" ? r.blocked_us : r.compute_us) += s.dur_us;
    if (!stack.empty()) {
      const SpanRec& parent = *stack.back();
      kernels[parent.name].self_us -= s.dur_us;
      r.span_total_us -= s.dur_us;
      (parent.cat == "blocked" ? r.blocked_us : r.compute_us) -= s.dur_us;
    }
    stack.push_back(&s);
  }

  std::printf("== per-kernel time (all tracks) ==\n");
  std::printf("%-28s %10s %12s %12s\n", "name", "count", "total_ms",
              "self_ms");
  std::vector<std::pair<std::string, KernelAgg>> by_self(kernels.begin(),
                                                         kernels.end());
  std::stable_sort(by_self.begin(), by_self.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.self_us > b.second.self_us;
                   });
  for (const auto& [name, k] : by_self)
    std::printf("%-28s %10ld %12s %12s\n", name.c_str(), k.count,
                fmt_ms(k.total_us).c_str(), fmt_ms(k.self_us).c_str());

  std::printf("\n== per-rank compute vs blocked ==\n");
  std::printf("%-12s %12s %12s %12s %9s\n", "track", "compute_ms",
              "blocked_ms", "span_ms", "blocked%");
  for (const auto& [pid, r] : ranks) {
    const std::string label =
        process_names.count(pid) ? process_names[pid]
                                 : "pid " + std::to_string(pid);
    const double frac =
        r.span_total_us > 0 ? 100.0 * r.blocked_us / r.span_total_us : 0.0;
    std::printf("%-12s %12s %12s %12s %8.1f%%\n", label.c_str(),
                fmt_ms(r.compute_us).c_str(), fmt_ms(r.blocked_us).c_str(),
                fmt_ms(r.span_total_us).c_str(), frac);
    check(std::abs(r.compute_us + r.blocked_us - r.span_total_us) <=
              0.05 * std::max(r.span_total_us, 1.0),
          "%s: compute + blocked does not sum to span total", path);
  }

  std::printf("\n== message sizes (%ld messages, %lld bytes) ==\n", messages,
              message_bytes);
  for (const auto& [bucket, count] : size_hist)
    std::printf("%16s B: %ld\n", bucket.c_str(), count);

  std::printf(
      "\n== flows (%lld matched, %lld send-only, %lld recv-only) ==\n",
      matched_flows, unmatched_sends, unmatched_recvs);
  if (unmatched_sends > 0 || unmatched_recvs > 0)
    std::printf("  %lld unmatched arrow(s): %s\n",
                unmatched_sends + unmatched_recvs,
                dropped_total > 0
                    ? "attributable to ring wraparound (see drops below)"
                    : "NOT explained by drops -- tracer bug");
  if (dropped_total > 0) {
    std::printf("\n== dropped events (%lld total) ==\n", dropped_total);
    for (const auto& [track, n] : dropped_by_track)
      std::printf("%16s: %lld\n", track.c_str(), n);
    if (dropped_by_track.empty())
      std::printf("  (no per-track breakdown in this trace)\n");
  }

  if (check_mode) {
    std::printf("\n%s: %zu spans, %lld matched flows, %lld unmatched, "
                "%lld dropped, %d check failure(s)\n",
                path, spans.size(), matched_flows,
                unmatched_sends + unmatched_recvs, dropped_total, failures);
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
