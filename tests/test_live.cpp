// Live observability tests: heartbeat publishing, the activity-scope
// gate, the progress stream + exposition files, flight-recorder rings,
// and the watchdog — including the sanitizer deadline-scaling contract
// (a slow-but-alive solve must never become a false stall report) and
// the chaos scenario where a compute-hung simmpi rank is detected,
// attributed, and unwound as a DeadlockError with artifacts.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/simmpi.hpp"
#include "support/error.hpp"
#include "support/live.hpp"
#include "support/metrics.hpp"
#include "support/report.hpp"

namespace hpamg {
namespace {

namespace fs = std::filesystem;

void sleep_s(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/// Fresh per-test output directory under gtest's temp root.
fs::path fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

int count_files_with_prefix(const fs::path& dir, const std::string& prefix) {
  int n = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    n += entry.path().filename().string().rfind(prefix, 0) == 0 ? 1 : 0;
  return n;
}

class Live : public ::testing::Test {
 protected:
  void TearDown() override {
    if (live::running()) live::stop();
    live::reset_watchdog();
    live::set_rank(-1);
    ::unsetenv("HPAMG_WATCHDOG_SCALE");
  }
};

TEST_F(Live, DisabledByDefaultPublishingIsANoOp) {
  EXPECT_FALSE(live::enabled());
  EXPECT_FALSE(live::running());
  live::beat_iteration(3, 0.5);
  live::beat_phase("cycle.level", 2);
  live::add_blocked_ns(1000);
  live::set_waiting(true);
  { live::ActivityScope scope; }
  EXPECT_TRUE(live::heartbeat_snapshot().empty());
  EXPECT_EQ(live::watchdog_verdict(), Status::kOk);
}

TEST_F(Live, HeartbeatPublishesIterationPhaseAndConvergenceFactor) {
  live::Options opts;
  opts.interval_s = 0.01;
  ASSERT_TRUE(live::start(opts));
  EXPECT_FALSE(live::start(opts));  // second start refused
  live::ActivityScope scope;
  live::beat_iteration(1, 0.5);
  live::beat_iteration(2, 0.25);
  live::beat_phase("cycle.level", 3);
  const std::vector<live::HeartbeatSample> beats = live::heartbeat_snapshot();
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].rank, -1);  // host slot
  EXPECT_EQ(beats[0].iteration, 2);
  EXPECT_EQ(beats[0].level, 3);
  EXPECT_STREQ(beats[0].phase, "cycle.level");
  EXPECT_DOUBLE_EQ(beats[0].relres, 0.25);
  EXPECT_DOUBLE_EQ(beats[0].conv_factor, 0.5);  // 0.25 / 0.5
  EXPECT_GE(beats[0].epoch, 3u);
  EXPECT_FALSE(beats[0].waiting);
  live::stop();
  EXPECT_FALSE(live::enabled());
}

TEST_F(Live, ActivityScopeGatesSnapshotVisibility) {
  live::Options opts;
  opts.interval_s = 0.01;
  ASSERT_TRUE(live::start(opts));
  EXPECT_TRUE(live::heartbeat_snapshot().empty());  // idle slot: invisible
  {
    live::ActivityScope scope;
    EXPECT_EQ(live::heartbeat_snapshot().size(), 1u);
    {
      live::ActivityScope nested;  // depth-counted, still one slot
      EXPECT_EQ(live::heartbeat_snapshot().size(), 1u);
    }
    EXPECT_EQ(live::heartbeat_snapshot().size(), 1u);
  }
  EXPECT_TRUE(live::heartbeat_snapshot().empty());
}

TEST_F(Live, ActivityScopeResetsPerSolveFields) {
  live::Options opts;
  opts.interval_s = 0.01;
  ASSERT_TRUE(live::start(opts));
  {
    live::ActivityScope scope;
    live::beat_iteration(7, 1e-9);
  }
  {
    live::ActivityScope scope;
    const auto beats = live::heartbeat_snapshot();
    ASSERT_EQ(beats.size(), 1u);
    // The previous solve's residual/iteration must not leak.
    EXPECT_EQ(beats[0].iteration, -1);
    EXPECT_LT(beats[0].relres, 0.0);
    EXPECT_DOUBLE_EQ(beats[0].conv_factor, 0.0);
  }
}

TEST_F(Live, RankBindingRoutesBeatsToRankSlots) {
  live::Options opts;
  opts.interval_s = 0.01;
  ASSERT_TRUE(live::start(opts));
  EXPECT_EQ(live::current_rank(), -1);
  live::set_rank(3);
  EXPECT_EQ(live::current_rank(), 3);
  {
    live::ActivityScope scope;
    live::beat_iteration(5, 0.125);
    live::set_waiting(true);
    live::add_blocked_ns(2'000'000'000ull);
    const auto beats = live::heartbeat_snapshot();
    ASSERT_EQ(beats.size(), 1u);
    EXPECT_EQ(beats[0].rank, 3);
    EXPECT_EQ(beats[0].iteration, 5);
    EXPECT_TRUE(beats[0].waiting);
    EXPECT_GE(beats[0].blocked_s, 2.0);
    live::set_waiting(false);
  }
  live::set_rank(-1);
  EXPECT_EQ(live::current_rank(), -1);
  // Ranks beyond the slot table are dropped to the host slot, never
  // misattributed to another rank.
  live::set_rank(live::kSlots + 5);
  EXPECT_EQ(live::current_rank(), -1);
}

TEST_F(Live, ProgressStreamAndExpositionFilesAreWellFormed) {
  const fs::path dir = fresh_dir("hpamg_live_stream");
  metrics::enable();
  metrics::counter("amg.test_events").add(3);
  live::Options opts;
  opts.dir = dir.string();
  opts.interval_s = 0.005;
  ASSERT_TRUE(live::start(opts));
  {
    live::ActivityScope scope;
    for (int it = 1; it <= 5; ++it) {
      live::beat_iteration(it, 1.0 / it);
      sleep_s(0.01);
    }
  }
  live::stop();
  metrics::reset();

  // Every progress line parses and carries the schema hpamg_top renders.
  std::ifstream in(dir / "progress.jsonl");
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  unsigned long long last_seq = 0;
  while (std::getline(in, line)) {
    ++lines;
    const JsonValue v = json_parse(line);
    ASSERT_TRUE(v.is_object());
    const JsonValue* seq = v.find("seq");
    ASSERT_NE(seq, nullptr);
    if (lines > 1) EXPECT_EQ((unsigned long long)seq->number, last_seq + 1);
    last_seq = (unsigned long long)seq->number;
    ASSERT_TRUE(v.has("ts_ms"));
    const JsonValue* ranks = v.find("ranks");
    ASSERT_NE(ranks, nullptr);
    ASSERT_TRUE(ranks->is_array());
    for (const JsonValue& r : ranks->items) {
      EXPECT_TRUE(r.has("rank"));
      EXPECT_TRUE(r.has("iteration"));
      EXPECT_TRUE(r.has("phase"));
      EXPECT_TRUE(r.has("blocked_frac"));
    }
    ASSERT_TRUE(v.has("counters"));
    ASSERT_TRUE(v.has("gauges"));
  }
  EXPECT_GE(lines, 2);  // several ticks plus the final flush sample

  // Exposition file: atomic rename means no .tmp leftover is required
  // reading; the published file carries the sampler's own counter.
  std::ifstream prom(dir / "metrics.prom");
  ASSERT_TRUE(prom.good());
  std::string text((std::istreambuf_iterator<char>(prom)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("# TYPE hpamg_live_samples counter"),
            std::string::npos);
  EXPECT_NE(text.find("hpamg_amg_test_events 3"), std::string::npos);
  fs::remove_all(dir);
}

// ------------------------------------------------------- flight recorder ----

TEST_F(Live, FlightRecorderKeepsNewestEventsAndCountsDrops) {
  live::Options opts;
  opts.interval_s = 0.05;
  opts.flight_capacity = 16;
  ASSERT_TRUE(live::start(opts));
  const live::FlightStats before = live::flight_stats();
  // Record from a fresh thread: ring capacity binds at a thread's first
  // record, so this thread's ring is guaranteed to carry flight_capacity
  // (the main thread's ring may predate this test with a larger one).
  std::thread recorder([] {
    for (int i = 0; i < 40; ++i) {
      char name[32];
      std::snprintf(name, sizeof name, "ev%d", i);
      live::record(live::EventKind::kInstant, name, "payload");
    }
  });
  recorder.join();
  const live::FlightStats after = live::flight_stats();
  EXPECT_GE(after.recorded - before.recorded, 16u);  // the full ring is held
  EXPECT_GE(after.dropped - before.dropped, 24u);    // 40 into a 16-ring
  const std::string dump = live::flight_dump();
  EXPECT_NE(dump.find("ev39"), std::string::npos);     // newest survives
  EXPECT_EQ(dump.find("ev0 "), std::string::npos);     // oldest evicted
  EXPECT_NE(dump.find("payload"), std::string::npos);
  live::stop();
}

TEST_F(Live, NoteFaultDumpsOncePerSite) {
  const fs::path dir = fresh_dir("hpamg_live_fault");
  live::Options opts;
  opts.dir = dir.string();
  opts.interval_s = 0.05;
  ASSERT_TRUE(live::start(opts));
  // Unique site name: the once-per-site latch is process-global.
  live::note_fault("test.live.fault_once");
  live::note_fault("test.live.fault_once");
  EXPECT_EQ(count_files_with_prefix(dir, "flightrec_"), 1);
  const live::FlightStats st = live::flight_stats();
  EXPECT_GE(st.recorded, 2u);  // both trips recorded, one dump written
  live::stop();
  fs::remove_all(dir);
}

// --------------------------------------------------------------- watchdog ----

TEST_F(Live, WatchdogStaysQuietWhileHeartbeatsArrive) {
  ::setenv("HPAMG_WATCHDOG_SCALE", "1", 1);
  live::Options opts;
  opts.interval_s = 0.01;
  opts.watchdog_deadline_s = 0.15;
  ASSERT_TRUE(live::start(opts));
  live::ActivityScope scope;
  for (int it = 1; it <= 20; ++it) {
    live::beat_iteration(it, 1.0 / it);
    sleep_s(0.02);  // well inside the deadline
  }
  EXPECT_EQ(live::watchdog_verdict(), Status::kOk);
  live::stop();
}

TEST_F(Live, WatchdogDeclaresStallAndDumpsFlightRecorder) {
  ::setenv("HPAMG_WATCHDOG_SCALE", "1", 1);
  const fs::path dir = fresh_dir("hpamg_live_stall");
  live::Options opts;
  opts.dir = dir.string();
  opts.interval_s = 0.01;
  opts.watchdog_deadline_s = 0.1;
  ASSERT_TRUE(live::start(opts));
  live::ActivityScope scope;
  live::beat_iteration(4, 0.125);
  // Silent past the deadline: the sampler must latch a stall on its own.
  for (int i = 0; i < 100 && live::watchdog_verdict() == Status::kOk; ++i)
    sleep_s(0.02);
  EXPECT_EQ(live::watchdog_verdict(), Status::kDeadlock);
  const live::StallInfo info = live::stall_info();
  EXPECT_EQ(info.rank, -1);  // the host thread went quiet
  EXPECT_GE(info.stalled_s, 0.1);
  EXPECT_DOUBLE_EQ(info.deadline_s, 0.1);  // scale pinned to 1
  EXPECT_EQ(info.iteration, 4);
  EXPECT_FALSE(info.waiting);
  EXPECT_GE(count_files_with_prefix(dir, "flightrec_"), 1);
  live::stop();
  live::reset_watchdog();
  EXPECT_EQ(live::watchdog_verdict(), Status::kOk);
  fs::remove_all(dir);
}

TEST_F(Live, StallHandlersRunOnceAndUnregisterSafely) {
  ::setenv("HPAMG_WATCHDOG_SCALE", "1", 1);
  std::atomic<int> calls{0};
  std::atomic<int> seen_rank{99};
  const int token = live::register_stall_handler(
      [&](const live::StallInfo& info) {
        calls.fetch_add(1);
        seen_rank.store(info.rank);
      });
  live::Options opts;
  opts.interval_s = 0.01;
  opts.watchdog_deadline_s = 0.05;
  ASSERT_TRUE(live::start(opts));
  live::ActivityScope scope;
  live::beat_iteration(1, 0.5);
  for (int i = 0; i < 100 && calls.load() == 0; ++i) sleep_s(0.02);
  // The latch fires handlers exactly once even though the sampler keeps
  // observing the stale slot every tick.
  sleep_s(0.05);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_rank.load(), -1);
  live::unregister_stall_handler(token);
  live::stop();
}

// ------------------------------------------- sanitizer deadline scaling ----

TEST_F(Live, SanitizerScaleIsAtLeastOneAndEnvOverridable) {
  ::unsetenv("HPAMG_WATCHDOG_SCALE");
  EXPECT_GE(live::sanitizer_scale(), 1.0);
#if defined(__SANITIZE_THREAD__)
  EXPECT_GE(live::sanitizer_scale(), 20.0);
#endif
  ::setenv("HPAMG_WATCHDOG_SCALE", "30", 1);
  EXPECT_DOUBLE_EQ(live::sanitizer_scale(), 30.0);
  ::setenv("HPAMG_WATCHDOG_SCALE", "bogus", 1);
  EXPECT_GE(live::sanitizer_scale(), 1.0);  // bad override falls through
}

TEST_F(Live, ScaledDeadlineToleratesSanitizerSlowSolve) {
  // Model a sanitized build: beats arrive 5x slower than the unscaled
  // deadline allows. With the deadline stretched by the (overridden)
  // scale, the slow-but-alive solve must NOT be declared a stall — this
  // is the contract that keeps the TSan/ASan CI jobs free of false
  // positives.
  ::setenv("HPAMG_WATCHDOG_SCALE", "30", 1);
  live::Options opts;
  opts.interval_s = 0.01;
  opts.watchdog_deadline_s = 0.02;  // effective: 0.6 s
  ASSERT_TRUE(live::start(opts));
  live::ActivityScope scope;
  for (int it = 1; it <= 4; ++it) {
    live::beat_iteration(it, 1.0 / it);
    sleep_s(0.1);  // 5x past the unscaled deadline, inside the scaled one
  }
  EXPECT_EQ(live::watchdog_verdict(), Status::kOk);
  live::stop();
}

// ----------------------------------------------------- simmpi chaos test ----

TEST_F(Live, WatchdogAttributesComputeHungRankAndUnwindsWorld) {
  ::setenv("HPAMG_WATCHDOG_SCALE", "1", 1);
  const fs::path live_dir = fresh_dir("hpamg_live_chaos");
  const fs::path dump_dir = fresh_dir("hpamg_live_chaos_dumps");
  ::setenv("HPAMG_STATE_DUMP_DIR", dump_dir.string().c_str(), 1);

  live::Options opts;
  opts.dir = live_dir.string();
  opts.interval_s = 0.01;
  opts.watchdog_deadline_s = 0.2;
  ASSERT_TRUE(live::start(opts));

  // The injected hang: rank 0 beats once, then stops computing without
  // entering a wait. Rank 1 blocks in a recv that can never complete. The
  // simmpi timeout (30 s) would eventually fire, but the watchdog must
  // resolve it first, attributing the stall to rank 0 — the rank whose
  // heartbeat stopped — not to rank 1, the waiting victim.
  simmpi::RunOptions ropts;
  ropts.timeout_seconds = 30.0;
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          live::beat_iteration(1, 0.5);
          if (c.rank() == 0)
            sleep_s(1.2);  // compute hang (finite, so the test terminates)
          else
            c.recv(0, 7);  // never satisfied; unwound by the watchdog
        },
        ropts);
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog declared rank 0"), std::string::npos)
        << what;
    EXPECT_FALSE(e.state_dump().empty());
    // The dump shows the victim blocked in its recv.
    EXPECT_NE(e.state_dump().find("rank 1"), std::string::npos);
  }

  EXPECT_EQ(live::watchdog_verdict(), Status::kDeadlock);
  const live::StallInfo info = live::stall_info();
  EXPECT_EQ(info.rank, 0);
  EXPECT_FALSE(info.waiting);  // a compute hang, not a deadlock cycle
  EXPECT_GE(info.stalled_s, 0.2);

  live::stop();
  ::unsetenv("HPAMG_STATE_DUMP_DIR");
  // Artifacts: flight recorder in the live dir, simmpi state dump in the
  // dump dir — both tied to the same stall.
  EXPECT_GE(count_files_with_prefix(live_dir, "flightrec_"), 1);
  EXPECT_GE(count_files_with_prefix(dump_dir, "simmpi_deadlock_"), 1);
  fs::remove_all(live_dir);
  fs::remove_all(dump_dir);
}

TEST_F(Live, WaitingRanksAloneDoNotTripTheWatchdogWhilePeersBeat) {
  ::setenv("HPAMG_WATCHDOG_SCALE", "1", 1);
  live::Options opts;
  opts.interval_s = 0.01;
  opts.watchdog_deadline_s = 0.15;
  ASSERT_TRUE(live::start(opts));
  // Load imbalance, not a stall: rank 1 sits in a (satisfiable) recv far
  // past the deadline while rank 0 keeps beating, then rank 0 sends. No
  // stall may be declared.
  simmpi::RunOptions ropts;
  ropts.timeout_seconds = 30.0;
  simmpi::run(
      2,
      [&](simmpi::Comm& c) {
        if (c.rank() == 0) {
          for (int it = 1; it <= 25; ++it) {
            live::beat_iteration(it, 1.0 / it);
            sleep_s(0.02);  // 0.5 s of work while rank 1 waits
          }
          const double x = 1.0;
          c.send(1, 7, &x, sizeof x);
        } else {
          live::beat_iteration(1, 0.5);
          (void)c.recv(0, 7);
        }
      },
      ropts);
  EXPECT_EQ(live::watchdog_verdict(), Status::kOk);
  live::stop();
}

}  // namespace
}  // namespace hpamg
