// lint-fixture-path: src/amg/bad_discard.cpp
// Violation fixture: both ways of silently discarding a Status result.
// expect: nodiscard-status
#include "amg/hierarchy.hpp"
#include "support/check.hpp"

namespace hpamg {

void ignores_status(const Hierarchy& h, const CSRMatrix& A) {
  // Bare-statement call: the Status return value evaporates.
  check_hierarchy(h);
  // Explicit cast-away without a waiver comment.
  (void)check::csr_well_formed(A, "A");
}

}  // namespace hpamg
