// Sparse matrix transpose.
//
// The baseline mirrors HYPRE: a sequential bucket transpose performed anew
// for every restriction in the solve phase. The optimized version (SC'15
// §3.3) parallelizes the transpose with a parallel counting sort and
// nnz-balanced row partitioning; the optimized hierarchy additionally keeps
// R = P^T from setup so the solve phase never transposes at all.
#pragma once

#include "matrix/csr.hpp"
#include "support/counters.hpp"

namespace hpamg {

/// Sequential transpose (baseline). Output rows are sorted.
CSRMatrix transpose_serial(const CSRMatrix& A, WorkCounters* wc = nullptr);

/// Thread-parallel transpose via parallel counting sort over column keys,
/// load-balanced by nonzeros per row. Output rows are sorted.
CSRMatrix transpose_parallel(const CSRMatrix& A, WorkCounters* wc = nullptr);

}  // namespace hpamg
