#include "matrix/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace hpamg {

CSRMatrix::CSRMatrix(Int rows, Int cols) : nrows(rows), ncols(cols) {
  require(rows >= 0 && cols >= 0, "CSRMatrix: negative dimensions");
  rowptr.assign(std::size_t(rows) + 1, 0);
}

double CSRMatrix::at(Int i, Int j) const {
  for (Int k = rowptr[i]; k < rowptr[i + 1]; ++k)
    if (colidx[k] == j) return values[k];
  return 0.0;
}

void CSRMatrix::sort_rows() {
  parallel_for_dynamic(0, nrows, [&](Int i) {
    const Int lo = rowptr[i], hi = rowptr[i + 1];
    const Int len = hi - lo;
    if (len <= 1) return;
    std::vector<Int> order(len);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](Int a, Int b) {
      return colidx[lo + a] < colidx[lo + b];
    });
    std::vector<Int> c(len);
    std::vector<double> v(len);
    for (Int k = 0; k < len; ++k) {
      c[k] = colidx[lo + order[k]];
      v[k] = values[lo + order[k]];
    }
    std::copy(c.begin(), c.end(), colidx.begin() + lo);
    std::copy(v.begin(), v.end(), values.begin() + lo);
  });
}

bool CSRMatrix::rows_sorted() const {
  for (Int i = 0; i < nrows; ++i)
    for (Int k = rowptr[i] + 1; k < rowptr[i + 1]; ++k)
      if (colidx[k - 1] >= colidx[k]) return false;
  return true;
}

void CSRMatrix::validate() const {
  require(Int(rowptr.size()) == nrows + 1, "CSRMatrix: bad rowptr size");
  require(rowptr[0] == 0, "CSRMatrix: rowptr[0] != 0");
  for (Int i = 0; i < nrows; ++i)
    require(rowptr[i] <= rowptr[i + 1], "CSRMatrix: rowptr not monotone");
  require(colidx.size() == values.size(), "CSRMatrix: colidx/values mismatch");
  require(Long(colidx.size()) == nnz(), "CSRMatrix: nnz mismatch");
  for (Int c : colidx)
    require(c >= 0 && c < ncols, "CSRMatrix: column index out of range");
}

void CSRMatrix::validate_system_matrix(const char* what) const {
  const auto fail = [&](Int row, const char* why) {
    throw SolverError(Status::kInvalidInput,
                      std::string(what) + ": " + why +
                          (row >= 0 ? " (row " + std::to_string(row) + ")"
                                    : std::string()));
  };
  if (nrows != ncols) fail(-1, "system matrix must be square");
  try {
    validate();
  } catch (const std::exception& e) {
    throw SolverError(Status::kInvalidInput,
                      std::string(what) + ": " + e.what());
  }
  for (Int i = 0; i < nrows; ++i) {
    double d = 0.0;
    for (Int k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      if (!std::isfinite(values[k])) fail(i, "non-finite matrix entry");
      if (colidx[k] == i) d = values[k];
    }
    if (d == 0.0) fail(i, "missing or zero diagonal entry");
  }
}

CSRMatrix CSRMatrix::identity(Int n) {
  CSRMatrix I(n, n);
  I.colidx.resize(n);
  I.values.assign(n, 1.0);
  for (Int i = 0; i < n; ++i) {
    I.rowptr[i] = i;
    I.colidx[i] = i;
  }
  I.rowptr[n] = n;
  return I;
}

CSRMatrix CSRMatrix::from_triplets(Int rows, Int cols,
                                   std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CSRMatrix A(rows, cols);
  A.colidx.reserve(triplets.size());
  A.values.reserve(triplets.size());
  Int prev_row = -1, prev_col = -1;
  for (const Triplet& t : triplets) {
    require(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
            "from_triplets: index out of range");
    if (t.row == prev_row && t.col == prev_col) {
      A.values.back() += t.value;
      continue;
    }
    A.colidx.push_back(t.col);
    A.values.push_back(t.value);
    ++A.rowptr[t.row + 1];
    prev_row = t.row;
    prev_col = t.col;
  }
  for (Int i = 0; i < rows; ++i) A.rowptr[i + 1] += A.rowptr[i];
  return A;
}

bool csr_approx_equal(const CSRMatrix& a, const CSRMatrix& b, double tol) {
  if (a.nrows != b.nrows || a.ncols != b.ncols) return false;
  if (a.rowptr != b.rowptr || a.colidx != b.colidx) return false;
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    double scale = std::max({1.0, std::abs(a.values[k]), std::abs(b.values[k])});
    if (std::abs(a.values[k] - b.values[k]) > tol * scale) return false;
  }
  return true;
}

bool csr_same_operator(const CSRMatrix& a, const CSRMatrix& b, double tol) {
  if (a.nrows != b.nrows || a.ncols != b.ncols) return false;
  std::vector<double> acc(a.ncols, 0.0);
  for (Int i = 0; i < a.nrows; ++i) {
    for (Int k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k)
      acc[a.colidx[k]] += a.values[k];
    for (Int k = b.rowptr[i]; k < b.rowptr[i + 1]; ++k)
      acc[b.colidx[k]] -= b.values[k];
    double row_scale = 1.0;
    for (Int k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k)
      row_scale = std::max(row_scale, std::abs(a.values[k]));
    bool ok = true;
    for (Int k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      if (std::abs(acc[a.colidx[k]]) > tol * row_scale) ok = false;
      acc[a.colidx[k]] = 0.0;
    }
    for (Int k = b.rowptr[i]; k < b.rowptr[i + 1]; ++k) {
      if (std::abs(acc[b.colidx[k]]) > tol * row_scale) ok = false;
      acc[b.colidx[k]] = 0.0;
    }
    if (!ok) return false;
  }
  return true;
}

std::uint64_t matrix_fingerprint(const CSRMatrix& a) {
  FingerprintHasher h;
  h.update(std::uint64_t(0x43535246ull));  // "CSRF" domain separator
  h.update(std::uint64_t(a.nrows));
  h.update(std::uint64_t(a.ncols));
  std::vector<Int> order;  // scratch for rows stored out of column order
  for (Int i = 0; i < a.nrows; ++i) {
    const Int begin = a.rowptr[i];
    const Int end = a.rowptr[i + 1];
    h.update(std::uint64_t(end - begin));
    bool sorted = true;
    for (Int k = begin + 1; k < end; ++k)
      if (a.colidx[k] < a.colidx[k - 1]) {
        sorted = false;
        break;
      }
    if (sorted) {
      for (Int k = begin; k < end; ++k) {
        h.update(std::uint64_t(a.colidx[k]));
        h.update(a.values[k]);
      }
    } else {
      order.resize(std::size_t(end - begin));
      std::iota(order.begin(), order.end(), begin);
      std::sort(order.begin(), order.end(),
                [&](Int x, Int y) { return a.colidx[x] < a.colidx[y]; });
      for (Int k : order) {
        h.update(std::uint64_t(a.colidx[k]));
        h.update(a.values[k]);
      }
    }
  }
  return h.digest();
}

}  // namespace hpamg
