// SolverService — a long-lived session layer over AMGSolver.
//
// The paper's deployment model (§5.2) amortizes one expensive setup phase
// over many solves; production solver farms (XAMG's "solver instance"
// reuse, PETSc's KSPSetReusePreconditioner) go one step further and keep
// *pools* of set-up hierarchies alive across requests. SolverService is
// that layer: callers submit (matrix, rhs, latency contract) requests and
// get a future; worker threads solve them against a bounded LRU pool of
// AMG hierarchies keyed by matrix_fingerprint (matrix/csr.hpp), so a
// repeat matrix pays zero setup.
//
// The robustness contract — every request resolves to a specific Status,
// never silence, never a hang:
//
//   - Admission control: a bounded submission queue; requests are rejected
//     (Status::kRejected) when the queue is full, when the service is
//     stopping, or when the EWMA service-time estimate says the queue
//     delay alone would blow the request's deadline (load shedding).
//   - Deadline propagation: each request's Deadline rides into
//     AMGSolver::solve / solve_multi (checked per V-cycle) and is also
//     checked at dequeue and between retry attempts; expiry anywhere
//     yields Status::kDeadlineExceeded with the partial result preserved.
//   - Retry with backoff: transient failures (kNonFinite, kDiverged,
//     kAllocFailure, kDeadlock, kPeerFailure, kUnknown) are retried from a
//     clean initial guess with capped exponential backoff, up to
//     max_attempts, never past the deadline.
//   - Circuit breaker: per-fingerprint consecutive-failure counter; at
//     breaker_threshold the breaker opens and requests for that operator
//     fail fast (Status::kCircuitOpen) until a cooldown elapses, then one
//     half-open probe decides between closing and re-opening.
//   - Graceful degradation: when the queue is more than
//     degrade_queue_fraction full, admission downgrades the request
//     (cheaper iteration budget / looser tolerance) instead of rejecting;
//     every downgrade is recorded in the request's report events.
//
// Observability: all decision points publish `service.*` metrics
// (support/metrics.hpp), so the PR-9 live sampler exports queue depth,
// in-flight count, rejects and breaker state to metrics.prom and
// hpamg_top renders them. Internal stats mirror the counters
// unconditionally so tests need not enable the registry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amg/multivector.hpp"
#include "amg/solver.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace hpamg::service {

struct ServiceOptions {
  int workers = 2;              ///< solver worker threads
  std::size_t queue_capacity = 32;  ///< bounded submission queue
  std::size_t max_hierarchies = 4;  ///< LRU pool of set-up AMG hierarchies
  AMGOptions amg;               ///< setup configuration for built hierarchies

  // Retry/backoff for transient failures.
  Int max_attempts = 3;         ///< total tries per request (1 = no retry)
  double backoff_initial_s = 0.01;  ///< first retry delay
  double backoff_max_s = 0.25;      ///< cap for the exponential backoff

  // Per-fingerprint circuit breaker.
  Int breaker_threshold = 3;    ///< consecutive failures that trip it
  double breaker_cooldown_s = 0.5;  ///< open -> half-open delay

  // Graceful degradation under load.
  double degrade_queue_fraction = 0.75;  ///< queue fill that triggers it
  Int degraded_max_iterations = 25;      ///< iteration budget when degraded
  double degraded_rtol_floor = 1e-4;     ///< rtol is loosened up to this

  /// Spawn workers in the constructor. Tests set false to drive admission
  /// without any consumer (deterministic queue-full / shed behavior).
  bool autostart = true;
};

struct RequestOptions {
  double rtol = 1e-7;
  Int max_iterations = 500;
  Deadline deadline;            ///< default: unbounded
};

/// Terminal report for one request — delivered through the future whether
/// the request solved, degraded, retried, expired, or never left the queue.
struct RequestReport {
  Status status = Status::kUnknown;
  std::uint64_t fingerprint = 0;
  Int iterations = 0;           ///< cumulative over attempts
  double final_relres = 0.0;    ///< worst column for multi-RHS
  Int attempts = 0;             ///< 0 = rejected before any solve
  bool degraded = false;        ///< admission downgraded the work
  bool cache_hit = false;       ///< hierarchy served from the pool
  double queue_seconds = 0.0;   ///< admission -> dequeue
  double solve_seconds = 0.0;   ///< time inside solve attempts
  double total_seconds = 0.0;   ///< admission -> completion
  /// Decision log: degrade notes, retry/backoff notes, breaker verdicts,
  /// solver incident events (partial-result notes on deadline expiry).
  std::vector<std::string> events;
  Vector x;                     ///< iterate (single-RHS; partial on failure)
  MultiVector X{0, 1};          ///< iterate (multi-RHS requests)
};

/// Mirror of the service.* counters, maintained unconditionally (plain
/// atomics) so tests and benches can assert on behavior without enabling
/// the metrics registry.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;       ///< all kRejected outcomes
  std::uint64_t queue_full = 0;     ///< rejects due to a full queue
  std::uint64_t shed = 0;           ///< rejects due to deadline-aware shedding
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t circuit_open = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t retries = 0;
  std::uint64_t degraded = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t failed = 0;         ///< terminal non-ok outcomes
  std::uint64_t cache_hits = 0;
  std::uint64_t setup_builds = 0;
  std::uint64_t evictions = 0;
};

class SolverService {
 public:
  explicit SolverService(const ServiceOptions& opts = {});
  ~SolverService();  ///< stop(false): drops queued work, joins workers

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Submits a single-RHS solve. Never throws and never blocks on solver
  /// work: admission verdicts (kRejected / kDeadlineExceeded /
  /// kInvalidInput) come back as an already-resolved future. The matrix is
  /// taken by value — the service owns its copy for the hierarchy's
  /// lifetime.
  std::future<RequestReport> submit(CSRMatrix A, Vector b,
                                    const RequestOptions& ropts = {});

  /// Batched submission: all columns of B solved together (AMGSolver::
  /// solve_multi), one admission decision and one report for the batch.
  std::future<RequestReport> submit_multi(CSRMatrix A, MultiVector B,
                                          const RequestOptions& ropts = {});

  /// Starts worker threads (idempotent; the constructor calls it unless
  /// opts.autostart is false).
  void start();

  /// Stops the service. drain=true: workers finish everything already
  /// queued; drain=false: queued requests resolve to kRejected. Either
  /// way every outstanding future is fulfilled before stop returns.
  void stop(bool drain = true);

  /// Point-in-time copy of the unconditional stats mirror.
  ServiceStats stats() const;

  std::size_t queue_depth() const;
  std::size_t cached_hierarchies() const;
  /// Breakers currently open (or half-open with a probe in flight).
  std::size_t open_breakers() const;

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  /// One pooled operator: the set-up solver plus its breaker state. The
  /// breaker lives with the cache entry, so evicting an operator also
  /// forgets its failure history (a fresh entry deserves a closed breaker).
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const CSRMatrix> A;  ///< kept alive for lazy setup
    std::unique_ptr<AMGSolver> solver;   ///< built under solve_mu
    std::mutex solve_mu;  ///< AMGSolver's workspace is per-hierarchy:
                          ///< concurrent solves on one entry serialize here
    std::uint64_t last_used = 0;         ///< LRU sequence number

    // Breaker fields, guarded by the owning service's pool_mu_.
    BreakerState state = BreakerState::kClosed;
    Int consecutive_failures = 0;
    Deadline::Clock::time_point open_until{};
    bool probe_in_flight = false;
  };

  struct Request {
    std::uint64_t id = 0;
    std::shared_ptr<const CSRMatrix> A;
    std::uint64_t fingerprint = 0;
    bool multi = false;
    Vector b;
    MultiVector B{0, 1};
    RequestOptions opts;
    Deadline::Clock::time_point submit_tp{};
    std::promise<RequestReport> promise;
    RequestReport report;
  };

  std::future<RequestReport> admit(std::shared_ptr<Request> rq);
  /// Resolves a request that never reaches a worker (or finishes one that
  /// did): stamps totals, bumps terminal counters, fulfills the promise.
  void finish(Request& rq, Status status, const std::string& event);
  void worker_loop();
  void process(Request& rq);
  /// Runs one solve attempt from a zero initial guess; returns its Status.
  Status run_attempt(Request& rq, AMGSolver& solver);
  std::shared_ptr<Entry> acquire_entry(const Request& rq);

  // Breaker transitions (all take pool_mu_).
  /// Admission verdict for the entry's breaker. Returns kOk to proceed
  /// (marking this request as the half-open probe when applicable) or
  /// kCircuitOpen to fail fast.
  Status breaker_admit(Entry& e, bool* is_probe, std::string* note);
  void breaker_record(Entry& e, bool is_probe, Status outcome);

  void publish_gauges();

  ServiceOptions opts_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Request>> queue_;
  bool accepting_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::mutex lifecycle_mu_;  ///< serializes start/stop

  mutable std::mutex pool_mu_;
  std::map<std::uint64_t, std::shared_ptr<Entry>> pool_;
  std::uint64_t use_seq_ = 0;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<int> in_flight_{0};
  std::atomic<int> breakers_open_{0};
  /// EWMA of per-request service seconds, feeding the shed estimate.
  std::atomic<double> ewma_service_s_{0.0};

  struct StatsCells;  ///< atomic mirror + metrics instruments (service.cpp)
  std::unique_ptr<StatsCells> stats_;
};

}  // namespace hpamg::service
