// google-benchmark microbenchmarks for the per-kernel claims of §3/§5.2:
//  - SpMV restriction: transpose-per-call (baseline) vs kept R (3.7x);
//  - hybrid GS: branchy baseline vs partitioned optimized (1.2x);
//  - strength creation: serial vs prefix-sum parallel assembly (6.1x);
//  - matrix transpose: serial vs parallel counting sort;
//  - residual + norm: separate vs fused (§3.3);
//  - interpolation/restriction: full P vs identity-block form.
//
// Accepts the usual --benchmark_* flags plus --json <path> (or
// --json=<path>), which writes the per-benchmark timings as a
// BENCH_kernels.json report alongside the console output, --trace <path>
// for a Chrome trace of the instrumented kernels, and --verbose for debug
// logging.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "amg/smoother.hpp"
#include "amg/spmv.hpp"
#include "amg/strength.hpp"
#include "gen/stencil.hpp"
#include "matrix/permute.hpp"
#include "matrix/transpose.hpp"
#include "matrix/vector_ops.hpp"
#include "support/log.hpp"
#include "support/report.hpp"
#include "support/trace.hpp"

namespace {

using namespace hpamg;

CSRMatrix bench_matrix() {
  static CSRMatrix A = [] {
    CSRMatrix m = lap3d_7pt(24, 24, 24);
    m.sort_rows();
    return m;
  }();
  return A;
}

/// Interpolation-shaped operator: n x (n/4), ~4 entries per fine row.
CSRMatrix bench_interp() {
  static CSRMatrix P = [] {
    const Int n = 24 * 24 * 24, nc = n / 4;
    std::vector<Triplet> t;
    for (Int i = 0; i < nc; ++i) t.push_back({i, i, 1.0});
    for (Int i = nc; i < n; ++i) {
      const Int c = (i * 7919) % nc;
      t.push_back({i, c, 0.4});
      t.push_back({i, (c + 1) % nc, 0.3});
      t.push_back({i, (c + 17) % nc, 0.3});
    }
    return CSRMatrix::from_triplets(n, nc, std::move(t));
  }();
  return P;
}

void BM_RestrictionTransposeEachCall(benchmark::State& state) {
  CSRMatrix P = bench_interp();
  Vector r(P.nrows, 1.0), rc(P.ncols);
  for (auto _ : state) {
    // Baseline HYPRE: derive R = P^T for every restriction (§3.2).
    CSRMatrix R = transpose_serial(P);
    spmv(R, r, rc);
    benchmark::DoNotOptimize(rc.data());
  }
}
BENCHMARK(BM_RestrictionTransposeEachCall);

void BM_RestrictionKeptTranspose(benchmark::State& state) {
  CSRMatrix P = bench_interp();
  CSRMatrix R = transpose_parallel(P);  // kept from setup
  Vector r(P.nrows, 1.0), rc(P.ncols);
  for (auto _ : state) {
    spmv(R, r, rc);
    benchmark::DoNotOptimize(rc.data());
  }
}
BENCHMARK(BM_RestrictionKeptTranspose);

void BM_RestrictionIdentityBlock(benchmark::State& state) {
  CSRMatrix P = bench_interp();
  const Int nc = P.ncols;
  CSRMatrix Pf(P.nrows - nc, nc);
  {
    std::vector<Triplet> t;
    for (Int i = nc; i < P.nrows; ++i)
      for (Int k = P.rowptr[i]; k < P.rowptr[i + 1]; ++k)
        t.push_back({i - nc, P.colidx[k], P.values[k]});
    Pf = CSRMatrix::from_triplets(P.nrows - nc, nc, std::move(t));
  }
  CSRMatrix PfT = transpose_parallel(Pf);
  Vector r(P.nrows, 1.0), rc(nc);
  for (auto _ : state) {
    restrict_identity_block(PfT, r, rc, nc);
    benchmark::DoNotOptimize(rc.data());
  }
}
BENCHMARK(BM_RestrictionIdentityBlock);

void BM_HybridGsBaseline(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  HybridGSBaseline gs(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  for (auto _ : state) {
    gs.sweep(A, b, x, t, true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_HybridGsBaseline);

void BM_HybridGsOptimized(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  HybridGSOptimized gs(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  for (auto _ : state) {
    gs.sweep(b, x, t, 0, A.nrows, true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_HybridGsOptimized);

void BM_StrengthSerial(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix S = strength_matrix_serial(A, {});
    benchmark::DoNotOptimize(S.nnz());
  }
}
BENCHMARK(BM_StrengthSerial);

void BM_StrengthParallel(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix S = strength_matrix(A, {});
    benchmark::DoNotOptimize(S.nnz());
  }
}
BENCHMARK(BM_StrengthParallel);

void BM_TransposeSerial(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix T = transpose_serial(A);
    benchmark::DoNotOptimize(T.nnz());
  }
}
BENCHMARK(BM_TransposeSerial);

void BM_TransposeParallel(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  for (auto _ : state) {
    CSRMatrix T = transpose_parallel(A);
    benchmark::DoNotOptimize(T.nnz());
  }
}
BENCHMARK(BM_TransposeParallel);

void BM_ResidualThenNorm(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  Vector x(A.nrows, 0.5), b(A.nrows, 1.0), r(A.nrows);
  for (auto _ : state) {
    spmv_residual(A, x, b, r);
    double n = dot(r, r);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ResidualThenNorm);

void BM_ResidualNormFused(benchmark::State& state) {
  CSRMatrix A = bench_matrix();
  Vector x(A.nrows, 0.5), b(A.nrows, 1.0), r(A.nrows);
  for (auto _ : state) {
    double n = spmv_residual_norm2sq_fused(A, x, b, r);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ResidualNormFused);

// Console reporter that also records each run for the JSON report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double real_seconds = 0;   // per iteration
    double cpu_seconds = 0;    // per iteration
    double iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      Captured c;
      c.name = r.benchmark_name();
      c.iterations = double(r.iterations);
      if (r.iterations > 0) {
        c.real_seconds = r.real_accumulated_time / double(r.iterations);
        c.cpu_seconds = r.cpu_accumulated_time / double(r.iterations);
      }
      captured.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<Captured> captured;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --json/--trace/--verbose before benchmark::Initialize sees them
  // (it rejects unknown flags); the remaining argv goes to google-benchmark
  // untouched.
  std::string json_path, trace_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      hpamg::log::set_threshold(hpamg::log::Level::kDebug);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_path.empty()) hpamg::trace::enable();
  int bench_argc = int(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!trace_path.empty()) {
    hpamg::trace::disable();
    if (!hpamg::trace::write_chrome_json(trace_path)) {
      std::fprintf(stderr, "cannot write trace %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }

  if (json_path.empty()) return 0;
  hpamg::BenchReport report("kernels");
  for (const CapturingReporter::Captured& c : reporter.captured) {
    report.add_run(c.name)
        .metric("real_seconds_per_iter", c.real_seconds)
        .metric("cpu_seconds_per_iter", c.cpu_seconds)
        .metric("iterations", c.iterations);
  }
  const std::string err =
      hpamg::validate_bench_report_json(report.to_json());
  if (!err.empty()) {
    std::fprintf(stderr, "json report failed self-validation: %s\n",
                 err.c_str());
    return 1;
  }
  if (!report.write_file(json_path)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
