// Fault-injection registry tests: determinism of seeded schedules, the
// after_n / count / probability semantics, and the guarantee that the
// disabled path stays off (no fires, enabled() false) — the chaos suite in
// test_resilience.cpp builds on these invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "support/fault.hpp"

namespace hpamg {
namespace {

class FaultRegistry : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(FaultRegistry, DisabledByDefault) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fire("nothing.armed"));
  EXPECT_EQ(fault::hits("nothing.armed"), 0u);
  EXPECT_EQ(fault::fires("nothing.armed"), 0u);
}

TEST_F(FaultRegistry, ArmedSiteFiresAndCounts) {
  fault::arm("t.site");
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::should_fire("t.site"));
  EXPECT_TRUE(fault::should_fire("t.site"));
  EXPECT_EQ(fault::hits("t.site"), 2u);
  EXPECT_EQ(fault::fires("t.site"), 2u);
  // Other sites are unaffected by arming one.
  EXPECT_FALSE(fault::should_fire("t.other"));
}

TEST_F(FaultRegistry, DisarmRestoresDisabledPath) {
  fault::arm("t.site");
  fault::disarm("t.site");
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fire("t.site"));
  // A disarmed site loses its counters entirely.
  EXPECT_EQ(fault::hits("t.site"), 0u);
}

TEST_F(FaultRegistry, AfterNSkipsLeadingHits) {
  fault::Schedule s;
  s.after_n = 3;
  fault::arm("t.site", s);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(fault::should_fire("t.site"));
  EXPECT_TRUE(fault::should_fire("t.site"));
  EXPECT_EQ(fault::hits("t.site"), 4u);
  EXPECT_EQ(fault::fires("t.site"), 1u);
}

TEST_F(FaultRegistry, CountBoundsTotalFires) {
  fault::Schedule s;
  s.count = 2;
  fault::arm("t.site", s);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += fault::should_fire("t.site") ? 1 : 0;
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fault::fires("t.site"), 2u);
  EXPECT_EQ(fault::hits("t.site"), 10u);
}

TEST_F(FaultRegistry, ProbabilityIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    fault::reset();
    fault::Schedule s;
    s.probability = 0.3;
    s.seed = seed;
    fault::arm("t.site", s);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) fires.push_back(fault::should_fire("t.site"));
    return fires;
  };
  const std::vector<bool> a = run_once(42), b = run_once(42),
                          c = run_once(43);
  EXPECT_EQ(a, b);  // exact replay for a fixed seed
  EXPECT_NE(a, c);  // seed actually matters
  const int fired = int(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 20);   // ~60 expected; loose bounds, deterministic value
  EXPECT_LT(fired, 120);
}

TEST_F(FaultRegistry, DrawIsDeterministicAndTiedToHit) {
  fault::Schedule s;
  fault::arm("t.site", s);
  std::uint64_t d0 = 0, d1 = 0;
  ASSERT_TRUE(fault::should_fire("t.site", &d0));
  ASSERT_TRUE(fault::should_fire("t.site", &d1));
  EXPECT_NE(d0, d1);  // each firing hit has its own draw
  // Re-arming resets the counters: the stream replays from the start.
  fault::arm("t.site", s);
  std::uint64_t d0_again = 0;
  ASSERT_TRUE(fault::should_fire("t.site", &d0_again));
  EXPECT_EQ(d0, d0_again);
}

TEST_F(FaultRegistry, MaybeFailAllocThrowsBadAlloc) {
  fault::Schedule s;
  s.count = 1;
  fault::arm("t.alloc", s);
  EXPECT_THROW(fault::maybe_fail_alloc("t.alloc"), std::bad_alloc);
  EXPECT_NO_THROW(fault::maybe_fail_alloc("t.alloc"));  // count exhausted
}

TEST_F(FaultRegistry, MaybePoisonPlantsOneNan) {
  fault::Schedule s;
  s.count = 1;
  fault::arm("t.poison", s);
  std::vector<double> v(64, 1.0);
  fault::maybe_poison("t.poison", v.data(), v.size());
  int nans = 0;
  for (double x : v) nans += std::isnan(x) ? 1 : 0;
  EXPECT_EQ(nans, 1);
  // Site exhausted: a second call leaves the vector alone.
  std::vector<double> w(64, 1.0);
  fault::maybe_poison("t.poison", w.data(), w.size());
  for (double x : w) EXPECT_EQ(x, 1.0);
}

TEST_F(FaultRegistry, ConcurrentHitsAllAccounted) {
  // Hit ordering across threads is scheduler-dependent, but the counters
  // must not lose updates and `count` must bound total fires exactly.
  fault::Schedule s;
  s.count = 7;
  fault::arm("t.mt", s);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 250; ++i) (void)fault::should_fire("t.mt");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(fault::hits("t.mt"), 1000u);
  EXPECT_EQ(fault::fires("t.mt"), 7u);
}

}  // namespace
}  // namespace hpamg
