// Registry of the 14-matrix single-node evaluation suite (SC'15 Table 2).
//
// The UF-collection matrices are replaced by synthetic generators matched
// to each matrix's class, row count and nnz/row (see DESIGN.md §1). The
// `scale` parameter shrinks every problem isotropically so the full suite
// runs in CI time; scale = 1 reproduces the paper's row counts.
#pragma once

#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace hpamg {

struct SuiteEntry {
  std::string name;        ///< paper's matrix name
  Long paper_rows;         ///< rows in the original matrix (Table 2)
  int paper_nnz_per_row;   ///< nnz/row in the original matrix (Table 2)
  double strength_threshold;  ///< Table 3: 0.25 or 0.6, per matrix
};

/// The 14 suite entries in Table 2 order.
const std::vector<SuiteEntry>& table2_suite();

/// Generates the stand-in for `name` with approximately
/// paper_rows * scale rows. Throws for unknown names.
CSRMatrix generate_suite_matrix(const std::string& name, double scale = 1.0);

/// Looks up a suite entry by name; throws if unknown.
const SuiteEntry& suite_entry(const std::string& name);

}  // namespace hpamg
