// Roofline attribution: achieved vs. modeled efficiency per kernel.
//
// Every instrumented kernel invocation contributes (measured seconds,
// WorkCounters) to a process-global registry keyed by (kernel, level).
// snapshot() joins the accumulated work with a MachineModel's rooflines:
//
//   achieved_bw  = bytes / seconds
//   bw_fraction  = achieved_bw / (stream_bw * sparse_efficiency)
//   efficiency   = model.seconds(wc) / measured seconds
//
// both clamped into (0, 1] — by the roofline argument (PAPER.md §5.1,
// STREAM bounds AMG) a kernel cannot beat the model, so a fraction above 1
// means the model is mis-calibrated for this host and is reported as
// exactly 1. Entries that did no memory traffic or took unmeasurably
// little time are dropped rather than emitted with junk fractions; this is
// what guarantees the report validator's (0, 1] acceptance bound.
//
// Recording is gated on metrics::enabled() (one relaxed load when off) and
// costs one mutex-protected map update per kernel call when on — fine for
// per-level solver kernels, not for inner loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/machine.hpp"
#include "support/counters.hpp"
#include "support/report.hpp"
#include "support/timer.hpp"

namespace hpamg {
// Forward-declared (perfmodel/network.hpp) so including this header from
// solver code does not drag in the simmpi layer.
struct NetworkModel;
}  // namespace hpamg

namespace hpamg::attrib {

/// Accumulated measurements for one (kernel, level) cell.
struct KernelStats {
  long calls = 0;
  double seconds = 0.0;
  WorkCounters work;
};

/// Adds one invocation's measurements. `level` is -1 for unleveled kernels.
void record(std::string_view kernel, int level, double seconds,
            const WorkCounters& wc);

/// Clears the registry (bench harness calls this between timed repeats so
/// warmup work does not pollute the attribution).
void reset();

/// The machine the rooflines are computed against. Defaults to
/// endeavor_rank(); bench mains override it via --machine calibration.
void set_machine(const MachineModel& m);
MachineModel machine();

/// Joins the registry with `m`'s rooflines. Sorted by total seconds,
/// largest first; entries with zero bytes or zero measured time omitted.
std::vector<RooflineEntry> snapshot(const MachineModel& m);
std::vector<RooflineEntry> snapshot();  ///< against machine()

/// Publishes perf.kernel.<name>.{seconds,bw_fraction,efficiency} gauges
/// for each snapshot entry (level-summed). No-op when metrics are off.
void publish_metrics(const std::vector<RooflineEntry>& entries);

/// Parses a calibration file ({"machine": {...}, "network": {...}}, both
/// blocks optional) as emitted by bench_stream. Unknown keys ignored so
/// calibrations stay forward-compatible. Returns false and sets `err` on
/// malformed input; models are only written on success.
bool load_calibration_json(std::string_view json_text, MachineModel* mm,
                           NetworkModel* nm, std::string* err);

/// RAII measurement scope. Snapshots *wc (when non-null) and a timer at
/// construction, records the delta at destruction. When `wc` is null the
/// caller supplies analytic counters via set_work() (distributed kernels
/// do not thread WorkCounters; their callers estimate bytes/flops from
/// matrix shape instead). Inert unless metrics::enabled() at construction.
class Scope {
 public:
  enum class Clock { kWall, kCpu };

  Scope(std::string_view kernel, int level, const WorkCounters* wc,
        Clock clock = Clock::kWall);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Analytic work for wc-less kernels; ignored when a live counter
  /// pointer was given.
  void set_work(const WorkCounters& wc);

 private:
  std::string kernel_;
  int level_;
  const WorkCounters* wc_ = nullptr;
  WorkCounters start_;     ///< *wc_ at construction
  WorkCounters analytic_;  ///< set_work() value
  bool analytic_set_ = false;
  bool active_ = false;
  Clock clock_;
  Timer wall_;
  CpuTimer cpu_;
};

}  // namespace hpamg::attrib
