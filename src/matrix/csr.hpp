// Compressed sparse row matrix — the central data structure of hpamg.
//
// Matches HYPRE's local CSR layout (rowptr / colidx / values). All AMG
// kernels operate on this type; distributed matrices hold two of them
// (block-diagonal and block-off-diagonal, see dist/dist_matrix.hpp).
#pragma once

#include <vector>

#include "support/common.hpp"

namespace hpamg {

struct Triplet {
  Int row;
  Int col;
  double value;
};

class CSRMatrix {
 public:
  Int nrows = 0;
  Int ncols = 0;
  std::vector<Int> rowptr;     ///< size nrows + 1
  std::vector<Int> colidx;     ///< size nnz
  std::vector<double> values;  ///< size nnz

  CSRMatrix() = default;
  /// Empty matrix of given shape (all-zero rows).
  CSRMatrix(Int rows, Int cols);

  Long nnz() const { return rowptr.empty() ? 0 : Long(rowptr[nrows]); }
  Int row_begin(Int i) const { return rowptr[i]; }
  Int row_end(Int i) const { return rowptr[i + 1]; }
  Int row_nnz(Int i) const { return rowptr[i + 1] - rowptr[i]; }

  /// Value at (i, j), 0 if not stored. Linear scan of the row — test/debug.
  double at(Int i, Int j) const;

  /// Diagonal entry of row i (0 if absent).
  double diag(Int i) const { return at(i, i); }

  /// Sorts column indices (and values) ascending within every row.
  void sort_rows();

  /// True if every row's column indices are sorted ascending.
  bool rows_sorted() const;

  /// Structural invariants: monotone rowptr, in-range column indices.
  /// Throws std::invalid_argument on violation.
  void validate() const;

  /// Solver-entry validation: the structural checks plus everything a
  /// Poisson-like system operator must satisfy — square, every stored value
  /// finite, a nonzero diagonal entry in every row (the smoothers and the
  /// coarse LU divide by it). Throws SolverError(Status::kInvalidInput)
  /// naming the first offending row. `what` labels the matrix in messages.
  void validate_system_matrix(const char* what = "matrix") const;

  /// n x n identity.
  static CSRMatrix identity(Int n);

  /// Builds from (possibly unsorted, possibly duplicated) triplets;
  /// duplicates are summed. Rows come out sorted.
  static CSRMatrix from_triplets(Int rows, Int cols,
                                 std::vector<Triplet> triplets);

  /// Estimated memory footprint in bytes (CSR arrays only).
  std::uint64_t footprint_bytes() const {
    return std::uint64_t(rowptr.size()) * sizeof(Int) +
           std::uint64_t(colidx.size()) * sizeof(Int) +
           std::uint64_t(values.size()) * sizeof(double);
  }
};

/// True when A and B have identical shape/pattern and values match to tol
/// (absolute-or-relative). Rows must be sorted in both.
bool csr_approx_equal(const CSRMatrix& a, const CSRMatrix& b,
                      double tol = 1e-12);

/// True when A and B represent the same operator: patterns may differ by
/// explicit zeros; compares via row-wise accumulation. Rows need not be
/// sorted. Used to compare baseline vs optimized kernels in tests.
bool csr_same_operator(const CSRMatrix& a, const CSRMatrix& b,
                       double tol = 1e-10);

/// Canonical content fingerprint of a CSR matrix — the hierarchy-cache key
/// of the service layer (src/service). Hashes shape plus every row's
/// (column, value) entries in SORTED column order regardless of the stored
/// order, so two equal matrices built in different construction orders
/// (sorted rows vs insertion order) fingerprint identically; -0.0 hashes
/// as +0.0 for the same reason. Duplicate column entries within a row are
/// NOT merged (CSRMatrix::validate rejects none, but from_triplets never
/// produces them); explicit zeros are hashed (they are part of the stored
/// pattern the solver sees). O(nnz), no allocation for sorted rows.
std::uint64_t matrix_fingerprint(const CSRMatrix& a);

}  // namespace hpamg
