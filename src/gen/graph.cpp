#include "gen/graph.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace hpamg {

CSRMatrix circuit_like(Int nx, Int ny, double extra_frac, std::uint64_t seed) {
  const Int n = nx * ny;
  CounterRng rng(seed);
  std::vector<Triplet> trip;
  trip.reserve(std::size_t(n) * 6);
  std::vector<double> diag(n, 0.0);
  auto add_edge = [&](Int a, Int b, double w) {
    trip.push_back({a, b, -w});
    trip.push_back({b, a, -w});
    diag[a] += w;
    diag[b] += w;
  };
  for (Int y = 0; y < ny; ++y)
    for (Int x = 0; x < nx; ++x) {
      const Int i = y * nx + x;
      // Resistor values vary by a couple of decades like real netlists.
      if (x + 1 < nx)
        add_edge(i, i + 1, std::exp(2.3 * (rng.uniform(4 * i) - 0.5)));
      if (y + 1 < ny)
        add_edge(i, i + nx, std::exp(2.3 * (rng.uniform(4 * i + 1) - 0.5)));
      if (rng.uniform(4 * i + 2) < extra_frac) {
        // Medium-range "via": jump up to 8 rows away.
        const Int span = 2 + Int(rng.uniform(4 * i + 3) * 6);
        const Int j = i + span * nx;
        if (j < n) add_edge(i, j, 0.5);
      }
    }
  // Ground a sparse subset of nodes so the Laplacian is nonsingular.
  for (Int i = 0; i < n; i += 97) diag[i] += 1.0;
  for (Int i = 0; i < n; ++i) trip.push_back({i, i, diag[i]});
  return CSRMatrix::from_triplets(n, n, std::move(trip));
}

CSRMatrix thermal_like(Int nx, Int ny, std::uint64_t seed) {
  CounterRng rng(seed);
  // Smooth conductivity gradient (1e-1 .. 1e2) with mild local noise.
  auto coeff = [=](Int x, Int y, Int) {
    const double gx = double(x) / std::max<Int>(nx - 1, 1);
    const double gy = double(y) / std::max<Int>(ny - 1, 1);
    const double grade = std::pow(10.0, 3.0 * (0.5 * gx + 0.5 * gy) - 1.0);
    const double noise =
        std::exp(0.4 * (rng.uniform(std::uint64_t(y) * nx + x) - 0.5));
    return grade * noise;
  };
  CSRMatrix base = lap2d_5pt(nx, ny, 1.0, coeff);
  // Add skew couplings on half of the cells (triangulated elements).
  std::vector<Triplet> trip;
  const Int n = base.nrows;
  trip.reserve(std::size_t(base.nnz()) + std::size_t(n) * 2);
  std::vector<double> diag_add(n, 0.0);
  for (Int y = 0; y + 1 < ny; ++y)
    for (Int x = 0; x + 1 < nx; ++x) {
      const Int i = y * nx + x;
      if (rng.bits(i) & 1) {
        const Int j = i + nx + 1;
        const double w = 0.3 * coeff(x, y, 0);
        trip.push_back({i, j, -w});
        trip.push_back({j, i, -w});
        diag_add[i] += w;
        diag_add[j] += w;
      }
    }
  for (Int i = 0; i < n; ++i)
    for (Int k = base.rowptr[i]; k < base.rowptr[i + 1]; ++k) {
      double v = base.values[k];
      if (base.colidx[k] == i) v += diag_add[i];
      trip.push_back({i, base.colidx[k], v});
    }
  return CSRMatrix::from_triplets(n, n, std::move(trip));
}

CSRMatrix two_cubes_like(Int nx, Int ny, Int nz, std::uint64_t seed) {
  // Two cubic inclusions with a 1000x conductivity jump.
  auto in_cube = [&](Int x, Int y, Int z, double cx, double cy, double cz) {
    const double hx = nx / 6.0, hy = ny / 6.0, hz = nz / 6.0;
    return std::abs(x - cx * nx) < hx && std::abs(y - cy * ny) < hy &&
           std::abs(z - cz * nz) < hz;
  };
  auto coeff = [=](Int x, Int y, Int z) {
    if (in_cube(x, y, z, 0.33, 0.33, 0.5) || in_cube(x, y, z, 0.67, 0.67, 0.5))
      return 1000.0;
    return 1.0;
  };
  CSRMatrix base = lap3d_7pt(nx, ny, nz, 1.0, 1.0, coeff);
  // Shell diagonal couplings near the inclusions push nnz/row toward 9.
  CounterRng rng(seed);
  std::vector<Triplet> trip;
  const Int n = base.nrows;
  std::vector<double> diag_add(n, 0.0);
  for (Int z = 0; z + 1 < nz; ++z)
    for (Int y = 0; y + 1 < ny; ++y)
      for (Int x = 0; x + 1 < nx; ++x) {
        const Int i = grid_index(x, y, z, nx, ny);
        const bool near =
            coeff(x, y, z) != coeff(x + 1, y + 1, z) ||
            coeff(x, y, z) != coeff(x, y + 1, z + 1) || (rng.bits(i) % 3 == 0);
        if (!near) continue;
        const Int j = grid_index(x + 1, y + 1, z, nx, ny);
        const Int k = grid_index(x, y + 1, z + 1, nx, ny);
        for (Int other : {j, k}) {
          const double w = 0.25;
          trip.push_back({i, other, -w});
          trip.push_back({other, i, -w});
          diag_add[i] += w;
          diag_add[other] += w;
        }
      }
  for (Int i = 0; i < n; ++i)
    for (Int k = base.rowptr[i]; k < base.rowptr[i + 1]; ++k) {
      double v = base.values[k];
      if (base.colidx[k] == i) v += diag_add[i];
      trip.push_back({i, base.colidx[k], v});
    }
  return CSRMatrix::from_triplets(n, n, std::move(trip));
}

}  // namespace hpamg
