#include "matrix/permute.hpp"

#include "support/parallel.hpp"

namespace hpamg {

CFPermutation cf_permutation(const CFMarker& cf) {
  const Int n = Int(cf.size());
  CFPermutation p;
  p.perm.resize(n);
  p.inv.resize(n);
  Int nc = 0;
  for (Int i = 0; i < n; ++i)
    if (cf[i] > 0) p.perm[nc++] = i;
  p.ncoarse = nc;
  Int nf = nc;
  for (Int i = 0; i < n; ++i)
    if (cf[i] <= 0) p.perm[nf++] = i;
  for (Int ni = 0; ni < n; ++ni) p.inv[p.perm[ni]] = ni;
  return p;
}

CSRMatrix permute_rows(const CSRMatrix& A, const std::vector<Int>& perm) {
  const Int n = Int(perm.size());
  CSRMatrix B(n, A.ncols);
  for (Int ni = 0; ni < n; ++ni) B.rowptr[ni + 1] = A.row_nnz(perm[ni]);
  exclusive_scan(B.rowptr);
  B.colidx.resize(B.rowptr[n]);
  B.values.resize(B.rowptr[n]);
  parallel_for(0, n, [&](Int ni) {
    const Int oi = perm[ni];
    Int pos = B.rowptr[ni];
    for (Int k = A.rowptr[oi]; k < A.rowptr[oi + 1]; ++k, ++pos) {
      B.colidx[pos] = A.colidx[k];
      B.values[pos] = A.values[k];
    }
  });
  return B;
}

CSRMatrix permute_cols(const CSRMatrix& A, const std::vector<Int>& inv,
                       Int new_ncols) {
  CSRMatrix B = A;
  B.ncols = new_ncols;
  parallel_for(0, Int(B.colidx.size()), [&](Int k) {
    B.colidx[k] = inv[B.colidx[k]];
  });
  return B;
}

CSRMatrix permute_symmetric(const CSRMatrix& A, const CFPermutation& p) {
  require(A.nrows == A.ncols, "permute_symmetric: matrix must be square");
  CSRMatrix B = permute_rows(A, p.perm);
  parallel_for(0, Int(B.colidx.size()), [&](Int k) {
    B.colidx[k] = p.inv[B.colidx[k]];
  });
  return B;
}

std::vector<double> permute_vector(const std::vector<double>& v,
                                   const std::vector<Int>& perm) {
  std::vector<double> out(perm.size());
  parallel_for(0, Int(perm.size()), [&](Int i) { out[i] = v[perm[i]]; });
  return out;
}

RowPartition three_way_partition_rows(
    CSRMatrix& A, const std::function<int(Int, Int, double)>& classify) {
  RowPartition rp;
  rp.ptr1.resize(A.nrows);
  rp.ptr2.resize(A.nrows);
  parallel_for_dynamic(0, A.nrows, [&](Int i) {
    const Int lo = A.rowptr[i], hi = A.rowptr[i + 1];
    // One counting sweep then one placement sweep: O(nnz(row)), no sort.
    Int cnt[3] = {0, 0, 0};
    for (Int k = lo; k < hi; ++k)
      ++cnt[classify(i, A.colidx[k], A.values[k])];
    Int start[3] = {lo, lo + cnt[0], lo + cnt[0] + cnt[1]};
    rp.ptr1[i] = start[1];
    rp.ptr2[i] = start[2];
    std::vector<Int> c(hi - lo);
    std::vector<double> v(hi - lo);
    Int fill[3] = {start[0], start[1], start[2]};
    for (Int k = lo; k < hi; ++k) {
      const int cls = classify(i, A.colidx[k], A.values[k]);
      const Int pos = fill[cls]++ - lo;
      c[pos] = A.colidx[k];
      v[pos] = A.values[k];
    }
    std::copy(c.begin(), c.end(), A.colidx.begin() + lo);
    std::copy(v.begin(), v.end(), A.values.begin() + lo);
  });
  return rp;
}

}  // namespace hpamg
