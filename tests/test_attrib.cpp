// Performance-attribution layer: roofline closed forms (perfmodel/attrib),
// wait-state classification over synthetic traces (support/trace_analyze),
// per-iteration telemetry entries and their JSON round-trip.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/telemetry.hpp"
#include "perfmodel/attrib.hpp"
#include "perfmodel/network.hpp"
#include "support/metrics.hpp"
#include "support/report.hpp"
#include "support/trace_analyze.hpp"

namespace hpamg {
namespace {

// A model with no branch term and a huge flop roof, so modeled time is
// exactly bytes / (stream_bw * sparse_efficiency) — hand-computable.
MachineModel flat_model() {
  MachineModel m;
  m.name = "test";
  m.stream_bw_bytes_per_s = 20e9;
  m.sparse_efficiency = 0.5;
  m.peak_flops = 1e15;
  m.branch_miss_cost_s = 0.0;
  return m;
}

TEST(Attrib, RooflineClosedForm) {
  attrib::reset();
  WorkCounters wc;
  wc.flops = 1000;
  wc.bytes_read = 6'000'000;
  attrib::record("spmv", 0, 1e-3, wc);
  const auto snap = attrib::snapshot(flat_model());
  ASSERT_EQ(snap.size(), 1u);
  const RooflineEntry& e = snap[0];
  EXPECT_EQ(e.kernel, "spmv");
  EXPECT_EQ(e.level, 0);
  EXPECT_EQ(e.calls, 1);
  // achieved = 6e6 B / 1e-3 s = 6 GB/s; roof = 20e9 * 0.5 = 10 GB/s.
  EXPECT_NEAR(e.achieved_bw_bytes_per_s, 6e9, 1.0);
  EXPECT_NEAR(e.bw_fraction, 0.6, 1e-12);
  // modeled = 6e6 / 10e9 = 6e-4 s; efficiency = 6e-4 / 1e-3 = 0.6.
  EXPECT_NEAR(e.modeled_seconds, 6e-4, 1e-15);
  EXPECT_NEAR(e.efficiency, 0.6, 1e-12);
  attrib::reset();
}

TEST(Attrib, FractionsClampedIntoUnitInterval) {
  attrib::reset();
  WorkCounters wc;
  wc.bytes_read = 1'000'000'000;  // 1 GB in 1 us: impossibly fast
  attrib::record("too_fast", -1, 1e-6, wc);
  const auto snap = attrib::snapshot(flat_model());
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].bw_fraction, 1.0);
  EXPECT_DOUBLE_EQ(snap[0].efficiency, 1.0);
  attrib::reset();
}

TEST(Attrib, DegenerateCellsOmitted) {
  attrib::reset();
  WorkCounters none;
  attrib::record("no_bytes", 0, 1e-3, none);  // zero traffic
  WorkCounters wc;
  wc.bytes_read = 100;
  attrib::record("no_time", 0, 0.0, wc);  // unmeasurably fast
  EXPECT_TRUE(attrib::snapshot(flat_model()).empty());
  attrib::reset();
}

TEST(Attrib, CallsAccumulateAcrossRecords) {
  attrib::reset();
  WorkCounters wc;
  wc.bytes_read = 1000;
  attrib::record("k", 2, 1e-3, wc);
  attrib::record("k", 2, 1e-3, wc);
  attrib::record("k", 3, 1e-3, wc);
  const auto snap = attrib::snapshot(flat_model());
  ASSERT_EQ(snap.size(), 2u);
  long calls = 0;
  std::uint64_t bytes = 0;
  for (const auto& e : snap) {
    calls += e.calls;
    bytes += e.bytes;
  }
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(bytes, 3000u);
  attrib::reset();
}

TEST(Attrib, CalibrationLoaderAppliesOnlyGivenKeys) {
  MachineModel mm = flat_model();
  NetworkModel nm;
  const double old_setup = nm.setup_cost_s;
  std::string err;
  ASSERT_TRUE(attrib::load_calibration_json(
      R"({"machine": {"stream_bw_bytes_per_s": 42e9},
          "network": {"overhead_s": 1e-6}})",
      &mm, &nm, &err))
      << err;
  EXPECT_DOUBLE_EQ(mm.stream_bw_bytes_per_s, 42e9);
  EXPECT_DOUBLE_EQ(mm.peak_flops, 1e15);     // untouched
  EXPECT_DOUBLE_EQ(nm.overhead_s, 1e-6);
  EXPECT_DOUBLE_EQ(nm.setup_cost_s, old_setup);  // untouched
}

TEST(Attrib, CalibrationLoaderRejectsBadInput) {
  MachineModel mm = flat_model();
  std::string err;
  EXPECT_FALSE(attrib::load_calibration_json("not json", &mm, nullptr, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(attrib::load_calibration_json(
      R"({"machine": {"stream_bw_bytes_per_s": -1}})", &mm, nullptr, &err));
  EXPECT_FALSE(attrib::load_calibration_json(
      R"({"machine": {"stream_bw_bytes_per_s": "fast"}})", &mm, nullptr,
      &err));
  // Models untouched by the failed loads.
  EXPECT_DOUBLE_EQ(mm.stream_bw_bytes_per_s, 20e9);
}

// ---------------------------------------------------------------------------
// Wait-state classification on synthetic traces.
// ---------------------------------------------------------------------------

void expect_buckets_sum(const trace_analyze::RankWait& r) {
  const double sum = r.late_sender_us + r.late_receiver_us +
                     r.wait_collective_us + r.transfer_us + r.unattributed_us;
  EXPECT_NEAR(sum, r.blocked_us, 1e-9) << "rank " << r.pid;
}

TEST(TraceAnalyze, LateSenderClassified) {
  // rank 0 posts a recv at t=100 that only completes at t=185 because the
  // sender (rank 1) computes until t=180: 80 us late-sender wait, 20 us
  // transfer+completion inside the recv span.
  const char* trace = R"({"traceEvents":[
    {"ph":"M","pid":0,"name":"process_name","args":{"name":"rank 0"}},
    {"ph":"M","pid":1,"name":"process_name","args":{"name":"rank 1"}},
    {"ph":"X","name":"solve","cat":"phase","pid":0,"tid":0,"ts":0,"dur":200},
    {"ph":"X","name":"mpi.recv","cat":"blocked","pid":0,"tid":0,"ts":100,"dur":100},
    {"ph":"f","id":1,"pid":0,"tid":0,"ts":185},
    {"ph":"X","name":"work","cat":"kernel","pid":1,"tid":0,"ts":0,"dur":180},
    {"ph":"X","name":"mpi.send","cat":"comm","pid":1,"tid":0,"ts":180,"dur":5},
    {"ph":"s","id":1,"pid":1,"tid":0,"ts":180,"args":{"bytes":64}}
  ],"otherData":{}})";
  const auto an = trace_analyze::analyze(
      trace_analyze::parse_timeline_text(trace));
  ASSERT_EQ(an.ranks.size(), 2u);
  const auto& r0 = an.ranks[0];
  EXPECT_EQ(r0.name, "rank 0");
  EXPECT_NEAR(r0.blocked_us, 100.0, 1e-9);
  EXPECT_NEAR(r0.late_sender_us, 80.0, 1e-9);
  EXPECT_NEAR(r0.transfer_us, 20.0, 1e-9);
  EXPECT_NEAR(r0.unattributed_us, 0.0, 1e-9);
  expect_buckets_sum(r0);
  // rank 1 never blocks: its send is buffered ("comm" category).
  const auto& r1 = an.ranks[1];
  EXPECT_NEAR(r1.blocked_us, 0.0, 1e-9);
  EXPECT_NEAR(r1.compute_us, 185.0, 1e-9);
  EXPECT_EQ(an.unmatched_flows, 0);
  EXPECT_FALSE(an.critical_path.empty());
}

TEST(TraceAnalyze, LateReceiverClassified) {
  // A synchronous send on rank 0 blocks from t=0; the receiver only posts
  // its recv at t=40 (flow_in timestamp): 40 us late-receiver, 10 us
  // transfer. (simmpi sends are buffered, so this shape only appears in
  // synthetic or foreign traces — which is exactly what the classifier
  // must handle.)
  const char* trace = R"({"traceEvents":[
    {"ph":"X","name":"mpi.send","cat":"blocked","pid":0,"tid":0,"ts":0,"dur":50},
    {"ph":"s","id":2,"pid":0,"tid":0,"ts":0,"args":{"bytes":4096}},
    {"ph":"X","name":"mpi.recv","cat":"blocked","pid":1,"tid":0,"ts":40,"dur":5},
    {"ph":"f","id":2,"pid":1,"tid":0,"ts":40}
  ],"otherData":{}})";
  const auto an = trace_analyze::analyze(
      trace_analyze::parse_timeline_text(trace));
  ASSERT_EQ(an.ranks.size(), 2u);
  const auto& r0 = an.ranks[0];
  EXPECT_NEAR(r0.late_receiver_us, 40.0, 1e-9);
  EXPECT_NEAR(r0.transfer_us, 10.0, 1e-9);
  expect_buckets_sum(r0);
  // The recv on rank 1 sees a send timestamp before its own post: zero
  // late-sender wait, all 5 us transfer.
  const auto& r1 = an.ranks[1];
  EXPECT_NEAR(r1.late_sender_us, 0.0, 1e-9);
  EXPECT_NEAR(r1.transfer_us, 5.0, 1e-9);
  expect_buckets_sum(r1);
}

TEST(TraceAnalyze, CollectiveImbalanceAndUnalignedInstance) {
  // The aligned allreduce pair: rank 0 enters at t=20, rank 1 (the
  // straggler) at t=100 -> rank 0 charges 80 us wait-at-collective and
  // 20 us operation. Rank 0 also has an older allreduce with no partner
  // instance: unattributed, never smeared into the wait buckets.
  const char* trace = R"({"traceEvents":[
    {"ph":"X","name":"mpi.allreduce","cat":"blocked","pid":0,"tid":0,"ts":0,"dur":10},
    {"ph":"X","name":"mpi.allreduce","cat":"blocked","pid":0,"tid":0,"ts":20,"dur":100},
    {"ph":"X","name":"mpi.allreduce","cat":"blocked","pid":1,"tid":0,"ts":100,"dur":20}
  ],"otherData":{}})";
  const auto an = trace_analyze::analyze(
      trace_analyze::parse_timeline_text(trace));
  ASSERT_EQ(an.ranks.size(), 2u);
  const auto& r0 = an.ranks[0];
  EXPECT_NEAR(r0.wait_collective_us, 80.0, 1e-9);
  EXPECT_NEAR(r0.transfer_us, 20.0, 1e-9);
  EXPECT_NEAR(r0.unattributed_us, 10.0, 1e-9);
  EXPECT_NEAR(r0.blocked_us, 110.0, 1e-9);
  expect_buckets_sum(r0);
  const auto& r1 = an.ranks[1];
  EXPECT_NEAR(r1.wait_collective_us, 0.0, 1e-9);
  EXPECT_NEAR(r1.transfer_us, 20.0, 1e-9);
  expect_buckets_sum(r1);
}

TEST(TraceAnalyze, UnmatchedFlowGoesUnattributed) {
  // A recv whose arrow lost its send side (ring wraparound): the blocked
  // time must land in unattributed, keeping the sum invariant.
  const char* trace = R"({"traceEvents":[
    {"ph":"X","name":"mpi.recv","cat":"blocked","pid":0,"tid":0,"ts":0,"dur":30},
    {"ph":"f","id":9,"pid":0,"tid":0,"ts":25}
  ],"otherData":{}})";
  const auto an = trace_analyze::analyze(
      trace_analyze::parse_timeline_text(trace));
  ASSERT_EQ(an.ranks.size(), 1u);
  EXPECT_EQ(an.unmatched_flows, 1);
  EXPECT_NEAR(an.ranks[0].unattributed_us, 30.0, 1e-9);
  expect_buckets_sum(an.ranks[0]);
}

TEST(TraceAnalyze, KernelImbalanceRanksWorstFirst) {
  const char* trace = R"({"traceEvents":[
    {"ph":"X","name":"gs","cat":"kernel","pid":0,"tid":0,"ts":0,"dur":10},
    {"ph":"X","name":"gs","cat":"kernel","pid":1,"tid":0,"ts":0,"dur":30},
    {"ph":"X","name":"spmv","cat":"kernel","pid":0,"tid":0,"ts":20,"dur":10},
    {"ph":"X","name":"spmv","cat":"kernel","pid":1,"tid":0,"ts":40,"dur":10}
  ],"otherData":{}})";
  const auto an = trace_analyze::analyze(
      trace_analyze::parse_timeline_text(trace));
  ASSERT_FALSE(an.kernels.empty());
  EXPECT_EQ(an.kernels[0].kernel, "gs");  // max/avg = 30/20 = 1.5
  EXPECT_NEAR(an.kernels[0].imbalance, 1.5, 1e-9);
  EXPECT_EQ(an.kernels[0].max_pid, 1);
  EXPECT_EQ(an.kernels[0].ranks, 2);
}

TEST(TraceAnalyze, RejectsNonTraceJson) {
  EXPECT_THROW(trace_analyze::parse_timeline_text(R"({"runs": []})"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Telemetry entries and the report JSON round-trip.
// ---------------------------------------------------------------------------

TEST(Telemetry, IterationEntryClosedForm) {
  CycleTelemetryHook hook;
  hook.begin_cycle(3);
  hook.add(0, 0.5);
  hook.add(2, 0.25);
  hook.add(7, 1.0);  // out of range: ignored, not UB
  hook.presmooth_norm2 = 4.0;  // ||r|| = 2
  const IterationReportEntry e =
      make_iteration_entry(3, 0.01, 0.1, 0.75, 10.0, &hook);
  EXPECT_EQ(e.iteration, 3);
  EXPECT_DOUBLE_EQ(e.relres, 0.01);
  EXPECT_NEAR(e.conv_factor, 0.1, 1e-12);  // 0.01 / 0.1
  EXPECT_DOUBLE_EQ(e.seconds, 0.75);
  ASSERT_EQ(e.level_seconds.size(), 3u);
  EXPECT_DOUBLE_EQ(e.level_seconds[0], 0.5);
  EXPECT_DOUBLE_EQ(e.level_seconds[1], 0.0);
  EXPECT_DOUBLE_EQ(e.level_seconds[2], 0.25);
  // presmooth relres = sqrt(4)/10 = 0.2; contraction = 0.2/0.1 = 2 (the
  // smoother diverged this iteration — still reported faithfully).
  EXPECT_NEAR(e.presmooth_relres, 0.2, 1e-12);
  EXPECT_NEAR(e.smoother_contraction, 2.0, 1e-12);
  // Unknown previous residual: factor pinned to 0, smoother fields unset.
  const IterationReportEntry first =
      make_iteration_entry(1, 0.5, 0.0, 0.1, 10.0, nullptr);
  EXPECT_DOUBLE_EQ(first.conv_factor, 0.0);
  EXPECT_LT(first.presmooth_relres, 0.0);
}

TEST(Telemetry, ReportJsonRoundTrip) {
  SolveReport sr;
  sr.solver = "amg";
  sr.variant = "optimized";
  RooflineEntry re;
  re.kernel = "smoother";
  re.level = 1;
  re.calls = 4;
  re.seconds = 0.5;
  re.flops = 100;
  re.bytes = 2000;
  re.achieved_bw_bytes_per_s = 4000.0;
  re.modeled_seconds = 0.1;
  re.bw_fraction = 0.25;
  re.efficiency = 0.2;
  sr.roofline.push_back(re);
  IterationReportEntry it1;
  it1.iteration = 1;
  it1.relres = 0.5;
  it1.conv_factor = 0.5;
  it1.seconds = 0.25;
  it1.level_seconds = {0.2, 0.05};
  sr.iterations.push_back(it1);  // presmooth fields unset -> omitted
  IterationReportEntry it2 = it1;
  it2.iteration = 2;
  it2.relres = 0.05;
  it2.conv_factor = 0.1;
  it2.presmooth_relres = 0.25;
  it2.smoother_contraction = 0.5;
  sr.iterations.push_back(it2);

  JsonWriter w;
  sr.write_json(w);
  const JsonValue doc = json_parse(w.str());

  const JsonValue* roof = doc.find("roofline");
  ASSERT_NE(roof, nullptr);
  ASSERT_EQ(roof->items.size(), 1u);
  EXPECT_EQ(roof->items[0].find("kernel")->text, "smoother");
  EXPECT_DOUBLE_EQ(roof->items[0].find("bw_fraction")->number, 0.25);
  EXPECT_DOUBLE_EQ(roof->items[0].find("efficiency")->number, 0.2);
  EXPECT_DOUBLE_EQ(roof->items[0].find("bytes")->number, 2000.0);

  const JsonValue* its = doc.find("iterations");
  ASSERT_NE(its, nullptr);
  ASSERT_EQ(its->items.size(), 2u);
  EXPECT_EQ(its->items[0].find("presmooth_relres"), nullptr);
  ASSERT_NE(its->items[1].find("presmooth_relres"), nullptr);
  EXPECT_DOUBLE_EQ(its->items[1].find("presmooth_relres")->number, 0.25);
  EXPECT_DOUBLE_EQ(its->items[1].find("conv_factor")->number, 0.1);
  ASSERT_EQ(its->items[1].find("level_seconds")->items.size(), 2u);
}

TEST(Telemetry, EmptyBlocksNotEmitted) {
  SolveReport sr;
  sr.solver = "amg";
  sr.variant = "baseline";
  JsonWriter w;
  sr.write_json(w);
  const JsonValue doc = json_parse(w.str());
  EXPECT_EQ(doc.find("roofline"), nullptr);
  EXPECT_EQ(doc.find("iterations"), nullptr);
}

TEST(Metrics, WaitAndPerfGaugesPublished) {
  metrics::reset();
  metrics::enable();
  attrib::reset();
  WorkCounters wc;
  wc.bytes_read = 1'000'000;
  attrib::record("spmv", 0, 1e-3, wc);
  attrib::publish_metrics(attrib::snapshot(flat_model()));
  EXPECT_GT(metrics::gauge("perf.kernel.spmv.seconds").value(), 0.0);
  EXPECT_GT(metrics::gauge("perf.kernel.spmv.bw_fraction").value(), 0.0);

  const char* trace = R"({"traceEvents":[
    {"ph":"X","name":"mpi.recv","cat":"blocked","pid":0,"tid":0,"ts":0,"dur":30},
    {"ph":"f","id":9,"pid":0,"tid":0,"ts":25}
  ],"otherData":{}})";
  trace_analyze::publish_metrics(
      trace_analyze::analyze(trace_analyze::parse_timeline_text(trace)));
  EXPECT_NEAR(metrics::gauge("comm.wait.blocked_s").value(), 30e-6, 1e-12);
  EXPECT_NEAR(metrics::gauge("comm.wait.unattributed_s").value(), 30e-6,
              1e-12);
  attrib::reset();
  metrics::reset();
  metrics::disable();
}

}  // namespace
}  // namespace hpamg
