// BLAS1-style dense vector kernels (parallel). These are the "BLAS1" bar in
// the paper's Fig 5 breakdown: scaling, axpy, inner products, norms.
#pragma once

#include <vector>

#include "support/common.hpp"
#include "support/counters.hpp"

namespace hpamg {

using Vector = std::vector<double>;

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y, WorkCounters* wc = nullptr);

/// y = x + beta * y
void xpby(const Vector& x, double beta, Vector& y, WorkCounters* wc = nullptr);

/// x *= alpha
void scale(double alpha, Vector& x, WorkCounters* wc = nullptr);

/// <x, y>
double dot(const Vector& x, const Vector& y, WorkCounters* wc = nullptr);

/// ||x||_2
double norm2(const Vector& x, WorkCounters* wc = nullptr);

/// x = 0
void set_zero(Vector& x);

/// dst = src (parallel copy)
void copy(const Vector& src, Vector& dst);

/// max_i |x_i|
double norm_inf(const Vector& x);

}  // namespace hpamg
