// Tests for the metrics registry (support/metrics.hpp), the memory
// accounting embedded in solver reports, and the bench-regression diff
// (support/report_diff.hpp) behind bench/benchdiff.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "amg/solver.hpp"
#include "dist/simmpi.hpp"
#include "gen/stencil.hpp"
#include "support/metrics.hpp"
#include "support/report.hpp"
#include "support/report_diff.hpp"

using namespace hpamg;

namespace {

/// Restores the registry's disabled default even when a test fails.
struct MetricsOff {
  ~MetricsOff() { metrics::disable(); }
};

}  // namespace

TEST(MetricsRegistry, DisabledSitesRecordNothing) {
  MetricsOff off;
  metrics::disable();
  metrics::Counter& c = metrics::counter("test.disabled_counter");
  metrics::Gauge& g = metrics::gauge("test.disabled_gauge");
  metrics::Histogram& h = metrics::histogram("test.disabled_hist");
  c.reset();
  g.reset();
  h.reset();
  c.add(5);
  g.set(3.0);
  h.observe(17);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  metrics::enable();
  c.add(5);
  g.set(3.0);
  h.observe(17);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(g.value(), 3.0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, FindOrCreateIsStable) {
  metrics::Counter& a = metrics::counter("test.same_name");
  metrics::Counter& b = metrics::counter("test.same_name");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, ConcurrentCountsAreExact) {
  MetricsOff off;
  metrics::enable();
  metrics::Counter& c = metrics::counter("test.concurrent_counter");
  metrics::Histogram& h = metrics::histogram("test.concurrent_hist");
  c.reset();
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        h.observe(std::uint64_t(t));
      }
    });
  for (std::thread& t : ts) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kIters);
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kIters);
  // Threads 2 and 3 both land in bucket [2,4).
  EXPECT_EQ(h.bucket(metrics::Histogram::bucket_of(2)), 2u * kIters);
}

TEST(MetricsRegistry, SnapshotHistogramCountMatchesBucketsUnderLoad) {
  // The snapshot must be internally consistent: its `count` is derived
  // from one pass over the buckets, so count == Σ buckets holds in every
  // snapshot even while writers observe concurrently. (Reading count and
  // buckets independently produced torn pairs — a sampler thread scraping
  // mid-solve would see count != Σ buckets and emit a Prometheus
  // histogram whose +Inf bucket disagrees with _count.)
  MetricsOff off;
  metrics::enable();
  metrics::Histogram& h = metrics::histogram("test.snapshot_consistency");
  h.reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed))
      h.observe_always(v = (v * 2862933555777941757ull + 3037000493ull));
  });
  for (int i = 0; i < 200; ++i) {
    const metrics::Snapshot snap = metrics::snapshot();
    for (const metrics::HistogramSnapshot& hs : snap.histograms) {
      std::uint64_t total = 0;
      for (std::uint64_t b : hs.buckets) total += b;
      EXPECT_EQ(hs.count, total) << hs.name << " snapshot " << i;
    }
  }
  stop.store(true);
  writer.join();
}

TEST(MetricsHistogram, BucketBoundaries) {
  using H = metrics::Histogram;
  EXPECT_EQ(H::bucket_of(0), 0);
  EXPECT_EQ(H::bucket_of(1), 1);
  EXPECT_EQ(H::bucket_of(2), 2);  // [2, 4)
  EXPECT_EQ(H::bucket_of(3), 2);
  EXPECT_EQ(H::bucket_of(4), 3);  // [4, 8)
  EXPECT_EQ(H::bucket_of(~std::uint64_t(0)), H::kBuckets - 1);
  for (int b = 0; b < H::kBuckets - 1; ++b) {
    EXPECT_EQ(H::bucket_of(H::bucket_floor(b)), b);
    if (b >= 1)
      EXPECT_EQ(H::bucket_of(2 * H::bucket_floor(b) - 1), b)
          << "upper edge of bucket " << b;
  }
}

TEST(MetricsHistogram, SimmpiBucketsClassifyEagerLimitExactly) {
  // The rendezvous classification in perfmodel/network.cpp relies on the
  // 16 KiB eager limit being a bucket boundary: bucket-floor >= limit must
  // agree with per-message bytes >= limit.
  const std::uint64_t limit = 16384;
  for (std::uint64_t bytes : {std::uint64_t(1), std::uint64_t(16383),
                              std::uint64_t(16384), std::uint64_t(16385),
                              std::uint64_t(1) << 20}) {
    const int b = simmpi::msg_size_bucket(bytes);
    EXPECT_EQ(simmpi::msg_size_bucket_floor(b) >= limit, bytes >= limit)
        << "bytes=" << bytes;
  }
}

TEST(MetricsAlloc, CountingAllocatorMatchesHandComputedBytes) {
  metrics::reset_alloc_stats();
  const metrics::AllocStats before =
      metrics::alloc_stats(metrics::MemTag::kInterp);
  {
    metrics::MemTagScope scope(metrics::MemTag::kInterp);
    metrics::CountedVector<double> v(1000, 0.0);
    const metrics::AllocStats during =
        metrics::alloc_stats(metrics::MemTag::kInterp);
    EXPECT_EQ(during.live_bytes - before.live_bytes, 1000u * sizeof(double));
    EXPECT_GE(during.peak_bytes, 1000u * sizeof(double));
    EXPECT_EQ(during.allocs - before.allocs, 1u);
  }
  const metrics::AllocStats after =
      metrics::alloc_stats(metrics::MemTag::kInterp);
  EXPECT_EQ(after.live_bytes, before.live_bytes);  // freed on destruction
  EXPECT_EQ(after.total_bytes - before.total_bytes, 1000u * sizeof(double));
}

TEST(MetricsAlloc, TagScopeNestsAndRestores) {
  metrics::reset_alloc_stats();
  EXPECT_EQ(metrics::current_mem_tag(), metrics::MemTag::kGeneral);
  {
    metrics::MemTagScope outer(metrics::MemTag::kOperator);
    EXPECT_EQ(metrics::current_mem_tag(), metrics::MemTag::kOperator);
    {
      metrics::MemTagScope inner(metrics::MemTag::kWorkspace);
      EXPECT_EQ(metrics::current_mem_tag(), metrics::MemTag::kWorkspace);
      metrics::CountedVector<int> v(64);
      (void)v;
    }
    EXPECT_EQ(metrics::current_mem_tag(), metrics::MemTag::kOperator);
  }
  EXPECT_EQ(metrics::current_mem_tag(), metrics::MemTag::kGeneral);
  EXPECT_GE(metrics::alloc_stats(metrics::MemTag::kWorkspace).total_bytes,
            64u * sizeof(int));
  EXPECT_EQ(metrics::alloc_stats(metrics::MemTag::kOperator).total_bytes, 0u);
}

TEST(MetricsRss, PeakIsPositiveAndMonotonic) {
  const std::uint64_t peak1 = metrics::peak_rss_bytes();
  EXPECT_GT(peak1, 0u);
  // Touch ~32 MB so the high-water mark cannot shrink below it.
  std::vector<char> block(32u << 20, 1);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = char(i);
  const std::uint64_t peak2 = metrics::peak_rss_bytes();
  EXPECT_GE(peak2, peak1);
  EXPECT_GE(peak2, metrics::current_rss_bytes() / 2);  // same order
}

TEST(MetricsJson, EnvelopeRoundTripsThroughReport) {
  MetricsOff off;
  metrics::enable();
  metrics::counter("test.rt_counter").reset();
  metrics::counter("test.rt_counter").add(42);
  metrics::gauge("test.rt_gauge").set(2.5);
  metrics::Histogram& h = metrics::histogram("test.rt_hist");
  h.reset();
  h.observe(3);
  h.observe(1000);

  BenchReport rep("roundtrip");
  rep.set_param("scale", 0.5);
  rep.add_run("only").metric("total_seconds", 1.0);
  MetricsEnvelope env;
  env.threads = 4;
  env.build = "release";
  env.compiler = "testc";
  env.peak_rss_bytes = metrics::peak_rss_bytes();
  env.net_overhead_s = 1e-6;
  env.net_peak_bw_bytes_per_s = 1e9;
  env.net_setup_cost_s = 2e-6;
  env.net_rendezvous_extra_s = 3e-6;
  env.net_eager_limit_bytes = 16384;
  env.registry = metrics::snapshot();
  rep.set_metrics(env);

  const std::string json = rep.to_json();
  EXPECT_EQ(validate_bench_report_json(json, false, true), "");

  const JsonValue doc = json_parse(json);
  const JsonValue* m = doc.find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->find("threads")->number, 4.0);
  EXPECT_EQ(m->find("build")->text, "release");
  EXPECT_EQ(m->find("counters")->find("test.rt_counter")->number, 42.0);
  EXPECT_EQ(m->find("gauges")->find("test.rt_gauge")->number, 2.5);
  const JsonValue* hj = m->find("histograms")->find("test.rt_hist");
  ASSERT_NE(hj, nullptr);
  EXPECT_EQ(hj->find("count")->number, 2.0);
  EXPECT_EQ(hj->find("sum")->number, 1003.0);
  EXPECT_EQ(m->find("net")->find("eager_limit_bytes")->number, 16384.0);
}

// ------------------------------------------------------------------------
// Solver memory audit (Table 2 acceptance: report totals vs hand-computed
// CSR footprints)
// ------------------------------------------------------------------------

namespace {

std::uint64_t csr_bytes(const CSRMatrix& m) {
  return std::uint64_t(m.rowptr.size()) * sizeof(Int) +
         std::uint64_t(m.colidx.size()) * sizeof(Int) +
         std::uint64_t(m.values.size()) * sizeof(double);
}

}  // namespace

TEST(MemoryReport, LevelBytesMatchHandComputedCsrFootprints) {
  CSRMatrix A = lap2d_5pt(48, 48);
  AMGOptions o;
  o.variant = Variant::kOptimized;
  AMGSolver amg(A, o);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult sr = amg.solve(b, x, 1e-8, 100);
  ASSERT_TRUE(sr.converged);
  SolveReport rep = amg.report(&sr);
  ASSERT_TRUE(rep.has_memory);
  const Hierarchy& h = amg.hierarchy();
  ASSERT_EQ(rep.levels.size(), h.levels.size());

  std::uint64_t hand_setup = 0, sum_setup = 0, sum_workspace = 0;
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const Level& lvl = h.levels[l];
    const std::uint64_t hand_op = csr_bytes(lvl.A);
    const std::uint64_t hand_interp =
        csr_bytes(lvl.P) + csr_bytes(lvl.Pf) + csr_bytes(lvl.PfT);
    // Operator and interpolation bytes are analytic CSR footprints, so
    // they must match a hand computation exactly; the acceptance bound of
    // 10% is checked below on the totals (which add smoother plans).
    EXPECT_EQ(rep.levels[l].operator_bytes, hand_op) << "level " << l;
    EXPECT_EQ(rep.levels[l].interp_bytes, hand_interp) << "level " << l;
    hand_setup += hand_op + hand_interp;
    sum_setup += rep.levels[l].operator_bytes + rep.levels[l].interp_bytes +
                 rep.levels[l].smoother_bytes;
    sum_workspace += rep.levels[l].workspace_bytes;
    EXPECT_GT(rep.levels[l].workspace_bytes, 0u) << "level " << l;
  }
  // Totals are exactly the per-level sums...
  EXPECT_EQ(rep.memory.setup_bytes, sum_setup);
  EXPECT_EQ(rep.memory.solve_bytes, sum_setup + sum_workspace);
  // ...and the smoother plans add bounded overhead over the matrix
  // storage: setup total within [hand, 1.5*hand], i.e. the CSR share is
  // what dominates and the audit is within 10% once smoother bytes (also
  // analytic) are included, which the equality above asserts exactly.
  EXPECT_GE(rep.memory.setup_bytes, hand_setup);
  const double rel = double(rep.memory.setup_bytes - hand_setup) /
                     double(rep.memory.setup_bytes);
  EXPECT_LT(rel, 0.5) << "smoother plans should not dominate storage";
  EXPECT_GT(rep.memory.peak_rss_bytes, 0u);
}

// ------------------------------------------------------------------------
// benchdiff verdicts on synthetic report pairs
// ------------------------------------------------------------------------

namespace {

struct FakeMetric {
  std::string key;
  double value;
};

std::string make_report(double scale,
                        const std::vector<FakeMetric>& run_metrics,
                        const std::string& bench = "synthetic") {
  BenchReport rep(bench);
  rep.set_param("scale", scale);
  BenchReport::Run& r = rep.add_run("case");
  for (const FakeMetric& m : run_metrics) r.metric(m.key, m.value);
  return rep.to_json();
}

}  // namespace

TEST(BenchDiff, IdenticalReportsPass) {
  const std::string j =
      make_report(0.01, {{"total_seconds", 1.0}, {"iterations", 12.0}});
  const DiffResult res = diff_bench_reports(j, j);
  EXPECT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.regressions, 0);
  EXPECT_EQ(res.missing, 0);
}

TEST(BenchDiff, TimingRegressionBeyondToleranceFails) {
  const std::string a = make_report(0.01, {{"total_seconds", 1.0}});
  const std::string b = make_report(0.01, {{"total_seconds", 1.8}});
  const DiffResult res = diff_bench_reports(a, b);  // tol 0.5 -> 1.8 fails
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
  ASSERT_FALSE(res.deltas.empty());
  EXPECT_EQ(res.deltas[0].verdict, MetricDelta::Verdict::kRegressed);
  EXPECT_EQ(res.deltas[0].cls, MetricClass::kTiming);
}

TEST(BenchDiff, ImprovementPassesAndIsCounted) {
  const std::string a = make_report(0.01, {{"total_seconds", 1.0}});
  const std::string b = make_report(0.01, {{"total_seconds", 0.4}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.improvements, 1);
}

TEST(BenchDiff, SubFloorTimingNoiseNeverGates) {
  // 10x regression, but both sides below the 50 ms floor: smoke-scale
  // noise, not a signal.
  const std::string a = make_report(0.01, {{"total_seconds", 0.002}});
  const std::string b = make_report(0.01, {{"total_seconds", 0.020}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.regressions, 0);
}

TEST(BenchDiff, WorkCounterRegressionFails) {
  const std::string a = make_report(0.01, {{"iterations", 10.0}});
  const std::string b = make_report(0.01, {{"iterations", 14.0}});
  const DiffResult res = diff_bench_reports(a, b);  // tol 0.25 -> 1.4x fails
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
  EXPECT_EQ(res.deltas[0].cls, MetricClass::kWork);
}

TEST(BenchDiff, InfoMetricsNeverGate) {
  const std::string a = make_report(0.01, {{"speedup_measured", 2.0}});
  const std::string b = make_report(0.01, {{"speedup_measured", 0.5}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_TRUE(res.ok());
}

TEST(BenchDiff, MissingMetricFails) {
  const std::string a =
      make_report(0.01, {{"total_seconds", 1.0}, {"iterations", 10.0}});
  const std::string b = make_report(0.01, {{"total_seconds", 1.0}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.missing, 1);
}

TEST(BenchDiff, AddedMetricIsInformational) {
  const std::string a = make_report(0.01, {{"total_seconds", 1.0}});
  const std::string b =
      make_report(0.01, {{"total_seconds", 1.0}, {"iterations", 10.0}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.added, 1);
}

TEST(BenchDiff, EnvelopePerfGaugesAreAdvisory) {
  auto with_gauges = [](std::vector<std::pair<std::string, double>> gauges) {
    BenchReport rep("synthetic");
    rep.set_param("scale", 0.01);
    rep.add_run("case").metric("total_seconds", 1.0);
    MetricsEnvelope m;
    m.threads = 1;
    m.build = "release";
    m.registry.gauges = std::move(gauges);
    rep.set_metrics(std::move(m));
    return rep.to_json();
  };
  // Efficiency halves, one kernel's gauge vanishes, another appears: all
  // advisory — no regression, no missing. Non-perf gauges are not diffed.
  const std::string a = with_gauges({{"comm.wait.blocked_s", 0.5},
                                     {"perf.kernel.gone.efficiency", 0.9},
                                     {"perf.kernel.spmv.efficiency", 0.8}});
  const std::string b = with_gauges({{"perf.kernel.new.bw_fraction", 0.2},
                                     {"perf.kernel.spmv.efficiency", 0.4}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.missing, 0);
  int envelope_rows = 0;
  bool saw_ok = false, saw_added = false;
  for (const MetricDelta& d : res.deltas) {
    if (!d.run.empty()) continue;
    ++envelope_rows;
    EXPECT_EQ(d.cls, MetricClass::kInfo);
    EXPECT_EQ(d.key.rfind("perf.", 0), 0u) << d.key;
    if (d.verdict == MetricDelta::Verdict::kOk) saw_ok = true;
    if (d.verdict == MetricDelta::Verdict::kAdded) saw_added = true;
  }
  EXPECT_EQ(envelope_rows, 2);  // spmv (both sides) + new-only; gone skipped
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(saw_added);
}

TEST(BenchDiff, ParamMismatchIsAnErrorNotARegression) {
  const std::string a = make_report(0.01, {{"total_seconds", 1.0}});
  const std::string b = make_report(0.02, {{"total_seconds", 1.0}});
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_FALSE(res.error.empty());
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.deltas.empty());
}

TEST(BenchDiff, BenchNameMismatchIsAnError) {
  const std::string a = make_report(0.01, {{"total_seconds", 1.0}}, "x");
  const std::string b = make_report(0.01, {{"total_seconds", 1.0}}, "y");
  const DiffResult res = diff_bench_reports(a, b);
  EXPECT_FALSE(res.error.empty());
}

TEST(BenchDiff, ClassifyMetricKeys) {
  EXPECT_EQ(classify_metric("metrics.setup_seconds"), MetricClass::kTiming);
  EXPECT_EQ(classify_metric("phases.setup.RAP"), MetricClass::kTiming);
  EXPECT_EQ(classify_metric("metrics.rap_s"), MetricClass::kTiming);
  EXPECT_EQ(classify_metric("convergence.iterations"), MetricClass::kWork);
  EXPECT_EQ(classify_metric("counters.setup.flops"), MetricClass::kWork);
  EXPECT_EQ(classify_metric("comm.solve.bytes_sent"), MetricClass::kWork);
  EXPECT_EQ(classify_metric("hierarchy.operator_complexity"),
            MetricClass::kWork);
  EXPECT_EQ(classify_metric("memory.peak_rss_bytes"), MetricClass::kInfo);
  EXPECT_EQ(classify_metric("metrics.mem.workspace.peak_bytes"),
            MetricClass::kInfo);
  EXPECT_EQ(classify_metric("metrics.speedup_measured"), MetricClass::kInfo);
  EXPECT_EQ(classify_metric("convergence.final_relres"), MetricClass::kInfo);
}
