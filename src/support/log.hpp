// Leveled logging to stderr, shared by the library, benches, and examples.
//
// The threshold comes from the HPAMG_LOG_LEVEL environment variable
// ("error" | "warn" | "info" | "debug" | "trace", or 0-4) read once at
// first use; benches raise it with --verbose (see bench_util.hpp). Default
// is "warn" so library code stays silent unless something is wrong.
//
// Use the macros — they skip the formatting work entirely when the level
// is filtered out:
//   HPAMG_LOG_INFO("setup done in %.3fs, %d levels", sec, levels);
#pragma once

namespace hpamg::log {

enum class Level : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Current threshold (messages at a level <= threshold are emitted).
Level threshold();
void set_threshold(Level level);
/// Parses "error"/"warn"/"info"/"debug"/"trace" or "0".."4"; returns the
/// fallback on anything else.
Level parse_level(const char* text, Level fallback);

inline bool level_enabled(Level level) {
  return static_cast<int>(level) <= static_cast<int>(threshold());
}

/// printf-style emission: one "[hpamg:X] ..." line to stderr (single
/// fwrite, so concurrent rank-threads do not interleave mid-line).
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(Level level, const char* fmt, ...);

}  // namespace hpamg::log

#define HPAMG_LOG(level_, ...)                                       \
  do {                                                               \
    if (::hpamg::log::level_enabled(::hpamg::log::Level::level_))    \
      ::hpamg::log::logf(::hpamg::log::Level::level_, __VA_ARGS__);  \
  } while (0)

#define HPAMG_LOG_ERROR(...) HPAMG_LOG(kError, __VA_ARGS__)
#define HPAMG_LOG_WARN(...) HPAMG_LOG(kWarn, __VA_ARGS__)
#define HPAMG_LOG_INFO(...) HPAMG_LOG(kInfo, __VA_ARGS__)
#define HPAMG_LOG_DEBUG(...) HPAMG_LOG(kDebug, __VA_ARGS__)
#define HPAMG_LOG_TRACE(...) HPAMG_LOG(kTrace, __VA_ARGS__)
