#include "perfmodel/machine.hpp"

#include <algorithm>

namespace hpamg {

double MachineModel::seconds(const WorkCounters& wc) const {
  const double bw_time =
      double(wc.bytes_total()) / (stream_bw_bytes_per_s * sparse_efficiency);
  const double flop_time = double(wc.flops) / peak_flops;
  const double branch_time =
      double(wc.branches) * branch_miss_rate * branch_miss_cost_s;
  return std::max(bw_time, flop_time) + branch_time;
}

MachineModel haswell_socket() {
  MachineModel m;
  m.name = "Xeon E5-2697 v3 (1 socket)";
  m.stream_bw_bytes_per_s = 54e9;          // Table 1
  m.peak_flops = 14 * 2.6e9 * 16;          // 14 cores x 2.6 GHz x 16 DP flops
  m.branch_miss_cost_s = 15.0 / 2.6e9 / 14;  // ~15 cycles, amortized
  return m;
}

MachineModel k40c() {
  MachineModel m;
  m.name = "Tesla K40c";
  m.stream_bw_bytes_per_s = 249e9;  // Table 1 (ECC off)
  m.peak_flops = 1.43e12;
  m.sparse_efficiency = 0.45;  // GPUs lose more on irregular gathers
  m.branch_miss_cost_s = 0.0;  // divergence folded into sparse_efficiency
  return m;
}

MachineModel endeavor_rank() {
  MachineModel m = haswell_socket();
  m.name = "Endeavor rank (1 of 2 sockets)";
  return m;
}

}  // namespace hpamg
