#include <cmath>

#include "amg/spmv.hpp"
#include "krylov/gmres_common.hpp"
#include "krylov/krylov.hpp"
#include "support/live.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Column-wise W -= h_j * V for live columns only (dead columns keep their
/// basis frozen so a later cycle's bookkeeping stays consistent).
void ortho_step(const std::vector<double>& h, const std::vector<char>& live,
                const MultiVector& V, MultiVector& W) {
  const Int m = W.m;
  const double* HPAMG_RESTRICT hp = h.data();
  const char* HPAMG_RESTRICT lp = live.data();
  const double* HPAMG_RESTRICT vp = V.data.data();
  double* HPAMG_RESTRICT wp = W.data.data();
  parallel_for(0, W.n, [&](Int i) {
    const std::size_t off = std::size_t(i) * m;
    for (Int j = 0; j < m; ++j)
      if (lp[j]) wp[off + j] -= hp[j] * vp[off + j];
  });
}

/// Column-wise V_dst = W * (1/scale) for live columns with scale != 0.
void set_scaled_columns(const MultiVector& W, const std::vector<double>& scale,
                        const std::vector<char>& live, MultiVector& V) {
  const Int m = V.m;
  const double* HPAMG_RESTRICT sp = scale.data();
  const char* HPAMG_RESTRICT lp = live.data();
  const double* HPAMG_RESTRICT wp = W.data.data();
  double* HPAMG_RESTRICT vp = V.data.data();
  parallel_for(0, V.n, [&](Int i) {
    const std::size_t off = std::size_t(i) * m;
    for (Int j = 0; j < m; ++j)
      if (lp[j] && sp[j] != 0.0) vp[off + j] = wp[off + j] / sp[j];
  });
}

}  // namespace

BlockKrylovResult block_fgmres(const CSRMatrix& A, const MultiVector& B,
                               MultiVector& X, const KrylovOptions& opt,
                               const MultiPreconditioner& precond) {
  TRACE_SPAN("krylov.block_fgmres", "phase", "rhs", std::int64_t(B.m));
  live::ActivityScope live_scope;
  const Int n = A.nrows;
  const Int m = B.m;
  require(B.n == n && X.n == n && X.m == m, "block_fgmres: shape mismatch");
  require(m > 0, "block_fgmres: no right-hand sides");
  const Int restart = opt.restart;
  BlockKrylovResult res;
  res.final_relres.assign(std::size_t(m), 0.0);
  res.col_iterations.assign(std::size_t(m), -1);

  std::vector<double> normb = norm2sq_columns(B);
  for (double& nb : normb) nb = nb > 0.0 ? std::sqrt(nb) : 1.0;

  std::vector<MultiVector> V(std::size_t(restart) + 1, MultiVector(n, m));
  std::vector<MultiVector> Z(std::size_t(restart), MultiVector(n, m));
  MultiVector R(n, m), W(n, m);
  // done = globally converged; live = participating in the current cycle's
  // Arnoldi sweep (a column leaves on convergence or lucky breakdown and
  // re-enters, if unconverged, at the next restart).
  std::vector<char> done(std::size_t(m), 0);
  Int total_it = 0;
  bool deadline_hit = false;

  while (total_it < opt.max_iterations && !deadline_hit) {
    spmv_residual_multi(A, X, B, R);
    std::vector<double> beta = norm2sq_columns(R);
    std::vector<char> live(std::size_t(m), 0);
    Int num_live = 0;
    for (Int j = 0; j < m; ++j) {
      beta[std::size_t(j)] = std::sqrt(beta[std::size_t(j)]);
      const double rr = beta[std::size_t(j)] / normb[std::size_t(j)];
      res.final_relres[std::size_t(j)] = rr;
      if (!std::isfinite(rr)) {
        res.status = Status::kNonFinite;
        res.nonfinite_iteration = total_it;
        return res;
      }
      if (rr < opt.rtol) {
        if (!done[std::size_t(j)]) {
          done[std::size_t(j)] = 1;
          if (res.col_iterations[std::size_t(j)] < 0)
            res.col_iterations[std::size_t(j)] = total_it;
        }
      } else if (beta[std::size_t(j)] != 0.0) {
        live[std::size_t(j)] = 1;
        ++num_live;
      }
    }
    if (num_live == 0) break;

    set_scaled_columns(R, beta, live, V[0]);
    std::vector<detail::HessenbergLS> ls;
    ls.reserve(std::size_t(m));
    for (Int j = 0; j < m; ++j) {
      ls.emplace_back(restart);
      ls.back().set_rhs(beta[std::size_t(j)]);
    }
    std::vector<Int> jdone(std::size_t(m), 0);  // per-column Arnoldi depth

    Int j_in = 0;
    for (; j_in < restart && total_it < opt.max_iterations && num_live > 0;
         ++j_in, ++total_it) {
      if (opt.deadline.expired()) {
        // Fall through to the per-column update below — each column's
        // completed depth jdone[j] still yields a valid partial iterate.
        deadline_hit = true;
        break;
      }
      const MultiVector& Vj = V[std::size_t(j_in)];
      MultiVector& Zj = Z[std::size_t(j_in)];
      if (precond)
        precond(Vj, Zj);
      else
        copy(Vj, Zj);
      spmv_multi(A, Zj, W);
      for (Int i = 0; i <= j_in; ++i) {
        const std::vector<double> hij = dot_columns(W, V[std::size_t(i)]);
        for (Int j = 0; j < m; ++j)
          if (live[std::size_t(j)])
            ls[std::size_t(j)].h(i, j_in) = hij[std::size_t(j)];
        ortho_step(hij, live, V[std::size_t(i)], W);
      }
      std::vector<double> hn = norm2sq_columns(W);
      for (double& h : hn) h = std::sqrt(h);
      set_scaled_columns(W, hn, live, V[std::size_t(j_in) + 1]);
      res.iterations = total_it + 1;
      for (Int j = 0; j < m; ++j) {
        if (!live[std::size_t(j)]) continue;
        ls[std::size_t(j)].h(j_in + 1, j_in) = hn[std::size_t(j)];
        const double rr = ls[std::size_t(j)].apply_rotations(j_in) /
                          normb[std::size_t(j)];
        res.final_relres[std::size_t(j)] = rr;
        jdone[std::size_t(j)] = j_in + 1;
        if (!std::isfinite(rr) || !std::isfinite(hn[std::size_t(j)])) {
          // Poisoned basis: applying x += Z y would spread the NaN.
          res.status = Status::kNonFinite;
          res.nonfinite_iteration = total_it + 1;
          return res;
        }
        if (rr < opt.rtol || hn[std::size_t(j)] == 0.0) {
          // Converged (or lucky breakdown) mid-cycle: stop extending this
          // column's least-squares problem; the update below uses its own
          // depth jdone[j].
          live[std::size_t(j)] = 0;
          --num_live;
        }
      }
      if (live::enabled()) {
        // Heartbeat carries the worst column's residual — the one that
        // decides when this block solve finishes.
        double worst = 0.0;
        for (double rr : res.final_relres)
          if (rr > worst) worst = rr;
        live::beat_iteration(total_it + 1, worst);
      }
    }

    // Per-column flexible update x_j += sum_i y_i Z_i(:, j) at each
    // column's own depth.
    for (Int j = 0; j < m; ++j) {
      const Int k = jdone[std::size_t(j)];
      if (k == 0) continue;
      const std::vector<double> y = ls[std::size_t(j)].solve(k);
      double* HPAMG_RESTRICT xp = X.data.data();
      for (Int i = 0; i < k; ++i) {
        const double yi = y[std::size_t(i)];
        if (yi == 0.0) continue;
        const double* HPAMG_RESTRICT zp = Z[std::size_t(i)].data.data();
        parallel_for(0, n, [&](Int row) {
          xp[std::size_t(row) * m + j] += yi * zp[std::size_t(row) * m + j];
        });
      }
    }
  }

  // Final true residual per column (the scalar solver does the same when
  // it exits on the iteration cap).
  spmv_residual_multi(A, X, B, R);
  std::vector<double> rnorm = norm2sq_columns(R);
  bool all_converged = true;
  bool nonfinite = false;
  for (Int j = 0; j < m; ++j) {
    const double rr =
        std::sqrt(rnorm[std::size_t(j)]) / normb[std::size_t(j)];
    res.final_relres[std::size_t(j)] = rr;
    if (!std::isfinite(rr)) nonfinite = true;
    if (rr < opt.rtol) {
      if (res.col_iterations[std::size_t(j)] < 0)
        res.col_iterations[std::size_t(j)] = total_it;
    } else {
      all_converged = false;
    }
  }
  res.converged = all_converged;
  res.status = all_converged  ? Status::kOk
               : nonfinite    ? Status::kNonFinite
               : deadline_hit ? Status::kDeadlineExceeded
                              : Status::kMaxIterations;
  return res;
}

}  // namespace hpamg
