// Shared helpers for the figure-reproduction benches: configured solver
// runs, fixed-width table printing, repeat/statistics plumbing, and the
// Table 3 / Table 4 parameter presets.
#pragma once

#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "amg/solver.hpp"
#include "dist/dist_krylov.hpp"
#include "perfmodel/attrib.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/project.hpp"
#include "support/cli.hpp"
#include "support/live.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/report.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace hpamg::bench {

/// Table 3: single-node standalone-AMG configuration.
inline AMGOptions table3_options(Variant v, double strength_threshold = 0.25) {
  AMGOptions o;
  o.variant = v;
  o.max_levels = 7;
  o.strength.threshold = strength_threshold;
  o.strength.max_row_sum = 0.8;
  o.interp = InterpKind::kExtPI;
  o.truncation.trunc_fact = 0.1;
  o.truncation.max_elmts = 4;
  o.smoother = SmootherKind::kHybridGS;
  return o;
}

/// Table 4: multi-node FGMRES+AMG configuration for a named scheme
/// (ei(4) / 2s-ei(444) / mp).
inline DistAMGOptions table4_options(Variant v, const std::string& scheme) {
  DistAMGOptions o;
  o.variant = v;
  o.max_levels = 16;
  o.strength.threshold = 0.25;
  o.strength.max_row_sum = 0.8;
  o.truncation.trunc_fact = 0.1;
  o.truncation.max_elmts = 4;
  if (scheme == "2s-ei") {
    o.interp = InterpKind::kExtPI2Stage;
    o.num_aggressive_levels = 1;
  } else if (scheme == "mp") {
    o.interp = InterpKind::kMultipass;
    o.num_aggressive_levels = 1;
  } else {
    o.interp = InterpKind::kExtPI;
  }
  return o;
}

/// Prints a row of fixed-width cells.
inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string fmt_int(long v) { return std::to_string(v); }

/// Sum of the "compute" phase categories of a solve-phase breakdown.
inline double solve_compute_seconds(const PhaseTimes& pt) {
  return pt.get("GS") + pt.get("SpMV") + pt.get("BLAS1") +
         pt.get("Solve_etc");
}

// ------------------------------------------------------------------------
// Run environment (single source of truth)
// ------------------------------------------------------------------------

/// Environment facts every bench surfaces — thread count, build flavor,
/// compiler, and the network-model calibration. TraceSink metadata and the
/// JSON report's metrics envelope both read from the SAME RunEnv instance,
/// so the two outputs cannot disagree.
struct RunEnv {
  std::string bench;
  int threads = num_threads();
  std::string build;
  std::string compiler;
  NetworkModel net;

  explicit RunEnv(std::string bench_name) : bench(std::move(bench_name)) {
#if defined(NDEBUG)
    build = "release";
#else
    build = "debug";
#endif
#if defined(__VERSION__)
    compiler = __VERSION__;
#endif
  }

  /// Metrics envelope for the JSON report (registry snapshot and peak RSS
  /// are sampled at call time; call once, at finish).
  MetricsEnvelope envelope() const {
    MetricsEnvelope m;
    m.threads = threads;
    m.build = build;
    m.compiler = compiler;
    m.peak_rss_bytes = metrics::peak_rss_bytes();
    m.net_overhead_s = net.overhead_s;
    m.net_peak_bw_bytes_per_s = net.peak_bw_bytes_per_s;
    m.net_setup_cost_s = net.setup_cost_s;
    m.net_rendezvous_extra_s = net.rendezvous_extra_s;
    m.net_eager_limit_bytes = net.eager_limit_bytes;
    m.registry = metrics::snapshot();
    return m;
  }
};

// ------------------------------------------------------------------------
// Repeats and robust statistics
// ------------------------------------------------------------------------

/// min / median / MAD (median absolute deviation) of a sample. Median and
/// MAD are the regression-harness statistics: a single descheduled repeat
/// moves the mean but not the median, and MAD quantifies the noise floor.
struct SampleStats {
  double min = 0.0;
  double median = 0.0;
  double mad = 0.0;
};

inline double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double m = xs[mid];
  if (xs.size() % 2 == 0) {
    const double lo = *std::max_element(xs.begin(), xs.begin() + mid);
    m = 0.5 * (lo + m);
  }
  return m;
}

inline SampleStats sample_stats(const std::vector<double>& xs) {
  SampleStats s;
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.median = median_of(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    dev[i] = std::abs(xs[i] - s.median);
  s.mad = median_of(dev);
  return s;
}

/// `--repeat N` plumbing (default 1 = old single-shot behavior). When
/// N > 1, benches run one untimed warm-up first (page faults, allocator
/// growth, OMP thread-pool spin-up land there, not in sample 0) and report
/// the median of N timed repeats.
struct Repeat {
  int count = 1;

  explicit Repeat(const Cli& cli)
      : count(int(std::max(1L, cli.get_int("repeat", 1)))) {}

  bool warmup() const { return count > 1; }
};

/// Call at the top of EVERY timed repeat body (including the first). When
/// the registry is live (--json runs), this zeroes it so the envelope
/// snapshot taken at finish() describes exactly one timed repeat — the
/// last, which for a deterministic solver carries the same work counters
/// as the median-timed one — instead of accumulating warm-up plus all N
/// repeats. Without it, `comm.msg_bytes` and friends scale with --repeat,
/// so baselines recorded at --repeat 3 would be incomparable to local
/// --repeat 1 runs. No-op when metrics are off, so untimed paths and
/// non-JSON runs are unaffected.
inline void begin_timed_repeat() {
  if (metrics::enabled()) {
    metrics::reset();
    // Roofline attribution follows the same one-repeat discipline: the
    // snapshot taken by report() should describe the last timed repeat,
    // not warm-up plus all N.
    attrib::reset();
  }
}

/// Attaches `<key>_seconds` (median) plus `<key>_min_seconds` /
/// `<key>_mad_seconds` when the sample has more than one repeat.
inline void add_time_metrics(BenchReport::Run& run, const std::string& key,
                             const std::vector<double>& samples) {
  const SampleStats s = sample_stats(samples);
  run.metric(key + "_seconds", s.median);
  if (samples.size() > 1) {
    run.metric(key + "_min_seconds", s.min);
    run.metric(key + "_mad_seconds", s.mad);
  }
}

// ------------------------------------------------------------------------
// Output sinks
// ------------------------------------------------------------------------

/// `--json <path>` plumbing shared by every bench binary: benches add
/// params and runs to `report` unconditionally (cheap), and main() ends
/// with `return sink.finish();` which writes BENCH_<name>.json when the
/// flag was given. The emitted document follows the schema in
/// support/report.hpp and is validated by bench/check_report.cpp.
///
/// When enabled, the metrics registry is switched on for the whole run and
/// its snapshot (plus peak RSS and the RunEnv facts) is embedded as the
/// report's "metrics" block — the input of bench/benchdiff.
struct JsonSink {
  JsonSink(const Cli& cli, const RunEnv& env)
      : path(cli.get("json", "")), report(env.bench), env_(&env) {
    if (enabled()) {
      metrics::reset();
      metrics::enable();
    }
  }

  bool enabled() const { return !path.empty(); }

  int finish() {
    if (!enabled()) return 0;
    report.set_metrics(env_->envelope());
    const std::string err = validate_bench_report_json(
        report.to_json(), /*require_solve=*/false, /*require_metrics=*/true);
    if (!err.empty()) {
      HPAMG_LOG_ERROR("json report failed self-validation: %s", err.c_str());
      return 1;
    }
    if (!report.write_file(path)) {
      HPAMG_LOG_ERROR("cannot write %s", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
  }

  std::string path;
  BenchReport report;

 private:
  const RunEnv* env_;
};

/// `--verbose` raises the log threshold to debug (per-iteration residuals
/// etc.); HPAMG_LOG_LEVEL still wins when it asks for more.
inline void init_logging(const Cli& cli) {
  if (cli.get("verbose", "") != "" &&
      log::threshold() < log::Level::kDebug)
    log::set_threshold(log::Level::kDebug);
}

/// `--trace <path>` plumbing shared by every bench binary: enables the
/// tracer up front (recording self-describing metadata from the same
/// RunEnv the JSON metrics block uses), and main() calls `sink.finish()`
/// to merge all ring buffers into a Chrome trace-event JSON at the path.
struct TraceSink {
  TraceSink(const Cli& cli, const RunEnv& env) : path(cli.get("trace", "")) {
    if (path.empty()) return;
    trace::enable();
    trace::set_metadata("bench", env.bench);
    if (!env.compiler.empty()) trace::set_metadata("compiler", env.compiler);
    trace::set_metadata("build", env.build);
    trace::set_metadata("omp_threads", std::to_string(env.threads));
    trace::set_metadata("net.overhead_s", fmt(env.net.overhead_s, "%.3g"));
    trace::set_metadata("net.peak_bw_bytes_per_s",
                        fmt(env.net.peak_bw_bytes_per_s, "%.3g"));
    trace::set_metadata("net.setup_cost_s",
                        fmt(env.net.setup_cost_s, "%.3g"));
    trace::set_metadata("net.rendezvous_extra_s",
                        fmt(env.net.rendezvous_extra_s, "%.3g"));
    trace::set_metadata("net.eager_limit_bytes",
                        std::to_string(env.net.eager_limit_bytes));
  }

  bool enabled() const { return !path.empty(); }

  int finish() const {
    if (!enabled()) return 0;
    trace::disable();
    if (!trace::write_chrome_json(path)) {
      HPAMG_LOG_ERROR("cannot write trace %s", path.c_str());
      return 1;
    }
    const trace::TraceStats ts = trace::stats();
    std::printf("wrote %s (%llu events, %zu tracks%s)\n", path.c_str(),
                (unsigned long long)ts.recorded, ts.tracks,
                ts.dropped > 0 ? ", ring overflowed" : "");
    return 0;
  }

  std::string path;
};

/// `--live <dir>` plumbing shared by every solver bench: starts the live
/// observability layer (progress.jsonl + metrics.prom in <dir>, heartbeats,
/// flight recorder) for the duration of the run, and main() calls
/// `sink.finish()` to stop the sampler. Tail the stream with
/// `hpamg_top <dir>` while the bench runs.
///
///   --live-interval <s>  sampler/scrape period (default 0.05)
///   --live-watchdog <s>  heartbeat stall deadline, 0 = off (default 0);
///                        scaled by live::sanitizer_scale() internally
///
/// Live observability needs the metrics registry on (the sampler snapshots
/// it), so this enables metrics even when --json was not given.
struct LiveSink {
  explicit LiveSink(const Cli& cli) : dir(cli.get("live", "")) {
    if (dir.empty()) return;
    ::mkdir(dir.c_str(), 0777);  // best effort; start() reports failures
    metrics::enable();
    live::Options opts;
    opts.dir = dir;
    opts.interval_s = cli.get_double("live-interval", 0.05);
    opts.watchdog_deadline_s = cli.get_double("live-watchdog", 0.0);
    if (!live::start(opts)) {
      HPAMG_LOG_ERROR("live observability failed to start in %s",
                      dir.c_str());
      dir.clear();
      return;
    }
    std::printf("live: streaming to %s/progress.jsonl (tail with hpamg_top)\n",
                dir.c_str());
  }

  bool enabled() const { return !dir.empty(); }

  int finish() const {
    if (!enabled()) return 0;
    live::stop();
    if (live::watchdog_verdict() != Status::kOk) {
      const live::StallInfo s = live::stall_info();
      HPAMG_LOG_ERROR("watchdog declared a stall: rank %d quiet %.2fs "
                      "(deadline %.2fs)", s.rank, s.stalled_s, s.deadline_s);
      return 1;
    }
    return 0;
  }

  std::string dir;
};

}  // namespace hpamg::bench
