// Performance diagnosis CLI: merges a BENCH_*.json report with its trace
// into one view of where a solve's time went and why.
//
//   - roofline table: per (kernel, level) measured time, achieved bandwidth
//     and the achieved-vs-modeled fractions recorded by perfmodel/attrib
//     (recomputed against `--machine <calibration.json>` when given, e.g.
//     the file bench_stream emits for this host);
//   - wait-state breakdown: the trace's per-rank blocked time classified
//     Scalasca-style (late-sender / late-receiver / wait-at-collective /
//     transfer / unattributed) by support/trace_analyze, plus per-kernel
//     load imbalance and the cross-rank critical path;
//   - convergence trajectory: the report's per-iteration telemetry
//     (residual, contraction factor, per-level time split).
//
// `--check` validates the merged picture and exits nonzero on violation:
// the report passes the full schema validator, roofline fractions lie in
// (0, 1], per-iteration convergence factors reproduce the residual
// history, and each rank's classified + unattributed wait time sums to its
// blocked total (the trace_summary cross-tool invariant). `--json <out>`
// writes the diagnosis as JSON.
//
// Usage: perf_report [--check] [--json <out>] [--machine <calib.json>]
//                    <BENCH_*.json> [<trace.json>]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "perfmodel/attrib.hpp"
#include "support/report.hpp"
#include "support/trace_analyze.hpp"

namespace {

using hpamg::JsonValue;

int failures = 0;

void check(bool ok, const char* fmt, const std::string& detail) {
  if (ok) return;
  std::fprintf(stderr, fmt, detail.c_str());
  std::fputc('\n', stderr);
  ++failures;
}

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  std::fclose(f);
  return true;
}

double num_of(const JsonValue& obj, const char* key, double dflt = 0.0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : dflt;
}

std::string fmt_ms(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", us * 1e-3);
  return buf;
}

/// One roofline row lifted back out of the report JSON.
struct RoofRow {
  std::string kernel;
  long level = -1;
  long calls = 0;
  double seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  double achieved_bw = 0.0;
  double modeled_seconds = 0.0;
  double bw_fraction = 0.0;
  double efficiency = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  bool check_mode = false;
  const char* json_out = nullptr;
  const char* machine_path = nullptr;
  std::vector<const char*> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check_mode = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      machine_path = argv[++i];
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty() || inputs.size() > 2) {
    std::fprintf(stderr,
                 "usage: perf_report [--check] [--json <out>] "
                 "[--machine <calib.json>] <BENCH_*.json> [<trace.json>]\n");
    return 2;
  }

  // ---- optional calibration override of the paper-constant machine model.
  hpamg::MachineModel machine = hpamg::attrib::machine();
  bool recalibrated = false;
  if (machine_path != nullptr) {
    std::string text;
    if (!read_file(machine_path, text)) {
      std::fprintf(stderr, "%s: cannot open\n", machine_path);
      return 2;
    }
    std::string err;
    if (!hpamg::attrib::load_calibration_json(text, &machine, nullptr,
                                              &err)) {
      std::fprintf(stderr, "%s: %s\n", machine_path, err.c_str());
      return 2;
    }
    recalibrated = true;
  }

  // ---- bench report.
  std::string bench_text;
  if (!read_file(inputs[0], bench_text)) {
    std::fprintf(stderr, "%s: cannot open\n", inputs[0]);
    return 2;
  }
  const std::string verr = hpamg::validate_bench_report_json(bench_text);
  check(verr.empty(), "%s", std::string(inputs[0]) + ": " + verr);
  JsonValue doc;
  try {
    doc = hpamg::json_parse(bench_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: parse error: %s\n", inputs[0], e.what());
    return 1;
  }
  const JsonValue* bench_name = doc.find("bench");
  std::printf("bench: %s\n",
              bench_name != nullptr ? bench_name->text.c_str() : "?");
  if (recalibrated)
    std::printf("machine: %s (%.1f GB/s STREAM, calibrated)\n",
                machine.name.c_str(), machine.stream_bw_bytes_per_s * 1e-9);

  struct RunView {
    std::string name;
    std::vector<RoofRow> roofline;
    const JsonValue* iterations = nullptr;
    const JsonValue* history = nullptr;
  };
  std::vector<RunView> views;
  if (const JsonValue* runs = doc.find("runs")) {
    for (const JsonValue& run : runs->items) {
      RunView v;
      if (const JsonValue* n = run.find("name")) v.name = n->text;
      const JsonValue* rep = run.find("report");
      if (rep == nullptr) continue;
      if (const JsonValue* roof = rep->find("roofline")) {
        for (const JsonValue& e : roof->items) {
          RoofRow r;
          if (const JsonValue* k = e.find("kernel")) r.kernel = k->text;
          r.level = long(num_of(e, "level", -1));
          r.calls = long(num_of(e, "calls"));
          r.seconds = num_of(e, "seconds");
          r.flops = num_of(e, "flops");
          r.bytes = num_of(e, "bytes");
          r.achieved_bw = num_of(e, "achieved_bw_bytes_per_s");
          r.modeled_seconds = num_of(e, "modeled_seconds");
          r.bw_fraction = num_of(e, "bw_fraction");
          r.efficiency = num_of(e, "efficiency");
          if (recalibrated && r.seconds > 0.0 && r.bytes > 0.0) {
            // Re-derive the fractions against the calibrated ceilings
            // (branch counters are not in the report; the bandwidth
            // roofline dominates for these kernels anyway).
            hpamg::WorkCounters wc;
            wc.flops = std::uint64_t(r.flops);
            wc.bytes_read = std::uint64_t(r.bytes);
            r.modeled_seconds = machine.seconds(wc);
            const double roof = std::max(
                machine.stream_bw_bytes_per_s * machine.sparse_efficiency,
                1.0);
            r.bw_fraction = std::min(1.0, r.achieved_bw / roof);
            r.efficiency = std::min(1.0, r.modeled_seconds / r.seconds);
          }
          v.roofline.push_back(std::move(r));
        }
      }
      v.iterations = rep->find("iterations");
      if (const JsonValue* conv = rep->find("convergence"))
        v.history = conv->find("residual_history");
      views.push_back(std::move(v));
    }
  }

  // ---- roofline tables.
  for (const RunView& v : views) {
    if (v.roofline.empty()) continue;
    std::printf("\n== roofline: %s ==\n", v.name.c_str());
    std::printf("%-24s %5s %7s %10s %9s %7s %7s\n", "kernel", "level",
                "calls", "seconds", "GB/s", "bw%", "eff%");
    for (const RoofRow& r : v.roofline) {
      std::printf("%-24s %5ld %7ld %10.4f %9.2f %6.1f%% %6.1f%%\n",
                  r.kernel.c_str(), r.level, r.calls, r.seconds,
                  r.achieved_bw * 1e-9, 100.0 * r.bw_fraction,
                  100.0 * r.efficiency);
      check(r.bw_fraction > 0.0 && r.bw_fraction <= 1.0,
            "%s: bw_fraction outside (0,1]", v.name + "/" + r.kernel);
      check(r.efficiency > 0.0 && r.efficiency <= 1.0,
            "%s: efficiency outside (0,1]", v.name + "/" + r.kernel);
    }
  }

  // ---- convergence trajectory + factor cross-check.
  for (const RunView& v : views) {
    if (v.iterations == nullptr || v.iterations->items.empty()) continue;
    std::printf("\n== iterations: %s ==\n", v.name.c_str());
    std::printf("%5s %12s %9s %10s %10s\n", "it", "relres", "conv",
                "seconds", "smoother");
    for (const JsonValue& e : v.iterations->items) {
      const long it = long(num_of(e, "iteration"));
      const double relres = num_of(e, "relres");
      const double conv = num_of(e, "conv_factor");
      const JsonValue* sm = e.find("smoother_contraction");
      char smbuf[32] = "-";
      if (sm != nullptr && sm->is_number())
        std::snprintf(smbuf, sizeof(smbuf), "%.4f", sm->number);
      std::printf("%5ld %12.4e %9.4f %10.6f %10s\n", it, relres, conv,
                  num_of(e, "seconds"), smbuf);
      // conv_factor must reproduce the residual history: relres matches
      // history[it-1] and conv matches history[it-1]/history[it-2].
      if (v.history != nullptr) {
        const auto& h = v.history->items;
        if (it >= 1 && std::size_t(it) <= h.size()) {
          const double hr = h[std::size_t(it - 1)].number;
          check(std::abs(relres - hr) <= 1e-9 * std::max(1.0, hr),
                "%s: iteration relres disagrees with residual_history",
                v.name);
          if (it >= 2) {
            const double prev = h[std::size_t(it - 2)].number;
            const double want = prev > 0.0 ? hr / prev : 0.0;
            check(std::abs(conv - want) <=
                      1e-6 * std::max(1.0, std::abs(want)),
                  "%s: conv_factor does not reproduce residual_history",
                  v.name);
          }
        }
      }
    }
  }

  // ---- trace wait-state classification.
  bool have_trace = false;
  hpamg::trace_analyze::Analysis an;
  if (inputs.size() == 2) {
    std::string trace_text;
    if (!read_file(inputs[1], trace_text)) {
      std::fprintf(stderr, "%s: cannot open\n", inputs[1]);
      return 2;
    }
    hpamg::trace_analyze::Timeline tl;
    try {
      tl = hpamg::trace_analyze::parse_timeline_text(trace_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", inputs[1], e.what());
      return 1;
    }
    an = hpamg::trace_analyze::analyze(tl);
    have_trace = true;
    check(tl.duplicate_flow_ids == 0, "%s: duplicate flow ids in trace",
          std::string(inputs[1]));
    check(tl.dropped_total > 0 || an.unmatched_flows == 0,
          "%s: unmatched flows in a trace reporting zero drops",
          std::string(inputs[1]));

    std::printf("\n== wait states (ms) ==\n");
    std::printf("%-10s %9s %9s %9s %9s %9s %9s\n", "rank", "blocked",
                "late_snd", "late_rcv", "collectv", "transfer", "unattrib");
    for (const auto& r : an.ranks) {
      std::printf("%-10s %9s %9s %9s %9s %9s %9s\n", r.name.c_str(),
                  fmt_ms(r.blocked_us).c_str(),
                  fmt_ms(r.late_sender_us).c_str(),
                  fmt_ms(r.late_receiver_us).c_str(),
                  fmt_ms(r.wait_collective_us).c_str(),
                  fmt_ms(r.transfer_us).c_str(),
                  fmt_ms(r.unattributed_us).c_str());
      // The cross-tool invariant: classified + unattributed == blocked
      // (what trace_summary reports as the rank's blocked self time).
      const double sum = r.late_sender_us + r.late_receiver_us +
                         r.wait_collective_us + r.transfer_us +
                         r.unattributed_us;
      check(std::abs(sum - r.blocked_us) <=
                std::max(0.5, 1e-6 * std::abs(r.blocked_us)),
            "%s: wait-state buckets do not sum to blocked time", r.name);
    }
    if (!an.kernels.empty()) {
      std::printf("\n== load imbalance (max/avg self time) ==\n");
      std::size_t shown = 0;
      for (const auto& k : an.kernels) {
        if (shown++ == 5) break;
        std::printf("%-28s %6.3fx (max %s ms on pid %d over %d ranks)\n",
                    k.kernel.c_str(), k.imbalance,
                    fmt_ms(k.max_us).c_str(), k.max_pid, k.ranks);
      }
    }
    std::printf("\n== critical path ==\n");
    std::printf("%zu segment(s), %s ms total (%s ms in transfers)\n",
                an.critical_path.size(), fmt_ms(an.critical_path_us).c_str(),
                fmt_ms(an.critical_transfer_us).c_str());
  }

  // ---- merged diagnosis JSON.
  if (json_out != nullptr) {
    hpamg::JsonWriter w;
    w.begin_object();
    w.kv("bench", bench_name != nullptr ? bench_name->text : "");
    w.key("machine").begin_object();
    w.kv("name", machine.name);
    w.kv("stream_bw_bytes_per_s", machine.stream_bw_bytes_per_s);
    w.kv("sparse_efficiency", machine.sparse_efficiency);
    w.kv("calibrated", recalibrated);
    w.end_object();
    w.key("runs").begin_array();
    for (const RunView& v : views) {
      w.begin_object();
      w.kv("name", v.name);
      w.key("roofline").begin_array();
      for (const RoofRow& r : v.roofline) {
        w.begin_object();
        w.kv("kernel", r.kernel);
        w.kv("level", r.level);
        w.kv("seconds", r.seconds);
        w.kv("achieved_bw_bytes_per_s", r.achieved_bw);
        w.kv("bw_fraction", r.bw_fraction);
        w.kv("efficiency", r.efficiency);
        w.end_object();
      }
      w.end_array();
      w.kv("iterations",
           (long long)(v.iterations != nullptr ? v.iterations->items.size()
                                               : 0));
      w.end_object();
    }
    w.end_array();
    if (have_trace) {
      w.key("wait").begin_object();
      w.key("ranks").begin_array();
      for (const auto& r : an.ranks) {
        w.begin_object();
        w.kv("pid", r.pid);
        w.kv("name", r.name);
        w.kv("compute_us", r.compute_us);
        w.kv("blocked_us", r.blocked_us);
        w.kv("late_sender_us", r.late_sender_us);
        w.kv("late_receiver_us", r.late_receiver_us);
        w.kv("wait_collective_us", r.wait_collective_us);
        w.kv("transfer_us", r.transfer_us);
        w.kv("unattributed_us", r.unattributed_us);
        w.end_object();
      }
      w.end_array();
      w.kv("critical_path_us", an.critical_path_us);
      w.kv("critical_transfer_us", an.critical_transfer_us);
      w.kv("unmatched_flows", an.unmatched_flows);
      w.end_object();
    }
    w.end_object();
    std::FILE* f = std::fopen(json_out, "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write\n", json_out);
      return 2;
    }
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_out);
  }

  if (check_mode) {
    std::printf("\n%s: %d check failure(s)\n", inputs[0], failures);
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
