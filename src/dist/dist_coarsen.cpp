#include "dist/dist_coarsen.hpp"

#include <algorithm>

#include "dist/dist_transpose.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/sort.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {
constexpr signed char kUndecided = 0;
constexpr signed char kCoarse = 1;
constexpr signed char kFine = -1;
constexpr int kTagS2 = 7301;

/// One row's strength test over diag+offd (diagonal lives in diag at local
/// column i).
void strong_columns_dist(const DistMatrix& A, Int i,
                         const StrengthOptions& opt,
                         std::vector<Int>& strong_diag,
                         std::vector<Int>& strong_offd) {
  strong_diag.clear();
  strong_offd.clear();
  double diag = 0.0, row_sum = 0.0, max_off = 0.0;
  for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k) {
    row_sum += A.diag.values[k];
    if (A.diag.colidx[k] == i) diag = A.diag.values[k];
  }
  for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k)
    row_sum += A.offd.values[k];
  const double sgn = diag >= 0 ? 1.0 : -1.0;
  for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k)
    if (A.diag.colidx[k] != i)
      max_off = std::max(max_off, -sgn * A.diag.values[k]);
  for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k)
    max_off = std::max(max_off, -sgn * A.offd.values[k]);
  if (max_off <= 0.0) return;
  if (opt.max_row_sum < 1.0 &&
      std::abs(row_sum) > opt.max_row_sum * std::abs(diag))
    return;
  const double cut = opt.threshold * max_off;
  for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k)
    if (A.diag.colidx[k] != i && -sgn * A.diag.values[k] >= cut)
      strong_diag.push_back(k);
  for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k)
    if (-sgn * A.offd.values[k] >= cut) strong_offd.push_back(k);
}

}  // namespace

DistMatrix dist_strength(const DistMatrix& A, const StrengthOptions& opt,
                         bool parallel_assembly, WorkCounters* wc) {
  TRACE_SPAN("strength.dist", "kernel", "rows",
             std::int64_t(A.local_rows()));
  DistMatrix S;
  S.global_rows = A.global_rows;
  S.global_cols = A.global_cols;
  S.row_starts = A.row_starts;
  S.col_starts = A.col_starts;
  S.my_rank = A.my_rank;
  S.colmap = A.colmap;  // shared compressed column space
  const Int n = A.local_rows();
  S.diag = CSRMatrix(n, A.diag.ncols);
  S.offd = CSRMatrix(n, A.offd.ncols);

  auto fill_counts = [&](Int i) {
    thread_local std::vector<Int> sd, so;
    strong_columns_dist(A, i, opt, sd, so);
    S.diag.rowptr[i + 1] = Int(sd.size());
    S.offd.rowptr[i + 1] = Int(so.size());
  };
  auto fill_values = [&](Int i) {
    thread_local std::vector<Int> sd, so;
    strong_columns_dist(A, i, opt, sd, so);
    Int pd = S.diag.rowptr[i];
    for (Int k : sd) {
      S.diag.colidx[pd] = A.diag.colidx[k];
      S.diag.values[pd] = 1.0;
      ++pd;
    }
    Int po = S.offd.rowptr[i];
    for (Int k : so) {
      S.offd.colidx[po] = A.offd.colidx[k];
      S.offd.values[po] = 1.0;
      ++po;
    }
  };
  if (parallel_assembly) {
    parallel_for_dynamic(0, n, fill_counts);
    exclusive_scan(S.diag.rowptr);
    exclusive_scan(S.offd.rowptr);
    S.diag.colidx.resize(S.diag.rowptr[n]);
    S.diag.values.resize(S.diag.rowptr[n]);
    S.offd.colidx.resize(S.offd.rowptr[n]);
    S.offd.values.resize(S.offd.rowptr[n]);
    parallel_for_dynamic(0, n, fill_values);
  } else {
    for (Int i = 0; i < n; ++i) fill_counts(i);
    exclusive_scan(S.diag.rowptr);
    exclusive_scan(S.offd.rowptr);
    S.diag.colidx.resize(S.diag.rowptr[n]);
    S.diag.values.resize(S.diag.rowptr[n]);
    S.offd.colidx.resize(S.offd.rowptr[n]);
    S.offd.values.resize(S.offd.rowptr[n]);
    for (Int i = 0; i < n; ++i) fill_values(i);
  }
  if (wc) wc->bytes_read += 2 * A.nnz_local() * (sizeof(Int) + sizeof(double));
  return S;
}

CFMarker dist_pmis(simmpi::Comm& comm, const DistMatrix& S,
                   const DistMatrix& ST, const PmisOptions& opt,
                   WorkCounters* wc) {
  TRACE_SPAN("pmis.dist", "kernel", "rows", std::int64_t(S.local_rows()));
  const Int n = S.local_rows();
  const Long r0 = S.first_row();

  // Measures: w(i) = |ST row i| + rand(global i); the counter RNG keyed by
  // the GLOBAL index makes the splitting independent of the partitioning.
  std::vector<double> w(n);
  CounterRng rng(opt.seed);
  parallel_for(0, n, [&](Int i) {
    w[i] = double(ST.diag.row_nnz(i) + ST.offd.row_nnz(i)) +
           rng.uniform(std::uint64_t(r0 + i));
  });

  HaloExchange halo_s(comm, S.colmap, S.row_starts, true);
  HaloExchange halo_st(comm, ST.colmap, ST.row_starts, true);
  Vector w_ext_s, w_ext_st;
  halo_s.exchange(w, w_ext_s);
  halo_st.exchange(w, w_ext_st);

  CFMarker cf(n, kUndecided);
  parallel_for(0, n, [&](Int i) {
    if (w[i] < 1.0) cf[i] = kFine;
  });
  std::vector<signed char> cf_ext_s, cf_ext_st;
  CFMarker next(cf);

  while (true) {
    halo_s.exchange(cf, cf_ext_s);
    halo_st.exchange(cf, cf_ext_st);
    std::int64_t promoted = 0;
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : promoted)
    for (Int i = 0; i < n; ++i) {
      if (cf[i] != kUndecided) continue;
      bool best = true;
      for (Int k = S.diag.rowptr[i]; k < S.diag.rowptr[i + 1] && best; ++k) {
        const Int j = S.diag.colidx[k];
        if (j != i && cf[j] == kUndecided && w[j] >= w[i]) best = false;
      }
      for (Int k = S.offd.rowptr[i]; k < S.offd.rowptr[i + 1] && best; ++k) {
        const Int j = S.offd.colidx[k];
        if (cf_ext_s[j] == kUndecided && w_ext_s[j] >= w[i]) best = false;
      }
      for (Int k = ST.diag.rowptr[i]; k < ST.diag.rowptr[i + 1] && best; ++k) {
        const Int j = ST.diag.colidx[k];
        if (j != i && cf[j] == kUndecided && w[j] >= w[i]) best = false;
      }
      for (Int k = ST.offd.rowptr[i]; k < ST.offd.rowptr[i + 1] && best; ++k) {
        const Int j = ST.offd.colidx[k];
        if (cf_ext_st[j] == kUndecided && w_ext_st[j] >= w[i]) best = false;
      }
      if (best) {
        next[i] = kCoarse;
        ++promoted;
      }
    }
    parallel_for(0, n, [&](Int i) { cf[i] = next[i]; });

    halo_s.exchange(cf, cf_ext_s);
    std::int64_t demoted = 0;
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : demoted)
    for (Int i = 0; i < n; ++i) {
      if (cf[i] != kUndecided) continue;
      bool fine = false;
      for (Int k = S.diag.rowptr[i]; k < S.diag.rowptr[i + 1] && !fine; ++k)
        if (cf[S.diag.colidx[k]] == kCoarse) fine = true;
      for (Int k = S.offd.rowptr[i]; k < S.offd.rowptr[i + 1] && !fine; ++k)
        if (cf_ext_s[S.offd.colidx[k]] == kCoarse) fine = true;
      if (fine) {
        next[i] = kFine;
        ++demoted;
      }
    }
    parallel_for(0, n, [&](Int i) { cf[i] = next[i]; });

    const Long changed = comm.allreduce_sum(Long(promoted + demoted));
    if (changed == 0) break;
  }
  parallel_for(0, n, [&](Int i) {
    if (cf[i] == kUndecided)
      cf[i] = (ST.diag.row_nnz(i) + ST.offd.row_nnz(i)) > 0 ? kCoarse : kFine;
  });
  if (wc) wc->bytes_read += 4 * (S.nnz_local() + ST.nnz_local()) * sizeof(Int);
  return cf;
}

CFMarker dist_pmis_aggressive(simmpi::Comm& comm, const DistMatrix& S,
                              const DistMatrix& ST, const PmisOptions& opt,
                              CFMarker* first_pass_out, WorkCounters* wc) {
  TRACE_SPAN("pmis.aggressive", "kernel", "rows",
             std::int64_t(S.local_rows()));
  CFMarker cf1 = dist_pmis(comm, S, ST, opt, wc);
  if (first_pass_out) *first_pass_out = cf1;
  const Int n = S.local_rows();
  const Long r0 = S.first_row();

  // Remote info: cf markers of halo points and their strength rows
  // restricted to the pattern (for distance-two paths through remote F
  // points ending at remote C points).
  HaloExchange halo(comm, S.colmap, S.row_starts, true);
  std::vector<signed char> cf_ext;
  halo.exchange(cf1, cf_ext);
  GatheredRows sext = gather_rows(comm, S, S.colmap);

  // Distance-two neighbor lists (global ids) for owned C1 points:
  // c -> c' via S(c, c') or S(c, f), S(f, c').
  auto gcol_is_coarse = [&](Long g) -> bool {
    if (g >= r0 && g < S.last_row()) return cf1[Int(g - r0)] > 0;
    const auto it = std::lower_bound(S.colmap.begin(), S.colmap.end(), g);
    if (it != S.colmap.end() && *it == g)
      return cf_ext[Int(it - S.colmap.begin())] > 0;
    return false;  // beyond halo: cannot verify; path dropped (rare)
  };
  std::vector<std::vector<Long>> n2(n);
  parallel_for_dynamic(0, n, [&](Int i) {
    if (cf1[i] <= 0) return;
    HashSet<Long> seen(16);
    auto visit_f_row_local = [&](Int f) {
      for (Int k = S.diag.rowptr[f]; k < S.diag.rowptr[f + 1]; ++k) {
        const Int j2 = S.diag.colidx[k];
        if (j2 != i && cf1[j2] > 0) seen.insert(r0 + j2);
      }
      for (Int k = S.offd.rowptr[f]; k < S.offd.rowptr[f + 1]; ++k) {
        const Int j2 = S.offd.colidx[k];
        if (cf_ext[j2] > 0) seen.insert(S.colmap[j2]);
      }
    };
    auto visit_f_row_remote = [&](Int ext_idx) {
      for (Int k = sext.rowptr[ext_idx]; k < sext.rowptr[ext_idx + 1]; ++k) {
        const Long g2 = sext.gcol[k];
        if (g2 != r0 + i && gcol_is_coarse(g2)) seen.insert(g2);
      }
    };
    for (Int k = S.diag.rowptr[i]; k < S.diag.rowptr[i + 1]; ++k) {
      const Int j = S.diag.colidx[k];
      if (j == i) continue;
      if (cf1[j] > 0)
        seen.insert(r0 + j);
      else
        visit_f_row_local(j);
    }
    for (Int k = S.offd.rowptr[i]; k < S.offd.rowptr[i + 1]; ++k) {
      const Int j = S.offd.colidx[k];
      if (cf_ext[j] > 0)
        seen.insert(S.colmap[j]);
      else
        visit_f_row_remote(j);
    }
    seen.collect(n2[i]);
  });

  // Reverse edges: (i -> g) implies g must also see i. Triplet exchange.
  const int nranks = comm.size();
  std::vector<std::vector<Long>> outbox(nranks);
  auto owner_of = [&](Long g) {
    auto it = std::upper_bound(S.row_starts.begin(), S.row_starts.end(), g);
    return int(it - S.row_starts.begin()) - 1;
  };
  for (Int i = 0; i < n; ++i)
    for (Long g : n2[i]) {
      const int o = owner_of(g);
      if (o == comm.rank()) {
        n2[Int(g - r0)].push_back(r0 + i);  // symmetrize locally
      } else {
        outbox[o].push_back(g);
        outbox[o].push_back(r0 + i);
      }
    }
  for (int r = 0; r < nranks; ++r)
    if (r != comm.rank()) comm.send_vec(r, kTagS2, outbox[r]);
  for (int r = 0; r < nranks; ++r) {
    if (r == comm.rank()) continue;
    std::vector<Long> in = comm.recv_vec<Long>(r, kTagS2);
    for (std::size_t k = 0; k + 1 < in.size(); k += 2)
      n2[Int(in[k] - r0)].push_back(in[k + 1]);
  }
  for (Int i = 0; i < n; ++i) {
    std::sort(n2[i].begin(), n2[i].end());
    n2[i].erase(std::unique(n2[i].begin(), n2[i].end()), n2[i].end());
  }

  // PMIS iteration on the symmetrized distance-two graph. Markers and
  // measures for remote C1 points are tracked in a hash map refreshed by a
  // gather each round (the candidate set is the union of n2 neighbors).
  std::vector<Long> remote_ids;
  for (Int i = 0; i < n; ++i)
    for (Long g : n2[i])
      if (owner_of(g) != comm.rank()) remote_ids.push_back(g);
  remote_ids = parallel_sort_unique(std::move(remote_ids));
  HaloExchange halo2(comm, remote_ids, S.row_starts, true);

  CounterRng rng(opt.seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<double> w(n, 0.0);
  for (Int i = 0; i < n; ++i)
    if (cf1[i] > 0)
      w[i] = double(n2[i].size()) + rng.uniform(std::uint64_t(r0 + i));
  Vector w_ext;
  halo2.exchange(w, w_ext);
  auto remote_idx = [&](Long g) {
    return Int(std::lower_bound(remote_ids.begin(), remote_ids.end(), g) -
               remote_ids.begin());
  };

  CFMarker cf2(n, kUndecided);
  for (Int i = 0; i < n; ++i)
    if (cf1[i] <= 0) cf2[i] = kFine;  // not a C1 point: out of the game
  CFMarker next(cf2);
  std::vector<signed char> cf2_ext;
  while (true) {
    halo2.exchange(cf2, cf2_ext);
    std::int64_t changed = 0;
    for (Int i = 0; i < n; ++i) {
      if (cf2[i] != kUndecided) continue;
      bool best = true;
      for (Long g : n2[i]) {
        signed char st;
        double wg;
        if (g >= r0 && g < S.last_row()) {
          st = cf2[Int(g - r0)];
          wg = w[Int(g - r0)];
        } else {
          const Int j = remote_idx(g);
          st = cf2_ext[j];
          wg = w_ext[j];
        }
        if (st == kUndecided && wg >= w[i]) {
          best = false;
          break;
        }
      }
      if (best) {
        next[i] = kCoarse;
        ++changed;
      }
    }
    for (Int i = 0; i < n; ++i) cf2[i] = next[i];
    halo2.exchange(cf2, cf2_ext);
    for (Int i = 0; i < n; ++i) {
      if (cf2[i] != kUndecided) continue;
      for (Long g : n2[i]) {
        const signed char st = (g >= r0 && g < S.last_row())
                                   ? cf2[Int(g - r0)]
                                   : cf2_ext[remote_idx(g)];
        if (st == kCoarse) {
          next[i] = kFine;
          ++changed;
          break;
        }
      }
    }
    for (Int i = 0; i < n; ++i) cf2[i] = next[i];
    if (comm.allreduce_sum(Long(changed)) == 0) break;
  }
  for (Int i = 0; i < n; ++i)
    if (cf2[i] == kUndecided) cf2[i] = kCoarse;

  CFMarker out(n, kFine);
  for (Int i = 0; i < n; ++i)
    if (cf1[i] > 0 && cf2[i] > 0) out[i] = kCoarse;
  return out;
}

CoarseNumbering coarse_numbering(simmpi::Comm& comm, const CFMarker& cf) {
  CoarseNumbering cn;
  Long local_nc = 0;
  for (signed char c : cf)
    if (c > 0) ++local_nc;
  std::vector<Long> counts = comm.allgather(local_nc);
  cn.starts.assign(comm.size() + 1, 0);
  for (int r = 0; r < comm.size(); ++r)
    cn.starts[r + 1] = cn.starts[r] + counts[r];
  cn.global_coarse = cn.starts.back();
  cn.local_to_global.assign(cf.size(), -1);
  Long next = cn.starts[comm.rank()];
  for (std::size_t i = 0; i < cf.size(); ++i)
    if (cf[i] > 0) cn.local_to_global[i] = next++;
  return cn;
}

}  // namespace hpamg
