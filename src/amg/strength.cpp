#include "amg/strength.hpp"

#include <cmath>

#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Row-local strength test shared by both variants: fills `strong` with
/// the in-row offsets of strongly-influencing columns.
inline void strong_columns(const CSRMatrix& A, Int i,
                           const StrengthOptions& opt,
                           std::vector<Int>& strong) {
  strong.clear();
  const Int lo = A.rowptr[i], hi = A.rowptr[i + 1];
  double diag = 0.0, row_sum = 0.0, max_off = 0.0;
  for (Int k = lo; k < hi; ++k) {
    row_sum += A.values[k];
    if (A.colidx[k] == i)
      diag = A.values[k];
  }
  const double sgn = diag >= 0 ? 1.0 : -1.0;
  for (Int k = lo; k < hi; ++k)
    if (A.colidx[k] != i) max_off = std::max(max_off, -sgn * A.values[k]);
  if (max_off <= 0.0) return;  // no candidate strong connections
  if (opt.max_row_sum < 1.0 &&
      std::abs(row_sum) > opt.max_row_sum * std::abs(diag))
    return;  // weakly-varying row: treat all connections as weak
  const double cut = opt.threshold * max_off;
  for (Int k = lo; k < hi; ++k)
    if (A.colidx[k] != i && -sgn * A.values[k] >= cut) strong.push_back(k);
}

}  // namespace

CSRMatrix strength_matrix(const CSRMatrix& A, const StrengthOptions& opt,
                          WorkCounters* wc) {
  TRACE_SPAN("strength", "kernel", "rows", std::int64_t(A.nrows));
  require(A.nrows == A.ncols, "strength_matrix: matrix must be square");
  CSRMatrix S(A.nrows, A.ncols);
  // Pass 1: per-row strong counts in parallel.
  parallel_for_dynamic(0, A.nrows, [&](Int i) {
    thread_local std::vector<Int> strong;
    strong_columns(A, i, opt, strong);
    S.rowptr[i + 1] = Int(strong.size());
  });
  // Prefix sum turns counts into offsets (the §3.3 parallelization).
  exclusive_scan(S.rowptr);
  S.colidx.resize(S.rowptr[S.nrows]);
  S.values.assign(S.rowptr[S.nrows], 1.0);
  // Pass 2: fill in parallel at the prefix-sum offsets.
  parallel_for_dynamic(0, A.nrows, [&](Int i) {
    thread_local std::vector<Int> strong;
    strong_columns(A, i, opt, strong);
    Int pos = S.rowptr[i];
    for (Int k : strong) S.colidx[pos++] = A.colidx[k];
  });
  if (wc) {
    wc->bytes_read += 2 * A.nnz() * (sizeof(Int) + sizeof(double));
    wc->bytes_written += S.nnz() * sizeof(Int);
  }
  return S;
}

CSRMatrix strength_matrix_serial(const CSRMatrix& A,
                                 const StrengthOptions& opt,
                                 WorkCounters* wc) {
  TRACE_SPAN("strength.serial", "kernel", "rows", std::int64_t(A.nrows));
  require(A.nrows == A.ncols, "strength_matrix: matrix must be square");
  CSRMatrix S(A.nrows, A.ncols);
  std::vector<Int> strong;
  for (Int i = 0; i < A.nrows; ++i) {
    strong_columns(A, i, opt, strong);
    for (Int k : strong) {
      S.colidx.push_back(A.colidx[k]);
      S.values.push_back(1.0);
    }
    S.rowptr[i + 1] = Int(S.colidx.size());
  }
  if (wc) {
    wc->bytes_read += A.nnz() * (sizeof(Int) + sizeof(double));
    wc->bytes_written += S.nnz() * sizeof(Int);
  }
  return S;
}

}  // namespace hpamg
