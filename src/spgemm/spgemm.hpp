// Sparse matrix-matrix multiplication (SpGEMM), C = A * B.
//
// Three implementations trace the paper's §3.1.1 narrative:
//  - spgemm_twopass: classical Gustavson as in baseline HYPRE — a symbolic
//    pass counts the output row sizes (reading both inputs once), then a
//    numeric pass reads them again and fills the output.
//  - spgemm_onepass: the optimized scheme — each thread multiplies into a
//    pre-allocated private chunk while reading the inputs only once, then
//    the chunks are copied (contiguously) into the final matrix. Optional
//    software prefetching of the next indirected B row (the paper also
//    unrolls 8x by hand; here the compiler unrolls the inner loop).
//  - spgemm_numeric_only: numeric phase with a known output pattern (the
//    branch-free upper-bound study; the paper measures ~2.1x from it).
#pragma once

#include "matrix/csr.hpp"
#include "support/counters.hpp"

namespace hpamg {

struct SpgemmOptions {
  bool prefetch = true;  ///< software-prefetch the next indirected B row
};

/// Baseline two-pass Gustavson SpGEMM.
CSRMatrix spgemm_twopass(const CSRMatrix& A, const CSRMatrix& B,
                         WorkCounters* wc = nullptr);

/// Optimized one-pass SpGEMM with per-thread output chunks.
CSRMatrix spgemm_onepass(const CSRMatrix& A, const CSRMatrix& B,
                         const SpgemmOptions& opt = {},
                         WorkCounters* wc = nullptr);

/// Numeric-only SpGEMM reusing the sparsity pattern of `C` (rowptr/colidx
/// already populated; values are overwritten). Pattern must equal the true
/// product pattern (e.g. from a previous spgemm on the same structure).
void spgemm_numeric_only(const CSRMatrix& A, const CSRMatrix& B, CSRMatrix& C,
                         WorkCounters* wc = nullptr);

/// C = A + B (same shape; patterns may differ). Parallel, rows sorted if
/// inputs sorted.
CSRMatrix csr_add(const CSRMatrix& A, const CSRMatrix& B,
                  WorkCounters* wc = nullptr);

/// Extracts the sub-matrix A[r0:r1, c0:c1) (half-open ranges) with column
/// indices shifted to start at 0. Used to split CF-permuted operators into
/// the Acc/Acf/Afc/Aff blocks of the identity-block RAP (§3.1.1).
CSRMatrix csr_block(const CSRMatrix& A, Int r0, Int r1, Int c0, Int c1);

}  // namespace hpamg
