// Figure 8 reproduction: strong scaling on the reservoir problem.
//
// A fixed global pressure system (3-D 7-pt, log-normal permeability with
// multi-decade jumps — the paper's proprietary geostatistical field is
// substituted per DESIGN.md §1) is solved with FGMRES + AMG at rtol 1e-5
// across increasing rank counts. Series: the three interpolation schemes
// for HYPRE_opt plus the fastest scheme (mp) for HYPRE_base, exactly the
// four curves of Fig 8. Times are modeled cluster times (log-scale in the
// paper; we print seconds).
//
// Usage: bench_fig8_strong [--n 16] [--max-ranks 8] [--rtol 1e-5]
//                          [--repeat N] [--json out.json]
#include <cstdio>

#include "bench_util.hpp"
#include "gen/reservoir.hpp"

using namespace hpamg;
using namespace hpamg::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const Int n = Int(cli.get_int("n", 24));
  const int max_ranks = int(cli.get_int("max-ranks", 8));
  const double rtol = cli.get_double("rtol", 1e-5);

  CSRMatrix A = reservoir_matrix(n, n, n);
  const NetworkModel net = endeavor_network();
  const Repeat repeat(cli);
  const RunEnv env("fig8_strong");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  LiveSink live_sink(cli);
  sink.report.set_param("n", long(n));
  sink.report.set_param("max_ranks", long(max_ranks));
  sink.report.set_param("rtol", rtol);
  sink.report.set_param("repeat", repeat.count);
  sink.report.set_param("rows", long(A.nrows));
  std::printf("=== Fig 8: strong scaling, reservoir input (%lld rows,"
              " rtol=%.0e) ===\n", (long long)A.nrows, rtol);
  std::printf("(modeled cluster seconds; y-axis is log-scale in the paper)\n\n");
  print_row({"series", "ranks", "setup_s", "solve_s", "total_s", "iters"}, 11);

  struct Series {
    const char* name;
    const char* scheme;
    Variant variant;
  };
  const Series series[] = {
      {"opt-ei4", "ei4", Variant::kOptimized},
      {"opt-2s-ei", "2s-ei", Variant::kOptimized},
      {"opt-mp", "mp", Variant::kOptimized},
      {"base-mp", "mp", Variant::kBaseline},
  };

  for (const Series& s : series) {
    for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
      std::vector<Int> it(ranks);
      SolveReport rep0;
      auto one_pass = [&]() {
      std::vector<double> setup_model(ranks), solve_model(ranks);
      simmpi::run(ranks, [&](simmpi::Comm& c) {
        DistMatrix dA = distribute_csr(c, A);
        DistAMGOptions o = table4_options(s.variant, s.scheme);
        DistHierarchy h = dist_amg_setup(c, dA, o);
        setup_model[c.rank()] =
            projected_phase_seconds(h.setup_times.total(), h.setup_comm, net);
        Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
        const simmpi::CommStats before = c.stats();
        DistSolveResult r = dist_fgmres(c, dA, h, b, x, rtol, 200);
        simmpi::CommStats delta = c.stats().delta_since(before);
        solve_model[c.rank()] =
            projected_phase_seconds(solve_compute_seconds(r.solve_times),
                                    delta, net) +
            double(delta.allreduces) * net.allreduce_seconds(ranks);
        it[c.rank()] = r.iterations;
        if (c.rank() == 0) {
          rep0 = h.report(&r);
          rep0.solve_comm = delta;
        }
      });
      double pass_setup = 0, pass_solve = 0;
      for (int r = 0; r < ranks; ++r) {
        pass_setup = std::max(pass_setup, setup_model[r]);
        pass_solve = std::max(pass_solve, solve_model[r]);
      }
      return std::make_pair(pass_setup, pass_solve);
      };
      if (repeat.warmup()) one_pass();
      std::vector<double> setup_samples, solve_samples;
      for (int i = 0; i < repeat.count; ++i) {
        begin_timed_repeat();
        const auto [ps, pv] = one_pass();
        setup_samples.push_back(ps);
        solve_samples.push_back(pv);
      }
      const double setup = sample_stats(setup_samples).median;
      const double solve = sample_stats(solve_samples).median;
      print_row({s.name, fmt_int(ranks), fmt(setup, "%.4f"),
                 fmt(solve, "%.4f"), fmt(setup + solve, "%.4f"),
                 fmt_int(it[0])}, 11);
      rep0.modeled_setup_seconds = setup;
      rep0.modeled_solve_seconds = solve;
      sink.report.add_run(std::string(s.name) + "/r" + std::to_string(ranks))
          .label("series", s.name)
          .label("scheme", s.scheme)
          .label("variant",
                 s.variant == Variant::kOptimized ? "optimized" : "baseline")
          .metric("ranks", double(ranks))
          .metric("modeled_setup_seconds", setup)
          .metric("modeled_solve_seconds", solve)
          .metric("modeled_total_seconds", setup + solve)
          .report(rep0);
    }
  }
  std::printf("\nExpected shape (paper): iteration counts stay constant per"
              " scheme; the solve scales better than the setup; HYPRE_opt"
              " beats HYPRE_base throughout; setup scalability (Interp, RAP)"
              " is the bottleneck at high rank counts.\n");
  const int live_rc = live_sink.finish();
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  if (live_rc != 0) return live_rc;
  return trace_rc != 0 ? trace_rc : json_rc;
}
