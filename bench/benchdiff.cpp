// benchdiff — compares two BENCH_*.json reports (or two directories of
// them, matched by filename) and gates on regressions:
//
//   benchdiff [options] <old.json> <new.json>
//   benchdiff [options] <old_dir> <new_dir>
//
// Options:
//   --time-tol F    timing relative tolerance   (default 0.50)
//   --work-tol F    work-counter relative tol   (default 0.25)
//   --time-floor F  seconds below which timing deltas never gate (0.05)
//   --all           print every delta, not just the notable ones
//
// Exit code: 0 = no regressions, 1 = regression or missing metric/run/file,
// 2 = usage, I/O, or incomparable-configuration error. This is the CI
// perf-gate: committed baselines under bench/baselines/ are the old side,
// a fresh smoke run is the new side.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/report_diff.hpp"

namespace fs = std::filesystem;
using hpamg::Cli;
using hpamg::DiffOptions;
using hpamg::DiffResult;
using hpamg::MetricClass;
using hpamg::MetricDelta;

namespace {

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

const char* verdict_name(MetricDelta::Verdict v) {
  switch (v) {
    case MetricDelta::Verdict::kOk: return "ok";
    case MetricDelta::Verdict::kImproved: return "improved";
    case MetricDelta::Verdict::kRegressed: return "REGRESSED";
    case MetricDelta::Verdict::kMissing: return "MISSING";
    case MetricDelta::Verdict::kAdded: return "added";
  }
  return "?";
}

const char* class_name(MetricClass c) {
  switch (c) {
    case MetricClass::kTiming: return "time";
    case MetricClass::kWork: return "work";
    case MetricClass::kInfo: return "info";
  }
  return "?";
}

void print_result(const std::string& label, const DiffResult& res,
                  bool show_all) {
  std::printf("== %s ==\n", label.c_str());
  std::printf("%-28s %-34s %-5s %12s %12s %8s  %s\n", "run", "metric", "cls",
              "old", "new", "delta%", "verdict");
  int hidden = 0;
  for (const MetricDelta& d : res.deltas) {
    const bool notable = d.verdict != MetricDelta::Verdict::kOk &&
                         d.verdict != MetricDelta::Verdict::kAdded;
    if (!show_all && !notable) {
      ++hidden;
      continue;
    }
    double pct = 0.0;
    if (d.old_value != 0.0)
      pct = 100.0 * (d.new_value - d.old_value) / d.old_value;
    std::printf("%-28s %-34s %-5s %12.6g %12.6g %+8.1f  %s\n", d.run.c_str(),
                d.key.c_str(), class_name(d.cls), d.old_value, d.new_value,
                pct, verdict_name(d.verdict));
  }
  if (hidden > 0)
    std::printf("(%d within-tolerance/added deltas hidden; --all shows them)\n",
                hidden);
  std::printf(
      "summary: %zu metrics, %d regressed, %d missing, %d improved, "
      "%d added\n\n",
      res.deltas.size(), res.regressions, res.missing, res.improvements,
      res.added);
}

/// 0 = ok, 1 = regression/missing, 2 = error.
int diff_files(const fs::path& old_path, const fs::path& new_path,
               const DiffOptions& opts, bool show_all) {
  std::string old_json, new_json;
  if (!read_file(old_path, old_json)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n",
                 old_path.string().c_str());
    return 2;
  }
  if (!read_file(new_path, new_json)) {
    std::fprintf(stderr, "benchdiff: cannot read %s\n",
                 new_path.string().c_str());
    return 2;
  }
  const DiffResult res = hpamg::diff_bench_reports(old_json, new_json, opts);
  if (!res.error.empty()) {
    std::fprintf(stderr, "benchdiff: %s vs %s: %s\n",
                 old_path.string().c_str(), new_path.string().c_str(),
                 res.error.c_str());
    return 2;
  }
  print_result(old_path.filename().string(), res, show_all);
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Cli's generic parser treats the token after any --flag as its value,
  // which would swallow the first positional after a bare `--all`; strip
  // the boolean flag before parsing.
  bool show_all = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--all") {
      show_all = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  Cli cli(int(args.size()), args.data());
  if (cli.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: benchdiff [--time-tol F] [--work-tol F] "
                 "[--time-floor F] [--all] <old> <new>\n"
                 "       (<old>/<new>: BENCH_*.json files, or directories "
                 "matched by filename)\n");
    return 2;
  }
  DiffOptions opts;
  opts.time_rel_tol = cli.get_double("time-tol", opts.time_rel_tol);
  opts.work_rel_tol = cli.get_double("work-tol", opts.work_rel_tol);
  opts.time_floor_seconds =
      cli.get_double("time-floor", opts.time_floor_seconds);

  const fs::path old_arg = cli.positional()[0];
  const fs::path new_arg = cli.positional()[1];
  std::error_code ec;
  const bool old_dir = fs::is_directory(old_arg, ec);
  const bool new_dir = fs::is_directory(new_arg, ec);
  if (old_dir != new_dir) {
    std::fprintf(stderr,
                 "benchdiff: both arguments must be files or both "
                 "directories\n");
    return 2;
  }

  if (!old_dir) return diff_files(old_arg, new_arg, opts, show_all);

  // Directory mode: every BENCH_*.json in the baseline directory must have
  // a same-named counterpart in the new directory (a vanished report is a
  // regression in coverage). Extra new-side reports are informational.
  std::vector<fs::path> baselines;
  for (const fs::directory_entry& e : fs::directory_iterator(old_arg)) {
    const std::string name = e.path().filename().string();
    if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        e.path().extension() == ".json")
      baselines.push_back(e.path());
  }
  std::sort(baselines.begin(), baselines.end());
  if (baselines.empty()) {
    std::fprintf(stderr, "benchdiff: no BENCH_*.json files in %s\n",
                 old_arg.string().c_str());
    return 2;
  }
  int worst = 0;
  for (const fs::path& old_path : baselines) {
    const fs::path new_path = new_arg / old_path.filename();
    if (!fs::exists(new_path)) {
      std::fprintf(stderr, "benchdiff: %s has no counterpart in %s\n",
                   old_path.filename().string().c_str(),
                   new_arg.string().c_str());
      worst = std::max(worst, 1);
      continue;
    }
    worst = std::max(worst, diff_files(old_path, new_path, opts, show_all));
  }
  return worst;
}
