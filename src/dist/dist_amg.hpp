// Distributed AMG: setup and V-cycle over simmpi (the multi-node solver of
// SC'15 §4/§5.3-5.4, Table 4 configurations).
//
// Scheme selection reproduces the paper's three interpolation settings:
//   ei(N)       — extended+i on every level;
//   2s-ei(444)  — aggressive PMIS + 2-stage extended+i on the top level(s);
//   mp          — aggressive PMIS + multipass on the top level(s).
//
// The baseline/optimized split carries every multi-node optimization:
// sequential vs parallel column renumbering (§4.2), full vs filtered
// interpolation row exchange (§4.3), per-exchange request setup vs
// persistent communication (§4.4), plus the node-level kernel differences.
#pragma once

#include <memory>

#include "amg/hierarchy.hpp"
#include "dist/dist_coarsen.hpp"
#include "dist/dist_interp.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/dist_spgemm.hpp"
#include "dist/halo.hpp"
#include "matrix/dense.hpp"
#include "support/report.hpp"
#include "support/timer.hpp"

namespace hpamg {

struct DistSolveResult;  // dist_krylov.hpp

struct DistAMGOptions {
  Variant variant = Variant::kOptimized;
  Int max_levels = 16;          ///< Table 4
  Long coarse_size = 64;        ///< global rows triggering direct solve
  StrengthOptions strength;
  InterpKind interp = InterpKind::kExtPI;
  Int num_aggressive_levels = 0;  ///< 1 for 2s-ei / mp schemes
  TruncationOptions truncation;
  Int num_sweeps = 1;
  std::uint64_t seed = 1234;
};

struct DistLevel {
  DistMatrix A;
  DistMatrix P;
  DistMatrix R;   ///< kept transpose (optimized variant only)
  bool has_R = false;
  CFMarker cf;
  std::vector<Int> c_rows, f_rows;  ///< optimized: branch-free CF sweeps
  std::vector<double> inv_diag;
  std::unique_ptr<HaloExchange> halo_A;  ///< x halo for SpMV/smoothing
  std::unique_ptr<HaloExchange> halo_P;  ///< coarse-vector halo for interp
  std::unique_ptr<HaloExchange> halo_R;  ///< fine-vector halo for restrict
  // Solve workspace.
  Vector b, x, r, x_ext, temp;
};

struct DistHierarchy {
  DistAMGOptions opts;
  std::vector<DistLevel> levels;
  LUSolver coarse_lu;            ///< factorization of the gathered coarsest A
  std::vector<Long> coarse_starts;  ///< partition of the coarsest level
  PhaseTimes setup_times;
  WorkCounters setup_work;
  simmpi::CommStats setup_comm;  ///< delta of comm stats over setup
  /// Comm-stat deltas per setup phase (Interp / RAP / Strength+Coarsen) —
  /// inputs to the network model for the Fig 7/8 breakdowns.
  std::map<std::string, simmpi::CommStats> phase_comm;
  std::uint64_t interp_exchange_bytes = 0;  ///< §4.3 volume metric
  std::vector<LevelStats> stats;
  /// Setup incidents (regularized coarse solve, ...) — merged into the
  /// report's `status` block. Identical on every rank (the triggering
  /// checks run on the gathered coarsest operator).
  std::vector<std::string> events;
  /// Non-owning per-cycle telemetry sink (amg/telemetry.hpp), loaned by
  /// the rank's solve driver; null when telemetry is off. Each rank owns
  /// its hierarchy, so the hook is rank-local.
  CycleTelemetryHook* telemetry = nullptr;

  double operator_complexity() const;
  /// Σ_l n_l / n_0 over the global level sizes.
  double grid_complexity() const;

  /// Machine-readable report of this rank's view of the setup (global
  /// hierarchy stats + local phase/counter/comm breakdowns) and, when `sr`
  /// is given, the solve (see support/report.hpp for the JSON schema).
  /// The solve-phase comm delta is not tracked here — callers that want
  /// it populate `solve_comm` on the returned report themselves.
  SolveReport report(const DistSolveResult* sr = nullptr) const;
};

/// Collective: every rank calls with its piece of A.
DistHierarchy dist_amg_setup(simmpi::Comm& comm, const DistMatrix& A,
                             const DistAMGOptions& opts);

/// One distributed V-cycle: x <- x + B(b - Ax). Collective.
void dist_vcycle(simmpi::Comm& comm, DistHierarchy& h, const Vector& b,
                 Vector& x, PhaseTimes* pt = nullptr);

// --- distributed vector/matrix kernels (shared with dist_krylov) ---

/// y = A x with halo exchange of x.
void dist_spmv(simmpi::Comm& comm, const DistMatrix& A, HaloExchange& halo,
               const Vector& x, Vector& x_ext, Vector& y);

/// Y = A X for all columns, with ONE batched halo exchange (all m values
/// per boundary row in a single message per peer — per-RHS message count
/// is 1/m of calling dist_spmv per column).
void dist_spmv_multi(simmpi::Comm& comm, const DistMatrix& A,
                     HaloExchange& halo, const MultiVector& X,
                     MultiVector& X_ext, MultiVector& Y);

/// y = A^T x via partial-sum scatter + triplet exchange (the baseline
/// restriction path: no stored transpose).
void dist_spmv_transpose(simmpi::Comm& comm, const DistMatrix& A,
                         const Vector& x, Vector& y);

/// Global dot product: local dot + allreduce.
double dist_dot(simmpi::Comm& comm, const Vector& a, const Vector& b);
double dist_norm2(simmpi::Comm& comm, const Vector& a);

}  // namespace hpamg
