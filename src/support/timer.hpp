// Wall-clock timing and a named-phase registry used by the AMG solver and
// benchmarks to produce the per-kernel breakdowns of Fig 5 / Fig 7.
#pragma once

#include <ctime>

#include <chrono>
#include <map>
#include <string>

#include "support/common.hpp"

namespace hpamg {

/// Per-thread CPU-time stopwatch. Inside simmpi (many rank-threads
/// timesharing the host's cores) this measures a rank's actual compute
/// work, excluding time spent blocked on receives or descheduled — the
/// quantity a dedicated node would spend.
class CpuTimer {
 public:
  CpuTimer() { reset(); }
  void reset() { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start_); }
  double seconds() const {
    timespec now;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    return double(now.tv_sec - start_.tv_sec) +
           1e-9 * double(now.tv_nsec - start_.tv_nsec);
  }

 private:
  timespec start_;
};

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates seconds per named phase (e.g. "RAP", "Interp", "GS").
class PhaseTimes {
 public:
  void add(const std::string& phase, double sec) { times_[phase] += sec; }
  double get(const std::string& phase) const {
    auto it = times_.find(phase);
    return it == times_.end() ? 0.0 : it->second;
  }
  double total() const {
    double t = 0;
    for (auto& [k, v] : times_) t += v;
    return t;
  }
  const std::map<std::string, double>& all() const { return times_; }
  void clear() { times_.clear(); }
  /// Merges another breakdown into this one.
  void merge(const PhaseTimes& other) {
    for (auto& [k, v] : other.times_) times_[k] += v;
  }

 private:
  std::map<std::string, double> times_;
};

/// RAII helper: adds elapsed time to a phase on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimes& pt, std::string phase)
      : pt_(pt), phase_(std::move(phase)) {}
  ~ScopedPhase() { pt_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimes& pt_;
  std::string phase_;
  Timer timer_;
};

}  // namespace hpamg
