// Krylov solvers: CG / PCG, GMRES(m), and Flexible GMRES (Saad 1993).
//
// The paper's multi-node configuration (Table 4) wraps AMG as the
// preconditioner of Flexible GMRES; FGMRES tolerates the slightly varying
// preconditioner that a parallel AMG V-cycle is. CG is provided for SPD
// systems and used by the examples.
#pragma once

#include <functional>

#include "matrix/csr.hpp"
#include "matrix/vector_ops.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"

namespace hpamg {

/// Preconditioner apply: z = M^{-1} r (must accept z == r storage aliasing
/// being distinct; z is overwritten).
using Preconditioner = std::function<void(const Vector& r, Vector& z)>;

struct KrylovResult {
  Int iterations = 0;
  double final_relres = 0.0;
  bool converged = false;
  /// Why the solve stopped (support/error.hpp): kOk, kMaxIterations,
  /// kNonFinite (NaN/Inf residual or basis vector), kStagnated (exact
  /// breakdown — no further progress possible). converged == status_ok().
  Status status = Status::kMaxIterations;
  /// First iteration that produced a non-finite quantity; -1 if none.
  Int nonfinite_iteration = -1;
  std::vector<double> history;
};

struct KrylovOptions {
  double rtol = 1e-7;
  Int max_iterations = 1000;
  Int restart = 50;  ///< GMRES/FGMRES restart length
};

/// (Preconditioned) conjugate gradient. Pass a null precond for plain CG.
[[nodiscard]] KrylovResult pcg(const CSRMatrix& A, const Vector& b, Vector& x,
                 const KrylovOptions& opt = {},
                 const Preconditioner& precond = nullptr);

/// Right-preconditioned restarted GMRES(m).
[[nodiscard]] KrylovResult gmres(const CSRMatrix& A, const Vector& b, Vector& x,
                   const KrylovOptions& opt = {},
                   const Preconditioner& precond = nullptr);

/// Flexible GMRES(m): the preconditioner may change between iterations
/// (stores the preconditioned basis Z).
[[nodiscard]] KrylovResult fgmres(const CSRMatrix& A, const Vector& b, Vector& x,
                    const KrylovOptions& opt = {},
                    const Preconditioner& precond = nullptr);

}  // namespace hpamg
