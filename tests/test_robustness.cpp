// Robustness properties: nonsymmetric operators (the atmosmod class of
// Table 2 is convection-dominated), bitwise determinism of setup, generator
// reproducibility, and cross-feature combinations.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/solver.hpp"
#include "gen/reservoir.hpp"
#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "krylov/krylov.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

/// Upwind convection-diffusion: -eps*Lap(u) + c . grad(u), first-order
/// upwind. Nonsymmetric; strength graph is direction-dependent.
CSRMatrix convection_diffusion(Int nx, Int ny, double eps, double cx,
                               double cy) {
  std::vector<Triplet> t;
  auto id = [nx](Int x, Int y) { return y * nx + x; };
  for (Int y = 0; y < ny; ++y)
    for (Int x = 0; x < nx; ++x) {
      const Int i = id(x, y);
      double diag = 4.0 * eps + std::abs(cx) + std::abs(cy);
      auto edge = [&](Int xx, Int yy, double w) {
        if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) return;  // Dirichlet
        t.push_back({i, id(xx, yy), w});
      };
      edge(x - 1, y, -eps - std::max(cx, 0.0));
      edge(x + 1, y, -eps + std::min(cx, 0.0));
      edge(x, y - 1, -eps - std::max(cy, 0.0));
      edge(x, y + 1, -eps + std::min(cy, 0.0));
      t.push_back({i, i, diag});
    }
  return CSRMatrix::from_triplets(nx * ny, nx * ny, std::move(t));
}

class ConvectionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConvectionSweep, AmgFgmresSolvesNonsymmetric) {
  const double peclet = GetParam();
  CSRMatrix A = convection_diffusion(30, 30, 1.0, peclet, 0.5 * peclet);
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-8;
  o.max_iterations = 300;
  KrylovResult r = fgmres(A, b, x, o, [&](const Vector& rr, Vector& z) {
    amg.precondition(rr, z);
  });
  EXPECT_TRUE(r.converged) << "peclet " << peclet;
  EXPECT_LT(test::relative_residual(A, x, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Peclets, ConvectionSweep,
                         ::testing::Values(0.0, 1.0, 4.0, 16.0));

TEST(Determinism, SetupIsBitwiseReproducible) {
  CSRMatrix A = reservoir_matrix(10, 10, 10);
  AMGOptions o;
  Hierarchy h1 = build_hierarchy(A, o);
  Hierarchy h2 = build_hierarchy(A, o);
  ASSERT_EQ(h1.num_levels(), h2.num_levels());
  for (Int l = 0; l < h1.num_levels(); ++l) {
    EXPECT_EQ(h1.levels[l].A.rowptr, h2.levels[l].A.rowptr);
    EXPECT_EQ(h1.levels[l].A.colidx, h2.levels[l].A.colidx);
    EXPECT_EQ(h1.levels[l].A.values, h2.levels[l].A.values);
    EXPECT_EQ(h1.levels[l].perm.perm, h2.levels[l].perm.perm);
  }
}

TEST(Determinism, SeedChangesSplittingButNotCorrectness) {
  CSRMatrix A = lap2d_5pt(25, 25);
  AMGOptions o1, o2;
  o2.seed = o1.seed + 1;
  AMGSolver s1(A, o1), s2(A, o2);
  // Different random tie-breakers -> (almost surely) different coarse sets.
  EXPECT_NE(s1.hierarchy().levels[0].nc, 0);
  Vector b(A.nrows, 1.0), x1(A.nrows, 0.0), x2(A.nrows, 0.0);
  SolveResult r1 = s1.solve(b, x1, 1e-8, 100);
  SolveResult r2 = s2.solve(b, x2, 1e-8, 100);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  // The paper observes ~2% iteration drift between RNGs; allow a few.
  EXPECT_NEAR(r1.iterations, r2.iterations, 3);
}

TEST(Determinism, GeneratorsAreReproducible) {
  for (const char* name : {"thermal2", "StocF-1465", "G2_circuit"}) {
    CSRMatrix a = generate_suite_matrix(name, 0.002);
    CSRMatrix b = generate_suite_matrix(name, 0.002);
    EXPECT_TRUE(csr_approx_equal(a, b, 0.0)) << name;
  }
  ReservoirOptions ro;
  EXPECT_EQ(permeability_field(8, 8, 8, ro), permeability_field(8, 8, 8, ro));
}

TEST(FeatureCombos, WcycleWithMulticolorAndAggressive) {
  CSRMatrix A = lap3d_7pt(10, 10, 10);
  AMGOptions o;
  o.cycle_gamma = 2;
  o.smoother = SmootherKind::kMultiColorGS;
  o.interp = InterpKind::kMultipass;
  o.num_aggressive_levels = 1;
  AMGSolver amg(A, o);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  EXPECT_TRUE(amg.solve(b, x, 1e-7, 200).converged);
}

TEST(FeatureCombos, RefreshThenPrecondition) {
  CSRMatrix A = lap2d_5pt(24, 24);
  AMGSolver amg(A, {});
  CSRMatrix A2 = A;
  for (auto& v : A2.values) v *= 1.5;
  amg.refresh_values(A2);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-9;
  KrylovResult r = pcg(A2, b, x, o, [&](const Vector& rr, Vector& z) {
    amg.precondition(rr, z);
  });
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 20);
}

TEST(FeatureCombos, PartitionedInterpToggleGivesSameConvergence) {
  CSRMatrix A = lap3d_7pt(10, 10, 10);
  AMGOptions on, off;
  on.partitioned_interp = true;
  off.partitioned_interp = false;
  AMGSolver s_on(A, on), s_off(A, off);
  Vector b(A.nrows, 1.0), x1(A.nrows, 0.0), x2(A.nrows, 0.0);
  SolveResult r_on = s_on.solve(b, x1, 1e-7, 100);
  SolveResult r_off = s_off.solve(b, x2, 1e-7, 100);
  ASSERT_TRUE(r_on.converged);
  ASSERT_TRUE(r_off.converged);
  // Same operator up to truncation tie-breaking: iteration counts agree to
  // within a cycle or two.
  EXPECT_NEAR(r_on.iterations, r_off.iterations, 2);
}

TEST(FeatureCombos, StrengthThresholdSweepAllConverge) {
  CSRMatrix A = generate_suite_matrix("StocF-1465", 0.001);
  for (double alpha : {0.1, 0.25, 0.5, 0.6, 0.9}) {
    AMGOptions o;
    o.strength.threshold = alpha;
    AMGSolver amg(A, o);
    Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-7, 300);
    EXPECT_TRUE(r.converged) << "alpha " << alpha;
  }
}

TEST(FeatureCombos, NumSweepsTradeIterationsForWork) {
  CSRMatrix A = lap2d_5pt(30, 30);
  Int iters1 = 0, iters2 = 0;
  for (auto [sweeps, out] :
       {std::pair<Int, Int*>{1, &iters1}, {2, &iters2}}) {
    AMGOptions o;
    o.num_sweeps = sweeps;
    AMGSolver amg(A, o);
    Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-8, 200);
    ASSERT_TRUE(r.converged);
    *out = r.iterations;
  }
  EXPECT_LE(iters2, iters1);
}

}  // namespace
}  // namespace hpamg
