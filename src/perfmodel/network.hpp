// Alpha-beta network model of the Endeavor FDR InfiniBand fabric.
//
// The paper observes (§5.4) that strong-scaled halo-exchange messages drop
// below 100 KB and achieve under 1 GB/s effective unidirectional bandwidth
// per node — about 1/6 of the fabric peak. The model captures that with a
// message-size-dependent efficiency curve eff(s) = s / (s + ramp) and a
// per-message latency; non-persistent requests additionally pay a setup
// cost per message, which is what persistent communication (§4.4)
// eliminates (the paper measures 1.7-1.8x faster halo exchanges from it).
#pragma once

#include "dist/simmpi.hpp"

namespace hpamg {

struct NetworkModel {
  /// Effective per-message overhead with persistent requests. Calibrated so
  /// that a 100 KB message achieves ~1/6 of peak bandwidth, the paper's
  /// §5.4 measurement (this folds rendezvous, progress, and serialization
  /// across an exchange's messages into one per-message constant).
  double overhead_s = 70e-6;
  double peak_bw_bytes_per_s = 6.8e9;  ///< FDR 4x unidirectional
  /// Additional per-message request-setup cost paid by non-persistent
  /// sends. Calibrated to the paper's 1.7-1.8x persistent-communication
  /// halo-exchange speedup on small messages (§4.4, §5.4).
  double setup_cost_s = 55e-6;

  /// Time for one message of `bytes`.
  double message_seconds(double bytes, bool persistent) const {
    return overhead_s + (persistent ? 0.0 : setup_cost_s) +
           bytes / peak_bw_bytes_per_s;
  }

  /// Projected network time for a rank's aggregate comm counters. Message
  /// sizes within an aggregate are approximated by their mean.
  double seconds(const simmpi::CommStats& cs) const;

  /// All-reduce cost: log2(P) latency-bound stages.
  double allreduce_seconds(int nranks) const;
};

NetworkModel endeavor_network();

}  // namespace hpamg
