// Galerkin triple product C = R * A * P (the "RAP" of SC'15 §3.1.1).
//
// Four implementations:
//  - rap_unfused:       B = R*A materialized fully, then C = B*P. Two
//                       complete SpGEMMs; B streams through memory twice.
//  - rap_fused_hypre:   the baseline HYPRE fusion (paper Fig 1b): the triple
//                       loop multiplies r_ij * a_jk and immediately scatters
//                       temp * p_kl — saving B's storage but performing
//                       redundant flops (the paper measures 1.73x more).
//  - rap_fused_rowwise: the paper's fusion (Fig 1a): compute row B_i, then
//                       immediately consume it into C_i while it is hot in
//                       cache. Per-thread output chunks as in spgemm_onepass.
//  - rap_cf_block:      exploits P = [I; P_F] after CF reordering:
//                       RAP = Acc + Pf^T Afc + (Acf + Pf^T Aff) Pf, so the
//                       triple product only touches the F x F block.
#pragma once

#include "matrix/csr.hpp"
#include "spgemm/spgemm.hpp"
#include "support/counters.hpp"

namespace hpamg {

/// B = R*A then C = B*P, using the given SpGEMM building block.
CSRMatrix rap_unfused(const CSRMatrix& R, const CSRMatrix& A,
                      const CSRMatrix& P, bool onepass = true,
                      WorkCounters* wc = nullptr);

/// HYPRE-style fusion (Fig 1b) — the baseline.
CSRMatrix rap_fused_hypre(const CSRMatrix& R, const CSRMatrix& A,
                          const CSRMatrix& P, WorkCounters* wc = nullptr);

/// Row-wise fusion (Fig 1a) — the optimized kernel.
CSRMatrix rap_fused_rowwise(const CSRMatrix& R, const CSRMatrix& A,
                            const CSRMatrix& P, const SpgemmOptions& opt = {},
                            WorkCounters* wc = nullptr);

/// Identity-block RAP. `Aperm` is the CF-permuted fine operator (coarse
/// rows/cols first, nc of them), `Pf` the (n-nc) x nc fine block of the
/// interpolation operator, and `PfT` its transpose (kept from setup).
CSRMatrix rap_cf_block(const CSRMatrix& Aperm, const CSRMatrix& Pf,
                       const CSRMatrix& PfT, Int nc,
                       const SpgemmOptions& opt = {},
                       WorkCounters* wc = nullptr);

}  // namespace hpamg
