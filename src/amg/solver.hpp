// AMGSolver — the user-facing front end.
//
// Wraps setup (build_hierarchy) and solve: either standalone AMG iteration
// (V-cycles to tolerance, the paper's single-node configuration, Table 3)
// or as a preconditioner apply for the Krylov solvers in src/krylov
// (the multi-node configuration, Table 4, uses FGMRES + AMG).
#pragma once

#include <cmath>
#include <memory>

#include "amg/cycle.hpp"
#include "amg/hierarchy.hpp"
#include "support/report.hpp"

namespace hpamg {

struct SolveResult {
  Int iterations = 0;
  double final_relres = 0.0;
  bool converged = false;
  std::vector<double> history;  ///< relative residual after each iteration
  PhaseTimes solve_times;       ///< GS / SpMV / BLAS1 / Solve_etc
  WorkCounters solve_work;

  /// Geometric-mean residual contraction per cycle ("convergence factor",
  /// the paper's §2 quality metric); 0 when fewer than 2 samples.
  double convergence_factor() const {
    if (history.size() < 2 || history.front() <= 0.0) return 0.0;
    return std::pow(history.back() / history.front(),
                    1.0 / double(history.size() - 1));
  }
};

class AMGSolver {
 public:
  /// Runs the setup phase immediately.
  AMGSolver(const CSRMatrix& A, const AMGOptions& opts);

  /// Standalone AMG: repeat V-cycles until ||b - Ax|| / ||b|| < rtol.
  SolveResult solve(const Vector& b, Vector& x, double rtol = 1e-7,
                    Int max_iterations = 500);

  /// One V-cycle as a preconditioner apply: x = B(b), zero initial guess.
  /// b and x are in the original matrix ordering.
  void precondition(const Vector& b, Vector& x, PhaseTimes* pt = nullptr,
                    WorkCounters* wc = nullptr);

  /// Numeric setup refresh for time-dependent problems: A_new must have
  /// the SAME sparsity pattern as the setup matrix, only different values.
  /// The CF splittings and interpolation operators are frozen (lagged, the
  /// standard reuse strategy); the level operators are recomputed through
  /// the Galerkin products and the smoother plans rebuilt — skipping
  /// strength, coarsening and interpolation construction entirely (the
  /// paper's "setup will be called only occasionally" scenario, §5.2).
  /// Throws if the pattern differs.
  void refresh_values(const CSRMatrix& A_new);

  /// Machine-readable report of the setup phase and, when `sr` is given,
  /// the solve: per-level stats, phase breakdowns, work counters, and
  /// convergence history (see support/report.hpp for the JSON schema).
  SolveReport report(const SolveResult* sr = nullptr) const;

  Hierarchy& hierarchy() { return h_; }
  const Hierarchy& hierarchy() const { return h_; }
  const PhaseTimes& setup_times() const { return h_.setup_times; }
  double operator_complexity() const { return h_.operator_complexity(); }
  Int num_rows() const { return h_.levels.empty() ? 0 : h_.levels[0].n; }

 private:
  Hierarchy h_;
};

}  // namespace hpamg
