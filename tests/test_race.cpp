// ThreadSanitizer stress suite. These tests are meaningful in any build
// (they assert functional outcomes), but their real job is to hand TSan
// dense concurrent schedules over every shared structure the solver
// touches from multiple threads:
//   - the metrics / trace / fault registries (find-or-create under a lock,
//     lock-free recording after);
//   - parallel SpMV / hybrid-GS / SpGEMM kernels reading one shared
//     hierarchy from concurrent caller threads;
//   - simmpi multi-rank exchanges, where every rank is a thread and the
//     mailboxes / collectives are the shared state.
// All stress threads here are plain std::threads, which TSan models
// fully. CI runs this binary under -DHPAMG_SANITIZE=thread with
// OMP_NUM_THREADS=1: libgomp's fork-join happens-before is invisible to
// TSan, so multi-thread OMP teams would drown the run in false
// positives (see tsan.supp and EXPERIMENTS.md "ThreadSanitizer pass").
// In the ASan/UBSan matrix entry the same tests run with 4-thread OMP
// teams, so the nested-team schedules stay exercised there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/smoother.hpp"
#include "amg/solver.hpp"
#include "amg/spmv.hpp"
#include "dist/dist_amg.hpp"
#include "dist/dist_krylov.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/halo.hpp"
#include "gen/stencil.hpp"
#include "spgemm/spgemm.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

constexpr int kThreads = 4;

/// Runs fn(t) on kThreads std::threads and joins them.
void on_threads(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(fn, t);
  for (auto& th : threads) th.join();
}

// ---- registries ----------------------------------------------------------

TEST(Race, MetricsRegistryConcurrent) {
  metrics::enable();
  metrics::reset();
  // Every thread find-or-creates the same instrument names (racing the
  // registry lock) and hammers the lock-free record paths.
  on_threads([](int t) {
    metrics::Counter& shared = metrics::counter("race.counter");
    metrics::Gauge& g = metrics::gauge("race.gauge");
    metrics::Histogram& h = metrics::histogram("race.hist");
    metrics::Counter& mine =
        metrics::counter("race.counter." + std::to_string(t));
    for (int i = 0; i < 2000; ++i) {
      shared.add(1);
      mine.add(1);
      g.set(double(i));
      h.observe(std::uint64_t(i));
      if (i % 256 == 0) (void)metrics::snapshot();  // reader racing writers
    }
    metrics::MemTagScope scope(metrics::MemTag::kWorkspace);
    std::vector<double, metrics::CountingAllocator<double>> v(128, 0.0);
    v.resize(512);
  });
  EXPECT_EQ(metrics::counter("race.counter").value(), 2000u * kThreads);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(metrics::counter("race.counter." + std::to_string(t)).value(),
              2000u);
  EXPECT_EQ(metrics::histogram("race.hist").count(), 2000u * kThreads);
  metrics::reset();
  metrics::disable();
}

TEST(Race, TraceRecordingConcurrent) {
  trace::reset();
  trace::enable(4096);
  on_threads([](int t) {
    trace::set_thread_track(0, "host", "racer " + std::to_string(t));
    for (int i = 0; i < 1000; ++i) {
      TRACE_SPAN("race.span", std::int64_t(i));
      trace::instant("race.instant");
      trace::counter("race.counter", "i", i);
      if (i % 100 == 0) {
        const std::uint64_t id = trace::next_flow_id();
        trace::flow_out("race.flow", id, t, 8);
        trace::flow_in("race.flow", id, t, 8);
      }
    }
  });
  trace::disable();
  const trace::TraceStats st = trace::stats();
  EXPECT_GE(st.tracks, std::size_t(kThreads));
  EXPECT_GT(st.recorded, 0u);
  EXPECT_FALSE(trace::export_chrome_json().empty());
  trace::reset();
}

TEST(Race, FaultRegistryConcurrent) {
  fault::reset();
  fault::Schedule everytime;
  fault::arm("race.always", everytime);
  fault::Schedule never;
  never.probability = 0.0;
  fault::arm("race.never", never);
  on_threads([](int t) {
    std::vector<double> v(64, 1.0);
    for (int i = 0; i < 2000; ++i) {
      std::uint64_t draw = 0;
      (void)fault::should_fire("race.always", &draw);
      (void)fault::should_fire("race.never");
      fault::maybe_poison("race.never", v.data(), v.size());
      if (t == 0 && i % 500 == 0) fault::arm("race.rearmed");  // racing arm
      (void)fault::hits("race.always");
    }
  });
  EXPECT_EQ(fault::hits("race.always"), std::uint64_t(2000) * kThreads);
  EXPECT_EQ(fault::fires("race.never"), 0u);
  fault::reset();
  EXPECT_FALSE(fault::enabled());
}

// ---- shared-hierarchy kernels --------------------------------------------

TEST(Race, SharedHierarchyKernelsConcurrent) {
  const CSRMatrix A = lap2d_5pt(40, 40);
  AMGOptions opts;
  opts.variant = Variant::kOptimized;
  const Hierarchy h = build_hierarchy(A, opts);
  ASSERT_GE(h.num_levels(), 2);
  const Level& L = h.levels[0];
  const HybridGSBaseline gs(A);
  const Vector ones(std::size_t(A.nrows), 1.0);

  // Concurrent read-only kernels over one shared hierarchy; every thread
  // owns its outputs. The kernels' internal `#pragma omp parallel` teams
  // nest under these caller threads, which is exactly the shape of a
  // multi-rank solve (one OpenMP team per simmpi rank thread).
  std::atomic<int> failures{0};
  on_threads([&](int t) {
    Vector y(std::size_t(A.nrows), 0.0), r(std::size_t(A.nrows), 0.0);
    Vector x(std::size_t(A.nrows), 0.0), tmp(std::size_t(A.nrows), 0.0);
    for (int round = 0; round < 3; ++round) {
      spmv(A, ones, y);
      const double rr = spmv_residual_norm2sq_fused(A, x, ones, r);
      if (!(rr > 0.0)) failures.fetch_add(1);
      gs.sweep(A, ones, x, tmp, /*forward=*/(t % 2 == 0));
      jacobi_sweep(A, ones, x, tmp);
      if (L.PfT.nrows > 0) {
        Vector e(std::size_t(L.nc), 1.0), xt(std::size_t(L.n), 0.0);
        Vector rc(std::size_t(L.nc), 0.0);
        interp_add_identity_block(L.Pf, e, xt, L.nc);
        restrict_identity_block(L.PfT, y, rc, L.nc);
      }
      const CSRMatrix AA = spgemm_twopass(A, A);
      if (AA.nrows != A.nrows) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(Race, SolveWithInstrumentationConcurrent) {
  // End-to-end single-node solves on separate solver instances, with every
  // always-compiled instrumentation layer live, racing a trace/metrics
  // reader thread. Covers the instrumented OpenMP kernels (SpMV, GS,
  // SpGEMM inside setup) under the exact run-level switches benches use.
  metrics::enable();
  trace::reset();
  trace::enable(8192);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      (void)metrics::snapshot();
      (void)trace::stats();
      std::this_thread::yield();
    }
  });
  on_threads([](int) {
    const CSRMatrix A = lap2d_5pt(24, 24);
    AMGOptions opts;
    opts.variant = Variant::kOptimized;
    AMGSolver solver(A, opts);
    Vector b(std::size_t(A.nrows), 1.0), x(std::size_t(A.nrows), 0.0);
    const SolveResult res = solver.solve(b, x, 1e-8, 60);
    EXPECT_TRUE(status_ok(res.status)) << status_name(res.status);
  });
  done.store(true);
  reader.join();
  trace::disable();
  trace::reset();
  metrics::disable();
}

// ---- simmpi multi-rank ---------------------------------------------------

TEST(Race, SimmpiExchangeManyRounds) {
  // Four rank-threads hammer the mailboxes: point-to-point ring traffic,
  // halo exchanges on a shared-by-construction pattern, and interleaved
  // collectives. Message payloads vary per round so delivery races would
  // surface as wrong sums, and TSan watches the mailbox internals.
  const CSRMatrix A = lap2d_5pt(18, 17);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    HaloExchange halo(c, dA.colmap, dA.row_starts, true);
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int round = 0; round < 50; ++round) {
      std::vector<Long> payload(16, Long(c.rank() + round));
      c.send_vec(next, 7600, payload);
      const std::vector<Long> got = c.recv_vec<Long>(prev, 7600);
      ASSERT_EQ(got.size(), payload.size());
      EXPECT_EQ(got[0], Long(prev + round));

      Vector x(std::size_t(dA.local_rows()), double(round));
      Vector x_ext;
      halo.exchange(x, x_ext);
      const double sum = c.allreduce_sum(double(c.rank()));
      EXPECT_EQ(sum, 6.0);
      if (round % 10 == 0) c.barrier();
    }
  });
}

TEST(Race, SimmpiDistributedSolve) {
  // Full distributed pipeline on 4 rank-threads with instrumentation on:
  // setup (coarsen/interp/RAP exchanges), FGMRES solve (halo + allreduce
  // per iteration), teardown. With OMP_NUM_THREADS >= 4 each rank's
  // kernels also spawn OpenMP teams, so rank-level and team-level
  // parallelism overlap — the paper's node x core decomposition.
  metrics::enable();
  const CSRMatrix A = lap2d_5pt(26, 26);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistHierarchy dh = dist_amg_setup(c, dA, DistAMGOptions{});
    Vector b(std::size_t(dA.local_rows()), 1.0);
    Vector x(std::size_t(dA.local_rows()), 0.0);
    const DistSolveResult res = dist_fgmres(c, dA, dh, b, x, 1e-8, 40, 20);
    EXPECT_TRUE(status_ok(res.status)) << status_name(res.status);
  });
  metrics::disable();
  metrics::reset();
}

}  // namespace
}  // namespace hpamg
