// Wait-state classification over exported Chrome traces (Scalasca-style).
//
// Consumes the trace-event JSON that support/trace.cpp exports and answers
// "why was this rank blocked": every microsecond of "blocked"-category self
// time is classified as
//
//   late_sender       recv posted before the matching send happened —
//                     the receiver waited for a late sender
//                     (flow_out ts inside the recv span's window);
//   late_receiver     a blocking send waited for its receiver to arrive
//                     (matched flow_in ts inside the send span's window);
//   wait_collective   time between this rank entering a collective and the
//                     LAST rank entering the same instance of it;
//   transfer          the matched remainder: data in flight, or the
//                     collective's own operation after all ranks arrived;
//   unattributed      blocked spans whose flow arrow is unmatched (lost to
//                     ring wraparound) or whose collective instance cannot
//                     be aligned across ranks — reported explicitly instead
//                     of skewing the other buckets (see ISSUE 8 satellite).
//
// The five buckets sum exactly to the rank's blocked self time as
// trace_summary computes it (same enclosing-span subtraction), which is the
// cross-tool invariant perf_report --check enforces.
//
// Also derived: per-kernel load imbalance (max/avg self time across ranks)
// and an approximate cross-rank critical path (backward replay from the
// latest-finishing rank, hopping send->recv flow arrows).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/report.hpp"

namespace hpamg::trace_analyze {

/// One completed span lifted out of the trace JSON.
struct SpanRec {
  std::string name;
  std::string cat;
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  double self_us = 0.0;  ///< dur minus nested spans (filled by analyze)
};

/// One flow endpoint ("s" = send side, "f" = recv side).
struct FlowEnd {
  int pid = 0;
  int tid = 0;
  double ts_us = 0.0;
  long long bytes = 0;
  bool present = false;
};

/// Parsed timeline: everything analyze() needs, separated from the JSON.
struct Timeline {
  std::map<int, std::string> process_names;
  std::vector<SpanRec> spans;
  /// flow id -> (send endpoint, recv endpoint); a half-arrow leaves the
  /// other endpoint's `present` false.
  std::map<long long, std::pair<FlowEnd, FlowEnd>> flows;
  /// Ids seen more than once on a side — always a tracer bug.
  long long duplicate_flow_ids = 0;
  long long dropped_total = 0;  ///< otherData.dropped_events
  std::map<std::string, long long> dropped_by_track;
  std::map<std::string, std::string> metadata;  ///< otherData string fields
};

/// Parses an exported Chrome trace document. Throws std::invalid_argument
/// on JSON that does not look like a trace (no traceEvents array).
Timeline parse_timeline(const JsonValue& doc);
Timeline parse_timeline_text(std::string_view json_text);

/// Per-rank (per-pid) wait-state classification, all in microseconds.
/// Invariant: late_sender + late_receiver + wait_collective + transfer +
/// unattributed == blocked (up to FP rounding).
struct RankWait {
  int pid = 0;
  std::string name;        ///< process name ("rank 3", "host")
  double compute_us = 0.0;  ///< non-"blocked" self time
  double blocked_us = 0.0;  ///< "blocked" self time (trace_summary's total)
  double late_sender_us = 0.0;
  double late_receiver_us = 0.0;
  double wait_collective_us = 0.0;
  double transfer_us = 0.0;
  double unattributed_us = 0.0;
};

/// Cross-rank load imbalance of one kernel: max/avg of per-rank self time.
struct KernelImbalance {
  std::string kernel;
  int ranks = 0;       ///< pids the kernel appeared on
  double max_us = 0.0;
  double avg_us = 0.0;
  double imbalance = 0.0;  ///< max / avg (1.0 = perfectly balanced)
  int max_pid = 0;         ///< the slowest rank
};

/// One segment of the reconstructed critical path (walked backward).
struct CriticalSegment {
  int pid = 0;
  double start_us = 0.0;
  double end_us = 0.0;
};

struct Analysis {
  std::vector<RankWait> ranks;             ///< sorted by pid
  std::vector<KernelImbalance> kernels;    ///< sorted worst-first
  std::vector<CriticalSegment> critical_path;  ///< in time order
  double critical_path_us = 0.0;      ///< end of last span - path transfers
  double critical_transfer_us = 0.0;  ///< flow-hop time on the path
  long long unmatched_flows = 0;      ///< half-arrows seen
};

/// Runs the full classification. Pure function of the timeline.
Analysis analyze(const Timeline& t);

/// Publishes the analysis as comm.wait.* gauges (seconds, summed over
/// ranks) when the metrics registry is enabled; no-op otherwise.
void publish_metrics(const Analysis& a);

}  // namespace hpamg::trace_analyze
