#include "support/sort.hpp"

#include <algorithm>

#include "support/parallel.hpp"

namespace hpamg {

namespace {

// Sort chunks in parallel, then do a tree of pairwise merges. Duplicates are
// eliminated with std::unique after each merge (merge keeps runs sorted so a
// linear unique pass suffices).
template <typename T>
std::vector<T> sort_unique_impl(std::vector<T> keys) {
  const Int n = Int(keys.size());
  const int nt = num_threads();
  if (n < 4096 || nt == 1) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }
  std::vector<std::vector<T>> runs(nt);
  // lint: no-span(sort building block; the calling setup kernel holds the enclosing span)
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    auto [lo, hi] = chunk_range(n, nt, t);
    auto& r = runs[t];
    r.assign(keys.begin() + lo, keys.begin() + hi);
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
  }
  // Pairwise merge tree; each level halves the number of runs. Merges at the
  // same level are independent and run in parallel.
  for (int width = 1; width < nt; width *= 2) {
  // lint: no-span(sort building block; the calling setup kernel holds the enclosing span)
#pragma omp parallel for schedule(dynamic, 1)
    for (int t = 0; t < nt; t += 2 * width) {
      if (t + width >= nt) continue;
      auto& a = runs[t];
      auto& b = runs[t + width];
      std::vector<T> merged;
      merged.reserve(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      a = std::move(merged);
      b.clear();
      b.shrink_to_fit();
    }
  }
  return std::move(runs[0]);
}

}  // namespace

std::vector<Long> parallel_sort_unique(std::vector<Long> keys) {
  return sort_unique_impl(std::move(keys));
}

std::vector<Int> parallel_sort_unique(std::vector<Int> keys) {
  return sort_unique_impl(std::move(keys));
}

void parallel_counting_sort(Int n, Int nkeys, const Int* keys,
                            std::vector<Int>& order,
                            std::vector<Int>& bucket_ptr) {
  const int nt = num_threads();
  order.resize(n);
  bucket_ptr.assign(nkeys + 1, 0);
  // Per-thread histograms: counts[t][k] = #items with key k in thread t's
  // chunk. Laid out so the offset pass below assigns each (key, thread)
  // pair a disjoint output range, preserving stability within a thread.
  std::vector<std::vector<Int>> counts(nt, std::vector<Int>(nkeys, 0));
  // lint: no-span(sort building block; the calling setup kernel holds the enclosing span)
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    auto [lo, hi] = chunk_range(n, nt, t);
    auto& c = counts[t];
    for (Int i = lo; i < hi; ++i) ++c[keys[i]];
  }
  // Exclusive scan over (key-major, thread-minor) order.
  Long run = 0;
  for (Int k = 0; k < nkeys; ++k) {
    bucket_ptr[k] = Int(run);
    for (int t = 0; t < nt; ++t) {
      Int c = counts[t][k];
      counts[t][k] = Int(run);
      run += c;
    }
  }
  bucket_ptr[nkeys] = Int(run);
  // lint: no-span(sort building block; the calling setup kernel holds the enclosing span)
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    auto [lo, hi] = chunk_range(n, nt, t);
    auto& c = counts[t];
    for (Int i = lo; i < hi; ++i) order[c[keys[i]]++] = i;
  }
}

}  // namespace hpamg
