// Problem-generator tests: every operator in the Table 2 suite and the
// multi-node inputs must be a well-formed, symmetric, diagonally dominant
// M-matrix-like operator of roughly the documented density.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/amg2013.hpp"
#include "gen/graph.hpp"
#include "gen/reservoir.hpp"
#include "gen/stencil.hpp"
#include "gen/suite.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

void expect_symmetric(const CSRMatrix& A, double tol = 1e-12) {
  for (Int i = 0; i < std::min<Int>(A.nrows, 500); ++i)
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      ASSERT_NEAR(A.values[k], A.at(A.colidx[k], i), tol)
          << "asym at (" << i << "," << A.colidx[k] << ")";
}

void expect_weak_diag_dominance(const CSRMatrix& A, double slack = 1e-9) {
  for (Int i = 0; i < A.nrows; ++i) {
    double diag = 0.0, off = 0.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      if (A.colidx[k] == i)
        diag = A.values[k];
      else
        off += std::abs(A.values[k]);
    }
    ASSERT_GE(diag + slack, off) << "row " << i;
    ASSERT_GT(diag, 0.0) << "row " << i;
  }
}

TEST(Stencil, Lap2d5ptInteriorRow) {
  CSRMatrix A = lap2d_5pt(5, 5);
  A.validate();
  EXPECT_EQ(A.nrows, 25);
  // Interior point (2,2) = row 12: diagonal 4, four -1 neighbors.
  EXPECT_DOUBLE_EQ(A.at(12, 12), 4.0);
  EXPECT_DOUBLE_EQ(A.at(12, 11), -1.0);
  EXPECT_DOUBLE_EQ(A.at(12, 13), -1.0);
  EXPECT_DOUBLE_EQ(A.at(12, 7), -1.0);
  EXPECT_DOUBLE_EQ(A.at(12, 17), -1.0);
  EXPECT_EQ(A.row_nnz(12), 5);
  // Dirichlet: corner diagonal still 4 (dropped neighbors contribute).
  EXPECT_DOUBLE_EQ(A.at(0, 0), 4.0);
  expect_symmetric(A);
}

TEST(Stencil, Lap3d27ptDensity) {
  CSRMatrix A = lap3d_27pt(8, 8, 8);
  A.validate();
  expect_symmetric(A);
  expect_weak_diag_dominance(A);
  // Interior rows have 27 entries; HPCG's stencil.
  const Int mid = grid_index(4, 4, 4, 8, 8);
  EXPECT_EQ(A.row_nnz(mid), 27);
  EXPECT_DOUBLE_EQ(A.at(mid, mid), 26.0);
}

TEST(Stencil, AnisotropyScalesCoupling) {
  CSRMatrix A = lap2d_5pt(6, 6, 8.0);
  const Int mid = grid_index(3, 3, 0, 6, 6);
  EXPECT_DOUBLE_EQ(A.at(mid, mid - 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(mid, mid - 6), -8.0);
}

TEST(Stencil, CoefficientFieldUsesHarmonicMean) {
  auto coeff = [](Int x, Int, Int) { return x == 0 ? 1.0 : 4.0; };
  CSRMatrix A = lap2d_5pt(2, 1, 1.0, coeff);
  // Face between cells 0 and 1: 2*1*4/(1+4) = 1.6.
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.6);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.6);
}

TEST(Stencil, SkewAnd13ptShapes) {
  CSRMatrix S = lap2d_7pt_skew(10, 10);
  S.validate();
  expect_symmetric(S);
  CSRMatrix T = lap3d_13pt(6, 6, 6);
  T.validate();
  expect_symmetric(T);
  const Int mid = grid_index(3, 3, 3, 6, 6);
  EXPECT_EQ(T.row_nnz(mid), 13);
}

TEST(Graph, CircuitLikeIsSymmetricSolvableLaplacian) {
  CSRMatrix A = circuit_like(30, 30);
  A.validate();
  expect_symmetric(A, 1e-10);
  expect_weak_diag_dominance(A);
  const double nnz_per_row = double(A.nnz()) / A.nrows;
  EXPECT_GT(nnz_per_row, 4.0);
  EXPECT_LT(nnz_per_row, 7.0);
}

TEST(Graph, ThermalLikeHasCoefficientSpread) {
  CSRMatrix A = thermal_like(40, 40);
  A.validate();
  expect_symmetric(A, 1e-9);
  expect_weak_diag_dominance(A);
  double dmin = 1e300, dmax = 0;
  for (Int i = 0; i < A.nrows; ++i) {
    dmin = std::min(dmin, A.diag(i));
    dmax = std::max(dmax, A.diag(i));
  }
  EXPECT_GT(dmax / dmin, 100.0);  // graded conductivity
}

TEST(Graph, TwoCubesHasJumpAndShellCouplings) {
  CSRMatrix A = two_cubes_like(12, 12, 12);
  A.validate();
  expect_symmetric(A, 1e-9);
  expect_weak_diag_dominance(A);
  const double nnz_per_row = double(A.nnz()) / A.nrows;
  EXPECT_GT(nnz_per_row, 7.0);
}

TEST(Amg2013Like, SemiStructuredDensity) {
  CSRMatrix A = amg2013_like(16, 16, 16);
  A.validate();
  expect_symmetric(A, 1e-9);
  expect_weak_diag_dominance(A);
  const double nnz_per_row = double(A.nnz()) / A.nrows;
  EXPECT_GT(nnz_per_row, 6.5);
  EXPECT_LT(nnz_per_row, 9.5);  // paper: ~8 nnz/row
}

TEST(Reservoir, PermeabilityFieldIsLogNormalWithJumps) {
  ReservoirOptions opt;
  std::vector<double> K = permeability_field(20, 20, 20, opt);
  double kmin = 1e300, kmax = 0;
  for (double k : K) {
    ASSERT_GT(k, 0.0);
    kmin = std::min(kmin, k);
    kmax = std::max(kmax, k);
  }
  EXPECT_GT(kmax / kmin, 1e3);  // orders-of-magnitude contrast
}

TEST(Reservoir, FieldIsSpatiallyCorrelated) {
  ReservoirOptions opt;
  std::vector<double> K = permeability_field(30, 30, 1, opt);
  // Neighboring cells correlate far more than distant ones.
  double near = 0, far = 0;
  int cnt = 0;
  for (Int y = 0; y < 30; ++y)
    for (Int x = 0; x + 10 < 30; ++x) {
      const double a = std::log(K[y * 30 + x]);
      near += std::abs(a - std::log(K[y * 30 + x + 1]));
      far += std::abs(a - std::log(K[y * 30 + x + 10]));
      ++cnt;
    }
  EXPECT_LT(near / cnt, 0.7 * far / cnt);
}

TEST(Reservoir, MatrixWellFormed) {
  CSRMatrix A = reservoir_matrix(12, 12, 12);
  A.validate();
  expect_symmetric(A, 1e-9);
  expect_weak_diag_dominance(A);
}

TEST(Suite, RegistryMatchesTable2) {
  const auto& suite = table2_suite();
  ASSERT_EQ(suite.size(), 14u);
  EXPECT_EQ(suite[0].name, "2cubes_sphere");
  EXPECT_EQ(suite[10].name, "lap3d_128");
  EXPECT_EQ(suite[10].paper_rows, 2097152);
  EXPECT_EQ(suite[10].paper_nnz_per_row, 27);
  EXPECT_THROW(suite_entry("nonexistent"), std::invalid_argument);
}

class SuiteSweep : public ::testing::TestWithParam<int> {};

TEST_P(SuiteSweep, GeneratesWellFormedOperatorAtScale) {
  const SuiteEntry& e = table2_suite()[GetParam()];
  CSRMatrix A = generate_suite_matrix(e.name, 0.002);
  A.validate();
  // Solver-entry validation (square, finite, nonzero diagonals) must accept
  // every generated operator — the AMGSolver ctor runs this unconditionally.
  A.validate_system_matrix(e.name.c_str());
  ASSERT_GT(A.nrows, 0);
  // Density within 2.5x of the paper's nnz/row (small sizes have more
  // boundary rows, so allow slack).
  const double nnz_per_row = double(A.nnz()) / A.nrows;
  EXPECT_GT(nnz_per_row, e.paper_nnz_per_row / 2.5) << e.name;
  EXPECT_LT(nnz_per_row, e.paper_nnz_per_row * 2.5) << e.name;
  expect_weak_diag_dominance(A);
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, SuiteSweep, ::testing::Range(0, 14));

TEST(Suite, ScaleControlsSize) {
  CSRMatrix small = generate_suite_matrix("ecology2", 0.001);
  CSRMatrix larger = generate_suite_matrix("ecology2", 0.004);
  EXPECT_GT(larger.nrows, 2 * small.nrows);
}

}  // namespace
}  // namespace hpamg
