// Strength-of-connection and PMIS coarsening property tests.
#include <gtest/gtest.h>

#include "amg/pmis.hpp"
#include "amg/strength.hpp"
#include "gen/stencil.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

using test::random_spd;

TEST(Strength, ParallelMatchesSerial) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    CSRMatrix A = random_spd(200, 5, seed);
    StrengthOptions opt;
    CSRMatrix Sp = strength_matrix(A, opt);
    CSRMatrix Ss = strength_matrix_serial(A, opt);
    EXPECT_TRUE(csr_approx_equal(Sp, Ss));
  }
}

TEST(Strength, LaplacianAllNeighborsStrong) {
  // Isotropic Laplacian: all off-diagonals equal -> all strong at 0.25.
  CSRMatrix A = lap2d_5pt(10, 10);
  CSRMatrix S = strength_matrix(A, {0.25, 1.0});
  for (Int i = 0; i < A.nrows; ++i)
    EXPECT_EQ(S.row_nnz(i), A.row_nnz(i) - 1);  // all but the diagonal
}

TEST(Strength, AnisotropyMakesWeakDirection) {
  // Strong y-coupling (8x): with alpha = 0.25 x-neighbors (weight 1 vs max
  // 8) are weak.
  CSRMatrix A = lap2d_5pt(10, 10, 8.0);
  CSRMatrix S = strength_matrix(A, {0.25, 1.0});
  const Int mid = grid_index(5, 5, 0, 10, 10);
  EXPECT_EQ(S.row_nnz(mid), 2);  // only the two y-neighbors
  for (Int k = S.rowptr[mid]; k < S.rowptr[mid + 1]; ++k) {
    const Int j = S.colidx[k];
    EXPECT_TRUE(j == mid - 10 || j == mid + 10);
  }
}

TEST(Strength, MaxRowSumDropsWeaklyVaryingRows) {
  // A row whose sum is large relative to its diagonal gets no strong
  // connections (HYPRE's max_row_sum heuristic).
  CSRMatrix A = CSRMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, -0.05}, {1, 0, -0.05}, {1, 1, 1.0}});
  CSRMatrix S_loose = strength_matrix(A, {0.1, 1.0});
  EXPECT_EQ(S_loose.nnz(), 2);
  CSRMatrix S_tight = strength_matrix(A, {0.1, 0.8});
  EXPECT_EQ(S_tight.nnz(), 0);  // |row sum| = 0.95 > 0.8 * 1.0
}

TEST(Strength, PositiveOffDiagonalsNeverStrong) {
  CSRMatrix A = CSRMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 0.5}, {1, 0, 0.5}, {1, 1, 2.0}});
  CSRMatrix S = strength_matrix(A, {0.25, 1.0});
  EXPECT_EQ(S.nnz(), 0);
}

TEST(Strength, NegativeDiagonalFlipsSign) {
  CSRMatrix A = CSRMatrix::from_triplets(
      2, 2, {{0, 0, -2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, -2.0}});
  CSRMatrix S = strength_matrix(A, {0.25, 1.0});
  EXPECT_EQ(S.nnz(), 2);  // positive off-diagonals strong when diag < 0
}

// ----------------------------------------------------------------- pmis ----

struct PmisProblem {
  const char* name;
  CSRMatrix A;
};

class PmisSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  CSRMatrix make_matrix() const {
    switch (std::get<0>(GetParam())) {
      case 0:
        return lap2d_5pt(24, 24);
      case 1:
        return lap3d_7pt(9, 9, 9);
      case 2:
        return lap2d_5pt(30, 20, 6.0);
      default:
        return random_spd(400, 5, 7);
    }
  }
};

TEST_P(PmisSweep, IndependenceAndCoverage) {
  CSRMatrix A = make_matrix();
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions po;
  po.seed = std::get<1>(GetParam());
  CFMarker cf = pmis_coarsen(S, ST, po);

  // Every point is decided.
  for (signed char c : cf) EXPECT_NE(c, 0);

  // Independence: no two C points are strongly connected (symmetrized).
  for (Int i = 0; i < A.nrows; ++i) {
    if (cf[i] <= 0) continue;
    for (Int k = S.rowptr[i]; k < S.rowptr[i + 1]; ++k)
      EXPECT_LE(cf[S.colidx[k]], 0) << "C-C strong pair " << i;
    for (Int k = ST.rowptr[i]; k < ST.rowptr[i + 1]; ++k)
      EXPECT_LE(cf[ST.colidx[k]], 0) << "C-C strong pair (T) " << i;
  }

  // Coverage: every F point with strong connections sees a C point at
  // distance one in the symmetrized strength graph (PMIS guarantee).
  for (Int i = 0; i < A.nrows; ++i) {
    if (cf[i] > 0) continue;
    bool has_strong = S.row_nnz(i) + ST.row_nnz(i) > 0;
    if (!has_strong) continue;
    bool covered = false;
    for (Int k = S.rowptr[i]; k < S.rowptr[i + 1] && !covered; ++k)
      covered = cf[S.colidx[k]] > 0;
    for (Int k = ST.rowptr[i]; k < ST.rowptr[i + 1] && !covered; ++k)
      covered = cf[ST.colidx[k]] > 0;
    EXPECT_TRUE(covered) << "uncovered F point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Problems, PmisSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(1ull, 42ull, 777ull)));

TEST(Pmis, CoarsensReasonably) {
  CSRMatrix A = lap2d_5pt(40, 40);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  CFMarker cf = pmis_coarsen(S, ST);
  const Int nc = count_coarse(cf);
  // 2-D Laplacian PMIS typically selects 20-40% of the points.
  EXPECT_GT(nc, A.nrows / 8);
  EXPECT_LT(nc, A.nrows / 2);
}

TEST(Pmis, SequentialRngReproducible) {
  CSRMatrix A = lap2d_5pt(20, 20);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions po;
  po.rng = RngKind::kSequential;
  CFMarker a = pmis_coarsen(S, ST, po);
  CFMarker b = pmis_coarsen(S, ST, po);
  EXPECT_EQ(a, b);
}

TEST(Pmis, RngKindsDifferButBothValid) {
  CSRMatrix A = lap2d_5pt(30, 30);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions pa, pb;
  pa.rng = RngKind::kParallelCounter;
  pb.rng = RngKind::kSequential;
  CFMarker a = pmis_coarsen(S, ST, pa);
  CFMarker b = pmis_coarsen(S, ST, pb);
  // Different tie-breakers -> (almost surely) different splittings, but
  // comparable coarse fractions (the paper reports ~2% iteration drift).
  EXPECT_NEAR(double(count_coarse(a)), double(count_coarse(b)),
              0.25 * count_coarse(b));
}

TEST(Pmis, AggressiveSelectsSubsetAndCoarsensHarder) {
  CSRMatrix A = lap3d_7pt(10, 10, 10);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  CFMarker first;
  CFMarker agg = pmis_aggressive(S, ST, {}, &first);
  CFMarker std_cf = pmis_coarsen(S, ST);
  const Int nc_agg = count_coarse(agg);
  EXPECT_GT(nc_agg, 0);
  EXPECT_LT(nc_agg, count_coarse(std_cf));
  // Aggressive C points are a subset of the first pass's C points.
  for (std::size_t i = 0; i < agg.size(); ++i)
    if (agg[i] > 0) EXPECT_GT(first[i], 0);
}

TEST(Pmis, IsolatedPointsBecomeFine) {
  // Diagonal matrix: no strong connections anywhere.
  CSRMatrix A = CSRMatrix::identity(10);
  CSRMatrix S = strength_matrix(A, {0.25, 1.0});
  CSRMatrix ST = transpose_parallel(S);
  CFMarker cf = pmis_coarsen(S, ST);
  for (signed char c : cf) EXPECT_LT(c, 0);
}

}  // namespace
}  // namespace hpamg
