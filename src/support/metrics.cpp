#include "support/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace hpamg::metrics {

namespace {

/// Registry storage: names are looked up under a mutex; instruments are
/// heap-allocated so references handed out stay valid forever.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Counter>> counters;
  std::vector<std::unique_ptr<Gauge>> gauges;
  std::vector<std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

template <typename Inst>
Inst& find_or_create(std::vector<std::unique_ptr<Inst>>& pool,
                     std::string_view name) {
  for (auto& i : pool)
    if (i->name() == name) return *i;
  pool.push_back(std::make_unique<Inst>(std::string(name)));
  return *pool.back();
}

}  // namespace

void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& c : r.counters) c->reset();
  for (auto& g : r.gauges) g->reset();
  for (auto& h : r.histograms) h->reset();
  reset_alloc_stats();
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.counters, name);
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.gauges, name);
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return find_or_create(r.histograms, name);
}

Snapshot snapshot() {
  Snapshot s;
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& c : r.counters) s.counters.emplace_back(c->name(), c->value());
    for (const auto& g : r.gauges) s.gauges.emplace_back(g->name(), g->value());
    for (const auto& h : r.histograms) {
      HistogramSnapshot hs;
      hs.name = h->name();
      // Read each bucket exactly once and derive the count from the bucket
      // sum: concurrent observe_always() bumps bucket and count separately,
      // so reading both independently can produce a snapshot where
      // count != sum(buckets) — a torn pair the live sampler would export.
      // Derived this way the invariant holds in every snapshot; `sum` may
      // lag in-flight observations by at most the racing samples.
      std::uint64_t raw[Histogram::kBuckets];
      int last = -1;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        raw[b] = h->bucket(b);
        if (raw[b] > 0) last = b;
        hs.count += raw[b];
      }
      for (int b = 0; b <= last; ++b) hs.buckets.push_back(raw[b]);
      hs.sum = h->sum();
      s.histograms.push_back(std::move(hs));
    }
  }
  for (int t = 0; t < kNumMemTags; ++t) {
    const AllocStats a = alloc_stats(MemTag(t));
    if (a.total_bytes == 0 && a.allocs == 0) continue;
    const std::string base = std::string("mem.") + mem_tag_name(MemTag(t));
    s.counters.emplace_back(base + ".live_bytes", a.live_bytes);
    s.counters.emplace_back(base + ".peak_bytes", a.peak_bytes);
    s.counters.emplace_back(base + ".total_bytes", a.total_bytes);
    s.counters.emplace_back(base + ".allocs", a.allocs);
  }
  std::sort(s.counters.begin(), s.counters.end());
  std::sort(s.gauges.begin(), s.gauges.end());
  std::sort(s.histograms.begin(), s.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return s;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return std::uint64_t(ru.ru_maxrss);  // bytes on macOS
#else
  return std::uint64_t(ru.ru_maxrss) * 1024;  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long pages_total = 0, pages_resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  return std::uint64_t(pages_resident) * 4096;
#else
  return 0;
#endif
}

const char* mem_tag_name(MemTag tag) {
  switch (tag) {
    case MemTag::kGeneral: return "general";
    case MemTag::kOperator: return "operator";
    case MemTag::kInterp: return "interp";
    case MemTag::kSmoother: return "smoother";
    case MemTag::kWorkspace: return "workspace";
  }
  return "unknown";
}

namespace detail {
TagCounters& tag_counters(int tag) {
  static TagCounters counters[kNumMemTags];
  return counters[tag >= 0 && tag < kNumMemTags ? tag : 0];
}
}  // namespace detail

AllocStats alloc_stats(MemTag tag) {
  const detail::TagCounters& tc = detail::tag_counters(int(tag));
  AllocStats a;
  a.live_bytes = tc.live.load(std::memory_order_relaxed);
  a.peak_bytes = tc.peak.load(std::memory_order_relaxed);
  a.total_bytes = tc.total.load(std::memory_order_relaxed);
  a.allocs = tc.allocs.load(std::memory_order_relaxed);
  return a;
}

void reset_alloc_stats() {
  for (int t = 0; t < kNumMemTags; ++t) {
    detail::TagCounters& tc = detail::tag_counters(t);
    tc.live.store(0, std::memory_order_relaxed);
    tc.peak.store(0, std::memory_order_relaxed);
    tc.total.store(0, std::memory_order_relaxed);
    tc.allocs.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hpamg::metrics
