// End-to-end AMG solver tests: hierarchy construction invariants, V-cycle
// convergence, baseline/optimized agreement, scalability (O(1) iterations),
// and Krylov integration.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/solver.hpp"
#include "gen/graph.hpp"
#include "gen/reservoir.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

AMGOptions base_opts(Variant v) {
  AMGOptions o;
  o.variant = v;
  return o;
}

TEST(Hierarchy, LevelsShrinkAndComplexityBounded) {
  CSRMatrix A = lap2d_5pt(50, 50);
  Hierarchy h = build_hierarchy(A, base_opts(Variant::kOptimized));
  ASSERT_GE(h.num_levels(), 3);
  for (Int l = 1; l < h.num_levels(); ++l)
    EXPECT_LT(h.levels[l].n, h.levels[l - 1].n);
  EXPECT_GT(h.operator_complexity(), 1.0);
  EXPECT_LT(h.operator_complexity(), 5.0);
  EXPECT_LT(h.grid_complexity(), 2.5);
  EXPECT_GT(h.footprint_bytes(), 0u);
  EXPECT_FALSE(hierarchy_summary(h).empty());
}

TEST(Hierarchy, OptimizedLevelsAreCfPermuted) {
  CSRMatrix A = lap2d_5pt(30, 30);
  Hierarchy h = build_hierarchy(A, base_opts(Variant::kOptimized));
  for (Int l = 0; l + 1 < h.num_levels(); ++l) {
    const Level& L = h.levels[l];
    EXPECT_EQ(Int(L.perm.perm.size()), L.n);
    EXPECT_EQ(L.perm.ncoarse, L.nc);
    // Identity-block representation present, baseline P absent.
    EXPECT_EQ(L.Pf.nrows, L.n - L.nc);
    EXPECT_EQ(L.PfT.nrows, L.nc);
    EXPECT_EQ(L.P.nrows, 0);
  }
}

TEST(Hierarchy, BaselineKeepsFullP) {
  CSRMatrix A = lap2d_5pt(30, 30);
  Hierarchy h = build_hierarchy(A, base_opts(Variant::kBaseline));
  for (Int l = 0; l + 1 < h.num_levels(); ++l) {
    EXPECT_EQ(h.levels[l].P.nrows, h.levels[l].n);
    EXPECT_EQ(h.levels[l].Pf.nrows, 0);
  }
}

TEST(Hierarchy, MaxLevelsRespected) {
  CSRMatrix A = lap2d_5pt(60, 60);
  AMGOptions o = base_opts(Variant::kOptimized);
  o.max_levels = 3;
  Hierarchy h = build_hierarchy(A, o);
  EXPECT_LE(h.num_levels(), 3);
}

TEST(Hierarchy, TinyMatrixGoesStraightToCoarseSolve) {
  CSRMatrix A = test::random_spd(20, 3, 1);
  Hierarchy h = build_hierarchy(A, base_opts(Variant::kOptimized));
  EXPECT_EQ(h.num_levels(), 1);
  Vector b(20, 1.0), x(20, 0.0);
  vcycle(h, b, x);
  EXPECT_LT(test::relative_residual(A, x, b), 1e-10);  // direct solve
}

TEST(Vcycle, ReducesResidualMonotonically) {
  CSRMatrix A = lap2d_5pt(40, 40);
  Hierarchy h = build_hierarchy(A, base_opts(Variant::kOptimized));
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  double prev = 1e300;
  for (int it = 0; it < 6; ++it) {
    vcycle(h, b, x);
    const double r = test::relative_residual(A, x, b);
    EXPECT_LT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev, 1e-3);
}

struct SolverCase {
  const char* name;
  int which;
  double rtol;
  Int max_iters;  // generous bound; real check is convergence
};

class SolverSweep
    : public ::testing::TestWithParam<std::tuple<SolverCase, Variant>> {
 protected:
  CSRMatrix make() const {
    switch (std::get<0>(GetParam()).which) {
      case 0:
        return lap2d_5pt(60, 60);
      case 1:
        return lap3d_7pt(14, 14, 14);
      case 2:
        return lap2d_5pt(50, 50, 10.0);  // anisotropic
      case 3:
        return two_cubes_like(10, 10, 10);  // coefficient jump
      case 4:
        return thermal_like(40, 40);  // graded + skew
      default:
        return reservoir_matrix(10, 10, 10);  // heterogeneous
    }
  }
};

TEST_P(SolverSweep, StandaloneAmgConverges) {
  const auto [c, variant] = GetParam();
  CSRMatrix A = make();
  AMGSolver amg(A, base_opts(variant));
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, c.rtol, c.max_iters);
  EXPECT_TRUE(r.converged) << c.name << " relres=" << r.final_relres;
  EXPECT_LE(r.iterations, c.max_iters);
  // The returned solution really solves the system.
  EXPECT_LT(test::relative_residual(A, x, b), c.rtol * 10);
}

INSTANTIATE_TEST_SUITE_P(
    Problems, SolverSweep,
    ::testing::Combine(
        ::testing::Values(SolverCase{"lap2d", 0, 1e-7, 60},
                          SolverCase{"lap3d", 1, 1e-7, 60},
                          SolverCase{"aniso", 2, 1e-7, 80},
                          SolverCase{"jump", 3, 1e-7, 80},
                          SolverCase{"thermal", 4, 1e-7, 80},
                          SolverCase{"reservoir", 5, 1e-7, 80}),
        ::testing::Values(Variant::kOptimized, Variant::kBaseline)));

TEST(Solver, BaselineAndOptimizedAgreeWithSameRng) {
  // With the same (sequential) PMIS RNG the two variants build the same
  // hierarchy up to reordering; iteration counts must be nearly identical
  // (the paper verifies exact agreement when sharing the baseline RNG).
  CSRMatrix A = lap2d_5pt(40, 40);
  AMGOptions ob = base_opts(Variant::kBaseline);
  AMGOptions oo = base_opts(Variant::kOptimized);
  oo.rng = RngKind::kSequential;
  AMGSolver sb(A, ob), so(A, oo);
  Vector b(A.nrows, 1.0), xb(A.nrows, 0.0), xo(A.nrows, 0.0);
  SolveResult rb = sb.solve(b, xb, 1e-7, 100);
  SolveResult ro = so.solve(b, xo, 1e-7, 100);
  ASSERT_TRUE(rb.converged);
  ASSERT_TRUE(ro.converged);
  EXPECT_NEAR(rb.iterations, ro.iterations, 2);
  EXPECT_NEAR(sb.operator_complexity(), so.operator_complexity(), 0.05);
}

TEST(Solver, IterationCountStaysFlatAcrossSizes) {
  // The multigrid promise (§2): O(1) iterations as the problem grows.
  Int prev_iters = 0;
  for (Int s : {20, 40, 80}) {
    CSRMatrix A = lap2d_5pt(s, s);
    AMGSolver amg(A, base_opts(Variant::kOptimized));
    Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-7, 100);
    ASSERT_TRUE(r.converged);
    if (prev_iters > 0) EXPECT_LE(r.iterations, prev_iters + 4);
    prev_iters = r.iterations;
  }
}

TEST(Solver, NonzeroInitialGuessAndZeroRhs) {
  CSRMatrix A = lap2d_5pt(20, 20);
  AMGSolver amg(A, base_opts(Variant::kOptimized));
  Vector b(A.nrows, 0.0), x(A.nrows, 1.0);
  SolveResult r = amg.solve(b, x, 1e-8, 50);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(norm_inf(x), 1e-6);  // solution of Ax=0 is 0
}

TEST(Solver, AlreadyConvergedReturnsImmediately) {
  CSRMatrix A = lap2d_5pt(15, 15);
  AMGSolver amg(A, base_opts(Variant::kOptimized));
  Vector b(A.nrows, 0.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, 1e-7, 50);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Solver, SolveTimesCoverFigureCategories) {
  CSRMatrix A = lap2d_5pt(40, 40);
  AMGSolver amg(A, base_opts(Variant::kOptimized));
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = amg.solve(b, x, 1e-7, 50);
  EXPECT_GT(r.solve_times.get("GS"), 0.0);
  EXPECT_GT(r.solve_times.get("SpMV"), 0.0);
  EXPECT_GT(amg.setup_times().get("RAP"), 0.0);
  EXPECT_GT(amg.setup_times().get("Interp"), 0.0);
  EXPECT_GT(amg.setup_times().get("Strength+Coarsen"), 0.0);
}

TEST(Solver, JacobiAndLexGsSmootherOptionsWork) {
  CSRMatrix A = lap2d_5pt(30, 30);
  for (SmootherKind s : {SmootherKind::kJacobi, SmootherKind::kLexGS}) {
    AMGOptions o = base_opts(Variant::kOptimized);
    o.smoother = s;
    AMGSolver amg(A, o);
    Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
    SolveResult r = amg.solve(b, x, 1e-7, 150);
    EXPECT_TRUE(r.converged) << int(s);
  }
}

TEST(Solver, AggressiveSchemesLowerComplexity) {
  CSRMatrix A = lap3d_7pt(12, 12, 12);
  AMGOptions ei = base_opts(Variant::kOptimized);
  AMGOptions mp = ei, ts = ei;
  mp.interp = InterpKind::kMultipass;
  mp.num_aggressive_levels = 1;
  ts.interp = InterpKind::kExtPI2Stage;
  ts.num_aggressive_levels = 1;
  AMGSolver s_ei(A, ei), s_mp(A, mp), s_ts(A, ts);
  EXPECT_LT(s_mp.operator_complexity(), s_ei.operator_complexity());
  EXPECT_LT(s_ts.operator_complexity(), s_ei.operator_complexity());
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  for (AMGSolver* s : {&s_ei, &s_mp, &s_ts}) {
    std::fill(x.begin(), x.end(), 0.0);
    SolveResult r = s->solve(b, x, 1e-7, 150);
    EXPECT_TRUE(r.converged);
  }
}

// --------------------------------------------------------------- krylov ----

TEST(Krylov, CgOnSpd) {
  CSRMatrix A = lap2d_5pt(25, 25);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-9;
  KrylovResult r = pcg(A, b, x, o);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(test::relative_residual(A, x, b), 1e-8);
}

TEST(Krylov, AmgPreconditioningCutsIterations) {
  CSRMatrix A = lap2d_5pt(50, 50);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-8;
  KrylovResult plain = pcg(A, b, x, o);
  AMGSolver amg(A, base_opts(Variant::kOptimized));
  std::fill(x.begin(), x.end(), 0.0);
  KrylovResult pre = pcg(A, b, x, o, [&](const Vector& r, Vector& z) {
    amg.precondition(r, z);
  });
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations * 3, plain.iterations);
}

TEST(Krylov, GmresAndFgmresSolveNonsymmetric) {
  // Convection-diffusion-like: Laplacian plus skew perturbation.
  CSRMatrix L = lap2d_5pt(20, 20);
  std::vector<Triplet> t;
  for (Int i = 0; i < L.nrows; ++i)
    for (Int k = L.rowptr[i]; k < L.rowptr[i + 1]; ++k) {
      double v = L.values[k];
      if (L.colidx[k] == i + 1) v *= 1.5;  // upwind bias
      t.push_back({i, L.colidx[k], v});
    }
  CSRMatrix A = CSRMatrix::from_triplets(L.nrows, L.ncols, std::move(t));
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-8;
  // Full (unrestarted) GMRES: must converge within n iterations in exact
  // arithmetic; restarted GMRES can stagnate on nonsymmetric problems.
  o.restart = A.nrows;
  o.max_iterations = A.nrows;
  KrylovResult g = gmres(A, b, x, o);
  EXPECT_TRUE(g.converged);
  EXPECT_LT(test::relative_residual(A, x, b), 1e-7);
  std::fill(x.begin(), x.end(), 0.0);
  KrylovResult f = fgmres(A, b, x, o);
  EXPECT_TRUE(f.converged);
  EXPECT_LT(test::relative_residual(A, x, b), 1e-7);
}

TEST(Krylov, FgmresWithAmgMatchesPaperSetup) {
  // Table 4 configuration: FGMRES + AMG preconditioner.
  CSRMatrix A = reservoir_matrix(12, 12, 6);
  AMGSolver amg(A, base_opts(Variant::kOptimized));
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-5;  // strong-scaling tolerance from §5.1.2
  KrylovResult r = fgmres(A, b, x, o, [&](const Vector& v, Vector& z) {
    amg.precondition(v, z);
  });
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 30);
}

TEST(Krylov, RestartBoundary) {
  CSRMatrix A = lap2d_5pt(15, 15);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  KrylovOptions o;
  o.rtol = 1e-9;
  o.restart = 5;  // force several restart cycles
  o.max_iterations = 3000;
  KrylovResult r = gmres(A, b, x, o);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace hpamg
