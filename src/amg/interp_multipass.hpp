// Multipass interpolation (Stüben 1999) — the long-range interpolation the
// paper pairs with aggressive coarsening in the `mp` scheme (Table 4).
//
// Pass 1 builds direct interpolation for F points with at least one strong
// C neighbor. Each later pass interpolates the remaining F points through
// already-interpolated strong neighbors by substituting their interpolation
// rows (weights composed through the neighbor), until no point makes
// progress. F points never reached keep empty rows.
#pragma once

#include "amg/truncate.hpp"
#include "matrix/csr.hpp"
#include "matrix/permute.hpp"
#include "support/counters.hpp"

namespace hpamg {

struct MultipassOptions {
  TruncationOptions truncation;
  Int max_passes = 10;
};

CSRMatrix multipass_interp(const CSRMatrix& A, const CSRMatrix& S,
                           const CFMarker& cf, const MultipassOptions& opt = {},
                           WorkCounters* wc = nullptr);

}  // namespace hpamg
