// simmpi — an in-process message-passing runtime standing in for MPI.
//
// The paper's multi-node experiments ran on a 128-node InfiniBand cluster;
// that hardware is unavailable, so the distributed algorithms run on
// simmpi: every rank is a thread, point-to-point messages go through
// per-destination mailboxes (buffered sends, blocking receives), and
// collectives are implemented over a shared barrier. The algorithms —
// halo exchange, row gather, column renumbering, persistent communication
// — execute exactly as they would over MPI; only the transport clock is
// different, so the perfmodel layer converts the exact per-rank message
// counts and byte volumes recorded here into modeled network time
// (see perfmodel/network.hpp and DESIGN.md §1).
//
// API mirrors the MPI subset HYPRE's AMG uses: isend/irecv/waitall,
// persistent requests (§4.4), allreduce/allgather/barrier.
//
// Hardening (see support/error.hpp): every blocking wait (recv, barrier,
// the collectives) is bounded by a configurable timeout and raises a
// structured DeadlockError carrying a per-rank blocked-state dump instead
// of hanging; collectives carry an (op, dtype, count) signature that is
// cross-checked at the entry barrier so a mismatched collective fails
// loudly on every rank (CollectiveMismatchError); and a rank that throws
// poisons the world so peers blocked in waits unwind (PeerFailureError)
// rather than stranding until process exit. Fault-injection sites
// (support/fault.hpp: "simmpi.drop" / "simmpi.delay" / "simmpi.reorder" /
// "simmpi.bitflip") let the chaos suite prove those paths deterministically.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/commstats.hpp"
#include "support/common.hpp"

namespace hpamg::simmpi {

// PeerTraffic / CommStats / msg_size_bucket live in support/commstats.hpp
// (pure data consumed by the report and perfmodel layers, which must not
// depend on dist/); this header re-exports them for transport users.

class World;

/// Per-run knobs for simmpi::run.
struct RunOptions {
  /// Bounded-wait timeout applied to recv/barrier/collectives. 0 means
  /// "use the HPAMG_SIMMPI_TIMEOUT_S environment variable, or 120 s" —
  /// generous for real runs, tightened by the chaos tests so deadlock
  /// scenarios resolve in milliseconds.
  double timeout_seconds = 0.0;
};

/// A rank's communicator handle. All methods are called from the rank's own
/// thread only.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered (non-blocking-complete) send: the payload is copied into the
  /// destination mailbox immediately; never deadlocks. Counted as one
  /// message + one request setup (use ExchangePattern for persistent
  /// semantics that skip the setup, §4.4).
  void send(int to, int tag, const void* data, std::size_t bytes,
            bool persistent = false);

  template <typename T>
  void send_vec(int to, int tag, const std::vector<T>& v,
                bool persistent = false) {
    send(to, tag, v.data(), v.size() * sizeof(T), persistent);
  }

  /// Blocking receive of the next message from (from, tag). Returns the
  /// payload bytes.
  std::vector<char> recv(int from, int tag);

  template <typename T>
  std::vector<T> recv_vec(int from, int tag) {
    std::vector<char> raw = recv(from, tag);
    require(raw.size() % sizeof(T) == 0, "recv_vec: size mismatch");
    std::vector<T> v(raw.size() / sizeof(T));
    if (!raw.empty()) std::memcpy(v.data(), raw.data(), raw.size());
    return v;
  }

  // ---- collectives ----
  void barrier();
  double allreduce_sum(double x);
  Long allreduce_sum(Long x);
  double allreduce_max(double x);
  Long allreduce_max(Long x);
  /// Gathers one value from every rank (result indexed by rank).
  std::vector<Long> allgather(Long x);
  std::vector<double> allgather(double x);
  /// Personalized all-to-all of one Long per destination: `send[r]` goes to
  /// rank r, and the result's element r is what rank r sent here. The
  /// canonical use is count handshakes (halo pattern setup, row-gather
  /// sizing) — one collective instead of nranks^2 point-to-point messages,
  /// most of them empty.
  std::vector<Long> alltoall(const std::vector<Long>& send);

  CommStats& stats() { return stats_; }
  const CommStats& stats() const { return stats_; }

  /// Dynamic tag blocks live at kDynamicTagBase and above; fixed protocol
  /// tags (halo/gather/interp handshakes, 7xxx) must stay below it.
  static constexpr int kTagBlockSize = 16;
  static constexpr int kDynamicTagBase = 100000;
  /// Blocks handed out per Comm before next_tag_block() throws. A deep
  /// hierarchy allocates a handful of HaloExchange patterns per level, so
  /// 64k blocks is orders of magnitude of headroom — the guard exists
  /// because silently wrapping would alias live tags and corrupt
  /// unrelated exchanges.
  static constexpr int kMaxTagBlocks = 1 << 16;

  /// Hands out disjoint 16-tag blocks for pattern objects (HaloExchange);
  /// returns the first tag of the block. Calls must occur in the same
  /// (collective) order on every rank so the blocks line up across ranks.
  /// Throws once the dynamic tag space is exhausted rather than reusing
  /// tags that may still be live.
  int next_tag_block() {
    require(next_tag_block_ < kMaxTagBlocks,
            "simmpi: dynamic tag blocks exhausted (too many communication "
            "patterns created on one Comm)");
    return kDynamicTagBase + kTagBlockSize * next_tag_block_++;
  }

 private:
  friend std::vector<CommStats> run(int, const std::function<void(Comm&)>&,
                                    const RunOptions&);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
  int next_tag_block_ = 0;
};

/// Runs fn on `nranks` rank-threads; returns the per-rank comm stats.
/// Exceptions thrown by any rank poison the world (peers blocked in waits
/// unwind with PeerFailureError) and are rethrown after all ranks join;
/// the first non-PeerFailure error wins, so the root cause surfaces, not
/// the collateral unwinds.
std::vector<CommStats> run(int nranks, const std::function<void(Comm&)>& fn,
                           const RunOptions& opts = {});

}  // namespace hpamg::simmpi
