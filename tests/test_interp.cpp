// Interpolation operator tests: direct, extended+i (Eq. 1) and multipass,
// plus truncation.
#include <gtest/gtest.h>

#include <cmath>

#include "amg/interp_classical.hpp"
#include "amg/interp_extpi.hpp"
#include "amg/interp_multipass.hpp"
#include "amg/pmis.hpp"
#include "amg/strength.hpp"
#include "amg/truncate.hpp"
#include "gen/stencil.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

struct Splitting {
  CSRMatrix A, S;
  CFMarker cf;
  Int nc;
};

Splitting make_splitting(CSRMatrix A, std::uint64_t seed = 1) {
  Splitting sp;
  sp.A = std::move(A);
  sp.S = strength_matrix(sp.A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(sp.S);
  PmisOptions po;
  po.seed = seed;
  sp.cf = pmis_coarsen(sp.S, ST, po);
  sp.nc = count_coarse(sp.cf);
  return sp;
}

void expect_interp_shape(const CSRMatrix& P, const Splitting& sp) {
  P.validate();
  EXPECT_EQ(P.nrows, sp.A.nrows);
  EXPECT_EQ(P.ncols, sp.nc);
  // C rows are exact identity in the compact coarse numbering.
  Int c = 0;
  for (Int i = 0; i < P.nrows; ++i) {
    if (sp.cf[i] > 0) {
      ASSERT_EQ(P.row_nnz(i), 1);
      EXPECT_EQ(P.colidx[P.rowptr[i]], c);
      EXPECT_DOUBLE_EQ(P.values[P.rowptr[i]], 1.0);
      ++c;
    }
  }
}

/// For Laplacian-like rows (zero row sums, all-negative off-diagonals), any
/// consistent interpolation has unit row sums: constants interpolate
/// exactly.
void expect_unit_rowsums_interior(const CSRMatrix& P, const CSRMatrix& A,
                                  const CFMarker& cf, double tol = 1e-10) {
  for (Int i = 0; i < P.nrows; ++i) {
    if (cf[i] > 0 || P.row_nnz(i) == 0) continue;
    double asum = 0.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) asum += A.values[k];
    if (std::abs(asum) > 1e-12) continue;  // boundary row: skip
    double psum = 0.0;
    for (Int k = P.rowptr[i]; k < P.rowptr[i + 1]; ++k) psum += P.values[k];
    EXPECT_NEAR(psum, 1.0, tol) << "row " << i;
  }
}

// A Laplacian with pure Neumann-like interior: use periodic-free interior
// rows of a large enough grid so many rows have zero row sum? Dirichlet
// folding keeps the row sum nonzero only at boundaries, interior rows of
// lap2d_5pt sum to 0.
TEST(ExtPI, ShapeAndConstantInterpolationOnLap2d) {
  Splitting sp = make_splitting(lap2d_5pt(20, 20));
  ExtPIOptions opt;
  opt.truncation.trunc_fact = 0.0;
  opt.truncation.max_elmts = 0;  // no truncation: exact Eq. (1)
  CSRMatrix P = extpi_interp(sp.A, sp.S, sp.cf, opt);
  expect_interp_shape(P, sp);
  expect_unit_rowsums_interior(P, sp.A, sp.cf);
  // Every F row with strong connections interpolates from something.
  for (Int i = 0; i < P.nrows; ++i)
    if (sp.cf[i] <= 0 && sp.S.row_nnz(i) > 0) EXPECT_GT(P.row_nnz(i), 0);
}

TEST(ExtPI, TruncationPreservesRowSumsAndCapsEntries) {
  Splitting sp = make_splitting(lap3d_7pt(8, 8, 8));
  ExtPIOptions full;
  full.truncation.trunc_fact = 0.0;
  full.truncation.max_elmts = 0;
  ExtPIOptions trunc;  // Table 3 defaults: 0.1 / 4
  CSRMatrix Pf = extpi_interp(sp.A, sp.S, sp.cf, full);
  CSRMatrix Pt = extpi_interp(sp.A, sp.S, sp.cf, trunc);
  EXPECT_LE(Pt.nnz(), Pf.nnz());
  for (Int i = 0; i < Pt.nrows; ++i) {
    if (sp.cf[i] > 0) continue;
    EXPECT_LE(Pt.row_nnz(i), 4);
    if (Pf.row_nnz(i) == 0) continue;
    double sf = 0, st = 0;
    for (Int k = Pf.rowptr[i]; k < Pf.rowptr[i + 1]; ++k) sf += Pf.values[k];
    for (Int k = Pt.rowptr[i]; k < Pt.rowptr[i + 1]; ++k) st += Pt.values[k];
    EXPECT_NEAR(sf, st, 1e-9 * std::max(1.0, std::abs(sf)));
  }
}

TEST(ExtPI, FusedAndSeparateTruncationAgree) {
  Splitting sp = make_splitting(lap2d_5pt(25, 17), 5);
  ExtPIOptions fused, separate;
  fused.fused_truncation = true;
  separate.fused_truncation = false;
  CSRMatrix Pa = extpi_interp(sp.A, sp.S, sp.cf, fused);
  CSRMatrix Pb = extpi_interp(sp.A, sp.S, sp.cf, separate);
  Pa.sort_rows();
  Pb.sort_rows();
  EXPECT_TRUE(csr_approx_equal(Pa, Pb, 1e-12));
}

class ExtPISweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtPISweep, WellFormedOnRandomSpd) {
  Splitting sp = make_splitting(test::random_spd(300, 4, GetParam()),
                                GetParam() + 9);
  CSRMatrix P = extpi_interp(sp.A, sp.S, sp.cf);
  expect_interp_shape(P, sp);
  // Weights bounded (no blow-up from tiny b_ik).
  for (double v : P.values) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 1e3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtPISweep, ::testing::Range<std::uint64_t>(0, 8));

TEST(DirectInterp, ShapeAndRowSums) {
  Splitting sp = make_splitting(lap2d_5pt(16, 16));
  CSRMatrix P = direct_interp(sp.A, sp.S, sp.cf);
  expect_interp_shape(P, sp);
  expect_unit_rowsums_interior(P, sp.A, sp.cf);
}

/// Periodic 2-D Laplacian: every row sums to zero, so constant vectors are
/// in the near-nullspace everywhere — the clean setting for row-sum checks
/// (multipass substitution chains would otherwise pick up Dirichlet
/// boundary deficits from neighbors' rows).
CSRMatrix periodic_lap2d(Int nx, Int ny) {
  std::vector<Triplet> t;
  for (Int y = 0; y < ny; ++y)
    for (Int x = 0; x < nx; ++x) {
      const Int i = y * nx + x;
      t.push_back({i, i, 4.0});
      t.push_back({i, y * nx + (x + 1) % nx, -1.0});
      t.push_back({i, y * nx + (x + nx - 1) % nx, -1.0});
      t.push_back({i, ((y + 1) % ny) * nx + x, -1.0});
      t.push_back({i, ((y + ny - 1) % ny) * nx + x, -1.0});
    }
  return CSRMatrix::from_triplets(nx * ny, nx * ny, std::move(t));
}

TEST(Multipass, CoversAllPointsUnderAggressiveCoarsening) {
  CSRMatrix A = periodic_lap2d(24, 24);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  CFMarker cf = pmis_aggressive(S, ST);
  MultipassOptions opt;
  CSRMatrix P = multipass_interp(A, S, cf, opt);
  P.validate();
  EXPECT_EQ(P.ncols, count_coarse(cf));
  // Aggressive coarsening leaves distance-2 F points; multipass must still
  // reach (almost) everyone through neighbor substitution.
  Int empty = 0;
  for (Int i = 0; i < P.nrows; ++i)
    if (cf[i] <= 0 && P.row_nnz(i) == 0) ++empty;
  EXPECT_LT(empty, P.nrows / 50);
  expect_unit_rowsums_interior(P, A, cf, 1e-9);
}

TEST(Multipass, RespectsMaxElements) {
  CSRMatrix A = lap3d_7pt(8, 8, 8);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  CFMarker cf = pmis_aggressive(S, ST);
  MultipassOptions opt;  // defaults: 0.1 / 4
  CSRMatrix P = multipass_interp(A, S, cf, opt);
  for (Int i = 0; i < P.nrows; ++i)
    if (cf[i] <= 0) EXPECT_LE(P.row_nnz(i), 4);
}


// --------------------------------------------------- partitioned variant --

/// CF-permuted fixture: coarse points first, matching what the optimized
/// hierarchy feeds extpi_interp_partitioned.
struct PermutedSplitting {
  CSRMatrix A, S;
  CFMarker cf;
  Int nc;
};

PermutedSplitting make_permuted(CSRMatrix A0, std::uint64_t seed) {
  CSRMatrix S0 = strength_matrix(A0, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S0);
  PmisOptions po;
  po.seed = seed;
  CFMarker cf0 = pmis_coarsen(S0, ST, po);
  CFPermutation p = cf_permutation(cf0);
  PermutedSplitting ps;
  ps.nc = p.ncoarse;
  ps.A = permute_symmetric(A0, p);
  ps.A.sort_rows();
  ps.S = permute_symmetric(S0, p);
  ps.S.sort_rows();
  ps.cf.assign(A0.nrows, -1);
  for (Int i = 0; i < ps.nc; ++i) ps.cf[i] = 1;
  return ps;
}

class PartitionedExtPI : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionedExtPI, MatchesGenericBuilderUntruncated) {
  CSRMatrix A0 = GetParam() % 2 == 0
                     ? lap2d_5pt(18 + Int(GetParam()), 17)
                     : test::random_spd(250, 4, GetParam());
  PermutedSplitting ps = make_permuted(std::move(A0), GetParam() + 3);
  ExtPIOptions opt;
  opt.truncation.trunc_fact = 0.0;
  opt.truncation.max_elmts = 0;
  CSRMatrix Pg = extpi_interp(ps.A, ps.S, ps.cf, opt);
  CSRMatrix Pp = extpi_interp_partitioned(ps.A, ps.S, ps.cf, opt);
  Pg.sort_rows();
  Pp.sort_rows();
  EXPECT_TRUE(csr_approx_equal(Pg, Pp, 1e-11));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedExtPI,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(PartitionedExtPI2, FewerClassificationBranches) {
  PermutedSplitting ps = make_permuted(lap3d_7pt(10, 10, 10), 5);
  WorkCounters generic, part;
  extpi_interp(ps.A, ps.S, ps.cf, {}, &generic);
  extpi_interp_partitioned(ps.A, ps.S, ps.cf, {}, &part);
  // The partition boundaries replace per-entry classification tests in the
  // b_ik loops (§3.1.2).
  EXPECT_LT(part.branches, generic.branches);
}

TEST(PartitionedExtPI2, RejectsUnpermutedMarker) {
  CSRMatrix A = lap2d_5pt(10, 10);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CFMarker cf(A.nrows, -1);
  cf[50] = 1;  // coarse point after fine points: not coarse-first
  cf[0] = -1;
  EXPECT_THROW(extpi_interp_partitioned(A, S, cf), std::invalid_argument);
}

// ------------------------------------------------------------- truncate ----

TEST(Truncate, NoOpWhenDisabled) {
  std::vector<Int> cols = {0, 1, 2};
  std::vector<double> vals = {0.5, 0.001, 0.3};
  TruncationOptions opt;
  opt.trunc_fact = 0.0;
  opt.max_elmts = 0;
  EXPECT_EQ(truncate_row(cols.data(), vals.data(), 3, opt), 3);
}

TEST(Truncate, RelativeThresholdDropsSmallEntries) {
  std::vector<Int> cols = {0, 1, 2, 3};
  std::vector<double> vals = {1.0, 0.05, -0.5, 0.02};
  TruncationOptions opt;
  opt.trunc_fact = 0.1;
  opt.max_elmts = 0;
  const Int len = truncate_row(cols.data(), vals.data(), 4, opt);
  EXPECT_EQ(len, 2);
  // Row sum preserved: 1.0 + 0.05 - 0.5 + 0.02 = 0.57.
  EXPECT_NEAR(vals[0] + vals[1], 0.57, 1e-12);
}

TEST(Truncate, MaxElmtsKeepsLargestMagnitudes) {
  std::vector<Int> cols = {0, 1, 2, 3, 4, 5};
  std::vector<double> vals = {0.1, 0.6, -0.2, 0.5, -0.4, 0.3};
  TruncationOptions opt;
  opt.trunc_fact = 0.0;
  opt.max_elmts = 3;
  const Int len = truncate_row(cols.data(), vals.data(), 6, opt);
  EXPECT_EQ(len, 3);
  // Survivors are 0.6, 0.5, -0.4 (columns 1, 3, 4), rescaled to sum 0.9.
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(cols[1], 3);
  EXPECT_EQ(cols[2], 4);
  EXPECT_NEAR(vals[0] + vals[1] + vals[2], 0.9, 1e-12);
}

TEST(Truncate, EmptyAndSingleton) {
  TruncationOptions opt;
  EXPECT_EQ(truncate_row(static_cast<Int*>(nullptr),
                         static_cast<double*>(nullptr), 0, opt),
            0);
  std::vector<Int> cols = {7};
  std::vector<double> vals = {0.3};
  EXPECT_EQ(truncate_row(cols.data(), vals.data(), 1, opt), 1);
  EXPECT_DOUBLE_EQ(vals[0], 0.3);
}

TEST(Truncate, WholeMatrixMatchesRowwise) {
  CSRMatrix P = test::random_sparse(50, 20, 8, 3);
  TruncationOptions opt;  // 0.1 / 4
  CSRMatrix Q = truncate_interpolation(P, opt);
  Q.validate();
  for (Int i = 0; i < P.nrows; ++i) {
    std::vector<Int> c(P.colidx.begin() + P.rowptr[i],
                       P.colidx.begin() + P.rowptr[i + 1]);
    std::vector<double> v(P.values.begin() + P.rowptr[i],
                          P.values.begin() + P.rowptr[i + 1]);
    const Int len = truncate_row(c.data(), v.data(), Int(c.size()), opt);
    ASSERT_EQ(Q.row_nnz(i), len);
    for (Int k = 0; k < len; ++k) {
      EXPECT_EQ(Q.colidx[Q.rowptr[i] + k], c[k]);
      EXPECT_DOUBLE_EQ(Q.values[Q.rowptr[i] + k], v[k]);
    }
  }
}

TEST(Truncate, LongColumnOverload) {
  std::vector<Long> cols = {1000000000000LL, 2000000000000LL};
  std::vector<double> vals = {1.0, 0.001};
  TruncationOptions opt;
  opt.trunc_fact = 0.1;
  opt.max_elmts = 0;
  EXPECT_EQ(truncate_row(cols.data(), vals.data(), 2, opt), 1);
  EXPECT_EQ(cols[0], 1000000000000LL);
}

}  // namespace
}  // namespace hpamg
