// Projection helpers combining machine + network models with measured
// quantities into per-figure series, and the AmgX comparator model.
#pragma once

#include "perfmodel/machine.hpp"
#include "perfmodel/network.hpp"
#include "support/report.hpp"
#include "support/timer.hpp"

namespace hpamg {

/// Projected time of a distributed phase on the paper's cluster: per-rank
/// compute (CPU-time measured under simmpi, already per-rank) plus modeled
/// network time for that rank's traffic. Callers take the max over ranks.
double projected_phase_seconds(double rank_cpu_seconds,
                               const simmpi::CommStats& rank_comm,
                               const NetworkModel& net);

/// Fills a solve report's modeled_{setup,solve}_seconds by running its
/// machine-independent work counters through the machine roofline — the
/// projection the perf-trajectory JSON carries for single-node runs.
void project_report_times(SolveReport& rep, const MachineModel& m);

/// AmgX comparator (DESIGN.md §1): the paper's measured behavioural ratios
/// applied to our optimized implementation's counters, run through the
/// K40c bandwidth model. Not a measurement — a documented model.
struct AmgxModel {
  double iteration_ratio = 1.3;   ///< AmgX needs 1.3x more iterations (§5.2)
  double solve_per_iter_ratio = 1.6;  ///< per-iteration solve 1.6x slower
  double setup_ratio = 1.0 / 1.1;     ///< setup 1.1x faster than HYPRE_opt

  /// Given HYPRE_opt's modeled setup/solve seconds on Haswell, returns the
  /// modeled AmgX (setup, solve) pair on K40c, accounting for the bandwidth
  /// difference already being inside the ratios (they were measured
  /// machine-to-machine).
  std::pair<double, double> project(double opt_setup_s,
                                    double opt_solve_s) const {
    return {opt_setup_s * setup_ratio,
            opt_solve_s * solve_per_iter_ratio * iteration_ratio};
  }
};

}  // namespace hpamg
