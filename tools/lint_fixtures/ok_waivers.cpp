// lint-fixture-path: src/amg/ok_waivers.cpp
// Clean fixture: each rule's waiver comment in its documented position —
// nothing may fire.
// expect: clean
#include "amg/hierarchy.hpp"
#include "support/check.hpp"
#include "support/counters.hpp"
#include "support/live.hpp"
#include "support/metrics.hpp"

namespace hpamg {

void waived_everything(const Hierarchy& h, Vector& y) {
  // lint: discard-ok(probing for side effects only; status irrelevant here)
  check_hierarchy(h);

  // lint: no-span(sub-microsecond doubling loop; a span would dominate)
#pragma omp parallel for
  for (Int i = 0; i < Int(y.size()); ++i) y[i] *= 2.0;

  // lint: metric-name-ok(legacy dashboard name, scheduled for migration)
  metrics::counter("legacy.iterations").add(1);
}

// lint: counted-no-span(accounting helper; caller owns the span)
void waived_counter_helper(const Vector& y, WorkCounters* wc) {
  if (wc != nullptr) wc->bytes_written += y.size() * 8;
}

// lint: beat-no-span(test harness loop; not a production driver)
void waived_beat_helper(int iterations) {
  for (int it = 1; it <= iterations; ++it)
    live::beat_iteration(it, 1.0 / it);
}

}  // namespace hpamg
