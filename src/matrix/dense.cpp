#include "matrix/dense.hpp"

#include <cmath>

namespace hpamg {

DenseMatrix DenseMatrix::from_csr(const CSRMatrix& A) {
  DenseMatrix D(A.nrows, A.ncols);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      D(i, A.colidx[k]) += A.values[k];
  return D;
}

CSRMatrix DenseMatrix::to_csr(double drop_tol) const {
  std::vector<Triplet> trip;
  for (Int i = 0; i < nrows; ++i)
    for (Int j = 0; j < ncols; ++j)
      if (std::abs((*this)(i, j)) > drop_tol)
        trip.push_back({i, j, (*this)(i, j)});
  return CSRMatrix::from_triplets(nrows, ncols, std::move(trip));
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& B) const {
  require(ncols == B.nrows, "DenseMatrix::multiply: shape mismatch");
  DenseMatrix C(nrows, B.ncols);
  for (Int i = 0; i < nrows; ++i)
    for (Int k = 0; k < ncols; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (Int j = 0; j < B.ncols; ++j) C(i, j) += a * B(k, j);
    }
  return C;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix T(ncols, nrows);
  for (Int i = 0; i < nrows; ++i)
    for (Int j = 0; j < ncols; ++j) T(j, i) = (*this)(i, j);
  return T;
}

LUSolver::LUSolver(const CSRMatrix& A) : n_(A.nrows) {
  require(A.nrows == A.ncols, "LUSolver: matrix must be square");
  lu_ = DenseMatrix::from_csr(A);
  piv_.resize(n_);
  for (Int k = 0; k < n_; ++k) {
    // Partial pivoting.
    Int p = k;
    for (Int i = k + 1; i < n_; ++i)
      if (std::abs(lu_(i, k)) > std::abs(lu_(p, k))) p = i;
    piv_[k] = p;
    if (p != k)
      for (Int j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(p, j));
    if (std::abs(lu_(k, k)) < 1e-300) {
      singular_ = true;
      lu_(k, k) = 1.0;  // keep solve well-defined; caller checks singular()
      continue;
    }
    const double inv = 1.0 / lu_(k, k);
    for (Int i = k + 1; i < n_; ++i) {
      lu_(i, k) *= inv;
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (Int j = k + 1; j < n_; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

void LUSolver::solve(const double* b, double* x) const {
  std::vector<double> y(b, b + n_);
  for (Int k = 0; k < n_; ++k) {
    std::swap(y[k], y[piv_[k]]);
    for (Int i = k + 1; i < n_; ++i) y[i] -= lu_(i, k) * y[k];
  }
  for (Int i = n_ - 1; i >= 0; --i) {
    double s = y[i];
    for (Int j = i + 1; j < n_; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
}

}  // namespace hpamg
