// Thread-parallel primitives built on OpenMP: parallel_for, reductions,
// prefix sums, and work partitioning helpers (by range and by weight).
//
// These are the building blocks behind the paper's "other optimizations"
// (SC'15 §3.3): prefix-sum-parallelized matrix creation and nnz-balanced
// partitioning of rows among threads.
#pragma once

#include <omp.h>

#include <algorithm>
#include <vector>

#include "support/common.hpp"

namespace hpamg {

/// Number of OpenMP threads a parallel region will use.
inline int num_threads() { return omp_get_max_threads(); }

/// Evenly split [0, n) into nparts chunks; returns the [begin, end) of part p.
inline std::pair<Int, Int> chunk_range(Int n, int nparts, int p) {
  Long lo = Long(n) * p / nparts;
  Long hi = Long(n) * (p + 1) / nparts;
  return {Int(lo), Int(hi)};
}

/// Parallel loop over [begin, end) with static scheduling.
template <typename F>
void parallel_for(Int begin, Int end, F&& f) {
  // lint: no-span(generic parallel-for/reduce scaffolding; the calling kernel owns the span)
#pragma omp parallel for schedule(static)
  for (Int i = begin; i < end; ++i) f(i);
}

/// Parallel loop with dynamic scheduling for irregular per-row work.
template <typename F>
void parallel_for_dynamic(Int begin, Int end, F&& f) {
  // lint: no-span(generic parallel-for/reduce scaffolding; the calling kernel owns the span)
#pragma omp parallel for schedule(dynamic, 64)
  for (Int i = begin; i < end; ++i) f(i);
}

/// Parallel sum-reduction of f(i) over [begin, end).
template <typename F>
double parallel_reduce_sum(Int begin, Int end, F&& f) {
  double acc = 0.0;
  // lint: no-span(generic parallel-for/reduce scaffolding; the calling kernel owns the span)
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (Int i = begin; i < end; ++i) acc += f(i);
  return acc;
}

/// Parallel max-reduction of f(i) over [begin, end).
template <typename F>
double parallel_reduce_max(Int begin, Int end, F&& f) {
  double acc = 0.0;
  // lint: no-span(generic parallel-for/reduce scaffolding; the calling kernel owns the span)
#pragma omp parallel for schedule(static) reduction(max : acc)
  for (Int i = begin; i < end; ++i) acc = std::max(acc, f(i));
  return acc;
}

/// Rowptr-style prefix sum: v holds per-row counts at v[i + 1] with
/// v[0] == 0; on return v[i] is the cumulative offset of row i and v.back()
/// the total (i.e. an in-place inclusive scan). Returns the total.
/// Parallelized with per-thread partial sums (two sweeps).
Long exclusive_scan(std::vector<Int>& v);

/// Long-counter overload.
Long exclusive_scan(std::vector<Long>& v);

/// Partition rows [0, nrows) among nparts workers so each gets roughly the
/// same total weight (e.g. nonzeros per row given as rowptr differences).
/// Returns nparts + 1 boundaries. Used for nnz-balanced transpose (§3.3).
std::vector<Int> partition_by_weight(const std::vector<Int>& rowptr,
                                     int nparts);

}  // namespace hpamg
