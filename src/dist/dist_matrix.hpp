// Distributed (ParCSR-style) matrix, matching HYPRE's representation
// (SC'15 §4.1, Fig 3): rows are partitioned contiguously among ranks; each
// rank stores its block-diagonal part `diag` (local column indices) and its
// block-off-diagonal part `offd` whose column indices are compressed, with
// `colmap` mapping the compressed indices back to global columns.
#pragma once

#include <functional>

#include "dist/simmpi.hpp"
#include "matrix/csr.hpp"
#include "matrix/vector_ops.hpp"
#include "support/error.hpp"

namespace hpamg {

class DistMatrix {
 public:
  Long global_rows = 0;
  Long global_cols = 0;
  std::vector<Long> row_starts;  ///< size nranks+1; rank p owns [p, p+1)
  std::vector<Long> col_starts;  ///< column partition (== row_starts if square)
  int my_rank = 0;

  CSRMatrix diag;             ///< local block-diagonal part
  CSRMatrix offd;             ///< block-off-diagonal, compressed columns
  std::vector<Long> colmap;   ///< sorted; offd col j is global colmap[j]

  Long first_row() const { return row_starts[my_rank]; }
  Long last_row() const { return row_starts[my_rank + 1]; }
  Int local_rows() const { return Int(last_row() - first_row()); }
  Long first_col() const { return col_starts[my_rank]; }
  Long last_col() const { return col_starts[my_rank + 1]; }
  Int local_cols() const { return Int(last_col() - first_col()); }

  /// Owning rank of a global column (binary search of col_starts).
  int col_owner(Long gcol) const;

  Long nnz_local() const { return diag.nnz() + offd.nnz(); }

  /// Bytes held by this rank's piece (diag + offd CSR storage, the colmap,
  /// and the replicated partition arrays).
  std::uint64_t footprint_bytes() const {
    return diag.footprint_bytes() + offd.footprint_bytes() +
           colmap.size() * sizeof(Long) +
           (row_starts.size() + col_starts.size()) * sizeof(Long);
  }

  /// Structural invariants (shapes, colmap sorted/unique/off-rank).
  void validate() const;

  /// Distributed-ownership audit (support/check.hpp invariant layer):
  /// row/col partitions contiguous over `nranks` ranks and ending at the
  /// global shape, my_rank in range, diag/offd blocks well-formed CSR, and
  /// every colmap entry sorted, unique, and owned by some *other* rank.
  /// Returns kOk or kInvalidInput with the diagnosis in
  /// check::last_error(). Rank-local (no communication).
  Status check_partition(int nranks) const;
};

/// One global row as (global column, value) pairs.
using RowBuilder =
    std::function<void(Long grow, std::vector<std::pair<Long, double>>& out)>;

/// Even contiguous partition of n items over nranks.
std::vector<Long> even_partition(Long n, int nranks);

/// Builds a rank's piece of a distributed matrix from a global row
/// generator. Every rank calls this with the same generator; no
/// communication (generators are deterministic functions of the row).
DistMatrix build_dist_matrix(simmpi::Comm& comm, Long global_rows,
                             Long global_cols, const RowBuilder& rows,
                             const std::vector<Long>* row_starts = nullptr);

/// Wraps a sequential CSR matrix as the rank's piece (rows
/// [row_starts[r], row_starts[r+1]) of A). For dist-vs-sequential tests.
DistMatrix distribute_csr(simmpi::Comm& comm, const CSRMatrix& A);

/// Gathers a distributed matrix to one full CSR copy on every rank
/// (test helper; O(global nnz) communication).
CSRMatrix gather_csr(simmpi::Comm& comm, const DistMatrix& A);

/// Gathers distributed vector pieces into a full vector on every rank.
Vector gather_vector(simmpi::Comm& comm, const Vector& local,
                     const std::vector<Long>& starts);

}  // namespace hpamg
