// Reservoir pressure solve: the paper's strong-scaling application
// (§5.1.2) in miniature. A sequence of pressure systems with the same
// log-normal permeability field (as in a time-stepping reservoir
// simulator) is solved with FGMRES + AMG; the setup phase is reused across
// right-hand sides, demonstrating the setup/solve amortization trade-off
// the paper discusses for time-dependent problems.
//
//   $ ./reservoir_sim [n] [--sigma 2.0] [--steps 5]
#include <cmath>
#include <cstdio>

#include "amg/solver.hpp"
#include "gen/reservoir.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace hpamg;
  Cli cli(argc, argv);
  const Int n = cli.positional().empty()
                    ? 24
                    : Int(std::atoi(cli.positional()[0].c_str()));
  ReservoirOptions ropt;
  ropt.sigma = cli.get_double("sigma", 2.0);
  const int steps = int(cli.get_int("steps", 5));

  CSRMatrix A = reservoir_matrix(n, n, n, ropt);
  std::printf("reservoir pressure system: %d^3 = %d cells, log-perm sigma"
              " %.1f\n", n, A.nrows, ropt.sigma);

  Timer t;
  AMGOptions opts;  // Table 4-style preconditioner configuration
  opts.max_levels = 16;
  AMGSolver amg(A, opts);
  std::printf("setup: %.3fs, %d levels, operator complexity %.2f\n",
              t.seconds(), amg.hierarchy().num_levels(),
              amg.operator_complexity());

  // One setup, many solves: injection pattern rotates between wells.
  double total_solve = 0;
  for (int step = 0; step < steps; ++step) {
    Vector b(A.nrows, 0.0);
    // Injector at one corner region, producer at the other; strengths vary
    // per step as a schedule would.
    const Int inj = grid_index(n / 4, n / 4, n / 2, n, n);
    const Int prod = grid_index(3 * n / 4, 3 * n / 4, n / 2, n, n);
    b[inj] = 1.0 + 0.2 * step;
    b[prod] = -(1.0 + 0.2 * step);
    Vector x(A.nrows, 0.0);
    KrylovOptions ko;
    ko.rtol = 1e-5;  // the paper's strong-scaling tolerance (§5.1.2)
    t.reset();
    KrylovResult r = fgmres(A, b, x, ko, [&](const Vector& rr, Vector& z) {
      amg.precondition(rr, z);
    });
    total_solve += t.seconds();
    double pmin = 1e300, pmax = -1e300;
    for (double v : x) {
      pmin = std::min(pmin, v);
      pmax = std::max(pmax, v);
    }
    std::printf("  step %d: iters=%2d relres=%.2e pressure range"
                " [%.3e, %.3e]\n",
                step, r.iterations, r.final_relres, pmin, pmax);
  }
  std::printf("total solve time for %d steps: %.3fs (setup amortized)\n",
              steps, total_solve);
  return 0;
}
