#include "support/fault.hpp"

#include <map>
#include <mutex>

#include "support/live.hpp"

namespace hpamg::fault {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

struct SiteState {
  Schedule schedule;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;
};

/// Leaked singleton (same lifetime policy as the metrics registry):
/// injection sites may be evaluated from detached rank threads during
/// process teardown.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// splitmix64 — counter-based, so draw k of a site is a pure function of
/// (seed, k) and replays are exact.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {

bool should_fire_slow(std::string_view site, std::uint64_t* draw) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  SiteState& s = it->second;
  const std::uint64_t hit = s.hits++;
  if (hit < s.schedule.after_n) return false;
  if (s.fires >= s.schedule.count) return false;
  const std::uint64_t rnd = splitmix64(s.schedule.seed ^ (hit * 2 + 1));
  if (s.schedule.probability < 1.0) {
    // Top 53 bits -> uniform double in [0, 1).
    const double u = double(rnd >> 11) * 0x1.0p-53;
    if (u >= s.schedule.probability) return false;
  }
  ++s.fires;
  if (draw) *draw = splitmix64(rnd);
  // Flight-recorder hook: a fired site is exactly the event a post-mortem
  // wants context around. The map node's key outlives the registry, so the
  // pointer is stable. Runs under the registry mutex — live's locks never
  // take fault locks, so the order is acyclic; the (once-per-site) dump
  // I/O inside note_fault is rare and off the hot path by construction.
  if (live::enabled()) live::note_fault(it->first.c_str());
  return true;
}

}  // namespace detail

void arm(std::string_view site, const Schedule& schedule) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites[std::string(site)] = SiteState{schedule, 0, 0};
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) r.sites.erase(it);
  if (r.sites.empty())
    detail::g_armed.store(false, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fires(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

}  // namespace hpamg::fault
