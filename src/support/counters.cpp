#include "support/counters.hpp"

#include <sstream>

namespace hpamg {

std::string WorkCounters::to_string() const {
  std::ostringstream os;
  os << "flops=" << flops << " read=" << bytes_read
     << " written=" << bytes_written << " branches=" << branches
     << " probes=" << hash_probes;
  return os.str();
}

}  // namespace hpamg
