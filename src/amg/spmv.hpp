// Sparse matrix-vector products and the interpolation/restriction kernels.
//
// The optimized solve phase (SC'15 §3.2, §3.3) changes three things about
// these kernels relative to baseline HYPRE:
//  1. restriction reuses R = P^T kept from setup instead of transposing P
//     on every call (3.7x average SpMV-phase speedup in Fig 5);
//  2. interpolation/restriction skip the identity block of the CF-permuted
//     P = [I; P_F], touching only the (n_l - n_{l+1}) x n_{l+1} block;
//  3. the residual SpMV is fused with the inner product used for the
//     residual norm, saving one write+read pass over the residual vector.
#pragma once

#include "matrix/csr.hpp"
#include "matrix/vector_ops.hpp"
#include "support/counters.hpp"

namespace hpamg {

/// y = A * x
void spmv(const CSRMatrix& A, const Vector& x, Vector& y,
          WorkCounters* wc = nullptr);

/// y = A^T * x computed from A directly (no transpose materialized) via a
/// serial scatter — deliberately mirrors the baseline cost of transposing
/// on the fly. Prefer keeping R = P^T (see hierarchy.hpp).
void spmv_transpose(const CSRMatrix& A, const Vector& x, Vector& y,
                    WorkCounters* wc = nullptr);

/// r = b - A * x
void spmv_residual(const CSRMatrix& A, const Vector& x, const Vector& b,
                   Vector& r, WorkCounters* wc = nullptr);

/// r = b - A * x, returning <r, r> computed in the same pass (§3.3 fusion).
double spmv_residual_norm2sq_fused(const CSRMatrix& A, const Vector& x,
                                   const Vector& b, Vector& r,
                                   WorkCounters* wc = nullptr);

/// x += P * e for the CF-permuted P = [I; P_F]: x[i] += e[i] for coarse
/// rows, x[nc + i] += (Pf * e)[i] for fine rows. Touches only Pf.
void interp_add_identity_block(const CSRMatrix& Pf, const Vector& e,
                               Vector& x, Int nc, WorkCounters* wc = nullptr);

/// rc = R * r for R = [I | PfT]: rc[j] = r[j] + (PfT * r[nc:])[j].
void restrict_identity_block(const CSRMatrix& PfT, const Vector& r,
                             Vector& rc, Int nc, WorkCounters* wc = nullptr);

}  // namespace hpamg
