// Live observability: in-flight progress streams, heartbeats + watchdog,
// and a flight recorder — the online counterpart of the post-mortem stack
// (trace / metrics / report), built for long-lived solver processes.
//
// Everything the repo's observability layers produce today is readable
// only after the process exits. This layer answers the operational
// questions while the solve is still running:
//
//   - A background **sampler thread** (start()/stop()) periodically
//     snapshots the metrics registry and the per-rank heartbeats into an
//     append-only JSONL *progress stream* (progress.jsonl, one JSON object
//     per line) and a Prometheus-style *text exposition file*
//     (metrics.prom, written to a temp file and atomically renamed per
//     scrape, so external tooling never reads a torn file). bench/hpamg_top
//     tails the stream and renders it live.
//
//   - A per-rank **heartbeat**: solver drivers publish (iteration, level,
//     phase, residual) beats from their main loops (beat_iteration /
//     beat_phase). A configurable **watchdog** in the sampler thread
//     declares a stall when an *active* rank's heartbeat goes quiet past
//     the deadline, dumps the flight recorder, invokes registered stall
//     handlers (simmpi::run installs one that captures the PR-5 state dump
//     and deadlock-poisons the world, so a hung collective unwinds as
//     DeadlockError attributed to the rank whose heartbeat stopped), and
//     latches a Status (watchdog_verdict()) instead of timing out
//     silently. Deadlines are scaled by sanitizer_scale() so TSan/ASan
//     slowdowns cannot cause false stall reports.
//
//   - A **flight recorder**: a bounded per-thread ring of recent
//     structured events (log records, trace instants, fault-injection
//     trips) dumped on fault trips, fatal signals, and watchdog firings —
//     "what happened in the last 500 ms before that crash".
//
// Overhead discipline matches trace/metrics/fault: everything is always
// compiled in, off by default, and every publish site costs exactly one
// relaxed atomic load while live observability is disabled. Heartbeat
// `phase` strings must be string literals (the slot stores the pointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace hpamg::live {

namespace detail {
extern std::atomic<bool> g_enabled;
/// Slot index the calling thread publishes to: 0 = host (outside simmpi),
/// r + 1 = simmpi rank r. Set by set_rank(); inherited default is host.
extern thread_local int t_slot;
void beat_iteration_slow(std::int64_t iteration, double relres);
void beat_phase_slow(const char* phase, std::int64_t level);
void add_blocked_ns_slow(std::uint64_t ns);
void set_waiting_slow(bool waiting);
void activity_begin_slow();
void activity_end_slow();
}  // namespace detail

/// One relaxed load; every disabled publish site reduces to this.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// ------------------------------------------------------------------------
// Configuration and lifecycle
// ------------------------------------------------------------------------

/// Heartbeat slots: slot 0 is the host thread, slots 1..kSlots-1 carry
/// simmpi ranks 0..kSlots-2. Ranks beyond that are not tracked (beats are
/// dropped, never misattributed).
constexpr int kSlots = 64;

struct Options {
  /// Output directory for progress.jsonl + metrics.prom; empty disables
  /// the file outputs (heartbeats/watchdog/flight recorder still run).
  std::string dir;
  /// Sampler period. The sampler also drives the watchdog, so the
  /// effective stall-detection resolution is one interval.
  double interval_s = 0.05;
  /// Heartbeat deadline in (unscaled) seconds; 0 disables the watchdog.
  /// The effective deadline is watchdog_deadline_s * sanitizer_scale().
  double watchdog_deadline_s = 0.0;
  /// Dump the flight recorder when a fault-injection site fires.
  bool dump_on_fault = true;
  /// Install best-effort fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS)
  /// that write the flight recorder to stderr before re-raising.
  bool signal_handlers = false;
  /// Per-thread flight-recorder ring capacity (entries).
  std::size_t flight_capacity = 256;
};

/// Starts the sampler thread and flips enabled(); false if already
/// running. Not thread-safe against itself (call from one control thread,
/// like trace::enable).
bool start(const Options& opts);
/// Writes one final sample, joins the sampler, flips enabled() off.
/// Progress/exposition files are left on disk for post-run inspection.
void stop();
bool running();

/// TSan/ASan deadline multiplier (compile-time sanitizer detection,
/// overridable with the HPAMG_WATCHDOG_SCALE environment variable): a
/// sanitized build runs the same solve 5-20x slower, so wall-clock stall
/// deadlines must stretch with it or every slow-but-alive solve becomes a
/// false stall report (tests/test_live.cpp pins this).
double sanitizer_scale();

// ------------------------------------------------------------------------
// Rank binding and heartbeat publishing
// ------------------------------------------------------------------------

/// Binds the calling thread to simmpi rank r (slot r + 1); rank < 0 means
/// the host slot. simmpi::run calls this on every rank thread; threads
/// that never call it publish as the host.
void set_rank(int rank);
/// Rank the calling thread is bound to (-1 = host).
int current_rank();

/// RAII activity scope: marks the calling thread's slot active for the
/// watchdog while a solver driver is inside its main loop, and inactive
/// again on exit — a slot that is idle *between* solves must never trip
/// the stall deadline. Nests (depth-counted); solver entry points open one.
class ActivityScope {
 public:
  ActivityScope() : on_(enabled()) {
    if (on_) detail::activity_begin_slow();
  }
  ~ActivityScope() {
    if (on_) detail::activity_end_slow();
  }
  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;

 private:
  bool on_;  ///< enabled() at entry, so begin/end always pair
};

/// Driver-loop beat: iteration finished with this relative residual.
/// Updates the slot's epoch, iteration, residual, and per-iteration
/// convergence factor (relres / previous beat's relres).
inline void beat_iteration(std::int64_t iteration, double relres) {
  if (enabled()) detail::beat_iteration_slow(iteration, relres);
}

/// Phase/level beat from inside a cycle or setup: `phase` MUST be a string
/// literal (the slot stores the pointer, exactly like trace events).
inline void beat_phase(const char* phase, std::int64_t level = -1) {
  if (enabled()) detail::beat_phase_slow(phase, level);
}

/// Blocked-time accounting (simmpi bounded waits feed this): nanoseconds
/// the calling thread's rank just spent blocked. The sampler differences
/// successive values into the per-interval blocked fraction hpamg_top
/// shows.
inline void add_blocked_ns(std::uint64_t ns) {
  if (enabled()) detail::add_blocked_ns_slow(ns);
}

/// Marks the calling thread's rank as sitting inside a simmpi wait. A
/// waiting rank that misses the deadline is a *victim* (it is blocked on
/// someone); the watchdog attributes the stall to a non-waiting stale rank
/// when one exists.
inline void set_waiting(bool waiting) {
  if (enabled()) detail::set_waiting_slow(waiting);
}

/// One slot's published state, as sampled by the watchdog / progress
/// stream / tests.
struct HeartbeatSample {
  int rank = -1;  ///< -1 = host slot
  std::uint64_t epoch = 0;
  double age_s = 0.0;  ///< seconds since the last beat
  std::int64_t iteration = -1;
  std::int64_t level = -1;
  const char* phase = nullptr;
  double relres = -1.0;       ///< last beat_iteration residual; <0 = none
  double conv_factor = 0.0;   ///< relres / previous beat's relres; 0 = n/a
  bool waiting = false;       ///< inside a simmpi bounded wait
  double blocked_s = 0.0;     ///< cumulative blocked time
};

/// Snapshot of every *active* slot (ActivityScope depth > 0).
std::vector<HeartbeatSample> heartbeat_snapshot();

// ------------------------------------------------------------------------
// Watchdog
// ------------------------------------------------------------------------

/// What the watchdog latched when it declared a stall.
struct StallInfo {
  int rank = -1;           ///< culprit slot's rank (-1 = host)
  double stalled_s = 0.0;  ///< heartbeat age when declared
  double deadline_s = 0.0; ///< effective (scaled) deadline
  std::int64_t iteration = -1;
  const char* phase = nullptr;
  bool waiting = false;    ///< true when every stale rank was in a wait
                           ///< (a genuine cross-rank deadlock cycle)
};

/// kOk until the watchdog latches a stall, kDeadlock afterwards — the
/// caller-facing verdict, same taxonomy the solvers report.
Status watchdog_verdict();
/// Details of the latched stall (valid once watchdog_verdict() != kOk).
StallInfo stall_info();
/// Re-arms the watchdog latch (tests; a production service would restart
/// the live layer instead).
void reset_watchdog();

/// Stall handlers run on the sampler thread when the watchdog fires, after
/// the flight-recorder dump. simmpi::run registers one per world that
/// captures the per-rank state dump and deadlock-poisons the world.
/// Returns a token for unregister_stall_handler, which blocks until any
/// in-flight invocation of that handler returns (safe teardown).
using StallHandler = std::function<void(const StallInfo&)>;
int register_stall_handler(StallHandler handler);
void unregister_stall_handler(int token);

// ------------------------------------------------------------------------
// Flight recorder
// ------------------------------------------------------------------------

/// Event classes kept in the per-thread rings.
enum class EventKind : std::uint8_t {
  kLog = 0,    ///< a log::logf record at or above the recorder threshold
  kInstant,    ///< a trace::instant marker
  kFault,      ///< a fault-injection site fired
  kWatchdog,   ///< watchdog declared a stall
};

/// Records one event into the calling thread's ring (bounded; oldest
/// entries are overwritten). `text` is copied (truncated to the entry
/// size), so dynamic strings are safe here, unlike heartbeat phases.
void record(EventKind kind, const char* name, const char* text);

/// Fault layer hook: records the trip and, when Options::dump_on_fault is
/// set, writes a flight dump (once per site name, so a chaos schedule that
/// fires hundreds of times does not flood the dump directory).
void note_fault(const char* site);

/// Merges every thread's ring into one chronologically sorted text report
/// (newest events last), annotated with each event's rank and age.
std::string flight_dump();
/// Writes flight_dump() to `path`; false (errno intact) on I/O failure.
bool write_flight_dump(const std::string& path);
/// Writes a numbered flightrec_<n>.txt into the live dir (or
/// $HPAMG_STATE_DUMP_DIR when no live dir is set); empty string when
/// neither destination exists or the write fails. `reason` is stamped
/// into the dump header.
std::string dump_flight_recorder(const char* reason);

/// Events currently held / overwritten across all rings (tests).
struct FlightStats {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};
FlightStats flight_stats();

}  // namespace hpamg::live
