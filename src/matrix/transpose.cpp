#include "matrix/transpose.hpp"

#include "support/parallel.hpp"
#include "support/sort.hpp"
#include "support/trace.hpp"

namespace hpamg {

CSRMatrix transpose_serial(const CSRMatrix& A, WorkCounters* wc) {
  TRACE_SPAN("matrix.transpose_serial", "kernel", "rows",
             std::int64_t(A.nrows));
  CSRMatrix T(A.ncols, A.nrows);
  const Long nnz = A.nnz();
  T.colidx.resize(nnz);
  T.values.resize(nnz);
  // Count entries per column.
  for (Long k = 0; k < nnz; ++k) ++T.rowptr[A.colidx[k] + 1];
  for (Int j = 0; j < A.ncols; ++j) T.rowptr[j + 1] += T.rowptr[j];
  std::vector<Int> fill(T.rowptr.begin(), T.rowptr.end() - 1);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int pos = fill[A.colidx[k]]++;
      T.colidx[pos] = i;
      T.values[pos] = A.values[k];
    }
  if (wc) {
    wc->bytes_read += 2 * nnz * (sizeof(Int) + sizeof(double));
    wc->bytes_written += nnz * (sizeof(Int) + sizeof(double));
  }
  return T;
}

CSRMatrix transpose_parallel(const CSRMatrix& A, WorkCounters* wc) {
  TRACE_SPAN("matrix.transpose", "kernel", "rows", std::int64_t(A.nrows));
  const Long nnz = A.nnz();
  CSRMatrix T(A.ncols, A.nrows);
  if (nnz == 0) return T;

  // Sort the nonzeros by column index: order[] visits nonzeros grouped by
  // column (stable, so within a column the row indices stay ascending —
  // output rows come out sorted for free).
  std::vector<Int> order;
  std::vector<Int> bucket_ptr;
  parallel_counting_sort(Int(nnz), A.ncols, A.colidx.data(), order,
                         bucket_ptr);
  T.rowptr = std::move(bucket_ptr);
  T.colidx.resize(nnz);
  T.values.resize(nnz);

  // Inverse map: nonzero position -> owning row of A. Built per thread over
  // an nnz-balanced row partition (§3.3: threads get similar nonzero counts).
  const int nt = num_threads();
  std::vector<Int> nnz_row(nnz);
  const std::vector<Int> bounds = partition_by_weight(A.rowptr, nt);
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    for (Int i = bounds[t]; i < bounds[t + 1]; ++i)
      for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) nnz_row[k] = i;
  }
  parallel_for(0, Int(nnz), [&](Int p) {
    const Int k = order[p];
    T.colidx[p] = nnz_row[k];
    T.values[p] = A.values[k];
  });
  if (wc) {
    wc->bytes_read += 2 * nnz * (sizeof(Int) + sizeof(double));
    wc->bytes_written += nnz * (sizeof(Int) + sizeof(double));
  }
  return T;
}

}  // namespace hpamg
