#include "amg/cycle.hpp"

#include "amg/spmv.hpp"
#include "amg/telemetry.hpp"
#include "matrix/transpose.hpp"
#include "perfmodel/attrib.hpp"
#include "support/live.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Applies the configured smoother to rows of level L. `pre` selects the
/// C-then-F (pre) or F-then-C (post) order; zero_init marks a known-zero
/// initial guess (coarse pre-smoothing), which the optimized hybrid GS
/// exploits by skipping the upper-triangle/external terms of the first
/// sub-sweep.
void smooth(const Hierarchy& h, Level& L, const Vector& b, Vector& x,
            bool pre, bool zero_init, WorkCounters* wc) {
  TRACE_SPAN("smoother", "kernel", "rows", std::int64_t(L.n));
  const AMGOptions& o = h.opts;
  for (Int sweep = 0; sweep < o.num_sweeps; ++sweep) {
    const bool zi = zero_init && sweep == 0;
    switch (o.smoother) {
      case SmootherKind::kJacobi:
        jacobi_sweep(L.A, b, x, L.temp, 2.0 / 3.0, 0, L.n, wc);
        break;
      case SmootherKind::kLexGS:
        L.lexgs->sweep(L.A, b, x, true, wc);
        break;
      case SmootherKind::kMultiColorGS:
        // Forward colors pre-smoothing, backward colors post (symmetric
        // multi-color sweep, as AmgX's smoother does).
        L.mcgs->sweep(L.A, b, x, pre, wc);
        break;
      case SmootherKind::kHybridGS: {
        const bool cf = o.cf_smoothing && L.nc > 0;
        if (L.gs_opt) {
          if (!cf) {
            L.gs_opt->sweep(b, x, L.temp, 0, L.n, true, zi, wc);
          } else if (pre) {
            // Coarse block first; with a zero guess the first sub-sweep
            // reads nothing stale so zero_init applies.
            L.gs_opt->sweep(b, x, L.temp, 0, L.nc, true, zi, wc);
            L.gs_opt->sweep(b, x, L.temp, L.nc, L.n, true, false, wc);
          } else {
            L.gs_opt->sweep(b, x, L.temp, L.nc, L.n, true, false, wc);
            L.gs_opt->sweep(b, x, L.temp, 0, L.nc, true, false, wc);
          }
        } else if (L.gs_base) {
          const signed char* cfm = (cf && !L.cf.empty()) ? L.cf.data() : nullptr;
          if (!cfm) {
            L.gs_base->sweep(L.A, b, x, L.temp, true, nullptr, 0, wc);
          } else if (pre) {
            L.gs_base->sweep(L.A, b, x, L.temp, true, cfm, 1, wc);
            L.gs_base->sweep(L.A, b, x, L.temp, true, cfm, -1, wc);
          } else {
            L.gs_base->sweep(L.A, b, x, L.temp, true, cfm, -1, wc);
            L.gs_base->sweep(L.A, b, x, L.temp, true, cfm, 1, wc);
          }
        }
        break;
      }
    }
  }
}

void coarse_solve(Hierarchy& h, Level& L, const Vector& b, Vector& x,
                  WorkCounters* wc) {
  TRACE_SPAN("coarse_solve", "kernel", "rows", std::int64_t(L.n));
  if (h.coarse_lu.size() == L.n && L.n > 0) {
    h.coarse_lu.solve(b.data(), x.data());
    if (wc) wc->flops += std::uint64_t(L.n) * L.n;  // triangular solves
    return;
  }
  // Approximate coarse solve by smoothing (paper §2: "...or approximated
  // with a few smoothing steps").
  set_zero(x);
  for (int s = 0; s < 8; ++s) smooth(h, L, b, x, s % 2 == 0, s == 0, wc);
}

void vcycle_level(Hierarchy& h, Int l, PhaseTimes* pt, WorkCounters* wc,
                  bool zero_entry = true) {
  TRACE_SPAN("cycle.level", std::int64_t(l));
  live::beat_phase("cycle.level", std::int64_t(l));
  Level& L = h.levels[l];
  const bool optimized = h.opts.variant == Variant::kOptimized;
  if (l == h.num_levels() - 1) {
    Timer t;
    {
      attrib::Scope as("coarse_solve", int(l), wc);
      coarse_solve(h, L, L.b, L.x, wc);
    }
    const double sec = t.seconds();
    if (pt) pt->add("Solve_etc", sec);
    if (h.telemetry) h.telemetry->add(std::size_t(l), sec);
    return;
  }
  Level& N = h.levels[l + 1];

  // Pre-smoothing. Levels below the finest always enter with x = 0.
  {
    Timer t;
    {
      attrib::Scope as("smoother", int(l), wc);
      // zero_entry: levels below the finest enter with x = 0 on their FIRST
      // visit of a cycle; W-cycle revisits carry the accumulated iterate.
      smooth(h, L, L.b, L.x, /*pre=*/true, /*zero_init=*/l > 0 && zero_entry,
             wc);
    }
    const double sec = t.seconds();
    if (pt) pt->add("GS", sec);
    if (h.telemetry) h.telemetry->add(std::size_t(l), sec);
  }
  if (l == 0 && h.telemetry && h.telemetry->measure_smoother) {
    // Diagnostic-only residual after the fine pre-smooth: null counters and
    // no phase attribution, so the deterministic work/phase sums that
    // baselines compare against are unchanged by telemetry.
    h.telemetry->presmooth_norm2 =
        spmv_residual_norm2sq_fused(L.A, L.x, L.b, L.r, nullptr);
  }

  // Residual + restriction.
  {
    Timer t;
    attrib::Scope as("residual_restrict", int(l), wc);
    spmv_residual(L.A, L.x, L.b, L.r, wc);
    if (optimized) {
      restrict_identity_block(L.PfT, L.r, L.rc_pre, L.nc, wc);
      // Gather into the child's CF-permuted working order.
      const std::vector<Int>& perm = N.perm.perm;
      if (!perm.empty()) {
        parallel_for(0, N.n, [&](Int i) { N.b[i] = L.rc_pre[perm[i]]; });
      } else {
        copy(L.rc_pre, N.b);
      }
    } else {
      // Baseline: transpose P anew for every restriction (§3.2 calls this
      // out as the dominant SpMV cost in HYPRE_base).
      CSRMatrix R = transpose_serial(L.P, wc);
      spmv(R, L.r, N.b, wc);
    }
    const double sec = t.seconds();
    if (pt) pt->add("SpMV", sec);
    if (h.telemetry) h.telemetry->add(std::size_t(l), sec);
  }

  set_zero(N.x);
  // gamma = 1 is the V-cycle; gamma = 2 revisits the coarse problem (with
  // the accumulated coarse iterate) for a W-cycle.
  for (Int g = 0; g < std::max<Int>(1, h.opts.cycle_gamma); ++g)
    vcycle_level(h, l + 1, pt, wc, /*zero_entry=*/g == 0);

  // Prolongation: x += P e.
  {
    Timer t;
    attrib::Scope as("prolong", int(l), wc);
    if (optimized) {
      const std::vector<Int>& perm = N.perm.perm;
      if (!perm.empty()) {
        // Scatter the child's correction back to this level's coarse
        // numbering, then apply the identity-block interpolation.
        parallel_for(0, N.n, [&](Int i) { L.rc_pre[perm[i]] = N.x[i]; });
        interp_add_identity_block(L.Pf, L.rc_pre, L.x, L.nc, wc);
      } else {
        interp_add_identity_block(L.Pf, N.x, L.x, L.nc, wc);
      }
    } else {
      spmv(L.P, N.x, L.temp, wc);
      axpy(1.0, L.temp, L.x, wc);
    }
    const double sec = t.seconds();
    if (pt) pt->add("SpMV", sec);
    if (h.telemetry) h.telemetry->add(std::size_t(l), sec);
  }

  // Post-smoothing.
  {
    Timer t;
    {
      attrib::Scope as("smoother", int(l), wc);
      smooth(h, L, L.b, L.x, /*pre=*/false, /*zero_init=*/false, wc);
    }
    const double sec = t.seconds();
    if (pt) pt->add("GS", sec);
    if (h.telemetry) h.telemetry->add(std::size_t(l), sec);
  }
}

// ---------------------------------------------------------------------------
// Batched (multi-RHS) cycle. Mirrors vcycle_level exactly — same smoother
// order, same restriction/prolongation sequence, no extra norms — so each
// column evolves bitwise-identically to a scalar cycle on that column.
// ---------------------------------------------------------------------------

/// Per-column fallback for smoothers without a batched variant: gathers
/// column j into the level's scalar scratch, runs the scalar sweep, and
/// scatters back. Bitwise-equal by construction, but re-streams the matrix
/// once per column.
void smooth_multi_fallback(const Hierarchy& h, Level& L, const MultiVector& B,
                           MultiVector& X, bool pre, bool zero_init,
                           WorkCounters* wc) {
  for (Int j = 0; j < X.m; ++j) {
    gather_column(B, j, L.b);
    gather_column(X, j, L.x);
    smooth(h, L, L.b, L.x, pre, zero_init, wc);
    scatter_column(L.x, j, X);
  }
}

void smooth_multi(const Hierarchy& h, Level& L, MultiRhsWorkspace& W, Int l,
                  const MultiVector& B, MultiVector& X, bool pre,
                  bool zero_init, WorkCounters* wc) {
  TRACE_SPAN("smoother.multi", "kernel", "rows", std::int64_t(L.n));
  const AMGOptions& o = h.opts;
  MultiVector& Temp = W.temp[std::size_t(l)];
  for (Int sweep = 0; sweep < o.num_sweeps; ++sweep) {
    const bool zi = zero_init && sweep == 0;
    switch (o.smoother) {
      case SmootherKind::kJacobi:
        jacobi_sweep_multi(L.A, B, X, Temp, 2.0 / 3.0, 0, L.n, wc);
        break;
      case SmootherKind::kHybridGS: {
        if (!L.gs_opt) {
          smooth_multi_fallback(h, L, B, X, pre, zi, wc);
          return;  // the fallback already loops num_sweeps internally
        }
        const bool cf = o.cf_smoothing && L.nc > 0;
        if (!cf) {
          L.gs_opt->sweep_multi(B, X, Temp, 0, L.n, true, zi, wc);
        } else if (pre) {
          L.gs_opt->sweep_multi(B, X, Temp, 0, L.nc, true, zi, wc);
          L.gs_opt->sweep_multi(B, X, Temp, L.nc, L.n, true, false, wc);
        } else {
          L.gs_opt->sweep_multi(B, X, Temp, L.nc, L.n, true, false, wc);
          L.gs_opt->sweep_multi(B, X, Temp, 0, L.nc, true, false, wc);
        }
        break;
      }
      case SmootherKind::kLexGS:
      case SmootherKind::kMultiColorGS:
        smooth_multi_fallback(h, L, B, X, pre, zi, wc);
        return;  // ditto: internal num_sweeps loop
    }
  }
}

void coarse_solve_multi(Hierarchy& h, Level& L, MultiRhsWorkspace& W, Int l,
                        const MultiVector& B, MultiVector& X,
                        WorkCounters* wc) {
  TRACE_SPAN("coarse_solve_multi", "kernel", "rows", std::int64_t(L.n));
  if (h.coarse_lu.size() == L.n && L.n > 0) {
    for (Int j = 0; j < B.m; ++j) {
      gather_column(B, j, L.b);
      h.coarse_lu.solve(L.b.data(), L.x.data());
      scatter_column(L.x, j, X);
    }
    if (wc) wc->flops += std::uint64_t(L.n) * L.n * std::uint64_t(B.m);
    return;
  }
  set_zero(X);
  for (int s = 0; s < 8; ++s)
    smooth_multi(h, L, W, l, B, X, s % 2 == 0, s == 0, wc);
}

void vcycle_level_multi(Hierarchy& h, Int l, PhaseTimes* pt,
                        WorkCounters* wc, bool zero_entry = true) {
  TRACE_SPAN("cycle.level_multi", std::int64_t(l));
  live::beat_phase("cycle.level_multi", std::int64_t(l));
  Level& L = h.levels[l];
  MultiRhsWorkspace& W = h.multi_ws;
  const Int m = W.m;
  const bool optimized = h.opts.variant == Variant::kOptimized;
  MultiVector& Wb = W.b[std::size_t(l)];
  MultiVector& Wx = W.x[std::size_t(l)];
  if (l == h.num_levels() - 1) {
    Timer t;
    coarse_solve_multi(h, L, W, l, Wb, Wx, wc);
    if (pt) pt->add("Solve_etc", t.seconds());
    return;
  }
  Level& N = h.levels[l + 1];
  MultiVector& Wr = W.r[std::size_t(l)];
  MultiVector& Wrc = W.rc_pre[std::size_t(l)];
  MultiVector& Nb = W.b[std::size_t(l + 1)];
  MultiVector& Nx = W.x[std::size_t(l + 1)];

  {
    Timer t;
    smooth_multi(h, L, W, l, Wb, Wx, /*pre=*/true,
                 /*zero_init=*/l > 0 && zero_entry, wc);
    if (pt) pt->add("GS", t.seconds());
  }

  {
    Timer t;
    spmv_residual_multi(L.A, Wx, Wb, Wr, wc);
    if (optimized) {
      restrict_identity_block_multi(L.PfT, Wr, Wrc, L.nc, wc);
      const std::vector<Int>& perm = N.perm.perm;
      if (!perm.empty()) {
        const double* HPAMG_RESTRICT src = Wrc.data.data();
        double* HPAMG_RESTRICT dst = Nb.data.data();
        parallel_for(0, N.n, [&](Int i) {
          const double* HPAMG_RESTRICT s = src + std::size_t(perm[i]) * m;
          double* HPAMG_RESTRICT d = dst + std::size_t(i) * m;
          for (Int j = 0; j < m; ++j) d[j] = s[j];
        });
      } else {
        copy(Wrc, Nb);
      }
    } else {
      CSRMatrix R = transpose_serial(L.P, wc);
      spmv_multi(R, Wr, Nb, wc);
    }
    if (pt) pt->add("SpMV", t.seconds());
  }

  set_zero(Nx);
  for (Int g = 0; g < std::max<Int>(1, h.opts.cycle_gamma); ++g)
    vcycle_level_multi(h, l + 1, pt, wc, /*zero_entry=*/g == 0);

  {
    Timer t;
    if (optimized) {
      const std::vector<Int>& perm = N.perm.perm;
      if (!perm.empty()) {
        const double* HPAMG_RESTRICT src = Nx.data.data();
        double* HPAMG_RESTRICT dst = Wrc.data.data();
        parallel_for(0, N.n, [&](Int i) {
          const double* HPAMG_RESTRICT s = src + std::size_t(i) * m;
          double* HPAMG_RESTRICT d = dst + std::size_t(perm[i]) * m;
          for (Int j = 0; j < m; ++j) d[j] = s[j];
        });
        interp_add_identity_block_multi(L.Pf, Wrc, Wx, L.nc, wc);
      } else {
        interp_add_identity_block_multi(L.Pf, Nx, Wx, L.nc, wc);
      }
    } else {
      MultiVector& Wtemp = W.temp[std::size_t(l)];
      spmv_multi(L.P, Nx, Wtemp, wc);
      const std::vector<double> ones(std::size_t(m), 1.0);
      axpy_columns(ones, Wtemp, Wx, wc);
    }
    if (pt) pt->add("SpMV", t.seconds());
  }

  {
    Timer t;
    smooth_multi(h, L, W, l, Wb, Wx, /*pre=*/false, /*zero_init=*/false, wc);
    if (pt) pt->add("GS", t.seconds());
  }
}

}  // namespace

void ensure_multi_workspace(Hierarchy& h, Int m) {
  require(m > 0, "ensure_multi_workspace: m must be positive");
  MultiRhsWorkspace& W = h.multi_ws;
  const std::size_t nl = h.levels.size();
  if (W.m == m && W.b.size() == nl) return;
  W.m = m;
  W.b.resize(nl);
  W.x.resize(nl);
  W.temp.resize(nl);
  W.r.resize(nl);
  W.rc_pre.resize(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    const Int n = h.levels[l].n;
    const Int nc = std::max<Int>(h.levels[l].nc, 1);
    W.b[l].resize(n, m);
    W.x[l].resize(n, m);
    W.temp[l].resize(n, m);
    W.r[l].resize(n, m);
    W.rc_pre[l].resize(nc, m);
  }
}

void vcycle_workspace_multi(Hierarchy& h, const MultiVector& B_work,
                            MultiVector& X_work, PhaseTimes* pt,
                            WorkCounters* wc) {
  require(!h.levels.empty(), "vcycle_multi: empty hierarchy");
  require(B_work.m == X_work.m, "vcycle_multi: column count mismatch");
  ensure_multi_workspace(h, B_work.m);
  copy(B_work, h.multi_ws.b[0]);
  copy(X_work, h.multi_ws.x[0]);
  vcycle_level_multi(h, 0, pt, wc);
  copy(h.multi_ws.x[0], X_work);
}

void vcycle_multi(Hierarchy& h, const MultiVector& B, MultiVector& X,
                  PhaseTimes* pt, WorkCounters* wc) {
  TRACE_SPAN("cycle.v_multi", "phase");
  require(!h.levels.empty(), "vcycle_multi: empty hierarchy");
  require(B.m == X.m, "vcycle_multi: column count mismatch");
  ensure_multi_workspace(h, B.m);
  Level& L0 = h.levels[0];
  MultiVector& Wb = h.multi_ws.b[0];
  MultiVector& Wx = h.multi_ws.x[0];
  const bool permuted = h.opts.variant == Variant::kOptimized &&
                        !L0.perm.perm.empty();
  if (!permuted) {
    copy(B, Wb);
    copy(X, Wx);
    vcycle_level_multi(h, 0, pt, wc);
    copy(Wx, X);
    return;
  }
  Timer t;
  const Int m = B.m;
  const std::vector<Int>& perm = L0.perm.perm;
  parallel_for(0, L0.n, [&](Int i) {
    const std::size_t src = std::size_t(perm[i]) * m;
    const std::size_t dst = std::size_t(i) * m;
    for (Int j = 0; j < m; ++j) {
      Wb.data[dst + j] = B.data[src + j];
      Wx.data[dst + j] = X.data[src + j];
    }
  });
  if (pt) pt->add("Solve_etc", t.seconds());
  vcycle_level_multi(h, 0, pt, wc);
  t.reset();
  parallel_for(0, L0.n, [&](Int i) {
    const std::size_t src = std::size_t(i) * m;
    const std::size_t dst = std::size_t(perm[i]) * m;
    for (Int j = 0; j < m; ++j) X.data[dst + j] = h.multi_ws.x[0].data[src + j];
  });
  if (pt) pt->add("Solve_etc", t.seconds());
}

void vcycle_workspace(Hierarchy& h, const Vector& b_work, Vector& x_work,
                      PhaseTimes* pt, WorkCounters* wc) {
  require(!h.levels.empty(), "vcycle: empty hierarchy");
  Level& L0 = h.levels[0];
  copy(b_work, L0.b);
  copy(x_work, L0.x);
  vcycle_level(h, 0, pt, wc);
  copy(L0.x, x_work);
}

void vcycle(Hierarchy& h, const Vector& b, Vector& x, PhaseTimes* pt,
            WorkCounters* wc) {
  TRACE_SPAN("cycle.v", "phase");
  require(!h.levels.empty(), "vcycle: empty hierarchy");
  Level& L0 = h.levels[0];
  const bool permuted = h.opts.variant == Variant::kOptimized &&
                        !L0.perm.perm.empty();
  if (!permuted) {
    copy(b, L0.b);
    copy(x, L0.x);
    vcycle_level(h, 0, pt, wc);
    copy(L0.x, x);
    return;
  }
  Timer t;
  const std::vector<Int>& perm = L0.perm.perm;
  parallel_for(0, L0.n, [&](Int i) {
    L0.b[i] = b[perm[i]];
    L0.x[i] = x[perm[i]];
  });
  if (pt) pt->add("Solve_etc", t.seconds());
  vcycle_level(h, 0, pt, wc);
  t.reset();
  parallel_for(0, L0.n, [&](Int i) { x[perm[i]] = L0.x[i]; });
  if (pt) pt->add("Solve_etc", t.seconds());
}

}  // namespace hpamg
