// Multi-RHS batched solving: bitwise equivalence of the batched kernels
// (SpMV, smoothers, V-cycle, standalone solve) against m independent
// scalar runs, block-Krylov convergence per column, the aliasing
// precondition added to the fused kernels, the batched halo exchange, the
// empty-boundary zero-length-send fix, and the --repeat metrics-envelope
// regression.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "amg/cycle.hpp"
#include "amg/multivector.hpp"
#include "amg/smoother.hpp"
#include "amg/solver.hpp"
#include "amg/spmv.hpp"
#include "bench_util.hpp"
#include "dist/dist_amg.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/halo.hpp"
#include "dist/simmpi.hpp"
#include "gen/graph.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

using test::random_spd;

/// Distinct deterministic columns so no two RHS are parallel.
MultiVector make_multi(Int n, Int m, double phase = 0.0) {
  MultiVector X(n, m);
  for (Int i = 0; i < n; ++i)
    for (Int j = 0; j < m; ++j)
      X.at(i, j) = std::sin(0.1 * double(i) + double(j) + phase) +
                   0.01 * double(j + 1);
  return X;
}

Vector column_of(const MultiVector& X, Int j) {
  Vector v(X.n);
  for (Int i = 0; i < X.n; ++i) v[i] = X.at(i, j);
  return v;
}

// ------------------------------------------------------- multivector ops ---

TEST(MultiVector, ElementwiseOps) {
  MultiVector X = make_multi(40, 3), Y = make_multi(40, 3, 1.0);
  const MultiVector X0 = X;
  std::vector<double> alpha = {2.0, -1.0, 0.0};
  axpy_columns(alpha, X, Y);  // Y_j += alpha_j X_j
  for (Int i = 0; i < 40; ++i)
    for (Int j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(Y.at(i, j), make_multi(40, 3, 1.0).at(i, j) +
                                        alpha[j] * X0.at(i, j));
  scale_columns({0.5, 1.0, 2.0}, X);
  for (Int i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(X.at(i, 0), 0.5 * X0.at(i, 0));
    EXPECT_DOUBLE_EQ(X.at(i, 2), 2.0 * X0.at(i, 2));
  }
  Vector col;
  gather_column(X0, 1, col);
  MultiVector Z(40, 3);
  scatter_column(col, 1, Z);
  for (Int i = 0; i < 40; ++i) EXPECT_EQ(Z.at(i, 1), X0.at(i, 1));

  const std::vector<double> d = dot_columns(X0, X0);
  const std::vector<double> n2 = norm2sq_columns(X0);
  ASSERT_EQ(d.size(), 3u);
  for (Int j = 0; j < 3; ++j) {
    const Vector c = column_of(X0, j);
    double ref = 0.0;
    for (double v : c) ref += v * v;
    EXPECT_NEAR(d[j], ref, 1e-12 * std::abs(ref));
    EXPECT_NEAR(n2[j], ref, 1e-12 * std::abs(ref));
  }
}

// -------------------------------------------------------- batched kernels ---

class BatchedKernels : public ::testing::TestWithParam<Int> {};

TEST_P(BatchedKernels, SpmvBitwiseMatchesScalarColumns) {
  const Int m = GetParam();
  for (const CSRMatrix& A :
       {lap3d_27pt(6, 6, 6), thermal_like(14, 14)}) {
    const MultiVector X = make_multi(A.nrows, m);
    const MultiVector B = make_multi(A.nrows, m, 2.0);
    MultiVector Y(A.nrows, m), R(A.nrows, m), Rf(A.nrows, m);
    std::vector<double> norms;
    spmv_multi(A, X, Y);
    spmv_residual_multi(A, X, B, R);
    spmv_residual_norms2sq_fused_multi(A, X, B, Rf, norms);
    ASSERT_EQ(Int(norms.size()), m);
    for (Int j = 0; j < m; ++j) {
      const Vector xj = column_of(X, j), bj = column_of(B, j);
      Vector yj(A.nrows), rj(A.nrows), rfj(A.nrows);
      spmv(A, xj, yj);
      spmv_residual(A, xj, bj, rj);
      const double n2 = spmv_residual_norm2sq_fused(A, xj, bj, rfj);
      for (Int i = 0; i < A.nrows; ++i) {
        ASSERT_EQ(Y.at(i, j), yj[i]) << "spmv col " << j << " row " << i;
        ASSERT_EQ(R.at(i, j), rj[i]);
        ASSERT_EQ(Rf.at(i, j), rfj[i]);
      }
      // The norm reduction merges thread partials, so only the value (not
      // the bits) is pinned.
      EXPECT_NEAR(norms[j], n2, 1e-12 * std::max(1.0, n2));
    }
  }
}

TEST_P(BatchedKernels, InterpRestrictBitwiseMatchesScalarColumns) {
  const Int m = GetParam();
  const Int nc = 30, nf = 50, n = nc + nf;
  CSRMatrix Pf = test::random_sparse(nf, nc, 3, 99);
  CSRMatrix PfT = test::random_sparse(nc, nf, 3, 98);
  const MultiVector E = make_multi(nc, m);
  const MultiVector Rfine = make_multi(n, m, 3.0);
  MultiVector X = make_multi(n, m, 1.0), Rc(nc, m);
  MultiVector X_ref = X;
  interp_add_identity_block_multi(Pf, E, X, nc);
  restrict_identity_block_multi(PfT, Rfine, Rc, nc);
  for (Int j = 0; j < m; ++j) {
    Vector xj = column_of(X_ref, j), rcj(nc);
    interp_add_identity_block(Pf, column_of(E, j), xj, nc);
    restrict_identity_block(PfT, column_of(Rfine, j), rcj, nc);
    for (Int i = 0; i < n; ++i) ASSERT_EQ(X.at(i, j), xj[i]);
    for (Int i = 0; i < nc; ++i) ASSERT_EQ(Rc.at(i, j), rcj[i]);
  }
}

TEST_P(BatchedKernels, SmoothersBitwiseMatchScalarColumns) {
  const Int m = GetParam();
  for (const CSRMatrix& A :
       {lap3d_27pt(5, 5, 5), circuit_like(12, 12)}) {
    CSRMatrix As = A;
    As.sort_rows();
    HybridGSOptimized gs(As, 4);
    MultiVector B = make_multi(As.nrows, m);
    MultiVector X = make_multi(As.nrows, m, 1.0);
    MultiVector T(As.nrows, m), Xj(As.nrows, m);
    // Jacobi.
    MultiVector Xjac = X, Tjac(As.nrows, m);
    jacobi_sweep_multi(As, B, Xjac, Tjac);
    for (Int j = 0; j < m; ++j) {
      Vector xj = column_of(X, j), tj(As.nrows);
      jacobi_sweep(As, column_of(B, j), xj, tj);
      for (Int i = 0; i < As.nrows; ++i) ASSERT_EQ(Xjac.at(i, j), xj[i]);
    }
    // Hybrid GS forward, backward, and zero-init.
    for (const bool forward : {true, false}) {
      MultiVector Xgs = X, Tgs(As.nrows, m);
      gs.sweep_multi(B, Xgs, Tgs, 0, As.nrows, forward);
      for (Int j = 0; j < m; ++j) {
        Vector xj = column_of(X, j), tj(As.nrows);
        gs.sweep(column_of(B, j), xj, tj, 0, As.nrows, forward);
        for (Int i = 0; i < As.nrows; ++i) ASSERT_EQ(Xgs.at(i, j), xj[i]);
      }
    }
    MultiVector Xz(As.nrows, m), Tz(As.nrows, m);
    gs.sweep_multi(B, Xz, Tz, 0, As.nrows, true, /*zero_init=*/true);
    for (Int j = 0; j < m; ++j) {
      Vector xj(As.nrows, 0.0), tj(As.nrows);
      gs.sweep(column_of(B, j), xj, tj, 0, As.nrows, true, true);
      for (Int i = 0; i < As.nrows; ++i) ASSERT_EQ(Xz.at(i, j), xj[i]);
    }
  }
}

TEST_P(BatchedKernels, VcycleBitwiseMatchesScalarColumns) {
  const Int m = GetParam();
  for (const Variant v : {Variant::kOptimized, Variant::kBaseline}) {
    for (const CSRMatrix& A :
         {lap3d_27pt(6, 6, 6), thermal_like(16, 16)}) {
      AMGOptions o;
      o.variant = v;
      o.gs_partitions = 4;
      Hierarchy h = build_hierarchy(A, o);
      const MultiVector B = make_multi(A.nrows, m);
      MultiVector X(A.nrows, m);
      vcycle_multi(h, B, X);
      for (Int j = 0; j < m; ++j) {
        Vector xj(A.nrows, 0.0);
        vcycle(h, column_of(B, j), xj);
        for (Int i = 0; i < A.nrows; ++i)
          ASSERT_EQ(X.at(i, j), xj[i])
              << "variant " << int(v) << " col " << j << " row " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchedKernels,
                         ::testing::Values<Int>(1, 3, 8));

TEST(MultiWorkspace, SizedPerLevelAndIdempotent) {
  CSRMatrix A = lap3d_27pt(6, 6, 6);
  Hierarchy h = build_hierarchy(A, AMGOptions{});
  ensure_multi_workspace(h, 5);
  ASSERT_EQ(h.multi_ws.m, 5);
  ASSERT_EQ(h.multi_ws.b.size(), h.levels.size());
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    EXPECT_EQ(h.multi_ws.b[l].n, h.levels[l].n);
    EXPECT_EQ(h.multi_ws.b[l].m, 5);
  }
  const double* before = h.multi_ws.b[0].data.data();
  ensure_multi_workspace(h, 5);  // no-op: no reallocation
  EXPECT_EQ(h.multi_ws.b[0].data.data(), before);
}

// ------------------------------------------------------- solve_multi -------

TEST(SolveMulti, ColumnsBitwiseEqualSingleColumnSolves) {
  CSRMatrix A = lap3d_27pt(7, 7, 7);
  AMGSolver amg(A, AMGOptions{});
  const Int m = 3;
  const MultiVector B = make_multi(A.nrows, m);
  MultiVector X(A.nrows, m);
  // rtol tiny so both runs do exactly max_iterations cycles.
  const MultiSolveResult sr = amg.solve_multi(B, X, 1e-30, 5);
  EXPECT_EQ(sr.iterations, 5);
  for (Int j = 0; j < m; ++j) {
    MultiVector Bj(A.nrows, 1), Xj(A.nrows, 1);
    scatter_column(column_of(B, j), 0, Bj);
    const MultiSolveResult s1 = amg.solve_multi(Bj, Xj, 1e-30, 5);
    EXPECT_EQ(s1.iterations, 5);
    for (Int i = 0; i < A.nrows; ++i) ASSERT_EQ(X.at(i, j), Xj.at(i, 0));
  }
}

TEST(SolveMulti, ConvergesEveryColumn) {
  CSRMatrix A = lap3d_27pt(8, 8, 8);
  AMGSolver amg(A, AMGOptions{});
  const Int m = 4;
  const MultiVector B = make_multi(A.nrows, m);
  MultiVector X(A.nrows, m);
  const MultiSolveResult sr = amg.solve_multi(B, X, 1e-8, 100);
  ASSERT_TRUE(sr.converged) << status_name(sr.status);
  ASSERT_EQ(Int(sr.final_relres.size()), m);
  for (Int j = 0; j < m; ++j) {
    EXPECT_LE(sr.final_relres[j], 1e-8);
    EXPECT_GE(sr.col_iterations[j], 0);
    EXPECT_LE(test::relative_residual(A, column_of(X, j), column_of(B, j)),
              1e-7);
  }
}

// ------------------------------------------------------- block Krylov ------

TEST(BlockCG, MatchesScalarCgPerColumn) {
  CSRMatrix A = lap3d_27pt(7, 7, 7);
  const Int m = 3;
  const MultiVector B = make_multi(A.nrows, m);
  MultiVector X(A.nrows, m);
  KrylovOptions opt;
  opt.rtol = 1e-9;
  opt.max_iterations = 400;
  const BlockKrylovResult br = block_pcg(A, B, X, opt);
  ASSERT_TRUE(br.converged) << status_name(br.status);
  for (Int j = 0; j < m; ++j) {
    Vector bj = column_of(B, j), xj(A.nrows, 0.0);
    const KrylovResult sr = pcg(A, bj, xj, opt);
    ASSERT_TRUE(sr.converged);
    // Column recurrences are mathematically identical to scalar CG; the
    // iteration counts agree up to reduction rounding.
    EXPECT_NEAR(double(br.col_iterations[j]), double(sr.iterations), 2.0);
    EXPECT_LE(test::relative_residual(A, column_of(X, j), bj), 1e-8);
  }
}

TEST(BlockCG, PreconditionedConvergesFaster) {
  CSRMatrix A = lap3d_27pt(8, 8, 8);
  AMGSolver amg(A, AMGOptions{});
  const Int m = 4;
  const MultiVector B = make_multi(A.nrows, m);
  KrylovOptions opt;
  opt.rtol = 1e-8;
  opt.max_iterations = 200;
  MultiVector Xp(A.nrows, m), Xu(A.nrows, m);
  const BlockKrylovResult plain = block_pcg(A, B, Xu, opt);
  const BlockKrylovResult pre = block_pcg(
      A, B, Xp, opt,
      [&](const MultiVector& R, MultiVector& Z) {
        amg.precondition_multi(R, Z);
      });
  ASSERT_TRUE(pre.converged) << status_name(pre.status);
  ASSERT_TRUE(plain.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  for (Int j = 0; j < m; ++j)
    EXPECT_LE(test::relative_residual(A, column_of(Xp, j), column_of(B, j)),
              1e-7);
}

TEST(BlockFgmres, ConvergesEveryColumnWithAmgPrecond) {
  CSRMatrix A = lap3d_27pt(7, 7, 7);
  AMGSolver amg(A, AMGOptions{});
  const Int m = 3;
  const MultiVector B = make_multi(A.nrows, m);
  MultiVector X(A.nrows, m);
  KrylovOptions opt;
  opt.rtol = 1e-9;
  opt.max_iterations = 100;
  opt.restart = 20;
  const BlockKrylovResult br = block_fgmres(
      A, B, X, opt,
      [&](const MultiVector& R, MultiVector& Z) {
        amg.precondition_multi(R, Z);
      });
  ASSERT_TRUE(br.converged) << status_name(br.status);
  for (Int j = 0; j < m; ++j) {
    EXPECT_LE(br.final_relres[j], 1e-9);
    EXPECT_LE(test::relative_residual(A, column_of(X, j), column_of(B, j)),
              1e-8);
  }
}

// ------------------------------------------------- aliasing precondition ---

TEST(Aliasing, DistinctBuffersValidator) {
  double a = 0.0, b = 0.0;
  EXPECT_EQ(check::distinct_buffers(&a, &b, "k"), Status::kOk);
  EXPECT_EQ(check::distinct_buffers(nullptr, nullptr, "k"), Status::kOk);
  EXPECT_EQ(check::distinct_buffers(&a, &a, "k"), Status::kInvalidInput);
  EXPECT_NE(check::last_error().find("aliases"), std::string::npos);
}

TEST(Aliasing, FusedKernelsRejectOutAliasingX) {
  if (!check::kCompiled || !check::active(check::Depth::kCheap))
    GTEST_SKIP() << "HPAMG_CHECK not compiled/enabled";
  CSRMatrix A = lap2d_5pt(8, 8);
  Vector x(A.nrows, 1.0), b(A.nrows, 1.0);
  EXPECT_THROW(spmv(A, x, x), SolverError);
  EXPECT_THROW(spmv_residual(A, x, b, x), SolverError);
  EXPECT_THROW(spmv_residual_norm2sq_fused(A, x, b, x), SolverError);
  // r aliasing b is part of the contract and must keep working.
  Vector r = b;
  Vector x2(A.nrows, 0.5);
  EXPECT_NO_THROW(spmv_residual(A, x2, r, r));
  MultiVector X = make_multi(A.nrows, 2), Bm = make_multi(A.nrows, 2, 1.0);
  std::vector<double> norms;
  EXPECT_THROW(spmv_multi(A, X, X), SolverError);
  EXPECT_THROW(spmv_residual_norms2sq_fused_multi(A, X, Bm, X, norms),
               SolverError);
}

// ------------------------------------------------------- batched halo ------

TEST(HaloMulti, ExchangeMatchesScalarPerColumn) {
  CSRMatrix A = lap2d_5pt(12, 12);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    HaloExchange halo(c, dA.colmap, dA.row_starts, true);
    const Int m = 3, n = dA.local_rows();
    MultiVector x(n, m);
    for (Int i = 0; i < n; ++i)
      for (Int j = 0; j < m; ++j)
        x.at(i, j) = double(dA.first_row() + i) * 1.5 + 100.0 * double(j);
    const std::uint64_t msgs_before = c.stats().messages_sent;
    MultiVector ext;
    halo.exchange(x, ext);
    // One message per send peer, independent of m.
    const std::uint64_t multi_msgs = c.stats().messages_sent - msgs_before;
    ASSERT_EQ(Int(ext.n), Int(dA.colmap.size()));
    for (std::size_t k = 0; k < dA.colmap.size(); ++k)
      for (Int j = 0; j < m; ++j)
        EXPECT_DOUBLE_EQ(ext.at(Int(k), j),
                         double(dA.colmap[k]) * 1.5 + 100.0 * double(j));
    // Scalar exchange of column 0 posts the same number of messages: the
    // batched path costs 1/m messages per RHS.
    Vector x0(n), ext0;
    for (Int i = 0; i < n; ++i) x0[i] = x.at(i, 0);
    const std::uint64_t before0 = c.stats().messages_sent;
    halo.exchange(x0, ext0);
    EXPECT_EQ(c.stats().messages_sent - before0, multi_msgs);
    for (std::size_t k = 0; k < dA.colmap.size(); ++k)
      EXPECT_EQ(ext0[k], ext.at(Int(k), 0));
  });
}

TEST(HaloMulti, DistSpmvMultiMatchesScalar) {
  CSRMatrix A = lap3d_27pt(5, 5, 5);
  simmpi::run(3, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    HaloExchange halo(c, dA.colmap, dA.row_starts, true);
    const Int m = 4, n = dA.local_rows();
    MultiVector X(n, m);
    for (Int i = 0; i < n; ++i)
      for (Int j = 0; j < m; ++j)
        X.at(i, j) = std::sin(double(dA.first_row() + i) + double(j));
    MultiVector X_ext, Y;
    dist_spmv_multi(c, dA, halo, X, X_ext, Y);
    for (Int j = 0; j < m; ++j) {
      Vector xj(n), x_ext, yj;
      for (Int i = 0; i < n; ++i) xj[i] = X.at(i, j);
      dist_spmv(c, dA, halo, xj, x_ext, yj);
      for (Int i = 0; i < n; ++i) ASSERT_EQ(Y.at(i, j), yj[i]);
    }
  });
}

// --------------------------------------- empty-boundary zero-length sends ---

TEST(HaloEmpty, NoMessagesForEmptyBoundarySets) {
  // Ranks with nothing to exchange must not post point-to-point messages:
  // the count handshake is a collective, and zero-length sends previously
  // polluted per-peer CommStats and the zero bucket of the message-size
  // histogram.
  simmpi::run(4, [&](simmpi::Comm& c) {
    std::vector<Long> starts = {0, 10, 20, 30, 40};
    std::vector<Long> colmap;  // every rank: empty boundary
    const std::uint64_t msgs_before = c.stats().messages_sent;
    HaloExchange h(c, colmap, starts, true);
    EXPECT_EQ(h.check_symmetry(), Status::kOk) << check::last_error();
    Vector x(10, 1.0), ext;
    h.exchange(x, ext);
    MultiVector xm(10, 3), extm;
    h.exchange(xm, extm);
    EXPECT_EQ(c.stats().messages_sent, msgs_before);
    EXPECT_EQ(c.stats().bytes_sent, 0u);
    for (const simmpi::PeerTraffic& p : c.stats().per_peer) {
      EXPECT_EQ(p.messages, 0u);
      EXPECT_EQ(p.size_hist[0], 0u);  // no zero-byte artifacts
    }
  });
}

TEST(HaloEmpty, MixedPatternPostsNoZeroLengthSends) {
  // 3 ranks; only ranks 0<->1 share a boundary. Rank 2 is isolated and
  // must stay silent; no rank ever records a zero-byte message.
  simmpi::run(3, [&](simmpi::Comm& c) {
    std::vector<Long> starts = {0, 10, 20, 30};
    std::vector<Long> colmap;
    if (c.rank() == 0) colmap = {10, 11};
    if (c.rank() == 1) colmap = {8, 9};
    HaloExchange h(c, colmap, starts, false);
    EXPECT_EQ(h.check_symmetry(), Status::kOk) << check::last_error();
    Vector x(10);
    for (Int i = 0; i < 10; ++i) x[i] = double(c.rank() * 10 + i);
    Vector ext;
    h.exchange(x, ext);
    for (std::size_t k = 0; k < colmap.size(); ++k)
      EXPECT_DOUBLE_EQ(ext[k], double(colmap[k]));
    if (c.rank() == 2) EXPECT_EQ(c.stats().messages_sent, 0u);
    for (const simmpi::PeerTraffic& p : c.stats().per_peer)
      EXPECT_EQ(p.size_hist[0], 0u);
  });
}

TEST(Alltoall, PersonalizedExchange) {
  simmpi::run(4, [&](simmpi::Comm& c) {
    std::vector<Long> send(4);
    for (int r = 0; r < 4; ++r) send[r] = Long(c.rank() * 10 + r);
    const std::vector<Long> got = c.alltoall(send);
    ASSERT_EQ(got.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_EQ(got[r], Long(r * 10 + c.rank()));
  });
}

// ------------------------------------------- --repeat metrics regression ---

TEST(RepeatMetrics, EnvelopeIndependentOfRepeatCount) {
  // Simulates the bench repeat protocol (warm-up + N timed repeats, with
  // begin_timed_repeat at the top of each timed body) around a
  // comm-instrumented workload and requires the final registry snapshot to
  // be identical for --repeat 1 and --repeat 3.
  CSRMatrix A = lap2d_5pt(10, 10);
  auto run_bench = [&](int repeats) {
    metrics::reset();
    metrics::enable();
    auto workload = [&]() {
      simmpi::run(2, [&](simmpi::Comm& c) {
        DistMatrix dA = distribute_csr(c, A);
        HaloExchange halo(c, dA.colmap, dA.row_starts, true);
        Vector x(dA.local_rows(), 1.0), ext;
        for (int round = 0; round < 3; ++round) halo.exchange(x, ext);
      });
    };
    workload();  // warm-up (repeats > 1 in the real benches)
    for (int i = 0; i < repeats; ++i) {
      bench::begin_timed_repeat();
      workload();
    }
    metrics::Snapshot s = metrics::snapshot();
    metrics::disable();
    metrics::reset();
    return s;
  };
  const metrics::Snapshot one = run_bench(1);
  const metrics::Snapshot three = run_bench(3);
  ASSERT_EQ(one.histograms.size(), three.histograms.size());
  bool saw_msg_bytes = false;
  for (std::size_t h = 0; h < one.histograms.size(); ++h) {
    EXPECT_EQ(one.histograms[h].name, three.histograms[h].name);
    EXPECT_EQ(one.histograms[h].count, three.histograms[h].count)
        << one.histograms[h].name;
    EXPECT_EQ(one.histograms[h].sum, three.histograms[h].sum)
        << one.histograms[h].name;
    if (one.histograms[h].name == "comm.msg_bytes") {
      saw_msg_bytes = true;
      EXPECT_GT(one.histograms[h].count, 0u);  // workload was instrumented
    }
  }
  EXPECT_TRUE(saw_msg_bytes);
  ASSERT_EQ(one.counters.size(), three.counters.size());
  for (std::size_t k = 0; k < one.counters.size(); ++k) {
    EXPECT_EQ(one.counters[k].first, three.counters[k].first);
    if (one.counters[k].first.rfind("mem.", 0) == 0) continue;  // allocator
    EXPECT_EQ(one.counters[k].second, three.counters[k].second)
        << one.counters[k].first;
  }
}

}  // namespace
}  // namespace hpamg
