#include "matrix/vector_ops.hpp"

#include <cmath>

#include "support/parallel.hpp"

namespace hpamg {

namespace {
// lint: counted-no-span(BLAS1 accounting; a span per axpy would dominate)
void count_stream(WorkCounters* wc, std::uint64_t n, int reads, int writes,
                  std::uint64_t flops) {
  if (!wc) return;
  wc->bytes_read += n * reads * sizeof(double);
  wc->bytes_written += n * writes * sizeof(double);
  wc->flops += flops;
}
}  // namespace

void axpy(double alpha, const Vector& x, Vector& y, WorkCounters* wc) {
  require(x.size() == y.size(), "axpy: size mismatch");
  const Int n = Int(x.size());
  const double* HPAMG_RESTRICT xp = x.data();
  double* HPAMG_RESTRICT yp = y.data();
  // lint: no-span(BLAS1 body; the calling solver phase holds the span)
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < n; ++i) yp[i] += alpha * xp[i];
  count_stream(wc, n, 2, 1, 2 * std::uint64_t(n));
}

void xpby(const Vector& x, double beta, Vector& y, WorkCounters* wc) {
  require(x.size() == y.size(), "xpby: size mismatch");
  const Int n = Int(x.size());
  const double* HPAMG_RESTRICT xp = x.data();
  double* HPAMG_RESTRICT yp = y.data();
  // lint: no-span(BLAS1 body; the calling solver phase holds the span)
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < n; ++i) yp[i] = xp[i] + beta * yp[i];
  count_stream(wc, n, 2, 1, 2 * std::uint64_t(n));
}

void scale(double alpha, Vector& x, WorkCounters* wc) {
  const Int n = Int(x.size());
  double* HPAMG_RESTRICT xp = x.data();
  // lint: no-span(BLAS1 body; the calling solver phase holds the span)
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < n; ++i) xp[i] *= alpha;
  count_stream(wc, n, 1, 1, std::uint64_t(n));
}

double dot(const Vector& x, const Vector& y, WorkCounters* wc) {
  require(x.size() == y.size(), "dot: size mismatch");
  const Int n = Int(x.size());
  const double* HPAMG_RESTRICT xp = x.data();
  const double* HPAMG_RESTRICT yp = y.data();
  double acc = 0.0;
  // lint: no-span(BLAS1 body; the calling solver phase holds the span)
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (Int i = 0; i < n; ++i) acc += xp[i] * yp[i];
  count_stream(wc, n, 2, 0, 2 * std::uint64_t(n));
  return acc;
}

double norm2(const Vector& x, WorkCounters* wc) {
  return std::sqrt(dot(x, x, wc));
}

void set_zero(Vector& x) {
  const Int n = Int(x.size());
  double* HPAMG_RESTRICT xp = x.data();
  // lint: no-span(BLAS1 body; the calling solver phase holds the span)
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < n; ++i) xp[i] = 0.0;
}

void copy(const Vector& src, Vector& dst) {
  dst.resize(src.size());
  const Int n = Int(src.size());
  const double* HPAMG_RESTRICT sp = src.data();
  double* HPAMG_RESTRICT dp = dst.data();
  // lint: no-span(BLAS1 body; the calling solver phase holds the span)
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < n; ++i) dp[i] = sp[i];
}

double norm_inf(const Vector& x) {
  return parallel_reduce_max(0, Int(x.size()),
                             [&](Int i) { return std::abs(x[i]); });
}

}  // namespace hpamg
