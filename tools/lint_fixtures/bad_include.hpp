// lint-fixture-path: src/support/bad_include.hpp
// Violation fixture: header hygiene — <iostream> in a header, and a
// support/ file reaching up into the dist/ layer.
// expect: include-hygiene
// expect: include-hygiene
#pragma once

#include <iostream>

#include "dist/simmpi.hpp"

namespace hpamg {
inline void noisy() { std::cout << "hi\n"; }
}  // namespace hpamg
