// Shared Arnoldi/Givens machinery for GMRES and FGMRES.
#pragma once

#include <cmath>
#include <vector>

#include "matrix/vector_ops.hpp"
#include "support/common.hpp"

namespace hpamg {
namespace detail {

/// Dense upper-Hessenberg least-squares state for one restart cycle of
/// GMRES: Givens rotations applied on the fly.
class HessenbergLS {
 public:
  explicit HessenbergLS(Int m)
      : m_(m), h_((m + 1) * m, 0.0), cs_(m, 0.0), sn_(m, 0.0), g_(m + 1, 0.0) {}

  double& h(Int i, Int j) { return h_[std::size_t(i) * m_ + j]; }

  void set_rhs(double beta) {
    std::fill(g_.begin(), g_.end(), 0.0);
    g_[0] = beta;
  }

  /// Applies previous rotations to column j, forms a new rotation to zero
  /// h(j+1, j), and returns |g_{j+1}| = current residual norm.
  double apply_rotations(Int j) {
    for (Int i = 0; i < j; ++i) {
      const double t = cs_[i] * h(i, j) + sn_[i] * h(i + 1, j);
      h(i + 1, j) = -sn_[i] * h(i, j) + cs_[i] * h(i + 1, j);
      h(i, j) = t;
    }
    const double a = h(j, j), b = h(j + 1, j);
    const double r = std::hypot(a, b);
    if (r == 0.0) {
      cs_[j] = 1.0;
      sn_[j] = 0.0;
    } else {
      cs_[j] = a / r;
      sn_[j] = b / r;
    }
    h(j, j) = r;
    h(j + 1, j) = 0.0;
    g_[j + 1] = -sn_[j] * g_[j];
    g_[j] = cs_[j] * g_[j];
    return std::abs(g_[j + 1]);
  }

  /// Back-substitutes for the k-dimensional coefficient vector y.
  std::vector<double> solve(Int k) const {
    std::vector<double> y(k, 0.0);
    for (Int i = k - 1; i >= 0; --i) {
      double s = g_[i];
      for (Int j = i + 1; j < k; ++j)
        s -= h_[std::size_t(i) * m_ + j] * y[j];
      y[i] = h_[std::size_t(i) * m_ + i] != 0.0
                 ? s / h_[std::size_t(i) * m_ + i]
                 : 0.0;
    }
    return y;
  }

 private:
  Int m_;
  std::vector<double> h_;
  std::vector<double> cs_, sn_, g_;
};

}  // namespace detail
}  // namespace hpamg
