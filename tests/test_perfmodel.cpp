// Machine/network model tests: monotonicity, calibration anchors from the
// paper (Table 1 bandwidths, §5.4 small-message efficiency), and the AmgX
// comparator ratios (§5.2).
#include <gtest/gtest.h>

#include "perfmodel/machine.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/project.hpp"

namespace hpamg {
namespace {

TEST(Machine, Table1Anchors) {
  EXPECT_DOUBLE_EQ(haswell_socket().stream_bw_bytes_per_s, 54e9);
  EXPECT_DOUBLE_EQ(k40c().stream_bw_bytes_per_s, 249e9);
  // The paper: "AmgX is expected to be more than 4x faster ... according to
  // the STREAM benchmark performance".
  EXPECT_GT(k40c().stream_bw_bytes_per_s / haswell_socket().stream_bw_bytes_per_s,
            4.0);
}

TEST(Machine, BandwidthBoundKernelTime) {
  MachineModel m = haswell_socket();
  WorkCounters wc;
  wc.bytes_read = 54ull * 1000 * 1000 * 1000;  // one second of STREAM
  const double t = m.seconds(wc);
  EXPECT_GT(t, 1.0);  // sparse efficiency < 1 makes it slower than STREAM
  EXPECT_LT(t, 4.0);
  // More branches -> more time; more bytes -> more time.
  WorkCounters wc2 = wc;
  wc2.branches = 1'000'000'000;
  EXPECT_GT(m.seconds(wc2), t);
  wc2 = wc;
  wc2.bytes_written = wc.bytes_read;
  EXPECT_GT(m.seconds(wc2), t);
}

TEST(Machine, FlopRooflineCanDominate) {
  MachineModel m = haswell_socket();
  WorkCounters wc;
  wc.flops = std::uint64_t(m.peak_flops);  // one second of peak flops
  wc.bytes_read = 8;
  EXPECT_NEAR(m.seconds(wc), 1.0, 0.01);
}

TEST(Network, SmallMessagesLoseEfficiency) {
  NetworkModel net = endeavor_network();
  // §5.4 anchor: <100 KB messages achieve ~1/6 of peak.
  const double t100k = net.message_seconds(100e3, true);
  const double eff_bw = 100e3 / t100k;
  EXPECT_LT(eff_bw, net.peak_bw_bytes_per_s / 4.0);
  EXPECT_GT(eff_bw, net.peak_bw_bytes_per_s / 10.0);
  // Large messages approach peak.
  const double t100m = net.message_seconds(100e6, true);
  EXPECT_GT(100e6 / t100m, 0.9 * net.peak_bw_bytes_per_s);
}

TEST(Network, PersistentSkipsSetupCost) {
  NetworkModel net = endeavor_network();
  EXPECT_LT(net.message_seconds(1000, true), net.message_seconds(1000, false));
  // For tiny messages the setup cost is a large fraction — the basis of the
  // paper's 1.7-1.8x persistent-communication halo speedup (§4.4).
  const double ratio =
      net.message_seconds(512, false) / net.message_seconds(512, true);
  EXPECT_GT(ratio, 1.3);
}

TEST(Network, AggregateSeconds) {
  NetworkModel net = endeavor_network();
  simmpi::CommStats cs;
  cs.messages_sent = 10;
  cs.bytes_sent = 10 * 50000;
  cs.request_setups = 10;
  const double t_np = net.seconds(cs);
  cs.request_setups = 0;
  cs.persistent_starts = 10;
  const double t_p = net.seconds(cs);
  EXPECT_GT(t_np, t_p);
  EXPECT_GT(t_p, 0.0);
  simmpi::CommStats empty;
  EXPECT_DOUBLE_EQ(net.seconds(empty), 0.0);
}

TEST(Network, HistogramClassifiesRendezvousWhereMeanCannot) {
  // 10 eager messages plus one 100 KB rendezvous message: the mean size
  // (~10 KB) is below the eager limit, so mean-based classification sees
  // no rendezvous at all. The per-peer size histogram restores the
  // per-message truth — exactly one rendezvous surcharge.
  NetworkModel net = endeavor_network();
  simmpi::CommStats with_hist;
  with_hist.messages_sent = 11;
  with_hist.bytes_sent = 10 * 1000 + 100000;
  with_hist.request_setups = 11;
  with_hist.per_peer.resize(1);
  simmpi::PeerTraffic& pt = with_hist.per_peer[0];
  pt.messages = 11;
  pt.bytes = with_hist.bytes_sent;
  pt.size_hist[simmpi::msg_size_bucket(1000)] += 10;
  pt.size_hist[simmpi::msg_size_bucket(100000)] += 1;

  simmpi::CommStats no_hist = with_hist;
  no_hist.per_peer.clear();  // falls back to mean-size classification

  EXPECT_NEAR(net.seconds(with_hist) - net.seconds(no_hist),
              net.rendezvous_extra_s, 1e-12);
}

TEST(Network, AllreduceScalesLogarithmically) {
  NetworkModel net = endeavor_network();
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(1), 0.0);
  EXPECT_GT(net.allreduce_seconds(128), net.allreduce_seconds(4));
  EXPECT_NEAR(net.allreduce_seconds(128) / net.allreduce_seconds(2), 7.0, 0.01);
}

TEST(Project, ComposesComputeAndNetwork) {
  NetworkModel net = endeavor_network();
  simmpi::CommStats cs;
  cs.messages_sent = 5;
  cs.bytes_sent = 5000;
  cs.request_setups = 5;
  const double t = projected_phase_seconds(0.01, cs, net);
  EXPECT_GT(t, 0.01);
  EXPECT_LT(t, 0.02);
}

TEST(Project, AmgxComparatorRatios) {
  // §5.2: AmgX setup ~1.1x faster, solve 1.6x slower per iteration with
  // 1.3x more iterations.
  AmgxModel amgx;
  auto [setup, solve] = amgx.project(1.0, 1.0);
  EXPECT_NEAR(setup, 1.0 / 1.1, 1e-9);
  EXPECT_NEAR(solve, 1.6 * 1.3, 1e-9);
}

}  // namespace
}  // namespace hpamg
