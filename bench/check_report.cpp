// Schema checker for the BENCH_*.json files the benches emit with --json.
//
// Usage: check_report [--require-solve] [--require-metrics] file.json ...
//
// Validates each file against the envelope + SolveReport schema in
// support/report.hpp (see validate_bench_report_json). With
// --require-solve, at least one run per file must carry a full solver
// report whose convergence block shows >= 1 iteration; with
// --require-metrics, each file must carry the envelope "metrics" block
// (registry snapshot + environment) — the modes CI uses for the solver
// benches. Exits non-zero on the first invalid file.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "support/report.hpp"

int main(int argc, char** argv) {
  bool require_solve = false;
  bool require_metrics = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-solve") == 0) {
      require_solve = true;
    } else if (std::strcmp(argv[i], "--require-metrics") == 0) {
      require_metrics = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: check_report [--require-solve] [--require-metrics] "
                 "file.json ...\n");
    return 2;
  }

  int bad = 0;
  for (const char* path : files) {
    std::string content;
    {
      std::FILE* f = std::fopen(path, "rb");
      if (!f) {
        std::fprintf(stderr, "%s: cannot open\n", path);
        ++bad;
        continue;
      }
      char buf[65536];
      std::size_t got;
      while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, got);
      std::fclose(f);
    }
    const std::string err = hpamg::validate_bench_report_json(
        content, require_solve, require_metrics);
    if (err.empty()) {
      std::printf("%s: ok\n", path);
    } else {
      std::fprintf(stderr, "%s: %s\n", path, err.c_str());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
