// Sparse matrix-vector products and the interpolation/restriction kernels.
//
// The optimized solve phase (SC'15 §3.2, §3.3) changes three things about
// these kernels relative to baseline HYPRE:
//  1. restriction reuses R = P^T kept from setup instead of transposing P
//     on every call (3.7x average SpMV-phase speedup in Fig 5);
//  2. interpolation/restriction skip the identity block of the CF-permuted
//     P = [I; P_F], touching only the (n_l - n_{l+1}) x n_{l+1} block;
//  3. the residual SpMV is fused with the inner product used for the
//     residual norm, saving one write+read pass over the residual vector.
// Aliasing contract (enforced under HPAMG_CHECK via
// check::distinct_buffers): every kernel here writes its output row-by-row
// while reading the operand vector at arbitrary column indices, so the
// output must never alias the multiplied vector (y != x, r != x, x != e,
// rc != r). The residual kernels MAY take r aliasing b: row i reads b[i]
// before writing r[i] and rows are disjoint, so in-place b <- b - A x is
// well-defined and allowed.
#pragma once

#include "amg/multivector.hpp"
#include "matrix/csr.hpp"
#include "matrix/vector_ops.hpp"
#include "support/counters.hpp"

namespace hpamg {

/// y = A * x
void spmv(const CSRMatrix& A, const Vector& x, Vector& y,
          WorkCounters* wc = nullptr);

/// y = A^T * x computed from A directly (no transpose materialized) via a
/// serial scatter — deliberately mirrors the baseline cost of transposing
/// on the fly. Prefer keeping R = P^T (see hierarchy.hpp).
void spmv_transpose(const CSRMatrix& A, const Vector& x, Vector& y,
                    WorkCounters* wc = nullptr);

/// r = b - A * x
void spmv_residual(const CSRMatrix& A, const Vector& x, const Vector& b,
                   Vector& r, WorkCounters* wc = nullptr);

/// r = b - A * x, returning <r, r> computed in the same pass (§3.3 fusion).
double spmv_residual_norm2sq_fused(const CSRMatrix& A, const Vector& x,
                                   const Vector& b, Vector& r,
                                   WorkCounters* wc = nullptr);

/// x += P * e for the CF-permuted P = [I; P_F]: x[i] += e[i] for coarse
/// rows, x[nc + i] += (Pf * e)[i] for fine rows. Touches only Pf.
void interp_add_identity_block(const CSRMatrix& Pf, const Vector& e,
                               Vector& x, Int nc, WorkCounters* wc = nullptr);

/// rc = R * r for R = [I | PfT]: rc[j] = r[j] + (PfT * r[nc:])[j].
void restrict_identity_block(const CSRMatrix& PfT, const Vector& r,
                             Vector& rc, Int nc, WorkCounters* wc = nullptr);

// ------------------------------------------------------------------------
// Batched (multi-RHS) kernels: one pass over A applies every column of a
// row-major multivector. Per column, the arithmetic order is identical to
// the scalar kernel above, so column j of the result is bitwise-equal to
// the scalar kernel applied to column j.
// ------------------------------------------------------------------------

/// Y = A * X for all columns.
void spmv_multi(const CSRMatrix& A, const MultiVector& X, MultiVector& Y,
                WorkCounters* wc = nullptr);

/// R = B - A * X for all columns.
void spmv_residual_multi(const CSRMatrix& A, const MultiVector& X,
                         const MultiVector& B, MultiVector& R,
                         WorkCounters* wc = nullptr);

/// R = B - A * X, returning per-column <r_j, r_j> computed in the same
/// pass (the §3.3 fusion, batched). `norms2sq` is resized to X.m.
void spmv_residual_norms2sq_fused_multi(const CSRMatrix& A,
                                        const MultiVector& X,
                                        const MultiVector& B, MultiVector& R,
                                        std::vector<double>& norms2sq,
                                        WorkCounters* wc = nullptr);

/// X += P * E per column for the CF-permuted P = [I; P_F].
void interp_add_identity_block_multi(const CSRMatrix& Pf,
                                     const MultiVector& E, MultiVector& X,
                                     Int nc, WorkCounters* wc = nullptr);

/// Rc = R * Rfine per column for R = [I | PfT].
void restrict_identity_block_multi(const CSRMatrix& PfT, const MultiVector& r,
                                   MultiVector& rc, Int nc,
                                   WorkCounters* wc = nullptr);

}  // namespace hpamg
