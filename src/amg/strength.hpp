// Strength-of-connection matrix (classical AMG).
//
// Point j strongly influences point i iff
//     -a_ij >= alpha * max_{k != i} (-a_ik)
// (signs flipped when the diagonal is negative). Rows whose row sum is
// large relative to the diagonal (|sum_j a_ij| > max_row_sum * |a_ii|) are
// treated as having no strong connections, matching HYPRE's max_row_sum
// parameter (Table 3 uses 0.8).
//
// The optimized variant assembles the final CSR arrays with a parallel
// prefix sum over per-row counts (SC'15 §3.3 reports 6.1x on this step);
// the baseline performs the classic sequential append.
#pragma once

#include "matrix/csr.hpp"
#include "support/counters.hpp"

namespace hpamg {

struct StrengthOptions {
  double threshold = 0.25;   ///< alpha (Table 3: 0.25 or 0.6)
  double max_row_sum = 0.8;  ///< rows above this get no strong connections
};

/// Pattern-only CSR (values all 1.0), diagonal excluded. S(i, j) present
/// iff j strongly influences i.
CSRMatrix strength_matrix(const CSRMatrix& A, const StrengthOptions& opt,
                          WorkCounters* wc = nullptr);

/// Sequential-assembly baseline of the same computation.
CSRMatrix strength_matrix_serial(const CSRMatrix& A,
                                 const StrengthOptions& opt,
                                 WorkCounters* wc = nullptr);

}  // namespace hpamg
