// SpGEMM engine tests: one-pass vs two-pass vs dense reference, symbolic
// reuse, add/block helpers, and the four RAP variants (§3.1.1).
#include <gtest/gtest.h>

#include "matrix/permute.hpp"
#include "matrix/transpose.hpp"
#include "spgemm/rap.hpp"
#include "spgemm/spa.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

using test::dense_ref_multiply;
using test::random_sparse;
using test::random_spd;

struct SpgemmCase {
  Int m, k, n, nnz;
  std::uint64_t seed;
};

class SpgemmSweep : public ::testing::TestWithParam<SpgemmCase> {};

TEST_P(SpgemmSweep, AllVariantsMatchDenseReference) {
  const auto c = GetParam();
  CSRMatrix A = random_sparse(c.m, c.k, c.nnz, c.seed);
  CSRMatrix B = random_sparse(c.k, c.n, c.nnz, c.seed + 1);
  CSRMatrix ref = dense_ref_multiply(A, B);

  CSRMatrix C1 = spgemm_twopass(A, B);
  CSRMatrix C2 = spgemm_onepass(A, B);
  SpgemmOptions no_prefetch;
  no_prefetch.prefetch = false;
  CSRMatrix C3 = spgemm_onepass(A, B, no_prefetch);
  C1.validate();
  C2.validate();
  EXPECT_TRUE(csr_same_operator(ref, C1));
  EXPECT_TRUE(csr_same_operator(ref, C2));
  EXPECT_TRUE(csr_same_operator(ref, C3));
  // Two-pass and one-pass produce identical layouts (same traversal order).
  EXPECT_TRUE(csr_approx_equal(C1, C2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpgemmSweep,
    ::testing::Values(SpgemmCase{1, 1, 1, 1, 0}, SpgemmCase{10, 10, 10, 3, 1},
                      SpgemmCase{50, 30, 40, 5, 2},
                      SpgemmCase{100, 100, 100, 2, 3},
                      SpgemmCase{64, 128, 32, 8, 4},
                      SpgemmCase{200, 200, 200, 6, 5}));

TEST(Spgemm, NumericOnlyReusesPattern) {
  CSRMatrix A = random_sparse(60, 60, 4, 7);
  CSRMatrix B = random_sparse(60, 60, 4, 8);
  CSRMatrix C = spgemm_onepass(A, B);
  CSRMatrix C2 = C;
  // Perturb values, recompute numerically only.
  for (auto& v : C2.values) v = -1e9;
  WorkCounters wc;
  spgemm_numeric_only(A, B, C2, &wc);
  EXPECT_TRUE(csr_approx_equal(C, C2));
  EXPECT_EQ(wc.branches, 0u);  // the point: no insertion branches
}

TEST(Spgemm, CountsBranchesAndFlops) {
  CSRMatrix A = random_sparse(40, 40, 4, 9);
  CSRMatrix B = random_sparse(40, 40, 4, 10);
  WorkCounters one, two;
  spgemm_onepass(A, B, {}, &one);
  spgemm_twopass(A, B, &two);
  EXPECT_GT(one.flops, 0u);
  EXPECT_EQ(one.flops, two.flops);
  // The two-pass variant walks the inputs twice: more branch work.
  EXPECT_GT(two.branches, one.branches);
}

TEST(Spgemm, OnePassReadsLessWhenOutputCompresses) {
  // §3.1.1: one-pass trades a second (strided) read of B for a contiguous
  // copy of C — a win exactly when the product compresses, as AMG's
  // Galerkin products do. Band matrix x aggregation interpolation: each
  // output row merges many overlapping input rows.
  std::vector<Triplet> ta, tp;
  const Int n = 800, nc = 200;
  for (Int i = 0; i < n; ++i)
    for (Int d = -6; d <= 6; ++d)
      if (i + d >= 0 && i + d < n) ta.push_back({i, i + d, 1.0});
  CSRMatrix A = CSRMatrix::from_triplets(n, n, std::move(ta));
  for (Int i = 0; i < n; ++i) tp.push_back({i, i / 4, 1.0});
  CSRMatrix P = CSRMatrix::from_triplets(n, nc, std::move(tp));
  WorkCounters one, two;
  spgemm_onepass(A, P, {}, &one);
  spgemm_twopass(A, P, &two);
  EXPECT_LT(one.bytes_read, two.bytes_read);
}

TEST(Spgemm, EmptyMatrices) {
  CSRMatrix A(5, 4), B(4, 3);
  CSRMatrix C = spgemm_onepass(A, B);
  EXPECT_EQ(C.nrows, 5);
  EXPECT_EQ(C.ncols, 3);
  EXPECT_EQ(C.nnz(), 0);
}

TEST(Spgemm, ShapeMismatchThrows) {
  CSRMatrix A(5, 4), B(5, 3);
  EXPECT_THROW(spgemm_onepass(A, B), std::invalid_argument);
}


TEST(SparseAccumulatorApi, AccumulatesAndAppends) {
  // The reusable SPA abstraction (spa.hpp) mirrors the inline marker idiom
  // the kernels use; exercise it directly.
  SparseAccumulator spa(10);
  std::vector<Int> cols;
  std::vector<double> vals;
  spa.begin_row(0);
  spa.add(3, 1.0, cols, vals);
  spa.add(7, 2.0, cols, vals);
  spa.add(3, 0.5, cols, vals);  // accumulate, no new entry
  EXPECT_EQ(spa.row_nnz(), 2);
  EXPECT_EQ(cols, (std::vector<Int>{3, 7}));
  EXPECT_DOUBLE_EQ(vals[0], 1.5);
  // Second row reuses the marker without clearing it.
  spa.begin_row(spa.next_position());
  spa.add(7, 9.0, cols, vals);
  EXPECT_EQ(spa.row_nnz(), 1);
  EXPECT_DOUBLE_EQ(vals[2], 9.0);
}

TEST(CsrAdd, MatchesDense) {
  CSRMatrix A = random_sparse(30, 20, 4, 11);
  CSRMatrix B = random_sparse(30, 20, 3, 12);
  CSRMatrix C = csr_add(A, B);
  C.validate();
  DenseMatrix ref = DenseMatrix::from_csr(A);
  DenseMatrix db = DenseMatrix::from_csr(B);
  for (Int i = 0; i < 30; ++i)
    for (Int j = 0; j < 20; ++j) ref(i, j) += db(i, j);
  EXPECT_TRUE(csr_same_operator(C, ref.to_csr(0.0)));
}

TEST(CsrBlock, ExtractsSubmatrix) {
  CSRMatrix A = random_sparse(20, 20, 5, 13);
  CSRMatrix B = csr_block(A, 5, 15, 3, 18);
  B.validate();
  EXPECT_EQ(B.nrows, 10);
  EXPECT_EQ(B.ncols, 15);
  for (Int i = 0; i < 10; ++i)
    for (Int j = 0; j < 15; ++j)
      EXPECT_DOUBLE_EQ(B.at(i, j), A.at(i + 5, j + 3));
}

TEST(CsrBlock, BadRangesThrow) {
  CSRMatrix A = random_sparse(10, 10, 2, 14);
  EXPECT_THROW(csr_block(A, 5, 3, 0, 10), std::invalid_argument);
  EXPECT_THROW(csr_block(A, 0, 11, 0, 10), std::invalid_argument);
}

// ------------------------------------------------------------------ rap ----

class RapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RapSweep, AllVariantsComputeTheSameOperator) {
  const std::uint64_t seed = GetParam();
  CSRMatrix A = random_spd(80, 4, seed);
  // A plausible interpolation shape: 80 fine rows, 30 coarse columns.
  CSRMatrix P = random_sparse(80, 30, 3, seed + 100);
  CSRMatrix R = transpose_parallel(P);
  CSRMatrix ref = dense_ref_multiply(dense_ref_multiply(R, A), P);

  EXPECT_TRUE(csr_same_operator(ref, rap_unfused(R, A, P, true)));
  EXPECT_TRUE(csr_same_operator(ref, rap_unfused(R, A, P, false)));
  EXPECT_TRUE(csr_same_operator(ref, rap_fused_hypre(R, A, P)));
  EXPECT_TRUE(csr_same_operator(ref, rap_fused_rowwise(R, A, P)));
  SpgemmOptions nopf;
  nopf.prefetch = false;
  EXPECT_TRUE(csr_same_operator(ref, rap_fused_rowwise(R, A, P, nopf)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RapSweep, ::testing::Range<std::uint64_t>(0, 6));

TEST(Rap, HypreFusionDoesRedundantFlops) {
  // The §3.1.1 claim: Fig 1(b) performs more flops than Fig 1(a) because it
  // replays row P_k once per (i, j, k) term instead of once per surviving
  // entry of B_i. The redundancy appears when restriction rows overlap in A
  // — a band operator with a multi-entry P, as real AMG transfers are (the
  // paper measures 1.73x on its suite).
  std::vector<Triplet> ta, tp;
  const Int n = 900, nc = 300;
  for (Int i = 0; i < n; ++i)
    for (Int d = -4; d <= 4; ++d)
      if (i + d >= 0 && i + d < n) ta.push_back({i, i + d, 1.0 + 0.1 * d});
  CSRMatrix A = CSRMatrix::from_triplets(n, n, std::move(ta));
  for (Int i = 0; i < n; ++i) {
    const Int c = std::min(i / 3, nc - 1);
    tp.push_back({i, c, 0.5});
    if (c + 1 < nc) tp.push_back({i, c + 1, 0.25});
    if (c > 0) tp.push_back({i, c - 1, 0.25});
  }
  CSRMatrix P = CSRMatrix::from_triplets(n, nc, std::move(tp));
  CSRMatrix R = transpose_parallel(P);
  WorkCounters hypre, rowwise;
  CSRMatrix C1 = rap_fused_hypre(R, A, P, &hypre);
  CSRMatrix C2 = rap_fused_rowwise(R, A, P, {}, &rowwise);
  EXPECT_TRUE(csr_same_operator(C1, C2, 1e-9));
  EXPECT_GT(double(hypre.flops) / double(rowwise.flops), 1.3);
}

TEST(Rap, CfBlockMatchesFullTripleProduct) {
  // Build a real CF-shaped problem: P = [I; Pf] after reordering.
  const Int n = 60, nc = 24;
  CSRMatrix Aperm = random_spd(n, 4, 41);
  CSRMatrix Pf = random_sparse(n - nc, nc, 3, 42);
  // Full P with identity block on top.
  std::vector<Triplet> trip;
  for (Int i = 0; i < nc; ++i) trip.push_back({i, i, 1.0});
  for (Int i = 0; i < Pf.nrows; ++i)
    for (Int k = Pf.rowptr[i]; k < Pf.rowptr[i + 1]; ++k)
      trip.push_back({nc + i, Pf.colidx[k], Pf.values[k]});
  CSRMatrix P = CSRMatrix::from_triplets(n, nc, std::move(trip));
  CSRMatrix R = transpose_parallel(P);
  CSRMatrix ref = rap_fused_rowwise(R, Aperm, P);

  CSRMatrix PfT = transpose_parallel(Pf);
  CSRMatrix C = rap_cf_block(Aperm, Pf, PfT, nc);
  C.validate();
  EXPECT_TRUE(csr_same_operator(ref, C));
}

TEST(Rap, CfBlockDegenerateAllCoarse) {
  // nc == n: P == I, RAP == A.
  CSRMatrix A = random_spd(20, 3, 51);
  CSRMatrix Pf(0, 20);
  CSRMatrix PfT(20, 0);
  CSRMatrix C = rap_cf_block(A, Pf, PfT, 20);
  A.sort_rows();
  C.sort_rows();
  EXPECT_TRUE(csr_same_operator(A, C));
}

TEST(Rap, CfBlockSavesWorkOnHighCoarseningRatio) {
  // §3.1.1: the identity-block form only triple-multiplies the F x F block;
  // it must read fewer bytes than the full fused product.
  CSRMatrix Aperm = random_spd(400, 5, 61);
  const Int nc = 200;
  CSRMatrix Pf = random_sparse(200, nc, 3, 62);
  std::vector<Triplet> trip;
  for (Int i = 0; i < nc; ++i) trip.push_back({i, i, 1.0});
  for (Int i = 0; i < Pf.nrows; ++i)
    for (Int k = Pf.rowptr[i]; k < Pf.rowptr[i + 1]; ++k)
      trip.push_back({nc + i, Pf.colidx[k], Pf.values[k]});
  CSRMatrix P = CSRMatrix::from_triplets(400, nc, std::move(trip));
  CSRMatrix R = transpose_parallel(P);
  CSRMatrix PfT = transpose_parallel(Pf);
  WorkCounters full, block;
  rap_fused_rowwise(R, Aperm, P, {}, &full);
  rap_cf_block(Aperm, Pf, PfT, nc, {}, &block);
  EXPECT_LT(block.flops, full.flops);
}

}  // namespace
}  // namespace hpamg
