// 3-D Poisson with AMG-preconditioned CG, comparing smoothers and
// reporting the per-phase breakdown — the workflow of a typical
// finite-difference application adopting the library.
//
//   $ ./poisson3d [n] [--aniso eps]
#include <cstdio>
#include <cstring>

#include "amg/solver.hpp"
#include "gen/stencil.hpp"
#include "krylov/krylov.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace hpamg;
  Cli cli(argc, argv);
  const Int n = cli.positional().empty()
                    ? 28
                    : Int(std::atoi(cli.positional()[0].c_str()));
  const double eps = cli.get_double("aniso", 1.0);

  CSRMatrix A = lap3d_7pt(n, n, n, 1.0, eps);
  std::printf("3-D Poisson, %d^3 = %d unknowns, z-anisotropy %.1f\n", n,
              A.nrows, eps);
  Vector b(A.nrows, 1.0);

  for (auto [name, smoother] :
       {std::pair{"hybrid-GS", SmootherKind::kHybridGS},
        std::pair{"Jacobi", SmootherKind::kJacobi}}) {
    AMGOptions opts;
    opts.smoother = smoother;
    Timer t;
    AMGSolver amg(A, opts);
    const double setup_s = t.seconds();

    Vector x(A.nrows, 0.0);
    KrylovOptions ko;
    ko.rtol = 1e-8;
    t.reset();
    KrylovResult r = pcg(A, b, x, ko, [&](const Vector& rr, Vector& z) {
      amg.precondition(rr, z);
    });
    const double solve_s = t.seconds();

    std::printf("  %-10s setup %.3fs  solve %.3fs  iters %d  opcx %.2f"
                "  converged=%s\n",
                name, setup_s, solve_s, r.iterations,
                amg.operator_complexity(), r.converged ? "yes" : "no");
  }

  // Per-kernel setup breakdown (the Fig 5 categories).
  AMGOptions opts;
  AMGSolver amg(A, opts);
  std::printf("setup breakdown:");
  for (auto& [phase, sec] : amg.setup_times().all())
    std::printf("  %s=%.3fs", phase.c_str(), sec);
  std::printf("\n");
  return 0;
}
