#include "amg/telemetry.hpp"

#include <cmath>

namespace hpamg {

void CycleTelemetryHook::begin_cycle(std::size_t nlevels) {
  level_seconds.assign(nlevels, 0.0);
  presmooth_norm2 = -1.0;
}

void CycleTelemetryHook::add(std::size_t l, double seconds) {
  if (l < level_seconds.size()) level_seconds[l] += seconds;
}

IterationReportEntry make_iteration_entry(Int iteration, double relres,
                                          double prev_relres, double seconds,
                                          double normb,
                                          const CycleTelemetryHook* hook) {
  IterationReportEntry e;
  e.iteration = iteration;
  e.relres = relres;
  e.conv_factor = prev_relres > 0.0 ? relres / prev_relres : 0.0;
  e.seconds = seconds;
  if (hook != nullptr) {
    e.level_seconds = hook->level_seconds;
    if (hook->presmooth_norm2 >= 0.0 && normb > 0.0) {
      e.presmooth_relres = std::sqrt(hook->presmooth_norm2) / normb;
      // How much of this cycle's contraction the fine pre-smoother alone
      // delivered (1.0 = smoother did nothing, smaller = more).
      e.smoother_contraction = prev_relres > 0.0
                                   ? e.presmooth_relres / prev_relres
                                   : -1.0;
    }
  }
  return e;
}

}  // namespace hpamg
