#include "amg/solver.hpp"

#include <cmath>

#include <string>

#include "amg/spmv.hpp"
#include "amg/telemetry.hpp"
#include "matrix/transpose.hpp"
#include "perfmodel/attrib.hpp"
#include "spgemm/rap.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/live.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Validation happens here (not in the member-init list) so the ctor
/// rejects bad input before any setup work runs.
const CSRMatrix& validated(const CSRMatrix& A) {
  A.validate_system_matrix("AMGSolver");
  return A;
}

/// Detaches the telemetry hook from the hierarchy on every exit path (the
/// hook lives on the solve's stack frame).
struct TelemetryLoan {
  Hierarchy& h;
  explicit TelemetryLoan(Hierarchy& hier, CycleTelemetryHook* hook)
      : h(hier) {
    h.telemetry = hook;
  }
  ~TelemetryLoan() { h.telemetry = nullptr; }
  TelemetryLoan(const TelemetryLoan&) = delete;
  TelemetryLoan& operator=(const TelemetryLoan&) = delete;
};

}  // namespace

AMGSolver::AMGSolver(const CSRMatrix& A, const AMGOptions& opts)
    : h_(build_hierarchy(validated(A), opts)) {}

SolveResult AMGSolver::solve(const Vector& b, Vector& x, double rtol,
                             Int max_iterations, const Deadline& deadline) {
  TRACE_SPAN("amg.solve", "phase");
  live::ActivityScope live_scope;
  SolveResult res;
  Level& L0 = h_.levels[0];
  require(Int(b.size()) == L0.n && Int(x.size()) == L0.n,
          "AMGSolver::solve: vector size mismatch");
  // Solver-entry invariants: the hierarchy may have been mutated since
  // setup (refresh_values, external tampering in tests); a check build
  // re-audits it before trusting the level operators.
  HPAMG_CHECK_INVARIANT(check::Depth::kCheap,
                        check::csr_well_formed(L0.A, "AMGSolver::solve A0"));
  HPAMG_CHECK_INVARIANT(check::Depth::kFull, check_hierarchy(h_));
  const bool optimized = h_.opts.variant == Variant::kOptimized;
  const bool permuted = optimized && !L0.perm.perm.empty();
  PhaseTimes& pt = res.solve_times;
  WorkCounters* wc = &res.solve_work;

  // Keep working vectors permuted across the whole solve; gather once.
  Vector bw(L0.n), xw(L0.n), r(L0.n);
  {
    Timer t;
    if (permuted) {
      const std::vector<Int>& perm = L0.perm.perm;
      parallel_for(0, L0.n, [&](Int i) {
        bw[i] = b[perm[i]];
        xw[i] = x[perm[i]];
      });
    } else {
      copy(b, bw);
      copy(x, xw);
    }
    pt.add("Solve_etc", t.seconds());
  }

  Timer t_blas;
  double normb = norm2(bw, wc);
  pt.add("BLAS1", t_blas.seconds());
  if (normb == 0.0) normb = 1.0;

  double relres = 0.0;
  {
    // Initial residual (x may be a nonzero initial guess).
    Timer t;
    if (optimized) {
      relres = std::sqrt(spmv_residual_norm2sq_fused(L0.A, xw, bw, r, wc)) /
               normb;
      pt.add("SpMV", t.seconds());
    } else {
      spmv_residual(L0.A, xw, bw, r, wc);
      pt.add("SpMV", t.seconds());
      Timer t2;
      relres = norm2(r, wc) / normb;
      pt.add("BLAS1", t2.seconds());
    }
  }
  if (relres < rtol) {
    res.converged = true;
    res.status = Status::kOk;
    res.final_relres = relres;
    return res;
  }

  // Last good iterate for scrub-and-restart recovery: refreshed on every
  // improving iteration (a plain copy — cheap next to a V-cycle and not
  // counted as solve work). `x_best_relres` mirrors the snapshot.
  ConvergenceMonitor monitor;
  Vector x_best(xw);
  double x_best_relres = relres;
  Int x_best_iteration = 0;

  // Per-iteration telemetry rides along only when the metrics registry is
  // on (--json bench runs); the hook is loaned to the hierarchy so the
  // cycle can deposit per-level times without a signature change.
  const bool telemetry_on = metrics::enabled();
  CycleTelemetryHook tel;
  tel.measure_smoother = telemetry_on;
  TelemetryLoan loan(h_, telemetry_on ? &tel : nullptr);
  double prev_relres = relres;
  Timer t_iter;

  for (Int it = 1; it <= max_iterations; ++it) {
    // Deadline check once per V-cycle, at the same cadence as the
    // heartbeat beat site below: an expired budget unwinds cleanly with
    // the partial history/iterate instead of running to max_iterations.
    if (deadline.expired()) {
      res.status = Status::kDeadlineExceeded;
      res.events.push_back(
          "deadline expired before iteration " + std::to_string(it) +
          " (partial result: relres " + std::to_string(relres) + " after " +
          std::to_string(res.iterations) + " iterations)");
      break;
    }
    if (fault::enabled())
      fault::maybe_poison("amg.solve.poison", xw.data(), xw.size());
    if (telemetry_on) {
      tel.begin_cycle(h_.levels.size());
      t_iter.reset();
    }
    vcycle_workspace(h_, bw, xw, &pt, wc);
    Timer t;
    if (optimized) {
      // Fused residual + norm (§3.3): one pass instead of SpMV then dot.
      relres = std::sqrt(spmv_residual_norm2sq_fused(L0.A, xw, bw, r, wc)) /
               normb;
      pt.add("SpMV", t.seconds());
    } else {
      spmv_residual(L0.A, xw, bw, r, wc);
      pt.add("SpMV", t.seconds());
      Timer t2;
      relres = norm2(r, wc) / normb;
      pt.add("BLAS1", t2.seconds());
    }
    res.history.push_back(relres);
    res.iterations = it;
    live::beat_iteration(it, relres);
    if (telemetry_on) {
      res.telemetry.push_back(make_iteration_entry(
          it, relres, prev_relres, t_iter.seconds(), normb, &tel));
    }
    prev_relres = relres;
    HPAMG_LOG_DEBUG("amg it %d relres %.3e", int(it), relres);
    if (relres < rtol) {
      res.converged = true;
      res.status = res.recoveries > 0 ? Status::kRecovered : Status::kOk;
      break;
    }
    const Status verdict = monitor.observe(it, relres);
    if (verdict == Status::kOk) {
      if (relres < x_best_relres) {
        copy(xw, x_best);
        x_best_relres = relres;
        x_best_iteration = it;
      }
      continue;
    }
    // Non-finite or diverging residual: scrub the iterate (restore the
    // last good snapshot) and resume, up to the recovery budget. Transient
    // corruption is absorbed; a persistent failure exhausts the budget and
    // surfaces as the terminal status.
    if (verdict == Status::kNonFinite && res.nonfinite_iteration < 0)
      res.nonfinite_iteration = it;
    if (res.recoveries < kMaxRecoveries) {
      ++res.recoveries;
      copy(x_best, xw);
      relres = x_best_relres;
      monitor.note_recovery();
      std::string ev = "recovered at iteration " + std::to_string(it) + " (" +
                       status_name(verdict) + "): restored iterate from " +
                       "iteration " + std::to_string(x_best_iteration);
      HPAMG_LOG_WARN("amg %s", ev.c_str());
      trace::instant("amg.recovery", "fault");
      res.events.push_back(std::move(ev));
      continue;
    }
    res.status = verdict;
    res.events.push_back(std::string("recovery budget exhausted; stopped (") +
                         status_name(verdict) + ") at iteration " +
                         std::to_string(it));
    break;
  }
  if (!res.converged && res.status == Status::kMaxIterations &&
      monitor.stagnated())
    res.status = Status::kStagnated;
  res.final_relres = relres;

  Timer t;
  if (permuted) {
    const std::vector<Int>& perm = L0.perm.perm;
    parallel_for(0, L0.n, [&](Int i) { x[perm[i]] = xw[i]; });
  } else {
    copy(xw, x);
  }
  pt.add("Solve_etc", t.seconds());
  return res;
}

MultiSolveResult AMGSolver::solve_multi(const MultiVector& B, MultiVector& X,
                                        double rtol, Int max_iterations,
                                        const Deadline& deadline) {
  TRACE_SPAN("amg.solve_multi", "phase");
  live::ActivityScope live_scope;
  MultiSolveResult res;
  Level& L0 = h_.levels[0];
  const Int m = B.m;
  require(B.n == L0.n && X.n == L0.n && X.m == m,
          "AMGSolver::solve_multi: shape mismatch");
  require(m > 0, "AMGSolver::solve_multi: no right-hand sides");
  HPAMG_CHECK_INVARIANT(
      check::Depth::kCheap,
      check::csr_well_formed(L0.A, "AMGSolver::solve_multi A0"));
  HPAMG_CHECK_INVARIANT(check::Depth::kFull, check_hierarchy(h_));
  const bool optimized = h_.opts.variant == Variant::kOptimized;
  const bool permuted = optimized && !L0.perm.perm.empty();
  PhaseTimes& pt = res.solve_times;
  WorkCounters* wc = &res.solve_work;
  ensure_multi_workspace(h_, m);

  // Keep working multivectors permuted across the whole solve, exactly as
  // the scalar solve does with its bw/xw pair.
  MultiVector BW(L0.n, m), XW(L0.n, m), R(L0.n, m);
  {
    Timer t;
    if (permuted) {
      const std::vector<Int>& perm = L0.perm.perm;
      parallel_for(0, L0.n, [&](Int i) {
        const std::size_t src = std::size_t(perm[i]) * m;
        const std::size_t dst = std::size_t(i) * m;
        for (Int j = 0; j < m; ++j) {
          BW.data[dst + j] = B.data[src + j];
          XW.data[dst + j] = X.data[src + j];
        }
      });
    } else {
      copy(B, BW);
      copy(X, XW);
    }
    pt.add("Solve_etc", t.seconds());
  }

  Timer t_blas;
  std::vector<double> normb = norm2sq_columns(BW, wc);
  pt.add("BLAS1", t_blas.seconds());
  for (double& nb : normb) nb = nb > 0.0 ? std::sqrt(nb) : 1.0;

  std::vector<double> norms2sq;
  std::vector<double> relres(std::size_t(m), 0.0);
  res.col_iterations.assign(std::size_t(m), -1);
  auto update_relres = [&](Int it) {
    bool all_done = true;
    bool finite = true;
    for (Int j = 0; j < m; ++j) {
      relres[std::size_t(j)] =
          std::sqrt(norms2sq[std::size_t(j)]) / normb[std::size_t(j)];
      if (!std::isfinite(relres[std::size_t(j)])) finite = false;
      if (relres[std::size_t(j)] < rtol) {
        if (res.col_iterations[std::size_t(j)] < 0)
          res.col_iterations[std::size_t(j)] = it;
      } else {
        all_done = false;
      }
    }
    if (!finite && res.nonfinite_iteration < 0) res.nonfinite_iteration = it;
    return finite ? (all_done ? Status::kOk : Status::kMaxIterations)
                  : Status::kNonFinite;
  };

  {
    Timer t;
    spmv_residual_norms2sq_fused_multi(L0.A, XW, BW, R, norms2sq, wc);
    pt.add("SpMV", t.seconds());
  }
  Status st = update_relres(0);
  if (st == Status::kOk) {
    res.converged = true;
    res.status = Status::kOk;
    res.final_relres = relres;
    return res;
  }

  for (Int it = 1; it <= max_iterations && st != Status::kNonFinite; ++it) {
    // Same per-V-cycle deadline contract as the scalar solve: stop with
    // whatever the columns have converged to so far.
    if (deadline.expired()) {
      res.status = Status::kDeadlineExceeded;
      res.events.push_back("deadline expired before iteration " +
                           std::to_string(it) + " (partial result after " +
                           std::to_string(res.iterations) + " iterations)");
      res.final_relres = relres;
      break;
    }
    vcycle_workspace_multi(h_, BW, XW, &pt, wc);
    Timer t;
    spmv_residual_norms2sq_fused_multi(L0.A, XW, BW, R, norms2sq, wc);
    pt.add("SpMV", t.seconds());
    res.iterations = it;
    st = update_relres(it);
    if (live::enabled()) {
      // Heartbeat carries the worst column's residual — the one that
      // decides when this multi-RHS solve finishes.
      double worst = 0.0;
      for (double rr : relres)
        if (rr > worst) worst = rr;
      live::beat_iteration(it, worst);
    }
    if (st == Status::kOk) {
      res.converged = true;
      res.status = Status::kOk;
      break;
    }
  }
  if (st == Status::kNonFinite) res.status = Status::kNonFinite;
  res.final_relres = relres;

  Timer t;
  if (permuted) {
    const std::vector<Int>& perm = L0.perm.perm;
    parallel_for(0, L0.n, [&](Int i) {
      const std::size_t src = std::size_t(i) * m;
      const std::size_t dst = std::size_t(perm[i]) * m;
      for (Int j = 0; j < m; ++j) X.data[dst + j] = XW.data[src + j];
    });
  } else {
    copy(XW, X);
  }
  pt.add("Solve_etc", t.seconds());
  return res;
}

SolveReport AMGSolver::report(const SolveResult* sr) const {
  SolveReport rep;
  rep.solver = "amg";
  rep.variant =
      h_.opts.variant == Variant::kOptimized ? "optimized" : "baseline";
  rep.num_levels = h_.num_levels();
  rep.operator_complexity = h_.operator_complexity();
  rep.grid_complexity = h_.grid_complexity();
  rep.levels.reserve(h_.stats.size());
  const std::vector<LevelMemory> mem = h_.memory_by_level();
  for (std::size_t l = 0; l < h_.stats.size(); ++l) {
    const LevelStats& s = h_.stats[l];
    LevelReportEntry e;
    e.level = Int(l);
    e.rows = Long(s.rows);
    e.nnz = s.nnz;
    e.nnz_per_row = s.rows > 0 ? double(s.nnz) / double(s.rows) : 0.0;
    e.coarse = Long(s.coarse);
    e.interp_nnz = s.interp_nnz;
    if (l < mem.size()) {
      e.operator_bytes = mem[l].operator_bytes;
      e.interp_bytes = mem[l].interp_bytes;
      e.smoother_bytes = mem[l].smoother_bytes;
      e.workspace_bytes = mem[l].workspace_bytes;
    }
    rep.levels.push_back(e);
  }
  rep.has_memory = true;
  for (const LevelMemory& m : mem) {
    rep.memory.setup_bytes +=
        m.operator_bytes + m.interp_bytes + m.smoother_bytes;
    rep.memory.solve_bytes += m.workspace_bytes;
  }
  rep.memory.solve_bytes += rep.memory.setup_bytes;
  rep.memory.peak_rss_bytes = metrics::peak_rss_bytes();
  rep.setup_phases = h_.setup_times;
  rep.setup_work = h_.setup_work;
  rep.setup_seconds = h_.setup_times.total();
  rep.status.events = h_.events;  // setup incidents first, then solve's
  // Roofline attribution accumulated by the cycle's attrib scopes; empty
  // (and omitted from the JSON) unless metrics were on during the solve.
  rep.roofline = attrib::snapshot();
  attrib::publish_metrics(rep.roofline);
  if (sr) {
    rep.iterations = sr->telemetry;
    rep.solve_phases = sr->solve_times;
    rep.solve_work = sr->solve_work;
    rep.solve_seconds = sr->solve_times.total();
    rep.convergence.iterations = sr->iterations;
    rep.convergence.converged = sr->converged;
    rep.convergence.final_relres = sr->final_relres;
    rep.convergence.convergence_factor = sr->convergence_factor();
    rep.convergence.residual_history = sr->history;
    rep.status.status = status_name(sr->status);
    rep.status.nonfinite_iteration = sr->nonfinite_iteration;
    rep.status.recoveries = sr->recoveries;
    rep.status.events.insert(rep.status.events.end(), sr->events.begin(),
                             sr->events.end());
  }
  return rep;
}

void AMGSolver::precondition(const Vector& b, Vector& x, PhaseTimes* pt,
                             WorkCounters* wc) {
  set_zero(x);
  vcycle(h_, b, x, pt, wc);
}

void AMGSolver::precondition_multi(const MultiVector& b, MultiVector& x,
                                   PhaseTimes* pt, WorkCounters* wc) {
  set_zero(x);
  vcycle_multi(h_, b, x, pt, wc);
}

void AMGSolver::refresh_values(const CSRMatrix& A_new) {
  require(!h_.levels.empty(), "refresh_values: empty hierarchy");
  require(A_new.nrows == h_.levels[0].n && A_new.nrows == A_new.ncols,
          "refresh_values: size mismatch");
  const bool optimized = h_.opts.variant == Variant::kOptimized;
  ScopedPhase sp(h_.setup_times, "Setup_refresh");

  CSRMatrix A_work = A_new;
  if (!A_work.rows_sorted()) A_work.sort_rows();
  for (std::size_t l = 0; l + 1 < h_.levels.size(); ++l) {
    Level& L = h_.levels[l];
    CSRMatrix A_level;
    if (optimized && !L.perm.perm.empty()) {
      A_level = permute_symmetric(A_work, L.perm);
      A_level.sort_rows();
    } else {
      A_level = std::move(A_work);
    }
    if (l == 0) {
      require(A_level.rowptr == L.A.rowptr && A_level.colidx == L.A.colidx,
              "refresh_values: sparsity pattern differs from setup");
    }
    L.A = std::move(A_level);
    // Frozen transfers, fresh Galerkin product.
    CSRMatrix A_next =
        optimized ? rap_cf_block(L.A, L.Pf, L.PfT, L.nc)
                  : rap_fused_hypre(transpose_serial(L.P), L.A, L.P);
    A_next.sort_rows();
    // Smoother plans depend on the values (inverse diagonals).
    L.gs_base.reset();
    L.gs_opt.reset();
    L.lexgs.reset();
    L.mcgs.reset();
    switch (h_.opts.smoother) {
      case SmootherKind::kHybridGS:
        if (optimized)
          L.gs_opt =
              std::make_unique<HybridGSOptimized>(L.A, h_.opts.gs_partitions);
        else
          L.gs_base =
              std::make_unique<HybridGSBaseline>(L.A, h_.opts.gs_partitions);
        break;
      case SmootherKind::kLexGS:
        L.lexgs = std::make_unique<LexGS>(L.A);
        break;
      case SmootherKind::kMultiColorGS:
        L.mcgs = std::make_unique<MultiColorGS>(L.A);
        break;
      case SmootherKind::kJacobi:
        break;
    }
    A_work = std::move(A_next);
  }
  Level& C = h_.levels.back();
  C.A = std::move(A_work);
  if (h_.coarse_lu.size() == C.n && C.n > 0) {
    h_.coarse_lu = LUSolver(C.A);
  } else if (C.gs_opt || C.gs_base || C.lexgs || C.mcgs) {
    C.gs_opt.reset();
    C.gs_base.reset();
    C.lexgs.reset();
    C.mcgs.reset();
    if (h_.opts.smoother == SmootherKind::kHybridGS) {
      if (optimized)
        C.gs_opt =
            std::make_unique<HybridGSOptimized>(C.A, h_.opts.gs_partitions);
      else
        C.gs_base =
            std::make_unique<HybridGSBaseline>(C.A, h_.opts.gs_partitions);
    } else if (h_.opts.smoother == SmootherKind::kLexGS) {
      C.lexgs = std::make_unique<LexGS>(C.A);
    } else if (h_.opts.smoother == SmootherKind::kMultiColorGS) {
      C.mcgs = std::make_unique<MultiColorGS>(C.A);
    }
  }
}

}  // namespace hpamg
