// Shared helpers for the figure-reproduction benches: configured solver
// runs, fixed-width table printing, and the Table 3 / Table 4 parameter
// presets.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "amg/solver.hpp"
#include "dist/dist_krylov.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/project.hpp"
#include "support/cli.hpp"
#include "support/log.hpp"
#include "support/parallel.hpp"
#include "support/report.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace hpamg::bench {

/// Table 3: single-node standalone-AMG configuration.
inline AMGOptions table3_options(Variant v, double strength_threshold = 0.25) {
  AMGOptions o;
  o.variant = v;
  o.max_levels = 7;
  o.strength.threshold = strength_threshold;
  o.strength.max_row_sum = 0.8;
  o.interp = InterpKind::kExtPI;
  o.truncation.trunc_fact = 0.1;
  o.truncation.max_elmts = 4;
  o.smoother = SmootherKind::kHybridGS;
  return o;
}

/// Table 4: multi-node FGMRES+AMG configuration for a named scheme
/// (ei(4) / 2s-ei(444) / mp).
inline DistAMGOptions table4_options(Variant v, const std::string& scheme) {
  DistAMGOptions o;
  o.variant = v;
  o.max_levels = 16;
  o.strength.threshold = 0.25;
  o.strength.max_row_sum = 0.8;
  o.truncation.trunc_fact = 0.1;
  o.truncation.max_elmts = 4;
  if (scheme == "2s-ei") {
    o.interp = InterpKind::kExtPI2Stage;
    o.num_aggressive_levels = 1;
  } else if (scheme == "mp") {
    o.interp = InterpKind::kMultipass;
    o.num_aggressive_levels = 1;
  } else {
    o.interp = InterpKind::kExtPI;
  }
  return o;
}

/// Prints a row of fixed-width cells.
inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string fmt_int(long v) { return std::to_string(v); }

/// Sum of the "compute" phase categories of a solve-phase breakdown.
inline double solve_compute_seconds(const PhaseTimes& pt) {
  return pt.get("GS") + pt.get("SpMV") + pt.get("BLAS1") +
         pt.get("Solve_etc");
}

/// `--json <path>` plumbing shared by every bench binary: benches add
/// params and runs to `report` unconditionally (cheap), and main() ends
/// with `return sink.finish();` which writes BENCH_<name>.json when the
/// flag was given. The emitted document follows the schema in
/// support/report.hpp and is validated by bench/check_report.cpp.
struct JsonSink {
  JsonSink(const Cli& cli, const std::string& bench_name)
      : path(cli.get("json", "")), report(bench_name) {}

  bool enabled() const { return !path.empty(); }

  int finish() const {
    if (!enabled()) return 0;
    const std::string err = validate_bench_report_json(report.to_json());
    if (!err.empty()) {
      HPAMG_LOG_ERROR("json report failed self-validation: %s", err.c_str());
      return 1;
    }
    if (!report.write_file(path)) {
      HPAMG_LOG_ERROR("cannot write %s", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
  }

  std::string path;
  BenchReport report;
};

/// `--verbose` raises the log threshold to debug (per-iteration residuals
/// etc.); HPAMG_LOG_LEVEL still wins when it asks for more.
inline void init_logging(const Cli& cli) {
  if (cli.get("verbose", "") != "" &&
      log::threshold() < log::Level::kDebug)
    log::set_threshold(log::Level::kDebug);
}

/// `--trace <path>` plumbing shared by every bench binary: enables the
/// tracer up front (recording self-describing metadata), and main() calls
/// `sink.finish()` to merge all ring buffers into a Chrome trace-event
/// JSON at the given path.
struct TraceSink {
  TraceSink(const Cli& cli, const std::string& bench_name)
      : path(cli.get("trace", "")) {
    if (path.empty()) return;
    trace::enable();
    trace::set_metadata("bench", bench_name);
#if defined(__VERSION__)
    trace::set_metadata("compiler", __VERSION__);
#endif
#if defined(NDEBUG)
    trace::set_metadata("build", "release");
#else
    trace::set_metadata("build", "debug");
#endif
    trace::set_metadata("omp_threads", std::to_string(num_threads()));
    const NetworkModel net;
    trace::set_metadata("net.overhead_s", fmt(net.overhead_s, "%.3g"));
    trace::set_metadata("net.peak_bw_bytes_per_s",
                        fmt(net.peak_bw_bytes_per_s, "%.3g"));
    trace::set_metadata("net.setup_cost_s", fmt(net.setup_cost_s, "%.3g"));
  }

  bool enabled() const { return !path.empty(); }

  int finish() const {
    if (!enabled()) return 0;
    trace::disable();
    if (!trace::write_chrome_json(path)) {
      HPAMG_LOG_ERROR("cannot write trace %s", path.c_str());
      return 1;
    }
    const trace::TraceStats ts = trace::stats();
    std::printf("wrote %s (%llu events, %zu tracks%s)\n", path.c_str(),
                (unsigned long long)ts.recorded, ts.tracks,
                ts.dropped > 0 ? ", ring overflowed" : "");
    return 0;
  }

  std::string path;
};

}  // namespace hpamg::bench
