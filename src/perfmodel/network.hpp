// Alpha-beta network model of the Endeavor FDR InfiniBand fabric.
//
// The paper observes (§5.4) that strong-scaled halo-exchange messages drop
// below 100 KB and achieve under 1 GB/s effective unidirectional bandwidth
// per node — about 1/6 of the fabric peak. The model captures that with a
// per-message latency plus an eager/rendezvous protocol split: messages at
// or above `eager_limit_bytes` pay an extra handshake round-trip
// (`rendezvous_extra_s`), the way real MPI transports switch from eager
// copies to rendezvous transfers. Non-persistent requests additionally pay
// a setup cost per message, which is what persistent communication (§4.4)
// eliminates (the paper measures 1.7-1.8x faster halo exchanges from it).
//
// Aggregation over a CommStats uses the per-peer message-size histograms
// recorded by simmpi, so each message is classified eager vs. rendezvous
// individually; a mixed exchange of many small and a few huge messages is
// not mis-costed by its mean size (the mean path remains as a fallback for
// hand-built CommStats without histograms).
#pragma once

#include "dist/simmpi.hpp"

namespace hpamg {

struct NetworkModel {
  /// Per-message latency (eager protocol, persistent request). Together
  /// with rendezvous_extra_s this is calibrated so a 100 KB message
  /// achieves ~1/6 of peak bandwidth, the paper's §5.4 measurement.
  double overhead_s = 40e-6;
  double peak_bw_bytes_per_s = 6.8e9;  ///< FDR 4x unidirectional
  /// Additional per-message request-setup cost paid by non-persistent
  /// sends. Calibrated to the paper's 1.7-1.8x persistent-communication
  /// halo-exchange speedup on small messages (§4.4, §5.4).
  double setup_cost_s = 30e-6;
  /// Rendezvous handshake surcharge for messages of at least
  /// eager_limit_bytes (typical MPI eager/rendezvous switch point).
  double rendezvous_extra_s = 30e-6;
  std::uint64_t eager_limit_bytes = 16384;

  /// Time for one message of `bytes`.
  double message_seconds(double bytes, bool persistent) const {
    return overhead_s + (persistent ? 0.0 : setup_cost_s) +
           (bytes >= double(eager_limit_bytes) ? rendezvous_extra_s : 0.0) +
           bytes / peak_bw_bytes_per_s;
  }

  /// Projected network time for a rank's aggregate comm counters. Messages
  /// are classified eager vs. rendezvous through the per-peer size
  /// histograms when recorded; messages not covered by a histogram
  /// (hand-built stats) fall back to classification by the mean size.
  double seconds(const simmpi::CommStats& cs) const;

  /// All-reduce cost: log2(P) latency-bound stages.
  double allreduce_seconds(int nranks) const;
};

NetworkModel endeavor_network();

}  // namespace hpamg
