#include "amg/interp_classical.hpp"

#include <cmath>

#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

std::vector<Int> coarse_index_map(const CFMarker& cf, Int* ncoarse_out) {
  std::vector<Int> cmap(cf.size(), -1);
  Int nc = 0;
  for (std::size_t i = 0; i < cf.size(); ++i)
    if (cf[i] > 0) cmap[i] = nc++;
  if (ncoarse_out) *ncoarse_out = nc;
  return cmap;
}

CSRMatrix direct_interp(const CSRMatrix& A, const CSRMatrix& S,
                        const CFMarker& cf, WorkCounters* wc) {
  TRACE_SPAN("interp.direct", "kernel", "rows", std::int64_t(A.nrows));
  const Int n = A.nrows;
  Int nc = 0;
  std::vector<Int> cmap = coarse_index_map(cf, &nc);
  CSRMatrix P(n, nc);

  // Count pass: C rows have one entry; F rows one per strong C neighbor.
  parallel_for(0, n, [&](Int i) {
    if (cf[i] > 0) {
      P.rowptr[i + 1] = 1;
      return;
    }
    Int cnt = 0;
    for (Int k = S.rowptr[i]; k < S.rowptr[i + 1]; ++k)
      if (cf[S.colidx[k]] > 0) ++cnt;
    P.rowptr[i + 1] = cnt;
  });
  exclusive_scan(P.rowptr);
  P.colidx.resize(P.rowptr[n]);
  P.values.resize(P.rowptr[n]);

  parallel_for_dynamic(0, n, [&](Int i) {
    Int pos = P.rowptr[i];
    if (cf[i] > 0) {
      P.colidx[pos] = cmap[i];
      P.values[pos] = 1.0;
      return;
    }
    if (P.rowptr[i + 1] == pos) return;  // F point with no strong C neighbor
    // Split the full row by sign; strong-C subsets likewise. A and S rows
    // are sorted so membership is a merge walk.
    double diag = 0.0;
    double sum_neg = 0.0, sum_pos = 0.0;      // over all off-diagonals
    double csum_neg = 0.0, csum_pos = 0.0;    // over strong C neighbors
    Int ks = S.rowptr[i];
    const Int ks_end = S.rowptr[i + 1];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      const double v = A.values[k];
      if (j == i) {
        diag = v;
        continue;
      }
      if (v < 0)
        sum_neg += v;
      else
        sum_pos += v;
      while (ks < ks_end && S.colidx[ks] < j) ++ks;
      const bool strong = ks < ks_end && S.colidx[ks] == j;
      if (strong && cf[j] > 0) {
        if (v < 0)
          csum_neg += v;
        else
          csum_pos += v;
      }
    }
    const double alpha = csum_neg != 0.0 ? sum_neg / csum_neg : 0.0;
    // Positive connections without positive C support fold into the diagonal.
    double beta = 0.0;
    double dd = diag;
    if (csum_pos != 0.0)
      beta = sum_pos / csum_pos;
    else
      dd += sum_pos;
    if (dd == 0.0) return;  // degenerate row; leave empty
    ks = S.rowptr[i];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j == i) continue;
      while (ks < ks_end && S.colidx[ks] < j) ++ks;
      const bool strong = ks < ks_end && S.colidx[ks] == j;
      if (!strong || cf[j] <= 0) continue;
      const double v = A.values[k];
      const double w = -(v < 0 ? alpha : beta) * v / dd;
      P.colidx[pos] = cmap[j];
      P.values[pos] = w;
      ++pos;
    }
  });
  if (wc) {
    wc->bytes_read += 2 * A.nnz() * (sizeof(Int) + sizeof(double));
    wc->flops += 2 * std::uint64_t(P.nnz());
  }
  return P;
}

}  // namespace hpamg
