// Structured-grid stencil generators: 2-D/3-D Laplacians and variants.
//
// These generate the paper's benchmark operators: lap2d (5-point, AMG2013),
// lap3d (27-point, HPCG) and the coefficient-field variants used to stand in
// for the UF-collection matrices (see gen/suite.hpp and DESIGN.md §1).
#pragma once

#include <functional>
#include <vector>

#include "matrix/csr.hpp"
#include "support/common.hpp"

namespace hpamg {

/// Coefficient field: cell (x, y, z) -> local conductivity (> 0).
/// A constant field gives the standard Laplacian.
using CoeffField = std::function<double(Int, Int, Int)>;

/// 2-D 5-point finite-difference Laplacian on an nx x ny grid
/// (Dirichlet boundary folded into the diagonal), optionally with an
/// anisotropy ratio eps scaling the y-direction coupling and a per-cell
/// coefficient field combined by harmonic averaging across faces.
CSRMatrix lap2d_5pt(Int nx, Int ny, double eps_y = 1.0,
                    const CoeffField& coeff = nullptr);

/// 3-D 7-point Laplacian on nx x ny x nz.
CSRMatrix lap3d_7pt(Int nx, Int ny, Int nz, double eps_y = 1.0,
                    double eps_z = 1.0, const CoeffField& coeff = nullptr);

/// 3-D 27-point Laplacian (HPCG operator: diagonal 26, off-diagonals -1).
CSRMatrix lap3d_27pt(Int nx, Int ny, Int nz);

/// 2-D 9-point Laplacian (diagonal 8, off-diagonals -1).
CSRMatrix lap2d_9pt(Int nx, Int ny);

/// 2-D 5-point plus the two (+1,+1)/(-1,-1) diagonal couplings — a 7-point
/// skewed stencil approximating triangulated FEM meshes (parabolic_fem-like).
CSRMatrix lap2d_7pt_skew(Int nx, Int ny);

/// 3-D stencil with 7-point core plus the 6 edge-diagonal couplings in the
/// xy/xz/yz planes (13 neighbors + diagonal ~ 14 nnz/row, StocF-like).
CSRMatrix lap3d_13pt(Int nx, Int ny, Int nz, const CoeffField& coeff = nullptr);

/// Linear row index for grid coordinates.
inline Int grid_index(Int x, Int y, Int z, Int nx, Int ny) {
  return (z * ny + y) * nx + x;
}

}  // namespace hpamg
