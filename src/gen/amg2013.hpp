// AMG2013-like semi-structured problem generator.
//
// The paper's weak-scaling experiments (Fig 6 d-f) use the default
// semi-structured input of LLNL's AMG2013 benchmark (r=32, pooldist=1):
// a mostly structured 3-D Laplace-type problem with irregular refinement
// seams, ~8 nonzeros per row. We reproduce that profile with a 3-D 7-point
// backbone plus a refined sub-box whose cells carry extra cross couplings
// to their parent-level neighbors (the "seam" rows have 9-12 entries,
// bringing the average to ~8).
#pragma once

#include "matrix/csr.hpp"

namespace hpamg {

/// Semi-structured operator on an nx x ny x nz grid with a refined central
/// box covering `refine_frac` of each dimension.
CSRMatrix amg2013_like(Int nx, Int ny, Int nz, double refine_frac = 0.4,
                       std::uint64_t seed = 17);

}  // namespace hpamg
