// Machine-readable reporting: a dependency-free JSON writer/parser, the
// SolveReport aggregate (per-level hierarchy stats, phase breakdowns, work
// counters, communication stats, convergence history, perfmodel
// projections), and the BENCH_*.json envelope every bench binary emits
// behind its `--json <path>` flag.
//
// The emitted field names are the repo's perf-trajectory schema: CI
// validates them (bench/check_report.cpp, the `report_schema` target) and
// tests/test_report.cpp pins them as a golden schema, so renaming a field
// is a deliberate, test-visible act. Schema reference: README.md
// ("Machine-readable bench output").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/commstats.hpp"
#include "support/common.hpp"
#include "support/counters.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

namespace hpamg {

// ------------------------------------------------------------------------
// JSON writer
// ------------------------------------------------------------------------

/// Streaming JSON writer with comma/nesting bookkeeping. Strings are
/// escaped per RFC 8259 (UTF-8 passes through, control characters become
/// \uXXXX); non-finite doubles are written as `null` (JSON has no NaN/Inf
/// — consumers must treat a null metric as "not a number").
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Member key inside an object; must be followed by exactly one value
  /// or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(int v) { return write_int(v); }
  JsonWriter& value(long v) { return write_int(v); }
  JsonWriter& value(long long v) { return write_int(v); }
  JsonWriter& value(unsigned v) { return write_uint(v); }
  JsonWriter& value(unsigned long v) { return write_uint(v); }
  JsonWriter& value(unsigned long long v) { return write_uint(v); }
  JsonWriter& null();

  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Finished document; throws if containers are still open.
  const std::string& str() const;

 private:
  JsonWriter& write_int(long long v);
  JsonWriter& write_uint(unsigned long long v);
  void before_value();
  void raw(std::string_view s) { out_.append(s); }

  enum class Frame : unsigned char { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

// ------------------------------------------------------------------------
// JSON parser (for validation and round-trip tests)
// ------------------------------------------------------------------------

/// Parsed JSON document node. Objects keep member order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;  ///< array elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< object fields

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view k) const;
  bool has(std::string_view k) const { return find(k) != nullptr; }
};

/// Parses one JSON document (throws std::invalid_argument on malformed
/// input or trailing garbage).
JsonValue json_parse(std::string_view src);

// ------------------------------------------------------------------------
// Solve report
// ------------------------------------------------------------------------

/// One level of the hierarchy table (AMGSolver and DistAMG both emit it).
struct LevelReportEntry {
  Int level = 0;
  Long rows = 0;
  Long nnz = 0;
  double nnz_per_row = 0.0;
  Long coarse = 0;       ///< coarse points selected on this level
  Long interp_nnz = 0;   ///< nnz of this level's interpolation operator
  // Table 2 memory columns (analytic footprints; see amg/hierarchy.hpp).
  std::uint64_t operator_bytes = 0;   ///< level operator A_l
  std::uint64_t interp_bytes = 0;     ///< P (and kept R/P^T) storage
  std::uint64_t smoother_bytes = 0;   ///< smoother plans; coarse LU on the
                                      ///< last level
  std::uint64_t workspace_bytes = 0;  ///< per-cycle solve vectors
};

/// Setup/solve memory totals for the report's "memory" block.
struct MemoryReport {
  /// Bytes held after setup: Σ levels (operator + interp + smoother).
  std::uint64_t setup_bytes = 0;
  /// Bytes touched by the solve phase: setup_bytes + solve workspace.
  std::uint64_t solve_bytes = 0;
  /// Process peak RSS at report time (metrics::peak_rss_bytes; includes
  /// everything the process ever allocated, so >= the analytic totals).
  std::uint64_t peak_rss_bytes = 0;
};

struct ConvergenceReport {
  Int iterations = 0;
  bool converged = false;
  double final_relres = 0.0;
  double convergence_factor = 0.0;  ///< geomean contraction per iteration
  std::vector<double> residual_history;
};

/// One row of the report's optional `roofline` block: measured time joined
/// with work counters and the MachineModel ceilings for one (kernel, level)
/// pair (perfmodel/attrib.hpp fills these). Fractions are clamped into
/// (0, 1]: a kernel beating the modeled ceiling reports 1.0, and entries
/// with zero bytes or zero measured time are never emitted.
struct RooflineEntry {
  std::string kernel;
  Int level = -1;  ///< -1 = not level-resolved
  long calls = 0;
  double seconds = 0.0;  ///< measured wall (or per-rank CPU) time, summed
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;  ///< bytes read + written (work counters)
  double achieved_bw_bytes_per_s = 0.0;  ///< bytes / seconds
  double modeled_seconds = 0.0;  ///< MachineModel::seconds on the counters
  /// achieved bandwidth / effective STREAM ceiling
  /// (stream_bw * sparse_efficiency), clamped into (0, 1].
  double bw_fraction = 0.0;
  /// modeled_seconds / seconds, clamped into (0, 1] — how close the kernel
  /// ran to the roofline the machine model predicts for its counters.
  double efficiency = 0.0;
};

/// One entry of the report's optional `iterations` array: per-iteration
/// solve telemetry (amg/telemetry.hpp records these when metrics are
/// enabled). `presmooth_relres` / `smoother_contraction` are < 0 when the
/// extra fine-level residual was not measured; they are omitted from the
/// JSON in that case.
struct IterationReportEntry {
  Int iteration = 0;   ///< 1-based, matching residual_history indexing
  double relres = 0.0;  ///< relative residual after this iteration
  /// relres / previous relres (previous = initial residual for it 1);
  /// 0 when the previous residual was not positive.
  double conv_factor = 0.0;
  double seconds = 0.0;  ///< wall time of this cycle + residual check
  std::vector<double> level_seconds;  ///< per-level self-time split
  double presmooth_relres = -1.0;  ///< relres after fine-level pre-smoothing
  /// presmooth_relres / previous relres: the fine smoother's contraction
  /// before any coarse-grid correction this iteration.
  double smoother_contraction = -1.0;
};

/// Terminal status + resilience incidents — the report's `status` block.
/// `status` holds status_name() of the Status taxonomy (support/error.hpp);
/// it stays "ok" for setup-only reports.
struct StatusReport {
  std::string status = "ok";
  Int nonfinite_iteration = -1;  ///< first NaN/Inf iteration; -1 if none
  Int recoveries = 0;            ///< scrub-and-restart recoveries performed
  /// Setup + solve incident log (degenerate coarse operator, recoveries).
  std::vector<std::string> events;
};

/// Everything a solver run exposes for regression tracking: hierarchy
/// quality, phase breakdowns, machine-independent work counters, comm
/// traffic (distributed runs), convergence, and measured plus
/// perfmodel-projected times. Field names are schema-stable (see header
/// comment).
struct SolveReport {
  std::string solver;   ///< "amg" | "fgmres+amg"
  std::string variant;  ///< "baseline" | "optimized"

  Int num_levels = 0;
  double operator_complexity = 0.0;
  double grid_complexity = 0.0;
  std::vector<LevelReportEntry> levels;

  PhaseTimes setup_phases;
  PhaseTimes solve_phases;
  WorkCounters setup_work;
  WorkCounters solve_work;

  bool has_comm = false;  ///< distributed runs only
  simmpi::CommStats setup_comm;
  simmpi::CommStats solve_comm;

  bool has_memory = false;  ///< solver benches set this (Table 2 columns)
  MemoryReport memory;

  /// Optional roofline attribution block (emitted when non-empty); see
  /// perfmodel/attrib.hpp.
  std::vector<RooflineEntry> roofline;
  /// Optional per-iteration telemetry (emitted when non-empty); see
  /// amg/telemetry.hpp.
  std::vector<IterationReportEntry> iterations;

  ConvergenceReport convergence;
  StatusReport status;

  double setup_seconds = 0.0;  ///< measured on this host
  double solve_seconds = 0.0;
  double modeled_setup_seconds = 0.0;  ///< perfmodel projection
  double modeled_solve_seconds = 0.0;

  /// Emits the report object at the writer's current position.
  void write_json(JsonWriter& w) const;
};

// ------------------------------------------------------------------------
// Bench report envelope
// ------------------------------------------------------------------------

/// Environment + registry snapshot emitted as the envelope's "metrics"
/// block when a bench ran with metrics enabled. The environment fields
/// (threads, build, net model) come from one place — bench_util's RunEnv —
/// so they always agree with the tracer's metadata.
struct MetricsEnvelope {
  int threads = 0;
  std::string build;     ///< "release" | "debug"
  std::string compiler;  ///< may be empty
  std::uint64_t peak_rss_bytes = 0;
  double net_overhead_s = 0.0;
  double net_peak_bw_bytes_per_s = 0.0;
  double net_setup_cost_s = 0.0;
  double net_rendezvous_extra_s = 0.0;
  std::uint64_t net_eager_limit_bytes = 0;
  metrics::Snapshot registry;
};

/// Accumulates one bench binary's machine-readable output and writes the
/// BENCH_<name>.json envelope:
///   { "schema_version": 1, "bench": "...", "params": {...},
///     "runs": [ { "name": ..., "labels": {...}, "metrics": {...},
///                 "report": { <SolveReport> } } ] }
class BenchReport {
 public:
  static constexpr long kSchemaVersion = 1;

  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  void set_param(const std::string& k, const std::string& v);
  void set_param(const std::string& k, const char* v) {
    set_param(k, std::string(v));
  }
  void set_param(const std::string& k, double v);
  void set_param(const std::string& k, long v);
  void set_param(const std::string& k, int v) { set_param(k, long(v)); }

  struct Run {
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<std::pair<std::string, double>> metrics;
    std::optional<SolveReport> solve;

    Run& label(const std::string& k, const std::string& v) {
      labels.emplace_back(k, v);
      return *this;
    }
    Run& metric(const std::string& k, double v) {
      metrics.emplace_back(k, v);
      return *this;
    }
    Run& report(SolveReport r) {
      solve = std::move(r);
      return *this;
    }
  };

  /// Appends a run; the reference stays valid across later add_run calls.
  Run& add_run(const std::string& name);

  /// Attaches the envelope-level "metrics" block (environment + registry
  /// snapshot + peak RSS). Last call wins.
  void set_metrics(MetricsEnvelope m) { metrics_ = std::move(m); }

  std::string to_json() const;
  /// Writes to_json() to `path`; false (with errno intact) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Param {
    std::string key;
    bool numeric = false;
    double number = 0.0;
    bool integral = false;
    long integer = 0;
    std::string text;
  };
  std::string bench_;
  std::vector<Param> params_;
  std::vector<std::unique_ptr<Run>> runs_;
  std::optional<MetricsEnvelope> metrics_;
};

/// Validates a BENCH_*.json document against the envelope schema and, for
/// every run carrying a "report", the SolveReport schema. With
/// `require_solve`, at least one run must carry a report with >= 1
/// iteration (the CI perf-trajectory contract for the solver benches).
/// With `require_metrics`, the envelope must carry a "metrics" block (it
/// is validated whenever present). Returns "" when valid, else a
/// description of the first violation.
std::string validate_bench_report_json(std::string_view json_text,
                                       bool require_solve = false,
                                       bool require_metrics = false);

}  // namespace hpamg
