// Coverage for the smaller utility surfaces: phase timing, work counters,
// distributed-matrix validation paths, halo error handling, vector
// gathers, and the solver's convergence-factor metric.
#include <gtest/gtest.h>

#include <thread>

#include "amg/solver.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/halo.hpp"
#include "gen/stencil.hpp"
#include "support/counters.hpp"
#include "support/timer.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

TEST(PhaseTimes, AccumulateMergeClear) {
  PhaseTimes a, b;
  a.add("RAP", 1.0);
  a.add("RAP", 0.5);
  a.add("GS", 2.0);
  EXPECT_DOUBLE_EQ(a.get("RAP"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);
  b.add("GS", 1.0);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.get("GS"), 3.0);
  EXPECT_DOUBLE_EQ(b.get("RAP"), 1.5);
  b.clear();
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(PhaseTimes, ScopedPhaseRecordsElapsed) {
  PhaseTimes pt;
  {
    ScopedPhase sp(pt, "work");
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(pt.get("work"), 0.0);
}

TEST(Timers, WallAndCpuAdvance) {
  Timer w;
  CpuTimer c;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  EXPECT_GT(w.seconds(), 0.0);
  EXPECT_GT(c.seconds(), 0.0);
}

TEST(WorkCounters, AccumulateAndPrint) {
  WorkCounters a, b;
  a.flops = 10;
  a.bytes_read = 100;
  b.flops = 5;
  b.bytes_written = 7;
  b.branches = 3;
  b.hash_probes = 2;
  a += b;
  EXPECT_EQ(a.flops, 15u);
  EXPECT_EQ(a.bytes_total(), 107u);
  EXPECT_NE(a.to_string().find("flops=15"), std::string::npos);
}

TEST(DistMatrix, ValidateCatchesBadColmap) {
  CSRMatrix A = lap2d_5pt(8, 8);
  simmpi::run(2, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    EXPECT_NO_THROW(dA.validate());
    if (!dA.colmap.empty()) {
      DistMatrix bad = dA;
      bad.colmap[0] = bad.first_col();  // points into own range
      EXPECT_THROW(bad.validate(), std::invalid_argument);
    }
    DistMatrix bad2 = dA;
    bad2.offd.ncols += 1;  // colmap/offd mismatch
    EXPECT_THROW(bad2.validate(), std::invalid_argument);
  });
}

TEST(Halo, RejectsOwnedElementInColmap) {
  simmpi::run(2, [&](simmpi::Comm& c) {
    std::vector<Long> starts = {0, 10, 20};
    std::vector<Long> colmap = {Long(c.rank() * 10 + 1)};  // own element!
    EXPECT_THROW(HaloExchange(c, colmap, starts, false),
                 std::invalid_argument);
    // Peers never reach the handshake; drain by creating a matching valid
    // exchange is unnecessary because the throw happens before any send.
  });
}

TEST(Halo, EmptyColmapIsFine) {
  simmpi::run(2, [&](simmpi::Comm& c) {
    std::vector<Long> starts = {0, 10, 20};
    std::vector<Long> colmap;
    HaloExchange h(c, colmap, starts, true);
    EXPECT_EQ(h.ext_size(), 0);
    Vector x(10, 1.0), ext;
    h.exchange(x, ext);
    EXPECT_TRUE(ext.empty());
  });
}

TEST(GatherVector, AssemblesAllSlices) {
  simmpi::run(3, [&](simmpi::Comm& c) {
    std::vector<Long> starts = {0, 4, 7, 12};
    const Int mine = Int(starts[c.rank() + 1] - starts[c.rank()]);
    Vector local(mine);
    for (Int i = 0; i < mine; ++i) local[i] = double(starts[c.rank()] + i);
    Vector full = gather_vector(c, local, starts);
    ASSERT_EQ(Int(full.size()), 12);
    for (Int i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(full[i], double(i));
  });
}

TEST(SimmpiAllgather, DoubleVariant) {
  simmpi::run(4, [](simmpi::Comm& c) {
    std::vector<double> g = c.allgather(0.5 * c.rank());
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(g[r], 0.5 * r);
  });
}

TEST(SolveResult, ConvergenceFactorMetric) {
  SolveResult r;
  EXPECT_DOUBLE_EQ(r.convergence_factor(), 0.0);
  r.history = {1e-1, 1e-2, 1e-3};  // exact factor 0.1 per step
  EXPECT_NEAR(r.convergence_factor(), 0.1, 1e-12);

  CSRMatrix A = lap2d_5pt(25, 25);
  AMGSolver amg(A, {});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult rr = amg.solve(b, x, 1e-9, 100);
  ASSERT_TRUE(rr.converged);
  EXPECT_GT(rr.convergence_factor(), 0.0);
  EXPECT_LT(rr.convergence_factor(), 0.4);
}

TEST(HierarchySummary, ContainsLevelsAndComplexity) {
  CSRMatrix A = lap2d_5pt(20, 20);
  Hierarchy h = build_hierarchy(A, {});
  const std::string s = hierarchy_summary(h);
  EXPECT_NE(s.find("operator complexity"), std::string::npos);
  EXPECT_NE(s.find("400"), std::string::npos);  // finest rows
}

TEST(Footprint, TracksHierarchyStorage) {
  CSRMatrix A = lap2d_5pt(30, 30);
  Hierarchy h = build_hierarchy(A, {});
  // At least the finest operator's CSR arrays.
  EXPECT_GE(h.footprint_bytes(), A.footprint_bytes());
}

TEST(CsrFootprint, CountsArrays) {
  CSRMatrix A = lap2d_5pt(10, 10);
  const std::uint64_t expect =
      (A.rowptr.size() + A.colidx.size()) * sizeof(Int) +
      A.values.size() * sizeof(double);
  EXPECT_EQ(A.footprint_bytes(), expect);
}

}  // namespace
}  // namespace hpamg
