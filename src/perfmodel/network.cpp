#include "perfmodel/network.hpp"

#include <cmath>

namespace hpamg {

double NetworkModel::seconds(const simmpi::CommStats& cs) const {
  if (cs.messages_sent == 0) return 0.0;
  // Linear terms depend only on totals: per-message latency, request setup
  // for the non-persistent share, and the bandwidth term.
  double t = double(cs.messages_sent) * overhead_s +
             double(cs.request_setups) * setup_cost_s +
             double(cs.bytes_sent) / peak_bw_bytes_per_s;
  // The rendezvous surcharge is per-message and nonlinear in size, so it
  // needs the size distribution: count histogram-covered messages whose
  // bucket lies at or beyond the eager limit.
  std::uint64_t hist_msgs = 0;
  std::uint64_t rendezvous = 0;
  for (const simmpi::PeerTraffic& p : cs.per_peer) {
    for (int b = 0; b < simmpi::kMsgSizeBuckets; ++b) {
      const std::uint64_t n = p.size_hist[b];
      if (n == 0) continue;
      hist_msgs += n;
      if (simmpi::msg_size_bucket_floor(b) >= eager_limit_bytes)
        rendezvous += n;
    }
  }
  // Messages the histograms do not cover (hand-built CommStats, or totals
  // accumulated before per_peer was sized): classify them all by the mean
  // size — the old approximation, now only a fallback.
  if (hist_msgs < cs.messages_sent) {
    const double mean = double(cs.bytes_sent) / double(cs.messages_sent);
    if (mean >= double(eager_limit_bytes))
      rendezvous += cs.messages_sent - hist_msgs;
  }
  return t + double(rendezvous) * rendezvous_extra_s;
}

double NetworkModel::allreduce_seconds(int nranks) const {
  if (nranks <= 1) return 0.0;
  return std::ceil(std::log2(double(nranks))) * overhead_s;
}

NetworkModel endeavor_network() { return NetworkModel{}; }

}  // namespace hpamg
