// Common type aliases and low-level helpers shared across hpamg.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hpamg {

/// Local (per-rank) row/column index. 32-bit as in HYPRE's default build.
using Int = std::int32_t;
/// Global index across all ranks of a distributed matrix.
using Long = std::int64_t;

#if defined(__GNUC__)
#define HPAMG_RESTRICT __restrict__
#else
#define HPAMG_RESTRICT
#endif

/// Throwing check used for API-boundary validation (kept in release builds).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Integer ceil-division.
constexpr Long ceil_div(Long a, Long b) { return (a + b - 1) / b; }

}  // namespace hpamg
