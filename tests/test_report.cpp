// Tests for the JSON report layer (support/report.hpp): writer escaping
// and round-trips, the parser, the golden SolveReport schema, the
// BENCH_*.json envelope, and its validator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "amg/solver.hpp"
#include "gen/stencil.hpp"
#include "support/report.hpp"

namespace hpamg {
namespace {

// --------------------------------------------------------------- writer ----

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object().kv("a", 1).kv("b", "x").kv("c", true).end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array().value(1).value(2.5).null().end_array();
  w.key("obj").begin_object().kv("k", "v").end_object();
  w.key("empty").begin_array().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2.5,null],"obj":{"k":"v"},"empty":[]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object().kv("k", "a\"b\\c\n\t\x01 é").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001 é\"}");
  // And the parser undoes it exactly.
  JsonValue v = json_parse(w.str());
  EXPECT_EQ(v.find("k")->text, "a\"b\\c\n\t\x01 é");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .value(-std::numeric_limits<double>::infinity())
      .value(1.5)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, NonFiniteDoublesRoundTripAsNaN) {
  // Regression: the writer emits `null` for non-finite doubles, and the
  // parser must map null back to NaN so a report → parse → inspect round
  // trip of a diverged solve (relres = NaN) yields NaN again instead of
  // the old 0.0 — which silently read as "converged to machine zero".
  JsonWriter w;
  w.begin_object()
      .kv("relres", std::numeric_limits<double>::quiet_NaN())
      .kv("seconds", 1.5)
      .end_object();
  const JsonValue v = json_parse(w.str());
  const JsonValue* relres = v.find("relres");
  ASSERT_NE(relres, nullptr);
  EXPECT_TRUE(relres->is_null());  // kind preserved: benchdiff skips it
  EXPECT_TRUE(std::isnan(relres->number));
  const JsonValue* seconds = v.find("seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->number, 1.5);
}


TEST(JsonWriter, DoublesRoundTrip) {
  const double cases[] = {0.0,     -0.0,   1.0 / 3.0, 1e-300, 1e300,
                          6.25e-2, 1e20,   0.1,       123456789.123456789,
                          -2.5e-8, 4503599627370497.0};
  for (double d : cases) {
    JsonWriter w;
    w.begin_array().value(d).end_array();
    JsonValue v = json_parse(w.str());
    ASSERT_EQ(v.items.size(), 1u);
    EXPECT_EQ(v.items[0].number, d) << w.str();
  }
}

TEST(JsonWriter, ThrowsOnMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::invalid_argument);  // unclosed container
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::invalid_argument);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::invalid_argument);  // key inside array
  }
}

// --------------------------------------------------------------- parser ----

TEST(JsonParse, Literals) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").boolean);
  EXPECT_FALSE(json_parse("false").boolean);
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2").number, -1250.0);
  EXPECT_EQ(json_parse("\"hi\"").text, "hi");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(json_parse(R"("\u0041\u00e9\u4e2d")").text, "Aé中");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(json_parse(R"("\ud83d\ude00")").text, "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "1 2", "\"\\x\"",
        "\"\\ud83d\"", "{\"a\":1}garbage", "[01]", "nan", "'a'"}) {
    EXPECT_THROW(json_parse(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, ObjectKeepsOrderAndFinds) {
  JsonValue v = json_parse(R"({"z":1,"a":{"b":[true]}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_TRUE(v.find("a")->find("b")->items[0].boolean);
  EXPECT_EQ(v.find("missing"), nullptr);
}

// -------------------------------------------------------- golden schema ----

SolveReport sample_report() {
  SolveReport r;
  r.solver = "amg";
  r.variant = "optimized";
  r.num_levels = 2;
  r.operator_complexity = 1.5;
  r.grid_complexity = 1.25;
  r.levels.push_back({0, 100, 700, 7.0, 25, 300});
  r.levels.push_back({1, 25, 150, 6.0, 0, 0});
  r.setup_phases.add("RAP", 0.5);
  r.solve_phases.add("GS", 0.25);
  r.setup_work.flops = 1000;
  r.solve_work.flops = 2000;
  r.has_comm = true;
  r.setup_comm.messages_sent = 3;
  r.setup_comm.per_peer = {{2, 96}, {1, 32}};
  r.solve_comm.bytes_sent = 64;
  r.solve_comm.per_peer = {{0, 0}, {4, 64}};
  r.convergence.iterations = 9;
  r.convergence.converged = true;
  r.convergence.final_relres = 1e-8;
  r.convergence.convergence_factor = 0.13;
  r.convergence.residual_history = {1.0, 0.1, 0.01};
  r.status.status = "recovered";
  r.status.nonfinite_iteration = 4;
  r.status.recoveries = 1;
  r.status.events = {"recovered at iteration 4 (non_finite)"};
  r.setup_seconds = 0.6;
  r.solve_seconds = 0.3;
  r.modeled_setup_seconds = 0.05;
  r.modeled_solve_seconds = 0.02;
  return r;
}

std::vector<std::string> member_names(const JsonValue& v) {
  std::vector<std::string> out;
  for (const auto& [k, _] : v.members) out.push_back(k);
  return out;
}

TEST(SolveReportSchema, GoldenFieldNames) {
  // Renaming any emitted field breaks downstream consumers of the
  // BENCH_*.json artifacts; this test makes that a deliberate act.
  JsonWriter w;
  sample_report().write_json(w);
  JsonValue v = json_parse(w.str());

  EXPECT_EQ(member_names(v),
            (std::vector<std::string>{"solver", "variant", "hierarchy",
                                      "phases", "counters", "comm",
                                      "convergence", "status", "times"}));
  EXPECT_EQ(member_names(*v.find("hierarchy")),
            (std::vector<std::string>{"num_levels", "operator_complexity",
                                      "grid_complexity", "levels"}));
  EXPECT_EQ(member_names(v.find("hierarchy")->find("levels")->items[0]),
            (std::vector<std::string>{"level", "rows", "nnz", "nnz_per_row",
                                      "coarse", "interp_nnz", "operator_bytes",
                                      "interp_bytes", "smoother_bytes",
                                      "workspace_bytes"}));
  EXPECT_EQ(member_names(*v.find("phases")),
            (std::vector<std::string>{"setup", "solve"}));
  EXPECT_EQ(member_names(*v.find("counters")),
            (std::vector<std::string>{"setup", "solve"}));
  EXPECT_EQ(member_names(*v.find("counters")->find("setup")),
            (std::vector<std::string>{"flops", "bytes_read", "bytes_written",
                                      "branches", "hash_probes"}));
  EXPECT_EQ(member_names(*v.find("comm")),
            (std::vector<std::string>{"setup", "solve"}));
  EXPECT_EQ(member_names(*v.find("comm")->find("setup")),
            (std::vector<std::string>{"messages_sent", "bytes_sent",
                                      "allreduces", "request_setups",
                                      "persistent_starts", "per_peer"}));
  EXPECT_EQ(member_names(v.find("comm")->find("setup")
                             ->find("per_peer")->items[0]),
            (std::vector<std::string>{"peer", "messages", "bytes"}));
  EXPECT_EQ(member_names(*v.find("convergence")),
            (std::vector<std::string>{"iterations", "converged",
                                      "final_relres", "convergence_factor",
                                      "residual_history"}));
  EXPECT_EQ(member_names(*v.find("status")),
            (std::vector<std::string>{"status", "nonfinite_iteration",
                                      "recoveries", "events"}));
  EXPECT_EQ(member_names(*v.find("times")),
            (std::vector<std::string>{"setup_seconds", "solve_seconds",
                                      "modeled_setup_seconds",
                                      "modeled_solve_seconds"}));
}

TEST(SolveReportSchema, CommOmittedForSingleNode) {
  SolveReport r = sample_report();
  r.has_comm = false;
  JsonWriter w;
  r.write_json(w);
  EXPECT_FALSE(json_parse(w.str()).has("comm"));
}

TEST(SolveReportSchema, ValuesSurvive) {
  JsonWriter w;
  sample_report().write_json(w);
  JsonValue v = json_parse(w.str());
  EXPECT_EQ(v.find("solver")->text, "amg");
  EXPECT_DOUBLE_EQ(v.find("hierarchy")->find("operator_complexity")->number,
                   1.5);
  EXPECT_DOUBLE_EQ(v.find("phases")->find("setup")->find("RAP")->number, 0.5);
  EXPECT_DOUBLE_EQ(v.find("convergence")->find("iterations")->number, 9.0);
  EXPECT_EQ(v.find("convergence")->find("residual_history")->items.size(),
            3u);
  EXPECT_DOUBLE_EQ(
      v.find("comm")->find("solve")->find("bytes_sent")->number, 64.0);
  // Zero-traffic peer 0 is elided; peer 1 keeps its index.
  const JsonValue& solve_pp = *v.find("comm")->find("solve")->find("per_peer");
  ASSERT_EQ(solve_pp.items.size(), 1u);
  EXPECT_DOUBLE_EQ(solve_pp.items[0].find("peer")->number, 1.0);
  EXPECT_DOUBLE_EQ(solve_pp.items[0].find("bytes")->number, 64.0);
  EXPECT_EQ(v.find("status")->find("status")->text, "recovered");
  EXPECT_DOUBLE_EQ(v.find("status")->find("recoveries")->number, 1.0);
  ASSERT_EQ(v.find("status")->find("events")->items.size(), 1u);
}

// ------------------------------------------------------------- envelope ----

TEST(BenchReport, EnvelopeValidates) {
  BenchReport rep("unit");
  rep.set_param("scale", 0.01);
  rep.set_param("ranks", 4);
  rep.set_param("input", "lap3d");
  rep.add_run("case/a").label("variant", "opt").metric("seconds", 1.25);
  rep.add_run("case/b").report(sample_report());
  const std::string js = rep.to_json();
  EXPECT_EQ(validate_bench_report_json(js), "");
  EXPECT_EQ(validate_bench_report_json(js, /*require_solve=*/true), "");

  JsonValue v = json_parse(js);
  EXPECT_DOUBLE_EQ(v.find("schema_version")->number, 1.0);
  EXPECT_EQ(v.find("bench")->text, "unit");
  EXPECT_DOUBLE_EQ(v.find("params")->find("ranks")->number, 4.0);
  EXPECT_EQ(v.find("runs")->items.size(), 2u);
  const JsonValue& run0 = v.find("runs")->items[0];
  EXPECT_EQ(run0.find("name")->text, "case/a");
  EXPECT_EQ(run0.find("labels")->find("variant")->text, "opt");
  EXPECT_DOUBLE_EQ(run0.find("metrics")->find("seconds")->number, 1.25);
  EXPECT_FALSE(run0.has("report"));
  EXPECT_TRUE(v.find("runs")->items[1].has("report"));
}

TEST(BenchReport, AddRunReferencesStayValid) {
  BenchReport rep("unit");
  BenchReport::Run& first = rep.add_run("first");
  for (int i = 0; i < 100; ++i) rep.add_run("r" + std::to_string(i));
  first.metric("late", 1.0);  // must not be a dangling reference
  JsonValue v = json_parse(rep.to_json());
  EXPECT_DOUBLE_EQ(
      v.find("runs")->items[0].find("metrics")->find("late")->number, 1.0);
}

// ------------------------------------------------------------ validator ----

TEST(ValidateBenchReport, RejectsBrokenDocuments) {
  EXPECT_NE(validate_bench_report_json("not json"), "");
  EXPECT_NE(validate_bench_report_json("[]"), "");
  EXPECT_NE(validate_bench_report_json(R"({"bench":"x","runs":[]})"), "");
  EXPECT_NE(validate_bench_report_json(
                R"({"schema_version":2,"bench":"x","params":{},"runs":[]})"),
            "");
  EXPECT_NE(
      validate_bench_report_json(
          R"({"schema_version":1,"bench":"x","params":{},"runs":[{}]})"),
      "");
  // Run with a report missing required blocks.
  EXPECT_NE(validate_bench_report_json(
                R"({"schema_version":1,"bench":"x","params":{},)"
                R"("runs":[{"name":"r","report":{"solver":"amg"}}]})"),
            "");
}

TEST(ValidateBenchReport, RequireSolveNeedsIterations) {
  BenchReport no_solve("unit");
  no_solve.add_run("a").metric("seconds", 1.0);
  EXPECT_EQ(validate_bench_report_json(no_solve.to_json()), "");
  EXPECT_NE(validate_bench_report_json(no_solve.to_json(), true), "");

  BenchReport zero_iters("unit");
  SolveReport r = sample_report();
  r.convergence.iterations = 0;
  zero_iters.add_run("a").report(r);
  EXPECT_NE(validate_bench_report_json(zero_iters.to_json(), true), "");
}

TEST(ValidateBenchReport, NullResidualTelemetryValidates) {
  // A diverged solve's residual-derived doubles (per-iteration relres /
  // conv_factor, final_relres) go NaN and the writer emits null for them;
  // the validator must accept that round trip — structural integers like
  // `iteration` stay strictly numeric.
  SolveReport r = sample_report();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  IterationReportEntry it;
  it.iteration = 1;
  it.relres = nan;
  it.conv_factor = nan;
  it.seconds = 0.01;
  it.presmooth_relres = nan;
  it.smoother_contraction = nan;
  r.iterations.push_back(it);
  r.convergence.final_relres = nan;
  BenchReport rpt("unit");
  rpt.add_run("diverged").report(r);
  EXPECT_EQ(validate_bench_report_json(rpt.to_json(), /*require_solve=*/true),
            "");

  // And the parsed document exposes the nulls as NaN, not 0.0.
  const JsonValue v = json_parse(rpt.to_json());
  const JsonValue& entry =
      v.find("runs")->items[0].find("report")->find("iterations")->items[0];
  ASSERT_TRUE(entry.find("relres")->is_null());
  EXPECT_TRUE(std::isnan(entry.find("relres")->number));
  EXPECT_DOUBLE_EQ(entry.find("iteration")->number, 1.0);
}

TEST(ValidateBenchReport, RunLabeledMNeedsPerRhsMetrics) {
  // Multi-RHS sweep runs (label "m") must carry the per-RHS metric trio so
  // benchdiff can gate the amortization curve.
  BenchReport good("multirhs");
  good.add_run("m2")
      .label("m", "2")
      .metric("per_rhs_solve_seconds", 0.5)
      .metric("per_rhs_flops", 1e6)
      .metric("per_rhs_bytes", 1e7);
  EXPECT_EQ(validate_bench_report_json(good.to_json()), "");

  for (const char* missing : {"per_rhs_solve_seconds", "per_rhs_flops",
                              "per_rhs_bytes"}) {
    BenchReport bad("multirhs");
    BenchReport::Run& run = bad.add_run("m2").label("m", "2");
    for (const char* field : {"per_rhs_solve_seconds", "per_rhs_flops",
                              "per_rhs_bytes"})
      if (std::string(field) != missing) run.metric(field, 1.0);
    const std::string err = validate_bench_report_json(bad.to_json());
    EXPECT_NE(err, "");
    EXPECT_NE(err.find(missing), std::string::npos) << err;
  }

  // An unlabeled run carries no such obligation.
  BenchReport plain("unit");
  plain.add_run("a").metric("seconds", 1.0);
  EXPECT_EQ(validate_bench_report_json(plain.to_json()), "");
}

// ----------------------------------------------------------- end to end ----

TEST(SolveReportEndToEnd, AmgRunValidates) {
  CSRMatrix A = lap3d_7pt(8, 8, 8);
  AMGOptions o;
  o.variant = Variant::kOptimized;
  AMGSolver amg(A, o);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult sr = amg.solve(b, x, 1e-8, 100);
  ASSERT_TRUE(sr.converged);

  SolveReport rep = amg.report(&sr);
  EXPECT_EQ(rep.solver, "amg");
  EXPECT_EQ(rep.variant, "optimized");
  EXPECT_GE(rep.num_levels, 2);
  EXPECT_EQ(Int(rep.levels.size()), rep.num_levels);
  EXPECT_GT(rep.operator_complexity, 1.0);
  EXPECT_EQ(rep.convergence.iterations, sr.iterations);
  EXPECT_EQ(Int(rep.convergence.residual_history.size()), sr.iterations);

  BenchReport env("unit");
  env.add_run("lap3d").report(rep);
  EXPECT_EQ(validate_bench_report_json(env.to_json(), true), "");
}

}  // namespace
}  // namespace hpamg
