// Ablation: smoother study of §5.2.
//
// The paper evaluates lexicographic GS (with point-to-point
// synchronization [38]) and its fusion with SpMV [39] against hybrid GS:
// lexicographic GS converges ~1.26x faster on average, but its limited
// parallelism and dependency-graph setup only pay off when the setup is
// amortized over many solves — it won for 5 of the 14 matrices in that
// scenario. This bench reproduces the study: per matrix, AMG iteration
// counts and times with each smoother under (a) one-setup-per-solve and
// (b) setup-amortized accounting, plus the fused GS+SpMV kernel timing.
//
// Usage: bench_ablation_smoother [--scale 0.004] [--repeat N]
//                                [--json out.json]
#include <cmath>
#include <cstdio>

#include "amg/solver.hpp"
#include "amg/spmv.hpp"
#include "bench_util.hpp"
#include "gen/suite.hpp"

using namespace hpamg;
using namespace hpamg::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.004);
  const Repeat repeat(cli);
  const RunEnv env("ablation_smoother");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  sink.report.set_param("scale", scale);
  sink.report.set_param("repeat", repeat.count);

  std::printf("=== Ablation: hybrid GS vs lexicographic GS smoothing"
              " (scale=%.4g, 14 hybrid partitions) ===\n\n", scale);
  print_row({"matrix", "hyb_iters", "lex_iters", "mc_iters", "conv_ratio",
             "hyb_tts", "lex_tts", "lex_amort", "lex_wins"}, 12);

  double geo_conv = 0, geo_mc = 0;
  int count = 0, lex_wins_amortized = 0;
  for (const SuiteEntry& e : table2_suite()) {
    CSRMatrix A = generate_suite_matrix(e.name, scale);
    double tts[4], solve_only[4];
    Int iters[4];
    SolveReport hyb_rep;
    int idx = 0;
    // Fourth config: hybrid GS with GPU-like fine partitioning (AmgX's GS
    // runs with thousands of threads, degrading toward Jacobi — the regime
    // where its MULTICOLOR_GS option converges 1.4x faster).
    for (SmootherKind s : {SmootherKind::kHybridGS, SmootherKind::kLexGS,
                           SmootherKind::kMultiColorGS,
                           SmootherKind::kHybridGS}) {
      AMGOptions o = table3_options(Variant::kOptimized, e.strength_threshold);
      o.smoother = s;
      // Emulate the paper's 14-thread socket: hybrid GS convergence depends
      // on the partition count, not on real parallelism.
      o.gs_partitions = idx == 3 ? 2048 : 14;
      std::vector<double> setup_samples, solve_samples;
      const int passes = repeat.count + (repeat.warmup() ? 1 : 0);
      for (int p = 0; p < passes; ++p) {
        if (!(repeat.warmup() && p == 0)) begin_timed_repeat();
        Timer t;
        AMGSolver amg(A, o);
        const double setup = t.seconds();
        Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
        t.reset();
        SolveResult r = amg.solve(b, x, 1e-7, 300);
        const double solve = t.seconds();
        if (repeat.warmup() && p == 0) continue;
        setup_samples.push_back(setup);
        solve_samples.push_back(solve);
        iters[idx] = r.converged ? r.iterations : 300;
        if (idx == 0 && p + 1 == passes) {
          hyb_rep = amg.report(&r);
        }
      }
      const double setup = sample_stats(setup_samples).median;
      solve_only[idx] = sample_stats(solve_samples).median;
      tts[idx] = setup + solve_only[idx];
      if (idx == 0) {
        hyb_rep.setup_seconds = setup;
        hyb_rep.solve_seconds = solve_only[idx];
      }
      ++idx;
    }
    const double conv_ratio = double(iters[0]) / double(iters[1]);
    const bool wins = solve_only[1] < solve_only[0];
    lex_wins_amortized += wins;
    geo_conv += std::log(std::max(conv_ratio, 1e-3));
    geo_mc += std::log(std::max(double(iters[3]) / double(iters[2]), 1e-3));
    ++count;
    print_row({e.name, fmt_int(iters[0]), fmt_int(iters[1]),
               fmt_int(iters[2]), fmt(conv_ratio, "%.2f"),
               fmt(tts[0], "%.3f"), fmt(tts[1], "%.3f"),
               fmt(solve_only[1], "%.3f"), wins ? "yes" : "no"}, 12);
    sink.report.add_run(e.name)
        .label("matrix", e.name)
        .metric("hybrid_iters", double(iters[0]))
        .metric("lex_iters", double(iters[1]))
        .metric("multicolor_iters", double(iters[2]))
        .metric("convergence_ratio", conv_ratio)
        .metric("hybrid_tts_seconds", tts[0])
        .metric("lex_tts_seconds", tts[1])
        .metric("lex_amortized_seconds", solve_only[1])
        .metric("lex_wins_amortized", wins ? 1.0 : 0.0)
        .report(hyb_rep);
  }
  std::printf("\nGeomean convergence ratio (hybrid iters / lex iters):"
              " %.2fx (paper: 1.26x)\n", std::exp(geo_conv / count));
  std::printf("Matrices where lex GS wins with amortized setup: %d of %d"
              " (paper: 5 of 14)\n", lex_wins_amortized, count);
  std::printf("Geomean GPU-like-hybrid(2048)/multi-color iteration ratio:"
              " %.2fx (AmgX's MULTICOLOR_GS converged 1.4x faster than its"
              " massively-parallel hybrid GS, §5.2)\n\n",
              std::exp(geo_mc / count));

  // Fused GS+SpMV kernel ([39]): sweep + residual maintenance in one pass
  // vs sweep followed by a residual SpMV.
  CSRMatrix A = generate_suite_matrix("lap3d_128", scale);
  LexGS lex(A);
  Vector b(A.nrows, 1.0);
  Vector x1(A.nrows, 0.0), x2(A.nrows, 0.0), r1(A.nrows), r2(A.nrows);
  spmv_residual(A, x2, b, r2);
  Timer t;
  for (int s = 0; s < 10; ++s) {
    lex.sweep(A, b, x1);
    spmv_residual(A, x1, b, r1);
  }
  const double t_sep = t.seconds();
  t.reset();
  for (int s = 0; s < 10; ++s) lex.sweep_fused_residual(A, x2, r2);
  const double t_fused = t.seconds();
  double diff = 0;
  for (Int i = 0; i < A.nrows; ++i) diff = std::max(diff, std::abs(x1[i] - x2[i]));
  std::printf("Fused lex-GS+SpMV [39]: separate %.4fs, fused %.4fs"
              " (%.2fx), max iterate diff %.2e\n", t_sep, t_fused,
              t_sep / t_fused, diff);
  sink.report.add_run("fused_gs_spmv")
      .metric("separate_seconds", t_sep)
      .metric("fused_seconds", t_fused)
      .metric("fused_speedup", t_sep / t_fused)
      .metric("max_iterate_diff", diff);
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  return trace_rc != 0 ? trace_rc : json_rc;
}
