// lint-fixture-path: src/amg/bad_counters.cpp
// Violation fixture: a kernel that accumulates WorkCounters (so it feeds
// the roofline attribution) but opens no TRACE_SPAN, leaving its modeled
// work unjoinable against the trace timeline.
// expect: counters-trace-span
#include "matrix/csr.hpp"
#include "support/counters.hpp"

namespace hpamg {

void counted_untraced_kernel(const Vector& x, Vector& y, WorkCounters* wc) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = 2.0 * x[i];
  if (wc != nullptr) {
    wc->flops += y.size();
    wc->bytes_read += y.size() * 8;
  }
}

}  // namespace hpamg
