// Seeded, deterministic fault injection — the chaos layer behind the
// resilience tests (tests/test_resilience.cpp).
//
// Same overhead discipline as support/trace and support/metrics: the
// injection sites are always compiled in, off by default, and a disabled
// site costs exactly one relaxed atomic load (fault::enabled() is flipped
// only while at least one site is armed, which production runs never do).
//
// A *site* is a string key named after the place it fires ("simmpi.drop",
// "amg.setup.alloc", ...). Arming a site attaches a Schedule — fire after
// the first N hits, fire at most `count` times, fire with probability p —
// evaluated deterministically from a seeded counter-based RNG, so a chaos
// scenario replays identically for a fixed seed regardless of wall-clock
// or allocator noise. (Probabilistic schedules are deterministic per
// site-hit index; cross-thread hit *ordering* is whatever the scheduler
// does, so multi-threaded scenarios pin seeds AND use per-site schedules
// that do not depend on interleaving.)
//
// Injection sites live in:
//   - dist/simmpi.cpp — message delay / drop / delivery reordering /
//     payload bit-flip (silent data corruption);
//   - setup paths — allocation failure (maybe_fail_alloc);
//   - numeric kernels — NaN poke into a vector entry (maybe_poison);
//   - service/service.cpp — "service.admit" (deterministic admission
//     rejection in the queue path) and "service.setup.alloc" (hierarchy
//     build failure), driving the breaker/retry chaos suite.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <new>
#include <string>
#include <string_view>

namespace hpamg::fault {

namespace detail {
extern std::atomic<bool> g_armed;
/// Slow path: registry lookup + schedule evaluation (takes a lock).
bool should_fire_slow(std::string_view site, std::uint64_t* draw);
}  // namespace detail

/// True while at least one site is armed. One relaxed load — the only
/// cost every injection site pays in a fault-free run.
inline bool enabled() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// When a site fires: trigger on hit indices [after_n, after_n + count),
/// each with `probability` (evaluated from a splitmix64 stream seeded by
/// `seed` and the hit index, so replays are exact).
struct Schedule {
  std::uint64_t after_n = 0;  ///< skip this many hits first
  std::uint64_t count = UINT64_MAX;  ///< max number of fires
  double probability = 1.0;   ///< per-hit fire probability once eligible
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
};

/// Arms (or re-arms, resetting its counters) a site. Thread-safe; not
/// intended to race with in-flight solver calls — chaos tests arm before
/// the run and reset after, like trace::enable/disable.
void arm(std::string_view site, const Schedule& schedule = {});

/// Disarms one site (its counters are dropped).
void disarm(std::string_view site);

/// Disarms every site and clears all counters; enabled() becomes false.
void reset();

/// Times the site was evaluated / times it fired (0 for unknown sites).
std::uint64_t hits(std::string_view site);
std::uint64_t fires(std::string_view site);

/// Hot-path check, called at every injection site. `draw` (optional)
/// receives a deterministic 64-bit value tied to the firing hit — sites
/// use it to pick a victim index / bit / delay without extra RNG state.
inline bool should_fire(std::string_view site, std::uint64_t* draw = nullptr) {
  if (!enabled()) return false;
  return detail::should_fire_slow(site, draw);
}

// ---- canned injection helpers --------------------------------------------

/// Allocation-failure site: throws std::bad_alloc when the site fires.
inline void maybe_fail_alloc(std::string_view site) {
  if (!enabled()) return;
  if (detail::should_fire_slow(site, nullptr))
    throw std::bad_alloc();
}

/// Numeric-corruption site: overwrites one entry of v (chosen by the
/// deterministic draw) with NaN, modeling silent data corruption surfacing
/// in a kernel. No-op on empty vectors.
inline void maybe_poison(std::string_view site, double* v, std::size_t n) {
  if (!enabled() || n == 0) return;
  std::uint64_t draw = 0;
  if (detail::should_fire_slow(site, &draw))
    v[draw % n] = std::nan("");
}

}  // namespace hpamg::fault
