// Debug invariant checkers: structural validators for the data structures
// the solver's correctness rests on, compiled to no-ops in release builds.
//
// Two layers:
//
//  - The validator *functions* (csr_well_formed, interp_shape, partition,
//    halo_counts_mirror, ...) are always compiled and callable from any
//    build — tests exercise them directly and corrupted inputs must yield
//    the documented Status (kInvalidInput), never UB or silence. Each
//    returns Status::kOk or records a human-readable diagnosis retrievable
//    via last_error() (thread-local, so concurrent solves don't interleave
//    messages).
//
//  - The call *sites* at level-build and solver-entry boundaries go through
//    HPAMG_CHECK_INVARIANT, which compiles to nothing unless the build sets
//    -DHPAMG_CHECK=ON (CMake option -> HPAMG_CHECK_ENABLED). In an enabled
//    build the depth is chosen at runtime by the HPAMG_CHECK_LEVEL
//    environment variable: 0 = off, 1 = cheap structural checks (shape and
//    index-range sweeps), 2 = full (adds value scans and cross-rank count
//    exchanges). Default when compiled in is 2 — a check build is expected
//    to check.
//
// Layering: this header may use matrix/ types but must not include amg/ or
// dist/ (enforced by tools/hpamg_lint include-hygiene). Domain aggregates —
// whole-hierarchy consistency, distributed ownership, halo symmetry — are
// composed from these primitives inside amg/ and dist/ themselves.
#pragma once

#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "support/common.hpp"
#include "support/error.hpp"

namespace hpamg::check {

#if defined(HPAMG_CHECK_ENABLED)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

/// Runtime checking depth (HPAMG_CHECK_LEVEL). Ordered: kFull implies
/// kCheap.
enum class Depth : int { kOff = 0, kCheap = 1, kFull = 2 };

/// The process-wide depth: parsed from HPAMG_CHECK_LEVEL once on first
/// use; defaults to kFull when the env var is absent or malformed.
Depth depth();

/// True when an enabled build should run checks of at least `min` depth.
/// In a non-HPAMG_CHECK build this is constant-false and the compiler
/// removes the guarded call entirely.
inline bool active(Depth min = Depth::kCheap) {
  if constexpr (!kCompiled) return false;
  return static_cast<int>(depth()) >= static_cast<int>(min);
}

/// Diagnosis recorded by the most recent failing validator on this thread
/// ("" if the last validator passed).
const std::string& last_error();

namespace detail {
/// Records `msg` as last_error() and returns `s` (validator failure path).
Status fail(Status s, std::string msg);
}  // namespace detail

// ------------------------------------------------------------------------
// Validators (always compiled; every failure returns Status::kInvalidInput
// with a diagnosis in last_error())
// ------------------------------------------------------------------------

/// CSR well-formedness: rowptr has size nrows+1 with rowptr[0] == 0 and
/// monotone entries, colidx/values sized to nnz, every column index in
/// [0, ncols). With `require_sorted_unique`, column indices must also be
/// strictly ascending within each row (the contract all optimized kernels
/// assume). `what` labels the matrix in the diagnosis.
Status csr_well_formed(const CSRMatrix& A, const char* what,
                       bool require_sorted_unique = true);

/// Every stored value is finite (kFull-depth scan).
Status csr_finite(const CSRMatrix& A, const char* what);

/// Interpolation shape agreement: P maps a coarse space of `coarse_rows`
/// unknowns into a fine space of `fine_rows` (P is fine_rows x coarse_rows).
/// The Galerkin size chain follows: A_{l+1} must have coarse_rows rows.
Status interp_shape(const CSRMatrix& P, Int fine_rows, Int coarse_rows,
                    const char* what);

/// Contiguous partition sanity: `starts` has nranks+1 entries, begins at 0,
/// is non-decreasing, and ends at `total`.
Status partition(const std::vector<Long>& starts, int nranks, Long total,
                 const char* what);

/// Distributed-ownership check for a compressed off-diagonal column map:
/// sorted, unique, every global id in [0, global_cols) and *outside* this
/// rank's own span [own_first, own_last) — an owned column appearing in the
/// halo means the diag/offd split is corrupt.
Status colmap_ownership(const std::vector<Long>& colmap, Long own_first,
                        Long own_last, Long global_cols, const char* what);

/// Halo-exchange symmetry, rank-local view after an all-to-all count
/// exchange: `peer_sends[p]` is the element count rank p claims it ships to
/// this rank, `recv_counts[p]` the count this rank's pattern expects from
/// rank p. The pattern is symmetric iff the two agree for every peer —
/// a mismatch means send/recv lists do not mirror across ranks.
Status halo_counts_mirror(const std::vector<Long>& peer_sends,
                          const std::vector<Long>& recv_counts, int my_rank,
                          const char* what);

/// Solver-entry vector shape check: b and x must both have `n` elements.
Status vectors_match(std::size_t n, std::size_t b_size, std::size_t x_size,
                     const char* what);

/// Kernel no-aliasing precondition: `out` must not be the same buffer as
/// `in`. The fused residual kernels read the input vector at arbitrary
/// column indices while writing the output row-by-row, so out == in would
/// read partially overwritten data (out aliasing the *rhs* vector is safe
/// there — each row reads b[i] before writing r[i] — and is deliberately
/// not rejected). Buffers are distinct std::vector allocations, so pointer
/// equality is the whole aliasing question.
Status distinct_buffers(const void* out, const void* in, const char* what);

// ------------------------------------------------------------------------
// Enforcement at call sites
// ------------------------------------------------------------------------

/// Escalates a failed validator into the existing error taxonomy: throws
/// SolverError carrying the validator's Status and diagnosis. No-op on kOk.
inline void enforce(Status s) {
  if (s != Status::kOk) throw SolverError(s, last_error());
}

}  // namespace hpamg::check

/// Invariant call site: evaluates `expr` (a check:: validator call) and
/// throws SolverError(status, diagnosis) on violation — but only in a
/// -DHPAMG_CHECK=ON build running at >= `min_depth`; otherwise the whole
/// statement, including `expr`'s argument evaluation, compiles away.
#if defined(HPAMG_CHECK_ENABLED)
#define HPAMG_CHECK_INVARIANT(min_depth, expr)              \
  do {                                                      \
    if (::hpamg::check::active(min_depth)) {                \
      ::hpamg::check::enforce(expr);                        \
    }                                                       \
  } while (0)
#else
#define HPAMG_CHECK_INVARIANT(min_depth, expr) \
  do {                                         \
  } while (0)
#endif
