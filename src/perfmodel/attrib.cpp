#include "perfmodel/attrib.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "perfmodel/network.hpp"
#include "support/metrics.hpp"

namespace hpamg::attrib {

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::pair<std::string, int>, KernelStats> cells;
  MachineModel model = endeavor_rank();
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void record(std::string_view kernel, int level, double seconds,
            const WorkCounters& wc) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  KernelStats& s = r.cells[{std::string(kernel), level}];
  ++s.calls;
  s.seconds += seconds;
  s.work += wc;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.cells.clear();
}

void set_machine(const MachineModel& m) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.model = m;
}

MachineModel machine() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.model;
}

std::vector<RooflineEntry> snapshot(const MachineModel& m) {
  std::map<std::pair<std::string, int>, KernelStats> cells;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    cells = r.cells;
  }
  std::vector<RooflineEntry> out;
  const double bw_roof = m.stream_bw_bytes_per_s * m.sparse_efficiency;
  for (const auto& [key, s] : cells) {
    // Zero bytes (counter-less call) or zero time (clock resolution)
    // would produce meaningless fractions; skip rather than fabricate.
    if (s.work.bytes_total() == 0 || s.seconds <= 0.0) continue;
    RooflineEntry e;
    e.kernel = key.first;
    e.level = key.second;
    e.calls = s.calls;
    e.seconds = s.seconds;
    e.flops = s.work.flops;
    e.bytes = s.work.bytes_total();
    e.achieved_bw_bytes_per_s = double(e.bytes) / e.seconds;
    e.modeled_seconds = m.seconds(s.work);
    e.bw_fraction =
        std::min(1.0, e.achieved_bw_bytes_per_s / std::max(bw_roof, 1.0));
    e.efficiency =
        std::min(1.0, e.modeled_seconds / std::max(e.seconds, 1e-300));
    if (e.bw_fraction <= 0.0 || e.efficiency <= 0.0) continue;
    out.push_back(std::move(e));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RooflineEntry& a, const RooflineEntry& b) {
                     return a.seconds > b.seconds;
                   });
  return out;
}

std::vector<RooflineEntry> snapshot() { return snapshot(machine()); }

void publish_metrics(const std::vector<RooflineEntry>& entries) {
  if (!metrics::enabled()) return;
  // Level-summed per kernel: the gauges are for benchdiff trend lines, and
  // a per-level explosion there would drown the envelope diff.
  std::map<std::string, RooflineEntry> by_kernel;
  for (const RooflineEntry& e : entries) {
    RooflineEntry& k = by_kernel[e.kernel];
    k.seconds += e.seconds;
    k.bytes += e.bytes;
    k.modeled_seconds += e.modeled_seconds;
  }
  for (const auto& [name, k] : by_kernel) {
    if (k.seconds <= 0.0) continue;
    const std::string base = "perf.kernel." + name;
    metrics::gauge(base + ".seconds").set(k.seconds);
    const MachineModel m = machine();
    const double bw_roof =
        std::max(m.stream_bw_bytes_per_s * m.sparse_efficiency, 1.0);
    metrics::gauge(base + ".bw_fraction")
        .set(std::min(1.0, double(k.bytes) / k.seconds / bw_roof));
    metrics::gauge(base + ".efficiency")
        .set(std::min(1.0, k.modeled_seconds / k.seconds));
  }
}

bool load_calibration_json(std::string_view json_text, MachineModel* mm,
                           NetworkModel* nm, std::string* err) {
  JsonValue doc;
  try {
    doc = json_parse(json_text);
  } catch (const std::exception& e) {
    if (err != nullptr) *err = e.what();
    return false;
  }
  if (!doc.is_object()) {
    if (err != nullptr) *err = "calibration: top level is not an object";
    return false;
  }
  auto num = [err](const JsonValue& obj, const char* key, double* out) {
    const JsonValue* v = obj.find(key);
    if (v == nullptr) return true;  // optional: keep the default
    if (!v->is_number()) {
      if (err != nullptr)
        *err = std::string("calibration: ") + key + " is not a number";
      return false;
    }
    *out = v->number;
    return true;
  };
  MachineModel m = mm != nullptr ? *mm : endeavor_rank();
  NetworkModel n = nm != nullptr ? *nm : NetworkModel{};
  if (const JsonValue* jm = doc.find("machine")) {
    if (!jm->is_object()) {
      if (err != nullptr) *err = "calibration: machine is not an object";
      return false;
    }
    if (const JsonValue* name = jm->find("name"))
      if (name->is_string()) m.name = name->text;
    if (!num(*jm, "stream_bw_bytes_per_s", &m.stream_bw_bytes_per_s) ||
        !num(*jm, "peak_flops", &m.peak_flops) ||
        !num(*jm, "sparse_efficiency", &m.sparse_efficiency) ||
        !num(*jm, "branch_miss_cost_s", &m.branch_miss_cost_s) ||
        !num(*jm, "branch_miss_rate", &m.branch_miss_rate))
      return false;
    if (m.stream_bw_bytes_per_s <= 0.0 || m.peak_flops <= 0.0) {
      if (err != nullptr)
        *err = "calibration: machine bandwidth/flops must be positive";
      return false;
    }
  }
  if (const JsonValue* jn = doc.find("network")) {
    if (!jn->is_object()) {
      if (err != nullptr) *err = "calibration: network is not an object";
      return false;
    }
    double eager = double(n.eager_limit_bytes);
    if (!num(*jn, "overhead_s", &n.overhead_s) ||
        !num(*jn, "peak_bw_bytes_per_s", &n.peak_bw_bytes_per_s) ||
        !num(*jn, "setup_cost_s", &n.setup_cost_s) ||
        !num(*jn, "rendezvous_extra_s", &n.rendezvous_extra_s) ||
        !num(*jn, "eager_limit_bytes", &eager))
      return false;
    n.eager_limit_bytes = std::uint64_t(eager);
  }
  if (mm != nullptr) *mm = m;
  if (nm != nullptr) *nm = n;
  return true;
}

Scope::Scope(std::string_view kernel, int level, const WorkCounters* wc,
             Clock clock)
    : level_(level), wc_(wc), clock_(clock) {
  if (!metrics::enabled()) return;  // keep the off-path to one relaxed load
  active_ = true;
  kernel_.assign(kernel.data(), kernel.size());
  if (wc_ != nullptr) start_ = *wc_;
  if (clock_ == Clock::kCpu)
    cpu_.reset();
  else
    wall_.reset();
}

void Scope::set_work(const WorkCounters& wc) {
  analytic_ = wc;
  analytic_set_ = true;
}

Scope::~Scope() {
  if (!active_) return;
  const double sec =
      clock_ == Clock::kCpu ? cpu_.seconds() : wall_.seconds();
  WorkCounters delta;
  if (wc_ != nullptr) {
    delta = *wc_;
    delta.flops -= start_.flops;
    delta.bytes_read -= start_.bytes_read;
    delta.bytes_written -= start_.bytes_written;
    delta.branches -= start_.branches;
    delta.hash_probes -= start_.hash_probes;
  } else if (analytic_set_) {
    delta = analytic_;
  }
  record(kernel_, level_, sec, delta);
}

}  // namespace hpamg::attrib
