// Interpolation truncation (SC'15 §3.1.2).
//
// For each row, entries with absolute value below
//     max(trunc_fact * |a_{i(1)}|, |a_{i(max_elmts)}|)
// are dropped — i.e. keep entries within trunc_fact of the row max, but at
// most max_elmts of them — and the surviving entries are rescaled so the
// row sum is preserved (HYPRE's convention, which keeps interpolation of
// constants exact). The optimized interpolation constructors apply this
// row-by-row, fused with construction; truncate_interpolation() is the
// standalone (baseline) version that re-reads the whole matrix.
#pragma once

#include "matrix/csr.hpp"
#include "support/counters.hpp"

namespace hpamg {

struct TruncationOptions {
  double trunc_fact = 0.1;  ///< relative threshold (0 disables)
  Int max_elmts = 4;        ///< max entries kept per row (0 disables)
};

/// Truncates one row in place in (cols, vals); returns the new length.
/// Used by the fused construction path.
Int truncate_row(Int* cols, double* vals, Int len,
                 const TruncationOptions& opt);

/// Long-column overload (distributed interpolation rows carry global
/// coarse column ids).
Int truncate_row(Long* cols, double* vals, Int len,
                 const TruncationOptions& opt);

/// Standalone truncation pass over a full interpolation matrix (baseline:
/// construct everything, then truncate).
CSRMatrix truncate_interpolation(const CSRMatrix& P,
                                 const TruncationOptions& opt,
                                 WorkCounters* wc = nullptr);

}  // namespace hpamg
