// Smoother and SpMV kernel tests, including the baseline/optimized hybrid
// Gauss-Seidel equivalence (§3.2) and the fused/identity-block SpMV
// variants (§3.2-3.3).
#include <gtest/gtest.h>

#include <cmath>

#include "amg/smoother.hpp"
#include "amg/spmv.hpp"
#include "matrix/permute.hpp"
#include "gen/stencil.hpp"
#include "matrix/transpose.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

using test::random_spd;

double residual_norm(const CSRMatrix& A, const Vector& x, const Vector& b) {
  Vector r(A.nrows);
  spmv_residual(A, x, b, r);
  return norm2(r);
}

// ------------------------------------------------------------- smoothers ---

TEST(Jacobi, ReducesResidualOnSpd) {
  CSRMatrix A = lap2d_5pt(20, 20);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), temp(A.nrows);
  double prev = residual_norm(A, x, b);
  for (int s = 0; s < 5; ++s) {
    jacobi_sweep(A, b, x, temp);
    const double cur = residual_norm(A, x, b);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Jacobi, RowRangeOnlyTouchesRange) {
  CSRMatrix A = lap2d_5pt(10, 10);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), temp(A.nrows);
  jacobi_sweep(A, b, x, temp, 2.0 / 3.0, 0, 50);
  for (Int i = 50; i < A.nrows; ++i) EXPECT_DOUBLE_EQ(x[i], 0.0);
  bool any = false;
  for (Int i = 0; i < 50; ++i) any |= x[i] != 0.0;
  EXPECT_TRUE(any);
}

class GsSweepEquiv : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GsSweepEquiv, OptimizedMatchesBaselineSweep) {
  // Same hybrid semantics -> identical iterates (modulo FP associativity in
  // the per-row accumulation, which both do left-to-right over a
  // reordered set; tolerance covers it).
  CSRMatrix A = random_spd(150, 4, GetParam());
  A.sort_rows();
  HybridGSBaseline base(A);
  HybridGSOptimized opt(A);
  Vector b(A.nrows, 1.0);
  Vector xb(A.nrows, 0.5), xo(A.nrows, 0.5), tb(A.nrows), to(A.nrows);
  for (int s = 0; s < 3; ++s) {
    base.sweep(A, b, xb, tb, true);
    opt.sweep(b, xo, to, 0, A.nrows, true);
    for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(xb[i], xo[i], 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GsSweepEquiv,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(HybridGs, CfOrderEquivalence) {
  // Baseline C-then-F via per-row branch == optimized C-then-F via ranges,
  // on a CF-permuted operator where C rows come first.
  CSRMatrix A = random_spd(120, 4, 17);
  A.sort_rows();
  const Int nc = 50;
  CFMarker cf(120);
  for (Int i = 0; i < 120; ++i) cf[i] = i < nc ? 1 : -1;
  HybridGSBaseline base(A);
  HybridGSOptimized opt(A);
  Vector b(A.nrows, 2.0);
  Vector xb(A.nrows, 0.0), xo(A.nrows, 0.0), tb(A.nrows), to(A.nrows);
  base.sweep(A, b, xb, tb, true, cf.data(), 1);
  base.sweep(A, b, xb, tb, true, cf.data(), -1);
  opt.sweep(b, xo, to, 0, nc, true);
  opt.sweep(b, xo, to, nc, A.nrows, true);
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(xb[i], xo[i], 1e-11);
}

TEST(HybridGs, ZeroInitSkipMatchesFullSweep) {
  // With x == 0, skipping upper/external terms changes nothing (§3.2).
  CSRMatrix A = random_spd(100, 4, 23);
  A.sort_rows();
  HybridGSOptimized gs(A);
  Vector b(A.nrows, 1.0);
  Vector x1(A.nrows, 0.0), x2(A.nrows, 0.0), t1(A.nrows), t2(A.nrows);
  gs.sweep(b, x1, t1, 0, A.nrows, true, /*zero_init=*/false);
  gs.sweep(b, x2, t2, 0, A.nrows, true, /*zero_init=*/true);
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(x1[i], x2[i], 1e-12);
}

TEST(HybridGs, ConvergesAsASolver) {
  CSRMatrix A = lap2d_5pt(16, 16);
  HybridGSOptimized gs(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  // Plain GS converges at 1 - O(h^2) on Laplacians: expect a steady but
  // modest reduction (AMG exists precisely because this is slow).
  const double r0 = residual_norm(A, x, b);
  for (int s = 0; s < 100; ++s) gs.sweep(b, x, t, 0, A.nrows, true);
  EXPECT_LT(residual_norm(A, x, b), 0.5 * r0);
}

TEST(HybridGs, BackwardSweepWorks) {
  CSRMatrix A = random_spd(80, 4, 29);
  A.sort_rows();
  HybridGSOptimized gs(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  // One backward sweep can transiently raise the 2-norm; several must
  // reduce it (GS decreases the energy norm monotonically on SPD).
  const double r0 = residual_norm(A, x, b);
  for (int s = 0; s < 10; ++s) gs.sweep(b, x, t, 0, A.nrows, /*forward=*/false);
  EXPECT_LT(residual_norm(A, x, b), r0);
}

TEST(HybridGs, BranchCountersFavorOptimized) {
  CSRMatrix A = lap2d_5pt(30, 30);
  HybridGSBaseline base(A);
  HybridGSOptimized opt(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), t(A.nrows);
  WorkCounters wb, wo;
  base.sweep(A, b, x, t, true, nullptr, 0, &wb);
  opt.sweep(b, x, t, 0, A.nrows, true, false, &wo);
  EXPECT_GT(wb.branches, 0u);
  EXPECT_EQ(wo.branches, 0u);  // the partitioned plan removed them all
}

TEST(LexGs, LevelsRespectDependenciesAndConverge) {
  CSRMatrix A = lap2d_5pt(20, 20);
  LexGS lex(A);
  EXPECT_GT(lex.num_levels(), 1);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  const double r0 = residual_norm(A, x, b);
  for (int s = 0; s < 100; ++s) lex.sweep(A, b, x);
  EXPECT_LT(residual_norm(A, x, b), 0.5 * r0);
}

TEST(LexGs, MatchesSequentialGaussSeidel) {
  // Level-scheduled execution must reproduce the sequential lexicographic
  // iterate exactly (dependencies honored).
  CSRMatrix A = random_spd(60, 3, 31);
  A.sort_rows();
  LexGS lex(A);
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0), ref(A.nrows, 0.0);
  lex.sweep(A, b, x);
  for (Int i = 0; i < A.nrows; ++i) {
    double acc = b[i];
    double diag = 1.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const Int j = A.colidx[k];
      if (j == i)
        diag = A.values[k];
      else
        acc -= A.values[k] * ref[j];
    }
    ref[i] = acc / diag;
  }
  for (Int i = 0; i < A.nrows; ++i) ASSERT_NEAR(x[i], ref[i], 1e-12);
}

// ----------------------------------------------------------------- spmv ----

TEST(Spmv, MatchesDenseReference) {
  CSRMatrix A = test::random_sparse(40, 30, 5, 2);
  Vector x(30), y(40);
  for (Int i = 0; i < 30; ++i) x[i] = 0.1 * i - 1.0;
  spmv(A, x, y);
  DenseMatrix d = DenseMatrix::from_csr(A);
  for (Int i = 0; i < 40; ++i) {
    double ref = 0;
    for (Int j = 0; j < 30; ++j) ref += d(i, j) * x[j];
    ASSERT_NEAR(y[i], ref, 1e-12);
  }
}

TEST(Spmv, TransposeMatchesMaterializedTranspose) {
  CSRMatrix A = test::random_sparse(25, 35, 4, 3);
  Vector x(25), y1(35), y2(35);
  for (Int i = 0; i < 25; ++i) x[i] = std::sin(double(i));
  spmv_transpose(A, x, y1);
  spmv(transpose_parallel(A), x, y2);
  for (Int i = 0; i < 35; ++i) ASSERT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Spmv, FusedResidualNormMatchesUnfused) {
  CSRMatrix A = random_spd(100, 4, 5);
  Vector x(100), b(100, 1.0), r1(100), r2(100);
  for (Int i = 0; i < 100; ++i) x[i] = 0.01 * i;
  spmv_residual(A, x, b, r1);
  const double n2 = spmv_residual_norm2sq_fused(A, x, b, r2);
  EXPECT_NEAR(n2, dot(r1, r1), 1e-10 * std::max(1.0, dot(r1, r1)));
  for (Int i = 0; i < 100; ++i) ASSERT_DOUBLE_EQ(r1[i], r2[i]);
}

TEST(Spmv, FusedSavesOnePassOfTraffic) {
  CSRMatrix A = random_spd(200, 4, 6);
  Vector x(200, 0.5), b(200, 1.0), r(200);
  WorkCounters fused, unfused;
  spmv_residual_norm2sq_fused(A, x, b, r, &fused);
  spmv_residual(A, x, b, r, &unfused);
  dot(r, r, &unfused);
  EXPECT_LT(fused.bytes_total(), unfused.bytes_total());
}

TEST(Spmv, IdentityBlockInterpMatchesFullP) {
  // P = [I; Pf]; x += P e must equal the identity-block kernel.
  const Int n = 50, nc = 20;
  CSRMatrix Pf = test::random_sparse(n - nc, nc, 3, 7);
  std::vector<Triplet> trip;
  for (Int i = 0; i < nc; ++i) trip.push_back({i, i, 1.0});
  for (Int i = 0; i < Pf.nrows; ++i)
    for (Int k = Pf.rowptr[i]; k < Pf.rowptr[i + 1]; ++k)
      trip.push_back({nc + i, Pf.colidx[k], Pf.values[k]});
  CSRMatrix P = CSRMatrix::from_triplets(n, nc, std::move(trip));

  Vector e(nc), x1(n, 0.25), x2(n, 0.25), tmp(n);
  for (Int i = 0; i < nc; ++i) e[i] = 0.3 * i - 1.0;
  spmv(P, e, tmp);
  for (Int i = 0; i < n; ++i) x1[i] += tmp[i];
  interp_add_identity_block(Pf, e, x2, nc);
  for (Int i = 0; i < n; ++i) ASSERT_NEAR(x1[i], x2[i], 1e-13);

  // Restriction side: rc = P^T r.
  Vector r(n), rc1(nc), rc2(nc);
  for (Int i = 0; i < n; ++i) r[i] = std::cos(double(i));
  spmv_transpose(P, r, rc1);
  CSRMatrix PfT = transpose_parallel(Pf);
  restrict_identity_block(PfT, r, rc2, nc);
  for (Int i = 0; i < nc; ++i) ASSERT_NEAR(rc1[i], rc2[i], 1e-13);
}

TEST(Spmv, SizeChecksThrow) {
  CSRMatrix A = random_spd(10, 2, 8);
  Vector small(5), y(10);
  EXPECT_THROW(spmv(A, small, y), std::invalid_argument);
}

}  // namespace
}  // namespace hpamg
