// AMG hierarchy: options, per-level data, and the setup phase.
//
// The hierarchy is built in one of two variants that mirror the paper's
// comparison (SC'15 §5.2):
//
//  kBaseline ("HYPRE_base"): serial strength assembly, sequential-RNG PMIS,
//    extended+i built fully then truncated in a separate pass, HYPRE-style
//    fused RAP (Fig 1b) on the full triple product, no CF reordering, full
//    P kept and transposed again on every restriction, branchy hybrid GS.
//
//  kOptimized ("HYPRE_opt"): prefix-sum strength, parallel-RNG PMIS,
//    CF-reordered operators (coarse points first), interpolation built with
//    fused truncation, identity-block RAP touching only the F x F block
//    (Fig 1a fusion inside), R = P^T kept from setup, partitioned hybrid GS.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "amg/interp_extpi.hpp"
#include "amg/interp_multipass.hpp"
#include "amg/pmis.hpp"
#include "amg/smoother.hpp"
#include "amg/strength.hpp"
#include "amg/truncate.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "matrix/permute.hpp"
#include "support/counters.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace hpamg {

struct CycleTelemetryHook;  // amg/telemetry.hpp

enum class Variant { kBaseline, kOptimized };
enum class InterpKind { kDirect, kExtPI, kExtPI2Stage, kMultipass };
enum class SmootherKind { kHybridGS, kJacobi, kLexGS, kMultiColorGS };

struct AMGOptions {
  Variant variant = Variant::kOptimized;
  Int max_levels = 7;        ///< Table 3 single-node; 16 for multi-node
  Int coarse_size = 64;      ///< direct LU below this many rows
  StrengthOptions strength;  ///< alpha = 0.25/0.6, max_row_sum = 0.8
  InterpKind interp = InterpKind::kExtPI;
  /// Optimized variant only: build extended+i on 3-way partitioned rows
  /// (§3.1.2) instead of the generic merge-walk builder. Same operator;
  /// fewer classification branches.
  bool partitioned_interp = true;
  /// Aggressive (distance-2 PMIS) coarsening on this many top levels,
  /// paired with multipass or 2-stage extended+i interpolation (Table 4:
  /// mp and 2s-ei schemes use 1).
  Int num_aggressive_levels = 0;
  TruncationOptions truncation;  ///< trunc_fact = 0.1, max_elmts = 4
  SmootherKind smoother = SmootherKind::kHybridGS;
  /// Hybrid-GS partition count (Jacobi boundaries across partitions);
  /// 0 = OpenMP thread count. Set to 14 to emulate the paper's socket on
  /// any host — convergence depends on the partitioning only.
  Int gs_partitions = 0;
  Int num_sweeps = 1;
  /// Cycle index gamma: 1 = V-cycle (the paper's configuration), 2 =
  /// W-cycle (more coarse-grid work per cycle, sometimes fewer cycles).
  Int cycle_gamma = 1;
  bool cf_smoothing = true;  ///< C-then-F pre-smoothing, F-then-C post
  std::uint64_t seed = 1234;
  RngKind rng = RngKind::kParallelCounter;
};

/// One multigrid level. The coarsest level holds only A (and the LU).
struct Level {
  CSRMatrix A;    ///< level operator (CF-permuted in kOptimized)
  Int n = 0;      ///< rows of A
  Int nc = 0;     ///< coarse points (rows of the next level)

  // --- baseline representation ---
  CSRMatrix P;   ///< full interpolation (rows in A's ordering)
  CFMarker cf;   ///< CF marker in A's ordering (for branchy CF smoothing)

  // --- optimized representation ---
  CSRMatrix Pf;        ///< fine block of P = [I; Pf]
  CSRMatrix PfT;       ///< its transpose, kept from setup (R reuse)
  CFPermutation perm;  ///< this level's CF permutation (new -> old)

  // --- smoother plans ---
  std::unique_ptr<HybridGSBaseline> gs_base;
  std::unique_ptr<HybridGSOptimized> gs_opt;
  std::unique_ptr<LexGS> lexgs;
  std::unique_ptr<MultiColorGS> mcgs;

  // --- solve-phase workspace (sized at setup; no allocation per cycle) ---
  Vector b, x, temp, r, rc_pre;
};

struct LevelStats {
  Int rows = 0;
  Long nnz = 0;
  Int coarse = 0;
  Long interp_nnz = 0;
};

/// Analytic memory footprint of one level, by category (the report's
/// Table 2 columns): operator = A, interp = P (baseline) or Pf + kept
/// P^T (optimized), smoother = GS plans (plus the coarse LU on the last
/// level), workspace = the per-cycle solve vectors.
struct LevelMemory {
  std::uint64_t operator_bytes = 0;
  std::uint64_t interp_bytes = 0;
  std::uint64_t smoother_bytes = 0;
  std::uint64_t workspace_bytes = 0;
};

/// Per-level multi-RHS solve workspace: the batched analogue of the
/// Level::{b,x,temp,r,rc_pre} scratch vectors, sized lazily for a given
/// column count by ensure_multi_workspace (cycle.hpp). Kept out of Level so
/// single-RHS solves pay nothing for the multi-RHS capability.
struct MultiRhsWorkspace {
  Int m = 0;  ///< column count the per-level multivectors are sized for
  std::vector<MultiVector> b, x, temp, r, rc_pre;  ///< indexed per level
};

struct Hierarchy {
  AMGOptions opts;
  std::vector<Level> levels;
  LUSolver coarse_lu;
  MultiRhsWorkspace multi_ws;  ///< lazily sized; see ensure_multi_workspace
  PhaseTimes setup_times;   ///< Strength+Coarsen / Interp / RAP / Setup_etc
  WorkCounters setup_work;
  std::vector<LevelStats> stats;
  /// Setup incidents (degenerate coarse operator -> level cap, regularized
  /// coarse solve, ...) — merged into the report's `status` block.
  std::vector<std::string> events;
  /// Non-owning per-cycle telemetry sink (amg/telemetry.hpp), loaned by the
  /// solver for the duration of one solve; null when telemetry is off.
  CycleTelemetryHook* telemetry = nullptr;

  Int num_levels() const { return Int(levels.size()); }
  /// Σ_l nnz(A_l) / nnz(A_0) — the paper's operator complexity metric.
  double operator_complexity() const;
  /// Σ_l n_l / n_0.
  double grid_complexity() const;
  /// Total bytes held by operators/interp/smoother plans.
  std::uint64_t footprint_bytes() const;
  /// Per-level footprint split by category (includes the coarse LU and the
  /// solve workspace, which footprint_bytes() predates and excludes).
  std::vector<LevelMemory> memory_by_level() const;
};

/// Runs the full setup phase on A.
Hierarchy build_hierarchy(const CSRMatrix& A, const AMGOptions& opts);

/// Structural consistency of a built hierarchy (support/check.hpp
/// invariant layer): every level operator well-formed and square, the
/// interpolation operators' shapes agreeing with their level's (n, nc),
/// and the Galerkin size chain levels[l+1].n == levels[l].nc intact.
/// Returns kOk or kInvalidInput with the diagnosis in check::last_error().
/// Always compiled (tests call it directly); build_hierarchy invokes it at
/// full checking depth in -DHPAMG_CHECK=ON builds.
Status check_hierarchy(const Hierarchy& h);

/// Rows of A whose diagonal entry is missing, zero, or non-finite — such
/// rows break the smoothers (divide by diag) and the dense coarse LU.
/// Optionally reports the largest healthy |diagonal| for shift scaling.
Int count_degenerate_diag(const CSRMatrix& A,
                          double* max_abs_diag = nullptr);

/// Returns A with every degenerate diagonal replaced by `shift`
/// (structurally inserted when absent) and non-finite off-diagonals
/// zeroed — the regularized-coarse-solve fallback shared by the
/// single-node and distributed setups.
CSRMatrix regularize_diagonal(const CSRMatrix& A, double shift);

/// Human-readable hierarchy table (one line per level).
std::string hierarchy_summary(const Hierarchy& h);

}  // namespace hpamg
