// Multi-RHS amortization sweep: batched standalone-AMG solves of the HPCG
// 27-point Laplacian for m simultaneous right-hand sides.
//
// The batched path streams every level operator ONCE per V-cycle for all m
// columns (amg/multivector.hpp), so the per-RHS matrix traffic — the
// dominant cost of a bandwidth-bound AMG cycle — drops roughly as 1/m
// while the per-RHS vector traffic stays flat. The table below shows the
// measured amortization: per-RHS solve time, flops, and bytes, all of
// which must fall monotonically from m=1 toward the asymptote.
//
// m=1 runs through the same batched kernels with block width 1 and is the
// perf-gate anchor: it must stay within benchdiff tolerance of the scalar
// kernels' committed baseline.
//
// Usage: bench_multirhs [--n 12] [--m-list 1,2,4,8,16] [--rtol 1e-6]
//                       [--repeat N] [--json out.json] [--trace out.json]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gen/stencil.hpp"
#include "support/metrics.hpp"

using namespace hpamg;
using namespace hpamg::bench;

namespace {

/// "1,2,4,8" -> {1,2,4,8}; exits on junk so a typo cannot silently bench
/// the default sweep.
std::vector<Int> parse_m_list(const std::string& s) {
  std::vector<Int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    const std::string tok = s.substr(pos, next - pos);
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || *end != '\0' || v < 1) {
      std::fprintf(stderr, "bad --m-list entry \"%s\"\n", tok.c_str());
      std::exit(2);
    }
    out.push_back(Int(v));
    pos = next + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "--m-list is empty\n");
    std::exit(2);
  }
  return out;
}

/// Deterministic per-column RHS: column j is a distinct smooth+oscillatory
/// field so no two columns converge identically.
MultiVector make_rhs(Int n, Int m) {
  MultiVector B(n, m);
  for (Int i = 0; i < n; ++i) {
    double* r = B.row(i);
    for (Int j = 0; j < m; ++j)
      r[j] = 1.0 + 0.5 * std::sin(0.01 * double(i) * double(j + 1)) +
             0.001 * double(j);
  }
  return B;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const Int n = Int(cli.get_int("n", 12));
  const double rtol = cli.get_double("rtol", 1e-6);
  const std::vector<Int> ms = parse_m_list(cli.get("m-list", "1,2,4,8,16"));
  const Repeat repeat(cli);
  const RunEnv env("multirhs");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  LiveSink live_sink(cli);
  sink.report.set_param("n", long(n));
  sink.report.set_param("rtol", rtol);
  sink.report.set_param("repeat", repeat.count);
  sink.report.set_param("m_list", cli.get("m-list", "1,2,4,8,16"));

  const CSRMatrix A = lap3d_27pt(n, n, n);
  std::printf("=== Multi-RHS amortization: lap3d_27pt n=%lld (%lld rows),"
              " rtol=%.1e ===\n",
              (long long)n, (long long)A.nrows, rtol);

  Timer t_setup;
  AMGSolver amg(A, table3_options(Variant::kOptimized));
  const double setup_s = t_setup.seconds();
  std::printf("setup %.4g s, %lld levels, opcx %.2f\n\n", setup_s,
              (long long)amg.hierarchy().num_levels(),
              amg.operator_complexity());

  print_row({"m", "solve_s", "per_rhs_s", "amortize", "iters", "per_rhs_GF",
             "per_rhs_GB"}, 12);

  double per_rhs_m1 = 0.0;
  for (const Int m : ms) {
    const MultiVector B = make_rhs(A.nrows, m);
    MultiVector X(A.nrows, m);
    MultiSolveResult sr;
    if (repeat.warmup()) {
      set_zero(X);
      sr = amg.solve_multi(B, X, rtol, 200);
      if (!status_ok(sr.status) && sr.status != Status::kMaxIterations) {
        std::fprintf(stderr, "warmup solve (m=%lld) failed: %s\n",
                     (long long)m, status_name(sr.status));
        return 1;
      }
    }
    std::vector<double> solve_samples;
    for (int i = 0; i < repeat.count; ++i) {
      begin_timed_repeat();
      set_zero(X);
      Timer t;
      sr = amg.solve_multi(B, X, rtol, 200);
      solve_samples.push_back(t.seconds());
    }
    if (!status_ok(sr.status) && sr.status != Status::kMaxIterations) {
      std::fprintf(stderr, "solve (m=%lld) failed: %s\n", (long long)m,
                   status_name(sr.status));
      return 1;
    }

    const double solve_s = sample_stats(solve_samples).median;
    const double per_rhs_s = solve_s / double(m);
    const double per_rhs_flops = double(sr.solve_work.flops) / double(m);
    const double per_rhs_bytes =
        double(sr.solve_work.bytes_total()) / double(m);
    if (m == 1) per_rhs_m1 = per_rhs_s;
    metrics::gauge("amg.multirhs.m").set(double(m));
    metrics::gauge("amg.multirhs.per_rhs_seconds").set(per_rhs_s);
    metrics::gauge("amg.multirhs.per_rhs_flops").set(per_rhs_flops);
    metrics::gauge("amg.multirhs.per_rhs_bytes").set(per_rhs_bytes);

    print_row({fmt_int(m), fmt(solve_s), fmt(per_rhs_s),
               per_rhs_m1 > 0 ? fmt(per_rhs_m1 / per_rhs_s, "%.2f") : "-",
               fmt_int(sr.iterations), fmt(per_rhs_flops / 1e9, "%.3f"),
               fmt(per_rhs_bytes / 1e9, "%.3f")}, 12);

    BenchReport::Run& run =
        sink.report.add_run("m" + std::to_string(m))
            .label("m", std::to_string(m))
            .metric("per_rhs_solve_seconds", per_rhs_s)
            .metric("per_rhs_flops", per_rhs_flops)
            .metric("per_rhs_bytes", per_rhs_bytes)
            .metric("iterations", double(sr.iterations))
            .metric("converged", sr.converged ? 1.0 : 0.0);
    add_time_metrics(run, "solve", solve_samples);
  }

  const int live_rc = live_sink.finish();
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  if (live_rc != 0) return live_rc;
  return trace_rc != 0 ? trace_rc : json_rc;
}
