#include "amg/hierarchy.hpp"

#include <sstream>

#include <cmath>

#include "amg/interp_classical.hpp"
#include "matrix/transpose.hpp"
#include "spgemm/rap.hpp"
#include "spgemm/spgemm.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

/// Rows whose diagonal entry is missing, zero, or non-finite — a coarse
/// operator with such rows breaks the smoothers (divide by diag) and the
/// dense LU, so setup caps the hierarchy and regularizes instead.
Int count_degenerate_diag(const CSRMatrix& A, double* max_abs_diag) {
  Int bad = 0;
  double dmax = 0.0;
  for (Int i = 0; i < A.nrows; ++i) {
    double d = 0.0;
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      if (A.colidx[k] == i) d = A.values[k];
    if (d == 0.0 || !std::isfinite(d))
      ++bad;
    else
      dmax = std::max(dmax, std::abs(d));
  }
  if (max_abs_diag) *max_abs_diag = dmax;
  return bad;
}

/// Returns A with every missing/zero/non-finite diagonal entry replaced by
/// `shift` (structurally inserting it when absent). Off-diagonal
/// non-finite entries are zeroed — the regularized operator must be usable
/// by a dense LU. Only called on (small) coarse operators after a
/// degeneracy was detected; correctness over speed.
CSRMatrix regularize_diagonal(const CSRMatrix& A, double shift) {
  std::vector<Triplet> trip;
  trip.reserve(std::size_t(A.nnz()) + std::size_t(A.nrows));
  std::vector<char> has_good_diag(std::size_t(A.nrows), 0);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      double v = A.values[k];
      if (!std::isfinite(v)) v = 0.0;
      if (A.colidx[k] == i) {
        if (v == 0.0) continue;  // re-inserted below as the shift
        has_good_diag[std::size_t(i)] = 1;
      }
      trip.push_back({i, A.colidx[k], v});
    }
  for (Int i = 0; i < A.nrows; ++i)
    if (!has_good_diag[std::size_t(i)]) trip.push_back({i, i, shift});
  return CSRMatrix::from_triplets(A.nrows, A.ncols, std::move(trip));
}

namespace {

/// Interpolation dispatch for a single (non-2-stage) level.
CSRMatrix build_interp(const CSRMatrix& A, const CSRMatrix& S,
                       const CFMarker& cf, const AMGOptions& o,
                       InterpKind kind, WorkCounters* wc) {
  const bool optimized = o.variant == Variant::kOptimized;
  switch (kind) {
    case InterpKind::kDirect: {
      CSRMatrix P = direct_interp(A, S, cf, wc);
      return truncate_interpolation(P, o.truncation, wc);
    }
    case InterpKind::kMultipass: {
      MultipassOptions mo;
      mo.truncation = o.truncation;
      return multipass_interp(A, S, cf, mo, wc);
    }
    case InterpKind::kExtPI:
    case InterpKind::kExtPI2Stage:
    default: {
      ExtPIOptions eo;
      eo.truncation = o.truncation;
      eo.fused_truncation = optimized;  // baseline truncates in a 2nd pass
      // The optimized hierarchy feeds CF-permuted operators (coarse-first
      // markers), enabling the §3.1.2 partitioned-row builder.
      bool coarse_first = true;
      Int nc2 = 0;
      while (nc2 < Int(cf.size()) && cf[nc2] > 0) ++nc2;
      for (Int i = nc2; i < Int(cf.size()) && coarse_first; ++i)
        if (cf[i] > 0) coarse_first = false;
      if (optimized && o.partitioned_interp && coarse_first)
        return extpi_interp_partitioned(A, S, cf, eo, wc);
      return extpi_interp(A, S, cf, eo, wc);
    }
  }
}

/// 2-stage extended+i for aggressive coarsening (Table 4's 2s-ei):
/// stage 1 interpolates to the first-pass C points, stage 2 interpolates
/// those to the aggressively-selected C points on the intermediate
/// operator; the composite P1*P2 is truncated at every stage.
CSRMatrix build_interp_2stage(const CSRMatrix& A, const CSRMatrix& S,
                              const CFMarker& cf_final,
                              const CFMarker& cf_first, const AMGOptions& o,
                              WorkCounters* wc) {
  const bool optimized = o.variant == Variant::kOptimized;
  ExtPIOptions eo;
  eo.truncation = o.truncation;
  eo.fused_truncation = optimized;

  CSRMatrix P1 = build_interp(A, S, cf_first, o, InterpKind::kExtPI, wc);
  CSRMatrix P1T = optimized ? transpose_parallel(P1, wc)
                            : transpose_serial(P1, wc);
  CSRMatrix A1 = optimized ? rap_fused_rowwise(P1T, A, P1, {}, wc)
                           : rap_fused_hypre(P1T, A, P1, wc);
  A1.sort_rows();
  CSRMatrix S1 = strength_matrix(A1, o.strength, wc);

  // Markers on the C1-compact index space: coarse iff aggressively coarse.
  CFMarker cf2;
  cf2.reserve(A1.nrows);
  for (std::size_t i = 0; i < cf_first.size(); ++i)
    if (cf_first[i] > 0) cf2.push_back(cf_final[i] > 0 ? 1 : -1);
  require(Int(cf2.size()) == A1.nrows, "2-stage: C1 index space mismatch");

  CSRMatrix P2 = extpi_interp(A1, S1, cf2, eo, wc);
  CSRMatrix P = optimized ? spgemm_onepass(P1, P2, {}, wc)
                          : spgemm_twopass(P1, P2, wc);
  return truncate_interpolation(P, o.truncation, wc);
}

void build_smoother_plans(Level& L, const AMGOptions& o) {
  switch (o.smoother) {
    case SmootherKind::kHybridGS:
      if (o.variant == Variant::kOptimized)
        L.gs_opt = std::make_unique<HybridGSOptimized>(L.A, o.gs_partitions);
      else
        L.gs_base = std::make_unique<HybridGSBaseline>(L.A, o.gs_partitions);
      break;
    case SmootherKind::kLexGS:
      L.lexgs = std::make_unique<LexGS>(L.A);
      break;
    case SmootherKind::kMultiColorGS:
      L.mcgs = std::make_unique<MultiColorGS>(L.A);
      break;
    case SmootherKind::kJacobi:
      break;
  }
}

void size_workspace(Level& L) {
  L.b.assign(L.n, 0.0);
  L.x.assign(L.n, 0.0);
  L.temp.assign(L.n, 0.0);
  L.r.assign(L.n, 0.0);
  L.rc_pre.assign(std::max<Int>(L.nc, 1), 0.0);
}

}  // namespace

double Hierarchy::operator_complexity() const {
  if (levels.empty() || levels[0].A.nnz() == 0) return 0.0;
  double total = 0.0;
  for (const Level& l : levels) total += double(l.A.nnz());
  return total / double(levels[0].A.nnz());
}

double Hierarchy::grid_complexity() const {
  if (levels.empty() || levels[0].n == 0) return 0.0;
  double total = 0.0;
  for (const Level& l : levels) total += double(l.n);
  return total / double(levels[0].n);
}

std::uint64_t Hierarchy::footprint_bytes() const {
  std::uint64_t bytes = 0;
  for (const Level& l : levels) {
    bytes += l.A.footprint_bytes() + l.P.footprint_bytes() +
             l.Pf.footprint_bytes() + l.PfT.footprint_bytes();
    if (l.gs_opt) bytes += l.gs_opt->footprint_bytes();
  }
  return bytes;
}

std::vector<LevelMemory> Hierarchy::memory_by_level() const {
  std::vector<LevelMemory> mem(levels.size());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const Level& L = levels[l];
    LevelMemory& m = mem[l];
    m.operator_bytes = L.A.footprint_bytes();
    m.interp_bytes = L.P.footprint_bytes() + L.Pf.footprint_bytes() +
                     L.PfT.footprint_bytes();
    if (L.gs_base) m.smoother_bytes += L.gs_base->footprint_bytes();
    if (L.gs_opt) m.smoother_bytes += L.gs_opt->footprint_bytes();
    if (L.lexgs) m.smoother_bytes += L.lexgs->footprint_bytes();
    if (L.mcgs) m.smoother_bytes += L.mcgs->footprint_bytes();
    if (l + 1 == levels.size()) m.smoother_bytes += coarse_lu.footprint_bytes();
    m.workspace_bytes =
        (L.b.size() + L.x.size() + L.temp.size() + L.r.size() +
         L.rc_pre.size()) * sizeof(double) +
        L.cf.size() * sizeof(signed char) +
        (L.perm.perm.size() + L.perm.inv.size()) * sizeof(Int);
  }
  return mem;
}

Status check_hierarchy(const Hierarchy& h) {
  using check::detail::fail;
  const bool optimized = h.opts.variant == Variant::kOptimized;
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const Level& L = h.levels[l];
    const std::string where = "hierarchy level " + std::to_string(l);
    if (Status s = check::csr_well_formed(L.A, "level operator");
        s != Status::kOk)
      return fail(s, where + ": " + check::last_error());
    if (L.A.nrows != L.n || L.A.ncols != L.n)
      return fail(Status::kInvalidInput,
                  "check: " + where + ": operator is " +
                      std::to_string(L.A.nrows) + " x " +
                      std::to_string(L.A.ncols) + ", expected square " +
                      std::to_string(L.n));
    const bool coarsest = l + 1 == h.levels.size();
    if (coarsest) continue;
    // P/R dimension agreement with this level's (n, nc).
    if (optimized) {
      if (Status s =
              check::interp_shape(L.Pf, L.n - L.nc, L.nc, "fine block Pf");
          s != Status::kOk)
        return fail(s, where + ": " + check::last_error());
      if (Status s = check::interp_shape(L.PfT, L.nc, L.n - L.nc,
                                         "kept transpose PfT");
          s != Status::kOk)
        return fail(s, where + ": " + check::last_error());
    } else {
      if (Status s = check::interp_shape(L.P, L.n, L.nc, "interpolation P");
          s != Status::kOk)
        return fail(s, where + ": " + check::last_error());
      if (L.cf.size() != std::size_t(L.n))
        return fail(Status::kInvalidInput,
                    "check: " + where + ": CF marker has " +
                        std::to_string(L.cf.size()) + " entries, expected " +
                        std::to_string(L.n));
    }
    // Galerkin size chain: the next level solves the coarse space.
    if (h.levels[l + 1].n != L.nc)
      return fail(Status::kInvalidInput,
                  "check: " + where + ": Galerkin chain broken — next "
                  "level has " + std::to_string(h.levels[l + 1].n) +
                      " rows, expected nc = " + std::to_string(L.nc));
  }
  return Status::kOk;
}

Hierarchy build_hierarchy(const CSRMatrix& A_in, const AMGOptions& opts) {
  TRACE_SPAN("amg.setup", "phase");
  require(A_in.nrows == A_in.ncols, "build_hierarchy: matrix must be square");
  Hierarchy h;
  h.opts = opts;
  const bool optimized = opts.variant == Variant::kOptimized;
  WorkCounters* wc = &h.setup_work;

  CSRMatrix A_work = A_in;
  {
    ScopedPhase sp(h.setup_times, "Setup_etc");
    if (!A_work.rows_sorted()) A_work.sort_rows();
  }

  for (Int l = 0; l < opts.max_levels; ++l) {
    if (fault::enabled()) fault::maybe_fail_alloc("amg.setup.alloc");
    const Int n = A_work.nrows;
    const bool last = (l == opts.max_levels - 1) || n <= opts.coarse_size;
    if (last) break;

    // ---- Strength + coarsening ----
    Timer phase;
    CSRMatrix S = optimized ? strength_matrix(A_work, opts.strength, wc)
                            : strength_matrix_serial(A_work, opts.strength, wc);
    CSRMatrix ST =
        optimized ? transpose_parallel(S, wc) : transpose_serial(S, wc);
    PmisOptions po;
    po.seed = opts.seed + std::uint64_t(l) * 0x1000193;
    po.rng = optimized ? opts.rng : RngKind::kSequential;
    const bool aggressive = l < opts.num_aggressive_levels &&
                            (opts.interp == InterpKind::kMultipass ||
                             opts.interp == InterpKind::kExtPI2Stage);
    CFMarker cf, cf_first;
    if (aggressive)
      cf = pmis_aggressive(S, ST, po, &cf_first, wc);
    else
      cf = pmis_coarsen(S, ST, po, wc);
    Int nc = count_coarse(cf);
    h.setup_times.add("Strength+Coarsen", phase.seconds());

    if (nc == 0 || nc == n) break;  // cannot coarsen further

    Level L;
    L.n = n;
    L.nc = nc;

    // ---- CF reordering (optimized only; charged to Setup_etc) ----
    CSRMatrix S_work = std::move(S);
    if (optimized) {
      ScopedPhase sp(h.setup_times, "Setup_etc");
      L.perm = cf_permutation(cf);
      L.A = permute_symmetric(A_work, L.perm);
      L.A.sort_rows();
      S_work = permute_symmetric(S_work, L.perm);
      S_work.sort_rows();
      CFMarker cf_perm(n);
      for (Int i = 0; i < n; ++i) cf_perm[i] = i < nc ? 1 : -1;
      if (aggressive) {
        CFMarker cff(n);
        for (Int i = 0; i < n; ++i) cff[i] = cf_first[L.perm.perm[i]];
        cf_first = std::move(cff);
      }
      cf = std::move(cf_perm);
    } else {
      L.A = std::move(A_work);
      L.cf = cf;
    }

    // ---- Interpolation ----
    phase.reset();
    CSRMatrix P;
    const InterpKind kind =
        aggressive ? opts.interp
                   : (opts.interp == InterpKind::kExtPI2Stage ||
                              opts.interp == InterpKind::kMultipass
                          ? InterpKind::kExtPI
                          : opts.interp);
    if (aggressive && kind == InterpKind::kExtPI2Stage)
      P = build_interp_2stage(L.A, S_work, cf, cf_first, opts, wc);
    else
      P = build_interp(L.A, S_work, cf, opts, kind, wc);
    h.setup_times.add("Interp", phase.seconds());
    HPAMG_CHECK_INVARIANT(check::Depth::kCheap,
                          check::interp_shape(P, n, nc, "level interp P"));

    // ---- Galerkin product ----
    phase.reset();
    CSRMatrix A_next;
    if (optimized) {
      // P = [I; Pf] after CF reordering: keep only the fine block and its
      // transpose (R reused by the solve phase), and run the
      // identity-block RAP.
      L.Pf = csr_block(P, nc, n, 0, nc);
      L.PfT = transpose_parallel(L.Pf, wc);
      A_next = rap_cf_block(L.A, L.Pf, L.PfT, nc, {}, wc);
    } else {
      L.P = std::move(P);
      CSRMatrix R = transpose_serial(L.P, wc);  // baseline: not kept
      A_next = rap_fused_hypre(R, L.A, L.P, wc);
    }
    A_next.sort_rows();
    h.setup_times.add("RAP", phase.seconds());
    HPAMG_CHECK_INVARIANT(
        check::Depth::kCheap,
        check::csr_well_formed(A_next, "Galerkin coarse operator"));
    HPAMG_CHECK_INVARIANT(check::Depth::kFull,
                          check::csr_finite(A_next, "Galerkin coarse operator"));

    // ---- Degenerate coarse operator -> cap the hierarchy here ----
    // A Galerkin product with zero/non-finite diagonal rows cannot be
    // smoothed or factored; descending further only compounds it. Stop
    // coarsening and let the coarsest-level handling below regularize.
    bool cap_levels = false;
    if (Int bad = count_degenerate_diag(A_next, nullptr); bad > 0) {
      cap_levels = true;
      std::string ev = "degenerate coarse operator below level " +
                       std::to_string(l) + ": " + std::to_string(bad) +
                       " row(s) with missing/zero/non-finite diagonal; "
                       "capping hierarchy";
      HPAMG_LOG_WARN("amg setup: %s", ev.c_str());
      h.events.push_back(std::move(ev));
    }

    // ---- Smoother plans + workspace ----
    {
      ScopedPhase sp(h.setup_times, "Setup_etc");
      build_smoother_plans(L, opts);
      size_workspace(L);
      h.stats.push_back({L.n, L.A.nnz(), L.nc,
                         optimized ? L.Pf.nnz() + nc : L.P.nnz()});
    }
    h.levels.push_back(std::move(L));
    A_work = std::move(A_next);
    if (cap_levels) break;
  }

  // ---- Coarsest level ----
  {
    ScopedPhase sp(h.setup_times, "Setup_etc");
    Level L;
    L.n = A_work.nrows;
    L.nc = 0;
    L.A = std::move(A_work);
    double dmax = 0.0;
    if (Int bad = count_degenerate_diag(L.A, &dmax); bad > 0) {
      // Regularized coarse solve: shift the broken diagonals so the LU /
      // smoother stay finite. The coarsest operator is a preconditioner
      // component, so a tiny perturbation costs iterations, not
      // correctness; the incident is recorded for the `status` block.
      const double shift = dmax > 0.0 ? 1e-8 * dmax : 1.0;
      L.A = regularize_diagonal(L.A, shift);
      std::string ev = "regularized coarse solve: " + std::to_string(bad) +
                       " degenerate diagonal(s) shifted on the coarsest "
                       "level";
      HPAMG_LOG_WARN("amg setup: %s", ev.c_str());
      h.events.push_back(std::move(ev));
    }
    if (L.n <= opts.coarse_size * 4 && L.n <= 2048) {
      h.coarse_lu = LUSolver(L.A);
    } else {
      // Too large for a dense factorization (max_levels capped the
      // hierarchy): approximate with smoothing sweeps, as the paper notes
      // is common for the coarsest level.
      build_smoother_plans(L, opts);
    }
    size_workspace(L);
    h.stats.push_back({L.n, L.A.nnz(), 0, 0});
    h.levels.push_back(std::move(L));
  }

  // Whole-hierarchy consistency audit (P/R dims, Galerkin size chain) —
  // compiled out unless -DHPAMG_CHECK=ON, and the full sweep only runs at
  // HPAMG_CHECK_LEVEL=2.
  HPAMG_CHECK_INVARIANT(check::Depth::kFull, check_hierarchy(h));

  // Per-level hierarchy gauges for the metrics registry (stencil growth =
  // nnz/row of the level relative to the finest level — the Table 2
  // "operator densification" effect). Gated: the name formatting below
  // allocates, so a disabled run must not reach it.
  if (metrics::enabled()) {
    metrics::gauge("amg.num_levels").set_always(double(h.num_levels()));
    metrics::gauge("amg.operator_complexity")
        .set_always(h.operator_complexity());
    metrics::gauge("amg.grid_complexity").set_always(h.grid_complexity());
    const double row0 = h.stats.empty() || h.stats[0].rows == 0
                            ? 0.0
                            : double(h.stats[0].nnz) / double(h.stats[0].rows);
    for (std::size_t l = 0; l < h.stats.size(); ++l) {
      const LevelStats& s = h.stats[l];
      const std::string p = "amg.level" + std::to_string(l) + ".";
      metrics::gauge(p + "rows").set_always(double(s.rows));
      const double npr = s.rows > 0 ? double(s.nnz) / double(s.rows) : 0.0;
      metrics::gauge(p + "stencil_growth")
          .set_always(row0 > 0.0 ? npr / row0 : 0.0);
    }
  }
  return h;
}

std::string hierarchy_summary(const Hierarchy& h) {
  std::ostringstream os;
  os << "lvl        rows          nnz  nnz/row     coarse\n";
  for (std::size_t l = 0; l < h.stats.size(); ++l) {
    const LevelStats& s = h.stats[l];
    os << l << "  " << s.rows << "  " << s.nnz << "  "
       << (s.rows ? double(s.nnz) / s.rows : 0.0) << "  " << s.coarse << "\n";
  }
  os << "operator complexity: " << h.operator_complexity()
     << ", grid complexity: " << h.grid_complexity() << "\n";
  return os.str();
}

}  // namespace hpamg
