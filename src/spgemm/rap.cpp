#include "spgemm/rap.hpp"

#include <algorithm>

#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Shared chunked-output machinery: each thread appends rows for its row
/// range into private buffers; stitch() assembles the final CSR matrix.
struct ChunkedOutput {
  explicit ChunkedOutput(int nt)
      : cols(nt), vals(nt), rownnz(nt), counters(nt) {}

  std::vector<std::vector<Int>> cols;
  std::vector<std::vector<double>> vals;
  std::vector<std::vector<Int>> rownnz;
  std::vector<WorkCounters> counters;

  CSRMatrix stitch(Int nrows, Int ncols, const std::vector<Int>& bounds,
                   WorkCounters* wc) {
    CSRMatrix C(nrows, ncols);
    const int nt = int(cols.size());
    for (int t = 0; t < nt; ++t)
      for (std::size_t r = 0; r < rownnz[t].size(); ++r)
        C.rowptr[bounds[t] + Int(r) + 1] = rownnz[t][r];
    exclusive_scan(C.rowptr);
    C.colidx.resize(C.rowptr[nrows]);
    C.values.resize(C.rowptr[nrows]);
    // lint: no-span(chunk-assembly helper; the rap_* kernels that call it hold the span)
#pragma omp parallel num_threads(nt)
    {
      const int t = omp_get_thread_num();
      const Int dst = C.rowptr[bounds[t]];
      std::copy(cols[t].begin(), cols[t].end(), C.colidx.begin() + dst);
      std::copy(vals[t].begin(), vals[t].end(), C.values.begin() + dst);
    }
    if (wc)
      for (const WorkCounters& c : counters) *wc += c;
    return C;
  }
};

}  // namespace

CSRMatrix rap_unfused(const CSRMatrix& R, const CSRMatrix& A,
                      const CSRMatrix& P, bool onepass, WorkCounters* wc) {
  TRACE_SPAN("spgemm.rap_unfused", "kernel", "rows", std::int64_t(A.nrows));
  if (onepass) {
    CSRMatrix B = spgemm_onepass(R, A, {}, wc);
    return spgemm_onepass(B, P, {}, wc);
  }
  CSRMatrix B = spgemm_twopass(R, A, wc);
  return spgemm_twopass(B, P, wc);
}

CSRMatrix rap_fused_hypre(const CSRMatrix& R, const CSRMatrix& A,
                          const CSRMatrix& P, WorkCounters* wc) {
  TRACE_SPAN("spgemm.rap_fused", "kernel", "rows", std::int64_t(A.nrows));
  require(R.ncols == A.nrows && A.ncols == P.nrows, "rap: shape mismatch");
  const Int nc_out = P.ncols;
  const int nt = num_threads();
  ChunkedOutput out(nt);
  std::vector<Int> bounds = partition_by_weight(R.rowptr, nt);
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    WorkCounters& cnt = out.counters[t];
    auto& cols = out.cols[t];
    auto& vals = out.vals[t];
    auto& rownnz = out.rownnz[t];
    const Int row_lo = bounds[t], row_hi = bounds[t + 1];
    rownnz.resize(row_hi - row_lo);
    std::vector<Int> marker(nc_out, -1);
    Int fill = 0;
    for (Int i = row_lo; i < row_hi; ++i) {
      const Int row_start = fill;
      for (Int kr = R.rowptr[i]; kr < R.rowptr[i + 1]; ++kr) {
        const Int j = R.colidx[kr];
        const double r = R.values[kr];
        for (Int ka = A.rowptr[j]; ka < A.rowptr[j + 1]; ++ka) {
          const Int k = A.colidx[ka];
          const double temp = r * A.values[ka];
          cnt.flops += 1;
          // Fig 1(b): scatter temp through row k of P immediately. Each
          // (i,j,k) pair replays P's row — the redundant work the rowwise
          // fusion removes.
          for (Int kp = P.rowptr[k]; kp < P.rowptr[k + 1]; ++kp) {
            const Int c = P.colidx[kp];
            const double v = temp * P.values[kp];
            cnt.flops += 2;
            ++cnt.branches;
            if (marker[c] < row_start) {
              marker[c] = fill;
              cols.push_back(c);
              vals.push_back(v);
              ++fill;
            } else {
              vals[marker[c]] += v;
            }
          }
          cnt.bytes_read +=
              (P.rowptr[k + 1] - P.rowptr[k]) * (sizeof(Int) + sizeof(double));
        }
        cnt.bytes_read +=
            (A.rowptr[j + 1] - A.rowptr[j]) * (sizeof(Int) + sizeof(double));
      }
      rownnz[i - row_lo] = fill - row_start;
    }
  }
  return out.stitch(R.nrows, nc_out, bounds, wc);
}

namespace {

/// Core of the row-wise fused RAP: given the sparse row (bcols, bvals) of
/// B = R*A, scatter B_i * P into the output accumulator.
// lint: counted-no-span(per-row helper; spgemm.rap_rowwise owns the span)
inline void scatter_row_times_p(const Int* bcols, const double* bvals,
                                Int bn, const CSRMatrix& P, Int row_start,
                                std::vector<Int>& marker,
                                std::vector<Int>& cols,
                                std::vector<double>& vals, Int& fill,
                                WorkCounters& cnt, bool prefetch) {
  for (Int kb = 0; kb < bn; ++kb) {
    const Int j = bcols[kb];
    if (prefetch && kb + 1 < bn) {
      const Int jn = bcols[kb + 1];
      __builtin_prefetch(&P.colidx[P.rowptr[jn]]);
      __builtin_prefetch(&P.values[P.rowptr[jn]]);
    }
    const double b = bvals[kb];
    for (Int kp = P.rowptr[j]; kp < P.rowptr[j + 1]; ++kp) {
      const Int c = P.colidx[kp];
      const double v = b * P.values[kp];
      cnt.flops += 2;
      ++cnt.branches;
      if (marker[c] < row_start) {
        marker[c] = fill;
        cols.push_back(c);
        vals.push_back(v);
        ++fill;
      } else {
        vals[marker[c]] += v;
      }
    }
    cnt.bytes_read +=
        (P.rowptr[j + 1] - P.rowptr[j]) * (sizeof(Int) + sizeof(double));
  }
}

/// Accumulates alpha * M_row(j) into the scratch sparse row (B_i).
// lint: counted-no-span(per-row helper; the RAP kernel spans cover it)
inline void accumulate_scaled_row(const CSRMatrix& M, Int j, double alpha,
                                  Int brow_start, std::vector<Int>& bmarker,
                                  std::vector<Int>& bcols,
                                  std::vector<double>& bvals, Int& bfill,
                                  WorkCounters& cnt, bool prefetch,
                                  Int prefetch_row) {
  if (prefetch && prefetch_row >= 0) {
    __builtin_prefetch(&M.colidx[M.rowptr[prefetch_row]]);
    __builtin_prefetch(&M.values[M.rowptr[prefetch_row]]);
  }
  for (Int k = M.rowptr[j]; k < M.rowptr[j + 1]; ++k) {
    const Int c = M.colidx[k];
    const double v = alpha * M.values[k];
    cnt.flops += 2;
    ++cnt.branches;
    if (bmarker[c] < brow_start) {
      bmarker[c] = bfill;
      bcols.push_back(c);
      bvals.push_back(v);
      ++bfill;
    } else {
      bvals[bmarker[c]] += v;
    }
  }
  cnt.bytes_read +=
      (M.rowptr[j + 1] - M.rowptr[j]) * (sizeof(Int) + sizeof(double));
}

}  // namespace

CSRMatrix rap_fused_rowwise(const CSRMatrix& R, const CSRMatrix& A,
                            const CSRMatrix& P, const SpgemmOptions& opt,
                            WorkCounters* wc) {
  TRACE_SPAN("spgemm.rap_rowwise", "kernel", "rows", std::int64_t(A.nrows));
  require(R.ncols == A.nrows && A.ncols == P.nrows, "rap: shape mismatch");
  const Int nc_out = P.ncols;
  const int nt = num_threads();
  ChunkedOutput out(nt);
  std::vector<Int> bounds = partition_by_weight(R.rowptr, nt);
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    WorkCounters& cnt = out.counters[t];
    auto& cols = out.cols[t];
    auto& vals = out.vals[t];
    auto& rownnz = out.rownnz[t];
    const Int row_lo = bounds[t], row_hi = bounds[t + 1];
    rownnz.resize(row_hi - row_lo);
    std::vector<Int> marker(nc_out, -1);
    // Scratch for the current row of B = R*A. Reset per row via the marker
    // row_start trick; storage reused so it stays in cache (the point of
    // the fusion).
    std::vector<Int> bmarker(A.ncols, -1);
    std::vector<Int> bcols;
    std::vector<double> bvals;
    Int fill = 0;
    for (Int i = row_lo; i < row_hi; ++i) {
      // ---- B_i = R_i * A ----
      bcols.clear();
      bvals.clear();
      Int bfill = 0;
      for (Int kr = R.rowptr[i]; kr < R.rowptr[i + 1]; ++kr) {
        const Int nxt =
            (opt.prefetch && kr + 1 < R.rowptr[i + 1]) ? R.colidx[kr + 1] : -1;
        accumulate_scaled_row(A, R.colidx[kr], R.values[kr], 0, bmarker,
                              bcols, bvals, bfill, cnt, opt.prefetch, nxt);
      }
      // Invalidate bmarker for the next row cheaply: positions < 0 test
      // requires distinct row starts, so shift by marking used columns.
      // ---- C_i = B_i * P (B_i is cache-hot) ----
      const Int row_start = fill;
      scatter_row_times_p(bcols.data(), bvals.data(), bfill, P, row_start,
                          marker, cols, vals, fill, cnt, opt.prefetch);
      for (Int k = 0; k < bfill; ++k) bmarker[bcols[k]] = -1;
      rownnz[i - row_lo] = fill - row_start;
      cnt.bytes_read +=
          (R.rowptr[i + 1] - R.rowptr[i]) * (sizeof(Int) + sizeof(double));
    }
    cnt.bytes_written += std::uint64_t(fill) * (sizeof(Int) + sizeof(double));
  }
  return out.stitch(R.nrows, nc_out, bounds, wc);
}

CSRMatrix rap_cf_block(const CSRMatrix& Aperm, const CSRMatrix& Pf,
                       const CSRMatrix& PfT, Int nc, const SpgemmOptions& opt,
                       WorkCounters* wc) {
  TRACE_SPAN("spgemm.rap_cf", "kernel", "rows", std::int64_t(Aperm.nrows));
  require(Aperm.nrows == Aperm.ncols, "rap_cf_block: A must be square");
  const Int n = Aperm.nrows;
  const Int nf = n - nc;
  require(Pf.nrows == nf && Pf.ncols == nc, "rap_cf_block: Pf shape");
  require(PfT.nrows == nc && PfT.ncols == nf, "rap_cf_block: PfT shape");

  const int nt = num_threads();
  ChunkedOutput out(nt);
  std::vector<Int> bounds(nt + 1);
  for (int t = 0; t <= nt; ++t) bounds[t] = Int(Long(nc) * t / nt);

#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    WorkCounters& cnt = out.counters[t];
    auto& cols = out.cols[t];
    auto& vals = out.vals[t];
    auto& rownnz = out.rownnz[t];
    const Int row_lo = bounds[t], row_hi = bounds[t + 1];
    rownnz.resize(row_hi - row_lo);
    std::vector<Int> marker(nc, -1);
    std::vector<Int> bmarker(nf, -1);
    std::vector<Int> bcols;  // fine-column scratch row (Acf + PfT*Aff)_i
    std::vector<double> bvals;
    Int fill = 0;
    for (Int i = row_lo; i < row_hi; ++i) {
      const Int row_start = fill;
      auto emit = [&](Int c, double v) {
        ++cnt.branches;
        if (marker[c] < row_start) {
          marker[c] = fill;
          cols.push_back(c);
          vals.push_back(v);
          ++fill;
        } else {
          vals[marker[c]] += v;
        }
      };
      bcols.clear();
      bvals.clear();
      Int bfill = 0;
      auto bemit = [&](Int c, double v) {
        ++cnt.branches;
        if (bmarker[c] < 0) {
          bmarker[c] = bfill;
          bcols.push_back(c);
          bvals.push_back(v);
          ++bfill;
        } else {
          bvals[bmarker[c]] += v;
        }
      };
      // Row i of Aperm: coarse columns feed Acc_i directly; fine columns
      // (shifted by nc) start the scratch row (the Acf_i term).
      for (Int k = Aperm.rowptr[i]; k < Aperm.rowptr[i + 1]; ++k) {
        const Int c = Aperm.colidx[k];
        if (c < nc)
          emit(c, Aperm.values[k]);
        else
          bemit(c - nc, Aperm.values[k]);
      }
      cnt.bytes_read += (Aperm.rowptr[i + 1] - Aperm.rowptr[i]) *
                        (sizeof(Int) + sizeof(double));
      // PfT_i * [Afc | Aff]: row k of the permuted A split on the fly.
      for (Int kp = PfT.rowptr[i]; kp < PfT.rowptr[i + 1]; ++kp) {
        const Int kf = PfT.colidx[kp];     // fine point index (0-based)
        const Int arow = nc + kf;          // its row in Aperm
        const double r = PfT.values[kp];
        if (opt.prefetch && kp + 1 < PfT.rowptr[i + 1]) {
          const Int nxt = nc + PfT.colidx[kp + 1];
          __builtin_prefetch(&Aperm.colidx[Aperm.rowptr[nxt]]);
          __builtin_prefetch(&Aperm.values[Aperm.rowptr[nxt]]);
        }
        for (Int k = Aperm.rowptr[arow]; k < Aperm.rowptr[arow + 1]; ++k) {
          const Int c = Aperm.colidx[k];
          const double v = r * Aperm.values[k];
          cnt.flops += 2;
          if (c < nc)
            emit(c, v);  // PfT * Afc term
          else
            bemit(c - nc, v);  // PfT * Aff term
        }
        cnt.bytes_read += (Aperm.rowptr[arow + 1] - Aperm.rowptr[arow]) *
                          (sizeof(Int) + sizeof(double));
      }
      // (Acf + PfT*Aff)_i * Pf — scratch row is cache-hot.
      scatter_row_times_p(bcols.data(), bvals.data(), bfill, Pf, row_start,
                          marker, cols, vals, fill, cnt, opt.prefetch);
      for (Int k = 0; k < bfill; ++k) bmarker[bcols[k]] = -1;
      rownnz[i - row_lo] = fill - row_start;
    }
    cnt.bytes_written += std::uint64_t(fill) * (sizeof(Int) + sizeof(double));
  }
  return out.stitch(nc, nc, bounds, wc);
}

}  // namespace hpamg
