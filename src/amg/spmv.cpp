#include "amg/spmv.hpp"

#include "support/parallel.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {
void count_spmv(WorkCounters* wc, const CSRMatrix& A) {
  if (!wc) return;
  wc->flops += 2 * std::uint64_t(A.nnz());
  wc->bytes_read += std::uint64_t(A.nnz()) * (sizeof(Int) + 2 * sizeof(double)) +
                    std::uint64_t(A.nrows) * sizeof(Int);
  wc->bytes_written += std::uint64_t(A.nrows) * sizeof(double);
}
}  // namespace

void spmv(const CSRMatrix& A, const Vector& x, Vector& y, WorkCounters* wc) {
  TRACE_SPAN("spmv", "kernel", "rows", std::int64_t(A.nrows));
  require(Int(x.size()) >= A.ncols && Int(y.size()) >= A.nrows,
          "spmv: vector too small");
  const Int* HPAMG_RESTRICT rowptr = A.rowptr.data();
  const Int* HPAMG_RESTRICT colidx = A.colidx.data();
  const double* HPAMG_RESTRICT values = A.values.data();
  const double* HPAMG_RESTRICT xp = x.data();
  double* HPAMG_RESTRICT yp = y.data();
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < A.nrows; ++i) {
    double acc = 0.0;
    for (Int k = rowptr[i]; k < rowptr[i + 1]; ++k)
      acc += values[k] * xp[colidx[k]];
    yp[i] = acc;
  }
  count_spmv(wc, A);
}

void spmv_transpose(const CSRMatrix& A, const Vector& x, Vector& y,
                    WorkCounters* wc) {
  TRACE_SPAN("spmv.transpose", "kernel", "rows", std::int64_t(A.nrows));
  require(Int(x.size()) >= A.nrows && Int(y.size()) >= A.ncols,
          "spmv_transpose: vector too small");
  std::fill(y.begin(), y.begin() + A.ncols, 0.0);
  // Scatter form: sequential (concurrent scatters would race), which is
  // exactly why the baseline's transpose-per-restriction is expensive.
  for (Int i = 0; i < A.nrows; ++i) {
    const double xi = x[i];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      y[A.colidx[k]] += A.values[k] * xi;
  }
  count_spmv(wc, A);
  if (wc) wc->bytes_written += std::uint64_t(A.nnz()) * sizeof(double);
}

void spmv_residual(const CSRMatrix& A, const Vector& x, const Vector& b,
                   Vector& r, WorkCounters* wc) {
  TRACE_SPAN("spmv.residual", "kernel", "rows", std::int64_t(A.nrows));
  require(Int(r.size()) >= A.nrows, "spmv_residual: r too small");
  const double* HPAMG_RESTRICT xp = x.data();
  const double* HPAMG_RESTRICT bp = b.data();
  double* HPAMG_RESTRICT rp = r.data();
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < A.nrows; ++i) {
    double acc = bp[i];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      acc -= A.values[k] * xp[A.colidx[k]];
    rp[i] = acc;
  }
  count_spmv(wc, A);
}

double spmv_residual_norm2sq_fused(const CSRMatrix& A, const Vector& x,
                                   const Vector& b, Vector& r,
                                   WorkCounters* wc) {
  TRACE_SPAN("spmv.residual_fused", "kernel", "rows",
             std::int64_t(A.nrows));
  require(Int(r.size()) >= A.nrows, "spmv_residual fused: r too small");
  const double* HPAMG_RESTRICT xp = x.data();
  const double* HPAMG_RESTRICT bp = b.data();
  double* HPAMG_RESTRICT rp = r.data();
  double nrm = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : nrm)
  for (Int i = 0; i < A.nrows; ++i) {
    double acc = bp[i];
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      acc -= A.values[k] * xp[A.colidx[k]];
    rp[i] = acc;
    nrm += acc * acc;  // fused inner product: r never re-read from memory
  }
  count_spmv(wc, A);
  if (wc) wc->flops += 2 * std::uint64_t(A.nrows);
  return nrm;
}

void interp_add_identity_block(const CSRMatrix& Pf, const Vector& e,
                               Vector& x, Int nc, WorkCounters* wc) {
  TRACE_SPAN("spmv.interp_identity", "kernel", "rows",
             std::int64_t(Pf.nrows));
  require(Pf.ncols == nc, "interp_add_identity_block: shape mismatch");
  const double* HPAMG_RESTRICT ep = e.data();
  double* HPAMG_RESTRICT xp = x.data();
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < nc; ++i) xp[i] += ep[i];
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < Pf.nrows; ++i) {
    double acc = 0.0;
    for (Int k = Pf.rowptr[i]; k < Pf.rowptr[i + 1]; ++k)
      acc += Pf.values[k] * ep[Pf.colidx[k]];
    xp[nc + i] += acc;
  }
  count_spmv(wc, Pf);
  if (wc) wc->flops += std::uint64_t(nc);
}

void restrict_identity_block(const CSRMatrix& PfT, const Vector& r,
                             Vector& rc, Int nc, WorkCounters* wc) {
  TRACE_SPAN("spmv.restrict_identity", "kernel", "rows", std::int64_t(nc));
  require(PfT.nrows == nc, "restrict_identity_block: shape mismatch");
  const double* HPAMG_RESTRICT rp = r.data();
  double* HPAMG_RESTRICT rcp = rc.data();
#pragma omp parallel for schedule(static)
  for (Int i = 0; i < nc; ++i) {
    double acc = rp[i];
    for (Int k = PfT.rowptr[i]; k < PfT.rowptr[i + 1]; ++k)
      acc += PfT.values[k] * rp[nc + PfT.colidx[k]];
    rcp[i] = acc;
  }
  count_spmv(wc, PfT);
  if (wc) wc->flops += std::uint64_t(nc);
}

}  // namespace hpamg
