// Tests for the CSR core, dense bridge, transpose, permutation, vector ops
// and MatrixMarket I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "matrix/io.hpp"
#include "matrix/permute.hpp"
#include "matrix/transpose.hpp"
#include "matrix/vector_ops.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

using test::random_sparse;
using test::random_spd;

// ------------------------------------------------------------------ csr ----

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  std::vector<Triplet> t = {{1, 2, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}, {1, 0, 5.0}};
  CSRMatrix A = CSRMatrix::from_triplets(2, 3, t);
  A.validate();
  EXPECT_TRUE(A.rows_sorted());
  EXPECT_EQ(A.nnz(), 3);
  EXPECT_DOUBLE_EQ(A.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 0.0);
}

TEST(Csr, FromTripletsRejectsOutOfRange) {
  EXPECT_THROW(CSRMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(CSRMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               std::invalid_argument);
}

TEST(Csr, Identity) {
  CSRMatrix I = CSRMatrix::identity(5);
  I.validate();
  EXPECT_EQ(I.nnz(), 5);
  for (Int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(I.diag(i), 1.0);
}

TEST(Csr, SortRows) {
  CSRMatrix A(2, 4);
  A.rowptr = {0, 3, 4};
  A.colidx = {3, 0, 2, 1};
  A.values = {3.0, 0.0, 2.0, 1.0};
  EXPECT_FALSE(A.rows_sorted());
  A.sort_rows();
  EXPECT_TRUE(A.rows_sorted());
  EXPECT_EQ(A.colidx, (std::vector<Int>{0, 2, 3, 1}));
  EXPECT_EQ(A.values, (std::vector<double>{0.0, 2.0, 3.0, 1.0}));
}

TEST(Csr, ValidateCatchesCorruption) {
  CSRMatrix A(2, 2);
  A.rowptr = {0, 1, 2};
  A.colidx = {0, 5};  // out of range
  A.values = {1.0, 1.0};
  EXPECT_THROW(A.validate(), std::invalid_argument);
}

TEST(Csr, SameOperatorToleratesPatternDifferences) {
  // Same operator, one with an explicit zero.
  CSRMatrix A = CSRMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 0.0}});
  CSRMatrix B = CSRMatrix::from_triplets(2, 2, {{0, 0, 1.0}});
  EXPECT_TRUE(csr_same_operator(A, B));
  CSRMatrix C = CSRMatrix::from_triplets(2, 2, {{0, 0, 1.5}});
  EXPECT_FALSE(csr_same_operator(A, C));
}

TEST(Csr, ApproxEqual) {
  CSRMatrix A = test::random_sparse(20, 20, 4, 1);
  CSRMatrix B = A;
  EXPECT_TRUE(csr_approx_equal(A, B));
  B.values[0] += 1e-15;
  EXPECT_TRUE(csr_approx_equal(A, B, 1e-12));
  B.values[0] += 1.0;
  EXPECT_FALSE(csr_approx_equal(A, B, 1e-12));
}

// ---------------------------------------------------------------- dense ----

TEST(Dense, RoundTripAndMultiply) {
  CSRMatrix A = random_sparse(12, 9, 3, 2);
  CSRMatrix B = random_sparse(9, 7, 3, 3);
  DenseMatrix dA = DenseMatrix::from_csr(A);
  EXPECT_TRUE(csr_same_operator(A, dA.to_csr()));
  DenseMatrix dC = dA.multiply(DenseMatrix::from_csr(B));
  EXPECT_EQ(dC.nrows, 12);
  EXPECT_EQ(dC.ncols, 7);
}

TEST(Dense, TransposeInvolution) {
  DenseMatrix d = DenseMatrix::from_csr(random_sparse(6, 9, 3, 4));
  DenseMatrix dtt = d.transpose().transpose();
  for (Int i = 0; i < d.nrows; ++i)
    for (Int j = 0; j < d.ncols; ++j) EXPECT_DOUBLE_EQ(d(i, j), dtt(i, j));
}

TEST(Lu, SolvesSpdSystem) {
  CSRMatrix A = random_spd(40, 4, 5);
  LUSolver lu(A);
  EXPECT_FALSE(lu.singular());
  Vector b(40, 1.0), x(40, 0.0);
  lu.solve(b.data(), x.data());
  EXPECT_LT(test::relative_residual(A, x, b), 1e-10);
}

TEST(Lu, PivotsOnZeroDiagonal) {
  // [[0 1][1 0]] needs pivoting.
  CSRMatrix A = CSRMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  LUSolver lu(A);
  EXPECT_FALSE(lu.singular());
  Vector b = {2.0, 3.0}, x(2);
  lu.solve(b.data(), x.data());
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Lu, FlagsSingular) {
  CSRMatrix A(3, 3);  // all-zero
  LUSolver lu(A);
  EXPECT_TRUE(lu.singular());
}

// ------------------------------------------------------------ transpose ----

class TransposeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransposeSweep, ParallelMatchesSerialMatchesDense) {
  CSRMatrix A = random_sparse(50 + Int(GetParam()) * 13, 37, 4, GetParam());
  CSRMatrix Ts = transpose_serial(A);
  CSRMatrix Tp = transpose_parallel(A);
  Ts.validate();
  Tp.validate();
  EXPECT_TRUE(csr_approx_equal(Ts, Tp));
  DenseMatrix ref = DenseMatrix::from_csr(A).transpose();
  EXPECT_TRUE(csr_same_operator(Ts, ref.to_csr()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransposeSweep, ::testing::Range<std::uint64_t>(0, 8));

TEST(Transpose, Involution) {
  CSRMatrix A = random_sparse(30, 40, 5, 99);
  EXPECT_TRUE(csr_approx_equal(A, transpose_parallel(transpose_parallel(A))));
}

TEST(Transpose, EmptyAndZeroRowMatrices) {
  CSRMatrix A(3, 4);  // all-zero rows
  CSRMatrix T = transpose_parallel(A);
  EXPECT_EQ(T.nrows, 4);
  EXPECT_EQ(T.nnz(), 0);
}

// -------------------------------------------------------------- permute ----

TEST(Permute, CfPermutationPlacesCoarseFirst) {
  CFMarker cf = {-1, 1, -1, 1, 1, -1};
  CFPermutation p = cf_permutation(cf);
  EXPECT_EQ(p.ncoarse, 3);
  EXPECT_EQ(p.perm, (std::vector<Int>{1, 3, 4, 0, 2, 5}));
  for (Int ni = 0; ni < 6; ++ni) EXPECT_EQ(p.inv[p.perm[ni]], ni);
}

TEST(Permute, SymmetricPermutationPreservesEntries) {
  CSRMatrix A = random_spd(30, 3, 11);
  CFMarker cf(30);
  for (Int i = 0; i < 30; ++i) cf[i] = (i % 3 == 0) ? 1 : -1;
  CFPermutation p = cf_permutation(cf);
  CSRMatrix B = permute_symmetric(A, p);
  B.sort_rows();
  for (Int ni = 0; ni < 30; ++ni)
    for (Int nj = 0; nj < 30; ++nj)
      EXPECT_DOUBLE_EQ(B.at(ni, nj), A.at(p.perm[ni], p.perm[nj]));
}

TEST(Permute, VectorGather) {
  std::vector<double> v = {10, 20, 30};
  std::vector<Int> perm = {2, 0, 1};
  EXPECT_EQ(permute_vector(v, perm), (std::vector<double>{30, 10, 20}));
}

TEST(Permute, ThreeWayPartitionGroupsStably) {
  CSRMatrix A = random_sparse(40, 40, 6, 21);
  CSRMatrix orig = A;
  RowPartition rp = three_way_partition_rows(
      A, [](Int, Int col, double) { return col % 3; });
  for (Int i = 0; i < A.nrows; ++i) {
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k) {
      const int cls = A.colidx[k] % 3;
      if (k < rp.ptr1[i])
        EXPECT_EQ(cls, 0);
      else if (k < rp.ptr2[i])
        EXPECT_EQ(cls, 1);
      else
        EXPECT_EQ(cls, 2);
    }
  }
  // Same multiset of (col, val) per row.
  A.sort_rows();
  EXPECT_TRUE(csr_approx_equal(orig, A));
}

// ----------------------------------------------------------- vector ops ----

TEST(VectorOps, Blas1Kernels) {
  Vector x = {1, 2, 3}, y = {4, 5, 6};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{6, 9, 12}));
  xpby(x, 0.5, y);
  EXPECT_EQ(y, (Vector{4, 6.5, 9}));
  scale(2.0, y);
  EXPECT_EQ(y, (Vector{8, 13, 18}));
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(norm2(x), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(norm_inf(y), 18.0);
  set_zero(y);
  EXPECT_EQ(y, (Vector{0, 0, 0}));
  copy(x, y);
  EXPECT_EQ(y, x);
}

TEST(VectorOps, CountersTrackTraffic) {
  Vector x(100, 1.0), y(100, 2.0);
  WorkCounters wc;
  axpy(1.0, x, y, &wc);
  EXPECT_EQ(wc.flops, 200u);
  EXPECT_EQ(wc.bytes_read, 100u * 2 * sizeof(double));
  EXPECT_EQ(wc.bytes_written, 100u * sizeof(double));
}

// ------------------------------------------------------------------- io ----

TEST(Io, RoundTripGeneral) {
  CSRMatrix A = random_sparse(15, 12, 3, 8);
  std::stringstream ss;
  write_matrix_market(A, ss);
  CSRMatrix B = read_matrix_market(ss);
  EXPECT_TRUE(csr_approx_equal(A, B, 1e-14));
}

TEST(Io, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n2 1 -1.0\n3 2 -1.0\n3 3 2.0\n";
  CSRMatrix A = read_matrix_market(ss);
  EXPECT_EQ(A.nnz(), 6);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.0);
}

TEST(Io, PatternField) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n1 1\n2 2\n";
  CSRMatrix A = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 1.0);
}

TEST(Io, RejectsBadHeader) {
  std::stringstream ss;
  ss << "not a matrix market file\n";
  EXPECT_THROW(read_matrix_market(ss), std::invalid_argument);
}

// -------------------------------------------------------- fingerprinting ----

TEST(Fingerprint, ConstructionOrderDoesNotChangeTheHash) {
  // Same operator assembled in two different triplet orders: from_triplets
  // sorts, so both end up row-sorted — but also build a third copy by hand
  // with UNSORTED columns inside a row and check it still matches.
  std::vector<Triplet> fwd = {{0, 0, 4.0}, {0, 1, -1.0}, {1, 0, -1.0},
                              {1, 1, 4.0}, {1, 2, -1.0}, {2, 2, 4.0}};
  std::vector<Triplet> rev(fwd.rbegin(), fwd.rend());
  const CSRMatrix a = CSRMatrix::from_triplets(3, 3, fwd);
  const CSRMatrix b = CSRMatrix::from_triplets(3, 3, rev);
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(b));

  CSRMatrix c(3, 3);
  c.rowptr = {0, 2, 5, 6};
  c.colidx = {1, 0, 2, 1, 0, 2};  // rows 0 and 1 stored column-unsorted
  c.values = {-1.0, 4.0, -1.0, 4.0, -1.0, 4.0};
  c.validate();
  EXPECT_FALSE(c.rows_sorted());
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(c));
}

CSRMatrix tridiag(Int n) {
  std::vector<Triplet> t;
  for (Int i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return CSRMatrix::from_triplets(n, n, t);
}

TEST(Fingerprint, ValueAndStructureChangesChangeTheHash) {
  const CSRMatrix a = tridiag(8);
  CSRMatrix b = a;
  b.values[3] += 1e-12;  // tiny value change must be visible
  EXPECT_NE(matrix_fingerprint(a), matrix_fingerprint(b));

  CSRMatrix wider = a;
  wider.ncols += 1;  // same entries, different shape
  EXPECT_NE(matrix_fingerprint(a), matrix_fingerprint(wider));

  // An explicit zero is part of the stored operator the solver sees.
  CSRMatrix explicit_zero = CSRMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 0.0}, {1, 1, 1.0}});
  CSRMatrix no_zero =
      CSRMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_NE(matrix_fingerprint(explicit_zero), matrix_fingerprint(no_zero));
}

TEST(Fingerprint, NegativeZeroHashesAsPositiveZero) {
  CSRMatrix a = CSRMatrix::from_triplets(1, 1, {{0, 0, 0.0}});
  CSRMatrix b = a;
  b.values[0] = -0.0;
  EXPECT_EQ(matrix_fingerprint(a), matrix_fingerprint(b));
}

}  // namespace
}  // namespace hpamg
