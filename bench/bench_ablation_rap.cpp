// Ablation: the RAP (Galerkin product) optimizations of §3.1.1.
//
// For each suite matrix, builds the real finest-level transfer operators
// (strength -> PMIS -> extended+i) and computes A_1 = R A P four ways:
// unfused, HYPRE-style fusion (Fig 1b), row-wise fusion (Fig 1a), and the
// CF-identity-block form. Reports wall time, flops and bytes; the paper's
// headline number here is the 1.73x flop redundancy of Fig 1(b) vs Fig
// 1(a) on the finest-level product.
//
// Usage: bench_ablation_rap [--scale 0.005] [--repeat N] [--json out.json]
#include <cmath>
#include <cstdio>

#include "amg/interp_extpi.hpp"
#include "amg/pmis.hpp"
#include "amg/strength.hpp"
#include "bench_util.hpp"
#include "gen/suite.hpp"
#include "matrix/permute.hpp"
#include "matrix/transpose.hpp"
#include "spgemm/rap.hpp"

using namespace hpamg;
using namespace hpamg::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.005);
  const Repeat repeat(cli);
  const RunEnv env("ablation_rap");
  JsonSink sink(cli, env);
  init_logging(cli);
  TraceSink trace_sink(cli, env);
  sink.report.set_param("scale", scale);
  sink.report.set_param("repeat", repeat.count);

  std::printf("=== Ablation: finest-level RAP variants (scale=%.4g) ===\n\n",
              scale);
  print_row({"matrix", "hypre_s", "rowwise_s", "cfblock_s", "unfused_s",
             "flop_ratio", "cf_flops%"}, 12);

  double geo_ratio = 0;
  int count = 0;
  for (const SuiteEntry& e : table2_suite()) {
    CSRMatrix A = generate_suite_matrix(e.name, scale);
    A.sort_rows();
    CSRMatrix S = strength_matrix(A, {e.strength_threshold, 0.8});
    CSRMatrix ST = transpose_parallel(S);
    CFMarker cf = pmis_coarsen(S, ST);
    // CF-permuted representation (as the optimized hierarchy builds it).
    CFPermutation perm = cf_permutation(cf);
    const Int nc = perm.ncoarse;
    CSRMatrix Ap = permute_symmetric(A, perm);
    Ap.sort_rows();
    CSRMatrix Sp = permute_symmetric(S, perm);
    Sp.sort_rows();
    CFMarker cfp(A.nrows);
    for (Int i = 0; i < A.nrows; ++i) cfp[i] = i < nc ? 1 : -1;
    CSRMatrix P = extpi_interp(Ap, Sp, cfp, {});
    CSRMatrix R = transpose_parallel(P);
    CSRMatrix Pf = csr_block(P, nc, A.nrows, 0, nc);
    CSRMatrix PfT = transpose_parallel(Pf);

    WorkCounters w_hypre, w_row, w_cf, w_unf;
    std::vector<double> s_hypre, s_row, s_cf, s_unf;
    const int passes = repeat.count + (repeat.warmup() ? 1 : 0);
    for (int i = 0; i < passes; ++i) {
      const bool warm = repeat.warmup() && i == 0;
      if (!warm) begin_timed_repeat();
      WorkCounters wh, wr, wc, wu;
      Timer t;
      rap_fused_hypre(R, Ap, P, &wh);
      const double t1 = t.seconds();
      t.reset();
      rap_fused_rowwise(R, Ap, P, {}, &wr);
      const double t2 = t.seconds();
      t.reset();
      rap_cf_block(Ap, Pf, PfT, nc, {}, &wc);
      const double t3 = t.seconds();
      t.reset();
      rap_unfused(R, Ap, P, true, &wu);
      const double t4 = t.seconds();
      if (warm) continue;
      s_hypre.push_back(t1);
      s_row.push_back(t2);
      s_cf.push_back(t3);
      s_unf.push_back(t4);
      w_hypre = wh;
      w_row = wr;
      w_cf = wc;
      w_unf = wu;
    }
    const double t_hypre = sample_stats(s_hypre).median;
    const double t_row = sample_stats(s_row).median;
    const double t_cf = sample_stats(s_cf).median;
    const double t_unf = sample_stats(s_unf).median;

    const double ratio = double(w_hypre.flops) / double(w_row.flops);
    geo_ratio += std::log(ratio);
    ++count;
    print_row({e.name, fmt(t_hypre, "%.4f"), fmt(t_row, "%.4f"),
               fmt(t_cf, "%.4f"), fmt(t_unf, "%.4f"), fmt(ratio, "%.2f"),
               fmt(100.0 * double(w_cf.flops) / double(w_row.flops), "%.0f")},
              12);
    sink.report.add_run(e.name)
        .label("matrix", e.name)
        .metric("hypre_seconds", t_hypre)
        .metric("rowwise_seconds", t_row)
        .metric("cfblock_seconds", t_cf)
        .metric("unfused_seconds", t_unf)
        .metric("flop_ratio_hypre_vs_rowwise", ratio)
        .metric("cfblock_flop_fraction",
                double(w_cf.flops) / double(w_row.flops))
        .metric("hypre_flops", double(w_hypre.flops))
        .metric("rowwise_flops", double(w_row.flops));
  }
  std::printf("\nGeomean Fig1(b)/Fig1(a) flop ratio: %.2fx (paper: 1.73x on"
              " its suite)\n", std::exp(geo_ratio / count));
  sink.report.add_run("summary")
      .metric("matrices", double(count))
      .metric("geomean_flop_ratio", std::exp(geo_ratio / count));
  const int trace_rc = trace_sink.finish();
  const int json_rc = sink.finish();
  return trace_rc != 0 ? trace_rc : json_rc;
}
