// Distributed AMG pipeline tests: SpGEMM/RAP vs sequential, distributed
// coarsening vs sequential, distributed interpolation, and end-to-end
// convergence of the multi-node solver configurations (Table 4 schemes).
#include <gtest/gtest.h>

#include "amg/interp_extpi.hpp"
#include "amg/pmis.hpp"
#include "amg/strength.hpp"
#include "dist/dist_coarsen.hpp"
#include "dist/dist_interp.hpp"
#include "dist/dist_krylov.hpp"
#include "dist/dist_spgemm.hpp"
#include "dist/dist_transpose.hpp"
#include "gen/reservoir.hpp"
#include "gen/stencil.hpp"
#include "matrix/transpose.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {


/// Dense-free reference for y = A^T x.
void spmv_transpose_ref(const CSRMatrix& A, const Vector& x, Vector& y) {
  std::fill(y.begin(), y.end(), 0.0);
  for (Int i = 0; i < A.nrows; ++i)
    for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
      y[A.colidx[k]] += A.values[k] * x[i];
}

class DistRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistRanks, SpgemmMatchesSequential) {
  CSRMatrix A = lap2d_5pt(14, 14);
  CSRMatrix ref = spgemm_onepass(A, A);
  ref.sort_rows();
  simmpi::run(GetParam(), [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    for (bool par : {true, false}) {
      DistSpgemmOptions o;
      o.parallel_renumber = par;
      o.onepass_local = par;
      DistSpgemmInfo info;
      DistMatrix dC = dist_spgemm(c, dA, dA, o, nullptr, &info);
      dC.validate();
      CSRMatrix C = gather_csr(c, dC);
      C.sort_rows();
      EXPECT_TRUE(csr_same_operator(ref, C, 1e-9));
      if (c.size() > 1) EXPECT_GT(info.gathered_rows, 0u);
    }
  });
}

TEST_P(DistRanks, RapMatchesSequential) {
  CSRMatrix A = lap2d_5pt(12, 12);
  CSRMatrix S = strength_matrix(A, {0.25, 0.8});
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions po;
  CFMarker cf = pmis_coarsen(S, ST, po);
  ExtPIOptions eo;
  CSRMatrix P = extpi_interp(A, S, cf, eo);
  CSRMatrix R = transpose_parallel(P);
  CSRMatrix RA = spgemm_onepass(R, A);
  CSRMatrix ref = spgemm_onepass(RA, P);
  ref.sort_rows();
  simmpi::run(GetParam(), [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    // Distribute P with its own (rectangular) partitions.
    DistMatrix dP = build_dist_matrix(
        c, P.nrows, P.ncols,
        [&](Long grow, std::vector<std::pair<Long, double>>& out) {
          const Int i = Int(grow);
          for (Int k = P.rowptr[i]; k < P.rowptr[i + 1]; ++k)
            out.push_back({Long(P.colidx[k]), P.values[k]});
        });
    DistMatrix dR;
    DistMatrix dC = dist_rap(c, dA, dP, {}, nullptr, nullptr, &dR);
    CSRMatrix C = gather_csr(c, dC);
    C.sort_rows();
    EXPECT_TRUE(csr_same_operator(ref, C, 1e-9));
    // The kept R really is P^T.
    CSRMatrix Rg = gather_csr(c, dR);
    EXPECT_TRUE(csr_same_operator(R, Rg, 1e-12));
  });
}

TEST_P(DistRanks, StrengthAndPmisMatchSequential) {
  CSRMatrix A = lap2d_5pt(15, 15, 4.0);
  StrengthOptions so;
  CSRMatrix S = strength_matrix(A, so);
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions po;  // counter RNG keyed on global index: partition-invariant
  CFMarker ref = pmis_coarsen(S, ST, po);
  simmpi::run(GetParam(), [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistMatrix dS = dist_strength(dA, so);
    // Strength pattern matches the sequential operator.
    CSRMatrix Sg = gather_csr(c, dS);
    EXPECT_TRUE(csr_approx_equal(S, Sg));
    DistMatrix dST = dist_transpose(c, dS);
    CFMarker cf = dist_pmis(c, dS, dST, po);
    const Long r0 = dA.first_row();
    for (Int i = 0; i < dA.local_rows(); ++i)
      EXPECT_EQ(cf[i] > 0, ref[r0 + i] > 0) << "point " << r0 + i;
  });
}

TEST_P(DistRanks, ExtPIInterpMatchesSequential) {
  CSRMatrix A = lap2d_5pt(13, 13);
  StrengthOptions so;
  CSRMatrix S = strength_matrix(A, so);
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions po;
  CFMarker cf = pmis_coarsen(S, ST, po);
  // Compare UNTRUNCATED operators: Eq. (1) is order-independent as a set,
  // whereas max_elmts truncation breaks weight ties by construction order,
  // which legitimately differs between the two builders.
  ExtPIOptions eo;
  eo.truncation.trunc_fact = 0.0;
  eo.truncation.max_elmts = 0;
  CSRMatrix Pref = extpi_interp(A, S, cf, eo);
  Pref.sort_rows();
  simmpi::run(GetParam(), [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistMatrix dS = dist_strength(dA, so);
    DistMatrix dST = dist_transpose(c, dS);
    CFMarker dcf = dist_pmis(c, dS, dST, po);
    CoarseNumbering cn = coarse_numbering(c, dcf);
    for (bool filtered : {true, false}) {
      DistInterpOptions io;
      io.truncation.trunc_fact = 0.0;
      io.truncation.max_elmts = 0;
      io.filtered_exchange = filtered;
      DistMatrix dP = dist_extpi_interp(c, dA, dS, dST, dcf, cn, io);
      dP.validate();
      CSRMatrix P = gather_csr(c, dP);
      P.sort_rows();
      EXPECT_TRUE(csr_approx_equal(Pref, P, 1e-10)) << "filtered=" << filtered;
    }
    // With the paper's truncation (0.1 / 4): row caps hold and row sums
    // match the untruncated sums (truncation rescales to preserve them).
    DistInterpOptions io;
    DistMatrix dP = dist_extpi_interp(c, dA, dS, dST, dcf, cn, io);
    CSRMatrix P = gather_csr(c, dP);
    for (Int i = 0; i < P.nrows; ++i) {
      if (cf[i] > 0) continue;
      EXPECT_LE(P.row_nnz(i), 4);
      double sp = 0, sr = 0;
      for (Int k = P.rowptr[i]; k < P.rowptr[i + 1]; ++k) sp += P.values[k];
      for (Int k = Pref.rowptr[i]; k < Pref.rowptr[i + 1]; ++k)
        sr += Pref.values[k];
      EXPECT_NEAR(sp, sr, 1e-9 * std::max(1.0, std::abs(sr)));
    }
  });
}

TEST_P(DistRanks, FilteredExchangeShrinksVolume) {
  // On an isotropic Laplacian every connection is strong and opposite-sign,
  // so the §4.3 filter keeps everything; anisotropy creates the weak
  // entries the filter strips (as do coarse-level operators in a full
  // hierarchy).
  CSRMatrix A = lap3d_7pt(10, 10, 10, 1.0, 8.0);
  if (GetParam() == 1) GTEST_SKIP() << "no exchange with one rank";
  simmpi::run(GetParam(), [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    StrengthOptions so;
    DistMatrix dS = dist_strength(dA, so);
    DistMatrix dST = dist_transpose(c, dS);
    CFMarker cf = dist_pmis(c, dS, dST);
    CoarseNumbering cn = coarse_numbering(c, cf);
    DistInterpInfo full, filt;
    DistInterpOptions io;
    io.filtered_exchange = false;
    dist_extpi_interp(c, dA, dS, dST, cf, cn, io, nullptr, &full);
    io.filtered_exchange = true;
    dist_extpi_interp(c, dA, dS, dST, cf, cn, io, nullptr, &filt);
    const Long f = c.allreduce_sum(Long(full.gathered_bytes));
    const Long g = c.allreduce_sum(Long(filt.gathered_bytes));
    if (c.rank() == 0) {
      EXPECT_LT(double(g), 0.8 * double(f))
          << "filtered " << g << " vs full " << f;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistRanks, ::testing::Values(1, 2, 4, 7));

struct DistScheme {
  const char* name;
  InterpKind interp;
  Int aggressive;
  Variant variant;
};

class DistSolveSweep : public ::testing::TestWithParam<DistScheme> {};

TEST_P(DistSolveSweep, FgmresConvergesOn4Ranks) {
  const DistScheme s = GetParam();
  CSRMatrix A = lap3d_7pt(12, 12, 12);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistAMGOptions o;
    o.variant = s.variant;
    o.interp = s.interp;
    o.num_aggressive_levels = s.aggressive;
    DistHierarchy h = dist_amg_setup(c, dA, o);
    Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
    DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-7, 100);
    EXPECT_TRUE(r.converged) << s.name << " relres=" << r.final_relres;
    // The gathered solution solves the global system.
    Vector full = gather_vector(c, x, dA.row_starts);
    Vector ones(A.nrows, 1.0);
    if (c.rank() == 0)
      EXPECT_LT(test::relative_residual(A, full, ones), 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, DistSolveSweep,
    ::testing::Values(
        DistScheme{"ei4_opt", InterpKind::kExtPI, 0, Variant::kOptimized},
        DistScheme{"2sei_opt", InterpKind::kExtPI2Stage, 1, Variant::kOptimized},
        DistScheme{"mp_opt", InterpKind::kMultipass, 1, Variant::kOptimized},
        DistScheme{"ei4_base", InterpKind::kExtPI, 0, Variant::kBaseline},
        DistScheme{"mp_base", InterpKind::kMultipass, 1, Variant::kBaseline}));

TEST(DistSolve, StandaloneAmgAndSingleRank) {
  CSRMatrix A = lap2d_5pt(25, 25);
  simmpi::run(1, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistAMGOptions o;
    DistHierarchy h = dist_amg_setup(c, dA, o);
    Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
    DistSolveResult r = dist_amg_solve(c, dA, h, b, x, 1e-7, 100);
    EXPECT_TRUE(r.converged);
  });
}

TEST(DistSolve, IterationsStableAcrossRankCounts) {
  // The partitioning changes hybrid-GS smoothing slightly; iteration counts
  // must stay in a narrow band (the weak-scaling premise of Fig 6).
  CSRMatrix A = lap2d_5pt(30, 30);
  std::vector<Int> iters;
  for (int P : {1, 2, 4}) {
    Int it = 0;
    simmpi::run(P, [&](simmpi::Comm& c) {
      DistMatrix dA = distribute_csr(c, A);
      DistAMGOptions o;
      DistHierarchy h = dist_amg_setup(c, dA, o);
      Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
      DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-7, 100);
      if (c.rank() == 0) it = r.iterations;
    });
    iters.push_back(it);
  }
  for (Int it : iters) {
    EXPECT_GE(it, iters[0] - 3);
    EXPECT_LE(it, iters[0] + 3);
  }
}

TEST(DistSolve, SetupRecordsPhasesAndComm) {
  CSRMatrix A = lap3d_7pt(10, 10, 10);
  simmpi::run(3, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistAMGOptions o;
    DistHierarchy h = dist_amg_setup(c, dA, o);
    EXPECT_GT(h.setup_times.get("Interp"), 0.0);
    EXPECT_GT(h.setup_times.get("RAP"), 0.0);
    EXPECT_GT(h.setup_comm.messages_sent, 0u);
    EXPECT_GT(h.phase_comm["RAP"].bytes_sent, 0u);
    EXPECT_GT(h.operator_complexity(), 1.0);
    EXPECT_LT(h.operator_complexity(), 6.0);
  });
}


TEST(DistSolve, CoarseFallbackWhenMaxLevelsCaps) {
  // max_levels = 2 leaves a coarse level too big to replicate (the LU
  // replication cap is 4096 rows); the distributed GS fallback must keep
  // the cycle convergent.
  CSRMatrix A = lap2d_5pt(120, 120);
  simmpi::run(3, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistAMGOptions o;
    o.max_levels = 2;
    DistHierarchy h = dist_amg_setup(c, dA, o);
    EXPECT_EQ(h.coarse_lu.size(), 0);
    Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
    DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-7, 200);
    EXPECT_TRUE(r.converged);
  });
}

TEST(DistSolve, MultipassInterpMatchesSequentialUntruncated) {
  CSRMatrix A = lap2d_5pt(13, 13);
  StrengthOptions so;
  CSRMatrix S = strength_matrix(A, so);
  CSRMatrix ST = transpose_parallel(S);
  PmisOptions po;
  CFMarker cf = pmis_coarsen(S, ST, po);  // same splitting both sides
  MultipassOptions mo;
  mo.truncation.trunc_fact = 0.0;
  mo.truncation.max_elmts = 0;
  CSRMatrix Pref = multipass_interp(A, S, cf, mo);
  Pref.sort_rows();
  simmpi::run(3, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistMatrix dS = dist_strength(dA, so);
    DistMatrix dST = dist_transpose(c, dS);
    CFMarker dcf = dist_pmis(c, dS, dST, po);
    CoarseNumbering cn = coarse_numbering(c, dcf);
    DistInterpOptions io;
    io.truncation.trunc_fact = 0.0;
    io.truncation.max_elmts = 0;
    DistMatrix dP = dist_multipass_interp(c, dA, dS, dcf, cn, io);
    CSRMatrix P = gather_csr(c, dP);
    P.sort_rows();
    EXPECT_TRUE(csr_approx_equal(Pref, P, 1e-10));
  });
}

TEST(DistSolve, SpmvTransposeMatchesSequential) {
  CSRMatrix A = test::random_sparse(90, 60, 4, 11);
  Vector x(90);
  for (Int i = 0; i < 90; ++i) x[i] = 0.1 * i - 3.0;
  Vector ref(60);
  spmv_transpose_ref(A, x, ref);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = build_dist_matrix(
        c, A.nrows, A.ncols,
        [&](Long grow, std::vector<std::pair<Long, double>>& out) {
          const Int i = Int(grow);
          for (Int k = A.rowptr[i]; k < A.rowptr[i + 1]; ++k)
            out.push_back({Long(A.colidx[k]), A.values[k]});
        });
    Vector xl(dA.local_rows());
    for (Int i = 0; i < dA.local_rows(); ++i) xl[i] = x[dA.first_row() + i];
    Vector yl;
    dist_spmv_transpose(c, dA, xl, yl);
    const Long c0 = dA.first_col();
    for (Int i = 0; i < dA.local_cols(); ++i)
      ASSERT_NEAR(yl[i], ref[c0 + i], 1e-12);
  });
}

TEST(DistSolve, ReservoirStrongScalingConfiguration) {
  // Fig 8 configuration in miniature: reservoir matrix, rtol 1e-5.
  CSRMatrix A = reservoir_matrix(10, 10, 10);
  simmpi::run(4, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistAMGOptions o;
    o.interp = InterpKind::kExtPI;
    DistHierarchy h = dist_amg_setup(c, dA, o);
    Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
    DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-5, 60);
    EXPECT_TRUE(r.converged);
  });
}

}  // namespace
}  // namespace hpamg
