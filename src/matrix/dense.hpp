// Small dense-matrix bridge used by tests (reference SpGEMM / SpMV) and by
// the coarsest-level direct solve of the multigrid hierarchy.
#pragma once

#include <vector>

#include "matrix/csr.hpp"
#include "support/common.hpp"

namespace hpamg {

/// Row-major dense matrix. Only intended for small sizes (coarsest AMG
/// level, test references) — O(n^2) storage.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Int rows, Int cols)
      : nrows(rows), ncols(cols), data_(std::size_t(rows) * cols, 0.0) {}

  double& operator()(Int i, Int j) { return data_[std::size_t(i) * ncols + j]; }
  double operator()(Int i, Int j) const {
    return data_[std::size_t(i) * ncols + j];
  }

  Int nrows = 0;
  Int ncols = 0;

  static DenseMatrix from_csr(const CSRMatrix& A);
  CSRMatrix to_csr(double drop_tol = 0.0) const;

  /// C = this * B (reference implementation for SpGEMM tests).
  DenseMatrix multiply(const DenseMatrix& B) const;

  /// this^T.
  DenseMatrix transpose() const;

 private:
  std::vector<double> data_;
};

/// In-place LU factorization with partial pivoting for the coarsest-level
/// direct solve. Factorize once in setup, solve many times per V-cycle.
class LUSolver {
 public:
  LUSolver() = default;
  /// Factorizes A (must be square and nonsingular up to pivot tolerance).
  explicit LUSolver(const CSRMatrix& A);

  /// Solves LU x = b; x may alias b.
  void solve(const double* b, double* x) const;

  Int size() const { return n_; }
  bool singular() const { return singular_; }
  std::uint64_t footprint_bytes() const {
    return std::uint64_t(n_) * std::uint64_t(n_) * sizeof(double) +
           piv_.size() * sizeof(Int);
  }

 private:
  Int n_ = 0;
  bool singular_ = false;
  DenseMatrix lu_;
  std::vector<Int> piv_;
};

}  // namespace hpamg
