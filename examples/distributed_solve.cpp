// Distributed solve over the simmpi runtime: the paper's multi-node
// configuration (Table 4) on simulated ranks. Each rank builds only its
// slab of the global operator (no rank ever holds the full matrix), sets
// up distributed AMG, and solves with FGMRES. Per-rank communication
// statistics and modeled cluster times are reported at the end.
//
//   $ ./distributed_solve [--ranks 4] [--n 12] [--scheme ei4|2s-ei|mp]
#include <cstdio>
#include <string>

#include "dist/dist_krylov.hpp"
#include "gen/stencil.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/project.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace hpamg;
  Cli cli(argc, argv);
  const int ranks = int(cli.get_int("ranks", 4));
  const Int n = Int(cli.get_int("n", 12));
  const std::string scheme = cli.get("scheme", "ei4");

  const Int nz = n * Int(ranks);
  std::printf("distributed 3-D Poisson: %d ranks x %d^3 rows/rank, scheme"
              " %s\n", ranks, n, scheme.c_str());

  const NetworkModel net = endeavor_network();
  simmpi::run(ranks, [&](simmpi::Comm& comm) {
    // Each rank generates only its own rows of the global 27-pt operator.
    const Long global = Long(n) * n * nz;
    DistMatrix A = build_dist_matrix(
        comm, global, global,
        [&](Long grow, std::vector<std::pair<Long, double>>& out) {
          const Int x = Int(grow % n), y = Int((grow / n) % n);
          const Int z = Int(grow / (Long(n) * n));
          double diag = 0.0;
          for (Int dz = -1; dz <= 1; ++dz)
            for (Int dy = -1; dy <= 1; ++dy)
              for (Int dx = -1; dx <= 1; ++dx) {
                if (!dx && !dy && !dz) continue;
                diag += 1.0;
                const Int xx = x + dx, yy = y + dy, zz = z + dz;
                if (xx < 0 || xx >= n || yy < 0 || yy >= n || zz < 0 ||
                    zz >= nz)
                  continue;
                out.push_back({(Long(zz) * n + yy) * n + xx, -1.0});
              }
          out.push_back({grow, diag});
        });

    DistAMGOptions opts;
    if (scheme == "mp") {
      opts.interp = InterpKind::kMultipass;
      opts.num_aggressive_levels = 1;
    } else if (scheme == "2s-ei") {
      opts.interp = InterpKind::kExtPI2Stage;
      opts.num_aggressive_levels = 1;
    }
    DistHierarchy h = dist_amg_setup(comm, A, opts);

    Vector b(A.local_rows(), 1.0), x(A.local_rows(), 0.0);
    DistSolveResult r = dist_fgmres(comm, A, h, b, x, 1e-7, 100);

    const double setup_model =
        projected_phase_seconds(h.setup_times.total(), h.setup_comm, net);
    // One rank reports the collective outcome; all report their traffic.
    if (comm.rank() == 0) {
      std::printf("converged=%s iters=%d relres=%.2e opcx=%.2f levels=%zu\n",
                  r.converged ? "yes" : "no", r.iterations, r.final_relres,
                  h.operator_complexity(), h.levels.size());
    }
    comm.barrier();
    std::printf("  rank %d: %lld local rows, setup sent %.1f KB in %llu"
                " msgs, modeled setup %.4fs\n",
                comm.rank(), (long long)A.local_rows(),
                double(h.setup_comm.bytes_sent) / 1e3,
                (unsigned long long)h.setup_comm.messages_sent, setup_model);
  });
  return 0;
}
