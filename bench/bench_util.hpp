// Shared helpers for the figure-reproduction benches: configured solver
// runs, fixed-width table printing, and the Table 3 / Table 4 parameter
// presets.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "amg/solver.hpp"
#include "dist/dist_krylov.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/network.hpp"
#include "perfmodel/project.hpp"
#include "support/cli.hpp"
#include "support/report.hpp"
#include "support/timer.hpp"

namespace hpamg::bench {

/// Table 3: single-node standalone-AMG configuration.
inline AMGOptions table3_options(Variant v, double strength_threshold = 0.25) {
  AMGOptions o;
  o.variant = v;
  o.max_levels = 7;
  o.strength.threshold = strength_threshold;
  o.strength.max_row_sum = 0.8;
  o.interp = InterpKind::kExtPI;
  o.truncation.trunc_fact = 0.1;
  o.truncation.max_elmts = 4;
  o.smoother = SmootherKind::kHybridGS;
  return o;
}

/// Table 4: multi-node FGMRES+AMG configuration for a named scheme
/// (ei(4) / 2s-ei(444) / mp).
inline DistAMGOptions table4_options(Variant v, const std::string& scheme) {
  DistAMGOptions o;
  o.variant = v;
  o.max_levels = 16;
  o.strength.threshold = 0.25;
  o.strength.max_row_sum = 0.8;
  o.truncation.trunc_fact = 0.1;
  o.truncation.max_elmts = 4;
  if (scheme == "2s-ei") {
    o.interp = InterpKind::kExtPI2Stage;
    o.num_aggressive_levels = 1;
  } else if (scheme == "mp") {
    o.interp = InterpKind::kMultipass;
    o.num_aggressive_levels = 1;
  } else {
    o.interp = InterpKind::kExtPI;
  }
  return o;
}

/// Prints a row of fixed-width cells.
inline void print_row(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

inline std::string fmt_int(long v) { return std::to_string(v); }

/// Sum of the "compute" phase categories of a solve-phase breakdown.
inline double solve_compute_seconds(const PhaseTimes& pt) {
  return pt.get("GS") + pt.get("SpMV") + pt.get("BLAS1") +
         pt.get("Solve_etc");
}

/// `--json <path>` plumbing shared by every bench binary: benches add
/// params and runs to `report` unconditionally (cheap), and main() ends
/// with `return sink.finish();` which writes BENCH_<name>.json when the
/// flag was given. The emitted document follows the schema in
/// support/report.hpp and is validated by bench/check_report.cpp.
struct JsonSink {
  JsonSink(const Cli& cli, const std::string& bench_name)
      : path(cli.get("json", "")), report(bench_name) {}

  bool enabled() const { return !path.empty(); }

  int finish() const {
    if (!enabled()) return 0;
    const std::string err = validate_bench_report_json(report.to_json());
    if (!err.empty()) {
      std::fprintf(stderr, "json report failed self-validation: %s\n",
                   err.c_str());
      return 1;
    }
    if (!report.write_file(path)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", path.c_str());
    return 0;
  }

  std::string path;
  BenchReport report;
};

}  // namespace hpamg::bench
