// Quickstart: solve a 2-D Poisson problem with hpamg in ~20 lines.
//
//   $ ./quickstart [n]
//
// Builds the 5-point Laplacian on an n x n grid, runs the setup phase, and
// solves A x = b with standalone AMG V-cycles (the paper's single-node
// configuration, Table 3).
#include <cstdio>

#include "amg/solver.hpp"
#include "gen/stencil.hpp"

int main(int argc, char** argv) {
  using namespace hpamg;
  const Int n = argc > 1 ? Int(std::atoi(argv[1])) : 200;

  // 1. The linear system: any square CSRMatrix works; generators for
  //    common model problems live in gen/.
  CSRMatrix A = lap2d_5pt(n, n);
  Vector b(A.nrows, 1.0);
  Vector x(A.nrows, 0.0);

  // 2. Setup: AMGOptions defaults mirror the paper's Table 3 (PMIS
  //    coarsening, extended+i interpolation with truncation, hybrid
  //    Gauss-Seidel smoothing, optimized kernels).
  AMGOptions opts;
  AMGSolver amg(A, opts);
  std::printf("%s", hierarchy_summary(amg.hierarchy()).c_str());

  // 3. Solve to a relative residual of 1e-7.
  SolveResult r = amg.solve(b, x, 1e-7, 100);
  std::printf("converged=%s iterations=%d final_relres=%.3e\n",
              r.converged ? "yes" : "no", r.iterations, r.final_relres);
  return r.converged ? 0 : 1;
}
