#include "gen/amg2013.hpp"

#include <cmath>

#include "gen/stencil.hpp"
#include "support/rng.hpp"

namespace hpamg {

CSRMatrix amg2013_like(Int nx, Int ny, Int nz, double refine_frac,
                       std::uint64_t seed) {
  // Backbone: 7-point Laplacian with unit coefficients outside the refined
  // box and 4x coefficients inside (refined cells => h/2 => 4x stiffness).
  const Int x0 = Int(nx * (0.5 - refine_frac / 2));
  const Int x1 = Int(nx * (0.5 + refine_frac / 2));
  const Int y0 = Int(ny * (0.5 - refine_frac / 2));
  const Int y1 = Int(ny * (0.5 + refine_frac / 2));
  const Int z0 = Int(nz * (0.5 - refine_frac / 2));
  const Int z1 = Int(nz * (0.5 + refine_frac / 2));
  auto inside = [=](Int x, Int y, Int z) {
    return x >= x0 && x < x1 && y >= y0 && y < y1 && z >= z0 && z < z1;
  };
  auto coeff = [=](Int x, Int y, Int z) {
    return inside(x, y, z) ? 4.0 : 1.0;
  };
  CSRMatrix base = lap3d_7pt(nx, ny, nz, 1.0, 1.0, coeff);

  // Seam rows: cells on the box surface get cross couplings to diagonal
  // neighbors, mimicking the irregular interpolation stencils AMG2013
  // produces at refinement boundaries.
  CounterRng rng(seed);
  std::vector<Triplet> trip;
  const Int n = base.nrows;
  std::vector<double> diag_add(n, 0.0);
  for (Int z = 1; z + 1 < nz; ++z)
    for (Int y = 1; y + 1 < ny; ++y)
      for (Int x = 1; x + 1 < nx; ++x) {
        const bool seam = inside(x, y, z) != inside(x + 1, y, z) ||
                          inside(x, y, z) != inside(x, y + 1, z) ||
                          inside(x, y, z) != inside(x, y, z + 1);
        if (!seam) continue;
        const Int i = grid_index(x, y, z, nx, ny);
        // Couple to up to 4 diagonal neighbors selected pseudo-randomly so
        // seam stencils are irregular, as in the real benchmark.
        const Int cand[4] = {grid_index(x + 1, y + 1, z, nx, ny),
                             grid_index(x - 1, y + 1, z, nx, ny),
                             grid_index(x + 1, y, z + 1, nx, ny),
                             grid_index(x, y + 1, z + 1, nx, ny)};
        for (int c = 0; c < 4; ++c) {
          if (rng.bits(std::uint64_t(i) * 4 + c) % 2) continue;
          const Int j = cand[c];
          const double w = 0.5;
          trip.push_back({i, j, -w});
          trip.push_back({j, i, -w});
          diag_add[i] += w;
          diag_add[j] += w;
        }
      }
  for (Int i = 0; i < n; ++i)
    for (Int k = base.rowptr[i]; k < base.rowptr[i + 1]; ++k) {
      double v = base.values[k];
      if (base.colidx[k] == i) v += diag_add[i];
      trip.push_back({i, base.colidx[k], v});
    }
  return CSRMatrix::from_triplets(n, n, std::move(trip));
}

}  // namespace hpamg
