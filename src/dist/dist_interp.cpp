#include "dist/dist_interp.hpp"

#include <algorithm>
#include <cmath>

#include "dist/halo.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"
#include "support/sort.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

constexpr int kTagMp = 7401;

inline double sign_of(double v) { return v >= 0 ? 1.0 : -1.0; }
inline double abar(double a_kk, double a_kl) {
  return sign_of(a_kk) == sign_of(a_kl) ? 0.0 : a_kl;
}

/// Sorted-vector membership/index helper.
inline Int sorted_find(const std::vector<Long>& v, Long g) {
  auto it = std::lower_bound(v.begin(), v.end(), g);
  return (it != v.end() && *it == g) ? Int(it - v.begin()) : -1;
}

/// Merge-walk strongness: builds the set of strong in-row offsets of the
/// (sorted) diag/offd rows of A against the strength rows of S.
struct StrongWalk {
  std::vector<Int> diag;  ///< offsets into A.diag row
  std::vector<Int> offd;  ///< offsets into A.offd row
  void compute(const DistMatrix& A, const DistMatrix& S, Int i) {
    diag.clear();
    offd.clear();
    Int ks = S.diag.rowptr[i];
    const Int ks_end = S.diag.rowptr[i + 1];
    for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k) {
      const Int j = A.diag.colidx[k];
      while (ks < ks_end && S.diag.colidx[ks] < j) ++ks;
      if (ks < ks_end && S.diag.colidx[ks] == j) diag.push_back(k);
    }
    Int ko = S.offd.rowptr[i];
    const Int ko_end = S.offd.rowptr[i + 1];
    for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k) {
      const Int j = A.offd.colidx[k];
      while (ko < ko_end && S.offd.colidx[ko] < j) ++ko;
      if (ko < ko_end && S.offd.colidx[ko] == j) offd.push_back(k);
    }
  }
};

}  // namespace

DistMatrix assemble_dist_from_rows(
    simmpi::Comm& comm, const std::vector<Long>& row_starts,
    const std::vector<Long>& col_starts,
    const std::vector<std::vector<std::pair<Long, double>>>& rows) {
  DistMatrix P;
  P.global_rows = row_starts.back();
  P.global_cols = col_starts.back();
  P.row_starts = row_starts;
  P.col_starts = col_starts;
  P.my_rank = comm.rank();
  const Int n = Int(rows.size());
  const Long c0 = P.first_col(), c1 = P.last_col();
  P.diag = CSRMatrix(n, P.local_cols());
  P.offd = CSRMatrix(n, 0);
  std::vector<Long> offd_cols;
  for (Int i = 0; i < n; ++i) {
    for (auto& [g, v] : rows[i]) {
      if (g >= c0 && g < c1)
        ++P.diag.rowptr[i + 1];
      else {
        ++P.offd.rowptr[i + 1];
        offd_cols.push_back(g);
      }
    }
  }
  exclusive_scan(P.diag.rowptr);
  exclusive_scan(P.offd.rowptr);
  P.colmap = parallel_sort_unique(std::move(offd_cols));
  P.offd.ncols = Int(P.colmap.size());
  P.diag.colidx.resize(P.diag.rowptr[n]);
  P.diag.values.resize(P.diag.rowptr[n]);
  P.offd.colidx.resize(P.offd.rowptr[n]);
  P.offd.values.resize(P.offd.rowptr[n]);
  parallel_for(0, n, [&](Int i) {
    Int pd = P.diag.rowptr[i], po = P.offd.rowptr[i];
    for (auto& [g, v] : rows[i]) {
      if (g >= c0 && g < c1) {
        P.diag.colidx[pd] = Int(g - c0);
        P.diag.values[pd] = v;
        ++pd;
      } else {
        P.offd.colidx[po] = sorted_find(P.colmap, g);
        P.offd.values[po] = v;
        ++po;
      }
    }
  });
  P.diag.sort_rows();
  P.offd.sort_rows();
  return P;
}

DistMatrix dist_extpi_interp(simmpi::Comm& comm, const DistMatrix& A,
                             const DistMatrix& S, const DistMatrix& ST,
                             const CFMarker& cf, const CoarseNumbering& cn,
                             const DistInterpOptions& opt, WorkCounters* wc,
                             DistInterpInfo* info) {
  TRACE_SPAN("interp.extpi_dist", "kernel", "rows",
             std::int64_t(A.local_rows()));
  const Int n = A.local_rows();
  const Long r0 = A.first_row();

  // Halo data on A's colmap: CF markers and coarse ids of boundary points.
  HaloExchange halo(comm, A.colmap, A.row_starts, opt.persistent);
  std::vector<signed char> cf_ext;
  halo.exchange(cf, cf_ext);
  std::vector<Long> cid_ext;
  halo.exchange(cn.local_to_global, cid_ext);

  // Local diagonal values (needed by the sender-side filter and by b_ik).
  std::vector<double> adiag(n, 0.0);
  parallel_for(0, n, [&](Int i) {
    for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k)
      if (A.diag.colidx[k] == i) adiag[i] = A.diag.values[k];
  });

  // --- Remote data: rows of strong F boundary points. ---
  std::vector<Long> needF;
  {
    StrongWalk sw;
    std::vector<char> wanted(A.colmap.size(), 0);
    for (Int i = 0; i < n; ++i) {
      if (cf[i] > 0) continue;
      sw.compute(A, S, i);
      for (Int k : sw.offd)
        if (cf_ext[A.offd.colidx[k]] <= 0) wanted[A.offd.colidx[k]] = 1;
    }
    for (std::size_t j = 0; j < wanted.size(); ++j)
      if (wanted[j]) needF.push_back(A.colmap[j]);
  }

  // Coarse-adjacency rows ("SC"): strength entries restricted to C points,
  // value = the C point's global coarse id. Serves Ĉ construction for
  // remote strong F neighbors.
  DistMatrix SC = S;
  {
    std::vector<std::vector<std::pair<Long, double>>> rows(n);
    for (Int i = 0; i < n; ++i) {
      for (Int k = S.diag.rowptr[i]; k < S.diag.rowptr[i + 1]; ++k) {
        const Int c = S.diag.colidx[k];
        if (cf[c] > 0)
          rows[i].push_back({r0 + c, double(cn.local_to_global[c])});
      }
      for (Int k = S.offd.rowptr[i]; k < S.offd.rowptr[i + 1]; ++k) {
        const Int j = S.offd.colidx[k];
        if (cf_ext[j] > 0)
          rows[i].push_back({S.colmap[j], double(cid_ext[j])});
      }
    }
    SC = assemble_dist_from_rows(comm, A.row_starts, A.row_starts, rows);
  }
  GatheredRows sc_rows = gather_rows(comm, SC, needF, nullptr, opt.persistent);

  // The §4.3 sender-side filter for A rows: keep the diagonal, keep
  // opposite-sign C columns, keep opposite-sign F columns the sender
  // strongly influences (candidates for the requester's own point i).
  RowFilter filter = nullptr;
  if (opt.filtered_exchange) {
    // Per-row cache of the sender's ST-row membership set.
    auto st_set = std::make_shared<HashSet<Long>>(16);
    auto cached_row = std::make_shared<Int>(-1);
    filter = [&, st_set, cached_row](Int k, Long gcol, double v) -> bool {
      if (gcol == r0 + k) return true;  // diagonal (carries the sign)
      if (sign_of(v) == sign_of(adiag[k])) return false;  // ā_kl would be 0
      // C point?
      if (gcol >= r0 && gcol < A.last_row()) {
        if (cf[Int(gcol - r0)] > 0) return true;
      } else if (Int j = sorted_find(A.colmap, gcol); j >= 0) {
        if (cf_ext[j] > 0) return true;
      }
      // F point: keep only if k strongly influences it (it may be the
      // requesting row i).
      if (*cached_row != k) {
        *st_set = HashSet<Long>(16);
        for (Int kk = ST.diag.rowptr[k]; kk < ST.diag.rowptr[k + 1]; ++kk)
          st_set->insert(ST.first_col() + ST.diag.colidx[kk]);
        for (Int kk = ST.offd.rowptr[k]; kk < ST.offd.rowptr[k + 1]; ++kk)
          st_set->insert(ST.colmap[ST.offd.colidx[kk]]);
        *cached_row = k;
      }
      return st_set->contains(gcol);
    };
  }
  GatheredRows a_rows = gather_rows(comm, A, needF, filter, opt.persistent);
  if (info) info->gathered_bytes += a_rows.bytes_received +
                                    sc_rows.bytes_received;

  // --- Row construction. ---
  std::vector<std::vector<std::pair<Long, double>>> rows(n);
  const auto ext_row_of = [&](Long g) { return sorted_find(needF, g); };

  StrongWalk sw;
  HashMap<Long> chat(64);           // fine gid -> slot
  std::vector<Long> chat_fine;      // slot -> fine gid
  std::vector<Long> chat_coarse;    // slot -> coarse gid
  std::vector<double> acc;

  for (Int i = 0; i < n; ++i) {
    if (cf[i] > 0) {
      rows[i].push_back({cn.local_to_global[i], 1.0});
      continue;
    }
    sw.compute(A, S, i);
    chat = HashMap<Long>(64);
    chat_fine.clear();
    chat_coarse.clear();
    acc.clear();
    auto chat_insert = [&](Long fine_gid, Long coarse_gid) {
      const Int slot = Int(chat_fine.size());
      if (chat.insert_or_get(fine_gid, slot) == slot &&
          Int(chat_fine.size()) == slot) {
        chat_fine.push_back(fine_gid);
        chat_coarse.push_back(coarse_gid);
        acc.push_back(0.0);
      }
      if (wc) ++wc->hash_probes;
    };

    // Seed Ĉ_i from strong neighbors and their strong C sets.
    for (Int k : sw.diag) {
      const Int j = A.diag.colidx[k];
      if (cf[j] > 0) {
        chat_insert(r0 + j, cn.local_to_global[j]);
      } else {
        for (Int ks = S.diag.rowptr[j]; ks < S.diag.rowptr[j + 1]; ++ks) {
          const Int j2 = S.diag.colidx[ks];
          if (j2 != i && cf[j2] > 0)
            chat_insert(r0 + j2, cn.local_to_global[j2]);
        }
        for (Int ks = S.offd.rowptr[j]; ks < S.offd.rowptr[j + 1]; ++ks) {
          const Int j2 = S.offd.colidx[ks];
          if (cf_ext[j2] > 0) chat_insert(S.colmap[j2], cid_ext[j2]);
        }
      }
    }
    for (Int k : sw.offd) {
      const Int j = A.offd.colidx[k];
      if (cf_ext[j] > 0) {
        chat_insert(A.colmap[j], cid_ext[j]);
      } else {
        const Int e = ext_row_of(A.colmap[j]);
        for (Int ks = sc_rows.rowptr[e]; ks < sc_rows.rowptr[e + 1]; ++ks) {
          if (sc_rows.gcol[ks] != r0 + i)
            chat_insert(sc_rows.gcol[ks], Long(sc_rows.values[ks]));
        }
      }
    }
    if (chat_fine.empty()) continue;  // no interpolatory set

    // Numerator seeds + weak lumping into the diagonal.
    double atilde = 0.0;
    {
      std::size_t sp = 0;
      for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k) {
        const Int j = A.diag.colidx[k];
        const double v = A.diag.values[k];
        if (j == i) {
          atilde += v;
          continue;
        }
        while (sp < sw.diag.size() && sw.diag[sp] < k) ++sp;
        const bool strong = sp < sw.diag.size() && sw.diag[sp] == k;
        const Int slot = chat.get(r0 + j, -1);
        if (slot >= 0)
          acc[slot] += v;
        else if (!(strong && cf[j] <= 0))
          atilde += v;
      }
      std::size_t so = 0;
      for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k) {
        const Int j = A.offd.colidx[k];
        const double v = A.offd.values[k];
        while (so < sw.offd.size() && sw.offd[so] < k) ++so;
        const bool strong = so < sw.offd.size() && sw.offd[so] == k;
        const Int slot = chat.get(A.colmap[j], -1);
        if (slot >= 0)
          acc[slot] += v;
        else if (!(strong && cf_ext[j] <= 0))
          atilde += v;
      }
    }

    // Distance-two distribution through strong F neighbors.
    auto distribute = [&](double a_ik, double a_kk, auto&& for_each_entry) {
      // Pass 1: b_ik over Ĉ_i ∪ {i}.
      double b_ik = 0.0;
      for_each_entry([&](Long l, double v) {
        const double ab = abar(a_kk, v);
        if (ab == 0.0) return;
        if (l == r0 + i || chat.get(l, -1) >= 0) b_ik += ab;
      });
      if (b_ik == 0.0) {
        atilde += a_ik;
        return;
      }
      const double scale = a_ik / b_ik;
      for_each_entry([&](Long l, double v) {
        const double ab = abar(a_kk, v);
        if (ab == 0.0) return;
        if (l == r0 + i) {
          atilde += scale * ab;
        } else if (Int slot = chat.get(l, -1); slot >= 0) {
          acc[slot] += scale * ab;
        }
        if (wc) wc->flops += 2;
      });
    };
    for (Int k : sw.diag) {
      const Int j = A.diag.colidx[k];
      if (cf[j] > 0) continue;
      distribute(A.diag.values[k], adiag[j], [&](auto&& fn) {
        for (Int kk = A.diag.rowptr[j]; kk < A.diag.rowptr[j + 1]; ++kk)
          fn(r0 + A.diag.colidx[kk], A.diag.values[kk]);
        for (Int kk = A.offd.rowptr[j]; kk < A.offd.rowptr[j + 1]; ++kk)
          fn(A.colmap[A.offd.colidx[kk]], A.offd.values[kk]);
      });
    }
    for (Int k : sw.offd) {
      const Int j = A.offd.colidx[k];
      if (cf_ext[j] > 0) continue;
      const Long gk = A.colmap[j];
      const Int e = ext_row_of(gk);
      double a_kk = 0.0;
      for (Int kk = a_rows.rowptr[e]; kk < a_rows.rowptr[e + 1]; ++kk)
        if (a_rows.gcol[kk] == gk) a_kk = a_rows.values[kk];
      distribute(A.offd.values[k], a_kk, [&](auto&& fn) {
        for (Int kk = a_rows.rowptr[e]; kk < a_rows.rowptr[e + 1]; ++kk) {
          if (a_rows.gcol[kk] == gk) continue;  // skip the diagonal
          fn(a_rows.gcol[kk], a_rows.values[kk]);
        }
      });
    }

    // Finalize and (fused) truncate.
    if (atilde == 0.0) continue;
    const double inv = -1.0 / atilde;
    std::vector<Long> rc;
    std::vector<double> rv;
    for (std::size_t s = 0; s < acc.size(); ++s) {
      if (acc[s] == 0.0) continue;
      rc.push_back(chat_coarse[s]);
      rv.push_back(inv * acc[s]);
    }
    Int len = Int(rc.size());
    if (opt.fused_truncation)
      len = truncate_row(rc.data(), rv.data(), len, opt.truncation);
    for (Int k = 0; k < len; ++k) rows[i].push_back({rc[k], rv[k]});
  }

  DistMatrix P = assemble_dist_from_rows(comm, A.row_starts, cn.starts, rows);
  if (!opt.fused_truncation) {
    // Baseline: whole-operator truncation as a second pass over P.
    std::vector<std::vector<std::pair<Long, double>>> trows(n);
    std::vector<Long> rc;
    std::vector<double> rv;
    for (Int i = 0; i < n; ++i) {
      if (cf[i] > 0) {
        trows[i] = {{cn.local_to_global[i], 1.0}};
        continue;
      }
      rc.clear();
      rv.clear();
      for (Int k = P.diag.rowptr[i]; k < P.diag.rowptr[i + 1]; ++k) {
        rc.push_back(P.first_col() + P.diag.colidx[k]);
        rv.push_back(P.diag.values[k]);
      }
      for (Int k = P.offd.rowptr[i]; k < P.offd.rowptr[i + 1]; ++k) {
        rc.push_back(P.colmap[P.offd.colidx[k]]);
        rv.push_back(P.offd.values[k]);
      }
      const Int len = truncate_row(rc.data(), rv.data(), Int(rc.size()),
                                   opt.truncation);
      for (Int k = 0; k < len; ++k) trows[i].push_back({rc[k], rv[k]});
    }
    P = assemble_dist_from_rows(comm, A.row_starts, cn.starts, trows);
  }
  return P;
}

DistMatrix dist_multipass_interp(simmpi::Comm& comm, const DistMatrix& A,
                                 const DistMatrix& S, const CFMarker& cf,
                                 const CoarseNumbering& cn,
                                 const DistInterpOptions& opt,
                                 WorkCounters* wc, DistInterpInfo* info) {
  TRACE_SPAN("interp.multipass_dist", "kernel", "rows",
             std::int64_t(A.local_rows()));
  const Int n = A.local_rows();
  const Long r0 = A.first_row();
  HaloExchange halo(comm, A.colmap, A.row_starts, opt.persistent);
  std::vector<signed char> cf_ext;
  halo.exchange(cf, cf_ext);
  std::vector<Long> cid_ext;
  halo.exchange(cn.local_to_global, cid_ext);

  std::vector<std::vector<std::pair<Long, double>>> rows(n);
  std::vector<signed char> done(n, 0);

  // Pass 1: C identity + direct interpolation where a strong C neighbor
  // exists (needs only local rows + halo markers).
  StrongWalk sw;
  for (Int i = 0; i < n; ++i) {
    if (cf[i] > 0) {
      rows[i].push_back({cn.local_to_global[i], 1.0});
      done[i] = 1;
      continue;
    }
    sw.compute(A, S, i);
    double diag = 0.0, sum_all = 0.0, sum_c = 0.0;
    for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k) {
      if (A.diag.colidx[k] == i)
        diag = A.diag.values[k];
      else
        sum_all += A.diag.values[k];
    }
    for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k)
      sum_all += A.offd.values[k];
    for (Int k : sw.diag)
      if (cf[A.diag.colidx[k]] > 0) sum_c += A.diag.values[k];
    for (Int k : sw.offd)
      if (cf_ext[A.offd.colidx[k]] > 0) sum_c += A.offd.values[k];
    if (sum_c == 0.0 || diag == 0.0) continue;
    // Direct interpolation pushing the full off-diagonal row mass onto the
    // strong C set (same formula as the sequential multipass pass 1).
    const double alpha = sum_all / sum_c;
    for (Int k : sw.diag) {
      const Int j = A.diag.colidx[k];
      if (cf[j] > 0)
        rows[i].push_back(
            {cn.local_to_global[j], -alpha * A.diag.values[k] / diag});
    }
    for (Int k : sw.offd) {
      const Int j = A.offd.colidx[k];
      if (cf_ext[j] > 0)
        rows[i].push_back({cid_ext[j], -alpha * A.offd.values[k] / diag});
    }
    done[i] = 1;
  }

  // Later passes: substitute done strong neighbors' rows; remote rows are
  // gathered per pass.
  for (int pass = 2; pass <= 10; ++pass) {
    Long undone = 0;
    for (Int i = 0; i < n; ++i)
      if (!done[i]) ++undone;
    if (comm.allreduce_sum(undone) == 0) break;

    std::vector<signed char> done_ext;
    halo.exchange(done, done_ext);

    // Which remote rows do we need? Done strong neighbors of undone points.
    std::vector<Long> need;
    {
      std::vector<char> wanted(A.colmap.size(), 0);
      for (Int i = 0; i < n; ++i) {
        if (done[i] || cf[i] > 0) continue;
        sw.compute(A, S, i);
        for (Int k : sw.offd) {
          const Int j = A.offd.colidx[k];
          if (done_ext[j]) wanted[j] = 1;
        }
      }
      for (std::size_t j = 0; j < wanted.size(); ++j)
        if (wanted[j]) need.push_back(A.colmap[j]);
    }
    // Mini row gather from the dynamic structure (a DistMatrix would be
    // rebuilt every pass otherwise).
    const int nranks = comm.size();
    std::vector<std::vector<Long>> req(nranks);
    for (Long g : need) {
      auto it = std::upper_bound(A.row_starts.begin(), A.row_starts.end(), g);
      req[int(it - A.row_starts.begin()) - 1].push_back(g);
    }
    for (int r = 0; r < nranks; ++r)
      if (r != comm.rank()) comm.send_vec(r, kTagMp + pass, req[r]);
    std::vector<std::vector<Long>> got_cols(nranks);
    std::vector<std::vector<double>> got_vals(nranks);
    std::vector<std::vector<Int>> got_lens(nranks);
    for (int r = 0; r < nranks; ++r) {
      if (r == comm.rank()) continue;
      std::vector<Long> theirs = comm.recv_vec<Long>(r, kTagMp + pass);
      std::vector<Int> lens;
      std::vector<Long> cols;
      std::vector<double> vals;
      for (Long g : theirs) {
        const auto& row = rows[Int(g - r0)];
        lens.push_back(Int(row.size()));
        for (auto& [c, v] : row) {
          cols.push_back(c);
          vals.push_back(v);
        }
      }
      if (!theirs.empty()) {
        comm.send_vec(r, kTagMp + 20 + pass, lens, opt.persistent);
        comm.send_vec(r, kTagMp + 40 + pass, cols, opt.persistent);
        comm.send_vec(r, kTagMp + 60 + pass, vals, opt.persistent);
      }
    }
    // Assemble received rows keyed by global id.
    std::vector<Long> got_ids;
    std::vector<std::vector<std::pair<Long, double>>> got_rows;
    for (int r = 0; r < nranks; ++r) {
      if (r == comm.rank() || req[r].empty()) continue;
      std::vector<Int> lens = comm.recv_vec<Int>(r, kTagMp + 20 + pass);
      std::vector<Long> cols = comm.recv_vec<Long>(r, kTagMp + 40 + pass);
      std::vector<double> vals = comm.recv_vec<double>(r, kTagMp + 60 + pass);
      if (info)
        info->gathered_bytes += cols.size() * sizeof(Long) +
                                vals.size() * sizeof(double);
      Int pos = 0;
      for (std::size_t k = 0; k < lens.size(); ++k) {
        got_ids.push_back(req[r][k]);
        std::vector<std::pair<Long, double>> row;
        for (Int e = 0; e < lens[k]; ++e, ++pos)
          row.push_back({cols[pos], vals[pos]});
        got_rows.push_back(std::move(row));
      }
    }
    auto remote_row = [&](Long g) -> const std::vector<std::pair<Long, double>>* {
      for (std::size_t k = 0; k < got_ids.size(); ++k)
        if (got_ids[k] == g) return &got_rows[k];
      return nullptr;
    };

    Long progressed = 0;
    std::vector<signed char> newly(n, 0);
    for (Int i = 0; i < n; ++i) {
      if (done[i]) continue;
      sw.compute(A, S, i);
      HashMap<Long> pos(16);
      std::vector<Long> cols;
      std::vector<double> acc;
      double diag = 0.0, lump = 0.0;
      bool any = false;
      auto substitute = [&](double a_ij,
                            const std::vector<std::pair<Long, double>>& prow) {
        any = true;
        for (auto& [c, w] : prow) {
          const Int slot = Int(cols.size());
          const Int got = pos.insert_or_get(c, slot);
          if (got == slot && Int(cols.size()) == slot) {
            cols.push_back(c);
            acc.push_back(0.0);
          }
          acc[pos.get(c)] += a_ij * w;
        }
      };
      std::size_t sd = 0, so = 0;
      for (Int k = A.diag.rowptr[i]; k < A.diag.rowptr[i + 1]; ++k) {
        const Int j = A.diag.colidx[k];
        const double v = A.diag.values[k];
        if (j == i) {
          diag = v;
          continue;
        }
        while (sd < sw.diag.size() && sw.diag[sd] < k) ++sd;
        const bool strong = sd < sw.diag.size() && sw.diag[sd] == k;
        if (strong && done[j])
          substitute(v, rows[j]);
        else
          lump += v;
      }
      for (Int k = A.offd.rowptr[i]; k < A.offd.rowptr[i + 1]; ++k) {
        const Int j = A.offd.colidx[k];
        const double v = A.offd.values[k];
        while (so < sw.offd.size() && sw.offd[so] < k) ++so;
        const bool strong = so < sw.offd.size() && sw.offd[so] == k;
        const auto* prow =
            (strong && done_ext[j]) ? remote_row(A.colmap[j]) : nullptr;
        if (prow)
          substitute(v, *prow);
        else
          lump += v;
      }
      const double dd = diag + lump;
      if (!any || dd == 0.0) continue;
      const double inv = -1.0 / dd;
      for (std::size_t s = 0; s < cols.size(); ++s)
        if (acc[s] != 0.0) rows[i].push_back({cols[s], inv * acc[s]});
      newly[i] = 1;
      ++progressed;
    }
    for (Int i = 0; i < n; ++i)
      if (newly[i]) done[i] = 1;
    if (comm.allreduce_sum(progressed) == 0) break;
  }

  // Fused truncation per F row.
  std::vector<Long> rc;
  std::vector<double> rv;
  for (Int i = 0; i < n; ++i) {
    if (cf[i] > 0) continue;
    rc.clear();
    rv.clear();
    for (auto& [c, v] : rows[i]) {
      rc.push_back(c);
      rv.push_back(v);
    }
    const Int len =
        truncate_row(rc.data(), rv.data(), Int(rc.size()), opt.truncation);
    rows[i].clear();
    for (Int k = 0; k < len; ++k) rows[i].push_back({rc[k], rv[k]});
  }
  return assemble_dist_from_rows(comm, A.row_starts, cn.starts, rows);
}

}  // namespace hpamg
