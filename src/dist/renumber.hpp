// Column-index renumbering for distributed SpGEMM-like operations
// (SC'15 §4.2, Fig 4).
//
// After gathering remote matrix rows, their global column indices must be
// mapped into the rank's compressed local column space: own columns map to
// [0, nloc), existing colmap entries to [nloc, nloc + m), and previously
// unseen off-rank columns get fresh indices [nloc + m, ...) — a
// sort-with-duplicate-elimination problem the paper identifies as a
// dominant setup-phase cost at scale.
//
//  - renumber_columns_baseline: the straightforward sequential ordered-map
//    approach (what "HYPRE_base" effectively does);
//  - renumber_columns_parallel: the paper's scheme — thread-private hash
//    tables filter duplicates without synchronization, a parallel merge
//    sort with duplicate elimination builds the new colmap, and a reverse
//    mapping (hash tables partitioned over disjoint sorted ranges) serves
//    the final renumbering lookups at O(log t) instead of O(log n).
#pragma once

#include "support/common.hpp"
#include "support/counters.hpp"

#include <vector>

namespace hpamg {

struct RenumberInput {
  const std::vector<Long>* gcol;      ///< global column per nonzero
  Long own_first = 0;                 ///< own column range [first, last)
  Long own_last = 0;
  const std::vector<Long>* existing;  ///< current colmap (sorted, off-rank)
  Int nloc = 0;                       ///< own columns map to [0, nloc)
};

struct RenumberResult {
  std::vector<Int> local;        ///< combined local index per nonzero
  std::vector<Long> new_entries; ///< sorted new colmap entries, indices
                                 ///< [nloc + m, nloc + m + k)
};

RenumberResult renumber_columns_baseline(const RenumberInput& in,
                                         WorkCounters* wc = nullptr);

RenumberResult renumber_columns_parallel(const RenumberInput& in,
                                         WorkCounters* wc = nullptr);

}  // namespace hpamg
