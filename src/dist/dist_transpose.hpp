// Distributed matrix transpose: every local nonzero (i, j_global, v)
// becomes (j_global, i_global, v) on the rank owning row j_global of the
// result. One all-to-all of triplets, then local assembly with the same
// diag/offd + colmap split as any distributed matrix.
#pragma once

#include "dist/dist_matrix.hpp"
#include "support/counters.hpp"

namespace hpamg {

/// Returns A^T, row-partitioned by A's column partition. `parallel` selects
/// the optimized local assembly (parallel counting sort, §3.3) versus the
/// baseline sequential assembly.
DistMatrix dist_transpose(simmpi::Comm& comm, const DistMatrix& A,
                          bool parallel = true, WorkCounters* wc = nullptr);

}  // namespace hpamg
