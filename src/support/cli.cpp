#include "support/cli.hpp"

#include <cstdlib>

namespace hpamg {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts_[arg] = argv[++i];
    } else {
      opts_[arg] = "1";
    }
  }
}

bool Cli::has(const std::string& key) const { return opts_.count(key) > 0; }

std::string Cli::get(const std::string& key,
                     const std::string& fallback) const {
  auto it = opts_.find(key);
  return it == opts_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  auto it = opts_.find(key);
  return it == opts_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = opts_.find(key);
  return it == opts_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace hpamg
