#include "dist/dist_krylov.hpp"

#include <cmath>
#include <string>

#include "amg/telemetry.hpp"
#include "krylov/gmres_common.hpp"
#include "matrix/vector_ops.hpp"
#include "support/check.hpp"
#include "support/fault.hpp"
#include "support/live.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace hpamg {

namespace {

/// Residual with a caller-provided halo (avoids rebuilding patterns).
void residual(simmpi::Comm& comm, const DistMatrix& A, HaloExchange& halo,
              const Vector& x, Vector& x_ext, const Vector& b, Vector& r) {
  dist_spmv(comm, A, halo, x, x_ext, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

/// Detaches the telemetry hook on every exit path (the hook lives on the
/// solve's stack frame; the hierarchy outlives it).
struct TelemetryLoan {
  DistHierarchy& h;
  TelemetryLoan(DistHierarchy& hier, CycleTelemetryHook* hook) : h(hier) {
    h.telemetry = hook;
  }
  ~TelemetryLoan() { h.telemetry = nullptr; }
  TelemetryLoan(const TelemetryLoan&) = delete;
  TelemetryLoan& operator=(const TelemetryLoan&) = delete;
};

}  // namespace

DistSolveResult dist_fgmres(simmpi::Comm& comm, const DistMatrix& A,
                            DistHierarchy& h, const Vector& b, Vector& x,
                            double rtol, Int max_iterations, Int restart) {
  TRACE_SPAN("krylov.fgmres", "phase");
  DistSolveResult res;
  const Int n = A.local_rows();
  // Solver-entry invariants: ownership partition and vector shapes.
  HPAMG_CHECK_INVARIANT(check::Depth::kCheap,
                        A.check_partition(comm.size()));
  HPAMG_CHECK_INVARIANT(
      check::Depth::kCheap,
      check::vectors_match(std::size_t(n), b.size(), x.size(),
                           "dist_fgmres"));
  PhaseTimes& pt = res.solve_times;
  HaloExchange halo(comm, A.colmap, A.row_starts, true);
  Vector x_ext;

  CpuTimer t_blas;
  double normb = dist_norm2(comm, b);
  pt.add("BLAS1", t_blas.seconds());
  if (normb == 0.0) normb = 1.0;

  std::vector<Vector> V(restart + 1, Vector(n, 0.0));
  std::vector<Vector> Z(restart, Vector(n, 0.0));
  Vector r(n), w(n);
  // Best finite iterate seen at a restart boundary — the fallback when x
  // itself turns non-finite. Every classification below uses globally
  // reduced quantities, so all ranks take the same branch.
  Vector x_best(x);
  double x_best_relres = -1.0;
  Int total_it = 0;
  double relres = 0.0;

  // Per-iteration telemetry rides along only when the metrics registry is
  // on; dist smoother effectiveness is not measured (it would add
  // collectives and perturb the comm-stat baselines).
  const bool telemetry_on = metrics::enabled();
  CycleTelemetryHook tel;
  TelemetryLoan loan(h, telemetry_on ? &tel : nullptr);
  double prev_relres = -1.0;
  CpuTimer t_iter;

  while (total_it < max_iterations) {
    {
      CpuTimer t;
      residual(comm, A, halo, x, x_ext, b, r);
      pt.add("SpMV", t.seconds());
    }
    CpuTimer t2;
    const double beta = dist_norm2(comm, r);
    pt.add("BLAS1", t2.seconds());
    relres = beta / normb;
    if (relres < rtol) {
      res.converged = true;
      res.status = res.recoveries > 0 ? Status::kRecovered : Status::kOk;
      break;
    }
    if (!std::isfinite(relres)) {
      if (res.nonfinite_iteration < 0) res.nonfinite_iteration = total_it;
      if (res.recoveries < kDistMaxRecoveries && x_best_relres >= 0.0) {
        ++res.recoveries;
        copy(x_best, x);
        std::string ev = "recovered at iteration " +
                         std::to_string(total_it) +
                         " (non_finite): restored best restart iterate";
        if (comm.rank() == 0) HPAMG_LOG_WARN("fgmres %s", ev.c_str());
        trace::instant("fgmres.recovery", "fault");
        res.events.push_back(std::move(ev));
        continue;
      }
      res.status = Status::kNonFinite;
      break;
    }
    if (x_best_relres < 0.0 || relres < x_best_relres) {
      copy(x, x_best);
      x_best_relres = relres;
    }
    copy(r, V[0]);
    scale(1.0 / beta, V[0]);
    detail::HessenbergLS ls(restart);
    ls.set_rhs(beta);
    if (prev_relres < 0.0) prev_relres = relres;  // restart-entry residual

    bool basis_poisoned = false;
    Int j = 0;
    for (; j < restart && total_it < max_iterations; ++j, ++total_it) {
      TRACE_SPAN("fgmres.iter", std::int64_t(total_it));
      if (telemetry_on) {
        tel.begin_cycle(h.levels.size());
        t_iter.reset();
      }
      // Preconditioner: one distributed AMG V-cycle.
      std::fill(Z[j].begin(), Z[j].end(), 0.0);
      dist_vcycle(comm, h, V[j], Z[j], &pt);
      {
        CpuTimer t;
        dist_spmv(comm, A, halo, Z[j], x_ext, w);
        pt.add("SpMV", t.seconds());
      }
      if (fault::enabled())
        fault::maybe_poison("dist.solve.poison", w.data(), w.size());
      CpuTimer t3;
      for (Int i = 0; i <= j; ++i) {
        const double hij = dist_dot(comm, w, V[i]);
        ls.h(i, j) = hij;
        axpy(-hij, V[i], w);
      }
      const double hn = dist_norm2(comm, w);
      ls.h(j + 1, j) = hn;
      if (hn != 0.0 && std::isfinite(hn)) {
        copy(w, V[j + 1]);
        scale(1.0 / hn, V[j + 1]);
      }
      relres = ls.apply_rotations(j) / normb;
      pt.add("BLAS1", t3.seconds());
      res.iterations = total_it + 1;
      res.history.push_back(relres);
      live::beat_iteration(total_it + 1, relres);
      if (telemetry_on) {
        res.telemetry.push_back(make_iteration_entry(
            total_it + 1, relres, prev_relres, t_iter.seconds(), normb,
            &tel));
      }
      prev_relres = relres;
      if (comm.rank() == 0)
        HPAMG_LOG_DEBUG("fgmres it %d relres %.3e", int(total_it + 1),
                        relres);
      if (!std::isfinite(relres) || !std::isfinite(hn)) {
        // The in-flight Krylov basis is poisoned; x is still the finite
        // iterate from the last restart boundary. Discard the basis and
        // restart instead of spreading the NaN through the update.
        if (res.nonfinite_iteration < 0)
          res.nonfinite_iteration = total_it + 1;
        basis_poisoned = true;
        ++j;
        ++total_it;
        break;
      }
      if (relres < rtol || hn == 0.0) {
        ++j;
        ++total_it;
        break;
      }
    }
    if (basis_poisoned) {
      if (res.recoveries < kDistMaxRecoveries) {
        ++res.recoveries;
        std::string ev = "recovered at iteration " + std::to_string(total_it) +
                         " (non_finite): discarded Krylov basis, restarted "
                         "from last restart iterate";
        if (comm.rank() == 0) HPAMG_LOG_WARN("fgmres %s", ev.c_str());
        trace::instant("fgmres.recovery", "fault");
        res.events.push_back(std::move(ev));
        continue;
      }
      res.status = Status::kNonFinite;
      break;
    }
    CpuTimer t4;
    std::vector<double> y = ls.solve(j);
    for (Int i = 0; i < j; ++i) axpy(y[i], Z[i], x);
    pt.add("BLAS1", t4.seconds());
    if (relres < rtol) {
      res.converged = true;
      res.status = res.recoveries > 0 ? Status::kRecovered : Status::kOk;
      break;
    }
  }
  res.final_relres = relres;
  return res;
}

DistSolveResult dist_amg_solve(simmpi::Comm& comm, const DistMatrix& A,
                               DistHierarchy& h, const Vector& b, Vector& x,
                               double rtol, Int max_iterations) {
  TRACE_SPAN("krylov.amg_richardson", "phase");
  DistSolveResult res;
  HPAMG_CHECK_INVARIANT(check::Depth::kCheap,
                        A.check_partition(comm.size()));
  HPAMG_CHECK_INVARIANT(
      check::Depth::kCheap,
      check::vectors_match(std::size_t(A.local_rows()), b.size(), x.size(),
                           "dist_amg_solve"));
  PhaseTimes& pt = res.solve_times;
  HaloExchange halo(comm, A.colmap, A.row_starts, true);
  Vector x_ext, r(A.local_rows());

  double normb = dist_norm2(comm, b);
  if (normb == 0.0) normb = 1.0;
  double relres = 0.0;
  // Scrub-and-restart recovery, mirroring AMGSolver::solve: the monitor
  // classifies the globally reduced residual (identical on every rank), a
  // non-finite/diverging iteration restores the last improving snapshot.
  ConvergenceMonitor monitor;
  Vector x_best(x);
  double x_best_relres = -1.0;
  Int x_best_iteration = 0;
  const bool telemetry_on = metrics::enabled();
  CycleTelemetryHook tel;
  TelemetryLoan loan(h, telemetry_on ? &tel : nullptr);
  double prev_relres = -1.0;
  CpuTimer t_iter;
  for (Int it = 1; it <= max_iterations; ++it) {
    if (fault::enabled())
      fault::maybe_poison("dist.solve.poison", x.data(), x.size());
    if (telemetry_on) {
      tel.begin_cycle(h.levels.size());
      t_iter.reset();
    }
    dist_vcycle(comm, h, b, x, &pt);
    CpuTimer t;
    dist_spmv(comm, A, halo, x, x_ext, r);
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    pt.add("SpMV", t.seconds());
    CpuTimer t2;
    relres = dist_norm2(comm, r) / normb;
    pt.add("BLAS1", t2.seconds());
    res.iterations = it;
    res.history.push_back(relres);
    live::beat_iteration(it, relres);
    if (telemetry_on) {
      res.telemetry.push_back(make_iteration_entry(it, relres, prev_relres,
                                                   t_iter.seconds(), normb,
                                                   &tel));
    }
    prev_relres = relres;
    if (comm.rank() == 0)
      HPAMG_LOG_DEBUG("amg it %d relres %.3e", int(it), relres);
    if (relres < rtol) {
      res.converged = true;
      res.status = res.recoveries > 0 ? Status::kRecovered : Status::kOk;
      break;
    }
    const Status verdict = monitor.observe(it, relres);
    if (verdict == Status::kOk) {
      if (x_best_relres < 0.0 || relres < x_best_relres) {
        copy(x, x_best);
        x_best_relres = relres;
        x_best_iteration = it;
      }
      continue;
    }
    if (verdict == Status::kNonFinite && res.nonfinite_iteration < 0)
      res.nonfinite_iteration = it;
    if (res.recoveries < kDistMaxRecoveries) {
      ++res.recoveries;
      copy(x_best, x);
      monitor.note_recovery();
      std::string ev = "recovered at iteration " + std::to_string(it) + " (" +
                       status_name(verdict) + "): restored iterate from " +
                       "iteration " + std::to_string(x_best_iteration);
      if (comm.rank() == 0) HPAMG_LOG_WARN("amg %s", ev.c_str());
      trace::instant("amg.recovery", "fault");
      res.events.push_back(std::move(ev));
      continue;
    }
    res.status = verdict;
    res.events.push_back(std::string("recovery budget exhausted; stopped (") +
                         status_name(verdict) + ") at iteration " +
                         std::to_string(it));
    break;
  }
  if (!res.converged && res.status == Status::kMaxIterations &&
      monitor.stagnated())
    res.status = Status::kStagnated;
  res.final_relres = relres;
  return res;
}

}  // namespace hpamg
