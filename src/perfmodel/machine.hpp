// Machine models of the paper's evaluation hardware (SC'15 Table 1).
//
// AMG is memory-bandwidth bound (§1, §5.1: "STREAM triad performance ...
// provides an upper-bound on achievable performance of AMG"), so the
// compute model is a bandwidth roofline: time = bytes moved / effective
// STREAM bandwidth, with a flop roofline as a secondary bound. These models
// convert the machine-independent WorkCounters recorded by every kernel
// into projected times on the paper's hardware (see DESIGN.md §1 for why
// this substitution preserves the paper's comparisons).
#pragma once

#include <string>

#include "support/counters.hpp"

namespace hpamg {

struct MachineModel {
  std::string name;
  double stream_bw_bytes_per_s;  ///< STREAM triad bandwidth
  double peak_flops;             ///< double-precision peak
  /// Effective fraction of STREAM achieved by irregular sparse kernels
  /// (gathers and short rows waste bus transactions).
  double sparse_efficiency = 0.6;
  /// Cost of one mispredicted data-dependent branch, seconds. The sparse
  /// accumulator's insert-or-add branch mispredicts often (§3.1.1).
  double branch_miss_cost_s;
  double branch_miss_rate = 0.25;  ///< fraction of SPA branches mispredicted

  /// Projected kernel time from counters (max of bandwidth and flop
  /// rooflines plus branch-misprediction overhead).
  double seconds(const WorkCounters& wc) const;
};

/// One socket of Xeon E5-2697 v3 (14 cores, 2.6 GHz, 54 GB/s STREAM).
MachineModel haswell_socket();

/// NVIDIA Tesla K40c (249 GB/s STREAM with ECC off, 876 MHz).
MachineModel k40c();

/// Endeavor compute node: 2 Haswell sockets (1 MPI rank per socket in the
/// paper's runs, so per-rank resources equal one socket).
MachineModel endeavor_rank();

}  // namespace hpamg
