// Chaos suite for the resilience layer: simmpi hardening (bounded waits,
// collective signatures, peer-failure propagation), seeded fault injection
// into the distributed and single-node solve paths, input validation, and
// the degenerate-coarse-operator fallbacks. Every scenario must terminate
// in a documented Status — never hang — and recoveries must be visible in
// the result (status / recoveries / events) and the JSON report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/solver.hpp"
#include "dist/dist_krylov.hpp"
#include "dist/dist_matrix.hpp"
#include "gen/stencil.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/report.hpp"
#include "test_util.hpp"

namespace hpamg {
namespace {

/// Every test in the suite leaves the registry clean, even on assertion
/// failure mid-test — armed sites leaking into later tests (or later
/// ctest-sharded binaries) would be chaos of the unintentional kind.
class Resilience : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

/// Short bounded-wait budget so deadlock scenarios resolve in milliseconds
/// instead of the 120 s production default.
simmpi::RunOptions fast_timeout(double seconds = 0.5) {
  simmpi::RunOptions o;
  o.timeout_seconds = seconds;
  return o;
}

// ------------------------------------------------------ input validation ----

TEST_F(Resilience, ValidateSystemMatrixAcceptsHealthyOperator) {
  EXPECT_NO_THROW(lap2d_5pt(8, 8).validate_system_matrix("lap2d"));
}

TEST_F(Resilience, ValidateSystemMatrixRejectsNonSquare) {
  CSRMatrix A = CSRMatrix::from_triplets(2, 3, {{0, 0, 1.0}, {1, 1, 1.0}});
  try {
    A.validate_system_matrix();
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.status(), Status::kInvalidInput);
  }
}

TEST_F(Resilience, ValidateSystemMatrixRejectsNonFiniteEntry) {
  CSRMatrix A = lap2d_5pt(6, 6);
  A.values[3] = std::nan("");
  try {
    A.validate_system_matrix();
    FAIL() << "expected SolverError";
  } catch (const SolverError& e) {
    EXPECT_EQ(e.status(), Status::kInvalidInput);
  }
}

TEST_F(Resilience, ValidateSystemMatrixRejectsZeroAndMissingDiagonal) {
  // Row 0: zero diagonal. Row 1: no diagonal entry at all.
  CSRMatrix zero_diag = CSRMatrix::from_triplets(
      2, 2, {{0, 0, 0.0}, {0, 1, 1.0}, {1, 1, 2.0}});
  EXPECT_THROW(zero_diag.validate_system_matrix(), SolverError);
  CSRMatrix missing_diag =
      CSRMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 0, 2.0}});
  EXPECT_THROW(missing_diag.validate_system_matrix(), SolverError);
}

TEST_F(Resilience, SolverCtorRejectsInvalidInput) {
  CSRMatrix A = lap2d_5pt(10, 10);
  A.values[7] = std::numeric_limits<double>::infinity();
  try {
    AMGSolver solver(A, AMGOptions{});
    FAIL() << "expected SolverError";
  } catch (const std::exception& e) {
    EXPECT_EQ(status_from_exception(e), Status::kInvalidInput);
  }
}

TEST_F(Resilience, DistSetupRejectsInvalidInput) {
  CSRMatrix A = lap2d_5pt(10, 10);
  A.values[7] = std::nan("");
  try {
    simmpi::run(2, [&](simmpi::Comm& c) {
      DistMatrix dA = distribute_csr(c, A);
      DistHierarchy h = dist_amg_setup(c, dA, DistAMGOptions{});
    });
    FAIL() << "expected SolverError";
  } catch (const std::exception& e) {
    EXPECT_EQ(status_from_exception(e), Status::kInvalidInput);
  }
}

// ------------------------------------------------------- simmpi hardening ----

TEST_F(Resilience, BoundedRecvRaisesDeadlockErrorWithStateDump) {
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          if (c.rank() == 0) c.recv(1, 7);  // rank 1 never sends
        },
        fast_timeout(0.25));
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
    // The dump names every rank and where rank 0 is blocked.
    EXPECT_NE(e.state_dump().find("rank 0"), std::string::npos);
    EXPECT_NE(e.state_dump().find("recv"), std::string::npos);
  }
}

TEST_F(Resilience, DeadlockDumpIsWrittenToStateDumpDir) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "hpamg_resilience_dumps";
  fs::create_directories(dir);
  ::setenv("HPAMG_STATE_DUMP_DIR", dir.c_str(), 1);
  EXPECT_THROW(simmpi::run(
                   2,
                   [&](simmpi::Comm& c) {
                     if (c.rank() == 1) c.recv(0, 9);
                   },
                   fast_timeout(0.25)),
               DeadlockError);
  ::unsetenv("HPAMG_STATE_DUMP_DIR");
  bool found = false;
  for (const auto& entry : fs::directory_iterator(dir))
    found |= entry.path().filename().string().rfind("simmpi_deadlock_", 0) == 0;
  EXPECT_TRUE(found);
  fs::remove_all(dir);
}

TEST_F(Resilience, BoundedBarrierRaisesDeadlockError) {
  EXPECT_THROW(simmpi::run(
                   2,
                   [&](simmpi::Comm& c) {
                     if (c.rank() == 0) c.barrier();  // rank 1 never joins
                   },
                   fast_timeout(0.25)),
               DeadlockError);
}

TEST_F(Resilience, MismatchedCollectivesFailLoudly) {
  try {
    simmpi::run(2, [&](simmpi::Comm& c) {
      if (c.rank() == 0)
        c.barrier();
      else
        c.allreduce_sum(1.0);
    });
    FAIL() << "expected CollectiveMismatchError";
  } catch (const CollectiveMismatchError& e) {
    EXPECT_EQ(e.status(), Status::kCollectiveMismatch);
  }
}

TEST_F(Resilience, MismatchedAllreduceDtypeFailsLoudly) {
  EXPECT_THROW(simmpi::run(2,
                           [&](simmpi::Comm& c) {
                             if (c.rank() == 0)
                               c.allreduce_sum(1.0);  // double
                             else
                               c.allreduce_sum(Long(1));  // long
                           }),
               CollectiveMismatchError);
}

TEST_F(Resilience, ExceptionInOneRankReleasesBlockedPeers) {
  // Rank 1 throws while rank 0 is committed to a collective; rank 0 must
  // unwind (PeerFailureError internally) and run() must rethrow the ROOT
  // CAUSE, not the collateral peer-failure unwind.
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          if (c.rank() == 1) throw std::runtime_error("boom at rank 1");
          c.allreduce_sum(1.0);
        },
        fast_timeout(5.0));
    FAIL() << "expected the rank-1 exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at rank 1"), std::string::npos);
    EXPECT_EQ(dynamic_cast<const PeerFailureError*>(&e), nullptr);
  }
}

TEST_F(Resilience, ExceptionReleasesPeerBlockedInRecv) {
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          if (c.rank() == 1) throw std::runtime_error("rank 1 died");
          c.recv(1, 3);  // would deadlock; peer failure must release it
        },
        fast_timeout(5.0));
    FAIL() << "expected the rank-1 exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1 died"), std::string::npos);
  }
}

// ------------------------------------------------- message-level chaos ----

TEST_F(Resilience, DroppedMessageBecomesDeadlockNotHang) {
  fault::Schedule s;
  s.count = 1;
  fault::arm("simmpi.drop", s);
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          const double payload = 42.0;
          if (c.rank() == 0) c.send(1, 5, &payload, sizeof payload);
          if (c.rank() == 1) c.recv(0, 5);
        },
        fast_timeout(0.3));
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(e.status(), Status::kDeadlock);
  }
  EXPECT_EQ(fault::fires("simmpi.drop"), 1u);
}

TEST_F(Resilience, ReorderSwapsSameTagDelivery) {
  fault::Schedule s;
  s.after_n = 1;  // deliver the first message normally, reorder the second
  s.count = 1;
  fault::arm("simmpi.reorder", s);
  simmpi::run(2, [&](simmpi::Comm& c) {
    if (c.rank() == 0) {
      const double first = 1.0, second = 2.0;
      c.send(1, 4, &first, sizeof first);
      c.send(1, 4, &second, sizeof second);
    } else {
      c.barrier();  // both messages are enqueued before the reads
      std::vector<char> a = c.recv(0, 4), b = c.recv(0, 4);
      double va, vb;
      std::memcpy(&va, a.data(), sizeof va);
      std::memcpy(&vb, b.data(), sizeof vb);
      EXPECT_EQ(va, 2.0);
      EXPECT_EQ(vb, 1.0);
    }
    if (c.rank() == 0) c.barrier();
  });
}

TEST_F(Resilience, SolveConvergesThroughMessageDelays) {
  fault::Schedule s;
  s.probability = 0.25;
  s.count = 40;  // bounded so the injected latency stays in the tens of ms
  s.seed = 2024;
  fault::arm("simmpi.delay", s);
  CSRMatrix A = lap2d_5pt(20, 20);
  simmpi::run(2, [&](simmpi::Comm& c) {
    DistMatrix dA = distribute_csr(c, A);
    DistHierarchy h = dist_amg_setup(c, dA, DistAMGOptions{});
    Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
    DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-8, 100);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.status, Status::kOk);
  });
}

TEST_F(Resilience, BitflipTerminatesWithDocumentedStatus) {
  // Silent data corruption in a solve-phase halo payload: depending on
  // which bit flips the solve sails through, recovers, or fails — but it
  // must TERMINATE with a taxonomy status, never hang or crash. Arming
  // happens after setup so the flip lands in numeric traffic (doubles),
  // not in a setup protocol message whose corruption is a different test.
  CSRMatrix A = lap2d_5pt(16, 16);
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          DistMatrix dA = distribute_csr(c, A);
          DistHierarchy h = dist_amg_setup(c, dA, DistAMGOptions{});
          c.barrier();
          if (c.rank() == 0) {
            fault::Schedule s;
            s.count = 1;
            s.seed = 7;
            fault::arm("simmpi.bitflip", s);
          }
          c.barrier();
          Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
          DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-8, 60);
          EXPECT_NE(status_name(r.status), std::string("unknown"));
          if (status_ok(r.status)) {
            for (double v : x) EXPECT_TRUE(std::isfinite(v));
          }
        },
        fast_timeout(30.0));
  } catch (const SolverError& e) {
    EXPECT_NE(status_name(e.status()), std::string("unknown"));
  }
}

// ------------------------------------------------ solver-level recovery ----

TEST_F(Resilience, SetupAllocFailureSurfacesAsBadAlloc) {
  fault::Schedule s;
  s.count = 1;
  fault::arm("amg.setup.alloc", s);
  CSRMatrix A = lap2d_5pt(12, 12);
  try {
    AMGSolver solver(A, AMGOptions{});
    FAIL() << "expected bad_alloc";
  } catch (const std::exception& e) {
    EXPECT_EQ(status_from_exception(e), Status::kAllocFailure);
  }
}

TEST_F(Resilience, DistSetupAllocFailureSurfacesAsBadAlloc) {
  fault::Schedule s;
  s.count = 1;
  fault::arm("dist.setup.alloc", s);
  CSRMatrix A = lap2d_5pt(12, 12);
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& c) {
          DistMatrix dA = distribute_csr(c, A);
          DistHierarchy h = dist_amg_setup(c, dA, DistAMGOptions{});
        },
        fast_timeout(5.0));
    FAIL() << "expected bad_alloc";
  } catch (const std::exception& e) {
    EXPECT_EQ(status_from_exception(e), Status::kAllocFailure);
  }
}

TEST_F(Resilience, TransientPoisonRecoversAndConverges) {
  fault::Schedule s;
  s.after_n = 2;  // a few clean iterations first, then one NaN poke
  s.count = 1;
  fault::arm("amg.solve.poison", s);
  CSRMatrix A = lap2d_5pt(24, 24);
  AMGSolver solver(A, AMGOptions{});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = solver.solve(b, x, 1e-8, 200);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.status, Status::kRecovered);
  EXPECT_GE(r.recoveries, 1);
  EXPECT_GE(r.nonfinite_iteration, 0);
  ASSERT_FALSE(r.events.empty());
  EXPECT_NE(r.events.front().find("recovered"), std::string::npos);
  EXPECT_LT(test::relative_residual(A, x, b), 1e-7);
}

TEST_F(Resilience, PersistentPoisonExhaustsRecoveryBudget) {
  fault::arm("amg.solve.poison");  // fires on every iteration, forever
  CSRMatrix A = lap2d_5pt(16, 16);
  AMGSolver solver(A, AMGOptions{});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = solver.solve(b, x, 1e-8, 200);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, Status::kNonFinite);
  EXPECT_EQ(r.recoveries, AMGSolver::kMaxRecoveries);
  EXPECT_GE(r.nonfinite_iteration, 0);
}

TEST_F(Resilience, RecoveredSolveReportCarriesStatusBlock) {
  fault::Schedule s;
  s.after_n = 2;
  s.count = 1;
  fault::arm("amg.solve.poison", s);
  CSRMatrix A = lap2d_5pt(20, 20);
  AMGSolver solver(A, AMGOptions{});
  Vector b(A.nrows, 1.0), x(A.nrows, 0.0);
  SolveResult r = solver.solve(b, x, 1e-8, 200);
  ASSERT_EQ(r.status, Status::kRecovered);
  JsonWriter w;
  solver.report(&r).write_json(w);
  JsonValue v = json_parse(w.str());
  const JsonValue* st = v.find("status");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->find("status")->text, "recovered");
  EXPECT_GE(st->find("recoveries")->number, 1.0);
  EXPECT_GE(st->find("nonfinite_iteration")->number, 0.0);
  EXPECT_FALSE(st->find("events")->items.empty());
}

TEST_F(Resilience, DistSolveRecoversFromTransientPoison) {
  fault::Schedule s;
  s.after_n = 1;
  s.count = 1;
  fault::arm("dist.solve.poison", s);
  CSRMatrix A = lap2d_5pt(20, 20);
  simmpi::run(
      2,
      [&](simmpi::Comm& c) {
        DistMatrix dA = distribute_csr(c, A);
        DistHierarchy h = dist_amg_setup(c, dA, DistAMGOptions{});
        Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
        DistSolveResult r = dist_amg_solve(c, dA, h, b, x, 1e-8, 200);
        // The poke lands on ONE rank, but the verdict comes from the
        // globally reduced residual, so every rank reports the recovery.
        EXPECT_TRUE(status_ok(r.status));
        EXPECT_EQ(r.status, Status::kRecovered);
        EXPECT_GE(r.recoveries, 1);
        EXPECT_FALSE(r.events.empty());
        for (double vx : x) EXPECT_TRUE(std::isfinite(vx));
      },
      fast_timeout(30.0));
}

TEST_F(Resilience, DistFgmresDiscardsPoisonedBasisAndConverges) {
  fault::Schedule s;
  s.after_n = 1;
  s.count = 1;
  fault::arm("dist.solve.poison", s);
  CSRMatrix A = lap2d_5pt(20, 20);
  simmpi::run(
      2,
      [&](simmpi::Comm& c) {
        DistMatrix dA = distribute_csr(c, A);
        DistHierarchy h = dist_amg_setup(c, dA, DistAMGOptions{});
        Vector b(dA.local_rows(), 1.0), x(dA.local_rows(), 0.0);
        DistSolveResult r = dist_fgmres(c, dA, h, b, x, 1e-8, 100);
        EXPECT_TRUE(status_ok(r.status));
        EXPECT_EQ(r.status, Status::kRecovered);
        EXPECT_GE(r.recoveries, 1);
      },
      fast_timeout(30.0));
}

// --------------------------------------- degenerate coarse-level fallback ----

TEST_F(Resilience, CountDegenerateDiagFindsZeroMissingAndNonFinite) {
  // Row 0 healthy, row 1 zero diagonal, row 2 missing diagonal, row 3
  // non-finite diagonal.
  CSRMatrix A = CSRMatrix::from_triplets(
      4, 4,
      {{0, 0, 4.0}, {1, 1, 0.0}, {1, 0, 1.0}, {2, 0, 1.0},
       {3, 3, std::numeric_limits<double>::infinity()}});
  double dmax = 0.0;
  EXPECT_EQ(count_degenerate_diag(A, &dmax), 3);
  EXPECT_DOUBLE_EQ(dmax, 4.0);
}

TEST_F(Resilience, RegularizeDiagonalRepairsDegenerateRows) {
  CSRMatrix A = CSRMatrix::from_triplets(
      3, 3,
      {{0, 0, 2.0}, {1, 1, 0.0}, {2, 0, std::nan("")}});
  CSRMatrix R = regularize_diagonal(A, 0.5);
  EXPECT_EQ(count_degenerate_diag(R, nullptr), 0);
  EXPECT_NO_THROW(R.validate_system_matrix("regularized"));
}

}  // namespace
}  // namespace hpamg
