#include "support/report.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "support/error.hpp"

namespace hpamg {

// ------------------------------------------------------------------------
// JsonWriter
// ------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(char(c));  // UTF-8 bytes pass through
        }
    }
  }
  out.push_back('"');
}

/// Shortest decimal form that round-trips through strtod.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v)
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

void JsonWriter::before_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  require(stack_.empty() ? out_.empty()
                         : stack_.back() == Frame::kArray,
          "JsonWriter: value needs a key inside an object");
  if (!stack_.empty()) {
    if (has_items_.back()) out_.push_back(',');
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  require(!stack_.empty() && stack_.back() == Frame::kObject &&
              !key_pending_,
          "JsonWriter: unbalanced end_object");
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  require(!stack_.empty() && stack_.back() == Frame::kArray,
          "JsonWriter: unbalanced end_array");
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  require(!stack_.empty() && stack_.back() == Frame::kObject &&
              !key_pending_,
          "JsonWriter: key outside an object");
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  append_escaped(out_, k);
  out_.push_back(':');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  append_escaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // NaN/Inf policy: JSON has no non-finite numbers
  } else {
    append_double(out_, v);
  }
  return *this;
}

JsonWriter& JsonWriter::write_int(long long v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::write_uint(unsigned long long v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  require(stack_.empty() && !key_pending_ && !out_.empty(),
          "JsonWriter: document incomplete");
  return out_;
}

// ------------------------------------------------------------------------
// Parser
// ------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, val] : members)
    if (key == k) return &val;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == src_.size(), "json_parse: trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json_parse: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n' ||
            src_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (pos_ >= src_.size() || src_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (src_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (consume_literal("null")) {
      // The writer's non-finite policy (JsonWriter::value(double)) turns
      // NaN/Inf into `null`; carrying NaN in `number` makes the double
      // round-trip lossless for consumers that read numeric fields without
      // checking kind (the node still reports is_null(), not is_number()).
      v.number = std::numeric_limits<double>::quiet_NaN();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= src_.size()) fail("truncated \\u escape");
      const char c = src_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= unsigned(c - '0');
      else if (c >= 'a' && c <= 'f') code |= unsigned(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= unsigned(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(char(cp));
    } else if (cp < 0x800) {
      out.push_back(char(0xc0 | (cp >> 6)));
      out.push_back(char(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(char(0xe0 | (cp >> 12)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(char(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(char(0xf0 | (cp >> 18)));
      out.push_back(char(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(char(0x80 | (cp & 0x3f)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if ((unsigned char)c < 0x20) fail("raw control character in string");
        out.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) fail("truncated escape");
      const char e = src_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate
            if (pos_ + 1 < src_.size() && src_[pos_] == '\\' &&
                src_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = parse_hex4();
              require(lo >= 0xdc00 && lo <= 0xdfff,
                      "json_parse: unpaired surrogate");
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else {
              fail("unpaired surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < src_.size() && src_[pos_] == '-') ++pos_;
    while (pos_ < src_.size() &&
           (std::isdigit((unsigned char)src_[pos_]) || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E' || src_[pos_] == '+' ||
            src_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(src_.substr(start, pos_ - start));
    // RFC 8259: no leading zeros ("01") and no bare sign/dot.
    {
      std::size_t p = token[0] == '-' ? 1 : 0;
      if (p >= token.size() || !std::isdigit((unsigned char)token[p]))
        fail("malformed number");
      if (token[p] == '0' && p + 1 < token.size() &&
          std::isdigit((unsigned char)token[p + 1]))
        fail("malformed number");
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    v.text = token;  // keep the lexeme for exact integer consumers
    return v;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view src) {
  return Parser(src).parse_document();
}

// ------------------------------------------------------------------------
// SolveReport
// ------------------------------------------------------------------------

namespace {

void write_phases(JsonWriter& w, const PhaseTimes& pt) {
  w.begin_object();
  for (const auto& [name, sec] : pt.all()) w.kv(name, sec);
  w.end_object();
}

void write_counters(JsonWriter& w, const WorkCounters& c) {
  w.begin_object();
  w.kv("flops", c.flops);
  w.kv("bytes_read", c.bytes_read);
  w.kv("bytes_written", c.bytes_written);
  w.kv("branches", c.branches);
  w.kv("hash_probes", c.hash_probes);
  w.end_object();
}

void write_comm(JsonWriter& w, const simmpi::CommStats& s) {
  w.begin_object();
  w.kv("messages_sent", s.messages_sent);
  w.kv("bytes_sent", s.bytes_sent);
  w.kv("allreduces", s.allreduces);
  w.kv("request_setups", s.request_setups);
  w.kv("persistent_starts", s.persistent_starts);
  // Traffic split by destination rank; zero-traffic peers are elided so the
  // array stays short at scale.
  w.key("per_peer").begin_array();
  for (std::size_t p = 0; p < s.per_peer.size(); ++p) {
    if (s.per_peer[p].messages == 0 && s.per_peer[p].bytes == 0) continue;
    w.begin_object();
    w.kv("peer", std::uint64_t(p));
    w.kv("messages", s.per_peer[p].messages);
    w.kv("bytes", s.per_peer[p].bytes);
    // Message-size histogram (trailing zero buckets trimmed; bucket k >= 1
    // covers [2^(k-1), 2^k) bytes). Omitted when never recorded, so
    // hand-built CommStats keep the original three-field entry.
    int last = -1;
    for (int b = 0; b < simmpi::kMsgSizeBuckets; ++b)
      if (s.per_peer[p].size_hist[b] > 0) last = b;
    if (last >= 0) {
      w.key("size_hist").begin_array();
      for (int b = 0; b <= last; ++b) w.value(s.per_peer[p].size_hist[b]);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void SolveReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("solver", solver);
  w.kv("variant", variant);

  w.key("hierarchy").begin_object();
  w.kv("num_levels", long(num_levels));
  w.kv("operator_complexity", operator_complexity);
  w.kv("grid_complexity", grid_complexity);
  w.key("levels").begin_array();
  for (const LevelReportEntry& l : levels) {
    w.begin_object();
    w.kv("level", long(l.level));
    w.kv("rows", (long long)l.rows);
    w.kv("nnz", (long long)l.nnz);
    w.kv("nnz_per_row", l.nnz_per_row);
    w.kv("coarse", (long long)l.coarse);
    w.kv("interp_nnz", (long long)l.interp_nnz);
    w.kv("operator_bytes", l.operator_bytes);
    w.kv("interp_bytes", l.interp_bytes);
    w.kv("smoother_bytes", l.smoother_bytes);
    w.kv("workspace_bytes", l.workspace_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("phases").begin_object();
  w.key("setup");
  write_phases(w, setup_phases);
  w.key("solve");
  write_phases(w, solve_phases);
  w.end_object();

  w.key("counters").begin_object();
  w.key("setup");
  write_counters(w, setup_work);
  w.key("solve");
  write_counters(w, solve_work);
  w.end_object();

  if (has_comm) {
    w.key("comm").begin_object();
    w.key("setup");
    write_comm(w, setup_comm);
    w.key("solve");
    write_comm(w, solve_comm);
    w.end_object();
  }

  if (has_memory) {
    w.key("memory").begin_object();
    w.kv("setup_bytes", memory.setup_bytes);
    w.kv("solve_bytes", memory.solve_bytes);
    w.kv("peak_rss_bytes", memory.peak_rss_bytes);
    w.end_object();
  }

  if (!roofline.empty()) {
    w.key("roofline").begin_array();
    for (const RooflineEntry& e : roofline) {
      w.begin_object();
      w.kv("kernel", e.kernel);
      w.kv("level", long(e.level));
      w.kv("calls", e.calls);
      w.kv("seconds", e.seconds);
      w.kv("flops", e.flops);
      w.kv("bytes", e.bytes);
      w.kv("achieved_bw_bytes_per_s", e.achieved_bw_bytes_per_s);
      w.kv("modeled_seconds", e.modeled_seconds);
      w.kv("bw_fraction", e.bw_fraction);
      w.kv("efficiency", e.efficiency);
      w.end_object();
    }
    w.end_array();
  }

  if (!iterations.empty()) {
    w.key("iterations").begin_array();
    for (const IterationReportEntry& e : iterations) {
      w.begin_object();
      w.kv("iteration", long(e.iteration));
      w.kv("relres", e.relres);
      w.kv("conv_factor", e.conv_factor);
      w.kv("seconds", e.seconds);
      w.key("level_seconds").begin_array();
      for (double s : e.level_seconds) w.value(s);
      w.end_array();
      if (e.presmooth_relres >= 0.0)
        w.kv("presmooth_relres", e.presmooth_relres);
      if (e.smoother_contraction >= 0.0)
        w.kv("smoother_contraction", e.smoother_contraction);
      w.end_object();
    }
    w.end_array();
  }

  w.key("convergence").begin_object();
  w.kv("iterations", long(convergence.iterations));
  w.kv("converged", convergence.converged);
  w.kv("final_relres", convergence.final_relres);
  w.kv("convergence_factor", convergence.convergence_factor);
  w.key("residual_history").begin_array();
  for (double r : convergence.residual_history) w.value(r);
  w.end_array();
  w.end_object();

  w.key("status").begin_object();
  w.kv("status", status.status);
  w.kv("nonfinite_iteration", long(status.nonfinite_iteration));
  w.kv("recoveries", long(status.recoveries));
  w.key("events").begin_array();
  for (const std::string& e : status.events) w.value(e);
  w.end_array();
  w.end_object();

  w.key("times").begin_object();
  w.kv("setup_seconds", setup_seconds);
  w.kv("solve_seconds", solve_seconds);
  w.kv("modeled_setup_seconds", modeled_setup_seconds);
  w.kv("modeled_solve_seconds", modeled_solve_seconds);
  w.end_object();

  w.end_object();
}

// ------------------------------------------------------------------------
// BenchReport
// ------------------------------------------------------------------------

void BenchReport::set_param(const std::string& k, const std::string& v) {
  Param p;
  p.key = k;
  p.text = v;
  params_.push_back(std::move(p));
}

void BenchReport::set_param(const std::string& k, double v) {
  Param p;
  p.key = k;
  p.numeric = true;
  p.number = v;
  params_.push_back(std::move(p));
}

void BenchReport::set_param(const std::string& k, long v) {
  Param p;
  p.key = k;
  p.numeric = true;
  p.integral = true;
  p.integer = v;
  params_.push_back(std::move(p));
}

BenchReport::Run& BenchReport::add_run(const std::string& name) {
  runs_.push_back(std::make_unique<Run>());
  runs_.back()->name = name;
  return *runs_.back();
}

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema_version", kSchemaVersion);
  w.kv("bench", bench_);
  w.key("params").begin_object();
  for (const Param& p : params_) {
    if (!p.numeric)
      w.kv(p.key, p.text);
    else if (p.integral)
      w.kv(p.key, p.integer);
    else
      w.kv(p.key, p.number);
  }
  w.end_object();
  if (metrics_) {
    const MetricsEnvelope& m = *metrics_;
    w.key("metrics").begin_object();
    w.kv("threads", long(m.threads));
    w.kv("build", m.build);
    if (!m.compiler.empty()) w.kv("compiler", m.compiler);
    w.kv("peak_rss_bytes", m.peak_rss_bytes);
    w.key("net").begin_object();
    w.kv("overhead_s", m.net_overhead_s);
    w.kv("peak_bw_bytes_per_s", m.net_peak_bw_bytes_per_s);
    w.kv("setup_cost_s", m.net_setup_cost_s);
    w.kv("rendezvous_extra_s", m.net_rendezvous_extra_s);
    w.kv("eager_limit_bytes", m.net_eager_limit_bytes);
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& [k, v] : m.registry.counters) w.kv(k, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [k, v] : m.registry.gauges) w.kv(k, v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const metrics::HistogramSnapshot& h : m.registry.histograms) {
      w.key(h.name).begin_object();
      w.kv("count", h.count);
      w.kv("sum", h.sum);
      w.key("buckets").begin_array();
      for (std::uint64_t b : h.buckets) w.value(b);
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.key("runs").begin_array();
  for (const auto& run : runs_) {
    w.begin_object();
    w.kv("name", run->name);
    if (!run->labels.empty()) {
      w.key("labels").begin_object();
      for (const auto& [k, v] : run->labels) w.kv(k, v);
      w.end_object();
    }
    if (!run->metrics.empty()) {
      w.key("metrics").begin_object();
      for (const auto& [k, v] : run->metrics) w.kv(k, v);
      w.end_object();
    }
    if (run->solve) {
      w.key("report");
      run->solve->write_json(w);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool BenchReport::write_file(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

// ------------------------------------------------------------------------
// Schema validation
// ------------------------------------------------------------------------

namespace {

/// Appends nothing and returns false on success; else fills `err`.
bool schema_fail(std::string& err, const std::string& what) {
  if (err.empty()) err = what;
  return false;
}

/// A measured-double field: a number, or `null` — the writer's encoding
/// of NaN/Inf (JsonWriter::value(double)). Structural integer fields
/// (levels, rows, counts) stay strict is_number().
bool is_double_field(const JsonValue* f) {
  return f != nullptr && (f->is_number() || f->is_null());
}

bool check_object_of_numbers(const JsonValue* v, const std::string& where,
                             std::string& err) {
  if (!v || !v->is_object())
    return schema_fail(err, where + " must be an object");
  for (const auto& [k, val] : v->members)
    if (!val.is_number() && !val.is_null())
      return schema_fail(err, where + "." + k + " must be a number");
  return true;
}

bool check_counters(const JsonValue* v, const std::string& where,
                    std::string& err) {
  if (!v || !v->is_object())
    return schema_fail(err, where + " must be an object");
  for (const char* field :
       {"flops", "bytes_read", "bytes_written", "branches", "hash_probes"}) {
    const JsonValue* f = v->find(field);
    if (!f || !f->is_number())
      return schema_fail(err, where + "." + field + " missing");
  }
  return true;
}

bool check_solve_report(const JsonValue& rep, const std::string& where,
                        std::string& err) {
  if (!rep.is_object()) return schema_fail(err, where + " must be an object");
  for (const char* field : {"solver", "variant"}) {
    const JsonValue* f = rep.find(field);
    if (!f || !f->is_string())
      return schema_fail(err, where + "." + field + " missing");
  }

  const JsonValue* hier = rep.find("hierarchy");
  if (!hier || !hier->is_object())
    return schema_fail(err, where + ".hierarchy missing");
  const JsonValue* nl = hier->find("num_levels");
  if (!nl || !nl->is_number())
    return schema_fail(err, where + ".hierarchy.num_levels missing");
  for (const char* field : {"operator_complexity", "grid_complexity"}) {
    const JsonValue* f = hier->find(field);
    if (!f || !f->is_number())
      return schema_fail(err, where + ".hierarchy." + field + " missing");
  }
  const JsonValue* levels = hier->find("levels");
  if (!levels || !levels->is_array())
    return schema_fail(err, where + ".hierarchy.levels missing");
  for (std::size_t i = 0; i < levels->items.size(); ++i) {
    const JsonValue& l = levels->items[i];
    for (const char* field :
         {"level", "rows", "nnz", "nnz_per_row", "coarse", "interp_nnz",
          "operator_bytes", "interp_bytes", "smoother_bytes",
          "workspace_bytes"}) {
      const JsonValue* f = l.find(field);
      if (!f || !f->is_number())
        return schema_fail(err, where + ".hierarchy.levels[" +
                                    std::to_string(i) + "]." + field +
                                    " missing");
    }
  }

  const JsonValue* phases = rep.find("phases");
  if (!phases || !phases->is_object())
    return schema_fail(err, where + ".phases missing");
  if (!check_object_of_numbers(phases->find("setup"), where + ".phases.setup",
                               err) ||
      !check_object_of_numbers(phases->find("solve"), where + ".phases.solve",
                               err))
    return false;

  const JsonValue* counters = rep.find("counters");
  if (!counters || !counters->is_object())
    return schema_fail(err, where + ".counters missing");
  if (!check_counters(counters->find("setup"), where + ".counters.setup",
                      err) ||
      !check_counters(counters->find("solve"), where + ".counters.solve",
                      err))
    return false;

  if (const JsonValue* comm = rep.find("comm")) {
    for (const char* side : {"setup", "solve"}) {
      const JsonValue* s = comm->find(side);
      if (!s || !s->is_object())
        return schema_fail(err, where + ".comm." + side + " missing");
      for (const char* field : {"messages_sent", "bytes_sent", "allreduces",
                                "request_setups", "persistent_starts"}) {
        const JsonValue* f = s->find(field);
        if (!f || !f->is_number())
          return schema_fail(
              err, where + ".comm." + side + "." + field + " missing");
      }
      const JsonValue* pp = s->find("per_peer");
      if (!pp || !pp->is_array())
        return schema_fail(err,
                           where + ".comm." + side + ".per_peer missing");
      for (const JsonValue& entry : pp->items) {
        for (const char* field : {"peer", "messages", "bytes"}) {
          const JsonValue* f = entry.find(field);
          if (!f || !f->is_number())
            return schema_fail(err, where + ".comm." + side +
                                        ".per_peer[]." + field + " missing");
        }
        if (const JsonValue* hist = entry.find("size_hist")) {
          if (!hist->is_array())
            return schema_fail(err, where + ".comm." + side +
                                        ".per_peer[].size_hist must be an "
                                        "array");
          for (const JsonValue& b : hist->items)
            if (!b.is_number())
              return schema_fail(err, where + ".comm." + side +
                                          ".per_peer[].size_hist entries "
                                          "must be numbers");
        }
      }
    }
  }

  if (const JsonValue* mem = rep.find("memory")) {
    if (!mem->is_object())
      return schema_fail(err, where + ".memory must be an object");
    for (const char* field : {"setup_bytes", "solve_bytes", "peak_rss_bytes"}) {
      const JsonValue* f = mem->find(field);
      if (!f || !f->is_number())
        return schema_fail(err, where + ".memory." + field + " missing");
    }
  }

  if (const JsonValue* roof = rep.find("roofline")) {
    if (!roof->is_array())
      return schema_fail(err, where + ".roofline must be an array");
    for (std::size_t i = 0; i < roof->items.size(); ++i) {
      const JsonValue& e = roof->items[i];
      const std::string at =
          where + ".roofline[" + std::to_string(i) + "]";
      const JsonValue* kernel = e.find("kernel");
      if (!kernel || !kernel->is_string())
        return schema_fail(err, at + ".kernel missing");
      for (const char* field :
           {"level", "calls", "seconds", "flops", "bytes",
            "achieved_bw_bytes_per_s", "modeled_seconds", "bw_fraction",
            "efficiency"}) {
        const JsonValue* f = e.find(field);
        if (!f || !f->is_number())
          return schema_fail(err, at + "." + field + " missing");
      }
      // The attribution contract: entries exist only for kernels that
      // moved bytes in measurable time, so both fractions land in (0, 1].
      for (const char* field : {"bw_fraction", "efficiency"}) {
        const double v = e.find(field)->number;
        if (!(v > 0.0 && v <= 1.0))
          return schema_fail(err, at + "." + field + " must be in (0, 1]");
      }
    }
  }

  if (const JsonValue* its = rep.find("iterations")) {
    if (!its->is_array())
      return schema_fail(err, where + ".iterations must be an array");
    for (std::size_t i = 0; i < its->items.size(); ++i) {
      const JsonValue& e = its->items[i];
      const std::string at =
          where + ".iterations[" + std::to_string(i) + "]";
      const JsonValue* itn = e.find("iteration");
      if (!itn || !itn->is_number())
        return schema_fail(err, at + ".iteration missing");
      // Residual-derived doubles go NaN in a diverged solve and are
      // written as null; the telemetry entry is still schema-valid.
      for (const char* field : {"relres", "conv_factor", "seconds"})
        if (!is_double_field(e.find(field)))
          return schema_fail(err, at + "." + field + " missing");
      const JsonValue* ls = e.find("level_seconds");
      if (!ls || !ls->is_array())
        return schema_fail(err, at + ".level_seconds missing");
      for (const JsonValue& s : ls->items)
        if (!s.is_number())
          return schema_fail(err,
                             at + ".level_seconds entries must be numbers");
      // Optional smoother-effectiveness fields (omitted when unmeasured).
      for (const char* field : {"presmooth_relres", "smoother_contraction"})
        if (const JsonValue* f = e.find(field))
          if (!is_double_field(f))
            return schema_fail(err, at + "." + field + " must be a number");
    }
  }

  const JsonValue* conv = rep.find("convergence");
  if (!conv || !conv->is_object())
    return schema_fail(err, where + ".convergence missing");
  const JsonValue* iters = conv->find("iterations");
  if (!iters || !iters->is_number())
    return schema_fail(err, where + ".convergence.iterations missing");
  const JsonValue* converged = conv->find("converged");
  if (!converged || !converged->is_bool())
    return schema_fail(err, where + ".convergence.converged missing");
  const JsonValue* hist = conv->find("residual_history");
  if (!hist || !hist->is_array())
    return schema_fail(err, where + ".convergence.residual_history missing");

  const JsonValue* status = rep.find("status");
  if (!status || !status->is_object())
    return schema_fail(err, where + ".status missing");
  const JsonValue* sname = status->find("status");
  if (!sname || !sname->is_string())
    return schema_fail(err, where + ".status.status missing");
  if (status_from_name(sname->text) == Status::kUnknown &&
      sname->text != "unknown")
    return schema_fail(err, where + ".status.status unknown value \"" +
                                sname->text + "\"");
  for (const char* field : {"nonfinite_iteration", "recoveries"}) {
    const JsonValue* f = status->find(field);
    if (!f || !f->is_number())
      return schema_fail(err, where + ".status." + field + " missing");
  }
  const JsonValue* events = status->find("events");
  if (!events || !events->is_array())
    return schema_fail(err, where + ".status.events missing");
  for (const JsonValue& e : events->items)
    if (!e.is_string())
      return schema_fail(err,
                         where + ".status.events entries must be strings");

  const JsonValue* times = rep.find("times");
  if (!times || !times->is_object())
    return schema_fail(err, where + ".times missing");
  for (const char* field : {"setup_seconds", "solve_seconds",
                            "modeled_setup_seconds",
                            "modeled_solve_seconds"}) {
    const JsonValue* f = times->find(field);
    if (!f || !f->is_number())
      return schema_fail(err, where + ".times." + field + " missing");
  }
  return true;
}

bool check_metrics_block(const JsonValue& m, std::string& err) {
  if (!m.is_object()) return schema_fail(err, "metrics must be an object");
  const JsonValue* threads = m.find("threads");
  if (!threads || !threads->is_number())
    return schema_fail(err, "metrics.threads missing");
  const JsonValue* build = m.find("build");
  if (!build || !build->is_string())
    return schema_fail(err, "metrics.build missing");
  const JsonValue* rss = m.find("peak_rss_bytes");
  if (!rss || !rss->is_number())
    return schema_fail(err, "metrics.peak_rss_bytes missing");
  const JsonValue* net = m.find("net");
  if (!net || !net->is_object())
    return schema_fail(err, "metrics.net missing");
  for (const char* field : {"overhead_s", "peak_bw_bytes_per_s",
                            "setup_cost_s", "rendezvous_extra_s",
                            "eager_limit_bytes"}) {
    const JsonValue* f = net->find(field);
    if (!f || !f->is_number())
      return schema_fail(err, std::string("metrics.net.") + field + " missing");
  }
  if (!check_object_of_numbers(m.find("counters"), "metrics.counters", err) ||
      !check_object_of_numbers(m.find("gauges"), "metrics.gauges", err))
    return false;
  const JsonValue* hists = m.find("histograms");
  if (!hists || !hists->is_object())
    return schema_fail(err, "metrics.histograms missing");
  for (const auto& [name, h] : hists->members) {
    if (!h.is_object())
      return schema_fail(err, "metrics.histograms." + name +
                                  " must be an object");
    for (const char* field : {"count", "sum"}) {
      const JsonValue* f = h.find(field);
      if (!f || !f->is_number())
        return schema_fail(err, "metrics.histograms." + name + "." + field +
                                    " missing");
    }
    const JsonValue* buckets = h.find("buckets");
    if (!buckets || !buckets->is_array())
      return schema_fail(err, "metrics.histograms." + name +
                                  ".buckets missing");
    for (const JsonValue& b : buckets->items)
      if (!b.is_number())
        return schema_fail(err, "metrics.histograms." + name +
                                    ".buckets entries must be numbers");
  }
  return true;
}

}  // namespace

std::string validate_bench_report_json(std::string_view json_text,
                                       bool require_solve,
                                       bool require_metrics) {
  JsonValue root;
  try {
    root = json_parse(json_text);
  } catch (const std::exception& e) {
    return e.what();
  }
  std::string err;
  if (!root.is_object()) return "document must be an object";

  const JsonValue* ver = root.find("schema_version");
  if (!ver || !ver->is_number()) return "schema_version missing";
  if (long(ver->number) != BenchReport::kSchemaVersion)
    return "unsupported schema_version " + ver->text;

  const JsonValue* bench = root.find("bench");
  if (!bench || !bench->is_string() || bench->text.empty())
    return "bench (non-empty string) missing";

  const JsonValue* params = root.find("params");
  if (!params || !params->is_object()) return "params object missing";

  const JsonValue* metrics_block = root.find("metrics");
  if (require_metrics && !metrics_block) return "metrics block missing";
  if (metrics_block && !check_metrics_block(*metrics_block, err)) return err;

  const JsonValue* runs = root.find("runs");
  if (!runs || !runs->is_array()) return "runs array missing";
  if (runs->items.empty()) return "runs array is empty";

  bool any_solve = false;
  for (std::size_t i = 0; i < runs->items.size(); ++i) {
    const JsonValue& run = runs->items[i];
    const std::string where = "runs[" + std::to_string(i) + "]";
    if (!run.is_object()) return where + " must be an object";
    const JsonValue* name = run.find("name");
    if (!name || !name->is_string() || name->text.empty())
      return where + ".name missing";
    if (const JsonValue* metrics = run.find("metrics"))
      if (!check_object_of_numbers(metrics, where + ".metrics", err))
        return err;
    if (const JsonValue* labels = run.find("labels")) {
      if (!labels->is_object()) return where + ".labels must be an object";
      for (const auto& [k, v] : labels->members)
        if (!v.is_string()) return where + ".labels." + k + " must be a string";
      // Multi-RHS sweep points (labeled with a column count "m") must
      // carry the per-RHS amortization triple — the numbers the m-sweep
      // acceptance gate and benchdiff read.
      if (labels->find("m")) {
        const JsonValue* metrics = run.find("metrics");
        for (const char* field : {"per_rhs_solve_seconds", "per_rhs_flops",
                                  "per_rhs_bytes"}) {
          const JsonValue* f = metrics ? metrics->find(field) : nullptr;
          if (!f || !f->is_number())
            return where + ".metrics." + field +
                   " missing (required for runs labeled with \"m\")";
        }
      }
    }
    if (const JsonValue* rep = run.find("report")) {
      if (!check_solve_report(*rep, where + ".report", err)) return err;
      const JsonValue* iters = rep->find("convergence")->find("iterations");
      if (iters->number >= 1.0) any_solve = true;
    }
  }
  if (require_solve && !any_solve)
    return "no run carries a solve report with >= 1 iteration";
  return "";
}

}  // namespace hpamg
